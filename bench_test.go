// Package caladrius_test holds the benchmark harness that regenerates
// every figure of the paper's evaluation (§V, Figures 4–12) plus the
// two system-level comparisons. Run with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkFigNN target executes the full experiment — simulator
// sweeps, model calibration, prediction and validation — and reports
// the figure's headline findings once. Micro-benchmarks for the hot
// paths (simulation stepping, model evaluation, forecasting, metrics
// queries) follow.
package caladrius_test

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"caladrius/internal/api"
	"caladrius/internal/audit"
	"caladrius/internal/chaos"
	"caladrius/internal/config"
	"caladrius/internal/core"
	"caladrius/internal/experiments"
	"caladrius/internal/forecast"
	"caladrius/internal/heron"
	"caladrius/internal/incident"
	"caladrius/internal/metrics"
	"caladrius/internal/profiler"
	"caladrius/internal/sched"
	"caladrius/internal/telemetry"
	"caladrius/internal/topology"
	"caladrius/internal/tracker"
	"caladrius/internal/tsdb"
	"caladrius/internal/usage"
	"caladrius/internal/workload"
)

// benchSweep keeps figure benchmarks fast while preserving shape.
var benchSweep = experiments.SweepOptions{WarmupMinutes: 3, MeasureMinutes: 4, Tick: 200 * time.Millisecond}

var reportOnce sync.Map

// runFigure executes one experiment per iteration, printing its
// findings the first time.
func runFigure(b *testing.B, name string, run func() (experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if _, loaded := reportOnce.LoadOrStore(name, true); !loaded {
			b.Logf("\n%s", tbl.ASCII())
		}
	}
}

func BenchmarkFig04InstanceThroughput(b *testing.B) {
	runFigure(b, "fig04", func() (experiments.Table, error) { return experiments.Fig04InstanceThroughput(benchSweep) })
}

func BenchmarkFig05IORatio(b *testing.B) {
	runFigure(b, "fig05", func() (experiments.Table, error) { return experiments.Fig05IORatio(benchSweep) })
}

func BenchmarkFig06BackpressureTime(b *testing.B) {
	runFigure(b, "fig06", func() (experiments.Table, error) { return experiments.Fig06BackpressureTime(benchSweep) })
}

func BenchmarkFig07ComponentModel(b *testing.B) {
	runFigure(b, "fig07", func() (experiments.Table, error) { return experiments.Fig07ComponentModel(benchSweep) })
}

func BenchmarkFig08ComponentValidation(b *testing.B) {
	runFigure(b, "fig08", func() (experiments.Table, error) { return experiments.Fig08ComponentValidation(benchSweep) })
}

func BenchmarkFig09CounterModel(b *testing.B) {
	runFigure(b, "fig09", func() (experiments.Table, error) { return experiments.Fig09CounterModel(benchSweep) })
}

func BenchmarkFig10CriticalPath(b *testing.B) {
	runFigure(b, "fig10", func() (experiments.Table, error) { return experiments.Fig10CriticalPath(benchSweep) })
}

func BenchmarkFig11CPULoad(b *testing.B) {
	runFigure(b, "fig11", func() (experiments.Table, error) { return experiments.Fig11CPULoad(benchSweep) })
}

func BenchmarkFig12CPUValidation(b *testing.B) {
	runFigure(b, "fig12", func() (experiments.Table, error) { return experiments.Fig12CPUValidation(benchSweep) })
}

func BenchmarkTrafficForecast(b *testing.B) {
	runFigure(b, "traffic", experiments.TrafficForecast)
}

func BenchmarkDhalionVsCaladrius(b *testing.B) {
	runFigure(b, "dhalion", experiments.DhalionVsCaladrius)
}

func BenchmarkAblationWatermarkGap(b *testing.B) {
	runFigure(b, "ablation-watermarks", func() (experiments.Table, error) { return experiments.AblationWatermarkGap(benchSweep) })
}

func BenchmarkAblationCalibrationAttribution(b *testing.B) {
	runFigure(b, "ablation-attribution", func() (experiments.Table, error) { return experiments.AblationCalibrationAttribution(benchSweep) })
}

func BenchmarkAblationNoiseVsError(b *testing.B) {
	runFigure(b, "ablation-noise", func() (experiments.Table, error) { return experiments.AblationNoiseVsError(benchSweep) })
}

func BenchmarkAblationSchedulerPlans(b *testing.B) {
	runFigure(b, "ablation-schedulers", experiments.AblationSchedulerPlans)
}

// BenchmarkSweepParallel pits the sweep engine's worker pool against
// the sequential path on the same multi-rate figure (Fig. 4: 20 rate
// points × 5 repeats = 100 independent simulations). The outputs are
// byte-identical; only the wall clock differs, by up to min(8,
// GOMAXPROCS)× on unloaded hardware. scripts/bench.sh records both
// timings in BENCH_core.json.
func benchSweepParallel(b *testing.B, parallelism int) {
	b.Helper()
	sweep := benchSweep
	sweep.Parallelism = parallelism
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig04InstanceThroughput(sweep); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepParallel1(b *testing.B) { benchSweepParallel(b, 1) }
func BenchmarkSweepParallel8(b *testing.B) { benchSweepParallel(b, 8) }

// --- micro-benchmarks -----------------------------------------------------

// BenchmarkSimulatorMinute measures the cost of simulating one minute
// of the 12-instance word-count topology at the default 100 ms tick.
func BenchmarkSimulatorMinute(b *testing.B) {
	sim, err := heron.NewWordCount(heron.WordCountOptions{RatePerMinute: 8e6})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Run(time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorMinuteWithInjector measures the same minute with a
// fault injector attached whose plan never fires inside the benchmark
// horizon — the per-tick cost of the chaos hook itself. The fault-free
// overhead budget is <5% over BenchmarkSimulatorMinute at 0 allocs/op;
// scripts/bench.sh records the measured ratio in BENCH_core.json.
func BenchmarkSimulatorMinuteWithInjector(b *testing.B) {
	sim, err := heron.NewWordCount(heron.WordCountOptions{RatePerMinute: 8e6})
	if err != nil {
		b.Fatal(err)
	}
	top, err := heron.WordCountTopology(8, 1, 3)
	if err != nil {
		b.Fatal(err)
	}
	pack, err := topology.RoundRobinPack(top, 2)
	if err != nil {
		b.Fatal(err)
	}
	plan := &chaos.Plan{Faults: []chaos.Fault{{
		Kind: chaos.FaultSlow, At: chaos.Duration(10_000 * time.Hour),
		Duration: chaos.Duration(time.Minute), Component: "splitter", Instance: 0, Factor: 0.5,
	}}}
	inj, err := chaos.NewInjector(plan, top, pack)
	if err != nil {
		b.Fatal(err)
	}
	sim.WithFaultInjector(inj)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.Run(time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopologyPredict measures one dry-run evaluation of a
// proposed configuration — the operation Caladrius performs instead of
// a deployment.
func BenchmarkTopologyPredict(b *testing.B) {
	top, err := heron.WordCountTopology(8, 3, 4)
	if err != nil {
		b.Fatal(err)
	}
	models := map[string]*core.ComponentModel{
		"spout":    {Component: "spout", Parallelism: 8, Instance: core.InstanceModel{Alpha: 1, SP: 3e8}},
		"splitter": {Component: "splitter", Parallelism: 3, Instance: core.InstanceModel{Alpha: 7.635, SP: 10.8e6}, CPUPsi: 1e-7},
		"counter":  {Component: "counter", Parallelism: 4, Instance: core.InstanceModel{Alpha: 0.001, SP: 68.4e6}, CPUPsi: 1.2e-8},
	}
	tm, err := core.NewTopologyModel(top, models)
	if err != nil {
		b.Fatal(err)
	}
	overrides := map[string]int{"splitter": 6, "counter": 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tm.Predict(overrides, 45e6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProphetFit measures fitting the Prophet-substitute on one
// week of per-minute history (10 080 points).
func BenchmarkProphetFit(b *testing.B) {
	spec := workload.TrafficSpec{Base: 1e6, DailyAmplitude: 0.4, NoiseStd: 0.02, Seed: 1}
	history := spec.Generate(time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC), 7*24*60, time.Minute)
	pts := make([]tsdb.Point, len(history))
	for i, p := range history {
		pts[i] = tsdb.Point{T: p.T, V: p.V}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := forecast.New("prophet", nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTSDBAppend measures raw metric ingestion through the
// label-map API: every call canonicalises the label set and resolves
// the series through two map lookups.
func BenchmarkTSDBAppend(b *testing.B) {
	db := tsdb.New(0)
	labels := tsdb.Labels{"topology": "wc", "component": "splitter", "instance": "0"}
	t0 := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Append("execute-count", labels, t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
}

// BenchmarkTSDBAppendHandle measures the same ingestion through an
// interned series handle, the simulator's flush path: the label work
// happens once at Handle time.
func BenchmarkTSDBAppendHandle(b *testing.B) {
	db := tsdb.New(0)
	h := db.Handle("execute-count", tsdb.Labels{"topology": "wc", "component": "splitter", "instance": "0"})
	t0 := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Append(t0.Add(time.Duration(i)*time.Minute), float64(i))
	}
}

// BenchmarkTSDBDownsample measures the component-rollup query the
// models issue during calibration.
func BenchmarkTSDBDownsample(b *testing.B) {
	db := tsdb.New(0)
	t0 := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	for inst := 0; inst < 4; inst++ {
		labels := tsdb.Labels{"component": "splitter", "instance": fmt.Sprintf("%d", inst)}
		for m := 0; m < 1440; m++ {
			db.Append("execute-count", labels, t0.Add(time.Duration(m)*time.Minute), float64(m))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Downsample("execute-count", tsdb.Labels{"component": "splitter"}, t0, t0.Add(24*time.Hour), time.Minute, tsdb.AggSum, tsdb.AggSum); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAuditRecord measures the audit ledger's record hot path —
// every prediction request pays it synchronously. After the first
// record interns the per-(topology, model) counters, Record must not
// allocate: the ring is preallocated and overwritten in place.
func BenchmarkAuditRecord(b *testing.B) {
	prov, err := metrics.NewTSDBProvider(tsdb.New(0), time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	t0 := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	led, err := audit.NewLedger(audit.Options{Provider: prov, Now: func() time.Time { return t0 }})
	if err != nil {
		b.Fatal(err)
	}
	rec := audit.Record{
		Topology:      "word-count",
		Model:         "predict",
		CreatedAt:     t0,
		SourceRateTPM: 20e6,
		Calibration:   []core.ComponentCalibration{{Component: "counter", Parallelism: 4, Alpha: 0.001}},
		Predicted:     audit.Predicted{SinkTPM: 1.9e7, Risk: "low", Sink: "counter", TotalCPUCores: 2},
	}
	led.Record(rec) // interns the run counters for this (topology, model)
	if allocs := testing.AllocsPerRun(100, func() { led.Record(rec) }); allocs != 0 {
		b.Fatalf("Record allocates %.1f/op on the ring-overwrite path, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		led.Record(rec)
	}
}

// BenchmarkCounterInc measures the telemetry hot path: incrementing a
// pre-registered counter must not allocate.
func BenchmarkCounterInc(b *testing.B) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("bench_total", telemetry.Labels{"route": "/x"})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkLogRingAppend measures the flight recorder's log-ring hot
// path — every access-log record teed through the ring handler lands
// here. Once warm the ring overwrites slots in place, reusing each
// slot's attr buffer: 0 allocs/op.
func BenchmarkLogRingAppend(b *testing.B) {
	r := telemetry.NewLogRing(1024)
	attrs := []byte("method=GET route=/api/v1/health status=200 duration_ms=0.42")
	t0 := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 2*r.Cap(); i++ {
		r.Append(t0, slog.LevelInfo, "http request", "req-1", attrs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		r.Append(t0, slog.LevelInfo, "http request", "req-1", attrs)
	}); allocs != 0 {
		b.Fatalf("Append allocates %.1f/op on the warm path, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Append(t0, slog.LevelInfo, "http request", "req-1", attrs)
	}
}

// BenchmarkSLOEvaluateArmed measures one healthy SLO evaluation pass
// with the incident recorder's firing hook armed — the recorder's
// steady-state (idle) overhead on the evaluator loop. The hook slice is
// only copied when a rule transitions to firing, so an armed-but-idle
// recorder must cost nothing beyond the evaluation itself.
func BenchmarkSLOEvaluateArmed(b *testing.B) {
	reg := telemetry.NewRegistry()
	db := tsdb.New(24 * time.Hour)
	t0 := time.Date(2026, 6, 1, 12, 0, 0, 0, time.UTC)
	for i := -20; i <= 0; i++ {
		db.Append("caladrius_model_mape", nil, t0.Add(time.Duration(i)*time.Minute), 0.01)
	}
	now := t0.Add(time.Second)
	slo, err := telemetry.NewSLO(db, reg, func() time.Time { return now },
		telemetry.ModelAccuracyRules(0.08, 24*time.Hour, 15*time.Minute))
	if err != nil {
		b.Fatal(err)
	}
	rec, err := incident.New(incident.Options{
		Dir:      b.TempDir(),
		Registry: reg,
		History:  db,
		Now:      func() time.Time { return now },
		Logger:   slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer rec.Close()
	slo.OnFiring(rec.FiringHook())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slo.Evaluate()
	}
}

// BenchmarkHistogramObserve measures recording one latency sample into
// a pre-registered histogram.
func BenchmarkHistogramObserve(b *testing.B) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("bench_seconds", telemetry.DefLatencyBuckets, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

// BenchmarkRegistryLookup measures re-resolving an instrument handle
// through the registry, the path handlers take when they have not
// cached the handle.
func BenchmarkRegistryLookup(b *testing.B) {
	reg := telemetry.NewRegistry()
	labels := telemetry.Labels{"route": "/x", "class": "2xx"}
	reg.Counter("bench_total", labels)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Counter("bench_total", labels).Inc()
	}
}

// benchMiddlewareHandler builds the instrumented service handler over
// a small simulated deployment, with extra service options merged in.
func benchMiddlewareHandler(b *testing.B, extra api.Options) http.Handler {
	b.Helper()
	sim, err := heron.NewWordCount(heron.WordCountOptions{RatePerMinute: 8e6})
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.Run(2 * time.Minute); err != nil {
		b.Fatal(err)
	}
	asOf := sim.Start().Add(2 * time.Minute)
	top, err := heron.WordCountTopology(8, 1, 3)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := topology.RoundRobinPack(top, 2)
	if err != nil {
		b.Fatal(err)
	}
	tr := tracker.New(func() time.Time { return asOf })
	if err := tr.Register(top, plan); err != nil {
		b.Fatal(err)
	}
	provider, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	cfg := config.Default()
	cfg.CalibrationLookback = 2 * time.Minute
	extra.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	extra.Now = func() time.Time { return asOf }
	svc, err := api.NewService(cfg, tr, provider, extra)
	if err != nil {
		b.Fatal(err)
	}
	return svc.Handler()
}

// BenchmarkMiddlewareRequest measures the full instrumented request
// path — route classification, counters, histogram, access log — over
// a trivial handler, isolating the telemetry overhead per request.
func BenchmarkMiddlewareRequest(b *testing.B) {
	handler := benchMiddlewareHandler(b, api.Options{})
	req := httptest.NewRequest("GET", "/api/v1/health", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
	}
}

// BenchmarkMiddlewareRequestAttributed measures the same request path
// with usage attribution wired in: tenant-header sanitisation, route →
// topology mapping, and the accountant's Begin/Finish pair on a warm
// principal — the per-request overhead of tenancy accounting.
func BenchmarkMiddlewareRequestAttributed(b *testing.B) {
	acct := usage.New(usage.Options{Registry: telemetry.NewRegistry()})
	handler := benchMiddlewareHandler(b, api.Options{Usage: acct})
	req := httptest.NewRequest("GET", "/api/v1/health", nil)
	req.Header.Set(api.TenantHeader, "bench-tenant")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
	}
}

// BenchmarkUsageRecord measures the usage accountant's request hot
// path — Begin plus Finish on a warm (tenant, topology) principal, the
// cost the middleware adds per attributed request. The per-principal
// instruments are interned at first touch; after that the path must
// not allocate.
func BenchmarkUsageRecord(b *testing.B) {
	acct := usage.New(usage.Options{Registry: telemetry.NewRegistry()})
	record := func() {
		acct.Begin("bench", "word-count")
		acct.Finish("bench", "word-count", 200, 42*time.Microsecond)
	}
	record() // interns the principal and its instruments
	if allocs := testing.AllocsPerRun(100, record); allocs != 0 {
		b.Fatalf("Begin+Finish allocates %.1f/op on the warm path, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		record()
	}
}

// benchPredictEnv builds the instrumented handler over a small
// simulated deployment, returning the tracker so benchmarks can force
// calibration-cache invalidation between requests.
func benchPredictEnv(b *testing.B, extra api.Options) (http.Handler, *tracker.Tracker, *topology.Topology, *topology.PackingPlan) {
	b.Helper()
	sim, err := heron.NewWordCount(heron.WordCountOptions{RatePerMinute: 8e6})
	if err != nil {
		b.Fatal(err)
	}
	if err := sim.Run(5 * time.Minute); err != nil {
		b.Fatal(err)
	}
	asOf := sim.Start().Add(5 * time.Minute)
	top, err := heron.WordCountTopology(8, 1, 3)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := topology.RoundRobinPack(top, 2)
	if err != nil {
		b.Fatal(err)
	}
	tr := tracker.New(func() time.Time { return asOf })
	if err := tr.Register(top, plan); err != nil {
		b.Fatal(err)
	}
	provider, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
	if err != nil {
		b.Fatal(err)
	}
	cfg := config.Default()
	cfg.CalibrationLookback = 5 * time.Minute
	cfg.CalibrationWarmup = 2
	extra.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	extra.Now = func() time.Time { return asOf }
	svc, err := api.NewService(cfg, tr, provider, extra)
	if err != nil {
		b.Fatal(err)
	}
	return svc.Handler(), tr, top, plan
}

func benchPredict(b *testing.B, handler http.Handler) {
	b.Helper()
	req := httptest.NewRequest("POST", "/api/v1/model/topology/word-count/performance?sync=true",
		strings.NewReader(`{"source_rate_tpm": 8000000}`))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("predict = %d: %s", rec.Code, rec.Body.String())
	}
}

// BenchmarkPredictColdCache measures a sync performance prediction that
// must recalibrate from provider metrics every time: each iteration
// re-registers the packing plan, which fires the tracker change hook
// and evicts the topology's calibration-cache entry.
func BenchmarkPredictColdCache(b *testing.B) {
	handler, tr, top, plan := benchPredictEnv(b, api.Options{})
	benchPredict(b, handler) // warm code paths; cache is evicted per iteration below
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := tr.Update(top, plan); err != nil { // evicts the cache entry
			b.Fatal(err)
		}
		b.StartTimer()
		benchPredict(b, handler)
	}
}

// BenchmarkPredictWarmCache measures the same prediction when the
// calibration cache holds the topology's model: the request skips the
// provider fetch and component fitting entirely. The warm-vs-cold
// ratio (recorded by scripts/bench.sh as predict_cache.speedup) is the
// calibration cache's headline win; the acceptance floor is 5x.
func BenchmarkPredictWarmCache(b *testing.B) {
	handler, _, _, _ := benchPredictEnv(b, api.Options{})
	benchPredict(b, handler) // populate the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPredict(b, handler)
	}
}

// BenchmarkCoalescedPredict measures a burst of identical concurrent
// sync predictions through the scheduler: duplicates coalesce onto the
// leader's in-flight run, so one burst costs about one model
// evaluation plus fan-out, not eight.
func BenchmarkCoalescedPredict(b *testing.B) {
	scheduler := sched.New(sched.Options{Workers: 2, QueueDepth: 64})
	defer scheduler.Close()
	handler, _, _, _ := benchPredictEnv(b, api.Options{Scheduler: scheduler})
	benchPredict(b, handler) // populate the calibration cache
	const burst = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for j := 0; j < burst; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				benchPredict(b, handler)
			}()
		}
		wg.Wait()
	}
}

// BenchmarkPackingPlan measures round-robin packing of a larger
// topology.
func BenchmarkPackingPlan(b *testing.B) {
	top, err := topology.NewBuilder("big").
		AddSpout("s", 32).
		AddBolt("b1", 64).
		AddBolt("b2", 128).
		Connect("s", "b1", topology.ShuffleGrouping).
		Connect("b1", "b2", topology.FieldsGrouping, "k").
		Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topology.RoundRobinPack(top, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictProfilerOff measures the warm-cache sync predict
// path on a service without the continuous profiler — the baseline
// for the profiler's serving-overhead budget.
func BenchmarkPredictProfilerOff(b *testing.B) {
	handler, _, _, _ := benchPredictEnv(b, api.Options{})
	benchPredict(b, handler) // populate the calibration cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPredict(b, handler)
	}
}

// BenchmarkPredictProfilerOn measures the same warm-cache predict path
// while the continuous profiler runs its capture loop in the
// background at the default 2.5% duty cycle, time-compressed so a
// multi-second bench run spans many capture rounds (25ms CPU window
// per 1s interval instead of 250ms per 10s). scripts/bench.sh records
// the on/off ratio in BENCH_core.json; the budget is ≤1% overhead.
func BenchmarkPredictProfilerOn(b *testing.B) {
	prof, err := profiler.New(profiler.Options{
		Registry:  telemetry.NewRegistry(),
		Interval:  time.Second,
		CPUWindow: 25 * time.Millisecond,
		Epoch:     10 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go prof.Run(ctx)
	handler, _, _, _ := benchPredictEnv(b, api.Options{Profiler: prof})
	benchPredict(b, handler) // populate the calibration cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPredict(b, handler)
	}
}
