#!/usr/bin/env bash
# Full verification recipe: build, static checks, the whole test
# suite, then the race detector over the concurrency-heavy packages
# (the scraper/SLO pipeline, the instrumented API and the TSDB).
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race ./internal/telemetry ./internal/api ./internal/tsdb
echo "verify: all checks passed"
