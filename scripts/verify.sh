#!/usr/bin/env bash
# Full verification recipe: build, static checks, the whole test
# suite, then the race detector over the concurrency-heavy packages
# (the scraper/SLO pipeline, the instrumented API, the TSDB, the
# parallel sweep engine and the simulator it fans out, the audit
# ledger with its background resolver, the incident flight recorder
# with its capture worker, the usage accountant with its concurrent
# top-K churn suite, the model-run scheduler with its coalescing and
# calibration-cache churn suites, the continuous profiler with its
# concurrent capture/query/baseline-swap suite, and the chaos layer —
# whose invariant suite runs its fixed 3-seed × every-fault-kind
# matrix under -race here, and the load/soak harness), then a
# short fuzz smoke over the three parsers that face untrusted input
# (config YAML, API range queries, pprof protobuf profiles), and
# finally a ~10s smoke soak: caladriusbench drives an in-process
# daemon through a chaos metrics outage and exits non-zero unless the
# SLOs resolve and the process returns to its goroutine baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "verify: gofmt needed on:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi
go build ./...
go vet ./...
go test ./...
go test -race ./internal/telemetry ./internal/api ./internal/tsdb
go test -race ./internal/incident
go test -race ./internal/audit
go test -race ./internal/usage
go test -race ./internal/sched
go test -race ./internal/experiments ./internal/heron
go test -race ./internal/chaos ./internal/metrics
go test -race ./internal/profiler
go test -race ./internal/bench
FUZZTIME="${VERIFY_FUZZTIME:-10s}"
go test -run '^$' -fuzz '^FuzzParse$' -fuzztime "$FUZZTIME" ./internal/yamlite
go test -run '^$' -fuzz '^FuzzParseQueryRange$' -fuzztime "$FUZZTIME" ./internal/api
go test -run '^$' -fuzz '^FuzzPprofParse$' -fuzztime "$FUZZTIME" ./internal/profiler
SOAK_OUT=$(mktemp)
go run ./cmd/caladriusbench -soak -duration 6s -slo-window 4s -settle 12s -o "$SOAK_OUT"
rm -f "$SOAK_OUT"
echo "verify: all checks passed"
