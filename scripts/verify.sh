#!/usr/bin/env bash
# Full verification recipe: build, static checks, the whole test
# suite, then the race detector over the concurrency-heavy packages
# (the scraper/SLO pipeline, the instrumented API, the TSDB, the
# parallel sweep engine and the simulator it fans out, and the audit
# ledger with its background resolver).
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race ./internal/telemetry ./internal/api ./internal/tsdb
go test -race ./internal/audit
go test -race ./internal/experiments ./internal/heron
echo "verify: all checks passed"
