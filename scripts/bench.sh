#!/usr/bin/env bash
# Benchmark recipe: runs the hot-path micro-benchmarks and the
# multi-rate sweep benchmarks, writes BENCH_core.json with the
# measured numbers next to the recorded pre-optimization (seed)
# baseline, then drives the serving tier with caladriusbench's
# standard mix and writes BENCH_api.json — including the scrape-path
# contention numbers before and after the batched-append fix.
#
# Usage: scripts/bench.sh [core.json] [api.json]
#        (defaults BENCH_core.json / BENCH_api.json)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_core.json}"
API_OUT="${2:-BENCH_api.json}"
MICRO_TIME="${BENCH_MICRO_TIME:-2s}"
SWEEP_COUNT="${BENCH_SWEEP_COUNT:-3x}"
API_DURATION="${BENCH_API_DURATION:-15s}"

# Seed baseline, measured on this repo immediately before the parallel
# sweep engine and the simulator hot-path work landed (same harness,
# benchtime 1s, GOMAXPROCS=1).
SEED_SIM_NS=682542      SEED_SIM_B=162131   SEED_SIM_ALLOCS=5915
SEED_APPEND_NS=872.2    SEED_APPEND_B=324   SEED_APPEND_ALLOCS=4
SEED_SWEEP_NS=247852953

# Scrape-path contention baseline, measured immediately before
# ScrapeOnce switched to the generation-swept handle cache + single
# AppendBatch flush (same harness, benchtime 1s, GOMAXPROCS=1).
# scrape_conc is one ScrapeOnce while a goroutine loops
# Query+Downsample on the same store — the scrape-vs-read contention
# this PR's fix targets.
SEED_SCRAPE_NS=858601   SEED_SCRAPE_ALLOCS=1644
SEED_SCRAPE_CONC_NS=16781639

echo "== micro benchmarks (${MICRO_TIME}) =="
MICRO=$(go test -run '^$' \
    -bench 'BenchmarkSimulatorMinute$|BenchmarkSimulatorMinuteWithInjector$|BenchmarkTSDBAppend$|BenchmarkTSDBAppendHandle$|BenchmarkLogRingAppend$|BenchmarkSLOEvaluateArmed$|BenchmarkUsageRecord$|BenchmarkMiddlewareRequest$|BenchmarkMiddlewareRequestAttributed$|BenchmarkPredictColdCache$|BenchmarkPredictWarmCache$|BenchmarkCoalescedPredict$' \
    -benchmem -benchtime "$MICRO_TIME" .)
echo "$MICRO"

echo "== scheduler benchmarks (${MICRO_TIME}) =="
SCHED=$(go test -run '^$' \
    -bench 'BenchmarkSchedulerSubmit$|BenchmarkCalCacheHit$' \
    -benchmem -benchtime "$MICRO_TIME" ./internal/sched/)
echo "$SCHED"

echo "== profiler benchmarks (${MICRO_TIME}) =="
PROF=$(go test -run '^$' -bench 'BenchmarkProfilerFold$' \
    -benchmem -benchtime "$MICRO_TIME" ./internal/profiler/)
echo "$PROF"
# The profiler's serving overhead sits inside run-to-run noise, so the
# on/off pair runs three times each and the ratio uses the minima.
OVH=$(go test -run '^$' -bench 'BenchmarkPredictProfiler(Off|On)$' \
    -benchtime "$MICRO_TIME" -count=3 .)
echo "$OVH"

echo "== scrape contention benchmarks (${MICRO_TIME}) =="
SCRAPE=$(go test -run '^$' \
    -bench 'BenchmarkScraperScrapeOnce$|BenchmarkScrapeWithConcurrentReads$' \
    -benchmem -benchtime "$MICRO_TIME" ./internal/telemetry/)
echo "$SCRAPE"

echo "== sweep benchmarks (${SWEEP_COUNT} per parallelism) =="
SWEEP=$(go test -run '^$' -bench 'BenchmarkSweepParallel' -benchtime "$SWEEP_COUNT" .)
echo "$SWEEP"

# pick <output> <name> <field>: extract one benchmark statistic.
# Fields: 3 = ns/op, 5 = B/op, 7 = allocs/op.
pick() {
    echo "$1" | awk -v name="$2" -v f="$3" '$1 ~ "^"name"(-[0-9]+)?$" { print $f; exit }'
}

# pickmin <output> <name> <field>: minimum over repeated runs.
pickmin() {
    echo "$1" | awk -v name="$2" -v f="$3" \
        '$1 ~ "^"name"(-[0-9]+)?$" { if (min == "" || $f + 0 < min) min = $f + 0 } END { print min }'
}

SIM_NS=$(pick "$MICRO" BenchmarkSimulatorMinute 3)
SIM_B=$(pick "$MICRO" BenchmarkSimulatorMinute 5)
SIM_ALLOCS=$(pick "$MICRO" BenchmarkSimulatorMinute 7)
INJ_NS=$(pick "$MICRO" BenchmarkSimulatorMinuteWithInjector 3)
INJ_B=$(pick "$MICRO" BenchmarkSimulatorMinuteWithInjector 5)
INJ_ALLOCS=$(pick "$MICRO" BenchmarkSimulatorMinuteWithInjector 7)
APPEND_NS=$(pick "$MICRO" BenchmarkTSDBAppend 3)
APPEND_B=$(pick "$MICRO" BenchmarkTSDBAppend 5)
APPEND_ALLOCS=$(pick "$MICRO" BenchmarkTSDBAppend 7)
HANDLE_NS=$(pick "$MICRO" BenchmarkTSDBAppendHandle 3)
HANDLE_B=$(pick "$MICRO" BenchmarkTSDBAppendHandle 5)
HANDLE_ALLOCS=$(pick "$MICRO" BenchmarkTSDBAppendHandle 7)
LOGRING_NS=$(pick "$MICRO" BenchmarkLogRingAppend 3)
LOGRING_B=$(pick "$MICRO" BenchmarkLogRingAppend 5)
LOGRING_ALLOCS=$(pick "$MICRO" BenchmarkLogRingAppend 7)
SLOARMED_NS=$(pick "$MICRO" BenchmarkSLOEvaluateArmed 3)
SLOARMED_B=$(pick "$MICRO" BenchmarkSLOEvaluateArmed 5)
SLOARMED_ALLOCS=$(pick "$MICRO" BenchmarkSLOEvaluateArmed 7)
USAGE_NS=$(pick "$MICRO" BenchmarkUsageRecord 3)
USAGE_B=$(pick "$MICRO" BenchmarkUsageRecord 5)
USAGE_ALLOCS=$(pick "$MICRO" BenchmarkUsageRecord 7)
MW_NS=$(pick "$MICRO" BenchmarkMiddlewareRequest 3)
MW_ALLOCS=$(pick "$MICRO" BenchmarkMiddlewareRequest 7)
MWATTR_NS=$(pick "$MICRO" BenchmarkMiddlewareRequestAttributed 3)
MWATTR_ALLOCS=$(pick "$MICRO" BenchmarkMiddlewareRequestAttributed 7)
COLD_NS=$(pick "$MICRO" BenchmarkPredictColdCache 3)
WARM_NS=$(pick "$MICRO" BenchmarkPredictWarmCache 3)
WARM_ALLOCS=$(pick "$MICRO" BenchmarkPredictWarmCache 7)
COALESCED_NS=$(pick "$MICRO" BenchmarkCoalescedPredict 3)
SUBMIT_NS=$(pick "$SCHED" BenchmarkSchedulerSubmit 3)
SUBMIT_ALLOCS=$(pick "$SCHED" BenchmarkSchedulerSubmit 7)
CALHIT_NS=$(pick "$SCHED" BenchmarkCalCacheHit 3)
CALHIT_ALLOCS=$(pick "$SCHED" BenchmarkCalCacheHit 7)
FOLD_NS=$(pick "$PROF" BenchmarkProfilerFold 3)
FOLD_B=$(pick "$PROF" BenchmarkProfilerFold 5)
FOLD_ALLOCS=$(pick "$PROF" BenchmarkProfilerFold 7)
PROF_OFF_NS=$(pickmin "$OVH" BenchmarkPredictProfilerOff 3)
PROF_ON_NS=$(pickmin "$OVH" BenchmarkPredictProfilerOn 3)
SWEEP1_NS=$(pick "$SWEEP" BenchmarkSweepParallel1 3)
SWEEP8_NS=$(pick "$SWEEP" BenchmarkSweepParallel8 3)
SCRAPE_NS=$(pick "$SCRAPE" BenchmarkScraperScrapeOnce 3)
SCRAPE_ALLOCS=$(pick "$SCRAPE" BenchmarkScraperScrapeOnce 7)
SCRAPE_CONC_NS=$(pick "$SCRAPE" BenchmarkScrapeWithConcurrentReads 3)

GOMAXPROCS="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN)}"
ratio() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.2f", a / b }'; }

cat > "$OUT" <<EOF
{
  "date": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "go": "$(go env GOVERSION)",
  "gomaxprocs": ${GOMAXPROCS},
  "note": "sweep outputs are byte-identical at every parallelism; sweep_parallel8 only beats sweep_parallel1 when GOMAXPROCS > 1",
  "simulator_minute": {
    "seed": {"ns_op": ${SEED_SIM_NS}, "b_op": ${SEED_SIM_B}, "allocs_op": ${SEED_SIM_ALLOCS}},
    "now":  {"ns_op": ${SIM_NS}, "b_op": ${SIM_B}, "allocs_op": ${SIM_ALLOCS}},
    "speedup": $(ratio "$SEED_SIM_NS" "$SIM_NS")
  },
  "simulator_minute_with_injector": {
    "now": {"ns_op": ${INJ_NS}, "b_op": ${INJ_B}, "allocs_op": ${INJ_ALLOCS}},
    "overhead_vs_no_injector": $(ratio "$INJ_NS" "$SIM_NS"),
    "budget": "fault-free injector overhead must stay under 1.05x at 0 allocs/op"
  },
  "tsdb_append": {
    "seed": {"ns_op": ${SEED_APPEND_NS}, "b_op": ${SEED_APPEND_B}, "allocs_op": ${SEED_APPEND_ALLOCS}},
    "now":  {"ns_op": ${APPEND_NS}, "b_op": ${APPEND_B}, "allocs_op": ${APPEND_ALLOCS}},
    "note": "canonical() now sorts on a stack buffer and sizes the builder exactly: 4 allocs/op at seed, 1 now; ns/op is machine-relative across recordings"
  },
  "predict_cache": {
    "cold_ns_op": ${COLD_NS},
    "warm_ns_op": ${WARM_NS},
    "warm_allocs_op": ${WARM_ALLOCS},
    "speedup": $(ratio "$COLD_NS" "$WARM_NS"),
    "budget": "warm (calibration-cache hit) sync predict must be at least 5x faster than cold recalibration"
  },
  "coalesced_predict": {
    "burst8_ns_op": ${COALESCED_NS},
    "vs_8_warm_predicts": $(awk -v c="$COALESCED_NS" -v w="$WARM_NS" 'BEGIN { printf "%.2f", c / (8 * w) }'),
    "note": "8 identical concurrent sync predicts through the scheduler; duplicates share the leader's in-flight run"
  },
  "sched_submit": {
    "ns_op": ${SUBMIT_NS},
    "allocs_op": ${SUBMIT_ALLOCS},
    "note": "scheduler enqueue + admission + worker dispatch overhead per run"
  },
  "calcache_hit": {
    "ns_op": ${CALHIT_NS},
    "allocs_op": ${CALHIT_ALLOCS},
    "budget": "cache-hit lookup must stay at 0 allocs/op"
  },
  "tsdb_append_handle": {
    "now": {"ns_op": ${HANDLE_NS}, "b_op": ${HANDLE_B}, "allocs_op": ${HANDLE_ALLOCS}},
    "speedup_vs_append": $(ratio "$APPEND_NS" "$HANDLE_NS")
  },
  "logring_append": {
    "now": {"ns_op": ${LOGRING_NS}, "b_op": ${LOGRING_B}, "allocs_op": ${LOGRING_ALLOCS}},
    "budget": "flight-recorder log ring append must stay at 0 allocs/op"
  },
  "slo_evaluate_armed": {
    "now": {"ns_op": ${SLOARMED_NS}, "b_op": ${SLOARMED_B}, "allocs_op": ${SLOARMED_ALLOCS}},
    "note": "one healthy SLO evaluation pass with the incident recorder hook armed — the idle-recorder overhead on the evaluator loop"
  },
  "usage_record": {
    "now": {"ns_op": ${USAGE_NS}, "b_op": ${USAGE_B}, "allocs_op": ${USAGE_ALLOCS}},
    "budget": "warm-principal Begin+Finish must stay at 0 allocs/op"
  },
  "middleware_request_attributed": {
    "plain_ns_op": ${MW_NS},
    "attributed_ns_op": ${MWATTR_NS},
    "overhead_vs_plain": $(ratio "$MWATTR_NS" "$MW_NS"),
    "extra_allocs_op": $((MWATTR_ALLOCS - MW_ALLOCS)),
    "note": "tenant attribution on the instrumented request path — header sanitisation, route-to-topology mapping, and the accountant pair"
  },
  "profiler_fold": {
    "ns_op": ${FOLD_NS},
    "b_op": ${FOLD_B},
    "allocs_op": ${FOLD_ALLOCS},
    "budget": "steady-state fold of a 64-stack profile into a warm table must stay at 0 allocs/op"
  },
  "profiler_serving_overhead": {
    "predict_off_ns_op": ${PROF_OFF_NS},
    "predict_on_ns_op": ${PROF_ON_NS},
    "overhead_pct": $(awk -v on="$PROF_ON_NS" -v off="$PROF_OFF_NS" 'BEGIN { r = (on - off) / off * 100; if (r < 0) r = 0; printf "%.2f", r }'),
    "budget": "profiler-on warm predict must stay within 1% of profiler-off",
    "note": "capture loop runs at 10x time-compressed default duty (25ms CPU window per 1s interval vs 250ms per 10s); min of 3 runs each side; 0 means on was within noise of off"
  },
  "scrape_contention": {
    "seed": {"scrape_ns_op": ${SEED_SCRAPE_NS}, "scrape_allocs_op": ${SEED_SCRAPE_ALLOCS}, "scrape_under_reads_ns_op": ${SEED_SCRAPE_CONC_NS}},
    "now":  {"scrape_ns_op": ${SCRAPE_NS}, "scrape_allocs_op": ${SCRAPE_ALLOCS}, "scrape_under_reads_ns_op": ${SCRAPE_CONC_NS}},
    "speedup_under_concurrent_reads": $(ratio "$SEED_SCRAPE_CONC_NS" "$SCRAPE_CONC_NS"),
    "note": "ScrapeOnce previously took one exclusive TSDB writer-lock round-trip per sample (~800 per scrape); it now stages samples against a generation-swept handle cache and flushes them with a single AppendBatch lock acquisition, so concurrent query_range/downsample readers are no longer starved during scrapes"
  },
  "fig04_sweep": {
    "seed_sequential_ns": ${SEED_SWEEP_NS},
    "now_parallel1_ns": ${SWEEP1_NS},
    "now_parallel8_ns": ${SWEEP8_NS},
    "speedup_seed_to_parallel1": $(ratio "$SEED_SWEEP_NS" "$SWEEP1_NS"),
    "speedup_seed_to_parallel8": $(ratio "$SEED_SWEEP_NS" "$SWEEP8_NS"),
    "speedup_parallel1_to_parallel8": $(ratio "$SWEEP1_NS" "$SWEEP8_NS")
  }
}
EOF
echo "bench: wrote $OUT"

echo "== serving-tier load (caladriusbench, ${API_DURATION}) =="
go run ./cmd/caladriusbench -duration "$API_DURATION" -concurrency 8 \
    -contention "scrape_seed_ns_op=${SEED_SCRAPE_NS},scrape_now_ns_op=${SCRAPE_NS},scrape_seed_allocs_op=${SEED_SCRAPE_ALLOCS},scrape_now_allocs_op=${SCRAPE_ALLOCS},scrape_under_reads_seed_ns_op=${SEED_SCRAPE_CONC_NS},scrape_under_reads_now_ns_op=${SCRAPE_CONC_NS},scrape_under_reads_speedup=$(ratio "$SEED_SCRAPE_CONC_NS" "$SCRAPE_CONC_NS")" \
    -o "$API_OUT"
