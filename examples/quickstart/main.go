// Quickstart: the Caladrius workflow end to end in one file.
//
//  1. Deploy the paper's word-count topology on the embedded Heron
//     simulator and let it run to steady state.
//  2. Calibrate performance models for every component from the
//     metrics it emitted.
//  3. Ask the model what happens if traffic doubles, and what
//     parallelism change would absorb it — without deploying anything.
//  4. Verify the suggestion by actually deploying it on the simulator.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"caladrius/internal/core"
	"caladrius/internal/heron"
	"caladrius/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const currentRate = 18e6 // tuples/minute offered today
	const futureRate = 36e6  // the traffic spike we are planning for

	// --- 1. Deploy and observe. --------------------------------------
	fmt.Println("== 1. deploying word-count (spout=8, splitter=2, counter=3) at 18 M tuples/min")
	sim, err := heron.NewWordCount(heron.WordCountOptions{
		SplitterP: 2, CounterP: 3, RatePerMinute: currentRate,
	})
	if err != nil {
		return err
	}
	if err := sim.Run(15 * time.Minute); err != nil {
		return err
	}
	provider, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
	if err != nil {
		return err
	}

	// --- 2. Calibrate component models from observed metrics. --------
	fmt.Println("== 2. calibrating component models from 15 minutes of metrics")
	window := sim.Start().Add(15 * time.Minute)
	models := map[string]*core.ComponentModel{}
	for comp, p := range map[string]int{"spout": 8, "splitter": 2, "counter": 3} {
		m, err := core.CalibrateFromProvider(provider, "word-count", comp, p,
			sim.Start(), window, core.CalibrationOptions{Warmup: 4})
		if err != nil {
			return fmt.Errorf("calibrate %s: %w", comp, err)
		}
		models[comp] = m
		fmt.Printf("   %-8s α=%.3f  per-instance SP=%s  ψ=%.2e\n",
			comp, m.Instance.Alpha, fmtRate(m.Instance.SP), m.CPUPsi)
	}
	// Nothing saturated at 18 M/min, so the saturation points are still
	// unknown (SP = ∞ above). §V-B needs one observation in the
	// saturated interval per component — and in a chain under global
	// backpressure only the tightest component saturates, so each bolt
	// gets its own profiling run in which *it* is the bottleneck.
	fmt.Println("== 2b. profiling saturation: one run per bolt, each as the bottleneck")
	profile := func(splitterP, counterP int, rate float64, comp string, p int) error {
		s, err := heron.NewWordCount(heron.WordCountOptions{SplitterP: splitterP, CounterP: counterP, RatePerMinute: rate})
		if err != nil {
			return err
		}
		if err := s.Run(15 * time.Minute); err != nil {
			return err
		}
		prov, err := metrics.NewTSDBProvider(s.DB(), time.Minute)
		if err != nil {
			return err
		}
		m, err := core.CalibrateFromProvider(prov, "word-count", comp, p,
			s.Start(), s.Start().Add(15*time.Minute), core.CalibrationOptions{Warmup: 4})
		if err != nil {
			return err
		}
		models[comp], err = core.MergeCalibrations(models[comp], m)
		return err
	}
	// Splitter bottleneck: p=2 splitter behind a wide counter, driven
	// past 2×SP.
	if err := profile(2, 6, 40e6, "splitter", 2); err != nil {
		return err
	}
	// Counter bottleneck: p=3 counter behind a wide splitter.
	if err := profile(6, 3, 35e6, "counter", 3); err != nil {
		return err
	}
	for comp, m := range models {
		fmt.Printf("   %-8s per-instance SP now %s\n", comp, fmtRate(m.Instance.SP))
	}

	// --- 3. Dry-run the future without deploying. ---------------------
	top, err := heron.WordCountTopology(8, 2, 3)
	if err != nil {
		return err
	}
	tm, err := core.NewTopologyModel(top, models)
	if err != nil {
		return err
	}
	fmt.Printf("== 3. dry-run: what happens at %s?\n", fmtRate(futureRate))
	pred, err := tm.Predict(nil, futureRate)
	if err != nil {
		return err
	}
	fmt.Printf("   current plan: backpressure risk %s (topology saturates at %s, bottleneck %s)\n",
		pred.Risk, fmtRate(pred.SaturationSource), pred.Bottleneck)

	plan, err := tm.SuggestParallelism(futureRate, 0.2)
	if err != nil {
		return err
	}
	plan["spout"] = 8
	fmt.Printf("   suggested plan: splitter=%d counter=%d\n", plan["splitter"], plan["counter"])
	pred2, err := tm.Predict(plan, futureRate)
	if err != nil {
		return err
	}
	fmt.Printf("   suggested plan risk: %s, predicted output %s, total CPU %.1f cores\n",
		pred2.Risk, fmtRate(pred2.SinkThroughput), pred2.TotalCPU)

	// --- 4. Verify by deploying the suggestion. -----------------------
	fmt.Println("== 4. verifying the suggestion on the simulator")
	verify, err := heron.NewWordCount(heron.WordCountOptions{
		SplitterP: plan["splitter"], CounterP: plan["counter"], RatePerMinute: futureRate,
	})
	if err != nil {
		return err
	}
	if err := verify.Run(12 * time.Minute); err != nil {
		return err
	}
	vp, err := metrics.NewTSDBProvider(verify.DB(), time.Minute)
	if err != nil {
		return err
	}
	ws, err := vp.ComponentWindows("word-count", "counter", verify.Start(), verify.Start().Add(12*time.Minute))
	if err != nil {
		return err
	}
	ss, err := metrics.Summarise(ws, 4)
	if err != nil {
		return err
	}
	fmt.Printf("   measured sink throughput %s (predicted %s), backpressure %.0f ms/min\n",
		fmtRate(ss.Execute), fmtRate(pred2.SinkThroughput), ss.BackpressureMs)
	fmt.Println("done: the plan absorbed the doubled traffic on the first try.")
	return nil
}

func fmtRate(v float64) string {
	if v > 1e18 {
		return "∞"
	}
	return fmt.Sprintf("%.1f M/min", v/1e6)
}
