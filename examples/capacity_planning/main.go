// Capacity planning from a recorded traffic trace: the operator
// workflow for a topology whose traffic is known only as a recording.
//
//  1. Replay a recorded (CSV-style) daily traffic profile, looped over
//     three days, through the simulated topology to build metric
//     history.
//  2. Backtest the configured forecast models on that history and pick
//     the most accurate one (the model-selection problem the paper's
//     pluggable model tier raises).
//  3. Forecast tomorrow's peak with the winning model.
//  4. Ask the planner for the minimal parallelisms that absorb the peak
//     with headroom, and dry-run-verify the plan.
//
// Run with: go run ./examples/capacity_planning
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"caladrius/internal/core"
	"caladrius/internal/forecast"
	"caladrius/internal/heron"
	"caladrius/internal/metrics"
	"caladrius/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// buildTraceCSV fabricates the "recorded" trace: a business-day double
// peak sampled every 15 minutes, as an operator might export it from
// their metrics system.
func buildTraceCSV() string {
	var b strings.Builder
	b.WriteString("elapsed_seconds,tuples_per_minute\n")
	for m := 0; m <= 24*60; m += 15 {
		h := float64(m) / 60
		rate := 10e6
		// Morning ramp to a lunchtime peak, dip, evening peak.
		switch {
		case h >= 7 && h < 12:
			rate = 10e6 + (h-7)/5*14e6
		case h >= 12 && h < 15:
			rate = 24e6 - (h-12)/3*6e6
		case h >= 15 && h < 20:
			rate = 18e6 + (h-15)/5*12e6
		case h >= 20:
			rate = 30e6 - (h-20)/4*20e6
		}
		fmt.Fprintf(&b, "%d,%.0f\n", m*60, rate)
	}
	return b.String()
}

func run() error {
	// --- 1. Replay the recorded day through the topology. -------------
	trace, err := workload.ParseTraceCSV(strings.NewReader(buildTraceCSV()))
	if err != nil {
		return err
	}
	trace.Interpolate = true
	trace.Loop = true
	fmt.Printf("== replaying the recorded daily profile (peak %.0f M tuples/min) for 3 days through word-count (splitter=6, counter=3)\n",
		trace.RateAt(20*time.Hour)/1e6)
	// The evening peak exceeds the counter's p=3 capacity (≈26.9 M
	// sentences/min), so the bottleneck saturates daily and its SP is
	// observable from history alone.
	sim, err := heron.NewWordCount(heron.WordCountOptions{
		SplitterP: 6, CounterP: 3,
		Schedule: trace.Schedule(),
		Tick:     time.Second,
	})
	if err != nil {
		return err
	}
	if err := sim.Run(3 * 24 * time.Hour); err != nil {
		return err
	}
	prov, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
	if err != nil {
		return err
	}
	start, end := sim.Start(), sim.Start().Add(3*24*time.Hour)

	// --- 2. Pick the best forecast model by backtest. ------------------
	history, err := prov.SourceRate("word-count", []string{"spout"}, start, end)
	if err != nil {
		return err
	}
	candidates := []struct {
		Name    string
		Options map[string]any
	}{
		{"prophet", nil},
		{"holtwinters", nil},
		{"summary", nil},
	}
	ranked := forecast.Rank(candidates, history, 0.2)
	fmt.Println("== backtest ranking on the topology's own history (last 20% held out):")
	for _, r := range ranked {
		if r.Err != nil {
			fmt.Printf("   %-12s not evaluable: %v\n", r.Model, r.Err)
			continue
		}
		fmt.Printf("   %-12s MAPE %5.1f%%  interval coverage %3.0f%%\n", r.Model, 100*r.Accuracy.MAPE, 100*r.Accuracy.Coverage)
	}
	best := ranked[0]
	if best.Err != nil {
		return fmt.Errorf("no forecast model evaluable: %v", best.Err)
	}

	// --- 3. Forecast tomorrow's peak with the winner. ------------------
	m, err := forecast.New(best.Model, best.Options)
	if err != nil {
		return err
	}
	if err := m.Fit(history); err != nil {
		return err
	}
	preds, err := m.Predict(forecast.Horizon(end, time.Minute, 24*60))
	if err != nil {
		return err
	}
	var peak float64
	for _, p := range preds {
		if p.Upper > peak {
			peak = p.Upper
		}
	}
	fmt.Printf("== %s forecasts tomorrow's peak at %.1f M tuples/min (upper band)\n", best.Model, peak/1e6)

	// --- 4. Plan capacity for the peak and dry-run-verify it. ----------
	top, err := heron.WordCountTopology(8, 6, 3)
	if err != nil {
		return err
	}
	models, err := core.CalibrateTopologyFromProvider(prov, top, start, end, core.CalibrationOptions{Warmup: 10})
	if err != nil {
		return err
	}
	tm, err := core.NewTopologyModel(top, models)
	if err != nil {
		return err
	}
	plan, err := tm.SuggestParallelism(peak, 0.2)
	if err != nil {
		return err
	}
	plan["spout"] = 8
	// Only components whose saturation point was observed can be
	// sized; the rest keep their current (never-saturated) parallelism.
	for _, c := range top.Components() {
		if m, ok := models[c.Name]; ok && !m.Instance.SaturatedObservable() && c.Name != "spout" {
			if plan[c.Name] < c.Parallelism {
				fmt.Printf("   (%s never saturated in the trace; keeping its current parallelism %d)\n", c.Name, c.Parallelism)
				plan[c.Name] = c.Parallelism
			}
		}
	}
	pred, err := tm.Predict(plan, peak)
	if err != nil {
		return err
	}
	fmt.Printf("== plan for the peak: splitter=%d counter=%d → risk %s, saturates at %.1f M, %.1f cores\n",
		plan["splitter"], plan["counter"], pred.Risk, pred.SaturationSource/1e6, pred.TotalCPU)
	if pred.Risk != core.RiskLow {
		return fmt.Errorf("planned configuration still at risk")
	}

	fmt.Println("done: capacity plan derived entirely from the recorded trace — no live deployments.")
	return nil
}
