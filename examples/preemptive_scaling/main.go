// Preemptive scaling: the paper's headline use case. A topology runs
// under strongly seasonal traffic; Caladrius forecasts the next day's
// peak with its Prophet-substitute, detects that the peak would
// saturate the current configuration, and finds — without any
// deployment — a parallelism change that absorbs it.
//
// This example exercises the full service stack over HTTP: the Heron
// simulator generates three days of seasonal metric history, the
// topology is registered with the tracker, and the Caladrius REST API
// answers a traffic-forecast request and two dry-run performance
// requests (current plan and proposed plan) with use_forecast=true.
//
// Run with: go run ./examples/preemptive_scaling
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"caladrius/internal/api"
	"caladrius/internal/config"
	"caladrius/internal/core"
	"caladrius/internal/heron"
	"caladrius/internal/metrics"
	"caladrius/internal/topology"
	"caladrius/internal/tracker"
	"caladrius/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Simulate three days of seasonal production traffic. ---------
	// Daily peaks (22.4 M tuples/min) slightly exceed the splitter's
	// p=2 capacity (21.6 M), so the topology already brushes
	// saturation at peak — which is also what lets Caladrius calibrate
	// the saturation point from history alone.
	spec := workload.TrafficSpec{Base: 16e6, DailyAmplitude: 0.4}
	fmt.Println("== simulating 3 days of seasonal traffic on word-count (splitter=2, counter=3)")
	sim, err := heron.NewWordCount(heron.WordCountOptions{
		SplitterP: 2, CounterP: 3,
		Tick: time.Second,
	})
	if err != nil {
		return err
	}
	// Rebuild with the seasonal schedule anchored at the simulation
	// start.
	sim, err = heron.NewWordCount(heron.WordCountOptions{
		SplitterP: 2, CounterP: 3,
		Schedule: workload.SeasonalRate(spec, sim.Start()),
		Tick:     time.Second,
	})
	if err != nil {
		return err
	}
	if err := sim.Run(3 * 24 * time.Hour); err != nil {
		return err
	}
	asOf := sim.Start().Add(3 * 24 * time.Hour)

	// --- Stand up the Caladrius service over that history. -----------
	top, err := heron.WordCountTopology(8, 2, 3)
	if err != nil {
		return err
	}
	plan, err := topology.RoundRobinPack(top, 2)
	if err != nil {
		return err
	}
	tr := tracker.New(func() time.Time { return asOf })
	if err := tr.Register(top, plan); err != nil {
		return err
	}
	provider, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
	if err != nil {
		return err
	}
	cfg := config.Default()
	cfg.CalibrationLookback = 3 * 24 * time.Hour
	cfg.CalibrationWarmup = 10
	svc, err := api.New(cfg, tr, provider, nil, func() time.Time { return asOf })
	if err != nil {
		return err
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	fmt.Println("== caladrius service listening at", srv.URL)

	// --- 1. Forecast tomorrow's traffic. ------------------------------
	var forecastResp api.TrafficResponse
	if err := post(srv.URL+"/api/v1/model/traffic/word-count?sync=true", api.TrafficRequest{
		SourceMinutes:  3 * 24 * 60,
		HorizonMinutes: 24 * 60,
		Models:         []string{"prophet"},
	}, &forecastResp); err != nil {
		return err
	}
	var peak float64
	var peakAt time.Time
	for _, p := range forecastResp.Results[0].Predictions {
		if p.Upper > peak {
			peak, peakAt = p.Upper, p.T
		}
	}
	fmt.Printf("== 1. prophet forecasts tomorrow's peak: %.1f M tuples/min around %s\n",
		peak/1e6, peakAt.Format("15:04"))

	// --- 2. Dry-run the current plan at the forecast peak. ------------
	var current api.PerformanceResponse
	if err := post(srv.URL+"/api/v1/model/topology/word-count/performance?sync=true", api.PerformanceRequest{
		UseForecast:    true,
		SourceMinutes:  3 * 24 * 60,
		HorizonMinutes: 24 * 60,
	}, &current); err != nil {
		return err
	}
	fmt.Printf("== 2. current plan at the peak: risk %s (saturates at %.1f M, bottleneck %s)\n",
		current.Prediction.Risk, current.Prediction.SaturationSource/1e6, current.Prediction.Bottleneck)
	if current.Prediction.Risk != core.RiskHigh {
		return fmt.Errorf("expected the seasonal peak to endanger the current plan")
	}

	// --- 3. Find the cheapest safe plan, still without deploying. -----
	for splitterP := 3; splitterP <= 6; splitterP++ {
		var proposed api.PerformanceResponse
		if err := post(srv.URL+"/api/v1/model/topology/word-count/performance?sync=true", api.PerformanceRequest{
			Parallelism:    map[string]int{"splitter": splitterP},
			UseForecast:    true,
			SourceMinutes:  3 * 24 * 60,
			HorizonMinutes: 24 * 60,
		}, &proposed); err != nil {
			return err
		}
		fmt.Printf("== 3. proposal splitter=%d: risk %s, predicted CPU %.1f cores\n",
			splitterP, proposed.Prediction.Risk, proposed.Prediction.TotalCPU)
		if proposed.Prediction.Risk == core.RiskLow {
			fmt.Printf("done: scale splitter 2 → %d before %s to ride out the peak (no deployments spent).\n",
				splitterP, peakAt.Format("15:04"))
			return nil
		}
	}
	return fmt.Errorf("no safe plan found up to splitter=6")
}

func post(url string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("POST %s: %s (%v)", url, resp.Status, e)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
