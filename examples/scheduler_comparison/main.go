// Scheduler comparison: the paper's "improved scheduler selection" use
// case. Several proposed topology configurations — produced by
// different schedulers/packing algorithms — are assessed in parallel
// against the performance model, so the best one is known before
// anything is deployed.
//
// The example compares:
//   - packing plans from two schedulers (Heron-style round-robin vs
//     first-fit-decreasing bin packing) on container count and
//     cross-container traffic (via the physical topology graph), and
//   - four candidate parallelism configurations, evaluated
//     concurrently against the calibrated model at the target rate.
//
// Run with: go run ./examples/scheduler_comparison
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"caladrius/internal/core"
	"caladrius/internal/graph"
	"caladrius/internal/heron"
	"caladrius/internal/metrics"
	"caladrius/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const targetRate = 45e6 // tuples/minute the job must sustain

	// --- Calibrate models once, from two profiling runs. -------------
	fmt.Println("== calibrating word-count models (one linear run, one saturated run per bolt)")
	models, err := calibrate()
	if err != nil {
		return err
	}

	// --- Compare packing plans produced by two schedulers. ------------
	top, err := heron.WordCountTopology(8, 4, 5)
	if err != nil {
		return err
	}
	rr, err := topology.RoundRobinPack(top, 4)
	if err != nil {
		return err
	}
	ffd, err := topology.FirstFitDecreasingPack(top, 6, 12*1024)
	if err != nil {
		return err
	}
	fmt.Println("== scheduler packing plans for (spout=8, splitter=4, counter=5):")
	for name, plan := range map[string]*topology.PackingPlan{"round-robin": rr, "first-fit-decreasing": ffd} {
		remote := graph.RemoteTransferFraction(top, plan)
		var worst float64
		for _, f := range remote {
			if f > worst {
				worst = f
			}
		}
		phys, err := graph.BuildPhysical(top, plan)
		if err != nil {
			return err
		}
		fmt.Printf("   %-22s containers=%d graph: %d vertices / %d edges, worst cross-container stream fraction %.0f%%\n",
			name, len(plan.Containers), phys.VertexCount(), phys.EdgeCount(), 100*worst)
	}

	// --- Evaluate candidate configurations in parallel. ---------------
	tm, err := core.NewTopologyModel(top, models)
	if err != nil {
		return err
	}
	candidates := []map[string]int{
		{"splitter": 4, "counter": 4},
		{"splitter": 5, "counter": 5},
		{"splitter": 5, "counter": 6},
		{"splitter": 6, "counter": 7},
	}
	type verdict struct {
		plan map[string]int
		pred core.TopologyPrediction
		err  error
	}
	results := make([]verdict, len(candidates))
	var wg sync.WaitGroup
	for i, cand := range candidates {
		wg.Add(1)
		go func(i int, cand map[string]int) {
			defer wg.Done()
			pred, err := tm.Predict(cand, targetRate)
			results[i] = verdict{plan: cand, pred: pred, err: err}
		}(i, cand)
	}
	wg.Wait()

	fmt.Printf("== candidate configurations at %.0f M tuples/min (evaluated in parallel):\n", targetRate/1e6)
	var safe []verdict
	for _, v := range results {
		if v.err != nil {
			return v.err
		}
		fmt.Printf("   splitter=%d counter=%d → risk %-4s  saturates at %6.1f M  CPU %.1f cores\n",
			v.plan["splitter"], v.plan["counter"], v.pred.Risk, v.pred.SaturationSource/1e6, v.pred.TotalCPU)
		if v.pred.Risk == core.RiskLow {
			safe = append(safe, v)
		}
	}
	if len(safe) == 0 {
		return fmt.Errorf("no candidate met the target safely")
	}
	sort.Slice(safe, func(i, j int) bool { return safe[i].pred.TotalCPU < safe[j].pred.TotalCPU })
	best := safe[0]
	fmt.Printf("done: cheapest safe plan is splitter=%d counter=%d (%.1f cores) — chosen without a single deployment.\n",
		best.plan["splitter"], best.plan["counter"], best.pred.TotalCPU)
	return nil
}

// calibrate builds saturation-complete models using one
// splitter-bottleneck run and one counter-bottleneck run. The
// topology-aware calibration discards backpressure a component merely
// inherited from a downstream bottleneck, so each run pins exactly one
// component's saturation point.
func calibrate() (map[string]*core.ComponentModel, error) {
	models := map[string]*core.ComponentModel{}
	runs := []struct {
		splitterP, counterP int
		rate                float64
	}{
		{2, 6, 40e6}, // splitter saturates
		{6, 3, 35e6}, // counter saturates
	}
	for _, r := range runs {
		sim, err := heron.NewWordCount(heron.WordCountOptions{SplitterP: r.splitterP, CounterP: r.counterP, RatePerMinute: r.rate})
		if err != nil {
			return nil, err
		}
		if err := sim.Run(12 * time.Minute); err != nil {
			return nil, err
		}
		prov, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
		if err != nil {
			return nil, err
		}
		top, err := heron.WordCountTopology(8, r.splitterP, r.counterP)
		if err != nil {
			return nil, err
		}
		runModels, err := core.CalibrateTopologyFromProvider(prov, top,
			sim.Start(), sim.Start().Add(12*time.Minute), core.CalibrationOptions{Warmup: 4})
		if err != nil {
			return nil, err
		}
		for comp, m := range runModels {
			prev, ok := models[comp]
			switch {
			case !ok:
				models[comp] = m
			case prev.Parallelism == m.Parallelism:
				merged, err := core.MergeCalibrations(prev, m)
				if err != nil {
					return nil, err
				}
				models[comp] = merged
			case m.Instance.SaturatedObservable() && !prev.Instance.SaturatedObservable():
				models[comp] = m
			}
		}
	}
	return models, nil
}
