// Word-count tuning race: Dhalion's reactive scaling loop versus
// Caladrius' model-driven planning, on the paper's motivating problem —
// bringing an under-provisioned topology up to a throughput SLO.
//
// Dhalion deploys, waits for the topology to stabilise, reads the
// symptoms, scales the bottleneck one step, and repeats — one
// deployment per increment. Caladrius treats every deployment as a
// calibration opportunity: the run pins the current bottleneck's
// saturation point, and the model's dry run then sizes that component
// exactly, so the loop needs roughly one deployment per *distinct*
// bottleneck plus a final verification.
//
// Run with: go run ./examples/wordcount_tuning
package main

import (
	"fmt"
	"log"

	"caladrius/internal/dhalion"
	"caladrius/internal/heron"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const rate = 40e6 // offered tuples/minute
	slo := rate * heron.SplitterAlpha * 0.98
	initial := map[string]int{"spout": 8, "splitter": 1, "counter": 1}
	fmt.Printf("goal: sustain %.0f M words/min from a (splitter=1, counter=1) start\n\n", slo/1e6)

	// --- Dhalion: symptom → diagnosis → resolution, repeatedly. -------
	fmt.Println("== dhalion (reactive):")
	deployer := &dhalion.WordCountDeployer{RatePerMinute: rate}
	dres, err := dhalion.Scaler{SLOThroughputTPM: slo}.Run(initial, deployer)
	if err != nil {
		return err
	}
	for i, round := range dres.Rounds {
		fmt.Printf("   round %2d: splitter=%d counter=%d → %6.1f M words/min — %s\n",
			i+1, round.Parallelisms["splitter"], round.Parallelisms["counter"],
			round.Measurement.SinkThroughputTPM/1e6, round.Diagnosis)
	}
	fmt.Printf("   dhalion converged after %d deployments\n\n", dres.Deployments())

	// --- Caladrius: calibrate from each deployment, plan the next. ----
	fmt.Println("== caladrius (model-driven):")
	cres, err := dhalion.CaladriusTuner{RatePerMinute: rate, SLOThroughputTPM: slo}.Run(initial)
	if err != nil {
		return err
	}
	for i, round := range cres.Rounds {
		fmt.Printf("   round %2d: splitter=%d counter=%d → %6.1f M words/min — %s\n",
			i+1, round.Parallelisms["splitter"], round.Parallelisms["counter"],
			round.Measurement.SinkThroughputTPM/1e6, round.Diagnosis)
	}
	if !cres.Converged {
		return fmt.Errorf("caladrius did not converge: %s", cres.Reason)
	}
	fmt.Printf("   caladrius converged after %d deployments\n", cres.Deployments())

	fmt.Printf("\nresult: dhalion %d deployments, caladrius %d — a %.1fx reduction in tuning iterations.\n",
		dres.Deployments(), cres.Deployments(), float64(dres.Deployments())/float64(cres.Deployments()))
	return nil
}
