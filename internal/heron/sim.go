package heron

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"time"

	"caladrius/internal/telemetry"
	"caladrius/internal/topology"
	"caladrius/internal/tsdb"
	"caladrius/internal/workload"
)

// Metric names emitted by the simulator, modelled on Heron's metrics.
const (
	// MetricSourceCount is the external offered load at a spout
	// instance per window (the paper's "source throughput").
	MetricSourceCount = "source-count"
	// MetricArrivalCount is tuples arriving at an instance per window.
	MetricArrivalCount = "arrival-count"
	// MetricExecuteCount is tuples processed per window (the paper's
	// "processed-count"; the entity's input throughput).
	MetricExecuteCount = "execute-count"
	// MetricEmitCount is tuples emitted per window (output throughput).
	MetricEmitCount = "emit-count"
	// MetricFailCount is tuples failed in user logic per window.
	MetricFailCount = "fail-count"
	// MetricBackpressureMs is milliseconds of the window this instance
	// spent initiating backpressure (0–60000 for 1-minute windows).
	MetricBackpressureMs = "backpressure-time-ms"
	// MetricCPULoad is the average CPU cores used over the window.
	MetricCPULoad = "cpu-load"
	// MetricPendingBytes is the queue occupancy gauge at window end.
	MetricPendingBytes = "pending-bytes"
	// MetricBacklogTuples is the external (pub-sub) backlog gauge at a
	// spout instance at window end.
	MetricBacklogTuples = "external-backlog"
	// MetricStreamEmitCount is tuples emitted per window on one named
	// output stream (label "stream"), enabling per-stream I/O
	// coefficient calibration for fan-out components.
	MetricStreamEmitCount = "stream-emit-count"
	// MetricRestartCount counts out-of-memory restarts of an instance
	// per window: §V-E notes instances "may exceed the container memory
	// limit when their input rate rises to sufficiently high levels".
	// A restart drops the instance's queue (counted as failed tuples)
	// and takes the instance offline for RestartDelay.
	MetricRestartCount = "restart-count"
	// MetricLatencyMs is the average queueing delay a tuple experienced
	// at this instance over the window, in milliseconds (Little's law:
	// queue length over service rate, averaged per tick). One of the
	// paper's four golden signals: latency rises once queues build,
	// i.e. under backpressure.
	MetricLatencyMs = "queue-latency-ms"
)

// TopologyComponent is the pseudo-component label under which
// topology-wide metrics (e.g. topology backpressure time) are stored.
const TopologyComponent = "__topology__"

// Default watermarks match Heron's defaults quoted in the paper.
const (
	DefaultHighWatermarkBytes = 100e6
	DefaultLowWatermarkBytes  = 50e6
)

// Config assembles a simulation.
type Config struct {
	// Topology is the logical job; required.
	Topology *topology.Topology
	// Plan assigns instances to containers. Default: round-robin over
	// 2 containers (the paper's Fig. 1 layout).
	Plan *topology.PackingPlan
	// Profiles maps component name → performance profile; every
	// component must have one.
	Profiles map[string]ComponentProfile
	// SpoutRates maps spout component name → total offered source rate
	// (tuples/second across all its instances); every spout must have
	// one.
	SpoutRates map[string]workload.RateSchedule
	// HighWatermarkBytes / LowWatermarkBytes configure backpressure
	// hysteresis; defaults 100 MB / 50 MB.
	HighWatermarkBytes float64
	LowWatermarkBytes  float64
	// Tick is the simulation step. Default 100 ms.
	Tick time.Duration
	// MetricsInterval is the metrics rollup window. Default 1 minute.
	MetricsInterval time.Duration
	// DB receives metrics; one is created when nil.
	DB *tsdb.DB
	// Start is the simulated wall-clock origin. Default 2026-01-05
	// 00:00 UTC (a Monday, so weekly seasonality aligns).
	Start time.Time
	// SlowFactors scales individual instances' service rates (failure
	// injection: a degraded instance has factor < 1).
	SlowFactors map[topology.InstanceID]float64
	// ServiceNoiseStd makes the run behave like a real deployment on a
	// shared cluster: each instance's capacity is scaled once per run
	// by a Gaussian factor (the host it landed on), and jittered each
	// tick (contention, GC pauses). 0 disables both; the paper's
	// testbed numbers imply a few percent.
	ServiceNoiseStd float64
	// NoiseSeed makes the noise reproducible; runs with different
	// seeds act as independent repetitions of an experiment.
	NoiseSeed int64
	// RestartDelay is how long an instance stays offline after an
	// out-of-memory restart. Default 10s. An instance restarts when its
	// pending queue exceeds its container RAM allocation — with the
	// default 2 GB per instance and 100 MB watermarks this never fires;
	// it is reachable via custom resources or watermarks (failure
	// injection).
	RestartDelay time.Duration
	// Metrics, when set, receives simulator event telemetry: tick
	// counts and wall-clock tick durations, backpressure on/off
	// transitions, and tuples processed/dropped. Nil disables event
	// telemetry entirely (no per-tick clock reads).
	Metrics *telemetry.Registry
	// Injector, when set, applies scheduled faults to the simulation
	// (see FaultInjector in faults.go). It can also be attached after
	// construction with WithFaultInjector.
	Injector FaultInjector
}

// simEvents bundles the simulator's telemetry instruments, labelled by
// topology so several simulations can share one registry.
type simEvents struct {
	ticks     *telemetry.Counter
	tickDur   *telemetry.Histogram
	bpOn      *telemetry.Counter
	bpOff     *telemetry.Counter
	bpActive  *telemetry.Gauge
	processed *telemetry.Counter
	dropped   *telemetry.Counter
}

func newSimEvents(reg *telemetry.Registry, topo string) *simEvents {
	l := telemetry.Labels{"topology": topo}
	reg.SetHelp("caladrius_sim_ticks_total", "Simulation ticks executed.")
	reg.SetHelp("caladrius_sim_tick_duration_seconds", "Wall-clock cost of one simulation tick.")
	reg.SetHelp("caladrius_sim_backpressure_transitions_total", "Instance backpressure flag flips, by new state.")
	reg.SetHelp("caladrius_sim_backpressure_active_instances", "Instances currently initiating backpressure.")
	reg.SetHelp("caladrius_sim_tuples_processed_total", "Tuples executed across all instances.")
	reg.SetHelp("caladrius_sim_tuples_dropped_total", "Tuples lost to user-logic failures and OOM restarts.")
	return &simEvents{
		ticks:     reg.Counter("caladrius_sim_ticks_total", l),
		tickDur:   reg.Histogram("caladrius_sim_tick_duration_seconds", telemetry.DefTickBuckets, l),
		bpOn:      reg.Counter("caladrius_sim_backpressure_transitions_total", telemetry.Labels{"topology": topo, "state": "on"}),
		bpOff:     reg.Counter("caladrius_sim_backpressure_transitions_total", telemetry.Labels{"topology": topo, "state": "off"}),
		bpActive:  reg.Gauge("caladrius_sim_backpressure_active_instances", l),
		processed: reg.Counter("caladrius_sim_tuples_processed_total", l),
		dropped:   reg.Counter("caladrius_sim_tuples_dropped_total", l),
	}
}

type route struct {
	stream      string
	toComponent string
	grouping    topology.Grouping
	weights     []float64 // fields grouping shares per downstream instance
	alpha       float64
	toInstances []*instanceState

	// wStreamEmit accumulates this route's per-window stream emits;
	// emitSeen turns true on the first emit, after which the series is
	// flushed every window (matching the historical lazily-created
	// per-stream map semantics without its per-tick key allocations).
	wStreamEmit float64
	emitSeen    bool
	series      *tsdb.SeriesHandle
}

// instanceSeries bundles an instance's interned tsdb series handles,
// created once at New so flushWindow appends without rebuilding label
// maps or formatting instance/container ids.
type instanceSeries struct {
	source, backlog, arrival, execute, emit, fail,
	bpMs, cpu, latency, pending, restarts *tsdb.SeriesHandle
}

type instanceState struct {
	id        topology.InstanceID
	container int
	profile   ComponentProfile
	isSpout   bool
	slow      float64 // service-rate multiplier
	// baseSlow preserves the noise-adjusted multiplier so slow faults
	// can scale slow and revert it exactly; fUnreach marks the instance
	// partitioned (arrivals addressed to it are lost in flight). Both
	// are only ever set by applyFaults (see faults.go).
	baseSlow float64
	fUnreach bool

	// Hoisted spout lookups: the component's offered-rate schedule and
	// instance count, resolved once at New instead of two map lookups
	// per spout per tick.
	rate  workload.RateSchedule
	peers float64

	series instanceSeries

	queueTuples float64 // pending in the instance's input queue
	backlog     float64 // external source backlog (spouts)
	bp          bool    // instance currently initiating backpressure
	ramBytes    float64 // container RAM allocation for this instance
	downTicks   int     // remaining offline ticks after an OOM restart
	wRestarts   float64

	arrivedTick float64 // arrivals routed to this instance this tick

	// Window accumulators.
	wSource   float64
	wArrived  float64
	wExecuted float64
	wEmitted  float64
	wFailed   float64
	wBpMs     float64
	wCPUSecs  float64
	wLatMs    float64 // sum over ticks of per-tick queue latency (ms)
	wLatTicks float64
	// wQueueDropped / wRouteDropped split the window's failed tuples by
	// cause for the conservation totals: queue losses (OOM restarts and
	// injected crashes) versus arrivals discarded by a partition fault.
	// Both are also counted into wFailed.
	wQueueDropped float64
	wRouteDropped float64

	// cum holds the totals of every closed window; Totals() adds the
	// live window accumulators on top, so cumulative counts are exact
	// at any tick without touching the per-tick hot path (the adds
	// happen once per flushWindow).
	cum cumTotals

	routes []route
}

// cumTotals accumulates flushed window counters for Totals().
type cumTotals struct {
	source, arrived, executed, emitted, failed float64
	queueDropped, routeDropped, restarts, bpMs float64
}

// Simulation is a runnable instance of the simulator. Create with New;
// a Simulation is single-goroutine (drive it from one caller).
type Simulation struct {
	cfg       Config
	db        *tsdb.DB
	instances []*instanceState // topological component order
	byComp    map[string][]*instanceState
	elapsed   time.Duration
	windowEnd time.Duration
	topoBP    bool // backpressure state broadcast this tick (previous tick's flags)
	wTopoBpMs float64
	noise     *rand.Rand // nil when ServiceNoiseStd == 0
	events    *simEvents // nil when Config.Metrics is nil

	injector  FaultInjector // nil when no fault injection
	faultTick bool          // a fault was active on the previous tick

	topoBpSeries *tsdb.SeriesHandle
	tickMs       float64 // float64(Tick.Milliseconds()), hoisted
}

// New validates the configuration and builds a simulation.
func New(cfg Config) (*Simulation, error) {
	if cfg.Topology == nil {
		return nil, errors.New("heron: nil topology")
	}
	t := cfg.Topology
	if cfg.Plan == nil {
		plan, err := topology.RoundRobinPack(t, 2)
		if err != nil {
			return nil, err
		}
		cfg.Plan = plan
	} else if err := cfg.Plan.Validate(t); err != nil {
		return nil, err
	}
	if cfg.HighWatermarkBytes == 0 {
		cfg.HighWatermarkBytes = DefaultHighWatermarkBytes
	}
	if cfg.LowWatermarkBytes == 0 {
		cfg.LowWatermarkBytes = DefaultLowWatermarkBytes
	}
	if cfg.LowWatermarkBytes <= 0 || cfg.HighWatermarkBytes <= cfg.LowWatermarkBytes {
		return nil, fmt.Errorf("heron: watermarks high %g must exceed low %g > 0", cfg.HighWatermarkBytes, cfg.LowWatermarkBytes)
	}
	if cfg.Tick == 0 {
		cfg.Tick = 100 * time.Millisecond
	}
	if cfg.Tick <= 0 {
		return nil, fmt.Errorf("heron: non-positive tick %s", cfg.Tick)
	}
	if cfg.MetricsInterval == 0 {
		cfg.MetricsInterval = time.Minute
	}
	if cfg.MetricsInterval < cfg.Tick {
		return nil, fmt.Errorf("heron: metrics interval %s below tick %s", cfg.MetricsInterval, cfg.Tick)
	}
	if cfg.DB == nil {
		cfg.DB = tsdb.New(0)
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	}
	for _, c := range t.Components() {
		p, ok := cfg.Profiles[c.Name]
		if !ok {
			return nil, fmt.Errorf("heron: component %q has no profile", c.Name)
		}
		if err := p.validate(c.Name); err != nil {
			return nil, err
		}
		if c.Kind == topology.Spout {
			if _, ok := cfg.SpoutRates[c.Name]; !ok {
				return nil, fmt.Errorf("heron: spout %q has no rate schedule", c.Name)
			}
		}
	}
	for name := range cfg.SpoutRates {
		c := t.Component(name)
		if c == nil || c.Kind != topology.Spout {
			return nil, fmt.Errorf("heron: rate schedule for non-spout %q", name)
		}
	}

	if cfg.ServiceNoiseStd < 0 {
		return nil, fmt.Errorf("heron: negative service noise %g", cfg.ServiceNoiseStd)
	}
	if cfg.RestartDelay == 0 {
		cfg.RestartDelay = 10 * time.Second
	}
	if cfg.RestartDelay < 0 {
		return nil, fmt.Errorf("heron: negative restart delay %s", cfg.RestartDelay)
	}
	s := &Simulation{cfg: cfg, db: cfg.DB, byComp: map[string][]*instanceState{}, injector: cfg.Injector}
	if cfg.Metrics != nil {
		s.events = newSimEvents(cfg.Metrics, t.Name())
	}
	if cfg.ServiceNoiseStd > 0 {
		s.noise = rand.New(rand.NewSource(cfg.NoiseSeed))
	}
	for _, id := range t.Instances() {
		cont, _ := cfg.Plan.ContainerOf(id)
		comp := t.Component(id.Component)
		slow := 1.0
		if f, ok := cfg.SlowFactors[id]; ok {
			if f <= 0 {
				return nil, fmt.Errorf("heron: non-positive slow factor %g for %s", f, id)
			}
			slow = f
		}
		if s.noise != nil {
			// Per-run systematic placement variation: the "host" this
			// instance landed on for this deployment.
			f := 1 + cfg.ServiceNoiseStd*s.noise.NormFloat64()
			if f < 0.1 {
				f = 0.1
			}
			slow *= f
		}
		inst := &instanceState{
			id:        id,
			container: cont,
			profile:   cfg.Profiles[id.Component].withDefaults(),
			isSpout:   comp.Kind == topology.Spout,
			slow:      slow,
			baseSlow:  slow,
			ramBytes:  float64(comp.Resources.RAMMB) * 1e6,
		}
		s.instances = append(s.instances, inst)
		s.byComp[id.Component] = append(s.byComp[id.Component], inst)
	}
	// Precompute routing tables.
	for _, inst := range s.instances {
		for _, stream := range t.Outbound(inst.id.Component) {
			emit := inst.profile.alphaFor(stream.Name)
			downP := t.Component(stream.To).Parallelism
			var weights []float64
			if stream.Grouping == topology.FieldsGrouping {
				km := emit.Keys
				if km == nil {
					km = UniformKeys{}
				}
				weights = km.Weights(downP)
			}
			inst.routes = append(inst.routes, route{
				stream:      stream.Name,
				toComponent: stream.To,
				grouping:    stream.Grouping,
				weights:     weights,
				alpha:       emit.Alpha,
				toInstances: s.byComp[stream.To],
			})
		}
	}
	// Intern every series the instance will ever write, and hoist the
	// per-tick spout lookups, now that byComp is complete. Handles bind
	// their series lazily, so never-written ones (spout metrics on
	// bolts, streams that never emit) leave the database untouched.
	s.tickMs = float64(cfg.Tick.Milliseconds())
	topoName := t.Name()
	for _, inst := range s.instances {
		if inst.isSpout {
			inst.rate = cfg.SpoutRates[inst.id.Component]
			inst.peers = float64(len(s.byComp[inst.id.Component]))
		}
		base := tsdb.Labels{
			"topology":  topoName,
			"component": inst.id.Component,
			"instance":  strconv.Itoa(inst.id.Index),
			"container": strconv.Itoa(inst.container),
		}
		inst.series = instanceSeries{
			source:   s.db.Handle(MetricSourceCount, base),
			backlog:  s.db.Handle(MetricBacklogTuples, base),
			arrival:  s.db.Handle(MetricArrivalCount, base),
			execute:  s.db.Handle(MetricExecuteCount, base),
			emit:     s.db.Handle(MetricEmitCount, base),
			fail:     s.db.Handle(MetricFailCount, base),
			bpMs:     s.db.Handle(MetricBackpressureMs, base),
			cpu:      s.db.Handle(MetricCPULoad, base),
			latency:  s.db.Handle(MetricLatencyMs, base),
			pending:  s.db.Handle(MetricPendingBytes, base),
			restarts: s.db.Handle(MetricRestartCount, base),
		}
		for ri := range inst.routes {
			r := &inst.routes[ri]
			sl := base.Clone()
			sl["stream"] = r.stream + "->" + r.toComponent
			r.series = s.db.Handle(MetricStreamEmitCount, sl)
		}
	}
	s.topoBpSeries = s.db.Handle(MetricBackpressureMs, tsdb.Labels{
		"topology":  topoName,
		"component": TopologyComponent,
		"instance":  "0",
		"container": "-1",
	})
	return s, nil
}

// DB returns the metrics database the simulation writes to.
func (s *Simulation) DB() *tsdb.DB { return s.db }

// Start returns the simulated wall-clock origin.
func (s *Simulation) Start() time.Time { return s.cfg.Start }

// Elapsed returns the simulated time processed so far.
func (s *Simulation) Elapsed() time.Duration { return s.elapsed }

// Run advances the simulation by the given simulated duration, writing
// metrics for every completed rollup window.
func (s *Simulation) Run(d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("heron: negative duration %s", d)
	}
	end := s.elapsed + d
	for s.elapsed < end {
		s.step()
	}
	return nil
}

// step advances one tick.
func (s *Simulation) step() {
	dt := s.cfg.Tick
	dtSec := dt.Seconds()
	var wallStart time.Time
	if s.events != nil {
		wallStart = time.Now()
	}
	var tickProcessed, tickDropped float64

	// Backpressure state broadcast: spouts react to the flags set at
	// the end of the previous tick (one-tick propagation delay).
	s.topoBP = false
	for _, inst := range s.instances {
		if inst.bp {
			s.topoBP = true
			break
		}
	}

	if s.injector != nil {
		tickDropped += s.applyFaults()
	}

	for _, inst := range s.instances {
		var processed float64
		capacity := inst.profile.ServiceRate * inst.slow * dtSec
		if s.noise != nil {
			f := 1 + s.cfg.ServiceNoiseStd*s.noise.NormFloat64()
			if f < 0 {
				f = 0
			}
			capacity *= f
		}
		if inst.isSpout {
			offered := inst.rate(s.elapsed) * dtSec / inst.peers
			if offered < 0 {
				offered = 0
			}
			inst.wSource += offered
			inst.backlog += offered
			if inst.downTicks > 0 {
				// Offline (crash or stall fault): the source keeps
				// producing into the external backlog, but nothing is
				// pulled.
				inst.downTicks--
			} else if !s.topoBP {
				processed = inst.backlog
				if processed > capacity {
					processed = capacity
				}
				// A spout draining backlog at its maximum pull rate
				// must not overshoot downstream queues within one
				// tick: in the real system, in-flight data is bounded
				// by the stream managers' socket buffers, so delivery
				// halts as soon as the receiver's high watermark is
				// reached. Bound this tick's pull by the downstream
				// headroom (queue space up to the watermark plus one
				// tick of downstream processing).
				if room := s.downstreamHeadroom(inst, dtSec); processed > room {
					processed = room
				}
				inst.backlog -= processed
			}
		} else {
			arrived := inst.arrivedTick
			inst.arrivedTick = 0
			if inst.fUnreach {
				// Partition fault: arrivals addressed to this instance
				// are lost in flight.
				inst.wRouteDropped += arrived
				inst.wFailed += arrived
				tickDropped += arrived
				arrived = 0
			}
			inst.wArrived += arrived
			inst.queueTuples += arrived
			if inst.queueTuples*inst.profile.BytesPerTuple > inst.ramBytes {
				// Out of memory: the instance restarts, losing its
				// queued tuples and going offline for RestartDelay.
				inst.wFailed += inst.queueTuples
				inst.wQueueDropped += inst.queueTuples
				tickDropped += inst.queueTuples
				inst.queueTuples = 0
				inst.wRestarts++
				inst.downTicks = int(s.cfg.RestartDelay / s.cfg.Tick)
			}
			if inst.downTicks > 0 {
				inst.downTicks--
			} else {
				processed = inst.queueTuples
				if processed > capacity {
					processed = capacity
				}
				inst.queueTuples -= processed
			}
		}
		failed := processed * inst.profile.FailureRate
		ok := processed - failed
		inst.wExecuted += processed
		inst.wFailed += failed
		tickProcessed += processed
		tickDropped += failed

		var emitted float64
		for ri := range inst.routes {
			r := &inst.routes[ri]
			out := ok * r.alpha
			if out == 0 {
				continue
			}
			streamOut := out
			switch r.grouping {
			case topology.ShuffleGrouping:
				share := out / float64(len(r.toInstances))
				for _, down := range r.toInstances {
					down.arrivedTick += share
				}
				emitted += out
			case topology.FieldsGrouping:
				for i, down := range r.toInstances {
					down.arrivedTick += out * r.weights[i]
				}
				emitted += out
			case topology.AllGrouping:
				for _, down := range r.toInstances {
					down.arrivedTick += out
				}
				streamOut = out * float64(len(r.toInstances))
				emitted += streamOut
			case topology.GlobalGrouping:
				r.toInstances[0].arrivedTick += out
				emitted += out
			}
			r.wStreamEmit += streamOut
			r.emitSeen = true
		}
		inst.wEmitted += emitted
		inst.wCPUSecs += processed*inst.profile.CPUPerTuple + (processed+emitted)*inst.profile.GatewayCPUPerTuple
		if !inst.isSpout {
			// Little's law estimate of per-tuple queueing delay: the
			// queue left after service divided by the service rate.
			rate := inst.profile.ServiceRate * inst.slow
			if rate > 0 {
				inst.wLatMs += inst.queueTuples / rate * 1000
				inst.wLatTicks++
			}
		}
	}

	// Update watermark-based backpressure flags.
	var bpOnN, bpOffN, bpActive int
	for _, inst := range s.instances {
		was := inst.bp
		pending := inst.queueTuples * inst.profile.BytesPerTuple
		if pending > s.cfg.HighWatermarkBytes {
			inst.bp = true
		} else if pending < s.cfg.LowWatermarkBytes {
			inst.bp = false
		}
		if inst.bp {
			inst.wBpMs += s.tickMs
			bpActive++
			if !was {
				bpOnN++
			}
		} else if was {
			bpOffN++
		}
	}
	if s.topoBP {
		s.wTopoBpMs += s.tickMs
	}

	s.elapsed += dt
	if s.elapsed >= s.windowEnd+s.cfg.MetricsInterval {
		s.flushWindow()
	}
	if ev := s.events; ev != nil {
		ev.ticks.Inc()
		ev.tickDur.Observe(time.Since(wallStart).Seconds())
		ev.processed.Add(tickProcessed)
		ev.dropped.Add(tickDropped)
		ev.bpActive.Set(float64(bpActive))
		if bpOnN > 0 {
			ev.bpOn.Add(float64(bpOnN))
		}
		if bpOffN > 0 {
			ev.bpOff.Add(float64(bpOffN))
		}
	}
}

// downstreamHeadroom returns how many tuples a spout instance may emit
// this tick without pushing any downstream instance past its high
// watermark, allowing for one tick of downstream processing. The
// constraint is evaluated per route and converted to input tuples via
// the route's I/O coefficient.
func (s *Simulation) downstreamHeadroom(inst *instanceState, dtSec float64) float64 {
	room := math.Inf(1)
	for ri := range inst.routes {
		r := &inst.routes[ri]
		if r.alpha <= 0 {
			continue
		}
		var allowedOut float64
		switch r.grouping {
		case topology.ShuffleGrouping:
			minH := math.Inf(1)
			for _, down := range r.toInstances {
				if h := s.instanceHeadroom(down, dtSec); h < minH {
					minH = h
				}
			}
			allowedOut = minH * float64(len(r.toInstances))
		case topology.FieldsGrouping:
			allowedOut = math.Inf(1)
			for i, down := range r.toInstances {
				if r.weights[i] <= 0 {
					continue
				}
				if a := s.instanceHeadroom(down, dtSec) / r.weights[i]; a < allowedOut {
					allowedOut = a
				}
			}
		case topology.AllGrouping:
			allowedOut = math.Inf(1)
			for _, down := range r.toInstances {
				if h := s.instanceHeadroom(down, dtSec); h < allowedOut {
					allowedOut = h
				}
			}
		case topology.GlobalGrouping:
			allowedOut = s.instanceHeadroom(r.toInstances[0], dtSec)
		}
		if a := allowedOut / r.alpha; a < room {
			room = a
		}
	}
	return room
}

// instanceHeadroom is one downstream instance's tuple headroom this
// tick: queue space up to the high watermark plus one tick of service.
func (s *Simulation) instanceHeadroom(down *instanceState, dtSec float64) float64 {
	h := s.cfg.HighWatermarkBytes/down.profile.BytesPerTuple - (down.queueTuples + down.arrivedTick)
	if h < 0 {
		h = 0
	}
	return h + down.profile.ServiceRate*down.slow*dtSec
}

// flushWindow writes the accumulated window metrics through the
// series handles interned at New and resets the accumulators.
func (s *Simulation) flushWindow() {
	stamp := s.cfg.Start.Add(s.windowEnd)
	for _, inst := range s.instances {
		sr := &inst.series
		if inst.isSpout {
			sr.source.Append(stamp, inst.wSource)
			sr.backlog.Append(stamp, inst.backlog)
		}
		sr.arrival.Append(stamp, inst.wArrived)
		sr.execute.Append(stamp, inst.wExecuted)
		sr.emit.Append(stamp, inst.wEmitted)
		sr.fail.Append(stamp, inst.wFailed)
		sr.bpMs.Append(stamp, inst.wBpMs)
		sr.cpu.Append(stamp, inst.wCPUSecs/s.cfg.MetricsInterval.Seconds())
		if inst.wLatTicks > 0 {
			sr.latency.Append(stamp, inst.wLatMs/inst.wLatTicks)
		}
		for ri := range inst.routes {
			r := &inst.routes[ri]
			if !r.emitSeen {
				continue
			}
			r.series.Append(stamp, r.wStreamEmit)
			r.wStreamEmit = 0
		}
		sr.pending.Append(stamp, inst.queueTuples*inst.profile.BytesPerTuple)
		sr.restarts.Append(stamp, inst.wRestarts)
		c := &inst.cum
		c.source += inst.wSource
		c.arrived += inst.wArrived
		c.executed += inst.wExecuted
		c.emitted += inst.wEmitted
		c.failed += inst.wFailed
		c.queueDropped += inst.wQueueDropped
		c.routeDropped += inst.wRouteDropped
		c.restarts += inst.wRestarts
		c.bpMs += inst.wBpMs
		inst.wSource, inst.wArrived, inst.wExecuted, inst.wEmitted = 0, 0, 0, 0
		inst.wFailed, inst.wBpMs, inst.wCPUSecs, inst.wRestarts = 0, 0, 0, 0
		inst.wLatMs, inst.wLatTicks = 0, 0
		inst.wQueueDropped, inst.wRouteDropped = 0, 0
	}
	s.topoBpSeries.Append(stamp, s.wTopoBpMs)
	s.wTopoBpMs = 0
	s.windowEnd += s.cfg.MetricsInterval
}

// InstanceSnapshot exposes live instance state for tests and debugging.
type InstanceSnapshot struct {
	ID             topology.InstanceID
	Container      int
	QueueTuples    float64
	PendingBytes   float64
	Backlog        float64
	InBackpressure bool
}

// Snapshot returns the current state of every instance.
func (s *Simulation) Snapshot() []InstanceSnapshot {
	out := make([]InstanceSnapshot, len(s.instances))
	for i, inst := range s.instances {
		out[i] = InstanceSnapshot{
			ID:             inst.id,
			Container:      inst.container,
			QueueTuples:    inst.queueTuples,
			PendingBytes:   inst.queueTuples * inst.profile.BytesPerTuple,
			Backlog:        inst.backlog,
			InBackpressure: inst.bp,
		}
	}
	return out
}
