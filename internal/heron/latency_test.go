package heron

import (
	"testing"
	"time"

	"caladrius/internal/tsdb"
)

// TestLatencyGoldenSignal checks the fourth golden signal: queueing
// latency is negligible below the saturation point and rises by orders
// of magnitude under backpressure (queued tuples wait while the
// instance drains at its service rate).
func TestLatencyGoldenSignal(t *testing.T) {
	latency := func(rate float64) float64 {
		s, err := NewWordCount(WordCountOptions{RatePerMinute: rate})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(8 * time.Minute); err != nil {
			t.Fatal(err)
		}
		v, err := s.DB().Aggregate(MetricLatencyMs, tsdb.Labels{"component": "splitter"},
			s.Start().Add(3*time.Minute), s.Start().Add(8*time.Minute), tsdb.AggMean)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	low := latency(6e6)   // well below SP
	high := latency(15e6) // saturated
	if low > 100 {
		t.Errorf("unsaturated latency = %.1f ms, want small", low)
	}
	// Saturated queue oscillates between the watermarks: 200k–400k
	// tuples over 180k/s ≈ 1.1–2.2 s.
	if high < 500 {
		t.Errorf("saturated latency = %.1f ms, want ≳500 (queued behind watermarks)", high)
	}
	if high < 20*low+100 {
		t.Errorf("latency should explode under saturation: low %.1f, high %.1f", low, high)
	}
}

// TestLatencyNotEmittedForSpouts confirms spouts (which have no input
// queue) do not report queue latency.
func TestLatencyNotEmittedForSpouts(t *testing.T) {
	s, err := NewWordCount(WordCountOptions{RatePerMinute: 6e6})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DB().Aggregate(MetricLatencyMs, tsdb.Labels{"component": "spout"},
		s.Start(), s.Start().Add(3*time.Minute), tsdb.AggMean); err == nil {
		t.Error("spout latency series exists")
	}
}
