package heron

import (
	"testing"
	"time"

	"caladrius/internal/topology"
	"caladrius/internal/tsdb"
	"caladrius/internal/workload"
)

// oomTopology builds a word-count variant whose splitter has a tiny RAM
// allocation, so its queue exceeds the container limit before the
// backpressure watermark is reached (§V-E's "instances may exceed the
// container memory limit" failure mode).
func oomTopology(t *testing.T, splitterRAMMB int) *topology.Topology {
	t.Helper()
	top, err := topology.NewBuilder("word-count").
		AddSpout("spout", 8).
		AddBoltWithResources("splitter", 1, topology.Resources{CPUCores: 1, RAMMB: splitterRAMMB}).
		AddBolt("counter", 3).
		Connect("spout", "splitter", topology.ShuffleGrouping).
		Connect("splitter", "counter", topology.FieldsGrouping, "word").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestOOMRestartsUnderMemoryPressure(t *testing.T) {
	// 40 MB allocation: the 100 MB high watermark is unreachable, so
	// the overloaded splitter crash-loops instead of backpressuring.
	top := oomTopology(t, 40)
	sim, err := New(Config{
		Topology:   top,
		Profiles:   WordCountProfiles(UniformKeys{}),
		SpoutRates: map[string]workload.RateSchedule{"spout": workload.ConstantRate(15e6 / 60)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(8 * time.Minute); err != nil {
		t.Fatal(err)
	}
	db := sim.DB()
	restarts, err := db.Aggregate(MetricRestartCount, tsdb.Labels{"component": "splitter"},
		sim.Start(), sim.Start().Add(8*time.Minute), tsdb.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if restarts < 3 {
		t.Errorf("restarts = %g, want a crash loop", restarts)
	}
	// Queued tuples are lost on each restart.
	failed, err := db.Aggregate(MetricFailCount, tsdb.Labels{"component": "splitter"},
		sim.Start(), sim.Start().Add(8*time.Minute), tsdb.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if failed <= 0 {
		t.Errorf("failed = %g, want lost tuples", failed)
	}
	// Backpressure never engages: the instance dies before the
	// watermark.
	bp, err := db.Aggregate(MetricBackpressureMs, tsdb.Labels{"component": "splitter"},
		sim.Start(), sim.Start().Add(8*time.Minute), tsdb.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if bp > 0 {
		t.Errorf("backpressure = %g ms with 40MB RAM < 100MB watermark", bp)
	}
}

func TestNoOOMWithDefaultResources(t *testing.T) {
	// The default 2 GB allocation never OOMs: watermarks cap the queue
	// at 100 MB.
	sim, err := NewWordCount(WordCountOptions{RatePerMinute: 20e6})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(6 * time.Minute); err != nil {
		t.Fatal(err)
	}
	restarts, err := sim.DB().Aggregate(MetricRestartCount, nil,
		sim.Start(), sim.Start().Add(6*time.Minute), tsdb.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if restarts != 0 {
		t.Errorf("restarts = %g with default resources", restarts)
	}
}

func TestRestartDelayValidation(t *testing.T) {
	top := oomTopology(t, 40)
	_, err := New(Config{
		Topology:     top,
		Profiles:     WordCountProfiles(UniformKeys{}),
		SpoutRates:   map[string]workload.RateSchedule{"spout": workload.ConstantRate(1)},
		RestartDelay: -time.Second,
	})
	if err == nil {
		t.Error("negative restart delay accepted")
	}
}
