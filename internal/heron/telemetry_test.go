package heron

import (
	"testing"
	"time"

	"caladrius/internal/telemetry"
	"caladrius/internal/workload"
)

// TestSimulatorEventTelemetry drives the word-count topology into and
// out of saturation and checks the simulator's event counters: ticks,
// processed tuples and backpressure transitions in both directions.
func TestSimulatorEventTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	sim, err := NewWordCount(WordCountOptions{
		SplitterP: 1,
		// Saturate a single splitter (SP ≈ 10.8 M/min) for 5 minutes,
		// then drop well below saturation so queues drain and the
		// backpressure flag clears.
		Schedule: workload.StepRate(20e6/60, 2e6/60, 5*time.Minute),
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(15 * time.Minute); err != nil {
		t.Fatal(err)
	}
	labels := telemetry.Labels{"topology": "word-count"}
	wantTicks := float64(15 * time.Minute / (100 * time.Millisecond))
	if got := reg.Counter("caladrius_sim_ticks_total", labels).Value(); got != wantTicks {
		t.Errorf("ticks = %g, want %g", got, wantTicks)
	}
	if got := reg.Histogram("caladrius_sim_tick_duration_seconds", telemetry.DefTickBuckets, labels).Count(); got != uint64(wantTicks) {
		t.Errorf("tick duration observations = %d, want %g", got, wantTicks)
	}
	if got := reg.Counter("caladrius_sim_tuples_processed_total", labels).Value(); got < 50e6 {
		t.Errorf("processed = %g, want ≥ 50e6", got)
	}
	on := reg.Counter("caladrius_sim_backpressure_transitions_total", telemetry.Labels{"topology": "word-count", "state": "on"}).Value()
	off := reg.Counter("caladrius_sim_backpressure_transitions_total", telemetry.Labels{"topology": "word-count", "state": "off"}).Value()
	if on < 1 || off < 1 {
		t.Errorf("backpressure transitions on=%g off=%g, want ≥ 1 each", on, off)
	}
	if got := reg.Gauge("caladrius_sim_backpressure_active_instances", labels).Value(); got != 0 {
		t.Errorf("active backpressure at low rate = %g, want 0", got)
	}
	// The word-count profiles have no failure rate and no OOM pressure.
	if got := reg.Counter("caladrius_sim_tuples_dropped_total", labels).Value(); got != 0 {
		t.Errorf("dropped = %g, want 0", got)
	}
}

// TestSimulatorWithoutRegistry checks the nil-registry fast path stays
// inert.
func TestSimulatorWithoutRegistry(t *testing.T) {
	sim, err := NewWordCount(WordCountOptions{RatePerMinute: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if sim.events != nil {
		t.Fatal("events created without a registry")
	}
	if err := sim.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
}
