package heron

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"caladrius/internal/topology"
	"caladrius/internal/tsdb"
	"caladrius/internal/workload"
)

const minute = time.Minute

// perMinuteRate sums metric across all instances of a component and
// averages the per-minute values over minutes [warmup, totalMinutes).
func perMinuteRate(t *testing.T, s *Simulation, metric, component string, warmup, totalMinutes int) float64 {
	t.Helper()
	start := s.Start().Add(time.Duration(warmup) * minute)
	end := s.Start().Add(time.Duration(totalMinutes) * minute)
	series, err := s.DB().Downsample(metric, tsdb.Labels{"component": component}, start, end, minute, tsdb.AggSum, tsdb.AggSum)
	if err != nil {
		t.Fatalf("downsample %s/%s: %v", metric, component, err)
	}
	var sum float64
	for _, p := range series.Points {
		sum += p.V
	}
	return sum / float64(len(series.Points))
}

func runWordCount(t *testing.T, opts WordCountOptions, minutes int) *Simulation {
	t.Helper()
	s, err := NewWordCount(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(time.Duration(minutes) * minute); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBelowSaturationNoBackpressure(t *testing.T) {
	// Offered 6 M/min, splitter p=1 SP is 10.8 M/min → linear regime.
	s := runWordCount(t, WordCountOptions{RatePerMinute: 6e6}, 10)
	in := perMinuteRate(t, s, MetricExecuteCount, "splitter", 2, 10)
	out := perMinuteRate(t, s, MetricEmitCount, "splitter", 2, 10)
	if math.Abs(in-6e6)/6e6 > 0.01 {
		t.Errorf("input = %.3g, want ≈6e6", in)
	}
	if ratio := out / in; math.Abs(ratio-SplitterAlpha) > 0.01 {
		t.Errorf("alpha = %.4f, want %.4f", ratio, SplitterAlpha)
	}
	bp := perMinuteRate(t, s, MetricBackpressureMs, "splitter", 2, 10)
	if bp != 0 {
		t.Errorf("backpressure = %g ms/min, want 0", bp)
	}
	tbp := perMinuteRate(t, s, MetricBackpressureMs, TopologyComponent, 2, 10)
	if tbp != 0 {
		t.Errorf("topology backpressure = %g ms/min, want 0", tbp)
	}
}

func TestAboveSaturationPlateausAndBackpressure(t *testing.T) {
	// Offered 15 M/min > SP 10.8 M/min.
	s := runWordCount(t, WordCountOptions{RatePerMinute: 15e6}, 12)
	in := perMinuteRate(t, s, MetricExecuteCount, "splitter", 4, 12)
	sp := SplitterServiceRate * 60.0
	if math.Abs(in-sp)/sp > 0.02 {
		t.Errorf("saturated input = %.4g, want ≈%.4g", in, sp)
	}
	out := perMinuteRate(t, s, MetricEmitCount, "splitter", 4, 12)
	st := sp * SplitterAlpha
	if math.Abs(out-st)/st > 0.02 {
		t.Errorf("saturated output = %.4g, want ST ≈%.4g", out, st)
	}
	// Bimodal backpressure: near the full minute.
	bp := perMinuteRate(t, s, MetricBackpressureMs, TopologyComponent, 4, 12)
	if bp < 50_000 {
		t.Errorf("topology backpressure = %.0f ms/min, want > 50000 (bimodal)", bp)
	}
	// The splitter is the initiator.
	sbp := perMinuteRate(t, s, MetricBackpressureMs, "splitter", 4, 12)
	if sbp < 50_000 {
		t.Errorf("splitter backpressure = %.0f ms/min, want > 50000", sbp)
	}
	// External backlog grows: offered exceeds capacity.
	backlog, err := s.DB().Latest(MetricBacklogTuples, tsdb.Labels{"component": "spout"})
	if err != nil {
		t.Fatal(err)
	}
	if backlog.V <= 0 {
		t.Errorf("backlog = %g, want positive", backlog.V)
	}
}

func TestBackpressureBimodality(t *testing.T) {
	// Sweep across SP: backpressure time per minute should be ≈0 below
	// and ≳50 000 ms above, with a steep transition (Fig. 6).
	for _, rate := range []float64{8e6, 10e6} {
		s := runWordCount(t, WordCountOptions{RatePerMinute: rate}, 8)
		bp := perMinuteRate(t, s, MetricBackpressureMs, TopologyComponent, 3, 8)
		if bp > 1000 {
			t.Errorf("rate %.0g: bp = %.0f ms, want ≈0", rate, bp)
		}
	}
	for _, rate := range []float64{12e6, 16e6, 20e6} {
		s := runWordCount(t, WordCountOptions{RatePerMinute: rate}, 8)
		bp := perMinuteRate(t, s, MetricBackpressureMs, TopologyComponent, 3, 8)
		if bp < 50_000 {
			t.Errorf("rate %.0g: bp = %.0f ms, want ≳50000", rate, bp)
		}
	}
}

func TestComponentSaturationScalesWithParallelism(t *testing.T) {
	// Splitter p=3 saturates near 3×SP (Eq. 9 / Fig. 7). Counter
	// parallelism is raised so the splitter stays the bottleneck.
	s := runWordCount(t, WordCountOptions{SplitterP: 3, CounterP: 6, RatePerMinute: 60e6}, 12)
	in := perMinuteRate(t, s, MetricExecuteCount, "splitter", 4, 12)
	want := 3 * SplitterServiceRate * 60.0
	if math.Abs(in-want)/want > 0.02 {
		t.Errorf("p=3 saturated input = %.4g, want ≈%.4g", in, want)
	}
}

func TestShuffleGroupingEvenSplit(t *testing.T) {
	s := runWordCount(t, WordCountOptions{SplitterP: 4, RatePerMinute: 8e6}, 6)
	// Each of 4 splitter instances gets ~2 M/min.
	for i := 0; i < 4; i++ {
		series, err := s.DB().Downsample(MetricExecuteCount,
			tsdb.Labels{"component": "splitter", "instance": string(rune('0' + i))},
			s.Start().Add(2*minute), s.Start().Add(6*minute), minute, tsdb.AggSum, tsdb.AggSum)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, p := range series.Points {
			sum += p.V
		}
		got := sum / float64(len(series.Points))
		if math.Abs(got-2e6)/2e6 > 0.01 {
			t.Errorf("instance %d input = %.4g, want ≈2e6", i, got)
		}
	}
}

func TestFieldsGroupingBiasRespected(t *testing.T) {
	// Two keys, 75/25, both hashing to different counter instances at
	// p=2. Find the actual per-instance weights first.
	keys := ExplicitKeys{Probs: map[string]float64{"hot": 3, "cold": 1}}
	w := keys.Weights(2)
	if math.Abs(w[0]+w[1]-1) > 1e-12 {
		t.Fatalf("weights don't sum to 1: %v", w)
	}
	s := runWordCount(t, WordCountOptions{CounterP: 2, CounterKeys: keys, RatePerMinute: 2e6}, 6)
	for i := 0; i < 2; i++ {
		series, err := s.DB().Downsample(MetricArrivalCount,
			tsdb.Labels{"component": "counter", "instance": string(rune('0' + i))},
			s.Start().Add(2*minute), s.Start().Add(6*minute), minute, tsdb.AggSum, tsdb.AggSum)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, p := range series.Points {
			sum += p.V
		}
		got := sum / float64(len(series.Points))
		want := 2e6 * SplitterAlpha * w[i]
		if want == 0 {
			if got != 0 {
				t.Errorf("instance %d got %.4g, want 0", i, got)
			}
			continue
		}
		if math.Abs(got-want)/want > 0.01 {
			t.Errorf("instance %d arrivals = %.4g, want ≈%.4g", i, got, want)
		}
	}
}

func TestTupleConservation(t *testing.T) {
	// Spout emits = splitter arrivals; splitter emits = counter
	// arrivals (shuffle and fields both conserve tuples).
	s := runWordCount(t, WordCountOptions{RatePerMinute: 5e6}, 8)
	spoutOut := perMinuteRate(t, s, MetricEmitCount, "spout", 1, 8)
	splitIn := perMinuteRate(t, s, MetricArrivalCount, "splitter", 1, 8)
	if math.Abs(spoutOut-splitIn)/spoutOut > 1e-9 {
		t.Errorf("spout out %.6g != splitter arrivals %.6g", spoutOut, splitIn)
	}
	splitOut := perMinuteRate(t, s, MetricEmitCount, "splitter", 1, 8)
	countIn := perMinuteRate(t, s, MetricArrivalCount, "counter", 1, 8)
	if math.Abs(splitOut-countIn)/splitOut > 1e-9 {
		t.Errorf("splitter out %.6g != counter arrivals %.6g", splitOut, countIn)
	}
}

func TestCPULoadLinearInInput(t *testing.T) {
	// §V-E: CPU load is linear in input rate below saturation.
	var rates, cpus []float64
	for _, r := range []float64{2e6, 4e6, 6e6, 8e6} {
		s := runWordCount(t, WordCountOptions{RatePerMinute: r}, 8)
		in := perMinuteRate(t, s, MetricExecuteCount, "splitter", 2, 8)
		cpuSeries, err := s.DB().Downsample(MetricCPULoad, tsdb.Labels{"component": "splitter"},
			s.Start().Add(2*minute), s.Start().Add(8*minute), minute, tsdb.AggMean, tsdb.AggSum)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, p := range cpuSeries.Points {
			sum += p.V
		}
		rates = append(rates, in)
		cpus = append(cpus, sum/float64(len(cpuSeries.Points)))
	}
	// Check linearity: cpu/input ratio constant to 1%.
	base := cpus[0] / rates[0]
	for i := range rates {
		if ratio := cpus[i] / rates[i]; math.Abs(ratio-base)/base > 0.01 {
			t.Errorf("cpu/input ratio drifts: %.3g vs %.3g", ratio, base)
		}
	}
	// And the absolute value matches the profile's cost model.
	perTuplePerSec := SplitterCPUPerTuple + (1+SplitterAlpha)*SplitterGatewayPerTuple
	want := rates[1] / 60 * perTuplePerSec
	if math.Abs(cpus[1]-want)/want > 0.01 {
		t.Errorf("cpu = %.4g cores, want ≈%.4g", cpus[1], want)
	}
}

func TestSlowInstanceTriggersEarlierBackpressure(t *testing.T) {
	// A degraded splitter instance halves its service rate; at a rate
	// healthy p=2 would absorb (e.g. 16 M/min < 21.6 M/min), the slow
	// instance saturates (8 M/min share > 5.4 M/min capacity).
	slow := map[topology.InstanceID]float64{{Component: "splitter", Index: 1}: 0.5}
	s := runWordCount(t, WordCountOptions{SplitterP: 2, RatePerMinute: 16e6, SlowFactors: slow}, 10)
	bp := perMinuteRate(t, s, MetricBackpressureMs, TopologyComponent, 4, 10)
	if bp < 50_000 {
		t.Errorf("degraded instance: topology bp = %.0f ms, want ≳50000", bp)
	}
	healthy := runWordCount(t, WordCountOptions{SplitterP: 2, RatePerMinute: 16e6}, 10)
	hbp := perMinuteRate(t, healthy, MetricBackpressureMs, TopologyComponent, 4, 10)
	if hbp != 0 {
		t.Errorf("healthy p=2: bp = %.0f ms, want 0", hbp)
	}
}

func TestFailureRateDropsTuples(t *testing.T) {
	top, err := WordCountTopology(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	profiles := WordCountProfiles(UniformKeys{})
	p := profiles["splitter"]
	p.FailureRate = 0.1
	profiles["splitter"] = p
	s, err := New(Config{
		Topology:   top,
		Profiles:   profiles,
		SpoutRates: map[string]workload.RateSchedule{"spout": workload.ConstantRate(1e6 / 60)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(6 * minute); err != nil {
		t.Fatal(err)
	}
	executed := perMinuteRate(t, s, MetricExecuteCount, "splitter", 1, 6)
	failed := perMinuteRate(t, s, MetricFailCount, "splitter", 1, 6)
	emitted := perMinuteRate(t, s, MetricEmitCount, "splitter", 1, 6)
	if math.Abs(failed-0.1*executed)/executed > 1e-9 {
		t.Errorf("failed = %.4g, want 10%% of %.4g", failed, executed)
	}
	wantEmit := 0.9 * executed * SplitterAlpha
	if math.Abs(emitted-wantEmit)/wantEmit > 1e-9 {
		t.Errorf("emitted = %.4g, want %.4g", emitted, wantEmit)
	}
}

func TestAllAndGlobalGroupings(t *testing.T) {
	top, err := topology.NewBuilder("fan").
		AddSpout("s", 1).
		AddBolt("bcast", 3).
		AddBolt("sink", 2).
		Connect("s", "bcast", topology.AllGrouping).
		Connect("bcast", "sink", topology.GlobalGrouping).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	profiles := map[string]ComponentProfile{
		"s":     {ServiceRate: 1e5, Emits: map[string]EmitProfile{"default": {Alpha: 1}}},
		"bcast": {ServiceRate: 1e5, Emits: map[string]EmitProfile{"default": {Alpha: 1}}},
		"sink":  {ServiceRate: 1e6},
	}
	s, err := New(Config{
		Topology:   top,
		Profiles:   profiles,
		SpoutRates: map[string]workload.RateSchedule{"s": workload.ConstantRate(1000)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(4 * minute); err != nil {
		t.Fatal(err)
	}
	// AllGrouping: every bcast instance sees the full 60 000/min.
	bIn := perMinuteRate(t, s, MetricArrivalCount, "bcast", 1, 4)
	if math.Abs(bIn-3*60000)/180000 > 1e-9 {
		t.Errorf("bcast total arrivals = %.5g, want 180000 (3 full copies)", bIn)
	}
	// GlobalGrouping: only sink instance 0 receives data.
	s0, err := s.DB().Aggregate(MetricArrivalCount, tsdb.Labels{"component": "sink", "instance": "0"},
		s.Start().Add(minute), s.Start().Add(4*minute), tsdb.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := s.DB().Aggregate(MetricArrivalCount, tsdb.Labels{"component": "sink", "instance": "1"},
		s.Start().Add(minute), s.Start().Add(4*minute), tsdb.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if s0 <= 0 || s1 != 0 {
		t.Errorf("global grouping: sink0=%.4g sink1=%.4g", s0, s1)
	}
}

func TestConfigValidation(t *testing.T) {
	top, err := WordCountTopology(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	profiles := WordCountProfiles(UniformKeys{})
	rates := map[string]workload.RateSchedule{"spout": workload.ConstantRate(1)}
	cases := []struct {
		name string
		mut  func(*Config)
		frag string
	}{
		{"nil topology", func(c *Config) { c.Topology = nil }, "nil topology"},
		{"missing profile", func(c *Config) {
			p := map[string]ComponentProfile{}
			for k, v := range profiles {
				p[k] = v
			}
			delete(p, "counter")
			c.Profiles = p
		}, "no profile"},
		{"missing rate", func(c *Config) { c.SpoutRates = map[string]workload.RateSchedule{} }, "no rate schedule"},
		{"rate for bolt", func(c *Config) {
			c.SpoutRates = map[string]workload.RateSchedule{"spout": workload.ConstantRate(1), "splitter": workload.ConstantRate(1)}
		}, "non-spout"},
		{"bad watermarks", func(c *Config) { c.HighWatermarkBytes, c.LowWatermarkBytes = 10, 20 }, "watermarks"},
		{"bad tick", func(c *Config) { c.Tick = -time.Second }, "tick"},
		{"window below tick", func(c *Config) { c.Tick = time.Second; c.MetricsInterval = time.Millisecond }, "below tick"},
		{"bad slow factor", func(c *Config) {
			c.SlowFactors = map[topology.InstanceID]float64{{Component: "spout", Index: 0}: 0}
		}, "slow factor"},
		{"bad service rate", func(c *Config) {
			p := map[string]ComponentProfile{}
			for k, v := range profiles {
				p[k] = v
			}
			sp := p["spout"]
			sp.ServiceRate = 0
			p["spout"] = sp
			c.Profiles = p
		}, "service rate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := Config{Topology: top, Profiles: profiles, SpoutRates: rates}
			c.mut(&cfg)
			_, err := New(cfg)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error %q missing %q", err, c.frag)
			}
		})
	}
}

func TestRunRejectsNegativeDuration(t *testing.T) {
	s, err := NewWordCount(WordCountOptions{RatePerMinute: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(-time.Second); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestSnapshot(t *testing.T) {
	s := runWordCount(t, WordCountOptions{RatePerMinute: 15e6}, 3)
	snaps := s.Snapshot()
	if len(snaps) != 8+1+3 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	var splitterBP bool
	for _, sn := range snaps {
		if sn.PendingBytes < 0 || sn.QueueTuples < 0 || sn.Backlog < 0 {
			t.Errorf("negative state: %+v", sn)
		}
		if sn.ID.Component == "splitter" && sn.InBackpressure {
			splitterBP = true
		}
	}
	if !splitterBP {
		t.Error("overloaded splitter never in backpressure in snapshot")
	}
	if s.Elapsed() != 3*minute {
		t.Errorf("elapsed = %s", s.Elapsed())
	}
}

func TestKeyModelWeights(t *testing.T) {
	for _, km := range []KeyModel{UniformKeys{}, ZipfKeys{N: 500, S: 1.2, Seed: 1}, ExplicitKeys{Probs: map[string]float64{"a": 1, "b": 2, "c": 3}}} {
		for _, p := range []int{1, 2, 3, 7} {
			w := km.Weights(p)
			if len(w) != p {
				t.Fatalf("%T weights len = %d, want %d", km, len(w), p)
			}
			var sum float64
			for _, v := range w {
				if v < 0 {
					t.Errorf("%T negative weight %g", km, v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("%T p=%d weights sum %g", km, p, sum)
			}
		}
	}
	// Larger Zipf vocabularies are less biased than tiny ones (the
	// paper's key-diversity observation); the head key still carries
	// visible weight, so perfect uniformity is not expected.
	maxDev := func(w []float64) float64 {
		var d float64
		for _, v := range w {
			if dev := math.Abs(v - 1.0/float64(len(w))); dev > d {
				d = dev
			}
		}
		return d
	}
	large := maxDev(ZipfKeys{N: 6000, S: 1.1, Seed: 42}.Weights(4))
	small := maxDev(ZipfKeys{N: 8, S: 1.1, Seed: 42}.Weights(4))
	if large >= small {
		t.Errorf("bias should shrink with vocabulary: N=6000 dev %.3f, N=8 dev %.3f", large, small)
	}
	if large > 0.25 {
		t.Errorf("large-vocab max deviation = %.3f, want moderate (<0.25)", large)
	}
	// Empty explicit keys degrade to uniform.
	w := ExplicitKeys{}.Weights(3)
	for _, v := range w {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Errorf("empty ExplicitKeys weight = %g", v)
		}
	}
	// ZipfKeys with invalid params self-correct.
	w = ZipfKeys{N: 0, S: 0}.Weights(2)
	if math.Abs(w[0]+w[1]-1) > 1e-9 {
		t.Errorf("degenerate zipf weights = %v", w)
	}
}

func TestQuickSimConservesMassAtAnyRate(t *testing.T) {
	// Property: over any constant rate, tuples emitted by the spout
	// equal tuples arriving at the splitter, and the splitter's output
	// never exceeds ST.
	f := func(seed int64) bool {
		rate := 1e6 + float64(seed%16)*1e6 // 1–16 M/min
		if rate < 0 {
			rate = -rate
		}
		s, err := NewWordCount(WordCountOptions{RatePerMinute: rate, Tick: 200 * time.Millisecond})
		if err != nil {
			return false
		}
		if err := s.Run(5 * minute); err != nil {
			return false
		}
		spoutOut, err1 := s.DB().Aggregate(MetricEmitCount, tsdb.Labels{"component": "spout"}, s.Start(), s.Start().Add(5*minute), tsdb.AggSum)
		splitIn, err2 := s.DB().Aggregate(MetricArrivalCount, tsdb.Labels{"component": "splitter"}, s.Start(), s.Start().Add(5*minute), tsdb.AggSum)
		if err1 != nil || err2 != nil {
			return false
		}
		if math.Abs(spoutOut-splitIn) > 1e-6*(1+spoutOut) {
			return false
		}
		splitOut, err3 := s.DB().Downsample(MetricEmitCount, tsdb.Labels{"component": "splitter"}, s.Start(), s.Start().Add(5*minute), minute, tsdb.AggSum, tsdb.AggSum)
		if err3 != nil {
			return false
		}
		st := SplitterServiceRate * 60 * SplitterAlpha
		for _, p := range splitOut.Points {
			if p.V > st*1.001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
