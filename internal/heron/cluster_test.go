package heron

import (
	"math"
	"strings"
	"testing"
	"time"

	"caladrius/internal/topology"
	"caladrius/internal/tsdb"
	"caladrius/internal/workload"
)

func wordCountConfig(t *testing.T, splitterP int, ratePerMin float64) Config {
	t.Helper()
	top, err := WordCountTopology(4, splitterP, 3)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Topology:   top,
		Profiles:   WordCountProfiles(UniformKeys{}),
		SpoutRates: map[string]workload.RateSchedule{"spout": workload.ConstantRate(ratePerMin / 60)},
	}
}

func TestClusterSubmitRunKill(t *testing.T) {
	c := NewCluster(nil)
	if err := c.Submit(wordCountConfig(t, 2, 6e6)); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(wordCountConfig(t, 2, 6e6)); err == nil {
		t.Error("duplicate submit accepted")
	}
	if got := c.Topologies(); len(got) != 1 || got[0] != "word-count" {
		t.Errorf("topologies = %v", got)
	}
	if err := c.Run(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	el, err := c.Elapsed("word-count")
	if err != nil || el != 3*time.Minute {
		t.Errorf("elapsed = %v, %v", el, err)
	}
	if c.DB().TotalPoints() == 0 {
		t.Error("no metrics written")
	}
	if err := c.Kill("word-count"); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill("word-count"); err == nil {
		t.Error("double kill accepted")
	}
	if _, err := c.Elapsed("word-count"); err == nil {
		t.Error("elapsed of killed topology")
	}
	// History survives the kill.
	if c.DB().TotalPoints() == 0 {
		t.Error("metrics dropped on kill")
	}
}

func TestClusterSubmitValidation(t *testing.T) {
	c := NewCluster(nil)
	if err := c.Submit(Config{}); err == nil {
		t.Error("nil topology accepted")
	}
}

func TestClusterUpdateDryRun(t *testing.T) {
	c := NewCluster(nil)
	if err := c.Submit(wordCountConfig(t, 2, 6e6)); err != nil {
		t.Fatal(err)
	}
	plan, err := c.Update("word-count", map[string]int{"splitter": 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	if plan.InstanceCount() != 4+4+3 {
		t.Errorf("dry-run plan instances = %d", plan.InstanceCount())
	}
	if plan.Version != 2 {
		t.Errorf("dry-run plan version = %d", plan.Version)
	}
	// Dry run must not change the running topology.
	top, livePlan, err := c.Info("word-count")
	if err != nil {
		t.Fatal(err)
	}
	if top.Component("splitter").Parallelism != 2 || livePlan.Version != 1 {
		t.Error("dry run mutated the running topology")
	}
}

func TestClusterUpdateScalesAndKeepsHistory(t *testing.T) {
	c := NewCluster(nil)
	// Saturating rate for splitter p=1 (SP 10.8M).
	if err := c.Submit(wordCountConfig(t, 1, 15e6)); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(8 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Scale out to absorb the traffic.
	plan, err := c.Update("word-count", map[string]int{"splitter": 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Version != 2 {
		t.Errorf("plan version = %d", plan.Version)
	}
	if err := c.Run(8 * time.Minute); err != nil {
		t.Fatal(err)
	}
	el, err := c.Elapsed("word-count")
	if err != nil || el != 16*time.Minute {
		t.Fatalf("elapsed = %v, %v", el, err)
	}
	// Metric history is continuous in one database: before the update
	// the splitter was saturated (execute pinned at 10.8M/min with
	// backpressure); after it, the full 15M flows without backpressure.
	db := c.DB()
	start := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	componentRate := func(from, to time.Time) float64 {
		s, err := db.Downsample(MetricExecuteCount, tsdb.Labels{"component": "splitter"},
			from, to, time.Minute, tsdb.AggSum, tsdb.AggSum)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, p := range s.Points {
			sum += p.V
		}
		return sum / float64(len(s.Points))
	}
	before := componentRate(start.Add(4*time.Minute), start.Add(8*time.Minute))
	if math.Abs(before-10.8e6)/10.8e6 > 0.03 {
		t.Errorf("pre-update execute = %.4g, want ≈10.8e6", before)
	}
	after := componentRate(start.Add(12*time.Minute), start.Add(16*time.Minute))
	// Component sum over 2 instances ≈ offered 15M.
	if math.Abs(after-15e6)/15e6 > 0.03 {
		t.Errorf("post-update execute = %.4g, want ≈15e6", after)
	}
	bpAfter, err := db.Aggregate(MetricBackpressureMs, tsdb.Labels{"component": TopologyComponent},
		start.Add(12*time.Minute), start.Add(16*time.Minute), tsdb.AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if bpAfter > 1000 {
		t.Errorf("post-update backpressure = %.0f ms", bpAfter)
	}
}

func TestClusterUpdateErrors(t *testing.T) {
	c := NewCluster(nil)
	if _, err := c.Update("ghost", nil, false); err == nil {
		t.Error("update of missing topology accepted")
	}
	if err := c.Submit(wordCountConfig(t, 2, 6e6)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Update("word-count", map[string]int{"ghost": 3}, false); err == nil ||
		!strings.Contains(err.Error(), "unknown component") {
		t.Errorf("unknown component: %v", err)
	}
	if _, err := c.Update("word-count", map[string]int{"splitter": 0}, false); err == nil {
		t.Error("zero parallelism accepted")
	}
}

func TestClusterMultipleTopologies(t *testing.T) {
	c := NewCluster(nil)
	cfgA := wordCountConfig(t, 2, 6e6)
	topB, err := topology.NewBuilder("other-job").
		AddSpout("src", 2).
		AddBolt("work", 2).
		Connect("src", "work", topology.ShuffleGrouping).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cfgB := Config{
		Topology: topB,
		Profiles: map[string]ComponentProfile{
			"src":  {ServiceRate: 1e5},
			"work": {ServiceRate: 1e5},
		},
		SpoutRates: map[string]workload.RateSchedule{"src": workload.ConstantRate(100)},
	}
	if err := c.Submit(cfgA); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(cfgB); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	got := c.Topologies()
	if len(got) != 2 || got[0] != "other-job" || got[1] != "word-count" {
		t.Errorf("topologies = %v", got)
	}
	// Both write into the shared DB, label-separated.
	if n := len(c.DB().LabelValues(MetricExecuteCount, "topology")); n != 2 {
		t.Errorf("topology labels = %d", n)
	}
}
