package heron_test

import (
	"testing"
	"time"

	"caladrius/internal/heron"
	"caladrius/internal/metrics"
)

func TestSetRouteAlphaErrors(t *testing.T) {
	sim, err := heron.NewWordCount(heron.WordCountOptions{RatePerMinute: 1e6})
	if err != nil {
		t.Fatalf("heron.NewWordCount: %v", err)
	}
	if err := sim.SetRouteAlpha("splitter", "counter", -1); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if err := sim.SetRouteAlpha("splitter", "nowhere", 2); err == nil {
		t.Fatal("unknown destination accepted")
	}
	if err := sim.SetRouteAlpha("nowhere", "counter", 2); err == nil {
		t.Fatal("unknown source accepted")
	}
	if err := sim.SetRouteAlpha("splitter", "counter", 2); err != nil {
		t.Fatalf("valid mutation rejected: %v", err)
	}
}

// TestSetRouteAlphaShiftsThroughput: doubling the splitter's I/O
// coefficient mid-run roughly doubles the counter's arrival rate — the
// workload-shift lever the model-drift tests rely on.
func TestSetRouteAlphaShiftsThroughput(t *testing.T) {
	sim, err := heron.NewWordCount(heron.WordCountOptions{
		SplitterP:     3,
		CounterP:      4,
		RatePerMinute: 5e6,
	})
	if err != nil {
		t.Fatalf("heron.NewWordCount: %v", err)
	}
	prov, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
	if err != nil {
		t.Fatalf("provider: %v", err)
	}
	if err := sim.Run(10 * time.Minute); err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	before := counterRate(t, prov, sim.Start().Add(5*time.Minute), sim.Start().Add(10*time.Minute))

	newAlpha := 2 * heron.SplitterAlpha
	if err := sim.SetRouteAlpha("splitter", "counter", newAlpha); err != nil {
		t.Fatalf("SetRouteAlpha: %v", err)
	}
	if err := sim.Run(10 * time.Minute); err != nil {
		t.Fatalf("sim.Run: %v", err)
	}
	after := counterRate(t, prov, sim.Start().Add(15*time.Minute), sim.Start().Add(20*time.Minute))

	ratio := after / before
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("counter rate before %.0f, after %.0f: ratio %.3f, want ≈2 after doubling alpha", before, after, ratio)
	}
}

func counterRate(t *testing.T, prov metrics.Provider, start, end time.Time) float64 {
	t.Helper()
	ws, err := prov.ComponentWindows("word-count", "counter", start, end)
	if err != nil {
		t.Fatalf("ComponentWindows: %v", err)
	}
	ss, err := metrics.Summarise(ws, 0)
	if err != nil {
		t.Fatalf("Summarise: %v", err)
	}
	return ss.Execute
}
