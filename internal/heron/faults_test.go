package heron

import (
	"bytes"
	"math"
	"testing"
	"time"

	"caladrius/internal/topology"
)

// scriptInjector applies a fixed per-instance fault set during
// [from, to) — the minimal FaultInjector for exercising the hook
// without pulling in the chaos package (which would cycle imports).
type scriptInjector struct {
	from, to time.Duration
	faults   map[topology.InstanceID]InstanceFault
	dropped  map[topology.InstanceID]bool // DropQueue consumed
}

func (si *scriptInjector) BeginTick(elapsed time.Duration) bool {
	return elapsed >= si.from && elapsed < si.to
}

func (si *scriptInjector) InstanceFault(id topology.InstanceID) InstanceFault {
	f := si.faults[id]
	if f.DropQueue {
		if si.dropped[id] {
			f.DropQueue = false
		} else {
			if si.dropped == nil {
				si.dropped = map[topology.InstanceID]bool{}
			}
			si.dropped[id] = true
		}
	}
	return f
}

// checkConservation asserts the three conservation laws documented on
// InstanceTotals, at whatever tick the simulation currently sits on.
func checkConservation(t *testing.T, s *Simulation) {
	t.Helper()
	closeTo := func(a, b float64) bool {
		d := math.Abs(a - b)
		scale := math.Max(math.Abs(a), math.Abs(b))
		return d <= 1e-6*math.Max(scale, 1)
	}
	var emitted, boltInput float64
	for _, tot := range s.Totals() {
		emitted += tot.Emitted
		if tot.Source > 0 || tot.Backlog > 0 { // spout
			if !closeTo(tot.Source, tot.Executed+tot.Backlog) {
				t.Errorf("%s: Source %.6g != Executed %.6g + Backlog %.6g",
					tot.ID, tot.Source, tot.Executed, tot.Backlog)
			}
		} else { // bolt
			boltInput += tot.Arrived + tot.RouteDropped + tot.InFlight
			if !closeTo(tot.Arrived, tot.Executed+tot.QueueDropped+tot.Queue) {
				t.Errorf("%s: Arrived %.6g != Executed %.6g + QueueDropped %.6g + Queue %.6g",
					tot.ID, tot.Arrived, tot.Executed, tot.QueueDropped, tot.Queue)
			}
		}
	}
	if !closeTo(emitted, boltInput) {
		t.Errorf("wiring: Σ Emitted %.6g != Σ bolt (Arrived+RouteDropped+InFlight) %.6g",
			emitted, boltInput)
	}
}

func TestTotalsConservationNoFaults(t *testing.T) {
	s, err := NewWordCount(WordCountOptions{RatePerMinute: 8e6})
	if err != nil {
		t.Fatal(err)
	}
	// Check off a window boundary (live accumulators) and on one.
	if err := s.Run(4*minute + 30*time.Second); err != nil {
		t.Fatal(err)
	}
	checkConservation(t, s)
	if err := s.Run(90 * time.Second); err != nil {
		t.Fatal(err)
	}
	checkConservation(t, s)
}

func TestFaultDownSpoutStopsPulling(t *testing.T) {
	s, err := NewWordCount(WordCountOptions{RatePerMinute: 8e6})
	if err != nil {
		t.Fatal(err)
	}
	faults := map[topology.InstanceID]InstanceFault{}
	for i := 0; i < 8; i++ {
		faults[topology.InstanceID{Component: "spout", Index: i}] = InstanceFault{Down: true}
	}
	s.WithFaultInjector(&scriptInjector{from: 2 * minute, to: 3 * minute, faults: faults})
	if err := s.Run(6 * minute); err != nil {
		t.Fatal(err)
	}
	// During the fault minute the spouts pull nothing.
	pulled := perMinuteRate(t, s, MetricExecuteCount, "spout", 2, 3)
	if pulled != 0 {
		t.Errorf("spout executed %.0f/min while down, want 0", pulled)
	}
	// The external source keeps producing — nothing is lost.
	offered := perMinuteRate(t, s, MetricSourceCount, "spout", 2, 3)
	if math.Abs(offered-8e6)/8e6 > 0.01 {
		t.Errorf("offered %.4g during fault, want ≈8e6", offered)
	}
	checkConservation(t, s)
}

func TestFaultDropQueueCountsFailedAndRestart(t *testing.T) {
	// Saturate the splitter so its queue holds tuples, then drop it.
	s, err := NewWordCount(WordCountOptions{RatePerMinute: 15e6})
	if err != nil {
		t.Fatal(err)
	}
	id := topology.InstanceID{Component: "splitter", Index: 0}
	s.WithFaultInjector(&scriptInjector{
		from:   3 * minute,
		to:     3*minute + 10*time.Second,
		faults: map[topology.InstanceID]InstanceFault{id: {Down: true, DropQueue: true}},
	})
	if err := s.Run(5 * minute); err != nil {
		t.Fatal(err)
	}
	var tot InstanceTotals
	for _, x := range s.Totals() {
		if x.ID == id {
			tot = x
		}
	}
	if tot.QueueDropped <= 0 {
		t.Fatalf("QueueDropped = %g, want > 0 (queue was saturated)", tot.QueueDropped)
	}
	if tot.Restarts < 1 {
		t.Errorf("Restarts = %g, want ≥ 1", tot.Restarts)
	}
	if tot.Failed < tot.QueueDropped {
		t.Errorf("Failed %g < QueueDropped %g; drops must count as failures", tot.Failed, tot.QueueDropped)
	}
	checkConservation(t, s)
}

func TestFaultUnreachableCountsRouteDropped(t *testing.T) {
	s, err := NewWordCount(WordCountOptions{RatePerMinute: 8e6})
	if err != nil {
		t.Fatal(err)
	}
	faults := map[topology.InstanceID]InstanceFault{}
	for i := 0; i < 3; i++ {
		faults[topology.InstanceID{Component: "counter", Index: i}] = InstanceFault{Unreachable: true}
	}
	s.WithFaultInjector(&scriptInjector{from: 2 * minute, to: 3 * minute, faults: faults})
	if err := s.Run(5 * minute); err != nil {
		t.Fatal(err)
	}
	var routeDropped float64
	for _, tot := range s.Totals() {
		if tot.ID.Component == "counter" {
			routeDropped += tot.RouteDropped
		}
	}
	// One minute of splitter output at 8e6/min input x alpha.
	want := 8e6 * SplitterAlpha
	if math.Abs(routeDropped-want)/want > 0.05 {
		t.Errorf("RouteDropped = %.4g, want ≈%.4g (one minute of splitter output)", routeDropped, want)
	}
	checkConservation(t, s)
}

func TestFaultSlowScalesAndRestoresCapacity(t *testing.T) {
	s, err := NewWordCount(WordCountOptions{RatePerMinute: 8e6})
	if err != nil {
		t.Fatal(err)
	}
	id := topology.InstanceID{Component: "splitter", Index: 0}
	s.WithFaultInjector(&scriptInjector{
		from:   2 * minute,
		to:     4 * minute,
		faults: map[topology.InstanceID]InstanceFault{id: {SlowFactor: 0.2}},
	})
	if err := s.Run(13 * minute); err != nil {
		t.Fatal(err)
	}
	// During the fault the single splitter caps at 0.2 x 180k/s.
	during := perMinuteRate(t, s, MetricExecuteCount, "splitter", 2, 4)
	cap := SplitterServiceRate * 0.2 * 60
	if math.Abs(during-cap)/cap > 0.05 {
		t.Errorf("faulted splitter executed %.4g/min, want ≈%.4g", during, cap)
	}
	// Late windows: capacity restored and the backlog the fault built
	// (≈11.7M tuples, drained at ≈2.8M/min of spare capacity, so clear
	// by ≈t=8.2m) is gone — throughput returns to the offered rate.
	after := perMinuteRate(t, s, MetricExecuteCount, "splitter", 10, 13)
	if math.Abs(after-8e6)/8e6 > 0.02 {
		t.Errorf("recovered splitter executed %.4g/min, want ≈8e6", after)
	}
	checkConservation(t, s)
}

// TestInjectorQuietMatchesNoInjector pins the hook's zero-effect
// guarantee: an attached injector whose schedule never fires leaves the
// run byte-identical to a run without one.
func TestInjectorQuietMatchesNoInjector(t *testing.T) {
	run := func(attach bool) *bytes.Buffer {
		s, err := NewWordCount(WordCountOptions{RatePerMinute: 12e6})
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			s.WithFaultInjector(&scriptInjector{}) // from == to: never active
		}
		if err := s.Run(5 * minute); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.DB().WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	if !bytes.Equal(run(false).Bytes(), run(true).Bytes()) {
		t.Error("quiet injector changed the metrics dump; the hook must be a no-op when idle")
	}
}
