package heron

import (
	"math"
	"testing"
	"time"

	"caladrius/internal/topology"
	"caladrius/internal/tsdb"
	"caladrius/internal/workload"
)

// TestPerStreamEmitCounts verifies that a fan-out component's emits are
// recorded per stream with the right proportions, enabling per-stream
// α calibration.
func TestPerStreamEmitCounts(t *testing.T) {
	top, err := topology.NewBuilder("fanout").
		AddSpout("src", 2).
		AddBolt("big", 2).
		AddBolt("small", 2).
		ConnectStream("wide", "src", "big", topology.ShuffleGrouping).
		ConnectStream("narrow", "src", "small", topology.ShuffleGrouping).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	profiles := map[string]ComponentProfile{
		"src": {
			ServiceRate: 1e5,
			Emits: map[string]EmitProfile{
				"wide":   {Alpha: 3},
				"narrow": {Alpha: 0.5},
			},
		},
		"big":   {ServiceRate: 1e6},
		"small": {ServiceRate: 1e6},
	}
	sim, err := New(Config{
		Topology:   top,
		Profiles:   profiles,
		SpoutRates: map[string]workload.RateSchedule{"src": workload.ConstantRate(1000)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(4 * time.Minute); err != nil {
		t.Fatal(err)
	}
	db := sim.DB()
	window := func(stream string) float64 {
		v, err := db.Aggregate(MetricStreamEmitCount, tsdb.Labels{"component": "src", "stream": stream},
			sim.Start().Add(time.Minute), sim.Start().Add(4*time.Minute), tsdb.AggSum)
		if err != nil {
			t.Fatalf("stream %s: %v", stream, err)
		}
		return v
	}
	wide := window("wide->big")
	narrow := window("narrow->small")
	if wide <= 0 || narrow <= 0 {
		t.Fatalf("stream counts: wide %g narrow %g", wide, narrow)
	}
	if ratio := wide / narrow; math.Abs(ratio-6) > 0.01 {
		t.Errorf("wide/narrow = %g, want 6 (α 3 vs 0.5)", ratio)
	}
	// Per-stream counts sum to the aggregate emit count.
	total, err := db.Aggregate(MetricEmitCount, tsdb.Labels{"component": "src"},
		sim.Start().Add(time.Minute), sim.Start().Add(4*time.Minute), tsdb.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-(wide+narrow)) > 1e-6*total {
		t.Errorf("stream sum %g != aggregate %g", wide+narrow, total)
	}
}

// TestAllGroupingStreamCountsReplicas confirms AllGrouping's per-stream
// count includes every replica (matching the aggregate emit metric).
func TestAllGroupingStreamCountsReplicas(t *testing.T) {
	top, err := topology.NewBuilder("bcast").
		AddSpout("src", 1).
		AddBolt("sink", 3).
		Connect("src", "sink", topology.AllGrouping).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(Config{
		Topology: top,
		Profiles: map[string]ComponentProfile{
			"src":  {ServiceRate: 1e5},
			"sink": {ServiceRate: 1e6},
		},
		SpoutRates: map[string]workload.RateSchedule{"src": workload.ConstantRate(100)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	streamed, err := sim.DB().Aggregate(MetricStreamEmitCount, tsdb.Labels{"component": "src"},
		sim.Start().Add(time.Minute), sim.Start().Add(3*time.Minute), tsdb.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	aggregate, err := sim.DB().Aggregate(MetricEmitCount, tsdb.Labels{"component": "src"},
		sim.Start().Add(time.Minute), sim.Start().Add(3*time.Minute), tsdb.AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(streamed-aggregate) > 1e-9*aggregate {
		t.Errorf("stream count %g != aggregate %g", streamed, aggregate)
	}
	// 2 minutes × 6000 tuples × 3 replicas.
	if want := 2.0 * 6000 * 3; math.Abs(aggregate-want) > 1 {
		t.Errorf("aggregate = %g, want %g", aggregate, want)
	}
}
