package heron

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"caladrius/internal/topology"
	"caladrius/internal/tsdb"
)

// Cluster manages named running simulations the way a Heron cluster
// manages topologies: submit, advance simulated time, and apply
// `heron update`-style parallelism changes. An update replaces the
// running simulation with one built from the new packing plan but
// keeps writing metrics to the same database, so a topology's metric
// history spans its scaling events — exactly what Caladrius calibrates
// from in production.
type Cluster struct {
	mu   sync.Mutex
	jobs map[string]*job
	db   *tsdb.DB
}

type job struct {
	topology *topology.Topology
	plan     *topology.PackingPlan
	cfg      Config
	sim      *Simulation
	// offset is the simulated time already consumed by predecessors of
	// the current simulation (before the last update).
	offset time.Duration
}

// NewCluster creates an empty cluster writing all metrics into one
// shared database (created when nil).
func NewCluster(db *tsdb.DB) *Cluster {
	if db == nil {
		db = tsdb.New(0)
	}
	return &Cluster{jobs: map[string]*job{}, db: db}
}

// DB returns the shared metrics database.
func (c *Cluster) DB() *tsdb.DB { return c.db }

// Submit starts a topology on the cluster. The config's Topology, DB
// and Start are managed by the cluster: DB is forced to the shared
// database and Start defaults as in New.
func (c *Cluster) Submit(cfg Config) error {
	if cfg.Topology == nil {
		return errors.New("heron: nil topology")
	}
	name := cfg.Topology.Name()
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.jobs[name]; dup {
		return fmt.Errorf("heron: topology %q already running", name)
	}
	cfg.DB = c.db
	sim, err := New(cfg)
	if err != nil {
		return err
	}
	c.jobs[name] = &job{
		topology: cfg.Topology,
		plan:     sim.cfg.Plan,
		cfg:      cfg,
		sim:      sim,
	}
	return nil
}

// Kill removes a topology. Its metric history remains in the database.
func (c *Cluster) Kill(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.jobs[name]; !ok {
		return fmt.Errorf("heron: topology %q not running", name)
	}
	delete(c.jobs, name)
	return nil
}

// Topologies lists running topology names, sorted.
func (c *Cluster) Topologies() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.jobs))
	for n := range c.jobs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Info returns the running topology and its current packing plan.
func (c *Cluster) Info(name string) (*topology.Topology, *topology.PackingPlan, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[name]
	if !ok {
		return nil, nil, fmt.Errorf("heron: topology %q not running", name)
	}
	return j.topology, j.plan, nil
}

// Elapsed returns the total simulated time of a topology across all its
// configurations.
func (c *Cluster) Elapsed(name string) (time.Duration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[name]
	if !ok {
		return 0, fmt.Errorf("heron: topology %q not running", name)
	}
	return j.offset + j.sim.Elapsed(), nil
}

// Run advances every running topology by the same simulated duration.
func (c *Cluster) Run(d time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, j := range c.jobs {
		if err := j.sim.Run(d); err != nil {
			return fmt.Errorf("heron: topology %q: %w", name, err)
		}
	}
	return nil
}

// Update applies a `heron update`: the topology's component
// parallelisms change, a new round-robin packing plan (same container
// count) is computed with a bumped version, and the topology restarts
// from empty queues — as a real update restarts instances — while its
// metric history continues in the shared database.
//
// When dryRun is true nothing is changed; the returned plan is the
// packing plan the update *would* produce. This mirrors `heron update
// --dry-run`, the hook Caladrius uses to cost configurations without
// deployment (§V).
func (c *Cluster) Update(name string, parallelisms map[string]int, dryRun bool) (*topology.PackingPlan, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[name]
	if !ok {
		return nil, fmt.Errorf("heron: topology %q not running", name)
	}
	newTop, err := j.topology.WithParallelism(parallelisms)
	if err != nil {
		return nil, err
	}
	newPlan, err := topology.RoundRobinPack(newTop, len(j.plan.Containers))
	if err != nil {
		return nil, err
	}
	newPlan.Version = j.plan.Version + 1
	if dryRun {
		return newPlan, nil
	}
	cfg := j.cfg
	cfg.Topology = newTop
	cfg.Plan = newPlan
	cfg.DB = c.db
	// The new simulation's clock continues where the old one stopped.
	cfg.Start = j.sim.cfg.Start.Add(j.sim.Elapsed())
	sim, err := New(cfg)
	if err != nil {
		return nil, err
	}
	j.offset += j.sim.Elapsed()
	j.topology = newTop
	j.plan = newPlan
	j.cfg = cfg
	j.sim = sim
	return newPlan, nil
}
