package heron

import (
	"time"

	"caladrius/internal/telemetry"
	"caladrius/internal/topology"
	"caladrius/internal/workload"
)

// Calibrated performance constants for the paper's 3-stage word-count
// evaluation topology. Values are chosen so the simulator reproduces
// the scales of Figures 4–12:
//
//   - the splitter instance saturates near 11 M tuples/minute (Fig. 4)
//     and a parallelism-3 splitter component near 32 M (Fig. 7);
//   - the splitter's I/O coefficient is the corpus mean sentence
//     length, 7.635 (Fig. 5);
//   - the counter instance saturates near 68 M tuples/minute, putting
//     the parallelism-3 component's plateau near 205 M (Fig. 9);
//   - splitter instance CPU load reaches ≈1.13 cores at saturation so
//     a parallelism-3 component peaks near 3.4 cores (Fig. 11).
const (
	// SpoutServiceRate is the maximum pull rate of one spout instance
	// (tuples/second). It is set high so spouts are never the
	// bottleneck, as in the paper's special test spout.
	SpoutServiceRate = 5e6
	// SplitterServiceRate is one splitter instance's max processing
	// rate (tuples/second): 180 000/s = 10.8 M/minute.
	SplitterServiceRate = 180_000
	// SplitterAlpha is words emitted per sentence processed.
	SplitterAlpha = workload.GatsbyMeanSentenceLength
	// CounterServiceRate is one counter instance's max processing rate
	// (tuples/second): 1.14 M/s = 68.4 M/minute.
	CounterServiceRate = 1.14e6

	// SplitterCPUPerTuple and friends parameterise the linear CPU
	// model of §V-E.
	SplitterCPUPerTuple     = 4.5e-6
	SplitterGatewayPerTuple = 2.0e-7
	CounterCPUPerTuple      = 8.0e-7
	CounterGatewayPerTuple  = 0
	SpoutCPUPerTuple        = 1.0e-7
	SpoutGatewayPerTuple    = 1.0e-7

	// SentenceBytes and WordBytes size the pending queues.
	SentenceBytes = 250
	WordBytes     = 60
)

// WordCountOptions parameterises the paper's evaluation topology.
type WordCountOptions struct {
	// SpoutP, SplitterP, CounterP are component parallelisms. Defaults
	// 8 / 1 / 3 (the single-instance validation setup, §V-B: spout
	// parallelism 8 throughout the evaluation).
	SpoutP, SplitterP, CounterP int
	// Containers for round-robin packing. Default 2.
	Containers int
	// RatePerMinute is the constant total offered source rate in
	// tuples/minute. Ignored when Schedule is set.
	RatePerMinute float64
	// Schedule overrides RatePerMinute with a time-varying source.
	Schedule workload.RateSchedule
	// CounterKeys overrides the key model of the splitter→counter
	// fields-grouped stream. Default: UniformKeys, the paper's
	// "fortunately unbiased" dataset (§V-D). Use ZipfKeys or
	// ExplicitKeys to study biased datasets.
	CounterKeys KeyModel
	// SlowFactors optionally degrades individual instances.
	SlowFactors map[topology.InstanceID]float64
	// ServiceNoiseStd and NoiseSeed forward to Config: per-tick
	// multiplicative capacity noise for realistic run-to-run variation.
	ServiceNoiseStd float64
	NoiseSeed       int64
	// Tick and MetricsInterval forward to Config.
	Tick            time.Duration
	MetricsInterval time.Duration
	// Metrics forwards to Config: the telemetry registry receiving
	// simulator event counters (nil disables them).
	Metrics *telemetry.Registry
}

func (o WordCountOptions) withDefaults() WordCountOptions {
	if o.SpoutP == 0 {
		o.SpoutP = 8
	}
	if o.SplitterP == 0 {
		o.SplitterP = 1
	}
	if o.CounterP == 0 {
		o.CounterP = 3
	}
	if o.Containers == 0 {
		o.Containers = 2
	}
	if o.CounterKeys == nil {
		o.CounterKeys = UniformKeys{}
	}
	return o
}

// WordCountTopology builds the paper's 3-stage topology (Fig. 1a) with
// the given parallelisms.
func WordCountTopology(spoutP, splitterP, counterP int) (*topology.Topology, error) {
	return topology.NewBuilder("word-count").
		AddSpout("spout", spoutP).
		AddBolt("splitter", splitterP).
		AddBolt("counter", counterP).
		Connect("spout", "splitter", topology.ShuffleGrouping).
		Connect("splitter", "counter", topology.FieldsGrouping, "word").
		Build()
}

// WordCountProfiles returns the calibrated component profiles used by
// the evaluation, with the given key model on the splitter→counter
// stream.
func WordCountProfiles(counterKeys KeyModel) map[string]ComponentProfile {
	return map[string]ComponentProfile{
		"spout": {
			ServiceRate:        SpoutServiceRate,
			BytesPerTuple:      SentenceBytes,
			CPUPerTuple:        SpoutCPUPerTuple,
			GatewayCPUPerTuple: SpoutGatewayPerTuple,
			Emits:              map[string]EmitProfile{"default": {Alpha: 1}},
		},
		"splitter": {
			ServiceRate:        SplitterServiceRate,
			BytesPerTuple:      SentenceBytes,
			CPUPerTuple:        SplitterCPUPerTuple,
			GatewayCPUPerTuple: SplitterGatewayPerTuple,
			Emits:              map[string]EmitProfile{"default": {Alpha: SplitterAlpha, Keys: counterKeys}},
		},
		"counter": {
			ServiceRate:        CounterServiceRate,
			BytesPerTuple:      WordBytes,
			CPUPerTuple:        CounterCPUPerTuple,
			GatewayCPUPerTuple: CounterGatewayPerTuple,
		},
	}
}

// NewWordCount assembles a ready-to-run simulation of the evaluation
// topology.
func NewWordCount(opts WordCountOptions) (*Simulation, error) {
	opts = opts.withDefaults()
	top, err := WordCountTopology(opts.SpoutP, opts.SplitterP, opts.CounterP)
	if err != nil {
		return nil, err
	}
	plan, err := topology.RoundRobinPack(top, opts.Containers)
	if err != nil {
		return nil, err
	}
	schedule := opts.Schedule
	if schedule == nil {
		schedule = workload.ConstantRate(opts.RatePerMinute / 60)
	}
	return New(Config{
		Topology:        top,
		Plan:            plan,
		Profiles:        WordCountProfiles(opts.CounterKeys),
		SpoutRates:      map[string]workload.RateSchedule{"spout": schedule},
		Tick:            opts.Tick,
		MetricsInterval: opts.MetricsInterval,
		SlowFactors:     opts.SlowFactors,
		ServiceNoiseStd: opts.ServiceNoiseStd,
		NoiseSeed:       opts.NoiseSeed,
		Metrics:         opts.Metrics,
	})
}
