// Package heron is a deterministic discrete-time simulator of a
// Heron-like distributed stream processing system. It is the substrate
// Caladrius' models are calibrated against and validated on, standing
// in for the Apache Heron + Aurora cluster of the paper's evaluation.
//
// The simulator reproduces the performance phenomenology the paper's
// models rest on (Fig. 3):
//
//   - every instance processes tuples at a bounded service rate, so an
//     instance's output rate is linear in its input rate (slope α, the
//     I/O coefficient of its logic) up to a saturation point (SP),
//     beyond which the output holds at the saturation throughput
//     ST = α·SP;
//   - each instance buffers pending tuples; when the buffered bytes
//     exceed the high watermark (100 MB by default) a backpressure
//     signal is broadcast to all stream managers and the spouts stop
//     forwarding, until the buffer drains below the low watermark
//     (50 MB);
//   - while spouts are stopped, the external source accumulates a
//     backlog which the spout then drains at its maximum pull rate, so
//     above the SP the topology re-enters backpressure almost
//     immediately — the per-minute "backpressure time" metric is
//     therefore bimodal (≈0 or ≈60 s), exactly as §IV-B1 observes;
//   - instance CPU load is linear in its input rate (processing cost
//     per tuple plus a gateway cost per transferred tuple).
//
// Tuples flow as fluid quantities (fractional tuples per tick) rather
// than individual messages, which keeps multi-hour simulations of
// multi-million-tuples-per-minute topologies fast and exactly
// reproducible.
package heron

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// EmitProfile describes one output stream of a component.
type EmitProfile struct {
	// Alpha is the I/O coefficient: average tuples emitted on this
	// stream per input tuple processed (per downstream *component*;
	// AllGrouping replicates it to every downstream instance).
	Alpha float64
	// Keys models the key distribution of tuples on this stream, used
	// to derive fields-grouping routing weights. Nil means uniform.
	Keys KeyModel
}

// ComponentProfile describes the performance characteristics of one
// component's instances. All instances of a component share a profile
// (they run the same code), matching §IV-B2.
type ComponentProfile struct {
	// ServiceRate is the maximum tuples per second one instance can
	// process; it determines the instance's saturation point. For
	// spouts it is the maximum pull rate from the external source.
	ServiceRate float64
	// BytesPerTuple sizes pending-queue occupancy for watermark
	// accounting. Default 250 bytes.
	BytesPerTuple float64
	// CPUPerTuple is CPU-seconds consumed per processed tuple.
	CPUPerTuple float64
	// GatewayCPUPerTuple is CPU-seconds per tuple moved through the
	// instance's gateway thread (input + output), modelling the
	// gateway/worker competition the paper observes in Fig. 5.
	GatewayCPUPerTuple float64
	// FailureRate is the fraction of processed tuples that fail in
	// user logic (dropped, not emitted); one of the four golden
	// signals ("Errors").
	FailureRate float64
	// Emits maps outbound stream name → emit profile. Streams the
	// topology declares but the profile omits default to Alpha 1.
	Emits map[string]EmitProfile
}

func (p ComponentProfile) withDefaults() ComponentProfile {
	if p.BytesPerTuple <= 0 {
		p.BytesPerTuple = 250
	}
	return p
}

func (p ComponentProfile) validate(name string) error {
	if p.ServiceRate <= 0 {
		return fmt.Errorf("heron: component %q non-positive service rate %g", name, p.ServiceRate)
	}
	if p.FailureRate < 0 || p.FailureRate >= 1 {
		return fmt.Errorf("heron: component %q failure rate %g outside [0,1)", name, p.FailureRate)
	}
	if p.CPUPerTuple < 0 || p.GatewayCPUPerTuple < 0 {
		return fmt.Errorf("heron: component %q negative CPU cost", name)
	}
	for stream, e := range p.Emits {
		if e.Alpha < 0 {
			return fmt.Errorf("heron: component %q stream %q negative alpha %g", name, stream, e.Alpha)
		}
	}
	return nil
}

// alphaFor returns the emit profile for a stream, defaulting to
// alpha 1 with uniform keys.
func (p ComponentProfile) alphaFor(stream string) EmitProfile {
	if e, ok := p.Emits[stream]; ok {
		return e
	}
	return EmitProfile{Alpha: 1}
}

// KeyModel describes the distribution of grouping keys on a stream and
// yields fields-grouping routing weights for a given downstream
// parallelism. Implementations must be deterministic.
type KeyModel interface {
	// Weights returns a length-p vector of non-negative routing
	// fractions summing to 1: element i is the share of tuples routed
	// to downstream instance i.
	Weights(p int) []float64
}

// UniformKeys models a perfectly balanced key set: every downstream
// instance receives an equal share regardless of parallelism. This is
// the "unbiased data set" case of §IV-B2b, where fields grouping
// behaves like shuffle (Equation 9).
type UniformKeys struct{}

// Weights implements KeyModel.
func (UniformKeys) Weights(p int) []float64 {
	w := make([]float64, p)
	for i := range w {
		w[i] = 1 / float64(p)
	}
	return w
}

// ZipfKeys models a realistic skewed vocabulary: N distinct keys with
// Zipf(s) frequencies, each key routed by hash modulo the downstream
// parallelism — exactly how Heron's fields grouping picks an instance.
// With a large N the induced per-instance bias is small (the paper's
// observation about Twitter-scale key diversity); with a small N it is
// visible, which the fields-grouping model tests exploit.
type ZipfKeys struct {
	// N is the number of distinct keys. Must be ≥ 1.
	N int
	// S is the Zipf exponent (> 1); default 1.1.
	S float64
	// Seed varies the synthetic key identities (and hence their
	// hashes) deterministically.
	Seed int64
}

// Weights implements KeyModel.
func (z ZipfKeys) Weights(p int) []float64 {
	if z.N < 1 {
		z.N = 1
	}
	s := z.S
	if s <= 1 {
		s = 1.1
	}
	// Zipf pmf: P(k) ∝ 1/k^s for rank k = 1..N.
	probs := make([]float64, z.N)
	var norm float64
	for k := 1; k <= z.N; k++ {
		probs[k-1] = 1 / math.Pow(float64(k), s)
		norm += probs[k-1]
	}
	rng := rand.New(rand.NewSource(z.Seed))
	w := make([]float64, p)
	for k := 0; k < z.N; k++ {
		key := fmt.Sprintf("key-%d-%d", z.Seed, k)
		_ = rng // reserved for future key-identity shuffling
		h := fnv.New32a()
		h.Write([]byte(key))
		w[int(h.Sum32())%p] += probs[k] / norm
	}
	return w
}

// ExplicitKeys routes by a caller-supplied per-key probability table,
// letting tests construct arbitrarily biased datasets. Keys are hashed
// like ZipfKeys.
type ExplicitKeys struct {
	// Probs maps key → relative frequency (normalised internally).
	Probs map[string]float64
}

// Weights implements KeyModel.
func (e ExplicitKeys) Weights(p int) []float64 {
	w := make([]float64, p)
	var norm float64
	for _, f := range e.Probs {
		norm += f
	}
	if norm == 0 {
		return UniformKeys{}.Weights(p)
	}
	for key, f := range e.Probs {
		h := fnv.New32a()
		h.Write([]byte(key))
		w[int(h.Sum32())%p] += f / norm
	}
	return w
}
