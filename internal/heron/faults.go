package heron

// Fault injection hook. The simulator stays deterministic: faults are
// pure functions of simulated time supplied by a FaultInjector, so the
// same injector schedule always yields the same run. The hook is
// designed to cost nothing when idle — one nil check per tick without
// an injector, and one BeginTick call per tick with an injector whose
// schedule is currently quiet (no per-instance work, no allocations).

import (
	"time"

	"caladrius/internal/topology"
)

// InstanceFault is the failure effect applied to one instance for the
// current tick. The zero value means "healthy".
type InstanceFault struct {
	// Down keeps the instance from processing this tick: a bolt leaves
	// its queue untouched (arrivals still accumulate), a spout stops
	// pulling from its source (the external backlog still grows).
	// Models a crashed instance or a stalled stream manager.
	Down bool
	// DropQueue discards the instance's pending queue right now; the
	// lost tuples are counted as failed and as a restart (the same
	// accounting as an OOM restart). Injectors should set it only on
	// the first tick of a crash.
	DropQueue bool
	// SlowFactor scales the instance's service capacity while the
	// fault is active; 0 (or 1) means unchanged. Models a degraded
	// host or noisy neighbour.
	SlowFactor float64
	// Unreachable discards arrivals addressed to this instance
	// (counted as route-dropped and failed). Models a network
	// partition of the instance's container.
	Unreachable bool
}

// FaultInjector feeds scheduled faults into a Simulation.
//
// The simulation calls BeginTick exactly once at the start of every
// tick with the elapsed simulated time. When it returns false the tick
// runs entirely on the fault-free path. When it returns true the
// simulation calls InstanceFault exactly once per instance, in
// topological component order, and applies the returned effects for
// this tick — so one-shot effects (DropQueue) are consumed the tick
// they are returned.
//
// Implementations must be deterministic in elapsed time; they need no
// internal locking (a Simulation is single-goroutine) but must not
// share mutable state across simulations.
type FaultInjector interface {
	BeginTick(elapsed time.Duration) bool
	InstanceFault(id topology.InstanceID) InstanceFault
}

// WithFaultInjector attaches (or, with nil, detaches) a fault injector
// to the simulation. Attach before Run; effects begin on the next
// tick.
func (s *Simulation) WithFaultInjector(inj FaultInjector) {
	s.injector = inj
}

// applyFaults runs the injector protocol for one tick and returns the
// tuples dropped by one-shot queue drops so step() can count them in
// event telemetry.
func (s *Simulation) applyFaults() float64 {
	if !s.injector.BeginTick(s.elapsed) {
		if s.faultTick {
			// The last fault just cleared: restore every instance.
			for _, inst := range s.instances {
				inst.fUnreach = false
				inst.slow = inst.baseSlow
			}
			s.faultTick = false
		}
		return 0
	}
	s.faultTick = true
	var dropped float64
	for _, inst := range s.instances {
		f := s.injector.InstanceFault(inst.id)
		inst.fUnreach = f.Unreachable
		if f.SlowFactor > 0 {
			inst.slow = inst.baseSlow * f.SlowFactor
		} else {
			inst.slow = inst.baseSlow
		}
		if f.Down && inst.downTicks == 0 {
			// One tick of downtime per Down tick keeps overlapping OOM
			// restart delays intact (downTicks is decremented in the
			// instance's own step).
			inst.downTicks = 1
		}
		if f.DropQueue && inst.queueTuples > 0 {
			inst.wFailed += inst.queueTuples
			inst.wQueueDropped += inst.queueTuples
			dropped += inst.queueTuples
			inst.queueTuples = 0
			inst.wRestarts++
		}
	}
	return dropped
}

// InstanceTotals is the cumulative tuple ledger of one instance since
// the start of the run, exact at any tick. The conservation laws the
// simulator maintains — under any fault schedule — are:
//
//	spout:  Source  == Executed + Backlog
//	bolt:   Arrived == Executed + QueueDropped + Queue
//	wiring: Σ Emitted == Σ bolts (Arrived + RouteDropped + InFlight)
//
// AllGrouping emits are counted per delivered copy, so the wiring sum
// balances without special cases.
type InstanceTotals struct {
	ID topology.InstanceID
	// Source counts external tuples offered to a spout; Backlog is the
	// portion not yet pulled.
	Source  float64
	Backlog float64
	// Arrived counts tuples accepted into a bolt's input queue;
	// InFlight is routed this tick but not yet enqueued.
	Arrived  float64
	InFlight float64
	// Executed / Emitted are processed tuples and per-copy emits.
	Executed float64
	Emitted  float64
	// Failed = user-logic failures + QueueDropped + RouteDropped.
	Failed float64
	// QueueDropped counts queue losses (OOM restarts and crash
	// faults); RouteDropped counts arrivals lost to partition faults.
	QueueDropped float64
	RouteDropped float64
	// Queue is the tuples pending in the input queue now.
	Queue float64
	// Restarts counts OOM and crash-fault restarts.
	Restarts float64
	// BackpressureMs is total time spent initiating backpressure.
	BackpressureMs float64
}

// Totals returns the cumulative per-instance ledgers, in topological
// component order. Closed windows are pre-aggregated at flushWindow,
// so this only folds in the live window's accumulators.
func (s *Simulation) Totals() []InstanceTotals {
	out := make([]InstanceTotals, len(s.instances))
	for i, inst := range s.instances {
		c := &inst.cum
		out[i] = InstanceTotals{
			ID:             inst.id,
			Source:         c.source + inst.wSource,
			Backlog:        inst.backlog,
			Arrived:        c.arrived + inst.wArrived,
			InFlight:       inst.arrivedTick,
			Executed:       c.executed + inst.wExecuted,
			Emitted:        c.emitted + inst.wEmitted,
			Failed:         c.failed + inst.wFailed,
			QueueDropped:   c.queueDropped + inst.wQueueDropped,
			RouteDropped:   c.routeDropped + inst.wRouteDropped,
			Queue:          inst.queueTuples,
			Restarts:       c.restarts + inst.wRestarts,
			BackpressureMs: c.bpMs + inst.wBpMs,
		}
	}
	return out
}
