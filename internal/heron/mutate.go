package heron

import "fmt"

// SetRouteAlpha changes the I/O coefficient of every route from
// component to dest, across all instances, to alpha. It models a
// mid-run workload shift — e.g. average sentence length changing under
// a word-count splitter — and is the lever the model-drift tests use
// to pull the simulator away from a calibration.
//
// The simulation is single-goroutine: call this only between Run
// invocations. It returns an error when alpha is negative or no such
// route exists.
func (s *Simulation) SetRouteAlpha(component, dest string, alpha float64) error {
	if alpha < 0 {
		return fmt.Errorf("heron: negative route alpha %g", alpha)
	}
	found := false
	for _, inst := range s.instances {
		if inst.id.Component != component {
			continue
		}
		for i := range inst.routes {
			if inst.routes[i].toComponent == dest {
				inst.routes[i].alpha = alpha
				found = true
			}
		}
	}
	if !found {
		return fmt.Errorf("heron: no route %s->%s", component, dest)
	}
	return nil
}
