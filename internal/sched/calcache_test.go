package sched

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"caladrius/internal/core"
	"caladrius/internal/telemetry"
)

func testModel(t *testing.T) *core.TopologyModel {
	t.Helper()
	return &core.TopologyModel{}
}

func TestCalCacheLookupStore(t *testing.T) {
	c := NewCalCache(CalCacheOptions{})
	if _, ok := c.Lookup("wc", 1, time.Minute); ok {
		t.Fatal("empty cache returned a hit")
	}
	m := testModel(t)
	c.Store("wc", 1, time.Minute, m)
	got, ok := c.Lookup("wc", 1, time.Minute)
	if !ok || got != m {
		t.Fatalf("Lookup after Store = %v, %v; want stored model", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("Stats = %+v; want 1 hit, 1 miss, 1 entry", st)
	}
}

// TestCalCacheKeyedValidation: an entry only serves the exact plan
// version and provider window it was calibrated against.
func TestCalCacheKeyedValidation(t *testing.T) {
	c := NewCalCache(CalCacheOptions{})
	c.Store("wc", 3, 10*time.Minute, testModel(t))
	cases := []struct {
		name    string
		version int
		window  time.Duration
		wantHit bool
	}{
		{"exact match", 3, 10 * time.Minute, true},
		{"older plan version", 2, 10 * time.Minute, false},
		{"newer plan version", 4, 10 * time.Minute, false},
		{"different window", 3, 5 * time.Minute, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, ok := c.Lookup("wc", tc.version, tc.window); ok != tc.wantHit {
				t.Fatalf("Lookup(v=%d, w=%s) hit = %v; want %v", tc.version, tc.window, ok, tc.wantHit)
			}
		})
	}
	if st := c.Stats(); st.Stale != 3 {
		t.Fatalf("Stats.Stale = %d; want 3 (superseded lookups)", st.Stale)
	}
}

func TestCalCacheTTL(t *testing.T) {
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { return now }
	c := NewCalCache(CalCacheOptions{TTL: time.Minute, Now: clock})
	c.Store("wc", 1, time.Minute, testModel(t))
	if _, ok := c.Lookup("wc", 1, time.Minute); !ok {
		t.Fatal("fresh entry missed")
	}
	now = now.Add(59 * time.Second)
	if _, ok := c.Lookup("wc", 1, time.Minute); !ok {
		t.Fatal("entry expired before TTL")
	}
	now = now.Add(2 * time.Second)
	if _, ok := c.Lookup("wc", 1, time.Minute); ok {
		t.Fatal("entry served past TTL")
	}
	if st := c.Stats(); st.Stale != 1 {
		t.Fatalf("Stats.Stale = %d; want 1 (TTL expiry)", st.Stale)
	}
}

func TestCalCacheZeroTTLNeverExpires(t *testing.T) {
	now := time.Unix(1700000000, 0)
	c := NewCalCache(CalCacheOptions{Now: func() time.Time { return now }})
	c.Store("wc", 1, time.Minute, testModel(t))
	now = now.Add(1000 * time.Hour)
	if _, ok := c.Lookup("wc", 1, time.Minute); !ok {
		t.Fatal("TTL-less entry expired")
	}
}

// TestCalCacheInvalidationScope: invalidating one topology (the
// tracker-update / packing-plan-change path) evicts exactly that
// topology's entry and nothing else.
func TestCalCacheInvalidationScope(t *testing.T) {
	cases := []struct {
		name       string
		stored     []string
		invalidate string
		wantGone   []string
		wantKept   []string
		wantHit    bool
	}{
		{
			name:       "tracker update evicts only the updated topology",
			stored:     []string{"wordcount", "adclicks", "fraud"},
			invalidate: "adclicks",
			wantGone:   []string{"adclicks"},
			wantKept:   []string{"wordcount", "fraud"},
			wantHit:    true,
		},
		{
			name:       "packing-plan change on one topology leaves siblings warm",
			stored:     []string{"wordcount", "adclicks"},
			invalidate: "wordcount",
			wantGone:   []string{"wordcount"},
			wantKept:   []string{"adclicks"},
			wantHit:    true,
		},
		{
			name:       "invalidating an uncached topology is a no-op",
			stored:     []string{"wordcount"},
			invalidate: "ghost",
			wantGone:   nil,
			wantKept:   []string{"wordcount"},
			wantHit:    false,
		},
		{
			name:       "invalidating an empty cache is a no-op",
			stored:     nil,
			invalidate: "anything",
			wantGone:   nil,
			wantKept:   nil,
			wantHit:    false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewCalCache(CalCacheOptions{})
			for _, topo := range tc.stored {
				c.Store(topo, 1, time.Minute, testModel(t))
			}
			if got := c.Invalidate(tc.invalidate); got != tc.wantHit {
				t.Fatalf("Invalidate(%q) = %v; want %v", tc.invalidate, got, tc.wantHit)
			}
			for _, topo := range tc.wantGone {
				if _, ok := c.Lookup(topo, 1, time.Minute); ok {
					t.Fatalf("topology %q still cached after invalidation", topo)
				}
			}
			for _, topo := range tc.wantKept {
				if _, ok := c.Lookup(topo, 1, time.Minute); !ok {
					t.Fatalf("topology %q wrongly evicted", topo)
				}
			}
			if got, want := c.Len(), len(tc.wantKept); got != want {
				t.Fatalf("Len = %d; want %d", got, want)
			}
		})
	}
}

// TestCalCacheConcurrentInvalidateLookup races lookups, stores and
// invalidations across topologies; run under -race this is the
// invalidation race coverage the scheduler contract requires.
func TestCalCacheConcurrentInvalidateLookup(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCalCache(CalCacheOptions{TTL: time.Hour, Registry: reg})
	topos := make([]string, 8)
	for i := range topos {
		topos[i] = fmt.Sprintf("topo%d", i)
		c.Store(topos[i], 1, time.Minute, &core.TopologyModel{})
	}
	// Bounded iterations rather than a wall-clock stop signal: the
	// interleaving coverage comes from goroutine count, not run time,
	// and a fixed workload cannot flake on a slow or loaded machine.
	const churnIters = 3000
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < churnIters; i++ {
				topo := topos[(g+i)%len(topos)]
				switch i % 3 {
				case 0:
					c.Lookup(topo, 1, time.Minute)
				case 1:
					c.Invalidate(topo)
				case 2:
					c.Store(topo, 1, time.Minute, &core.TopologyModel{})
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries < 0 || st.Entries > len(topos) {
		t.Fatalf("Entries = %d out of range [0, %d]", st.Entries, len(topos))
	}
	if st.Hits+st.Misses+st.Stale == 0 {
		t.Fatal("no lookups recorded during churn")
	}
}

func TestCalCacheStoreNilModelIgnored(t *testing.T) {
	c := NewCalCache(CalCacheOptions{})
	c.Store("wc", 1, time.Minute, nil)
	if c.Len() != 0 {
		t.Fatal("nil model was cached")
	}
}

// BenchmarkCalCacheHit asserts the warm lookup path is 0 allocs/op —
// the property that makes cache-served predicts cheap.
func BenchmarkCalCacheHit(b *testing.B) {
	c := NewCalCache(CalCacheOptions{TTL: time.Hour, Registry: telemetry.NewRegistry()})
	c.Store("wordcount", 7, 10*time.Minute, &core.TopologyModel{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Lookup("wordcount", 7, 10*time.Minute); !ok {
			b.Fatal("unexpected miss")
		}
	}
	b.StopTimer()
	allocs := testing.AllocsPerRun(1000, func() {
		c.Lookup("wordcount", 7, 10*time.Minute)
	})
	if allocs != 0 {
		b.Fatalf("cache-hit lookup = %v allocs/op; want 0", allocs)
	}
}
