// Package sched implements Caladrius' fleet-scale model-run scheduler:
// the bounded execution tier every predict/plan/calibrate request is
// funnelled through when the service fronts many topologies at once.
//
// The paper positions Caladrius as a shared service (§III-A; Daedalus
// motivates thousands of topologies), but an unbounded
// goroutine-per-request model tier melts under fan-in: every request
// re-runs the fetch→calibrate pipeline and the queue is whatever the
// Go runtime lets pile up. The scheduler replaces that with three
// layers:
//
//   - a bounded worker pool consuming a depth-bounded priority queue of
//     per-(topology, kind) work items, so model-run concurrency is a
//     configuration knob, not an accident of load;
//   - request coalescing: concurrent identical runs (same topology,
//     kind and inputs hash) share one in-flight execution,
//     singleflight-style, and fan the result out to every waiter;
//   - admission control with per-tenant fair-share slots: when the
//     queue is deep, a tenant already at or above its fair share is
//     shed (ErrOverloaded → HTTP 429 + Retry-After) while tenants
//     below theirs are still admitted — a flooding tenant cannot
//     starve the rest.
//
// Everything is observable: caladrius_sched_* series (queue depth,
// busy workers, queue-wait histogram, runs/coalesced by kind, sheds by
// tenant) flow through the self-monitoring scraper like every other
// registry instrument, and each queued run's wait appears as a
// "queue-wait" span in its request trace.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"caladrius/internal/telemetry"
)

// Series the scheduler registers.
const (
	// MetricQueueDepth gauges items waiting in the priority queue.
	MetricQueueDepth = "caladrius_sched_queue_depth"
	// MetricWorkersBusy gauges workers currently executing a run.
	MetricWorkersBusy = "caladrius_sched_workers_busy"
	// MetricWaitSeconds is the queue-wait histogram (enqueue→dequeue).
	MetricWaitSeconds = "caladrius_sched_queue_wait_seconds"
	// MetricRuns counts executed runs, by kind.
	MetricRuns = "caladrius_sched_runs_total"
	// MetricCoalesced counts submissions that joined an in-flight
	// identical run instead of enqueueing their own, by kind.
	MetricCoalesced = "caladrius_sched_coalesced_total"
	// MetricSheds counts admissions rejected by load shedding, by
	// tenant (cardinality-capped; overflow tenants count under "other").
	MetricSheds = "caladrius_sched_sheds_total"
)

// shedTenantCap bounds the distinct tenant labels MetricSheds can
// carry; tenants beyond the cap count under ShedOverflowTenant. A
// hostile client minting fresh tenant headers cannot grow the registry
// through the shed path.
const (
	shedTenantCap      = 32
	ShedOverflowTenant = "other"
)

// Priority orders queue service. Lower values run first.
type Priority int

// Priorities. Interactive (sync) requests outrank queued background
// work; batch analyses (rank/backtest) yield to both.
const (
	High Priority = iota
	Normal
	Low
	numPriorities
)

// Request identifies one unit of model work. Topology+Kind name the
// work item; Tenant feeds fair-share admission; Hash is the inputs
// fingerprint coalescing keys on (0 disables coalescing for the
// request — e.g. forced recalibrations that must each run).
type Request struct {
	Topology string
	Kind     string
	Tenant   string
	Hash     uint64
	Priority Priority
}

// ErrOverloaded is returned by Submit when admission control sheds the
// request. RetryAfter estimates when capacity will free up, sized from
// the recent mean run time and the current backlog — the API tier
// turns it into HTTP 429 with a Retry-After header.
type ErrOverloaded struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *ErrOverloaded) Error() string {
	return fmt.Sprintf("sched: overloaded, tenant %q at fair share (retry after %s)", e.Tenant, e.RetryAfter)
}

// ErrClosed is returned for submissions after Close, and completes any
// still-queued item the scheduler drained on shutdown.
var ErrClosed = errors.New("sched: scheduler closed")

// run is the shared completion state of one execution; coalesced
// followers hold the same run as the leader.
type run struct {
	mu        sync.Mutex
	done      chan struct{}
	result    any
	err       error
	callbacks []func(any, error)
}

func (r *run) complete(result any, err error) {
	r.mu.Lock()
	r.result, r.err = result, err
	cbs := r.callbacks
	r.callbacks = nil
	close(r.done)
	r.mu.Unlock()
	for _, cb := range cbs {
		cb(result, err)
	}
}

// Handle is a submitted run's future.
type Handle struct {
	r         *run
	coalesced bool
}

// Coalesced reports whether the submission joined an already in-flight
// identical run instead of enqueueing its own.
func (h Handle) Coalesced() bool { return h.coalesced }

// Wait blocks until the run completes or ctx is cancelled. A cancelled
// waiter abandons only its wait: the run itself keeps executing (other
// waiters may share it) and still lands in the audit ledger.
func (h Handle) Wait(ctx context.Context) (any, error) {
	select {
	case <-h.r.done:
		return h.r.result, h.r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// OnDone registers a completion callback (the async-job hook). If the
// run already completed the callback runs synchronously.
func (h Handle) OnDone(f func(result any, err error)) {
	h.r.mu.Lock()
	select {
	case <-h.r.done:
		result, err := h.r.result, h.r.err
		h.r.mu.Unlock()
		f(result, err)
		return
	default:
	}
	h.r.callbacks = append(h.r.callbacks, f)
	h.r.mu.Unlock()
}

// flightKey identifies coalescable work.
type flightKey struct {
	topology string
	kind     string
	hash     uint64
}

// item is one queued work unit.
type item struct {
	req      Request
	fn       func(context.Context) (any, error)
	ctx      context.Context
	r        *run
	key      flightKey // zero hash = not in the flight map
	enqueued time.Time
	waitSpan *telemetry.Span
	next     *item
}

// fifo is a singly-linked queue of items.
type fifo struct {
	head, tail *item
}

func (q *fifo) push(it *item) {
	if q.tail == nil {
		q.head, q.tail = it, it
		return
	}
	q.tail.next = it
	q.tail = it
}

func (q *fifo) pop() *item {
	it := q.head
	if it == nil {
		return nil
	}
	q.head = it.next
	if q.head == nil {
		q.tail = nil
	}
	it.next = nil
	return it
}

// Options configures a Scheduler.
type Options struct {
	// Workers bounds concurrent model runs. Default max(2, GOMAXPROCS).
	Workers int
	// QueueDepth bounds waiting items before admission control sheds.
	// Default 64.
	QueueDepth int
	// Now is the wall clock (tests). Default time.Now.
	Now func() time.Time
	// Registry optionally receives the caladrius_sched_* series.
	Registry *telemetry.Registry
}

// Scheduler is the bounded model-run execution tier. All methods are
// safe for concurrent use.
type Scheduler struct {
	workers int
	depth   int
	now     func() time.Time
	reg     *telemetry.Registry

	queueDepthG *telemetry.Gauge
	busyG       *telemetry.Gauge
	waitHist    *telemetry.Histogram

	mu          sync.Mutex
	cond        *sync.Cond
	queues      [numPriorities]fifo
	queued      int
	tenants     map[string]int // queued+running leaders per tenant
	inflight    map[flightKey]*run
	runCounts   map[string]*kindCounters // by kind
	shedByT     map[string]*telemetry.Counter
	closed      bool
	busy        int
	avgRunNanos float64 // EWMA of completed run durations
	runs        uint64
	coalesced   uint64
	sheds       uint64
	wg          sync.WaitGroup
}

type kindCounters struct {
	runs      *telemetry.Counter
	coalesced *telemetry.Counter
}

// New builds a scheduler and starts its workers.
func New(opts Options) *Scheduler {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
		if opts.Workers < 2 {
			opts.Workers = 2
		}
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	s := &Scheduler{
		workers:   opts.Workers,
		depth:     opts.QueueDepth,
		now:       opts.Now,
		reg:       opts.Registry,
		tenants:   map[string]int{},
		inflight:  map[flightKey]*run{},
		runCounts: map[string]*kindCounters{},
		shedByT:   map[string]*telemetry.Counter{},
	}
	s.cond = sync.NewCond(&s.mu)
	if s.reg != nil {
		s.reg.SetHelp(MetricQueueDepth, "Model runs waiting in the scheduler queue.")
		s.reg.SetHelp(MetricWorkersBusy, "Scheduler workers currently executing a model run.")
		s.reg.SetHelp(MetricWaitSeconds, "Time model runs spend queued before a worker picks them up.")
		s.reg.SetHelp(MetricRuns, "Model runs executed by the scheduler, by kind.")
		s.reg.SetHelp(MetricCoalesced, "Submissions that joined an in-flight identical run, by kind.")
		s.reg.SetHelp(MetricSheds, "Submissions shed by admission control, by tenant (cardinality-capped).")
		s.queueDepthG = s.reg.Gauge(MetricQueueDepth, nil)
		s.busyG = s.reg.Gauge(MetricWorkersBusy, nil)
		s.waitHist = s.reg.Histogram(MetricWaitSeconds, telemetry.DefLatencyBuckets, nil)
	}
	s.wg.Add(s.workers)
	for i := 0; i < s.workers; i++ {
		go s.worker()
	}
	return s
}

// Workers returns the worker-pool size.
func (s *Scheduler) Workers() int { return s.workers }

// QueueDepth returns the admission queue bound.
func (s *Scheduler) QueueDepth() int { return s.depth }

// Submit enqueues one model run, or joins an identical in-flight one.
// The returned Handle resolves when the run completes. ErrOverloaded
// means admission control shed the request; ErrClosed means the
// scheduler is shutting down. The run executes on a worker under a
// cancellation-detached copy of ctx (trace span and tenant ride along;
// a disconnecting client does not poison waiters sharing the run).
func (s *Scheduler) Submit(ctx context.Context, req Request, fn func(context.Context) (any, error)) (Handle, error) {
	if req.Priority < High || req.Priority >= numPriorities {
		req.Priority = Normal
	}
	key := flightKey{topology: req.Topology, kind: req.Kind, hash: req.Hash}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Handle{}, ErrClosed
	}
	if req.Hash != 0 {
		if r, ok := s.inflight[key]; ok {
			s.coalesced++
			kc := s.kindCountersLocked(req.Kind)
			s.mu.Unlock()
			if kc != nil {
				kc.coalesced.Inc()
			}
			return Handle{r: r, coalesced: true}, nil
		}
	}
	// Admission: with the queue at depth, only tenants below their fair
	// share (queue depth split across tenants with work in the system)
	// may still enqueue. Those fairness admissions can push the queue
	// past depth, but never past 2×depth — the hard cap also stops a
	// client minting fresh tenant names from growing the queue.
	active := len(s.tenants)
	if s.tenants[req.Tenant] == 0 {
		active++
	}
	fair := s.depth / active
	if fair < 1 {
		fair = 1
	}
	if s.queued >= s.depth && (s.tenants[req.Tenant] >= fair || s.queued >= 2*s.depth) {
		s.sheds++
		retry := s.retryAfterLocked()
		shedC := s.shedCounterLocked(req.Tenant)
		s.mu.Unlock()
		if shedC != nil {
			shedC.Inc()
		}
		return Handle{}, &ErrOverloaded{Tenant: req.Tenant, RetryAfter: retry}
	}
	r := &run{done: make(chan struct{})}
	it := &item{
		req:      req,
		fn:       fn,
		ctx:      context.WithoutCancel(ctx),
		r:        r,
		enqueued: s.now(),
		waitSpan: telemetry.SpanFromContext(ctx).Child("queue-wait"),
	}
	if req.Hash != 0 {
		it.key = key
		s.inflight[key] = r
	}
	s.queues[req.Priority].push(it)
	s.queued++
	s.tenants[req.Tenant]++
	if s.queueDepthG != nil {
		s.queueDepthG.Set(float64(s.queued))
	}
	s.cond.Signal()
	s.mu.Unlock()
	return Handle{r: r}, nil
}

// Do is Submit followed by Wait — the synchronous path.
func (s *Scheduler) Do(ctx context.Context, req Request, fn func(context.Context) (any, error)) (any, error) {
	h, err := s.Submit(ctx, req, fn)
	if err != nil {
		return nil, err
	}
	return h.Wait(ctx)
}

// retryAfterLocked estimates when a shed client should retry: the
// backlog drained at the recent mean run time across the pool,
// clamped to [1s, 60s]. Caller holds s.mu.
func (s *Scheduler) retryAfterLocked() time.Duration {
	avg := s.avgRunNanos
	if avg <= 0 {
		avg = float64(100 * time.Millisecond)
	}
	est := time.Duration(avg * float64(s.queued+1) / float64(s.workers))
	est = est.Round(time.Second)
	if est < time.Second {
		est = time.Second
	}
	if est > time.Minute {
		est = time.Minute
	}
	return est
}

// kindCountersLocked interns the per-kind run/coalesced counters.
// Kinds come from the API tier's fixed route set, so cardinality is
// naturally bounded. Caller holds s.mu; returns nil with no registry.
func (s *Scheduler) kindCountersLocked(kind string) *kindCounters {
	if s.reg == nil {
		return nil
	}
	kc, ok := s.runCounts[kind]
	if !ok {
		kc = &kindCounters{
			runs:      s.reg.Counter(MetricRuns, telemetry.Labels{"kind": kind}),
			coalesced: s.reg.Counter(MetricCoalesced, telemetry.Labels{"kind": kind}),
		}
		s.runCounts[kind] = kc
	}
	return kc
}

// shedCounterLocked interns the per-tenant shed counter, capped at
// shedTenantCap distinct tenants (overflow → "other"). Caller holds
// s.mu; returns nil with no registry.
func (s *Scheduler) shedCounterLocked(tenant string) *telemetry.Counter {
	if s.reg == nil {
		return nil
	}
	if c, ok := s.shedByT[tenant]; ok {
		return c
	}
	if len(s.shedByT) >= shedTenantCap {
		tenant = ShedOverflowTenant
		if c, ok := s.shedByT[tenant]; ok {
			return c
		}
	}
	c := s.reg.Counter(MetricSheds, telemetry.Labels{"tenant": tenant})
	s.shedByT[tenant] = c
	return c
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queued == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.queued == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		var it *item
		for p := 0; p < int(numPriorities); p++ {
			if it = s.queues[p].pop(); it != nil {
				break
			}
		}
		s.queued--
		s.busy++
		if s.queueDepthG != nil {
			s.queueDepthG.Set(float64(s.queued))
			s.busyG.Set(float64(s.busy))
		}
		kc := s.kindCountersLocked(it.req.Kind)
		s.mu.Unlock()

		wait := s.now().Sub(it.enqueued)
		if s.waitHist != nil {
			s.waitHist.Observe(wait.Seconds())
		}
		it.waitSpan.End()
		start := s.now()
		result, err := runSafely(it.ctx, it.fn)
		elapsed := s.now().Sub(start)

		s.mu.Lock()
		s.busy--
		s.runs++
		if s.busyG != nil {
			s.busyG.Set(float64(s.busy))
		}
		if s.tenants[it.req.Tenant]--; s.tenants[it.req.Tenant] <= 0 {
			delete(s.tenants, it.req.Tenant)
		}
		if it.key.hash != 0 {
			delete(s.inflight, it.key)
		}
		// EWMA (α=0.2) of run time feeds the Retry-After estimate.
		if s.avgRunNanos == 0 {
			s.avgRunNanos = float64(elapsed)
		} else {
			s.avgRunNanos += 0.2 * (float64(elapsed) - s.avgRunNanos)
		}
		s.mu.Unlock()
		if kc != nil {
			kc.runs.Inc()
		}
		it.r.complete(result, err)
	}
}

// runSafely executes fn, converting a panic into an error so one bad
// run cannot take a worker (or the process) down.
func runSafely(ctx context.Context, fn func(context.Context) (any, error)) (result any, err error) {
	defer func() {
		if v := recover(); v != nil {
			result, err = nil, fmt.Errorf("sched: model run panicked: %v", v)
		}
	}()
	return fn(ctx)
}

// Close stops admission, fails every still-queued item with ErrClosed
// and waits for in-flight runs to finish.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	var drained []*item
	for p := 0; p < int(numPriorities); p++ {
		for it := s.queues[p].pop(); it != nil; it = s.queues[p].pop() {
			drained = append(drained, it)
		}
	}
	s.queued = 0
	for _, it := range drained {
		if s.tenants[it.req.Tenant]--; s.tenants[it.req.Tenant] <= 0 {
			delete(s.tenants, it.req.Tenant)
		}
		if it.key.hash != 0 {
			delete(s.inflight, it.key)
		}
	}
	if s.queueDepthG != nil {
		s.queueDepthG.Set(0)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, it := range drained {
		it.waitSpan.End()
		it.r.complete(nil, ErrClosed)
	}
	s.wg.Wait()
}

// Stats is a point-in-time scheduler snapshot for the API surface.
type Stats struct {
	Workers       int     `json:"workers"`
	QueueLimit    int     `json:"queue_limit"`
	Queued        int     `json:"queued"`
	Busy          int     `json:"busy"`
	Runs          uint64  `json:"runs"`
	Coalesced     uint64  `json:"coalesced"`
	Sheds         uint64  `json:"sheds"`
	ActiveTenants int     `json:"active_tenants"`
	MeanRunMs     float64 `json:"mean_run_ms"`
}

// Stats snapshots the scheduler.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Workers:       s.workers,
		QueueLimit:    s.depth,
		Queued:        s.queued,
		Busy:          s.busy,
		Runs:          s.runs,
		Coalesced:     s.coalesced,
		Sheds:         s.sheds,
		ActiveTenants: len(s.tenants),
		MeanRunMs:     s.avgRunNanos / float64(time.Millisecond),
	}
}

// Hash64 is the FNV-1a fingerprint helper callers build request input
// hashes with. Hashing the canonical encoding of a request's inputs
// (topology, kind, body) keys coalescing; 0 is reserved for "never
// coalesce", so a genuine zero digest is nudged.
func Hash64(parts ...string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime64
		}
		h ^= 0xff // separator so ("ab","c") != ("a","bc")
		h *= prime64
	}
	if h == 0 {
		h = offset64
	}
	return h
}
