package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"caladrius/internal/telemetry"
)

func newTestScheduler(t *testing.T, workers, depth int) *Scheduler {
	t.Helper()
	s := New(Options{Workers: workers, QueueDepth: depth})
	t.Cleanup(s.Close)
	return s
}

func TestSubmitRunsAndReturnsResult(t *testing.T) {
	s := newTestScheduler(t, 2, 8)
	h, err := s.Submit(context.Background(), Request{Topology: "wc", Kind: "predict", Tenant: "a"},
		func(ctx context.Context) (any, error) { return 42, nil })
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got, err := h.Wait(context.Background())
	if err != nil || got != 42 {
		t.Fatalf("Wait = %v, %v; want 42, nil", got, err)
	}
	if h.Coalesced() {
		t.Fatal("first submission reported coalesced")
	}
}

func TestDoPropagatesError(t *testing.T) {
	s := newTestScheduler(t, 1, 4)
	want := errors.New("boom")
	_, err := s.Do(context.Background(), Request{Topology: "wc", Kind: "predict", Tenant: "a"},
		func(ctx context.Context) (any, error) { return nil, want })
	if !errors.Is(err, want) {
		t.Fatalf("Do err = %v; want %v", err, want)
	}
}

func TestPanicBecomesError(t *testing.T) {
	s := newTestScheduler(t, 1, 4)
	_, err := s.Do(context.Background(), Request{Topology: "wc", Kind: "predict", Tenant: "a"},
		func(ctx context.Context) (any, error) { panic("kaboom") })
	if err == nil || !contains(err.Error(), "kaboom") {
		t.Fatalf("Do err = %v; want panic-wrapping error", err)
	}
	// The worker survived the panic.
	got, err := s.Do(context.Background(), Request{Topology: "wc", Kind: "predict", Tenant: "a"},
		func(ctx context.Context) (any, error) { return "ok", nil })
	if err != nil || got != "ok" {
		t.Fatalf("post-panic Do = %v, %v; want ok, nil", got, err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

// TestCoalescing verifies that concurrent identical submissions share
// exactly one execution and all observe its result.
func TestCoalescing(t *testing.T) {
	s := newTestScheduler(t, 1, 16)
	var runs atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	// Block the only worker so followers arrive while the leader is
	// queued or running.
	blocker, err := s.Submit(context.Background(), Request{Topology: "block", Kind: "predict", Tenant: "z"},
		func(ctx context.Context) (any, error) { close(started); <-release; return nil, nil })
	if err != nil {
		t.Fatalf("blocker Submit: %v", err)
	}
	<-started

	req := Request{Topology: "wc", Kind: "predict", Tenant: "a", Hash: Hash64("wc", "predict", "body")}
	fn := func(ctx context.Context) (any, error) {
		runs.Add(1)
		return "shared", nil
	}
	leader, err := s.Submit(context.Background(), req, fn)
	if err != nil {
		t.Fatalf("leader Submit: %v", err)
	}
	if leader.Coalesced() {
		t.Fatal("leader reported coalesced")
	}
	const followers = 8
	var hs [followers]Handle
	for i := range hs {
		h, err := s.Submit(context.Background(), req, fn)
		if err != nil {
			t.Fatalf("follower %d Submit: %v", i, err)
		}
		if !h.Coalesced() {
			t.Fatalf("follower %d not coalesced", i)
		}
		hs[i] = h
	}
	close(release)
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatalf("blocker Wait: %v", err)
	}
	got, err := leader.Wait(context.Background())
	if err != nil || got != "shared" {
		t.Fatalf("leader Wait = %v, %v", got, err)
	}
	for i, h := range hs {
		got, err := h.Wait(context.Background())
		if err != nil || got != "shared" {
			t.Fatalf("follower %d Wait = %v, %v", i, got, err)
		}
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("fn ran %d times; want exactly 1", n)
	}
	st := s.Stats()
	if st.Coalesced != followers {
		t.Fatalf("Stats.Coalesced = %d; want %d", st.Coalesced, followers)
	}
}

// TestCoalescingZeroHashNeverCoalesces: Hash 0 requests each run.
func TestCoalescingZeroHashNeverCoalesces(t *testing.T) {
	s := newTestScheduler(t, 1, 16)
	var runs atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})
	blocker, _ := s.Submit(context.Background(), Request{Topology: "block", Kind: "predict", Tenant: "z"},
		func(ctx context.Context) (any, error) { close(started); <-release; return nil, nil })
	<-started

	req := Request{Topology: "wc", Kind: "calibrate", Tenant: "a"} // Hash 0
	var hs []Handle
	for i := 0; i < 3; i++ {
		h, err := s.Submit(context.Background(), req, func(ctx context.Context) (any, error) {
			runs.Add(1)
			return nil, nil
		})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		if h.Coalesced() {
			t.Fatalf("zero-hash submission %d coalesced", i)
		}
		hs = append(hs, h)
	}
	close(release)
	blocker.Wait(context.Background())
	for _, h := range hs {
		h.Wait(context.Background())
	}
	if n := runs.Load(); n != 3 {
		t.Fatalf("fn ran %d times; want 3 (no coalescing)", n)
	}
}

// TestAdmissionFairShare floods the queue from one tenant and checks
// the flooder is shed with 429 semantics while a second tenant is
// still admitted — no tenant starved below its fair share.
func TestAdmissionFairShare(t *testing.T) {
	const depth = 4
	s := newTestScheduler(t, 1, depth)
	release := make(chan struct{})
	started := make(chan struct{})
	blocker, _ := s.Submit(context.Background(), Request{Topology: "block", Kind: "predict", Tenant: "hog"},
		func(ctx context.Context) (any, error) { close(started); <-release; return nil, nil })
	<-started

	// Tenant "hog" floods: with only itself active its fair share is
	// the whole queue, so it fills depth and is then shed.
	var admitted, shed int
	var hs []Handle
	var lastShed *ErrOverloaded
	for i := 0; i < depth+6; i++ {
		h, err := s.Submit(context.Background(), Request{Topology: fmt.Sprintf("t%d", i), Kind: "predict", Tenant: "hog"},
			func(ctx context.Context) (any, error) { return nil, nil })
		if err == nil {
			admitted++
			hs = append(hs, h)
			continue
		}
		var over *ErrOverloaded
		if !errors.As(err, &over) {
			t.Fatalf("Submit %d: err = %v; want ErrOverloaded", i, err)
		}
		lastShed = over
		shed++
	}
	if shed == 0 {
		t.Fatal("flooding tenant was never shed")
	}
	if lastShed.Tenant != "hog" {
		t.Fatalf("shed tenant = %q; want hog", lastShed.Tenant)
	}
	if lastShed.RetryAfter < time.Second || lastShed.RetryAfter > time.Minute {
		t.Fatalf("RetryAfter = %s; want within [1s, 60s]", lastShed.RetryAfter)
	}

	// A newcomer tenant is below its fair share and must be admitted
	// even though the queue is at depth.
	h, err := s.Submit(context.Background(), Request{Topology: "fresh", Kind: "predict", Tenant: "newcomer"},
		func(ctx context.Context) (any, error) { return "ran", nil })
	if err != nil {
		t.Fatalf("newcomer shed despite being under fair share: %v", err)
	}
	hs = append(hs, h)

	st := s.Stats()
	if st.Sheds != uint64(shed) {
		t.Fatalf("Stats.Sheds = %d; want %d", st.Sheds, shed)
	}
	close(release)
	blocker.Wait(context.Background())
	for _, h := range hs {
		if _, err := h.Wait(context.Background()); err != nil {
			t.Fatalf("admitted run failed: %v", err)
		}
	}
}

// TestPriorityOrdering: with one worker blocked, a High item submitted
// after Low/Normal items still runs first.
func TestPriorityOrdering(t *testing.T) {
	s := newTestScheduler(t, 1, 16)
	release := make(chan struct{})
	started := make(chan struct{})
	blocker, _ := s.Submit(context.Background(), Request{Topology: "block", Kind: "predict", Tenant: "z"},
		func(ctx context.Context) (any, error) { close(started); <-release; return nil, nil })
	<-started

	var mu sync.Mutex
	var order []string
	mark := func(name string) func(context.Context) (any, error) {
		return func(ctx context.Context) (any, error) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil, nil
		}
	}
	h1, _ := s.Submit(context.Background(), Request{Topology: "a", Kind: "rank", Tenant: "t", Priority: Low}, mark("low"))
	h2, _ := s.Submit(context.Background(), Request{Topology: "b", Kind: "predict", Tenant: "t", Priority: Normal}, mark("normal"))
	h3, _ := s.Submit(context.Background(), Request{Topology: "c", Kind: "predict", Tenant: "t", Priority: High}, mark("high"))
	close(release)
	blocker.Wait(context.Background())
	for _, h := range []Handle{h1, h2, h3} {
		h.Wait(context.Background())
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"high", "normal", "low"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order = %v; want %v", order, want)
		}
	}
}

// TestWaitCancellationDoesNotAbortRun: a cancelled waiter gets
// ctx.Err, but the run still completes for other waiters.
func TestWaitCancellationDoesNotAbortRun(t *testing.T) {
	s := newTestScheduler(t, 1, 8)
	release := make(chan struct{})
	started := make(chan struct{})
	req := Request{Topology: "wc", Kind: "predict", Tenant: "a", Hash: Hash64("x")}
	leader, err := s.Submit(context.Background(), req, func(ctx context.Context) (any, error) {
		close(started)
		<-release
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return "done", nil
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	follower, err := s.Submit(context.Background(), req, func(ctx context.Context) (any, error) { return nil, nil })
	if err != nil || !follower.Coalesced() {
		t.Fatalf("follower Submit = coalesced %v, %v", follower.Coalesced(), err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := leader.Wait(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Wait err = %v; want context.Canceled", err)
	}
	close(release)
	got, err := follower.Wait(context.Background())
	if err != nil || got != "done" {
		t.Fatalf("follower Wait = %v, %v; want done (run not poisoned by cancelled waiter)", got, err)
	}
}

func TestOnDoneAfterCompletionRunsSynchronously(t *testing.T) {
	s := newTestScheduler(t, 1, 4)
	h, _ := s.Submit(context.Background(), Request{Topology: "wc", Kind: "predict", Tenant: "a"},
		func(ctx context.Context) (any, error) { return 7, nil })
	h.Wait(context.Background())
	var got any
	h.OnDone(func(result any, err error) { got = result })
	if got != 7 {
		t.Fatalf("OnDone after completion saw %v; want 7", got)
	}
}

func TestOnDoneBeforeCompletion(t *testing.T) {
	s := newTestScheduler(t, 1, 4)
	release := make(chan struct{})
	started := make(chan struct{})
	h, _ := s.Submit(context.Background(), Request{Topology: "wc", Kind: "predict", Tenant: "a"},
		func(ctx context.Context) (any, error) { close(started); <-release; return "later", nil })
	<-started
	done := make(chan any, 1)
	h.OnDone(func(result any, err error) { done <- result })
	close(release)
	select {
	case got := <-done:
		if got != "later" {
			t.Fatalf("OnDone saw %v; want later", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnDone callback never fired")
	}
}

func TestCloseFailsQueuedAndRejectsNew(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 8})
	release := make(chan struct{})
	started := make(chan struct{})
	blocker, _ := s.Submit(context.Background(), Request{Topology: "block", Kind: "predict", Tenant: "z"},
		func(ctx context.Context) (any, error) { close(started); <-release; return nil, nil })
	<-started
	queued, _ := s.Submit(context.Background(), Request{Topology: "q", Kind: "predict", Tenant: "a"},
		func(ctx context.Context) (any, error) { return nil, nil })
	closeDone := make(chan struct{})
	go func() {
		s.Close()
		close(closeDone)
	}()
	// Close drains the queue — completing queued items with ErrClosed —
	// before it waits for in-flight work, so this Wait returning is the
	// deterministic signal that Close has started; only then release
	// the blocker. No timing assumption anywhere.
	if _, err := queued.Wait(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("queued Wait err = %v; want ErrClosed", err)
	}
	close(release)
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatalf("in-flight run should finish on Close: %v", err)
	}
	<-closeDone
	if _, err := s.Submit(context.Background(), Request{Topology: "x", Kind: "predict", Tenant: "a"}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Submit err = %v; want ErrClosed", err)
	}
}

// TestSchedulerConcurrentChurn hammers Submit/Wait from many
// goroutines across tenants and kinds; meaningful under -race.
func TestSchedulerConcurrentChurn(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := New(Options{Workers: 4, QueueDepth: 32, Registry: reg})
	defer s.Close()
	var wg sync.WaitGroup
	var ran atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				req := Request{
					Topology: fmt.Sprintf("topo%d", i%5),
					Kind:     "predict",
					Tenant:   fmt.Sprintf("tenant%d", g%3),
					Hash:     Hash64(fmt.Sprintf("%d", i%7)),
					Priority: Priority(i % int(numPriorities)),
				}
				h, err := s.Submit(context.Background(), req, func(ctx context.Context) (any, error) {
					ran.Add(1)
					return nil, nil
				})
				if err != nil {
					var over *ErrOverloaded
					if !errors.As(err, &over) {
						t.Errorf("Submit: %v", err)
					}
					continue
				}
				if _, err := h.Wait(context.Background()); err != nil {
					t.Errorf("Wait: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Runs == 0 || st.Runs != uint64(ran.Load()) {
		t.Fatalf("Stats.Runs = %d; fn ran %d times", st.Runs, ran.Load())
	}
	if st.Queued != 0 || st.Busy != 0 || st.ActiveTenants != 0 {
		t.Fatalf("scheduler not drained: %+v", st)
	}
}

// TestShedTenantCardinalityCap: hostile tenants minting fresh names
// cannot grow the shed counter set past the cap.
func TestShedTenantCardinalityCap(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := New(Options{Workers: 1, QueueDepth: 1, Registry: reg})
	defer s.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	s.Submit(context.Background(), Request{Topology: "block", Kind: "predict", Tenant: "z"},
		func(ctx context.Context) (any, error) { close(started); <-release; return nil, nil })
	<-started
	// Fill the queue so every subsequent over-share tenant is a
	// candidate for shedding once it has an item queued.
	s.Submit(context.Background(), Request{Topology: "fill", Kind: "predict", Tenant: "z"},
		func(ctx context.Context) (any, error) { return nil, nil })
	for i := 0; i < 3*shedTenantCap; i++ {
		tenant := fmt.Sprintf("mint%04d", i)
		// First submission is admitted (fair share ≥ 1); the second
		// from the same tenant at depth is shed and labelled.
		s.Submit(context.Background(), Request{Topology: "a", Kind: "predict", Tenant: tenant},
			func(ctx context.Context) (any, error) { return nil, nil })
		s.Submit(context.Background(), Request{Topology: "b", Kind: "predict", Tenant: tenant},
			func(ctx context.Context) (any, error) { return nil, nil })
	}
	s.mu.Lock()
	distinct := len(s.shedByT)
	s.mu.Unlock()
	if distinct > shedTenantCap+1 { // +1 for "other"
		t.Fatalf("shed counter cardinality = %d; cap is %d", distinct, shedTenantCap)
	}
	close(release)
}

func TestHash64(t *testing.T) {
	if Hash64("ab", "c") == Hash64("a", "bc") {
		t.Fatal("Hash64 must separate parts")
	}
	if Hash64("x") == 0 || Hash64() == 0 {
		t.Fatal("Hash64 must never return the reserved 0")
	}
	if Hash64("same", "input") != Hash64("same", "input") {
		t.Fatal("Hash64 must be deterministic")
	}
}

// BenchmarkSchedulerSubmit measures enqueue+run+wait overhead of the
// scheduler itself with a no-op run — the tax every model run pays.
func BenchmarkSchedulerSubmit(b *testing.B) {
	s := New(Options{Workers: 2, QueueDepth: 1024})
	defer s.Close()
	ctx := context.Background()
	req := Request{Topology: "wc", Kind: "predict", Tenant: "bench"}
	fn := func(ctx context.Context) (any, error) { return nil, nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := s.Submit(ctx, req, fn)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Wait(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
