package sched

import (
	"sync"
	"sync/atomic"
	"time"

	"caladrius/internal/core"
	"caladrius/internal/telemetry"
)

// Series the calibration cache registers.
const (
	// MetricCalHits counts lookups served from the cache.
	MetricCalHits = "caladrius_calcache_hits_total"
	// MetricCalMisses counts lookups with no usable entry.
	MetricCalMisses = "caladrius_calcache_misses_total"
	// MetricCalStale counts lookups that found an entry but rejected it
	// (plan version or window superseded, or TTL expired).
	MetricCalStale = "caladrius_calcache_stale_total"
	// MetricCalInvalidations counts explicit evictions (tracker update,
	// packing-plan change, forced recalibration).
	MetricCalInvalidations = "caladrius_calcache_invalidations_total"
	// MetricCalEntries gauges resident entries.
	MetricCalEntries = "caladrius_calcache_entries"
)

// calEntry is one cached calibrated model. An entry is usable only for
// the exact (plan version, provider window) it was built from.
type calEntry struct {
	planVersion int
	window      time.Duration
	model       *core.TopologyModel
	storedAt    time.Time
}

// CalCacheOptions configures a CalCache.
type CalCacheOptions struct {
	// TTL bounds entry age; 0 means entries never expire by time (they
	// are still evicted by invalidation and superseded by version).
	TTL time.Duration
	// Now is the wall clock (tests). Default time.Now.
	Now func() time.Time
	// Registry optionally receives the caladrius_calcache_* series.
	Registry *telemetry.Registry
}

// CalCache caches calibrated topology models keyed by topology name,
// with entries validated against (packing-plan version, provider
// window) and an optional TTL. The hit path performs zero heap
// allocations — an RLock, one map probe and atomic counters — which is
// what makes warm predicts skip the fetch→calibrate stages for free.
type CalCache struct {
	ttl time.Duration
	now func() time.Time

	mu      sync.RWMutex
	entries map[string]calEntry

	hits          atomic.Uint64
	misses        atomic.Uint64
	stale         atomic.Uint64
	invalidations atomic.Uint64

	hitsC    *telemetry.Counter
	missesC  *telemetry.Counter
	staleC   *telemetry.Counter
	invalidC *telemetry.Counter
	entriesG *telemetry.Gauge
}

// NewCalCache builds an empty cache.
func NewCalCache(opts CalCacheOptions) *CalCache {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	c := &CalCache{
		ttl:     opts.TTL,
		now:     opts.Now,
		entries: map[string]calEntry{},
	}
	if opts.Registry != nil {
		r := opts.Registry
		r.SetHelp(MetricCalHits, "Calibration-cache lookups served from cache.")
		r.SetHelp(MetricCalMisses, "Calibration-cache lookups with no usable entry.")
		r.SetHelp(MetricCalStale, "Calibration-cache lookups rejected as superseded or expired.")
		r.SetHelp(MetricCalInvalidations, "Calibration-cache entries explicitly evicted.")
		r.SetHelp(MetricCalEntries, "Calibrated topology models resident in the cache.")
		c.hitsC = r.Counter(MetricCalHits, nil)
		c.missesC = r.Counter(MetricCalMisses, nil)
		c.staleC = r.Counter(MetricCalStale, nil)
		c.invalidC = r.Counter(MetricCalInvalidations, nil)
		c.entriesG = r.Gauge(MetricCalEntries, nil)
	}
	return c
}

// Lookup returns the cached model for topology iff it was calibrated
// against exactly planVersion and window and (with a TTL configured)
// has not expired. The hit path is 0 allocs/op.
func (c *CalCache) Lookup(topology string, planVersion int, window time.Duration) (*core.TopologyModel, bool) {
	c.mu.RLock()
	e, ok := c.entries[topology]
	c.mu.RUnlock()
	if !ok {
		c.misses.Add(1)
		if c.missesC != nil {
			c.missesC.Inc()
		}
		return nil, false
	}
	if e.planVersion != planVersion || e.window != window ||
		(c.ttl > 0 && c.now().Sub(e.storedAt) >= c.ttl) {
		c.stale.Add(1)
		if c.staleC != nil {
			c.staleC.Inc()
		}
		return nil, false
	}
	c.hits.Add(1)
	if c.hitsC != nil {
		c.hitsC.Inc()
	}
	return e.model, true
}

// Store caches model for topology. A later Store for the same topology
// replaces the entry (newest calibration wins).
func (c *CalCache) Store(topology string, planVersion int, window time.Duration, model *core.TopologyModel) {
	if model == nil {
		return
	}
	c.mu.Lock()
	c.entries[topology] = calEntry{
		planVersion: planVersion,
		window:      window,
		model:       model,
		storedAt:    c.now(),
	}
	n := len(c.entries)
	c.mu.Unlock()
	if c.entriesG != nil {
		c.entriesG.Set(float64(n))
	}
}

// Invalidate evicts exactly the named topology's entry, reporting
// whether one was present. Tracker updates and packing-plan changes
// call this so the next predict recalibrates against fresh state.
func (c *CalCache) Invalidate(topology string) bool {
	c.mu.Lock()
	_, ok := c.entries[topology]
	if ok {
		delete(c.entries, topology)
	}
	n := len(c.entries)
	c.mu.Unlock()
	if !ok {
		return false
	}
	c.invalidations.Add(1)
	if c.invalidC != nil {
		c.invalidC.Inc()
	}
	if c.entriesG != nil {
		c.entriesG.Set(float64(n))
	}
	return true
}

// Len reports resident entries.
func (c *CalCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// CalCacheStats is a point-in-time cache snapshot for the API surface.
type CalCacheStats struct {
	Entries       int     `json:"entries"`
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	Stale         uint64  `json:"stale"`
	Invalidations uint64  `json:"invalidations"`
	HitRate       float64 `json:"hit_rate"`
}

// Stats snapshots the cache. HitRate is hits over all lookups (0 with
// no lookups yet).
func (c *CalCache) Stats() CalCacheStats {
	st := CalCacheStats{
		Entries:       c.Len(),
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Stale:         c.stale.Load(),
		Invalidations: c.invalidations.Load(),
	}
	if total := st.Hits + st.Misses + st.Stale; total > 0 {
		st.HitRate = float64(st.Hits) / float64(total)
	}
	return st
}
