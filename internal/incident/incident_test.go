package incident

import (
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"caladrius/internal/telemetry"
	"caladrius/internal/tsdb"
)

// fakeClock is a mutex-guarded clock shared between the test goroutine
// and the recorder's capture worker.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testRule() telemetry.Rule {
	return telemetry.Rule{
		Name:        "model-accuracy-drift",
		Description: "rolling MAPE above threshold",
		Metric:      "caladrius_model_mape",
		Window:      15 * time.Minute,
		Agg:         tsdb.AggLast,
		Op:          telemetry.OpGreater,
		Threshold:   0.08,
	}
}

func testAlert(rule telemetry.Rule, at time.Time) telemetry.Alert {
	v := 0.31
	return telemetry.Alert{
		Rule:        rule.Name,
		Description: rule.Description,
		State:       telemetry.StateFiring,
		Value:       &v,
		Threshold:   rule.Threshold,
		Op:          string(rule.Op),
		Window:      rule.Window.String(),
		Since:       &at,
		EvaluatedAt: at,
	}
}

// newTestRecorder builds a fully-sourced recorder with a fast CPU
// profile window and a fake clock.
func newTestRecorder(t *testing.T, clock *fakeClock, maxBundles int) (*Recorder, *telemetry.Registry, *telemetry.LogRing, *telemetry.Tracer, *tsdb.DB) {
	t.Helper()
	reg := telemetry.NewRegistry()
	logs := telemetry.NewLogRing(64)
	tracer := telemetry.NewTracer(16, nil)
	db := tsdb.New(24 * time.Hour)
	rec, err := New(Options{
		Dir:        filepath.Join(t.TempDir(), "incidents"),
		Registry:   reg,
		History:    db,
		Logs:       logs,
		Tracer:     tracer,
		Cooldown:   5 * time.Minute,
		MaxBundles: maxBundles,
		CPUProfile: 20 * time.Millisecond,
		Now:        clock.Now,
		Logger:     slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError})),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rec.Close)
	return rec, reg, logs, tracer, db
}

func counterValue(t *testing.T, reg *telemetry.Registry, name string, labels telemetry.Labels) float64 {
	t.Helper()
	return reg.Counter(name, labels).Value()
}

func TestCaptureNowBundle(t *testing.T) {
	clock := newFakeClock()
	rec, reg, logs, tracer, _ := newTestRecorder(t, clock, 8)

	logs.Append(clock.Now(), slog.LevelInfo, "http request", "req-1", []byte("status=200"))
	sp := tracer.Start("req-1", "performance")
	sp.End()

	m, err := rec.CaptureNow()
	if err != nil {
		t.Fatal(err)
	}
	if m.Trigger != TriggerManual || m.Version != BundleVersion {
		t.Errorf("manifest = %+v", m)
	}
	wantArtifacts := []string{
		ArtifactCPU, ArtifactHeap, ArtifactGoroutine, ArtifactMutex,
		ArtifactBlock, ArtifactLogs, ArtifactSpans,
	}
	have := map[string]bool{}
	for _, a := range m.Artifacts {
		have[a.Name] = true
		if a.Bytes <= 0 {
			t.Errorf("artifact %s is empty", a.Name)
		}
		if _, err := os.Stat(filepath.Join(rec.Dir(), m.ID, a.Name)); err != nil {
			t.Errorf("artifact %s: %v", a.Name, err)
		}
	}
	for _, name := range wantArtifacts {
		if !have[name] {
			t.Errorf("bundle missing %s (notes: %v)", name, m.Notes)
		}
	}
	if m.LogRecords != 1 || m.SpanTraces != 1 {
		t.Errorf("log records = %d, span traces = %d", m.LogRecords, m.SpanTraces)
	}
	// "req-1" appears in both the log ring and the span ring: joined.
	if len(m.JoinedTraceIDs) != 1 || m.JoinedTraceIDs[0] != "req-1" {
		t.Errorf("joined traces = %v", m.JoinedTraceIDs)
	}
	// Manifest presence marks completion and round-trips from disk.
	data, err := os.ReadFile(filepath.Join(rec.Dir(), m.ID, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var onDisk Manifest
	if err := json.Unmarshal(data, &onDisk); err != nil {
		t.Fatal(err)
	}
	if onDisk.ID != m.ID || len(onDisk.Artifacts) != len(m.Artifacts) {
		t.Errorf("on-disk manifest = %+v", onDisk)
	}
	if got, ok := rec.Get(m.ID); !ok || got.ID != m.ID {
		t.Errorf("Get(%s) = %+v, %v", m.ID, got, ok)
	}
	if path, ok := rec.ArtifactPath(m.ID, ArtifactHeap); !ok || path == "" {
		t.Errorf("ArtifactPath = %q, %v", path, ok)
	}
	if _, ok := rec.ArtifactPath(m.ID, "../../etc/passwd"); ok {
		t.Error("ArtifactPath resolved an unlisted name")
	}
	if got := counterValue(t, reg, "caladrius_incident_captures_total", telemetry.Labels{"trigger": TriggerManual}); got != 1 {
		t.Errorf("manual captures = %g", got)
	}
}

func TestFiringHookCooldown(t *testing.T) {
	clock := newFakeClock()
	rec, reg, _, _, db := newTestRecorder(t, clock, 8)
	rule := testRule()
	for i := -20; i <= 0; i++ {
		db.Append(rule.Metric, nil, clock.Now().Add(time.Duration(i)*time.Minute), 0.3)
	}
	hook := rec.FiringHook()

	hook(rule, testAlert(rule, clock.Now()))
	rec.Flush()
	if n := len(rec.List()); n != 1 {
		t.Fatalf("bundles after first fire = %d", n)
	}

	// A flap inside the cooldown is debounced.
	clock.Advance(time.Minute)
	hook(rule, testAlert(rule, clock.Now()))
	rec.Flush()
	if n := len(rec.List()); n != 1 {
		t.Fatalf("bundles after debounced fire = %d", n)
	}
	if got := counterValue(t, reg, "caladrius_incident_suppressed_total", nil); got != 1 {
		t.Errorf("suppressed = %g", got)
	}

	// Past the cooldown the same rule captures again.
	clock.Advance(5 * time.Minute)
	hook(rule, testAlert(rule, clock.Now()))
	rec.Flush()
	if n := len(rec.List()); n != 2 {
		t.Fatalf("bundles after cooldown elapsed = %d", n)
	}
	if got := counterValue(t, reg, "caladrius_incident_captures_total", telemetry.Labels{"trigger": TriggerSLO}); got != 2 {
		t.Errorf("slo captures = %g", got)
	}

	// The SLO-triggered bundle carries the alert and a metrics window
	// spanning rule window + lookback.
	m := rec.List()[0]
	if m.Rule != rule.Name || m.Alert == nil || m.Alert.Value == nil || *m.Alert.Value != 0.31 {
		t.Errorf("manifest = %+v", m)
	}
	if m.Metrics == nil || m.Metrics.Metric != rule.Metric || m.Metrics.Points == 0 {
		t.Fatalf("metrics window = %+v", m.Metrics)
	}
	if got := m.Metrics.End.Sub(m.Metrics.Start); got != rule.Window+5*time.Minute {
		t.Errorf("metrics span = %s", got)
	}
	foundMetrics := false
	for _, a := range m.Artifacts {
		if a.Name == ArtifactMetrics {
			foundMetrics = true
		}
	}
	if !foundMetrics {
		t.Errorf("no metrics artifact: %+v", m.Artifacts)
	}
}

func TestCooldownIsPerRule(t *testing.T) {
	clock := newFakeClock()
	rec, _, _, _, _ := newTestRecorder(t, clock, 8)
	hook := rec.FiringHook()
	r1, r2 := testRule(), testRule()
	r2.Name = "http-p95-latency"
	hook(r1, testAlert(r1, clock.Now()))
	hook(r2, testAlert(r2, clock.Now()))
	rec.Flush()
	if n := len(rec.List()); n != 2 {
		t.Fatalf("bundles = %d, want 2 (cooldown must not couple rules)", n)
	}
}

func TestRetentionPrunesOldest(t *testing.T) {
	clock := newFakeClock()
	rec, _, _, _, _ := newTestRecorder(t, clock, 2)
	var ids []string
	for i := 0; i < 3; i++ {
		m, err := rec.CaptureNow()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, m.ID)
		clock.Advance(time.Second)
	}
	list := rec.List()
	if len(list) != 2 {
		t.Fatalf("retained = %d", len(list))
	}
	// Newest first.
	if list[0].ID != ids[2] || list[1].ID != ids[1] {
		t.Errorf("list = [%s %s], want [%s %s]", list[0].ID, list[1].ID, ids[2], ids[1])
	}
	if _, err := os.Stat(filepath.Join(rec.Dir(), ids[0])); !os.IsNotExist(err) {
		t.Errorf("evicted bundle dir still on disk: %v", err)
	}
}

func TestRestartReindexesBundles(t *testing.T) {
	clock := newFakeClock()
	rec, _, _, _, _ := newTestRecorder(t, clock, 8)
	m1, err := rec.CaptureNow()
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Second)
	m2, err := rec.CaptureNow()
	if err != nil {
		t.Fatal(err)
	}
	dir := rec.Dir()
	rec.Close()

	// An incomplete bundle (no manifest) must be ignored.
	if err := os.MkdirAll(filepath.Join(dir, "half-written"), 0o755); err != nil {
		t.Fatal(err)
	}

	rec2, err := New(Options{Dir: dir, Registry: telemetry.NewRegistry(), Now: clock.Now,
		Logger: slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError}))})
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	list := rec2.List()
	if len(list) != 2 || list[0].ID != m2.ID || list[1].ID != m1.ID {
		t.Fatalf("reindexed = %+v", list)
	}
}

func TestClosedRecorderRejectsWork(t *testing.T) {
	clock := newFakeClock()
	rec, _, _, _, _ := newTestRecorder(t, clock, 8)
	hook := rec.FiringHook()
	rec.Close()
	if _, err := rec.CaptureNow(); err == nil {
		t.Error("CaptureNow on closed recorder succeeded")
	}
	rule := testRule()
	hook(rule, testAlert(rule, clock.Now())) // must not panic or enqueue
	if n := len(rec.List()); n != 0 {
		t.Errorf("bundles = %d", n)
	}
}
