// Package incident implements Caladrius' flight recorder: when an SLO
// fires (or an operator asks), it snapshots a versioned on-disk bundle
// of diagnostic evidence — CPU/heap/goroutine/mutex/block pprof
// profiles, the recent structured-log ring, the recent span ring, and
// a windowed extract of the firing rule's series from the
// self-monitoring history — so "why did the service misbehave at
// 03:12" can be answered from recorded state instead of a human
// attached at the right moment.
//
// Capture is asynchronous off the SLO evaluator goroutine (the
// evaluator runs on the scraper's tick; a CPU profile takes seconds),
// debounced per rule so a flapping alert cannot profile-storm the
// process, and retention-bounded on disk. The recorder observes
// itself through caladrius_incident_* metrics.
package incident

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"caladrius/internal/profiler"
	"caladrius/internal/telemetry"
	"caladrius/internal/tsdb"
)

// BundleVersion is written into every manifest so future readers can
// detect layout changes.
const BundleVersion = 1

// Artifact names inside a bundle directory.
const (
	ArtifactCPU       = "cpu.pprof"
	ArtifactHeap      = "heap.pprof"
	ArtifactGoroutine = "goroutine.pprof"
	ArtifactMutex     = "mutex.pprof"
	ArtifactBlock     = "block.pprof"
	ArtifactLogs      = "logs.json"
	ArtifactSpans     = "spans.json"
	ArtifactMetrics   = "metrics.json"
	manifestName      = "manifest.json"
)

// Capture triggers.
const (
	TriggerSLO    = "slo"
	TriggerManual = "manual"
)

// Attachment is an extra artifact contributed to every bundle by
// another subsystem: Capture is invoked at bundle time and its bytes
// land in the bundle directory under Name.
type Attachment struct {
	Name    string
	Capture func() ([]byte, error)
}

// Artifact describes one file of a bundle.
type Artifact struct {
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
}

// AlertInfo is the firing alert's state at capture time.
type AlertInfo struct {
	Value     *float64   `json:"value,omitempty"`
	Threshold float64    `json:"threshold"`
	Op        string     `json:"op"`
	Window    string     `json:"window"`
	Since     *time.Time `json:"since,omitempty"`
}

// MetricsWindow describes the history extract an incident captured.
type MetricsWindow struct {
	Metric string      `json:"metric"`
	Labels tsdb.Labels `json:"labels,omitempty"`
	Start  time.Time   `json:"start"`
	End    time.Time   `json:"end"`
	Series int         `json:"series"`
	Points int         `json:"points"`
}

// Manifest is the bundle's index, written last so a bundle with a
// manifest is complete by construction.
type Manifest struct {
	Version    int       `json:"version"`
	ID         string    `json:"id"`
	CapturedAt time.Time `json:"captured_at"`
	// Trigger is "slo" or "manual".
	Trigger string `json:"trigger"`
	// Rule names the SLO rule that fired (SLO-triggered captures).
	Rule        string     `json:"rule,omitempty"`
	Description string     `json:"description,omitempty"`
	Alert       *AlertInfo `json:"alert,omitempty"`
	Artifacts   []Artifact `json:"artifacts"`
	// TraceIDs is the union of trace ids seen in captured logs and
	// spans; JoinedTraceIDs are the ones present in both — the requests
	// whose evidence is fully joinable across artifacts.
	TraceIDs       []string       `json:"trace_ids,omitempty"`
	JoinedTraceIDs []string       `json:"joined_trace_ids,omitempty"`
	LogRecords     int            `json:"log_records"`
	SpanTraces     int            `json:"span_traces"`
	Metrics        *MetricsWindow `json:"metrics,omitempty"`
	// Notes records per-artifact capture problems (e.g. a concurrent
	// CPU profile) without failing the whole bundle.
	Notes []string `json:"notes,omitempty"`
}

// Options configures a Recorder. Dir and Registry are required; every
// signal source (History, Logs, Tracer) is optional — absent sources
// simply leave their artifact out of the bundle.
type Options struct {
	// Dir is the bundle root; one subdirectory per incident.
	Dir string
	// Registry receives the caladrius_incident_* self-metrics.
	Registry *telemetry.Registry
	// History is the self-monitoring store the firing rule's series
	// window is extracted from.
	History *tsdb.DB
	// Logs is the structured-log ring to snapshot.
	Logs *telemetry.LogRing
	// Tracer supplies the recent span ring.
	Tracer *telemetry.Tracer
	// Cooldown is the per-rule minimum spacing between SLO-triggered
	// captures. Default: 5 minutes.
	Cooldown time.Duration
	// Lookback extends the captured metrics window before the rule's
	// own window. Default: 5 minutes.
	Lookback time.Duration
	// MaxBundles bounds on-disk retention; the oldest bundles beyond it
	// are deleted after each capture. Default: 16.
	MaxBundles int
	// SpanTraces bounds how many recent traces a bundle captures.
	// Default: 32.
	SpanTraces int
	// CPUProfile is how long the CPU profile samples. Default: 2s.
	CPUProfile time.Duration
	// Attachments are extra artifacts other subsystems contribute to
	// every bundle (the continuous profiler attaches its hot-function
	// diff table as profile-diff.json). A failing Capture becomes a
	// manifest note, never a failed bundle.
	Attachments []Attachment
	// Now stamps captures and anchors the metrics window (fake clocks
	// in tests). Default: time.Now.
	Now func() time.Time
	// Logger receives recorder events. Default: slog.Default().
	Logger *slog.Logger
}

// Recorder captures incident bundles. One background worker drains
// the capture queue so SLO evaluation never blocks on profiling.
type Recorder struct {
	opts Options

	mu          sync.Mutex
	closed      bool
	lastCapture map[string]time.Time // rule name → last enqueued capture
	seq         int
	bundles     []Manifest // oldest first

	queue   chan captureReq
	pending sync.WaitGroup
	done    chan struct{}

	// captureMu serializes actual captures: two concurrent
	// pprof.StartCPUProfile calls would fail.
	captureMu sync.Mutex

	captures   map[string]*telemetry.Counter // by trigger
	suppressed *telemetry.Counter
	dropped    *telemetry.Counter
	failures   *telemetry.Counter
	duration   *telemetry.Histogram
	retained   *telemetry.Gauge
	diskBytes  *telemetry.Gauge
	lastUnix   *telemetry.Gauge
}

type captureReq struct {
	trigger string
	rule    *telemetry.Rule
	alert   *telemetry.Alert
}

// New builds a recorder rooted at opts.Dir, creating the directory and
// indexing any bundles a previous process left there, and starts the
// capture worker.
func New(opts Options) (*Recorder, error) {
	if opts.Dir == "" {
		return nil, errors.New("incident: recorder needs a bundle directory")
	}
	if opts.Registry == nil {
		return nil, errors.New("incident: recorder needs a telemetry registry")
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 5 * time.Minute
	}
	if opts.Lookback <= 0 {
		opts.Lookback = 5 * time.Minute
	}
	if opts.MaxBundles <= 0 {
		opts.MaxBundles = 16
	}
	if opts.SpanTraces <= 0 {
		opts.SpanTraces = 32
	}
	if opts.CPUProfile <= 0 {
		opts.CPUProfile = 2 * time.Second
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("incident: %w", err)
	}
	reg := opts.Registry
	reg.SetHelp("caladrius_incident_captures_total", "Incident bundles captured, by trigger.")
	reg.SetHelp("caladrius_incident_suppressed_total", "SLO-triggered captures suppressed by the per-rule cooldown.")
	reg.SetHelp("caladrius_incident_dropped_total", "Capture requests dropped because the queue was full.")
	reg.SetHelp("caladrius_incident_failures_total", "Captures that failed outright (bundle not written).")
	reg.SetHelp("caladrius_incident_capture_duration_seconds", "Wall-clock cost of writing one bundle (includes the CPU profile window).")
	reg.SetHelp("caladrius_incident_retained_bundles", "Bundles currently retained on disk.")
	reg.SetHelp("caladrius_incident_disk_bytes", "Total bytes of retained bundles.")
	reg.SetHelp("caladrius_incident_last_capture_timestamp_seconds", "Unix time of the most recent capture.")
	r := &Recorder{
		opts:        opts,
		lastCapture: map[string]time.Time{},
		queue:       make(chan captureReq, 8),
		done:        make(chan struct{}),
		captures: map[string]*telemetry.Counter{
			TriggerSLO:    reg.Counter("caladrius_incident_captures_total", telemetry.Labels{"trigger": TriggerSLO}),
			TriggerManual: reg.Counter("caladrius_incident_captures_total", telemetry.Labels{"trigger": TriggerManual}),
		},
		suppressed: reg.Counter("caladrius_incident_suppressed_total", nil),
		dropped:    reg.Counter("caladrius_incident_dropped_total", nil),
		failures:   reg.Counter("caladrius_incident_failures_total", nil),
		duration:   reg.Histogram("caladrius_incident_capture_duration_seconds", telemetry.DefLatencyBuckets, nil),
		retained:   reg.Gauge("caladrius_incident_retained_bundles", nil),
		diskBytes:  reg.Gauge("caladrius_incident_disk_bytes", nil),
		lastUnix:   reg.Gauge("caladrius_incident_last_capture_timestamp_seconds", nil),
	}
	if err := r.loadExisting(); err != nil {
		return nil, err
	}
	r.updateRetentionMetrics()
	go r.worker()
	return r, nil
}

// loadExisting indexes manifests left by previous processes so
// retention and listing span restarts.
func (r *Recorder) loadExisting() error {
	entries, err := os.ReadDir(r.opts.Dir)
	if err != nil {
		return fmt.Errorf("incident: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(r.opts.Dir, e.Name(), manifestName))
		if err != nil {
			continue // incomplete bundle (no manifest): ignore, retention will not count it
		}
		var m Manifest
		if err := json.Unmarshal(data, &m); err != nil || m.ID != e.Name() {
			continue
		}
		r.bundles = append(r.bundles, m)
	}
	sort.Slice(r.bundles, func(i, j int) bool {
		if !r.bundles[i].CapturedAt.Equal(r.bundles[j].CapturedAt) {
			return r.bundles[i].CapturedAt.Before(r.bundles[j].CapturedAt)
		}
		return r.bundles[i].ID < r.bundles[j].ID
	})
	return nil
}

// FiringHook returns the callback to register with SLO.OnFiring: it
// applies the per-rule cooldown and enqueues an asynchronous capture.
func (r *Recorder) FiringHook() func(telemetry.Rule, telemetry.Alert) {
	return func(rule telemetry.Rule, alert telemetry.Alert) {
		now := r.opts.Now()
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return
		}
		if last, ok := r.lastCapture[rule.Name]; ok && now.Sub(last) < r.opts.Cooldown {
			r.mu.Unlock()
			r.suppressed.Inc()
			return
		}
		// Stamp at enqueue time so a flap during a slow capture is
		// debounced too.
		r.lastCapture[rule.Name] = now
		r.pending.Add(1)
		ruleCopy, alertCopy := rule, alert
		select {
		case r.queue <- captureReq{trigger: TriggerSLO, rule: &ruleCopy, alert: &alertCopy}:
			r.mu.Unlock()
		default:
			r.pending.Done()
			r.mu.Unlock()
			r.dropped.Inc()
		}
	}
}

func (r *Recorder) worker() {
	for req := range r.queue {
		if _, err := r.capture(req); err != nil {
			r.failures.Inc()
			r.opts.Logger.Error("incident capture failed", "trigger", req.trigger, "err", err)
		}
		r.pending.Done()
	}
	close(r.done)
}

// CaptureNow performs a synchronous capture (the manual endpoint). It
// bypasses the SLO cooldown — an operator asking for evidence should
// get it — but serializes with any in-flight capture.
func (r *Recorder) CaptureNow() (Manifest, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return Manifest{}, errors.New("incident: recorder closed")
	}
	r.mu.Unlock()
	m, err := r.capture(captureReq{trigger: TriggerManual})
	if err != nil {
		r.failures.Inc()
	}
	return m, err
}

// Flush blocks until every queued capture has been written.
func (r *Recorder) Flush() { r.pending.Wait() }

// Close flushes queued captures and stops the worker. The recorder
// rejects new work afterwards.
func (r *Recorder) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	r.pending.Wait()
	close(r.queue)
	<-r.done
}

// List returns the retained bundle manifests, newest first.
func (r *Recorder) List() []Manifest {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Manifest, len(r.bundles))
	for i, m := range r.bundles {
		out[len(out)-1-i] = m
	}
	return out
}

// Get returns one bundle's manifest.
func (r *Recorder) Get(id string) (Manifest, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.bundles {
		if m.ID == id {
			return m, true
		}
	}
	return Manifest{}, false
}

// ArtifactPath resolves an artifact download to its file path,
// refusing names the manifest does not list (so the API can never be
// walked outside a bundle directory).
func (r *Recorder) ArtifactPath(id, name string) (string, bool) {
	m, ok := r.Get(id)
	if !ok {
		return "", false
	}
	for _, a := range m.Artifacts {
		if a.Name == name {
			return filepath.Join(r.opts.Dir, id, name), true
		}
	}
	return "", false
}

// Dir returns the bundle root directory.
func (r *Recorder) Dir() string { return r.opts.Dir }

// --- capture ---------------------------------------------------------------

func (r *Recorder) capture(req captureReq) (Manifest, error) {
	r.captureMu.Lock()
	defer r.captureMu.Unlock()
	began := time.Now()
	now := r.opts.Now()

	r.mu.Lock()
	r.seq++
	seq := r.seq
	r.mu.Unlock()
	slug := TriggerManual
	if req.rule != nil {
		slug = slugify(req.rule.Name)
	}
	id := fmt.Sprintf("%s-%03d-%s", now.UTC().Format("20060102T150405.000"), seq, slug)
	dir := filepath.Join(r.opts.Dir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Manifest{}, fmt.Errorf("incident: %w", err)
	}

	m := Manifest{
		Version:    BundleVersion,
		ID:         id,
		CapturedAt: now,
		Trigger:    req.trigger,
	}
	if req.rule != nil {
		m.Rule = req.rule.Name
		m.Description = req.rule.Description
	}
	if req.alert != nil {
		m.Alert = &AlertInfo{
			Value:     req.alert.Value,
			Threshold: req.alert.Threshold,
			Op:        req.alert.Op,
			Window:    req.alert.Window,
			Since:     req.alert.Since,
		}
	}

	note := func(format string, args ...any) {
		m.Notes = append(m.Notes, fmt.Sprintf(format, args...))
	}
	addArtifact := func(name string) {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			note("%s: %v", name, err)
			return
		}
		m.Artifacts = append(m.Artifacts, Artifact{Name: name, Bytes: fi.Size()})
	}

	// Profiles. The CPU profile samples for the configured window; the
	// four snapshot profiles are instantaneous. Mutex/block profiles
	// are only as good as the runtime rates cmd/caladrius sets via
	// -mutex-profile-fraction / -block-profile-rate.
	if err := r.writeCPUProfile(filepath.Join(dir, ArtifactCPU)); err != nil {
		note("%s: %v", ArtifactCPU, err)
	} else {
		addArtifact(ArtifactCPU)
	}
	for name, profile := range map[string]string{
		ArtifactHeap:      "heap",
		ArtifactGoroutine: "goroutine",
		ArtifactMutex:     "mutex",
		ArtifactBlock:     "block",
	} {
		if err := writeLookupProfile(filepath.Join(dir, name), profile); err != nil {
			note("%s: %v", name, err)
		} else {
			addArtifact(name)
		}
	}

	// Contributed attachments (e.g. the profiler's regression diff).
	for _, att := range r.opts.Attachments {
		if att.Name == "" || att.Capture == nil || strings.ContainsAny(att.Name, "/\\") {
			note("attachment %q: invalid name or nil capture", att.Name)
			continue
		}
		data, err := att.Capture()
		if err != nil {
			note("%s: %v", att.Name, err)
			continue
		}
		if err := os.WriteFile(filepath.Join(dir, att.Name), data, 0o644); err != nil {
			note("%s: %v", att.Name, err)
			continue
		}
		addArtifact(att.Name)
	}

	// Logs + spans, collecting trace ids for the join.
	logTraces := map[string]bool{}
	if r.opts.Logs != nil {
		records := r.opts.Logs.Snapshot()
		m.LogRecords = len(records)
		for _, rec := range records {
			if rec.Trace != "" {
				logTraces[rec.Trace] = true
			}
		}
		if err := writeJSONFile(filepath.Join(dir, ArtifactLogs), records); err != nil {
			note("%s: %v", ArtifactLogs, err)
		} else {
			addArtifact(ArtifactLogs)
		}
	}
	spanTraces := map[string]bool{}
	if r.opts.Tracer != nil {
		traces := r.opts.Tracer.Recent(r.opts.SpanTraces)
		m.SpanTraces = len(traces)
		for _, tj := range traces {
			spanTraces[tj.TraceID] = true
		}
		if err := writeJSONFile(filepath.Join(dir, ArtifactSpans), traces); err != nil {
			note("%s: %v", ArtifactSpans, err)
		} else {
			addArtifact(ArtifactSpans)
		}
	}
	m.TraceIDs = sortedKeys(union(logTraces, spanTraces))
	m.JoinedTraceIDs = sortedKeys(intersect(logTraces, spanTraces))

	// Windowed extract of the firing rule's series: the rule's own
	// evaluation window plus the lookback, so the bundle shows the
	// run-up, not just the breach.
	if r.opts.History != nil && req.rule != nil {
		window := req.rule.Window
		if window <= 0 {
			window = time.Minute
		}
		start := now.Add(-window - r.opts.Lookback)
		series, err := r.opts.History.Query(req.rule.Metric, req.rule.Selector, start, now.Add(time.Second))
		if err != nil && !errors.Is(err, tsdb.ErrNoData) {
			note("%s: %v", ArtifactMetrics, err)
		} else {
			points := 0
			for _, s := range series {
				points += len(s.Points)
			}
			m.Metrics = &MetricsWindow{
				Metric: req.rule.Metric,
				Labels: req.rule.Selector,
				Start:  start,
				End:    now,
				Series: len(series),
				Points: points,
			}
			if err := writeJSONFile(filepath.Join(dir, ArtifactMetrics), series); err != nil {
				note("%s: %v", ArtifactMetrics, err)
			} else {
				addArtifact(ArtifactMetrics)
			}
		}
	}

	// The manifest is written last: readers treat its presence as "the
	// bundle is complete".
	if err := writeJSONFile(filepath.Join(dir, manifestName), m); err != nil {
		return Manifest{}, fmt.Errorf("incident: manifest: %w", err)
	}

	r.mu.Lock()
	r.bundles = append(r.bundles, m)
	evicted := r.pruneLocked()
	r.mu.Unlock()
	for _, old := range evicted {
		if err := os.RemoveAll(filepath.Join(r.opts.Dir, old.ID)); err != nil {
			r.opts.Logger.Warn("incident retention", "bundle", old.ID, "err", err)
		}
	}
	r.updateRetentionMetrics()
	r.captures[req.trigger].Inc()
	r.duration.Observe(time.Since(began).Seconds())
	r.lastUnix.Set(float64(now.Unix()))
	r.opts.Logger.Info("incident bundle captured",
		"id", id, "trigger", req.trigger, "rule", m.Rule,
		"artifacts", len(m.Artifacts), "joined_traces", len(m.JoinedTraceIDs))
	return m, nil
}

// pruneLocked trims the index to MaxBundles and returns the evicted
// manifests; the caller deletes their directories outside the lock.
func (r *Recorder) pruneLocked() []Manifest {
	if len(r.bundles) <= r.opts.MaxBundles {
		return nil
	}
	n := len(r.bundles) - r.opts.MaxBundles
	evicted := append([]Manifest(nil), r.bundles[:n]...)
	r.bundles = append(r.bundles[:0], r.bundles[n:]...)
	return evicted
}

func (r *Recorder) updateRetentionMetrics() {
	r.mu.Lock()
	n := len(r.bundles)
	var bytes int64
	for _, m := range r.bundles {
		for _, a := range m.Artifacts {
			bytes += a.Bytes
		}
	}
	r.mu.Unlock()
	r.retained.Set(float64(n))
	r.diskBytes.Set(float64(bytes))
}

// writeCPUProfile and writeLookupProfile delegate to the shared
// capture helpers in internal/profiler, so bundles and the continuous
// profiler's periodic windows use the identical capture path (and the
// same process-wide CPU-profile lock).
func (r *Recorder) writeCPUProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := profiler.CaptureCPUProfile(f, r.opts.CPUProfile); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

func writeLookupProfile(path, profile string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := profiler.CaptureProfile(f, profile); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func slugify(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-':
			b.WriteRune(c)
		case c >= 'A' && c <= 'Z':
			b.WriteRune(c - 'A' + 'a')
		default:
			b.WriteByte('-')
		}
	}
	out := b.String()
	if out == "" {
		out = "rule"
	}
	if len(out) > 48 {
		out = out[:48]
	}
	return out
}

func union(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func intersect(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
