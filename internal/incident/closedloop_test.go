package incident_test

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"caladrius/internal/api"
	"caladrius/internal/audit"
	"caladrius/internal/chaos"
	"caladrius/internal/config"
	"caladrius/internal/heron"
	"caladrius/internal/incident"
	"caladrius/internal/metrics"
	"caladrius/internal/telemetry"
	"caladrius/internal/topology"
	"caladrius/internal/tracker"
	"caladrius/internal/tsdb"
)

// The incident closed loop, end to end over HTTP: a chaos slow fault
// degrades the live topology away from its healthy calibration, the
// audited predictions drift past the SLO budget, the drift rule fires,
// and the armed flight recorder captures exactly one bundle — carrying
// all five profile types, the access-log and span evidence of the
// requests that drove it (joined on middleware trace ids), and the
// firing rule's metric window.

// simClock is a mutex-guarded simulated clock shared by every
// component and the recorder's capture worker.
type simClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *simClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *simClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestClosedLoopIncidentCapture(t *testing.T) {
	const (
		rate      = 20e6
		rollingN  = 8
		driftMAPE = 0.08
	)

	sim, err := heron.NewWordCount(heron.WordCountOptions{
		SplitterP:     3,
		CounterP:      4,
		RatePerMinute: rate,
	})
	if err != nil {
		t.Fatal(err)
	}
	topo, err := heron.WordCountTopology(8, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	pack, err := topology.RoundRobinPack(topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Slow ×0.5 on every splitter instance for minutes [36, 50) — the
	// same fault the chaos closed loop uses to force model drift.
	inj, err := chaos.NewInjector(&chaos.Plan{Faults: []chaos.Fault{{
		Kind:      chaos.FaultSlow,
		At:        chaos.Duration(36 * time.Minute),
		Duration:  chaos.Duration(14 * time.Minute),
		Component: "splitter",
		Instance:  chaos.AllInstances,
		Factor:    0.5,
	}}}, topo, pack)
	if err != nil {
		t.Fatal(err)
	}
	sim.WithFaultInjector(inj)
	if err := sim.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	clock := &simClock{t: sim.Start().Add(30 * time.Minute)}

	tr := tracker.New(clock.Now)
	if err := tr.Register(topo, pack); err != nil {
		t.Fatal(err)
	}
	prov, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	// The full daemon wiring in miniature: registry, log ring, tracer,
	// history store, audit ledger, drift SLO, recorder, API service.
	reg := telemetry.NewRegistry()
	logRing := telemetry.NewLogRing(256)
	logger := slog.New(logRing.Handler(slog.LevelInfo))
	tracer := telemetry.NewTracer(64, nil)
	history := tsdb.New(24 * time.Hour)
	led, err := audit.NewLedger(audit.Options{
		Provider:      prov,
		History:       history,
		Registry:      reg,
		Now:           clock.Now,
		RollingWindow: rollingN,
		ObserveWindow: 5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	slo, err := telemetry.NewSLO(history, reg, clock.Now,
		telemetry.ModelAccuracyRules(driftMAPE, 24*time.Hour, 15*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := incident.New(incident.Options{
		Dir:        t.TempDir(),
		Registry:   reg,
		History:    history,
		Logs:       logRing,
		Tracer:     tracer,
		Cooldown:   10 * time.Minute,
		CPUProfile: 30 * time.Millisecond,
		Now:        clock.Now,
		Logger:     slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError})),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	slo.OnFiring(rec.FiringHook())

	cfg := config.Default()
	cfg.CalibrationLookback = 30 * time.Minute
	svc, err := api.NewService(cfg, tr, prov, api.Options{
		Logger:    logger,
		Now:       clock.Now,
		Telemetry: reg,
		Tracer:    tracer,
		History:   history,
		SLO:       slo,
		Audit:     led,
		Incidents: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	post := func(path string) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: %s: %s", path, resp.Status, body)
		}
	}
	// predictN advances the simulation minute by minute, requesting a
	// graded performance prediction over HTTP each step — every request
	// leaves an access-log record in the ring and a span in the tracer,
	// sharing its middleware trace id.
	predictN := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := sim.Run(time.Minute); err != nil {
				t.Fatal(err)
			}
			clock.Advance(time.Minute)
			post("/api/v1/model/topology/word-count/performance?sync=true")
		}
	}
	evaluate := func(phase string, want telemetry.AlertState) {
		t.Helper()
		for _, a := range slo.Evaluate() {
			if a.Rule == "model-accuracy-drift" {
				if a.State != want {
					t.Fatalf("%s: drift state = %s, want %s", phase, a.State, want)
				}
				return
			}
		}
		t.Fatalf("%s: drift rule not evaluated", phase)
	}

	post("/api/v1/model/topology/word-count/calibrate?sync=true")

	// Phase 1 — healthy: predictions track reality, no capture.
	predictN(6)
	led.ResolveOnce(clock.Now())
	clock.Advance(time.Second) // history ranges are end-exclusive
	evaluate("phase 1", telemetry.StateOK)
	rec.Flush()
	if n := len(rec.List()); n != 0 {
		t.Fatalf("phase 1 captured %d bundles", n)
	}

	// Phase 2 — the slow fault bites at minute 36: the stale model's
	// predictions drift past the budget and the rule fires.
	if err := sim.Run(6 * time.Minute); err != nil {
		t.Fatal(err)
	}
	clock.Advance(6*time.Minute - time.Second)
	predictN(rollingN)
	led.ResolveOnce(clock.Now())
	clock.Advance(time.Second)
	evaluate("phase 2", telemetry.StateFiring)
	rec.Flush()

	list := rec.List()
	if len(list) != 1 {
		t.Fatalf("bundles after drift fired = %d, want exactly 1", len(list))
	}
	m := list[0]
	if m.Trigger != incident.TriggerSLO || m.Rule != "model-accuracy-drift" {
		t.Fatalf("manifest = %+v", m)
	}

	// Still firing on the next evaluation — no transition, no second
	// bundle; and a manual re-fire inside the cooldown is suppressed.
	evaluate("phase 2 again", telemetry.StateFiring)
	rec.FiringHook()(telemetry.ModelAccuracyRules(driftMAPE, 24*time.Hour, 15*time.Minute)[0],
		telemetry.Alert{Rule: "model-accuracy-drift"})
	rec.Flush()
	if n := len(rec.List()); n != 1 {
		t.Fatalf("cooldown not respected: %d bundles", n)
	}
	if got := reg.Counter("caladrius_incident_suppressed_total", nil).Value(); got != 1 {
		t.Fatalf("suppressed = %g, want 1", got)
	}

	// The bundle carries all five profile types plus logs, spans and
	// the firing rule's metric window.
	artifacts := map[string]bool{}
	for _, a := range m.Artifacts {
		artifacts[a.Name] = true
	}
	for _, name := range []string{
		incident.ArtifactCPU, incident.ArtifactHeap, incident.ArtifactGoroutine,
		incident.ArtifactMutex, incident.ArtifactBlock,
		incident.ArtifactLogs, incident.ArtifactSpans, incident.ArtifactMetrics,
	} {
		if !artifacts[name] {
			t.Errorf("bundle missing %s (notes: %v)", name, m.Notes)
		}
	}
	if m.LogRecords == 0 || m.SpanTraces == 0 {
		t.Fatalf("log records = %d, span traces = %d", m.LogRecords, m.SpanTraces)
	}
	if len(m.JoinedTraceIDs) == 0 {
		t.Fatalf("no joined trace ids: logs and spans do not share a request id (trace ids %v)", m.TraceIDs)
	}
	if m.Metrics == nil || m.Metrics.Metric != "caladrius_model_mape" || m.Metrics.Points == 0 {
		t.Fatalf("metrics window = %+v", m.Metrics)
	}

	// The joined ids really do appear in both captured artifacts.
	var logs []telemetry.LogRecord
	readArtifact(t, srv.URL, m.ID, incident.ArtifactLogs, &logs)
	var spans []telemetry.TraceJSON
	readArtifact(t, srv.URL, m.ID, incident.ArtifactSpans, &spans)
	joined := m.JoinedTraceIDs[0]
	foundLog, foundSpan := false, false
	for _, lr := range logs {
		if lr.Trace == joined {
			foundLog = true
		}
	}
	for _, tj := range spans {
		if tj.TraceID == joined {
			foundSpan = true
		}
	}
	if !foundLog || !foundSpan {
		t.Fatalf("joined id %q missing from artifacts (log %v, span %v)", joined, foundLog, foundSpan)
	}

	// And the API surface serves the bundle.
	resp, err := http.Get(srv.URL + "/api/v1/incidents")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Count int `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if listing.Count != 1 {
		t.Fatalf("GET /api/v1/incidents count = %d", listing.Count)
	}
}

// readArtifact downloads one artifact through the API and decodes it.
func readArtifact(t *testing.T, base, id, name string, v any) {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/incidents/" + id + "/artifacts/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET artifact %s: %s", name, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s: %v", name, err)
	}
}
