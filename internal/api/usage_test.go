package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strings"
	"testing"
	"time"

	"caladrius/internal/telemetry"
	"caladrius/internal/tsdb"
	"caladrius/internal/usage"
)

// requestAs issues a request with an explicit X-Caladrius-Tenant header.
func requestAs(t *testing.T, tenant, method, rawURL string, body any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, rawURL, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func findUsage(top []usage.PrincipalUsage, tenant, topology string) *usage.PrincipalUsage {
	for i := range top {
		if top[i].Tenant == tenant && top[i].Topology == topology {
			return &top[i]
		}
	}
	return nil
}

// TestUsageEndpointDisabled: a service built without an accountant
// answers 404 on /api/v1/usage (the calctl degrade contract), and the
// instrumented handler keeps serving without attribution.
func TestUsageEndpointDisabled(t *testing.T) {
	_, srv, _ := testEnv(t)
	resp := requestAs(t, "team-a", "GET", srv.URL+"/api/v1/usage", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("usage status = %d, want 404", resp.StatusCode)
	}
	r2 := requestAs(t, "team-a", "GET", srv.URL+"/api/v1/health", nil)
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Errorf("health with tenant header = %d", r2.StatusCode)
	}
}

// TestUsageEndToEndTwoTenants is the acceptance flow: two tenants drive
// real predict/plan traffic through the instrumented handler, usage is
// read back ranked by CPU and by allocations, the caladrius_tenant_*
// series flow through the scraper into the self-monitoring TSDB and
// back out via query_range, and audit records carry the tenant and are
// filterable by it.
func TestUsageEndToEndTwoTenants(t *testing.T) {
	reg := telemetry.NewRegistry()
	db := tsdb.New(time.Hour)
	scraper := telemetry.NewScraper(reg, db, telemetry.ScrapeOptions{})
	acct := usage.New(usage.Options{Capacity: 32, Window: 15 * time.Minute, Registry: reg})
	env := auditEnv(t, Options{Telemetry: reg, History: db, Usage: acct})
	srv := env.srv

	// team-a: two predict runs and a few cheap requests.
	for i := 0; i < 2; i++ {
		resp := requestAs(t, "team-a", "POST",
			srv.URL+"/api/v1/model/topology/word-count/performance?sync=true",
			PerformanceRequest{SourceRateTPM: 20e6})
		decode[PerformanceResponse](t, resp, http.StatusOK)
	}
	for i := 0; i < 3; i++ {
		r := requestAs(t, "team-a", "GET", srv.URL+"/api/v1/health", nil)
		r.Body.Close()
	}
	// team-b: one plan run.
	resp := requestAs(t, "team-b", "POST",
		srv.URL+"/api/v1/model/topology/word-count/suggest?sync=true",
		SuggestRequest{SourceRateTPM: 30e6})
	decode[SuggestResponse](t, resp, http.StatusOK)

	ur := getDecode[UsageResponse](t, srv.URL+"/api/v1/usage?by=cpu&n=10", http.StatusOK)
	if ur.By != "cpu" || ur.Capacity != 32 {
		t.Errorf("echoed query = %+v", ur)
	}
	a := findUsage(ur.Top, "team-a", "word-count")
	b := findUsage(ur.Top, "team-b", "word-count")
	if a == nil || b == nil {
		t.Fatalf("missing principals in %+v", ur.Top)
	}
	// team-a's first predict also calibrates (cache miss), and that
	// metered run is charged to the caller who paid for it: 2 + 1.
	if a.Window.Runs != 3 || b.Window.Runs != 1 {
		t.Errorf("runs a=%d b=%d, want 3/1", a.Window.Runs, b.Window.Runs)
	}
	if a.Window.Requests != 2 || b.Window.Requests != 1 {
		t.Errorf("model-route requests a=%d b=%d, want 2/1", a.Window.Requests, b.Window.Requests)
	}
	for _, p := range []*usage.PrincipalUsage{a, b} {
		if p.Window.WallNanos == 0 {
			t.Errorf("%s: wall=0, want > 0", p.Tenant)
		}
		if runtime.GOOS == "linux" && p.Window.CPUNanos == 0 {
			t.Errorf("%s: cpu time not measured on linux", p.Tenant)
		}
	}
	// Allocation deltas come from runtime/metrics, whose per-P counters
	// are coarse; only the heavyweight calibration run is guaranteed to
	// move them.
	if a.Window.AllocBytes == 0 {
		t.Error("team-a: alloc bytes = 0 after calibration, want > 0")
	}
	// Health hits land on the no-topology principal.
	if h := findUsage(ur.Top, "team-a", NoTopology); h == nil || h.Window.Requests != 3 {
		t.Errorf("team-a health principal = %+v, want 3 requests", h)
	}

	// Ranked by allocations: live principals are sorted descending.
	ua := getDecode[UsageResponse](t, srv.URL+"/api/v1/usage?by=allocs&n=10", http.StatusOK)
	var prev uint64 = ^uint64(0)
	for _, p := range ua.Top {
		if p.Rollup {
			continue
		}
		if p.Window.AllocBytes > prev {
			t.Errorf("allocs ranking not descending: %+v", ua.Top)
		}
		prev = p.Window.AllocBytes
	}

	// The per-tenant series reach the self-monitoring store.
	scraper.ScrapeOnce(env.asOf)
	v := url.Values{
		"metric": {usage.MetricRequests},
		"start":  {env.asOf.Add(-time.Minute).Format(time.RFC3339)},
		"end":    {env.asOf.Add(time.Minute).Format(time.RFC3339)},
		"step":   {"10s"},
		"agg":    {"max"},
		"tenant": {"team-a"},
	}
	qr := getDecode[QueryRangeResponse](t, srv.URL+"/api/v1/query_range?"+v.Encode(), http.StatusOK)
	if len(qr.Points) == 0 {
		t.Fatal("no caladrius_tenant_requests_total points for team-a")
	}
	if last := qr.Points[len(qr.Points)-1].V; last < 5 {
		t.Errorf("team-a scraped requests = %g, want ≥ 5", last)
	}

	// Audit records carry the tenant and the measured run cost, and the
	// ledger filters by tenant.
	al := getDecode[AuditListResponse](t, srv.URL+"/api/v1/audit?tenant=team-a", http.StatusOK)
	if len(al.Records) != 2 {
		t.Fatalf("team-a audit records = %d, want 2", len(al.Records))
	}
	for _, rec := range al.Records {
		if rec.Tenant != "team-a" {
			t.Errorf("filtered record tenant = %q", rec.Tenant)
		}
		if rec.Cost == nil || rec.Cost.WallNanos <= 0 {
			t.Errorf("record %d cost = %+v, want measured wall time", rec.ID, rec.Cost)
		}
	}
	// Unknown audit query parameters are rejected, not ignored.
	rbad, err := http.Get(srv.URL + "/api/v1/audit?tennant=team-a")
	if err != nil {
		t.Fatal(err)
	}
	rbad.Body.Close()
	if rbad.StatusCode != http.StatusBadRequest {
		t.Errorf("misspelled audit param status = %d, want 400", rbad.StatusCode)
	}
}

// TestUsageEndpointValidation covers the strict query-parameter
// contract of /api/v1/usage.
func TestUsageEndpointValidation(t *testing.T) {
	acct := usage.New(usage.Options{})
	_, srv, _ := testEnvWith(t, Options{Usage: acct})
	bad := []string{
		"?by=bogus",
		"?n=0",
		"?n=-3",
		"?n=ten",
		"?order=cpu", // unknown parameter
	}
	for _, q := range bad {
		resp, err := http.Get(srv.URL + "/api/v1/usage" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /api/v1/usage%s status = %d, want 400", q, resp.StatusCode)
		}
	}
	resp, err := http.Post(srv.URL+"/api/v1/usage", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST usage status = %d, want 405", resp.StatusCode)
	}
}

// TestUsageTenantSanitization: hostile or malformed tenant headers are
// coerced to the anonymous principal rather than minting series.
func TestUsageTenantSanitization(t *testing.T) {
	acct := usage.New(usage.Options{})
	_, srv, _ := testEnvWith(t, Options{Usage: acct})
	hostile := []string{
		"",
		"has spaces",
		"semi;colon",
		strings.Repeat("x", 65),
		"quote\"quote",
	}
	for _, h := range hostile {
		r := requestAs(t, h, "GET", srv.URL+"/api/v1/health", nil)
		r.Body.Close()
	}
	ur := getDecode[UsageResponse](t, srv.URL+"/api/v1/usage", http.StatusOK)
	anon := findUsage(ur.Top, AnonymousTenant, NoTopology)
	if anon == nil || anon.Window.Requests != uint64(len(hostile)) {
		t.Fatalf("anonymous principal = %+v, want %d requests", anon, len(hostile))
	}
	for _, p := range ur.Top {
		if p.Tenant != AnonymousTenant && !p.Rollup {
			t.Errorf("hostile header minted principal %+v", p.Principal)
		}
	}
}

// TestUsageHostileHighCardinality is the cardinality-bound acceptance
// check: a churn of 10k distinct tenant headers leaves at most K live
// principals, every request is conserved (live + other), and the
// eviction counter accounts for the overflow.
func TestUsageHostileHighCardinality(t *testing.T) {
	const churn = 10000
	acct := usage.New(usage.Options{Capacity: 16})
	_, srv, _ := testEnvWith(t, Options{Usage: acct})
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
	for i := 0; i < churn; i++ {
		req, err := http.NewRequest("GET", srv.URL+"/api/v1/health", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(TenantHeader, fmt.Sprintf("tenant-%05d", i))
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if live := acct.Len(); live > 16 {
		t.Errorf("live principals = %d, want ≤ 16", live)
	}
	ur := getDecode[UsageResponse](t, srv.URL+"/api/v1/usage?n=100", http.StatusOK)
	var total uint64
	var sawRollup bool
	for _, p := range ur.Top {
		// Every finished request so far is health-route churn (the usage
		// read itself is still in flight), so a plain sum conserves.
		total += p.Totals.Requests
		sawRollup = sawRollup || p.Rollup
	}
	if total != churn {
		t.Errorf("conserved requests = %d, want %d", total, churn)
	}
	if !sawRollup {
		t.Error("rollup bucket missing after churn")
	}
	if ev := acct.Evictions(); ev < churn-16-1 {
		t.Errorf("evictions = %d, want ≥ %d", ev, churn-16-1)
	}
}
