package api

import (
	"fmt"
	"sync"
	"time"
)

// JobStatus is the lifecycle state of an asynchronous modelling job.
type JobStatus string

// Job states.
const (
	JobPending JobStatus = "pending"
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	JobFailed  JobStatus = "failed"
)

// Job is one asynchronous modelling request. The paper's API tier is
// asynchronous because model evaluations can take seconds; clients
// poll the job endpoint while the server pipelines calculations
// concurrently.
type Job struct {
	ID        string    `json:"id"`
	Status    JobStatus `json:"status"`
	CreatedAt time.Time `json:"created_at"`
	// Result is the model output once Status == done.
	Result any `json:"result,omitempty"`
	// Error is the failure message once Status == failed.
	Error string `json:"error,omitempty"`
}

type jobStore struct {
	mu   sync.Mutex
	seq  int
	jobs map[string]*Job
	now  func() time.Time
}

func newJobStore(now func() time.Time) *jobStore {
	if now == nil {
		now = time.Now
	}
	return &jobStore{jobs: map[string]*Job{}, now: now}
}

// create registers a new pending job and returns its snapshot.
func (s *jobStore) create() Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &Job{ID: fmt.Sprintf("job-%d", s.seq), Status: JobPending, CreatedAt: s.now()}
	s.jobs[j.ID] = j
	return *j
}

// start marks a job running — the scheduler path's transition when the
// run is accepted into the queue.
func (s *jobStore) start(id string) {
	s.setStatus(id, JobRunning, nil, "")
}

// complete records a job's outcome — the scheduler path's completion
// callback.
func (s *jobStore) complete(id string, result any, err error) {
	if err != nil {
		s.setStatus(id, JobFailed, nil, err.Error())
		return
	}
	s.setStatus(id, JobDone, result, "")
}

// remove deletes a job that never ran (admission-shed before start).
func (s *jobStore) remove(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
}

// run executes fn in its own goroutine, tracking status transitions.
func (s *jobStore) run(id string, fn func() (any, error)) {
	s.setStatus(id, JobRunning, nil, "")
	go func() {
		result, err := fn()
		if err != nil {
			s.setStatus(id, JobFailed, nil, err.Error())
			return
		}
		s.setStatus(id, JobDone, result, "")
	}()
}

func (s *jobStore) setStatus(id string, st JobStatus, result any, errMsg string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return
	}
	j.Status = st
	j.Result = result
	j.Error = errMsg
}

// get returns a snapshot of the job.
func (s *jobStore) get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}
