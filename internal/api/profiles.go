package api

import (
	"net/http"
	"strconv"

	"caladrius/internal/profiler"
)

// The continuous-profiler surface: status, hot-function tables,
// baseline regression diffs, and merged flame stacks over the recent
// epoch windows. Like the other opt-in surfaces it answers 404 when
// the daemon runs with the profiler disabled (-profile-interval 0) —
// calctl uses that to print its "profiler disabled" notice.

// ProfileTopResponse is the payload of GET /api/v1/profiles/top.
type ProfileTopResponse struct {
	Kind      profiler.Kind       `json:"kind"`
	Unit      string              `json:"unit,omitempty"`
	Total     int64               `json:"total"`
	Samples   int64               `json:"samples"`
	Functions []profiler.FuncStat `json:"functions"`
}

// ProfileFlameResponse is the payload of GET /api/v1/profiles/flame.
type ProfileFlameResponse struct {
	Kind   profiler.Kind        `json:"kind"`
	Unit   string               `json:"unit,omitempty"`
	Total  int64                `json:"total"`
	Stacks []profiler.StackStat `json:"stacks"`
}

// ProfileDiffResponse is the payload of GET /api/v1/profiles/diff.
// Baseline is null (and Diff empty) until the profiler's first epoch
// window completes.
type ProfileDiffResponse struct {
	Baseline *profiler.BaselineMeta `json:"baseline"`
	Diff     *profiler.Diff         `json:"diff"`
}

// profileParams parses the shared ?kind=&n= query parameters,
// rejecting unknown parameters like the history endpoints do.
func profileParams(w http.ResponseWriter, r *http.Request) (profiler.Kind, int, bool) {
	q := r.URL.Query()
	for key := range q {
		if key != "kind" && key != "n" {
			httpError(w, http.StatusBadRequest, "unknown parameter "+key)
			return "", 0, false
		}
	}
	kind := q.Get("kind")
	if kind == "" {
		kind = string(profiler.KindCPU)
	}
	if !profiler.ValidKind(kind) {
		httpError(w, http.StatusBadRequest, "kind must be one of cpu|heap|goroutine|mutex")
		return "", 0, false
	}
	n := 0 // 0 = server-side topk default
	if raw := q.Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			httpError(w, http.StatusBadRequest, "n must be a positive integer")
			return "", 0, false
		}
		n = v
	}
	return profiler.Kind(kind), n, true
}

func (s *Service) handleProfiles(w http.ResponseWriter, r *http.Request) {
	if s.profiler == nil {
		httpError(w, http.StatusNotFound, "continuous profiler disabled: start the daemon with -profile-interval > 0")
		return
	}
	switch r.URL.Path {
	case routeProfiles:
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		writeJSON(w, http.StatusOK, s.profiler.Status())
	case routeProfilesTop:
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		kind, n, ok := profileParams(w, r)
		if !ok {
			return
		}
		funcs, total, samples, unit := s.profiler.Top(kind, n)
		writeJSON(w, http.StatusOK, ProfileTopResponse{
			Kind: kind, Unit: unit, Total: total, Samples: samples, Functions: funcs,
		})
	case routeProfilesDiff:
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		kind, n, ok := profileParams(w, r)
		if !ok {
			return
		}
		st := s.profiler.Status()
		writeJSON(w, http.StatusOK, ProfileDiffResponse{
			Baseline: st.Baseline,
			Diff:     s.profiler.DiffKind(kind, n),
		})
	case routeProfilesFlame:
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		kind, n, ok := profileParams(w, r)
		if !ok {
			return
		}
		stacks, total, unit := s.profiler.Flame(kind, n)
		writeJSON(w, http.StatusOK, ProfileFlameResponse{
			Kind: kind, Unit: unit, Total: total, Stacks: stacks,
		})
	case routeProfilesBaseline:
		if r.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		writeJSON(w, http.StatusOK, s.profiler.SetBaseline())
	default:
		httpError(w, http.StatusNotFound, "want /api/v1/profiles[/top|/diff|/flame|/baseline]")
	}
}
