package api

import (
	"context"
	"math"
	"net/http"
	"strconv"
	"strings"

	"caladrius/internal/audit"
	"caladrius/internal/core"
	"caladrius/internal/telemetry"
)

// The prediction audit surface: every model run the service performs
// is recorded into the audit ledger (internal/audit) through the
// core.RunRecorder hook, and exposed read-only here. Like the other
// self-monitoring endpoints, the surface is opt-in — both handlers
// answer 404 when the service was built without a ledger.

// ledgerRecorder adapts the audit ledger to core.RunRecorder, binding
// the request-scoped identity core does not know: topology name, model
// kind, trace id and whether the run was counterfactual.
type ledgerRecorder struct {
	led            *audit.Ledger
	topology       string
	model          string
	traceID        string
	tenant         string
	counterfactual bool
	cachedCal      bool
}

func (r ledgerRecorder) RecordRun(run core.ModelRun) {
	p := run.Prediction
	sat := p.SaturationSource
	if math.IsInf(sat, 1) {
		sat = 0 // unsaturatable; JSON cannot carry +Inf
	}
	cp := p.CriticalPath()
	sink := ""
	if len(cp.Path) > 0 {
		sink = cp.Path[len(cp.Path)-1]
	}
	var cost *core.RunCost
	if run.Cost != (core.RunCost{}) {
		c := run.Cost
		cost = &c
	}
	r.led.Record(audit.Record{
		Topology:          r.topology,
		Model:             r.model,
		TraceID:           r.traceID,
		Tenant:            r.tenant,
		Cost:              cost,
		SourceRateTPM:     run.SourceRate,
		Parallelism:       run.Parallelism,
		Counterfactual:    r.counterfactual,
		Degraded:          run.Degraded,
		CachedCalibration: r.cachedCal,
		Calibration:       run.Calibration,
		Predicted: audit.Predicted{
			SinkTPM:             p.SinkThroughput,
			OutputTPM:           cp.OutputRate,
			SaturationSourceTPM: sat,
			Bottleneck:          p.Bottleneck,
			Risk:                string(p.Risk),
			TotalCPUCores:       p.TotalCPU,
			Sink:                sink,
		},
	})
}

// auditRecorder builds the RunRecorder for one model run, or nil when
// the service has no ledger (PredictRecorded then degrades to Predict).
// cachedCal marks runs whose calibration was served from the cache (or
// another request's in-flight calibration) rather than performed fresh.
func (s *Service) auditRecorder(ctx context.Context, topology, model string, counterfactual, cachedCal bool) core.RunRecorder {
	if s.audit == nil {
		return nil
	}
	return ledgerRecorder{
		led:            s.audit,
		topology:       topology,
		model:          model,
		traceID:        telemetry.SpanFromContext(ctx).TraceID(),
		tenant:         RequestTenant(ctx),
		counterfactual: counterfactual,
		cachedCal:      cachedCal,
	}
}

// AuditListResponse is the payload of GET /api/v1/audit.
type AuditListResponse struct {
	Records []audit.Record `json:"records"`
	Count   int            `json:"count"`
	Stats   []audit.Stats  `json:"stats"`
}

// AuditRecordResponse is the payload of GET /api/v1/audit/{id}: the
// record plus a link to its model-pipeline trace when one was sampled.
type AuditRecordResponse struct {
	audit.Record
	Trace string `json:"trace,omitempty"`
}

func (s *Service) handleAuditList(w http.ResponseWriter, r *http.Request) {
	if s.audit == nil {
		httpError(w, http.StatusNotFound, "audit disabled: service has no prediction ledger")
		return
	}
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	q := r.URL.Query()
	// Unknown parameters are rejected, not silently ignored — a typoed
	// filter (tennant=acme) would otherwise return unfiltered records
	// that look filtered.
	for k := range q {
		switch k {
		case "topology", "model", "tenant", "resolved", "since", "until", "limit":
		default:
			httpError(w, http.StatusBadRequest, "unknown query parameter "+strconv.Quote(k)+
				" (want topology, model, tenant, resolved, since, until, limit)")
			return
		}
	}
	f := audit.Filter{
		Topology: q.Get("topology"),
		Model:    q.Get("model"),
		Tenant:   q.Get("tenant"),
	}
	if v := q.Get("resolved"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "resolved: want true or false")
			return
		}
		f.Resolved = &b
	}
	if v := q.Get("since"); v != "" {
		t, err := parseRangeTime(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "since: "+err.Error())
			return
		}
		f.Since = t
	}
	if v := q.Get("until"); v != "" {
		t, err := parseRangeTime(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "until: "+err.Error())
			return
		}
		f.Until = t
	}
	f.Limit = 50
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "limit: want a positive integer")
			return
		}
		f.Limit = n
	}
	recs := s.audit.List(f)
	if recs == nil {
		recs = []audit.Record{}
	}
	writeJSON(w, http.StatusOK, AuditListResponse{Records: recs, Count: len(recs), Stats: s.audit.Stats()})
}

func (s *Service) handleAuditRecord(w http.ResponseWriter, r *http.Request) {
	if s.audit == nil {
		httpError(w, http.StatusNotFound, "audit disabled: service has no prediction ledger")
		return
	}
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/api/v1/audit/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil || id <= 0 {
		httpError(w, http.StatusBadRequest, "bad audit record id "+strconv.Quote(idStr))
		return
	}
	rec, ok := s.audit.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no audit record "+idStr+" (evicted or never recorded)")
		return
	}
	resp := AuditRecordResponse{Record: rec}
	if rec.TraceID != "" {
		resp.Trace = "/api/v1/jobs/" + rec.TraceID + "/trace"
	}
	writeJSON(w, http.StatusOK, resp)
}
