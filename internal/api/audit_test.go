package api

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"caladrius/internal/audit"
	"caladrius/internal/config"
	"caladrius/internal/heron"
	"caladrius/internal/metrics"
	"caladrius/internal/topology"
	"caladrius/internal/tracker"
	"caladrius/internal/tsdb"
	"caladrius/internal/workload"
)

// auditEnvState is one simulated service life: the ledger, the server
// and the pieces a "restarted" service reuses (provider, tracker,
// config) when a test spans a shutdown.
type auditEnvState struct {
	led      *audit.Ledger
	srv      *httptest.Server
	asOf     time.Time
	provider *metrics.TSDBProvider
	tr       *tracker.Tracker
	cfg      config.Config
}

// auditEnv is testEnv plus a prediction audit ledger wired over the
// same simulated metrics, so records resolve against real actuals.
// extra customises the service options (Audit and Now are filled in).
func auditEnv(t *testing.T, extra Options) *auditEnvState {
	t.Helper()
	sim, err := heron.NewWordCount(heron.WordCountOptions{
		SplitterP: 3, CounterP: 8,
		Schedule: workload.StepRate(20e6/60, 45e6/60, 20*time.Minute),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(40 * time.Minute); err != nil {
		t.Fatal(err)
	}
	asOf := sim.Start().Add(40 * time.Minute)

	top, err := heron.WordCountTopology(8, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := topology.RoundRobinPack(top, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := tracker.New(func() time.Time { return asOf })
	if err := tr.Register(top, plan); err != nil {
		t.Fatal(err)
	}
	provider, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	led, err := audit.NewLedger(audit.Options{
		Provider: provider,
		History:  extra.History,
		Now:      func() time.Time { return asOf },
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	cfg.CalibrationLookback = 40 * time.Minute
	cfg.CalibrationWarmup = 3
	extra.Now = func() time.Time { return asOf }
	extra.Audit = led
	svc, err := NewService(cfg, tr, provider, extra)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return &auditEnvState{led: led, srv: srv, asOf: asOf, provider: provider, tr: tr, cfg: cfg}
}

// TestAuditEndpointsDisabled: a service built without a ledger answers
// 404 on the audit surface, and predictions still work.
func TestAuditEndpointsDisabled(t *testing.T) {
	_, srv, _ := testEnv(t)
	resp := postJSON(t, srv.URL+"/api/v1/model/topology/word-count/performance?sync=true", PerformanceRequest{SourceRateTPM: 20e6})
	decode[PerformanceResponse](t, resp, http.StatusOK)
	for _, path := range []string{"/api/v1/audit", "/api/v1/audit/1"} {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s status = %d, want 404", path, r.StatusCode)
		}
	}
}

// TestAuditEndToEnd drives predict and plan runs through the service,
// reads the ledger back over the API, resolves it, and checks the
// record detail payloads.
func TestAuditEndToEnd(t *testing.T) {
	env := auditEnv(t, Options{})
	led, srv, asOf := env.led, env.srv, env.asOf

	// Run 1: the deployed configuration at the observed rate — graded.
	resp := postJSON(t, srv.URL+"/api/v1/model/topology/word-count/performance?sync=true", PerformanceRequest{})
	decode[PerformanceResponse](t, resp, http.StatusOK)
	// Run 2: an explicit hypothetical rate — counterfactual.
	resp = postJSON(t, srv.URL+"/api/v1/model/topology/word-count/performance?sync=true", PerformanceRequest{SourceRateTPM: 10e6})
	decode[PerformanceResponse](t, resp, http.StatusOK)
	// Run 3: a plan suggestion — always counterfactual.
	resp = postJSON(t, srv.URL+"/api/v1/model/topology/word-count/suggest?sync=true", SuggestRequest{SourceRateTPM: 40e6})
	decode[SuggestResponse](t, resp, http.StatusOK)

	list := getDecode[AuditListResponse](t, srv.URL+"/api/v1/audit", http.StatusOK)
	if list.Count != 3 || len(list.Records) != 3 {
		t.Fatalf("audit list count = %d (%d records), want 3", list.Count, len(list.Records))
	}
	// Newest first: plan, counterfactual predict, graded predict.
	if list.Records[0].Model != "plan" || list.Records[2].Model != "predict" {
		t.Fatalf("record order = %s, %s, %s", list.Records[0].Model, list.Records[1].Model, list.Records[2].Model)
	}
	if list.Records[2].Counterfactual || !list.Records[1].Counterfactual || !list.Records[0].Counterfactual {
		t.Fatalf("counterfactual flags = %v, %v, %v", list.Records[0].Counterfactual, list.Records[1].Counterfactual, list.Records[2].Counterfactual)
	}
	if len(list.Records[0].Parallelism) == 0 {
		t.Error("plan record carries no suggested parallelism")
	}
	for _, rec := range list.Records {
		if len(rec.Calibration) == 0 {
			t.Errorf("record %d carries no calibration snapshot", rec.ID)
		}
		if rec.Predicted.Sink != "counter" {
			t.Errorf("record %d sink = %q, want counter", rec.ID, rec.Predicted.Sink)
		}
		if !rec.CreatedAt.Equal(asOf) {
			t.Errorf("record %d created at %s, want service clock %s", rec.ID, rec.CreatedAt, asOf)
		}
	}

	// Filters narrow the listing.
	plans := getDecode[AuditListResponse](t, srv.URL+"/api/v1/audit?model=plan", http.StatusOK)
	if plans.Count != 1 || plans.Records[0].Model != "plan" {
		t.Fatalf("model=plan list = %+v", plans.Records)
	}
	limited := getDecode[AuditListResponse](t, srv.URL+"/api/v1/audit?limit=2", http.StatusOK)
	if limited.Count != 2 {
		t.Fatalf("limit=2 count = %d", limited.Count)
	}
	none := getDecode[AuditListResponse](t, srv.URL+"/api/v1/audit?topology=nothing", http.StatusOK)
	if none.Count != 0 || none.Records == nil {
		t.Fatalf("empty list = %#v, want empty non-null records", none.Records)
	}

	// Resolve against the simulated actuals and read the detail payloads.
	if n := led.ResolveOnce(asOf); n != 3 {
		t.Fatalf("ResolveOnce = %d, want 3", n)
	}
	graded := getDecode[AuditRecordResponse](t, srv.URL+"/api/v1/audit/1", http.StatusOK)
	if !graded.Resolved || graded.Observed == nil || graded.Errors == nil {
		t.Fatalf("graded record = %+v", graded.Record)
	}
	if graded.Observed.SinkTPM <= 0 {
		t.Errorf("observed sink TPM = %g, want > 0", graded.Observed.SinkTPM)
	}
	if graded.TraceID == "" {
		t.Error("sync run recorded no trace id")
	} else if want := "/api/v1/jobs/" + graded.TraceID + "/trace"; graded.Trace != want {
		t.Errorf("trace link = %q, want %q", graded.Trace, want)
	}
	counterfactual := getDecode[AuditRecordResponse](t, srv.URL+"/api/v1/audit/2", http.StatusOK)
	if !counterfactual.Resolved || counterfactual.Observed == nil || counterfactual.Errors != nil {
		t.Fatalf("counterfactual record = %+v", counterfactual.Record)
	}
	resolved := getDecode[AuditListResponse](t, srv.URL+"/api/v1/audit?resolved=true", http.StatusOK)
	if resolved.Count != 3 {
		t.Fatalf("resolved=true count = %d, want 3", resolved.Count)
	}
	// Only the graded predict run feeds the accuracy stats.
	var predictStats *audit.Stats
	for i := range resolved.Stats {
		if resolved.Stats[i].Model == "predict" {
			predictStats = &resolved.Stats[i]
		}
	}
	if predictStats == nil || predictStats.Audited != 1 || predictStats.MAPE == nil {
		t.Fatalf("predict stats = %+v", resolved.Stats)
	}

	// Validation and error paths.
	for _, q := range []string{"resolved=bogus", "limit=0", "limit=-3", "limit=x", "since=yesterday", "until=NaN"} {
		r, err := http.Get(srv.URL + "/api/v1/audit?" + q)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q status = %d, want 400", q, r.StatusCode)
		}
	}
	for path, want := range map[string]int{
		"/api/v1/audit/abc":  http.StatusBadRequest,
		"/api/v1/audit/0":    http.StatusBadRequest,
		"/api/v1/audit/9999": http.StatusNotFound,
	} {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != want {
			t.Errorf("GET %s status = %d, want %d", path, r.StatusCode, want)
		}
	}
	for _, path := range []string{"/api/v1/audit", "/api/v1/audit/1"} {
		r, err := http.Post(srv.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s status = %d, want 405", path, r.StatusCode)
		}
	}
}

// TestShutdownSnapshotRestoresAuditHistory is the restart flow: a
// service resolves audit records and writes accuracy series into its
// history store, shuts down by snapshotting both to disk, and a fresh
// service built from the snapshots serves the error series over
// /api/v1/query_range and the resolved records over /api/v1/audit.
func TestShutdownSnapshotRestoresAuditHistory(t *testing.T) {
	db := tsdb.New(24 * time.Hour)
	env := auditEnv(t, Options{History: db})

	// One graded run, resolved so caladrius_model_* series exist.
	resp := postJSON(t, env.srv.URL+"/api/v1/model/topology/word-count/performance?sync=true", PerformanceRequest{})
	decode[PerformanceResponse](t, resp, http.StatusOK)
	if n := env.led.ResolveOnce(env.asOf); n != 1 {
		t.Fatalf("ResolveOnce = %d, want 1", n)
	}

	// Graceful shutdown: snapshot history and ledger, as the daemon does.
	dir := t.TempDir()
	histPath, auditPath := dir+"/history.snap", dir+"/audit.snap"
	if err := db.SaveFile(histPath); err != nil {
		t.Fatalf("history SaveFile: %v", err)
	}
	if err := env.led.SaveFile(auditPath); err != nil {
		t.Fatalf("audit SaveFile: %v", err)
	}

	// Second life: everything restored from disk.
	db2, err := tsdb.LoadFile(histPath)
	if err != nil {
		t.Fatalf("history LoadFile: %v", err)
	}
	led2, err := audit.NewLedger(audit.Options{
		Provider: env.provider,
		History:  db2,
		Now:      func() time.Time { return env.asOf },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := led2.LoadFile(auditPath); err != nil {
		t.Fatalf("audit LoadFile: %v", err)
	}
	svc2, err := NewService(env.cfg, env.tr, env.provider, Options{
		Now:     func() time.Time { return env.asOf },
		History: db2,
		Audit:   led2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(svc2.Handler())
	t.Cleanup(srv2.Close)

	// The restored history serves the accuracy series over query_range.
	v := url.Values{
		"metric": {"caladrius_model_mape"},
		"start":  {env.asOf.Add(-time.Hour).Format(time.RFC3339)},
		"end":    {env.asOf.Add(time.Hour).Format(time.RFC3339)},
		"step":   {"1m"},
		"agg":    {"last"},
	}
	qr := getDecode[QueryRangeResponse](t, srv2.URL+"/api/v1/query_range?"+v.Encode(), http.StatusOK)
	if len(qr.Points) == 0 {
		t.Fatal("restored history serves no caladrius_model_mape points")
	}
	if qr.Points[len(qr.Points)-1].V < 0 {
		t.Errorf("restored MAPE = %g, want ≥ 0", qr.Points[len(qr.Points)-1].V)
	}

	// The restored ledger serves the resolved record with its errors.
	list := getDecode[AuditListResponse](t, srv2.URL+"/api/v1/audit?resolved=true", http.StatusOK)
	if list.Count != 1 {
		t.Fatalf("restored audit list count = %d, want 1", list.Count)
	}
	rec := getDecode[AuditRecordResponse](t, srv2.URL+"/api/v1/audit/1", http.StatusOK)
	if !rec.Resolved || rec.Errors == nil || rec.Observed == nil {
		t.Fatalf("restored record = %+v", rec.Record)
	}
	// And the replayed rolling stats survive the restart.
	if len(list.Stats) != 1 || list.Stats[0].Audited != 1 || list.Stats[0].MAPE == nil {
		t.Fatalf("restored stats = %+v", list.Stats)
	}
}
