package api

import (
	"net/http"

	"caladrius/internal/sched"
)

// The scheduler surface: GET /api/v1/sched exposes a point-in-time
// snapshot of the model-run scheduler (queue, workers, coalescing,
// sheds) and the calibration cache (hits, misses, residency). Like the
// other opt-in surfaces it answers 404 when the service runs without a
// scheduler — calctl uses that to print its "scheduler disabled"
// notice instead of an empty panel.

// SchedResponse is the payload of GET /api/v1/sched.
type SchedResponse struct {
	Scheduler sched.Stats         `json:"scheduler"`
	CalCache  sched.CalCacheStats `json:"calcache"`
}

func (s *Service) handleSched(w http.ResponseWriter, r *http.Request) {
	if s.schedr == nil {
		httpError(w, http.StatusNotFound, "scheduler disabled: service runs model work inline")
		return
	}
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, SchedResponse{
		Scheduler: s.schedr.Stats(),
		CalCache:  s.calcache.Stats(),
	})
}
