package api

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"caladrius/internal/telemetry"
)

func TestRoutePattern(t *testing.T) {
	cases := map[string]string{
		"/api/v1/health":                                routeHealth,
		"/api/v1/models/traffic":                        routeModels,
		"/api/v1/model/traffic/word-count":              routeTraffic,
		"/api/v1/model/traffic/word-count/rank":         routeRank,
		"/api/v1/model/traffic/word-count/bogus":        routeOther,
		"/api/v1/model/traffic/":                        routeOther,
		"/api/v1/model/topology/word-count/performance": routePerformance,
		"/api/v1/model/topology/word-count/suggest":     routeSuggest,
		"/api/v1/model/topology/word-count/calibrate":   routeCalibrate,
		"/api/v1/model/topology/word-count/model":       routeModel,
		"/api/v1/model/topology/word-count/graph":       routeGraph,
		"/api/v1/model/topology/word-count/query":       routeQuery,
		"/api/v1/model/topology/word-count/bogus":       routeOther,
		"/api/v1/model/topology/":                       routeOther,
		"/api/v1/jobs/job-1":                            routeJob,
		"/api/v1/jobs/job-1/trace":                      routeJobTrace,
		"/api/v1/jobs/job-1/bogus":                      routeOther,
		"/api/v1/jobs/":                                 routeOther,
		"/api/v1/query_range":                           routeQueryRange,
		"/api/v1/alerts":                                routeAlerts,
		"/api/v1/audit":                                 routeAudit,
		"/api/v1/audit/42":                              routeAuditRecord,
		"/api/v1/audit/42/bogus":                        routeOther,
		"/api/v1/audit/":                                routeOther,
		"/somewhere/else":                               routeOther,
	}
	for path, want := range cases {
		if got := routePattern(path); got != want {
			t.Errorf("routePattern(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestMiddlewareCounts exercises the instrumented handler and checks
// the per-route counters, the latency histogram and the in-flight
// gauge through the registry.
func TestMiddlewareCounts(t *testing.T) {
	svc, srv, _ := testEnv(t)
	reg := svc.Metrics()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/api/v1/health")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/api/v1/jobs/no-such-job")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	health2xx := reg.Counter("caladrius_http_requests_total", telemetry.Labels{"route": routeHealth, "class": "2xx"})
	if got := health2xx.Value(); got != 3 {
		t.Errorf("health 2xx = %g, want 3", got)
	}
	job4xx := reg.Counter("caladrius_http_requests_total", telemetry.Labels{"route": routeJob, "class": "4xx"})
	if got := job4xx.Value(); got != 1 {
		t.Errorf("job 4xx = %g, want 1", got)
	}
	lat := reg.Histogram("caladrius_http_request_duration_seconds", telemetry.DefLatencyBuckets, telemetry.Labels{"route": routeHealth})
	if got := lat.Count(); got != 3 {
		t.Errorf("health latency observations = %d, want 3", got)
	}
	bytes := reg.Counter("caladrius_http_response_bytes_total", telemetry.Labels{"route": routeHealth})
	if got := bytes.Value(); got <= 0 {
		t.Errorf("health response bytes = %g, want > 0", got)
	}
	if got := reg.Gauge("caladrius_http_in_flight_requests", nil).Value(); got != 0 {
		t.Errorf("in-flight after requests drained = %g, want 0", got)
	}
}

// spanNames flattens a span tree into the set of span names.
func spanNames(spans []telemetry.SpanJSON, into map[string]bool) {
	for _, s := range spans {
		into[s.Name] = true
		spanNames(s.Children, into)
	}
}

// TestSyncTracePropagation issues a ?sync=true performance request and
// follows the X-Caladrius-Trace header to the recorded span tree.
func TestSyncTracePropagation(t *testing.T) {
	svc, srv, _ := testEnv(t)
	resp := postJSON(t, srv.URL+"/api/v1/model/topology/word-count/performance?sync=true", PerformanceRequest{
		Parallelism:   map[string]int{"splitter": 4},
		SourceRateTPM: 30e6,
	})
	decode[PerformanceResponse](t, resp, http.StatusOK)
	traceID := resp.Header.Get(TraceHeader)
	if traceID == "" {
		t.Fatal("sync response missing " + TraceHeader + " header")
	}

	tresp, err := http.Get(srv.URL + "/api/v1/jobs/" + traceID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	tj := decode[telemetry.TraceJSON](t, tresp, http.StatusOK)
	if tj.TraceID != traceID {
		t.Errorf("trace id = %q, want %q", tj.TraceID, traceID)
	}
	if len(tj.Spans) != 1 || tj.Spans[0].Name != "performance" {
		t.Fatalf("root spans = %+v, want single \"performance\" root", tj.Spans)
	}
	root := tj.Spans[0]
	if root.InProgress {
		t.Error("sync root span still in progress")
	}
	if root.Attrs["mode"] != "sync" {
		t.Errorf("root mode attr = %q, want sync", root.Attrs["mode"])
	}
	names := map[string]bool{}
	spanNames(tj.Spans, names)
	for _, want := range []string{"calibrate", "fetch-windows", "predict"} {
		if !names[want] {
			t.Errorf("trace missing %q stage (got %v)", want, names)
		}
	}
	// Per-component calibration stages come through the core.StageTimer
	// hook.
	var hasStage bool
	for n := range names {
		if strings.HasPrefix(n, "calibrate:") {
			hasStage = true
		}
	}
	if !hasStage {
		t.Errorf("trace has no calibrate:<component> stage spans (got %v)", names)
	}

	// A second request on the calibrated service marks the model cache
	// hit in the calibrate span.
	resp2 := postJSON(t, srv.URL+"/api/v1/model/topology/word-count/performance?sync=true", PerformanceRequest{
		Parallelism:   map[string]int{"splitter": 4},
		SourceRateTPM: 30e6,
	})
	decode[PerformanceResponse](t, resp2, http.StatusOK)
	tj2, ok := svc.Tracer().Snapshot(resp2.Header.Get(TraceHeader))
	if !ok {
		t.Fatal("second trace not retained")
	}
	var calibrate *telemetry.SpanJSON
	for i := range tj2.Spans[0].Children {
		if tj2.Spans[0].Children[i].Name == "calibrate" {
			calibrate = &tj2.Spans[0].Children[i]
		}
	}
	if calibrate == nil {
		t.Fatal("second trace missing calibrate span")
	}
	if calibrate.Attrs["cache"] != "hit" {
		t.Errorf("second calibrate cache attr = %q, want hit", calibrate.Attrs["cache"])
	}
}

// TestAsyncJobTrace runs an asynchronous suggest job and checks its
// trace is stored under the job id with the pipeline stages.
func TestAsyncJobTrace(t *testing.T) {
	svc, srv, _ := testEnv(t)
	resp := postJSON(t, srv.URL+"/api/v1/model/topology/word-count/suggest", SuggestRequest{SourceRateTPM: 40e6})
	accepted := decode[map[string]any](t, resp, http.StatusAccepted)
	jobID, _ := accepted["job_id"].(string)
	if jobID == "" {
		t.Fatalf("no job id in %v", accepted)
	}
	if got := accepted["trace"]; got != "/api/v1/jobs/"+jobID+"/trace" {
		t.Errorf("trace link = %v", got)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		job, ok := svc.jobs.get(jobID)
		if ok && job.Status != JobRunning && job.Status != JobPending {
			if job.Status != JobDone {
				t.Fatalf("job finished %s: %s", job.Status, job.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}

	tresp, err := http.Get(srv.URL + "/api/v1/jobs/" + jobID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	tj := decode[telemetry.TraceJSON](t, tresp, http.StatusOK)
	if tj.TraceID != jobID {
		t.Errorf("trace id = %q, want job id %q", tj.TraceID, jobID)
	}
	names := map[string]bool{}
	spanNames(tj.Spans, names)
	stages := 0
	for _, want := range []string{"calibrate", "fetch-windows", "plan", "predict"} {
		if names[want] {
			stages++
		}
	}
	if stages < 3 {
		t.Errorf("async trace has %d named pipeline stages, want ≥ 3 (got %v)", stages, names)
	}
	if got := svc.Metrics().Counter("caladrius_jobs_completed_total", telemetry.Labels{"outcome": "done"}).Value(); got < 1 {
		t.Errorf("jobs done counter = %g, want ≥ 1", got)
	}
	if got := svc.Metrics().Gauge("caladrius_jobs_running", nil).Value(); got != 0 {
		t.Errorf("jobs running gauge = %g, want 0", got)
	}
}

// TestMetricsVisiblyIncrement covers the acceptance check: the
// Prometheus endpoint shows non-zero counters after one sync request.
func TestMetricsVisiblyIncrement(t *testing.T) {
	svc, srv, _ := testEnv(t)
	resp := postJSON(t, srv.URL+"/api/v1/model/topology/word-count/performance?sync=true", PerformanceRequest{
		SourceRateTPM: 20e6,
	})
	decode[PerformanceResponse](t, resp, http.StatusOK)

	var buf strings.Builder
	if err := svc.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `caladrius_http_requests_total{class="2xx",route="/api/v1/model/topology/{topology}/performance"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("prometheus output missing %q:\n%s", want, out)
	}
}
