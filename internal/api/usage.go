package api

import (
	"context"
	"net/http"
	"sort"
	"strconv"
	"time"

	"caladrius/internal/core"
	"caladrius/internal/usage"
)

// The usage surface: GET /api/v1/usage ranks the principals the
// accountant tracked over its trailing window. Like the other
// self-monitoring endpoints it is opt-in — 404 when the service was
// built without an accountant — and calctl degrades accordingly.

// usageSortKeys maps the ?by= parameter onto window fields.
var usageSortKeys = map[string]func(usage.Totals) uint64{
	"requests": func(t usage.Totals) uint64 { return t.Requests },
	"errors":   func(t usage.Totals) uint64 { return t.Errors },
	"wall":     func(t usage.Totals) uint64 { return t.WallNanos },
	"cpu":      func(t usage.Totals) uint64 { return t.CPUNanos },
	"allocs":   func(t usage.Totals) uint64 { return t.AllocBytes },
	"ticks":    func(t usage.Totals) uint64 { return t.SimTicks },
	"runs":     func(t usage.Totals) uint64 { return t.Runs },
}

// UsageResponse is the payload of GET /api/v1/usage.
type UsageResponse struct {
	// WindowSeconds is the trailing ranking window the Top list is
	// ordered over (Totals in each entry remain cumulative).
	WindowSeconds float64 `json:"window_seconds"`
	// Capacity is the live-principal cap K; Principals is the current
	// live count; Evictions counts rollups into "other" since boot.
	Capacity   int    `json:"capacity"`
	Principals int    `json:"principals"`
	Evictions  uint64 `json:"evictions"`
	// By is the ranking key applied; Top is the ranked head of the
	// snapshot plus the rollup bucket whenever it exists.
	By  string                 `json:"by"`
	Top []usage.PrincipalUsage `json:"top"`
}

func (s *Service) handleUsage(w http.ResponseWriter, r *http.Request) {
	if s.usage == nil {
		httpError(w, http.StatusNotFound, "usage disabled: service has no usage accountant")
		return
	}
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	q := r.URL.Query()
	for k := range q {
		if k != "by" && k != "n" {
			httpError(w, http.StatusBadRequest, "unknown query parameter "+strconv.Quote(k)+" (want by, n)")
			return
		}
	}
	by := q.Get("by")
	if by == "" {
		by = "requests"
	}
	key, ok := usageSortKeys[by]
	if !ok {
		httpError(w, http.StatusBadRequest, "by: want one of requests, errors, wall, cpu, allocs, ticks, runs")
		return
	}
	n := 10
	if v := q.Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			httpError(w, http.StatusBadRequest, "n: want a positive integer")
			return
		}
		n = parsed
	}

	snap := s.usage.Snapshot()
	// Rank live principals by the window key; the rollup bucket is
	// appended after the cut so "everyone else" is always visible.
	var rollup *usage.PrincipalUsage
	live := make([]usage.PrincipalUsage, 0, len(snap))
	for i := range snap {
		if snap[i].Rollup {
			r := snap[i]
			rollup = &r
			continue
		}
		live = append(live, snap[i])
	}
	sort.Slice(live, func(i, j int) bool {
		ki, kj := key(live[i].Window), key(live[j].Window)
		if ki != kj {
			return ki > kj
		}
		if live[i].Tenant != live[j].Tenant {
			return live[i].Tenant < live[j].Tenant
		}
		return live[i].Topology < live[j].Topology
	})
	if len(live) > n {
		live = live[:n]
	}
	top := make([]usage.PrincipalUsage, len(live), len(live)+1)
	copy(top, live)
	if rollup != nil {
		top = append(top, *rollup)
	}
	writeJSON(w, http.StatusOK, UsageResponse{
		WindowSeconds: s.usage.Window().Seconds(),
		Capacity:      s.usage.Capacity(),
		Principals:    s.usage.Len(),
		Evictions:     s.usage.Evictions(),
		By:            by,
		Top:           top,
	})
}

// chargeRun attributes one model run's measured cost to the request's
// (tenant, topology) principal. No-op without an accountant or for
// unmetered (zero) costs.
func (s *Service) chargeRun(ctx context.Context, topology string, cost core.RunCost) {
	if s.usage == nil || cost == (core.RunCost{}) {
		return
	}
	s.usage.RecordRun(RequestTenant(ctx), topology,
		time.Duration(cost.WallNanos), time.Duration(cost.CPUNanos),
		cost.AllocBytes, cost.SimTicks)
}
