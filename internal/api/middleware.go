package api

import (
	"context"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"caladrius/internal/telemetry"
	"caladrius/internal/usage"
)

// Route patterns the middleware aggregates metrics under. Raw paths
// carry topology names and job ids; aggregating per pattern keeps
// cardinality bounded no matter how many topologies the service
// models.
const (
	routeHealth           = "/api/v1/health"
	routeModels           = "/api/v1/models/traffic"
	routeTraffic          = "/api/v1/model/traffic/{topology}"
	routeRank             = "/api/v1/model/traffic/{topology}/rank"
	routePerformance      = "/api/v1/model/topology/{topology}/performance"
	routeSuggest          = "/api/v1/model/topology/{topology}/suggest"
	routeCalibrate        = "/api/v1/model/topology/{topology}/calibrate"
	routeModel            = "/api/v1/model/topology/{topology}/model"
	routeGraph            = "/api/v1/model/topology/{topology}/graph"
	routeQuery            = "/api/v1/model/topology/{topology}/query"
	routeJob              = "/api/v1/jobs/{id}"
	routeJobTrace         = "/api/v1/jobs/{id}/trace"
	routeQueryRange       = "/api/v1/query_range"
	routeAlerts           = "/api/v1/alerts"
	routeAudit            = "/api/v1/audit"
	routeAuditRecord      = "/api/v1/audit/{id}"
	routeIncidents        = "/api/v1/incidents"
	routeIncidentCapture  = "/api/v1/incidents/capture"
	routeIncident         = "/api/v1/incidents/{id}"
	routeIncidentArtifact = "/api/v1/incidents/{id}/artifacts/{name}"
	routeUsage            = "/api/v1/usage"
	routeSched            = "/api/v1/sched"
	routeProfiles         = "/api/v1/profiles"
	routeProfilesTop      = "/api/v1/profiles/top"
	routeProfilesDiff     = "/api/v1/profiles/diff"
	routeProfilesFlame    = "/api/v1/profiles/flame"
	routeProfilesBaseline = "/api/v1/profiles/baseline"
	routeOther            = "other"
)

var allRoutes = []string{
	routeHealth, routeModels, routeTraffic, routeRank,
	routePerformance, routeSuggest, routeCalibrate, routeModel,
	routeGraph, routeQuery, routeJob, routeJobTrace,
	routeQueryRange, routeAlerts, routeAudit, routeAuditRecord,
	routeIncidents, routeIncidentCapture, routeIncident, routeIncidentArtifact,
	routeUsage, routeSched,
	routeProfiles, routeProfilesTop, routeProfilesDiff,
	routeProfilesFlame, routeProfilesBaseline,
	routeOther,
}

// NoTopology is the topology value usage attribution charges requests
// that do not address a specific topology (health, query_range, …).
const NoTopology = "-"

// routePattern maps a concrete request path to its route pattern
// without allocating.
func routePattern(path string) string {
	pattern, _ := routeInfo(path)
	return pattern
}

// routeInfo maps a concrete request path to its route pattern and the
// topology name it addresses (NoTopology for topology-less routes),
// without allocating. The topology half is what scopes a request's
// usage principal: only routes that carry a {topology} segment can be
// attributed finer than the tenant itself.
func routeInfo(path string) (pattern, topology string) {
	switch path {
	case routeHealth:
		return routeHealth, NoTopology
	case routeModels:
		return routeModels, NoTopology
	case routeQueryRange:
		return routeQueryRange, NoTopology
	case routeAlerts:
		return routeAlerts, NoTopology
	case routeAudit:
		return routeAudit, NoTopology
	case routeIncidents:
		return routeIncidents, NoTopology
	case routeIncidentCapture:
		return routeIncidentCapture, NoTopology
	case routeUsage:
		return routeUsage, NoTopology
	case routeSched:
		return routeSched, NoTopology
	case routeProfiles:
		return routeProfiles, NoTopology
	case routeProfilesTop:
		return routeProfilesTop, NoTopology
	case routeProfilesDiff:
		return routeProfilesDiff, NoTopology
	case routeProfilesFlame:
		return routeProfilesFlame, NoTopology
	case routeProfilesBaseline:
		return routeProfilesBaseline, NoTopology
	}
	if rest, ok := strings.CutPrefix(path, "/api/v1/incidents/"); ok {
		id, sub, hasSub := strings.Cut(rest, "/")
		switch {
		case id == "":
			return routeOther, NoTopology
		case !hasSub:
			return routeIncident, NoTopology
		}
		if name, ok := strings.CutPrefix(sub, "artifacts/"); ok && name != "" && !strings.Contains(name, "/") {
			return routeIncidentArtifact, NoTopology
		}
		return routeOther, NoTopology
	}
	if rest, ok := strings.CutPrefix(path, "/api/v1/audit/"); ok {
		if rest != "" && !strings.Contains(rest, "/") {
			return routeAuditRecord, NoTopology
		}
		return routeOther, NoTopology
	}
	if rest, ok := strings.CutPrefix(path, "/api/v1/model/traffic/"); ok {
		name, action, hasAction := strings.Cut(rest, "/")
		switch {
		case name == "":
			return routeOther, NoTopology
		case !hasAction:
			return routeTraffic, name
		case action == "rank":
			return routeRank, name
		}
		return routeOther, NoTopology
	}
	if rest, ok := strings.CutPrefix(path, "/api/v1/model/topology/"); ok {
		name, action, _ := strings.Cut(rest, "/")
		if name == "" {
			return routeOther, NoTopology
		}
		switch action {
		case "performance":
			return routePerformance, name
		case "suggest":
			return routeSuggest, name
		case "calibrate":
			return routeCalibrate, name
		case "model":
			return routeModel, name
		case "graph":
			return routeGraph, name
		case "query":
			return routeQuery, name
		}
		return routeOther, NoTopology
	}
	if rest, ok := strings.CutPrefix(path, "/api/v1/jobs/"); ok {
		id, sub, hasSub := strings.Cut(rest, "/")
		switch {
		case id == "":
			return routeOther, NoTopology
		case !hasSub:
			return routeJob, NoTopology
		case sub == "trace":
			return routeJobTrace, NoTopology
		}
	}
	return routeOther, NoTopology
}

// --- request trace ids -----------------------------------------------------

// Every request gets a trace id the moment it enters the middleware:
// the sanitized incoming X-Caladrius-Trace header when the client sent
// one, else a generated "req-N". The id is echoed in the response
// header, stamped on the access-log line, attached to the latency
// histogram as an exemplar, and reused by the sync dispatch path as
// the tracer's trace id — so logs, spans and metrics of one request
// all join on a single id.

type reqTraceKey struct{}

var traceSeq atomic.Uint64

// RequestTraceID returns the trace id the middleware assigned to the
// request, or "" when the request did not pass through instrument
// (direct handler tests).
func RequestTraceID(ctx context.Context) string {
	id, _ := ctx.Value(reqTraceKey{}).(string)
	return id
}

// sanitizeTraceID accepts a client-supplied trace id only when it is
// short and printable-token shaped, so log lines and response headers
// cannot be polluted with arbitrary bytes.
func sanitizeTraceID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == ':':
		default:
			return ""
		}
	}
	return id
}

// --- tenants ---------------------------------------------------------------

// TenantHeader names the header clients identify themselves with.
// Requests without it (or with a malformed value) are charged to
// AnonymousTenant — attribution never rejects a request.
const TenantHeader = "X-Caladrius-Tenant"

// AnonymousTenant is the principal unidentified requests bill to.
const AnonymousTenant = "anonymous"

type reqTenantKey struct{}

// RequestTenant returns the sanitized tenant the middleware attributed
// the request to, or AnonymousTenant when the request did not pass
// through instrument (direct handler tests, async job contexts built
// before the tenant was re-injected).
func RequestTenant(ctx context.Context) string {
	if t, _ := ctx.Value(reqTenantKey{}).(string); t != "" {
		return t
	}
	return AnonymousTenant
}

// ContextWithTenant stamps a tenant onto ctx — the hook dispatch uses
// to carry the request's tenant into an async job's fresh context.
func ContextWithTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, reqTenantKey{}, tenant)
}

// sanitizeTenant accepts a client-supplied tenant only when it is
// short and token-shaped (same alphabet as trace ids), so tenants are
// safe as metric label values and log fields. Anything else — empty,
// oversized, binary — bills as anonymous.
func sanitizeTenant(t string) string {
	if t == "" || len(t) > 64 {
		return AnonymousTenant
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == ':':
		default:
			return AnonymousTenant
		}
	}
	return t
}

// statusClasses index requests_total counters: status/100-1.
var statusClasses = [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// routeInstruments holds the pre-registered instruments of one route,
// so the per-request hot path performs only map lookups and atomic
// increments — no registrations, no allocations.
type routeInstruments struct {
	requests [5]*telemetry.Counter
	latency  *telemetry.Histogram
	bytes    *telemetry.Counter
}

type httpInstruments struct {
	inFlight *telemetry.Gauge
	panics   *telemetry.Counter
	routes   map[string]*routeInstruments
}

func newHTTPInstruments(reg *telemetry.Registry) *httpInstruments {
	reg.SetHelp("caladrius_http_requests_total", "Requests served, by route pattern and status class.")
	reg.SetHelp("caladrius_http_request_duration_seconds", "Request latency, by route pattern.")
	reg.SetHelp("caladrius_http_response_bytes_total", "Response body bytes written, by route pattern.")
	reg.SetHelp("caladrius_http_in_flight_requests", "Requests currently being served.")
	reg.SetHelp("caladrius_http_panics_total", "Handler panics recovered by the middleware.")
	h := &httpInstruments{
		inFlight: reg.Gauge("caladrius_http_in_flight_requests", nil),
		panics:   reg.Counter("caladrius_http_panics_total", nil),
		routes:   make(map[string]*routeInstruments, len(allRoutes)),
	}
	for _, route := range allRoutes {
		ri := &routeInstruments{
			latency: reg.Histogram("caladrius_http_request_duration_seconds", telemetry.DefLatencyBuckets, telemetry.Labels{"route": route}),
			bytes:   reg.Counter("caladrius_http_response_bytes_total", telemetry.Labels{"route": route}),
		}
		for i, class := range statusClasses {
			ri.requests[i] = reg.Counter("caladrius_http_requests_total", telemetry.Labels{"route": route, "class": class})
		}
		h.routes[route] = ri
	}
	return h
}

// statusRecorder captures the status code and body size a handler
// writes. wroteHeader distinguishes "handler never responded" (the
// panic-recovery path may still send a 500) from "panicked mid-body"
// (too late — the status is already on the wire).
type statusRecorder struct {
	http.ResponseWriter
	status      int
	bytes       int
	wroteHeader bool
}

func (r *statusRecorder) WriteHeader(status int) {
	if r.wroteHeader {
		return // mirror net/http's superfluous-WriteHeader guard
	}
	r.status = status
	r.wroteHeader = true
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wroteHeader = true
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// instrument wraps next with request telemetry and the structured
// access log: per-route request counters by status class, latency
// histograms, response-byte counters, an in-flight gauge, and one log
// line per request on the service logger. A panicking handler is
// recovered here — the client gets a JSON 500 (when the header is
// still unsent), the stack goes to the logger, and the request still
// lands in every instrument so panic spikes show up in the history.
//
// When acct is non-nil every request is additionally attributed to its
// (tenant, topology) usage principal: tenant from the sanitized
// X-Caladrius-Tenant header, topology from the route. The accountant's
// top-K cap makes this safe against hostile high-cardinality headers.
func instrument(next http.Handler, inst *httpInstruments, logger *slog.Logger, acct *usage.Accountant) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inst.inFlight.Inc()
		trace := sanitizeTraceID(r.Header.Get(TraceHeader))
		if trace == "" {
			trace = "req-" + strconv.FormatUint(traceSeq.Add(1), 10)
		}
		w.Header().Set(TraceHeader, trace)
		tenant := sanitizeTenant(r.Header.Get(TenantHeader))
		_, topo := routeInfo(r.URL.Path)
		if acct != nil {
			acct.Begin(tenant, topo)
		}
		ctx := context.WithValue(r.Context(), reqTraceKey{}, trace)
		r = r.WithContext(ContextWithTenant(ctx, tenant))
		rec := statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if v := recover(); v != nil {
				inst.panics.Inc()
				logger.Error("handler panic",
					"method", r.Method,
					"path", r.URL.Path,
					"panic", v,
					"stack", string(debug.Stack()),
				)
				if !rec.wroteHeader {
					httpError(&rec, http.StatusInternalServerError, "internal server error")
				} else {
					rec.status = http.StatusInternalServerError
				}
			}
			inst.inFlight.Dec()

			elapsed := time.Since(start)
			route := routePattern(r.URL.Path)
			ri := inst.routes[route]
			idx := rec.status/100 - 1
			if idx < 0 || idx >= len(ri.requests) {
				idx = 4
			}
			// Async dispatch overwrites the response header with the job
			// id; reading it back here keeps the logged trace id and the
			// exemplar pointing at the trace that actually exists.
			if hdr := rec.Header().Get(TraceHeader); hdr != "" {
				trace = hdr
			}
			ri.requests[idx].Inc()
			ri.latency.ObserveExemplar(elapsed.Seconds(), trace)
			ri.bytes.Add(float64(rec.bytes))
			if acct != nil {
				acct.Finish(tenant, topo, rec.status, elapsed)
			}
			logger.Info("http request",
				"method", r.Method,
				"route", route,
				"path", r.URL.Path,
				"status", rec.status,
				"bytes", rec.bytes,
				"duration_ms", float64(elapsed)/float64(time.Millisecond),
				"trace", trace,
				"tenant", tenant,
			)
		}()
		next.ServeHTTP(&rec, r)
	})
}
