package api

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"caladrius/internal/config"
	"caladrius/internal/heron"
	"caladrius/internal/metrics"
	"caladrius/internal/topology"
	"caladrius/internal/tracker"
	"caladrius/internal/tsdb"
)

// downProvider is a metrics backend that is entirely unreachable: every
// fetch fails with ErrUnavailable, as the retrying wrapper reports after
// exhausting its attempts.
type downProvider struct{}

func (downProvider) err() error { return fmt.Errorf("%w: scraper down", metrics.ErrUnavailable) }

func (p downProvider) ComponentWindows(_, _ string, _, _ time.Time) ([]metrics.Window, error) {
	return nil, p.err()
}
func (p downProvider) InstanceWindows(_, _ string, _ int, _, _ time.Time) ([]metrics.Window, error) {
	return nil, p.err()
}
func (p downProvider) SourceRate(_ string, _ []string, _, _ time.Time) ([]tsdb.Point, error) {
	return nil, p.err()
}
func (p downProvider) TopologyBackpressureMs(_ string, _, _ time.Time) ([]tsdb.Point, error) {
	return nil, p.err()
}
func (p downProvider) StreamEmitTotals(_, _ string, _, _ time.Time) (map[string]float64, error) {
	return nil, p.err()
}

// TestProviderUnavailableReturns503 pins the resilience contract at the
// API boundary: when the metrics provider is down, model requests that
// need fresh calibration answer 503 with a Retry-After hint rather than
// a generic 500 — the client's cue to back off and retry.
func TestProviderUnavailableReturns503(t *testing.T) {
	top, err := heron.WordCountTopology(8, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := topology.RoundRobinPack(top, 2)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Date(2026, 1, 5, 12, 0, 0, 0, time.UTC)
	tr := tracker.New(func() time.Time { return now })
	if err := tr.Register(top, plan); err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(config.Default(), tr, downProvider{}, Options{Now: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)

	resp := postJSON(t, srv.URL+"/api/v1/model/topology/word-count/calibrate?sync=true", PerformanceRequest{AsOf: now})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != fmt.Sprint(RetryAfterSeconds) {
		t.Errorf("Retry-After = %q, want %d", got, RetryAfterSeconds)
	}
}
