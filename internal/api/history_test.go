package api

import (
	"net/http"
	"net/url"
	"testing"
	"time"

	"caladrius/internal/telemetry"
	"caladrius/internal/tsdb"
)

var histT0 = time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

func getDecode[T any](t *testing.T, rawURL string, wantStatus int) T {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	return decode[T](t, resp, wantStatus)
}

// TestSelfMonitoringEndToEnd is the acceptance flow: a service with the
// scraper's history store and an SLO evaluator wired in, real traffic
// driven through the instrumented handler, deterministic scrapes, then
// history read back through /api/v1/query_range and a deliberately
// tripped rule observed firing through /api/v1/alerts.
func TestSelfMonitoringEndToEnd(t *testing.T) {
	reg := telemetry.NewRegistry()
	db := tsdb.New(time.Hour)
	scraper := telemetry.NewScraper(reg, db, telemetry.ScrapeOptions{})
	sloNow := histT0.Add(20 * time.Second)
	rules := []telemetry.Rule{
		// Any request within the window trips this: max cumulative
		// requests_total ≥ 1 > 0.5.
		{Name: "traffic-seen", Metric: "caladrius_http_requests_total", Agg: tsdb.AggMax, Window: time.Minute, Threshold: 0.5},
		// Any derived p95 sample trips this (p95 ≥ 0 > -1).
		{Name: "latency-p95", Metric: telemetry.QuantileSeries("caladrius_http_request_duration_seconds", 0.95), Agg: tsdb.AggMax, Window: time.Minute, Threshold: -1},
	}
	slo, err := telemetry.NewSLO(db, reg, func() time.Time { return sloNow }, rules)
	if err != nil {
		t.Fatal(err)
	}
	_, srv, _ := testEnvWith(t, Options{Telemetry: reg, History: db, SLO: slo})

	hit := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			resp, err := http.Get(srv.URL + "/api/v1/health")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
	}
	hit(5)
	scraper.ScrapeOnce(histT0)
	hit(5)
	resp := postJSON(t, srv.URL+"/api/v1/model/topology/word-count/performance?sync=true", PerformanceRequest{SourceRateTPM: 20e6})
	decode[PerformanceResponse](t, resp, http.StatusOK)
	scraper.ScrapeOnce(histT0.Add(10 * time.Second))
	hit(3)
	scraper.ScrapeOnce(histT0.Add(20 * time.Second))

	rangeURL := func(metric string, extra url.Values) string {
		v := url.Values{
			"metric": {metric},
			"start":  {histT0.Add(-time.Minute).Format(time.RFC3339)},
			"end":    {histT0.Add(time.Minute).Format(time.RFC3339)},
			"step":   {"10s"},
			"agg":    {"max"},
		}
		for k, vs := range extra {
			v[k] = vs
		}
		return srv.URL + "/api/v1/query_range?" + v.Encode()
	}

	// Cumulative per-route latency observation count, downsampled.
	qr := getDecode[QueryRangeResponse](t, rangeURL("caladrius_http_request_duration_seconds_count", url.Values{"route": {routeHealth}}), http.StatusOK)
	if len(qr.Points) == 0 {
		t.Fatal("query_range returned no latency-count points")
	}
	if last := qr.Points[len(qr.Points)-1].V; last < 13 {
		t.Errorf("final health observation count = %g, want ≥ 13", last)
	}
	if qr.Selector["route"] != routeHealth || qr.Agg != "max" || qr.Step != "10s" {
		t.Errorf("echoed query = %+v", qr)
	}

	// The scraper-derived p95 series exists for the health route.
	p95 := getDecode[QueryRangeResponse](t, rangeURL(telemetry.QuantileSeries("caladrius_http_request_duration_seconds", 0.95), url.Values{"route": {routeHealth}}), http.StatusOK)
	if len(p95.Points) == 0 {
		t.Fatal("query_range returned no derived p95 points")
	}

	// A metric that never existed answers 200 with an empty series, not
	// an error — dashboards poll idle series constantly.
	empty := getDecode[QueryRangeResponse](t, rangeURL("caladrius_never_observed", nil), http.StatusOK)
	if empty.Points == nil || len(empty.Points) != 0 {
		t.Errorf("unknown metric points = %#v, want empty non-null", empty.Points)
	}

	// Both deliberately tripped rules fire.
	alerts := getDecode[AlertsResponse](t, srv.URL+"/api/v1/alerts", http.StatusOK)
	if len(alerts.Alerts) != 2 {
		t.Fatalf("alerts = %+v, want 2", alerts.Alerts)
	}
	for _, a := range alerts.Alerts {
		if a.State != "firing" {
			t.Errorf("rule %s state = %s, want firing", a.Rule, a.State)
		}
		if a.Since == nil || a.Value == nil {
			t.Errorf("rule %s missing since/value: %+v", a.Rule, a)
		}
	}
	// A second evaluation sustains the alert without another transition.
	getDecode[AlertsResponse](t, srv.URL+"/api/v1/alerts", http.StatusOK)
	fired := reg.Counter("caladrius_slo_transitions_total", telemetry.Labels{"rule": "traffic-seen", "to": "firing"})
	if got := fired.Value(); got != 1 {
		t.Errorf("traffic-seen firing transitions = %g, want 1", got)
	}

	// Parameter validation answers 400 without touching the store.
	bad := []string{
		"",                    // missing metric
		"metric=x&start=nope", // unparseable time
		"metric=x&window=-5s", // non-positive window
		"metric=x&step=0s",    // non-positive step
		"metric=x&agg=bogus",  // unknown aggregation
		"metric=x&merge=nonsense",
		"metric=x&start=2026-08-05T13:00:00Z&end=2026-08-05T12:00:00Z", // start after end
	}
	for _, q := range bad {
		resp, err := http.Get(srv.URL + "/api/v1/query_range?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q status = %d, want 400", q, resp.StatusCode)
		}
	}
	resp2, err := http.Post(srv.URL+"/api/v1/query_range?metric=x", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST query_range status = %d, want 405", resp2.StatusCode)
	}
}

// TestSelfMonitoringDisabled verifies both endpoints answer 404 on a
// service built without a history store or SLO evaluator.
func TestSelfMonitoringDisabled(t *testing.T) {
	_, srv, _ := testEnv(t)
	for _, path := range []string{"/api/v1/query_range?metric=x", "/api/v1/alerts"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s status = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestParseRangeTime(t *testing.T) {
	if ts, err := parseRangeTime("2026-08-05T12:00:00Z"); err != nil || !ts.Equal(histT0) {
		t.Errorf("RFC3339 = %v, %v", ts, err)
	}
	if ts, err := parseRangeTime("1786017600"); err != nil || ts.Unix() != 1786017600 {
		t.Errorf("unix seconds = %v, %v", ts, err)
	}
	if ts, err := parseRangeTime("1786017600.5"); err != nil || ts.Nanosecond() != 5e8 {
		t.Errorf("fractional unix seconds = %v, %v", ts, err)
	}
	for _, s := range []string{"", "NaN", "+Inf", "yesterday"} {
		if _, err := parseRangeTime(s); err == nil {
			t.Errorf("parseRangeTime(%q) accepted", s)
		}
	}
}
