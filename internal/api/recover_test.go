package api

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"caladrius/internal/telemetry"
)

// TestPanicRecovery drives panicking handlers through the middleware:
// a panic before any write yields a JSON 500; a panic after the body
// started still counts as a 5xx in the instruments; both increment the
// panic counter, log the stack and leave the in-flight gauge at zero.
func TestPanicRecovery(t *testing.T) {
	reg := telemetry.NewRegistry()
	inst := newHTTPInstruments(reg)
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))

	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/health", func(w http.ResponseWriter, r *http.Request) {
		panic("boom before write")
	})
	mux.HandleFunc("/api/v1/alerts", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"partial":`))
		panic("boom mid-body")
	})
	srv := httptest.NewServer(instrument(mux, inst, logger, nil))
	defer srv.Close()

	// Panic before any write: the client sees a proper JSON 500.
	resp, err := http.Get(srv.URL + "/api/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	body := decode[map[string]any](t, resp, http.StatusInternalServerError)
	if body["error"] != "internal server error" {
		t.Errorf("panic body = %v", body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("panic content-type = %q", ct)
	}

	// Panic after the header went out: too late to change the client's
	// status, but telemetry records the request as a 5xx.
	resp2, err := http.Get(srv.URL + "/api/v1/alerts")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("mid-body panic client status = %d, want 200 (already sent)", resp2.StatusCode)
	}

	if got := reg.Counter("caladrius_http_panics_total", nil).Value(); got != 2 {
		t.Errorf("panics counter = %g, want 2", got)
	}
	for _, route := range []string{routeHealth, routeAlerts} {
		c := reg.Counter("caladrius_http_requests_total", telemetry.Labels{"route": route, "class": "5xx"})
		if got := c.Value(); got != 1 {
			t.Errorf("%s 5xx = %g, want 1", route, got)
		}
	}
	if got := reg.Gauge("caladrius_http_in_flight_requests", nil).Value(); got != 0 {
		t.Errorf("in-flight after panics = %g, want 0", got)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "handler panic") || !strings.Contains(logs, "goroutine") {
		t.Errorf("panic log missing message or stack:\n%s", logs)
	}
}
