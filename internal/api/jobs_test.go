package api

import (
	"errors"
	"testing"
	"time"
)

func TestJobStoreLifecycle(t *testing.T) {
	now := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	s := newJobStore(func() time.Time { return now })
	j := s.create()
	if j.ID != "job-1" || j.Status != JobPending || !j.CreatedAt.Equal(now) {
		t.Fatalf("job = %+v", j)
	}
	done := make(chan struct{})
	s.run(j.ID, func() (any, error) {
		<-done
		return "result", nil
	})
	got, ok := s.get(j.ID)
	if !ok || got.Status != JobRunning {
		t.Fatalf("running job = %+v (ok=%v)", got, ok)
	}
	close(done)
	deadline := time.Now().Add(2 * time.Second)
	for {
		got, _ = s.get(j.ID)
		if got.Status == JobDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", got)
		}
		time.Sleep(time.Millisecond)
	}
	if got.Result != "result" {
		t.Errorf("result = %v", got.Result)
	}
	// Failure path.
	j2 := s.create()
	s.run(j2.ID, func() (any, error) { return nil, errors.New("boom") })
	deadline = time.Now().Add(2 * time.Second)
	for {
		got, _ = s.get(j2.ID)
		if got.Status == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job2 stuck: %+v", got)
		}
		time.Sleep(time.Millisecond)
	}
	if got.Error != "boom" {
		t.Errorf("error = %q", got.Error)
	}
	// Unknown ids are inert.
	if _, ok := s.get("nope"); ok {
		t.Error("unknown job found")
	}
	s.setStatus("nope", JobDone, nil, "") // must not panic
}
