package api

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"caladrius/internal/tsdb"
)

// Self-monitoring endpoints. The scraper (telemetry.Scraper) appends
// the service's own registry into an embedded tsdb.DB; these handlers
// expose that history (GET /api/v1/query_range) and the SLO
// evaluator's alert states (GET /api/v1/alerts). Both answer 404 when
// the service was built without a history store — self-monitoring is
// opt-in.

// maxRangeBuckets bounds how many downsample buckets one query_range
// request may ask for.
const maxRangeBuckets = 100_000

// reservedRangeParams are query_range parameters that are not label
// matchers; every other query parameter becomes a label equality
// selector (e.g. ?route=/api/v1/health or ?le=%2BInf).
var reservedRangeParams = map[string]bool{
	"metric": true, "start": true, "end": true, "window": true,
	"step": true, "agg": true, "merge": true, "sync": true,
}

// RangePoint is one downsampled observation.
type RangePoint struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// QueryRangeResponse is the payload of GET /api/v1/query_range. Points
// is empty (never null) when nothing matched — a dashboard polling an
// idle series should not see errors.
type QueryRangeResponse struct {
	Metric   string       `json:"metric"`
	Selector tsdb.Labels  `json:"selector,omitempty"`
	Start    time.Time    `json:"start"`
	End      time.Time    `json:"end"`
	Step     string       `json:"step"`
	Agg      string       `json:"agg"`
	Merge    string       `json:"merge"`
	Points   []RangePoint `json:"points"`
}

// AlertsResponse is the payload of GET /api/v1/alerts.
type AlertsResponse struct {
	Alerts []AlertJSON `json:"alerts"`
}

// AlertJSON mirrors telemetry.Alert for clients that decode the alerts
// endpoint without importing the telemetry package.
type AlertJSON struct {
	Rule        string     `json:"rule"`
	Description string     `json:"description,omitempty"`
	State       string     `json:"state"`
	Value       *float64   `json:"value,omitempty"`
	Threshold   float64    `json:"threshold"`
	Op          string     `json:"op"`
	Window      string     `json:"window"`
	Since       *time.Time `json:"since,omitempty"`
	EvaluatedAt time.Time  `json:"evaluated_at"`
}

func validAgg(a tsdb.Agg) bool {
	switch a {
	case tsdb.AggSum, tsdb.AggMean, tsdb.AggMin, tsdb.AggMax,
		tsdb.AggCount, tsdb.AggMedian, tsdb.AggLast:
		return true
	}
	return false
}

// parseRangeTime accepts RFC3339(Nano) or unix seconds (fractions ok).
func parseRangeTime(s string) (time.Time, error) {
	if ts, err := time.Parse(time.RFC3339Nano, s); err == nil {
		return ts, nil
	}
	if secs, err := strconv.ParseFloat(s, 64); err == nil && !math.IsNaN(secs) && !math.IsInf(secs, 0) {
		sec, frac := math.Modf(secs)
		return time.Unix(int64(sec), int64(frac*1e9)).UTC(), nil
	}
	return time.Time{}, fmt.Errorf("bad time %q (want RFC3339 or unix seconds)", s)
}

func (s *Service) handleQueryRange(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		httpError(w, http.StatusNotFound, "self-monitoring disabled: service has no history store")
		return
	}
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	q := r.URL.Query()
	metric := q.Get("metric")
	if metric == "" {
		httpError(w, http.StatusBadRequest, "missing metric parameter")
		return
	}
	end := time.Now().UTC()
	if v := q.Get("end"); v != "" {
		var err error
		if end, err = parseRangeTime(v); err != nil {
			httpError(w, http.StatusBadRequest, "end: "+err.Error())
			return
		}
	}
	window := 15 * time.Minute
	if v := q.Get("window"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad window %q", v))
			return
		}
		window = d
	}
	start := end.Add(-window)
	if v := q.Get("start"); v != "" {
		var err error
		if start, err = parseRangeTime(v); err != nil {
			httpError(w, http.StatusBadRequest, "start: "+err.Error())
			return
		}
	}
	if start.After(end) {
		httpError(w, http.StatusBadRequest, "start must not be after end")
		return
	}
	step := 30 * time.Second
	if v := q.Get("step"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("step must be a positive duration, got %q", v))
			return
		}
		step = d
	}
	// Bound the bucket count so a tiny step over a huge range cannot
	// materialise millions of points.
	if buckets := end.Sub(start) / step; buckets > maxRangeBuckets {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("step %s over range %s yields %d buckets (max %d)", step, end.Sub(start), buckets, maxRangeBuckets))
		return
	}
	agg, merge := tsdb.AggMean, tsdb.AggSum
	if v := q.Get("agg"); v != "" {
		agg = tsdb.Agg(v)
	}
	if v := q.Get("merge"); v != "" {
		merge = tsdb.Agg(v)
	}
	if !validAgg(agg) || !validAgg(merge) {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown aggregation %q/%q", agg, merge))
		return
	}
	sel := tsdb.Labels{}
	for k, vs := range q {
		if !reservedRangeParams[k] && len(vs) > 0 {
			sel[k] = vs[0]
		}
	}
	resp := QueryRangeResponse{
		Metric:   metric,
		Selector: sel,
		Start:    start,
		End:      end,
		Step:     step.String(),
		Agg:      string(agg),
		Merge:    string(merge),
		Points:   []RangePoint{},
	}
	series, err := s.history.Downsample(metric, sel, start, end, step, agg, merge)
	if err != nil && !errors.Is(err, tsdb.ErrNoData) {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	for _, p := range series.Points {
		// Non-finite values would make json.Encode fail silently.
		if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
			continue
		}
		resp.Points = append(resp.Points, RangePoint{T: p.T, V: p.V})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if s.slo == nil {
		httpError(w, http.StatusNotFound, "self-monitoring disabled: service has no SLO evaluator")
		return
	}
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	alerts := s.slo.Evaluate()
	resp := AlertsResponse{Alerts: make([]AlertJSON, len(alerts))}
	for i, a := range alerts {
		resp.Alerts[i] = AlertJSON{
			Rule:        a.Rule,
			Description: a.Description,
			State:       string(a.State),
			Value:       a.Value,
			Threshold:   a.Threshold,
			Op:          a.Op,
			Window:      a.Window,
			Since:       a.Since,
			EvaluatedAt: a.EvaluatedAt,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
