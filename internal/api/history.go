package api

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"caladrius/internal/tsdb"
)

// Self-monitoring endpoints. The scraper (telemetry.Scraper) appends
// the service's own registry into an embedded tsdb.DB; these handlers
// expose that history (GET /api/v1/query_range) and the SLO
// evaluator's alert states (GET /api/v1/alerts). Both answer 404 when
// the service was built without a history store — self-monitoring is
// opt-in.

// maxRangeBuckets bounds how many downsample buckets one query_range
// request may ask for.
const maxRangeBuckets = 100_000

// reservedRangeParams are query_range parameters that are not label
// matchers; every other query parameter becomes a label equality
// selector (e.g. ?route=/api/v1/health or ?le=%2BInf).
var reservedRangeParams = map[string]bool{
	"metric": true, "start": true, "end": true, "window": true,
	"step": true, "agg": true, "merge": true, "sync": true,
}

// RangePoint is one downsampled observation.
type RangePoint struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// QueryRangeResponse is the payload of GET /api/v1/query_range. Points
// is empty (never null) when nothing matched — a dashboard polling an
// idle series should not see errors.
type QueryRangeResponse struct {
	Metric   string       `json:"metric"`
	Selector tsdb.Labels  `json:"selector,omitempty"`
	Start    time.Time    `json:"start"`
	End      time.Time    `json:"end"`
	Step     string       `json:"step"`
	Agg      string       `json:"agg"`
	Merge    string       `json:"merge"`
	Points   []RangePoint `json:"points"`
}

// AlertsResponse is the payload of GET /api/v1/alerts.
type AlertsResponse struct {
	Alerts []AlertJSON `json:"alerts"`
}

// AlertJSON mirrors telemetry.Alert for clients that decode the alerts
// endpoint without importing the telemetry package.
type AlertJSON struct {
	Rule        string     `json:"rule"`
	Description string     `json:"description,omitempty"`
	State       string     `json:"state"`
	Value       *float64   `json:"value,omitempty"`
	Threshold   float64    `json:"threshold"`
	Op          string     `json:"op"`
	Window      string     `json:"window"`
	Since       *time.Time `json:"since,omitempty"`
	EvaluatedAt time.Time  `json:"evaluated_at"`
}

func validAgg(a tsdb.Agg) bool {
	switch a {
	case tsdb.AggSum, tsdb.AggMean, tsdb.AggMin, tsdb.AggMax,
		tsdb.AggCount, tsdb.AggMedian, tsdb.AggLast:
		return true
	}
	return false
}

// parseRangeTime accepts RFC3339(Nano) or unix seconds (fractions ok).
func parseRangeTime(s string) (time.Time, error) {
	if ts, err := time.Parse(time.RFC3339Nano, s); err == nil {
		return ts, nil
	}
	if secs, err := strconv.ParseFloat(s, 64); err == nil && !math.IsNaN(secs) && !math.IsInf(secs, 0) {
		sec, frac := math.Modf(secs)
		return time.Unix(int64(sec), int64(frac*1e9)).UTC(), nil
	}
	return time.Time{}, fmt.Errorf("bad time %q (want RFC3339 or unix seconds)", s)
}

// rangeQuery is the validated form of a query_range request.
type rangeQuery struct {
	Metric     string
	Start, End time.Time
	Step       time.Duration
	Agg, Merge tsdb.Agg
	Sel        tsdb.Labels
}

// parseQueryRange validates query_range parameters. `now` supplies the
// default end so the function stays pure (and fuzzable). Every error it
// returns is a client error — the handler maps them all to 400.
func parseQueryRange(q url.Values, now time.Time) (rangeQuery, error) {
	var rq rangeQuery
	rq.Metric = q.Get("metric")
	if rq.Metric == "" {
		return rq, errors.New("missing metric parameter")
	}
	rq.End = now
	if v := q.Get("end"); v != "" {
		var err error
		if rq.End, err = parseRangeTime(v); err != nil {
			return rq, errors.New("end: " + err.Error())
		}
	}
	window := 15 * time.Minute
	if v := q.Get("window"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return rq, fmt.Errorf("bad window %q", v)
		}
		window = d
	}
	rq.Start = rq.End.Add(-window)
	if v := q.Get("start"); v != "" {
		var err error
		if rq.Start, err = parseRangeTime(v); err != nil {
			return rq, errors.New("start: " + err.Error())
		}
	}
	if rq.Start.After(rq.End) {
		return rq, errors.New("start must not be after end")
	}
	rq.Step = 30 * time.Second
	if v := q.Get("step"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return rq, fmt.Errorf("step must be a positive duration, got %q", v)
		}
		rq.Step = d
	}
	// Bound the bucket count so a tiny step over a huge range cannot
	// materialise millions of points.
	if buckets := rq.End.Sub(rq.Start) / rq.Step; buckets > maxRangeBuckets {
		return rq, fmt.Errorf("step %s over range %s yields %d buckets (max %d)", rq.Step, rq.End.Sub(rq.Start), buckets, maxRangeBuckets)
	}
	rq.Agg, rq.Merge = tsdb.AggMean, tsdb.AggSum
	if v := q.Get("agg"); v != "" {
		rq.Agg = tsdb.Agg(v)
	}
	if v := q.Get("merge"); v != "" {
		rq.Merge = tsdb.Agg(v)
	}
	if !validAgg(rq.Agg) || !validAgg(rq.Merge) {
		return rq, fmt.Errorf("unknown aggregation %q/%q", rq.Agg, rq.Merge)
	}
	rq.Sel = tsdb.Labels{}
	for k, vs := range q {
		if !reservedRangeParams[k] && len(vs) > 0 {
			rq.Sel[k] = vs[0]
		}
	}
	return rq, nil
}

func (s *Service) handleQueryRange(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		httpError(w, http.StatusNotFound, "self-monitoring disabled: service has no history store")
		return
	}
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	rq, err := parseQueryRange(r.URL.Query(), time.Now().UTC())
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp := QueryRangeResponse{
		Metric:   rq.Metric,
		Selector: rq.Sel,
		Start:    rq.Start,
		End:      rq.End,
		Step:     rq.Step.String(),
		Agg:      string(rq.Agg),
		Merge:    string(rq.Merge),
		Points:   []RangePoint{},
	}
	series, err := s.history.Downsample(rq.Metric, rq.Sel, rq.Start, rq.End, rq.Step, rq.Agg, rq.Merge)
	if err != nil && !errors.Is(err, tsdb.ErrNoData) {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	for _, p := range series.Points {
		// Non-finite values would make json.Encode fail silently.
		if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
			continue
		}
		resp.Points = append(resp.Points, RangePoint{T: p.T, V: p.V})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if s.slo == nil {
		httpError(w, http.StatusNotFound, "self-monitoring disabled: service has no SLO evaluator")
		return
	}
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	alerts := s.slo.Evaluate()
	resp := AlertsResponse{Alerts: make([]AlertJSON, len(alerts))}
	for i, a := range alerts {
		resp.Alerts[i] = AlertJSON{
			Rule:        a.Rule,
			Description: a.Description,
			State:       string(a.State),
			Value:       a.Value,
			Threshold:   a.Threshold,
			Op:          a.Op,
			Window:      a.Window,
			Since:       a.Since,
			EvaluatedAt: a.EvaluatedAt,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
