package api

import (
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"caladrius/internal/incident"
	"caladrius/internal/telemetry"
	"caladrius/internal/tsdb"
)

// testRecorder builds a recorder with a fast CPU profile window, seeded
// with one log record and one span so captures have joinable evidence.
func testRecorder(t *testing.T) *incident.Recorder {
	t.Helper()
	logs := telemetry.NewLogRing(16)
	logs.Append(time.Now(), 0, "http request", "req-seed", []byte("status=200"))
	tracer := telemetry.NewTracer(8, nil)
	tracer.Start("req-seed", "performance").End()
	rec, err := incident.New(incident.Options{
		Dir:        filepath.Join(t.TempDir(), "incidents"),
		Registry:   telemetry.NewRegistry(),
		History:    tsdb.New(time.Hour),
		Logs:       logs,
		Tracer:     tracer,
		CPUProfile: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rec.Close)
	return rec
}

func TestIncidentsDisabledAnswer404(t *testing.T) {
	_, srv, _ := testEnv(t) // no recorder wired in
	for _, req := range []struct{ method, path string }{
		{http.MethodGet, "/api/v1/incidents"},
		{http.MethodGet, "/api/v1/incidents/some-id"},
		{http.MethodPost, "/api/v1/incidents/capture"},
	} {
		r, err := http.NewRequest(req.method, srv.URL+req.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: status = %d, want 404", req.method, req.path, resp.StatusCode)
		}
		if !strings.Contains(string(body), "-incident-dir") {
			t.Errorf("%s %s: body %q does not hint at -incident-dir", req.method, req.path, body)
		}
	}
}

func TestIncidentCaptureListGetDownload(t *testing.T) {
	_, srv, _ := testEnvWith(t, Options{Incidents: testRecorder(t)})

	// Manual capture returns the finished manifest with download links.
	resp := postJSON(t, srv.URL+"/api/v1/incidents/capture", struct{}{})
	captured := decode[IncidentResponse](t, resp, http.StatusOK)
	if captured.Trigger != incident.TriggerManual || captured.ID == "" {
		t.Fatalf("capture response = %+v", captured)
	}
	if len(captured.ArtifactURLs) != len(captured.Artifacts) || len(captured.Artifacts) == 0 {
		t.Fatalf("artifact urls = %v for %d artifacts", captured.ArtifactURLs, len(captured.Artifacts))
	}

	// The bundle shows up in the listing.
	listResp, err := http.Get(srv.URL + "/api/v1/incidents")
	if err != nil {
		t.Fatal(err)
	}
	listing := decode[IncidentListResponse](t, listResp, http.StatusOK)
	if listing.Count != 1 || len(listing.Incidents) != 1 || listing.Incidents[0].ID != captured.ID {
		t.Fatalf("listing = %+v", listing)
	}

	// GET one manifest.
	oneResp, err := http.Get(srv.URL + "/api/v1/incidents/" + captured.ID)
	if err != nil {
		t.Fatal(err)
	}
	one := decode[IncidentResponse](t, oneResp, http.StatusOK)
	if one.ID != captured.ID || len(one.ArtifactURLs) == 0 {
		t.Fatalf("manifest response = %+v", one)
	}

	// Every advertised artifact link downloads with the right content
	// type and non-empty body.
	for name, link := range one.ArtifactURLs {
		resp, err := http.Get(srv.URL + link)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(body) == 0 {
			t.Errorf("GET %s: status %d, %d bytes", link, resp.StatusCode, len(body))
		}
		want := "application/octet-stream"
		if strings.HasSuffix(name, ".json") {
			want = "application/json"
		}
		if ct := resp.Header.Get("Content-Type"); ct != want {
			t.Errorf("GET %s: Content-Type = %q, want %q", link, ct, want)
		}
	}
}

func TestIncidentBadRequests(t *testing.T) {
	_, srv, _ := testEnvWith(t, Options{Incidents: testRecorder(t)})
	for _, req := range []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/api/v1/incidents/no-such-id", http.StatusNotFound},
		{http.MethodGet, "/api/v1/incidents/no-such-id/artifacts/logs.json", http.StatusNotFound},
		{http.MethodGet, "/api/v1/incidents/x/bogus/logs.json", http.StatusNotFound},
		{http.MethodGet, "/api/v1/incidents/capture", http.StatusMethodNotAllowed},
		{http.MethodDelete, "/api/v1/incidents", http.StatusMethodNotAllowed},
		{http.MethodDelete, "/api/v1/incidents/some-id", http.StatusMethodNotAllowed},
	} {
		r, err := http.NewRequest(req.method, srv.URL+req.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != req.want {
			t.Errorf("%s %s: status = %d, want %d", req.method, req.path, resp.StatusCode, req.want)
		}
	}

	// Path traversal through the artifact name must not escape the
	// bundle directory.
	rec := testRecorder(t)
	_, srv2, _ := testEnvWith(t, Options{Incidents: rec})
	m, err := rec.CaptureNow()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv2.URL + "/api/v1/incidents/" + m.ID + "/artifacts/..%2f..%2fmanifest.json")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("artifact traversal served a file outside the bundle listing")
	}
}

// TestIncidentTraceHeaderPropagation pins the trace-join contract at the
// HTTP layer: a request with no trace header is assigned one, a sane
// client-supplied header is echoed, and a hostile one is replaced.
func TestIncidentTraceHeaderPropagation(t *testing.T) {
	_, srv, _ := testEnv(t)

	resp, err := http.Get(srv.URL + "/api/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	assigned := resp.Header.Get(TraceHeader)
	if !strings.HasPrefix(assigned, "req-") {
		t.Errorf("assigned trace id = %q, want req-N", assigned)
	}

	for header, want := range map[string]string{
		"client-trace-42":        "client-trace-42", // well-formed: echoed
		"bad id!{}":              "",                // hostile: replaced with req-N
		strings.Repeat("x", 100): "",
	} {
		r, err := http.NewRequest(http.MethodGet, srv.URL+"/api/v1/health", nil)
		if err != nil {
			t.Fatal(err)
		}
		r.Header.Set(TraceHeader, header)
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		got := resp.Header.Get(TraceHeader)
		if want != "" && got != want {
			t.Errorf("header %q: echoed %q, want %q", header, got, want)
		}
		if want == "" && !strings.HasPrefix(got, "req-") {
			t.Errorf("header %q: echoed %q, want a generated req-N id", header, got)
		}
	}
}
