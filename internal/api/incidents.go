package api

import (
	"net/http"
	"strings"

	"caladrius/internal/incident"
)

// The incident flight-recorder surface: bundles captured when an SLO
// fired (or on demand) are listed and downloaded here. Like the other
// observability endpoints the surface is opt-in — every handler
// answers 404 when the service was built without a recorder.
//
//	GET  /api/v1/incidents                         list bundle manifests
//	POST /api/v1/incidents/capture                 capture a bundle now
//	GET  /api/v1/incidents/{id}                    one manifest + artifact links
//	GET  /api/v1/incidents/{id}/artifacts/{name}   download one artifact

// IncidentListResponse is the payload of GET /api/v1/incidents.
type IncidentListResponse struct {
	Incidents []incident.Manifest `json:"incidents"`
	Count     int                 `json:"count"`
}

// IncidentResponse is the payload of GET /api/v1/incidents/{id}: the
// manifest plus per-artifact download paths.
type IncidentResponse struct {
	incident.Manifest
	ArtifactURLs map[string]string `json:"artifact_urls,omitempty"`
}

func (s *Service) handleIncidentsList(w http.ResponseWriter, r *http.Request) {
	if s.incidents == nil {
		httpError(w, http.StatusNotFound, "incident recorder disabled: start the daemon with -incident-dir")
		return
	}
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	list := s.incidents.List()
	if list == nil {
		list = []incident.Manifest{}
	}
	writeJSON(w, http.StatusOK, IncidentListResponse{Incidents: list, Count: len(list)})
}

func (s *Service) handleIncident(w http.ResponseWriter, r *http.Request) {
	if s.incidents == nil {
		httpError(w, http.StatusNotFound, "incident recorder disabled: start the daemon with -incident-dir")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/incidents/")
	if rest == "capture" {
		s.handleIncidentCapture(w, r)
		return
	}
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	id, sub, hasSub := strings.Cut(rest, "/")
	if id == "" {
		httpError(w, http.StatusBadRequest, "want /api/v1/incidents/{id}[/artifacts/{name}]")
		return
	}
	if hasSub {
		name, ok := strings.CutPrefix(sub, "artifacts/")
		if !ok || name == "" || strings.Contains(name, "/") {
			httpError(w, http.StatusNotFound, "want /api/v1/incidents/{id}/artifacts/{name}")
			return
		}
		path, ok := s.incidents.ArtifactPath(id, name)
		if !ok {
			httpError(w, http.StatusNotFound, "no artifact "+name+" in incident "+id)
			return
		}
		if strings.HasSuffix(name, ".json") {
			w.Header().Set("Content-Type", "application/json")
		} else {
			w.Header().Set("Content-Type", "application/octet-stream")
		}
		http.ServeFile(w, r, path)
		return
	}
	m, ok := s.incidents.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no incident "+id+" (pruned or never captured)")
		return
	}
	resp := IncidentResponse{Manifest: m, ArtifactURLs: map[string]string{}}
	for _, a := range m.Artifacts {
		resp.ArtifactURLs[a.Name] = "/api/v1/incidents/" + m.ID + "/artifacts/" + a.Name
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleIncidentCapture performs a synchronous manual capture. It
// bypasses the SLO cooldown (explicit operator intent) but serializes
// with any in-flight capture, so the response carries the finished
// manifest.
func (s *Service) handleIncidentCapture(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	m, err := s.incidents.CaptureNow()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := IncidentResponse{Manifest: m, ArtifactURLs: map[string]string{}}
	for _, a := range m.Artifacts {
		resp.ArtifactURLs[a.Name] = "/api/v1/incidents/" + m.ID + "/artifacts/" + a.Name
	}
	writeJSON(w, http.StatusOK, resp)
}
