package api

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"caladrius/internal/profiler"
	"caladrius/internal/profiler/pproftest"
	"caladrius/internal/telemetry"
)

// profilerEnv builds a service whose profiler folds synthetic
// profiles, with one regressed window already captured.
func profilerEnv(t *testing.T) (*Service, string) {
	t.Helper()
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	clock := base
	hot := false
	src := func(kind profiler.Kind) ([]byte, error) {
		stacks := map[string]int64{"main;steady": 900, "main;other": 100}
		if hot {
			stacks = map[string]int64{"main;steady": 300, "main;hotNew": 600, "main;other": 100}
		}
		return pproftest.CPUProfile(stacks), nil
	}
	p, err := profiler.New(profiler.Options{
		Registry:    telemetry.NewRegistry(),
		Epoch:       time.Minute,
		DiffWindows: 1,
		MinSamples:  1,
		Now:         func() time.Time { return clock },
		Source:      src,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CaptureOnce(); err != nil {
		t.Fatal(err)
	}
	clock = clock.Add(61 * time.Second)
	hot = true
	if err := p.CaptureOnce(); err != nil {
		t.Fatal(err)
	}
	svc, srv, _ := testEnvWith(t, Options{Profiler: p})
	return svc, srv.URL
}

func getProfileJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestProfilesEndpoints(t *testing.T) {
	_, url := profilerEnv(t)

	var st profiler.Status
	if resp := getProfileJSON(t, url+"/api/v1/profiles", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", resp.StatusCode)
	}
	if st.Baseline == nil || !st.Baseline.Auto {
		t.Fatalf("status baseline: %+v", st.Baseline)
	}
	if got := st.TopRegression[profiler.KindCPU]; got < 0.55 || got > 0.65 {
		t.Fatalf("top regression %f, want ~0.6", got)
	}

	var top ProfileTopResponse
	if resp := getProfileJSON(t, url+"/api/v1/profiles/top?kind=cpu&n=5", &top); resp.StatusCode != http.StatusOK {
		t.Fatalf("top: %d", resp.StatusCode)
	}
	if len(top.Functions) == 0 || top.Functions[0].Function != "hotNew" {
		t.Fatalf("top functions: %+v", top.Functions)
	}

	var diff ProfileDiffResponse
	if resp := getProfileJSON(t, url+"/api/v1/profiles/diff", &diff); resp.StatusCode != http.StatusOK {
		t.Fatalf("diff: %d", resp.StatusCode)
	}
	if diff.Baseline == nil || diff.Diff == nil || len(diff.Diff.Entries) == 0 {
		t.Fatalf("diff payload: %+v", diff)
	}
	if diff.Diff.Entries[0].Function != "hotNew" {
		t.Fatalf("top regression %q, want hotNew", diff.Diff.Entries[0].Function)
	}

	var flame ProfileFlameResponse
	if resp := getProfileJSON(t, url+"/api/v1/profiles/flame?kind=cpu", &flame); resp.StatusCode != http.StatusOK {
		t.Fatalf("flame: %d", resp.StatusCode)
	}
	if len(flame.Stacks) == 0 || !strings.Contains(flame.Stacks[0].Stack, "main;") {
		t.Fatalf("flame stacks: %+v", flame.Stacks)
	}

	// Re-baseline over POST zeroes the regression.
	resp, err := http.Post(url+"/api/v1/profiles/baseline", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var meta profiler.BaselineMeta
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || meta.Auto {
		t.Fatalf("baseline POST: %d auto=%v", resp.StatusCode, meta.Auto)
	}
	if resp := getProfileJSON(t, url+"/api/v1/profiles/diff", &diff); resp.StatusCode != http.StatusOK {
		t.Fatalf("diff after rebaseline: %d", resp.StatusCode)
	}
	if diff.Diff.TopDelta() > 0.01 {
		t.Fatalf("delta %f after re-baseline, want ~0", diff.Diff.TopDelta())
	}
}

func TestProfilesValidation(t *testing.T) {
	_, url := profilerEnv(t)
	cases := map[string]int{
		"/api/v1/profiles/top?kind=bogus": http.StatusBadRequest,
		"/api/v1/profiles/top?n=-3":       http.StatusBadRequest,
		"/api/v1/profiles/top?foo=1":      http.StatusBadRequest,
		"/api/v1/profiles/nope":           http.StatusNotFound,
		"/api/v1/profiles/baseline":       http.StatusMethodNotAllowed,
	}
	for path, want := range cases {
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestProfilesDisabled: every profiles route answers 404 with a clear
// message when the daemon runs without a profiler.
func TestProfilesDisabled(t *testing.T) {
	_, srv, _ := testEnvWith(t, Options{})
	for _, path := range []string{
		"/api/v1/profiles",
		"/api/v1/profiles/top",
		"/api/v1/profiles/diff",
		"/api/v1/profiles/flame",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: %d, want 404", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), "profiler disabled") {
			t.Fatalf("%s: body %q lacks disabled notice", path, body)
		}
	}
}
