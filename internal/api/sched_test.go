package api

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"caladrius/internal/audit"
	"caladrius/internal/config"
	"caladrius/internal/core"
	"caladrius/internal/heron"
	"caladrius/internal/metrics"
	"caladrius/internal/sched"
	"caladrius/internal/topology"
	"caladrius/internal/tracker"
	"caladrius/internal/workload"
)

// The scheduler e2e surface: these tests drive the full HTTP stack
// with a real scheduler attached, covering the three perf layers the
// scheduler adds — coalescing (duplicate requests, one model run),
// admission control (429 + Retry-After with per-tenant fairness) and
// calibration-cache invalidation through tracker change hooks.

type schedEnv struct {
	svc *Service
	srv *httptest.Server
	led *audit.Ledger
	tr  *tracker.Tracker
	cfg config.Config
}

// newSchedEnv builds the simulated word-count deployment with an audit
// ledger and the given scheduler (nil = inline service).
func newSchedEnv(t *testing.T, scheduler *sched.Scheduler) schedEnv {
	t.Helper()
	sim, err := heron.NewWordCount(heron.WordCountOptions{
		SplitterP: 3, CounterP: 8,
		Schedule: workload.StepRate(20e6/60, 45e6/60, 20*time.Minute),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(40 * time.Minute); err != nil {
		t.Fatal(err)
	}
	asOf := sim.Start().Add(40 * time.Minute)
	top, err := heron.WordCountTopology(8, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := topology.RoundRobinPack(top, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := tracker.New(func() time.Time { return asOf })
	if err := tr.Register(top, plan); err != nil {
		t.Fatal(err)
	}
	provider, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	led, err := audit.NewLedger(audit.Options{
		Provider: provider,
		Now:      func() time.Time { return asOf },
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	cfg.CalibrationLookback = 40 * time.Minute
	cfg.CalibrationWarmup = 3
	svc, err := NewService(cfg, tr, provider, Options{
		Now:       func() time.Time { return asOf },
		Audit:     led,
		Scheduler: scheduler,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return schedEnv{svc: svc, srv: srv, led: led, tr: tr, cfg: cfg}
}

func postJSONTenant(t *testing.T, url, tenant string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSchedEndpointDisabled(t *testing.T) {
	_, srv, _ := testEnv(t)
	resp, err := http.Get(srv.URL + "/api/v1/sched")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /api/v1/sched without scheduler = %d; want 404", resp.StatusCode)
	}
}

// TestCoalescedRequestsOneModelRun: concurrent identical sync predicts
// share one model run — the audit ledger holds exactly one record.
func TestCoalescedRequestsOneModelRun(t *testing.T) {
	scheduler := sched.New(sched.Options{Workers: 1, QueueDepth: 32})
	defer scheduler.Close()
	env := newSchedEnv(t, scheduler)

	// Occupy the single worker so every request below is concurrently
	// pending when coalescing decides.
	release := make(chan struct{})
	started := make(chan struct{})
	blocker, err := scheduler.Submit(context.Background(), sched.Request{Topology: "blk", Kind: "test", Tenant: "blk"},
		func(ctx context.Context) (any, error) { close(started); <-release; return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	<-started

	const clients = 6
	var wg sync.WaitGroup
	statuses := make([]int, clients)
	req := PerformanceRequest{SourceRateTPM: 30e6}
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSON(t, env.srv.URL+"/api/v1/model/topology/word-count/performance?sync=true", req)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	// Wait until all six are pending in the scheduler: one leader
	// queued, five coalesced onto it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := scheduler.Stats()
		if st.Coalesced >= clients-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("requests never coalesced: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	blocker.Wait(context.Background())
	wg.Wait()
	for i, code := range statuses {
		if code != http.StatusOK {
			t.Fatalf("request %d status = %d; want 200", i, code)
		}
	}
	if n := env.led.Len(); n != 1 {
		t.Fatalf("audit ledger holds %d model runs for %d identical requests; want exactly 1", n, clients)
	}
	st := scheduler.Stats()
	if st.Coalesced != clients-1 {
		t.Fatalf("Stats.Coalesced = %d; want %d", st.Coalesced, clients-1)
	}
}

// TestSaturationSheddingFairness drives the service into saturation
// from one tenant and verifies the 429 + Retry-After shedding contract
// with per-tenant fairness: the flooding tenant is shed once over its
// fair share while another tenant's request is still admitted.
func TestSaturationSheddingFairness(t *testing.T) {
	scheduler := sched.New(sched.Options{Workers: 1, QueueDepth: 2})
	defer scheduler.Close()
	env := newSchedEnv(t, scheduler)

	release := make(chan struct{})
	started := make(chan struct{})
	// The blocker runs as tenant "hog", so hog already owns the worker
	// when its flood arrives.
	blocker, err := scheduler.Submit(context.Background(), sched.Request{Topology: "blk", Kind: "test", Tenant: "hog"},
		func(ctx context.Context) (any, error) { close(started); <-release; return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// Six distinct hog requests (different rates — no coalescing).
	// With depth 2, exactly 2 enqueue and 4 are shed, regardless of
	// arrival order: admissions only happen while the queue is below
	// depth, and every later hog request is over fair share.
	const flood = 6
	var wg sync.WaitGroup
	type outcome struct {
		status     int
		retryAfter string
	}
	outcomes := make([]outcome, flood)
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSONTenant(t, env.srv.URL+"/api/v1/model/topology/word-count/performance?sync=true", "hog",
				PerformanceRequest{SourceRateTPM: float64(20e6 + i)})
			resp.Body.Close()
			outcomes[i] = outcome{resp.StatusCode, resp.Header.Get("Retry-After")}
		}(i)
	}
	// Wait until the flood has fully resolved into 2 queued + 4 shed.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := scheduler.Stats()
		if st.Queued >= 2 && st.Sheds >= flood-2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flood never saturated the queue: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}

	// The queue is deep and hog is over its share — but a different
	// tenant is under its fair share and must still be admitted.
	var fairWG sync.WaitGroup
	fairWG.Add(1)
	var fairStatus int
	go func() {
		defer fairWG.Done()
		resp := postJSONTenant(t, env.srv.URL+"/api/v1/model/topology/word-count/performance?sync=true", "tenant-b",
			PerformanceRequest{SourceRateTPM: 31e6})
		resp.Body.Close()
		fairStatus = resp.StatusCode
	}()
	deadline = time.Now().Add(10 * time.Second)
	for {
		if scheduler.Stats().Queued >= 3 {
			break // tenant-b's run is in the queue
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant-b was never admitted: %+v", scheduler.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	close(release)
	blocker.Wait(context.Background())
	wg.Wait()
	fairWG.Wait()

	var ok200, shed429 int
	for i, o := range outcomes {
		switch o.status {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			shed429++
			if o.retryAfter == "" {
				t.Errorf("shed request %d carries no Retry-After header", i)
			}
		default:
			t.Errorf("request %d status = %d; want 200 or 429", i, o.status)
		}
	}
	if ok200 != 2 || shed429 != flood-2 {
		t.Fatalf("flood outcomes: %d ok, %d shed; want 2 ok, %d shed", ok200, shed429, flood-2)
	}
	if fairStatus != http.StatusOK {
		t.Fatalf("under-fair-share tenant-b status = %d; want 200 (not starved)", fairStatus)
	}
	// The outcomes are visible on the sched endpoint.
	resp, err := http.Get(env.srv.URL + "/api/v1/sched")
	if err != nil {
		t.Fatal(err)
	}
	sr := decode[SchedResponse](t, resp, http.StatusOK)
	if sr.Scheduler.Sheds != uint64(flood-2) {
		t.Fatalf("sched endpoint Sheds = %d; want %d", sr.Scheduler.Sheds, flood-2)
	}
	if sr.Scheduler.QueueLimit != 2 || sr.Scheduler.Workers != 1 {
		t.Fatalf("sched endpoint shape = %+v", sr.Scheduler)
	}
}

// TestTrackerUpdateEvictsExactlyChangedTopology: a tracker update
// (packing-plan change) evicts the updated topology's cache entry and
// no other, and the next predict recalibrates fresh.
func TestTrackerUpdateEvictsExactlyChangedTopology(t *testing.T) {
	env := newSchedEnv(t, nil)

	// Warm word-count's entry, plus a synthetic sibling entry that must
	// survive word-count's update untouched.
	resp := postJSON(t, env.srv.URL+"/api/v1/model/topology/word-count/performance?sync=true", PerformanceRequest{SourceRateTPM: 30e6})
	decode[PerformanceResponse](t, resp, http.StatusOK)
	env.svc.calcache.Store("sibling", 1, env.cfg.CalibrationLookback, &core.TopologyModel{})
	if env.svc.calcache.Len() != 2 {
		t.Fatalf("cache entries = %d; want 2", env.svc.calcache.Len())
	}

	// Re-pack word-count onto 4 containers — a packing-plan change.
	top, err := heron.WordCountTopology(8, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := topology.RoundRobinPack(top, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.tr.Update(top, plan); err != nil {
		t.Fatal(err)
	}

	if _, ok := env.svc.calcache.Lookup("sibling", 1, env.cfg.CalibrationLookback); !ok {
		t.Fatal("sibling entry wrongly evicted by word-count's update")
	}
	if env.svc.calcache.Len() != 1 {
		t.Fatalf("cache entries after update = %d; want 1 (only sibling)", env.svc.calcache.Len())
	}

	// The next predict must recalibrate (fresh calibration, not cache).
	resp2 := postJSON(t, env.srv.URL+"/api/v1/model/topology/word-count/performance?sync=true", PerformanceRequest{SourceRateTPM: 30e6})
	decode[PerformanceResponse](t, resp2, http.StatusOK)
	recs := env.led.List(audit.Filter{Topology: "word-count", Limit: 10})
	if len(recs) != 2 {
		t.Fatalf("audit records = %d; want 2", len(recs))
	}
	// List returns newest first: the post-update run recalibrated.
	if recs[0].CachedCalibration {
		t.Fatal("post-update predict was marked cache-served; want fresh calibration")
	}

	// A third, unchanged predict is cache-served and audited as such.
	resp3 := postJSON(t, env.srv.URL+"/api/v1/model/topology/word-count/performance?sync=true", PerformanceRequest{SourceRateTPM: 30e6})
	decode[PerformanceResponse](t, resp3, http.StatusOK)
	recs = env.led.List(audit.Filter{Topology: "word-count", Limit: 10})
	if !recs[0].CachedCalibration {
		t.Fatal("warm predict not marked cache-served in the audit ledger")
	}
}

// TestTrackerRemoveEvictsEntry: removing a topology drops its cache
// entry through the same change hook.
func TestTrackerRemoveEvictsEntry(t *testing.T) {
	svc, srv, _ := testEnv(t)
	resp := postJSON(t, srv.URL+"/api/v1/model/topology/word-count/performance?sync=true", PerformanceRequest{SourceRateTPM: 30e6})
	decode[PerformanceResponse](t, resp, http.StatusOK)
	if svc.calcache.Len() != 1 {
		t.Fatalf("cache entries = %d; want 1", svc.calcache.Len())
	}
	if err := svc.tracker.Remove("word-count"); err != nil {
		t.Fatal(err)
	}
	if svc.calcache.Len() != 0 {
		t.Fatal("removed topology's cache entry survived")
	}
}

// TestAsyncJobThroughScheduler: async jobs complete through the
// scheduler's completion callback, not a dedicated goroutine.
func TestAsyncJobThroughScheduler(t *testing.T) {
	scheduler := sched.New(sched.Options{Workers: 2, QueueDepth: 16})
	defer scheduler.Close()
	env := newSchedEnv(t, scheduler)
	resp := postJSON(t, env.srv.URL+"/api/v1/model/topology/word-count/performance", PerformanceRequest{SourceRateTPM: 30e6})
	accepted := decode[map[string]any](t, resp, http.StatusAccepted)
	jobID, _ := accepted["job_id"].(string)
	if jobID == "" {
		t.Fatalf("no job id in %v", accepted)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		jr, err := http.Get(env.srv.URL + "/api/v1/jobs/" + jobID)
		if err != nil {
			t.Fatal(err)
		}
		job := decode[Job](t, jr, http.StatusOK)
		if job.Status == JobDone {
			break
		}
		if job.Status == JobFailed {
			t.Fatalf("job failed: %s", job.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if scheduler.Stats().Runs == 0 {
		t.Fatal("async job did not run through the scheduler")
	}
}
