package api

import (
	"net/url"
	"testing"
	"time"
)

// FuzzParseQueryRange throws arbitrary raw query strings at the
// query_range parameter parser. The parser must never panic, and every
// accepted query must satisfy the invariants the handler relies on:
// non-empty metric, start ≤ end, positive step, bounded bucket count,
// known aggregations, and no reserved key leaking into the selector.
func FuzzParseQueryRange(f *testing.F) {
	seeds := []string{
		"",
		"metric=caladrius_http_requests_total",
		"metric=m&start=2026-01-05T00:00:00Z&end=2026-01-05T01:00:00Z&window=1h&step=30s&agg=mean&merge=sum",
		"metric=m&start=1767571200&end=1767574800.5",
		"metric=m&window=-5m",
		"metric=m&step=banana",
		"metric=m&start=2026-01-05T00:00:00Z&end=1970-01-01T00:00:00Z",
		"metric=m&end=9999999999999999999999",
		"metric=m&step=1ns&window=10000h",
		"metric=m&agg=p99&merge=avg",
		"metric=m&route=/api/v1/health&le=%2BInf&sync=true",
		"metric=m&start=NaN&end=Inf",
		"metric=&step=0s",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	now := time.Date(2026, 1, 5, 12, 0, 0, 0, time.UTC)
	f.Fuzz(func(t *testing.T, raw string) {
		q, err := url.ParseQuery(raw)
		if err != nil {
			return // not a parseable query string; nothing to check
		}
		rq, err := parseQueryRange(q, now)
		if err != nil {
			return // rejection is always acceptable; panics are not
		}
		if rq.Metric == "" {
			t.Errorf("%q: accepted with empty metric", raw)
		}
		if rq.Start.After(rq.End) {
			t.Errorf("%q: accepted with start %s after end %s", raw, rq.Start, rq.End)
		}
		if rq.Step <= 0 {
			t.Errorf("%q: accepted with non-positive step %s", raw, rq.Step)
		}
		if buckets := rq.End.Sub(rq.Start) / rq.Step; buckets > maxRangeBuckets {
			t.Errorf("%q: accepted with %d buckets (max %d)", raw, buckets, maxRangeBuckets)
		}
		if !validAgg(rq.Agg) || !validAgg(rq.Merge) {
			t.Errorf("%q: accepted with agg %q merge %q", raw, rq.Agg, rq.Merge)
		}
		for k := range rq.Sel {
			if reservedRangeParams[k] {
				t.Errorf("%q: reserved parameter %q leaked into the label selector", raw, k)
			}
		}
	})
}
