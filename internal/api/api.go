// Package api implements Caladrius' API tier (§III-A): a JSON REST
// service through which clients request traffic forecasts and topology
// performance predictions. Modelling runs asynchronously by default —
// a request returns 202 Accepted with a job id to poll — because model
// evaluation can take seconds; ?sync=true runs inline for small
// requests and tests.
//
// Endpoints:
//
//	GET  /api/v1/health
//	GET  /api/v1/models/traffic                           registered forecast models
//	POST /api/v1/model/traffic/{topology}                 traffic forecast
//	POST /api/v1/model/traffic/{topology}/rank            backtest-rank configured models
//	POST /api/v1/model/topology/{topology}/performance    performance prediction
//	POST /api/v1/model/topology/{topology}/suggest        minimal safe parallelism plan
//	POST /api/v1/model/topology/{topology}/calibrate      force recalibration
//	GET  /api/v1/model/topology/{topology}/model          calibrated model parameters
//	GET  /api/v1/model/topology/{topology}/graph          topology graph analyses
//	POST /api/v1/model/topology/{topology}/query          Gremlin-style graph query
//	GET  /api/v1/jobs/{id}                                job status/result
//	GET  /api/v1/query_range                              scraped telemetry history (see history.go)
//	GET  /api/v1/alerts                                   SLO alert states (see history.go)
//	GET  /api/v1/audit                                    prediction audit ledger (see audit.go)
//	GET  /api/v1/audit/{id}                               one audit record
//	GET  /api/v1/incidents                                incident bundles (see incidents.go)
//	GET  /api/v1/incidents/{id}                           one incident manifest
//	GET  /api/v1/incidents/{id}/artifacts/{name}          download an incident artifact
//	POST /api/v1/incidents/capture                        capture an incident bundle now
//	GET  /api/v1/usage                                    per-tenant usage accounting (see usage.go)
//	GET  /api/v1/sched                                    model-run scheduler snapshot (see sched.go)
//	GET  /api/v1/profiles                                 continuous profiler status (see profiles.go)
//	GET  /api/v1/profiles/top                             hot functions over recent windows
//	GET  /api/v1/profiles/diff                            regression diff vs the baseline
//	GET  /api/v1/profiles/flame                           merged flame stacks
//	POST /api/v1/profiles/baseline                        re-baseline at the current profile
package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"caladrius/internal/audit"
	"caladrius/internal/config"
	"caladrius/internal/core"
	"caladrius/internal/forecast"
	"caladrius/internal/graph"
	"caladrius/internal/incident"
	"caladrius/internal/metrics"
	"caladrius/internal/profiler"
	"caladrius/internal/sched"
	"caladrius/internal/telemetry"
	"caladrius/internal/tracker"
	"caladrius/internal/tsdb"
	"caladrius/internal/usage"
)

// Service wires the model tier to its helpers: the topology metadata
// service, the metrics provider and the graph cache.
type Service struct {
	cfg      config.Config
	tracker  *tracker.Tracker
	provider metrics.Provider
	graphs   *graph.Cache
	jobs     *jobStore
	logger   *slog.Logger
	now      func() time.Time

	tel         *telemetry.Registry
	tracer      *telemetry.Tracer
	history     *tsdb.DB
	slo         *telemetry.SLO
	audit       *audit.Ledger
	incidents   *incident.Recorder
	usage       *usage.Accountant
	profiler    *profiler.Profiler
	sampler     *core.CostSampler
	httpInst    *httpInstruments
	jobsRunning *telemetry.Gauge
	jobsDone    *telemetry.Counter
	jobsFailed  *telemetry.Counter

	// schedr is the bounded model-run scheduler; nil runs model work
	// inline (and /api/v1/sched answers 404).
	schedr *sched.Scheduler
	// calcache holds calibrated topology models keyed by (topology,
	// packing-plan version, provider window); invalidated by tracker
	// change hooks and forced recalibrations.
	calcache *sched.CalCache

	// calMu guards calFlights, the per-topology calibration
	// singleflight: concurrent cache misses on one topology share a
	// single fetch→calibrate run instead of racing duplicates.
	calMu      sync.Mutex
	calFlights map[string]*calFlight
}

// calFlight is one in-progress calibration run other requests for the
// same topology wait on.
type calFlight struct {
	done chan struct{}
	tm   *core.TopologyModel
	err  error
}

// Options carries the service's optional dependencies.
type Options struct {
	// Logger receives the structured access log and service events.
	// Default: slog.Default().
	Logger *slog.Logger
	// Now anchors metric queries and job timestamps. Default: time.Now.
	// A frozen demo clock here does not affect telemetry: spans and
	// request latencies always measure real wall time.
	Now func() time.Time
	// Telemetry is the metrics registry to instrument into. Default: a
	// fresh private registry, exposed via Service.Metrics.
	Telemetry *telemetry.Registry
	// Tracer records model-pipeline traces. Default: a fresh tracer
	// retaining telemetry.DefaultMaxTraces traces.
	Tracer *telemetry.Tracer
	// History is the store the telemetry scraper appends into. Nil
	// leaves /api/v1/query_range answering 404.
	History *tsdb.DB
	// SLO evaluates alert rules against History. Nil leaves
	// /api/v1/alerts answering 404.
	SLO *telemetry.SLO
	// Audit is the prediction audit ledger every model run is recorded
	// into. Nil disables recording and leaves /api/v1/audit answering
	// 404.
	Audit *audit.Ledger
	// Incidents is the flight recorder whose bundles the incidents
	// endpoints serve. Nil leaves /api/v1/incidents answering 404.
	Incidents *incident.Recorder
	// Usage is the per-(tenant, topology) accountant every request and
	// model run is attributed to. Nil disables attribution and leaves
	// /api/v1/usage answering 404.
	Usage *usage.Accountant
	// Profiler is the continuous profiler whose windows, diffs and
	// flame stacks the profiles endpoints serve. Nil leaves
	// /api/v1/profiles answering 404.
	Profiler *profiler.Profiler
	// SimTicks optionally supplies a monotonic simulator-tick total so
	// model-run costs include the ticks they drove (the demo sim's
	// caladrius_sim_ticks_total). Only read when Usage is set.
	SimTicks func() uint64
	// Scheduler is the bounded model-run scheduler every predict/plan/
	// calibrate request is queued through: identical concurrent requests
	// coalesce into one run, and admission control sheds excess load as
	// 429 + Retry-After with per-tenant fairness. Nil runs model work
	// inline — one goroutine per async job, no admission control — and
	// leaves /api/v1/sched answering 404.
	Scheduler *sched.Scheduler
	// CalCacheTTL bounds calibration-cache entry age; 0 means entries
	// only leave on tracker/packing changes and forced recalibrations.
	// Measured against Now, so a frozen demo clock never expires them.
	CalCacheTTL time.Duration
}

// New builds a service. logger and now are optional; telemetry is
// private (use NewService to share a registry).
func New(cfg config.Config, tr *tracker.Tracker, provider metrics.Provider, logger *slog.Logger, now func() time.Time) (*Service, error) {
	return NewService(cfg, tr, provider, Options{Logger: logger, Now: now})
}

// NewService builds a service with explicit options.
func NewService(cfg config.Config, tr *tracker.Tracker, provider metrics.Provider, opts Options) (*Service, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr == nil || provider == nil {
		return nil, errors.New("api: nil tracker or metrics provider")
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Telemetry == nil {
		opts.Telemetry = telemetry.NewRegistry()
	}
	if opts.Tracer == nil {
		opts.Tracer = telemetry.NewTracer(0, nil)
	}
	reg := opts.Telemetry
	reg.SetHelp("caladrius_jobs_running", "Asynchronous modelling jobs currently executing.")
	reg.SetHelp("caladrius_jobs_completed_total", "Finished asynchronous jobs, by outcome.")
	var sampler *core.CostSampler
	if opts.Usage != nil {
		sampler = &core.CostSampler{Ticks: opts.SimTicks}
	}
	s := &Service{
		cfg:         cfg,
		tracker:     tr,
		provider:    provider,
		graphs:      graph.NewCache(),
		jobs:        newJobStore(opts.Now),
		logger:      opts.Logger,
		now:         opts.Now,
		tel:         reg,
		tracer:      opts.Tracer,
		history:     opts.History,
		slo:         opts.SLO,
		audit:       opts.Audit,
		incidents:   opts.Incidents,
		usage:       opts.Usage,
		profiler:    opts.Profiler,
		sampler:     sampler,
		httpInst:    newHTTPInstruments(reg),
		jobsRunning: reg.Gauge("caladrius_jobs_running", nil),
		jobsDone:    reg.Counter("caladrius_jobs_completed_total", telemetry.Labels{"outcome": "done"}),
		jobsFailed:  reg.Counter("caladrius_jobs_completed_total", telemetry.Labels{"outcome": "failed"}),
		schedr:      opts.Scheduler,
		calcache: sched.NewCalCache(sched.CalCacheOptions{
			TTL:      opts.CalCacheTTL,
			Now:      opts.Now,
			Registry: reg,
		}),
		calFlights: map[string]*calFlight{},
	}
	// Tracker updates and packing-plan changes evict exactly the changed
	// topology's calibrated model and graph analyses; everything else
	// stays warm.
	tr.OnChange(s.invalidateModel)
	return s, nil
}

// Metrics returns the registry the service instruments into, for
// mounting a /metrics endpoint.
func (s *Service) Metrics() *telemetry.Registry { return s.tel }

// Tracer returns the tracer holding recent model-run traces.
func (s *Service) Tracer() *telemetry.Tracer { return s.tracer }

// Handler returns the REST API handler, wrapped in the request
// telemetry middleware and access log.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/health", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "time": s.now().UTC()})
	})
	mux.HandleFunc("/api/v1/models/traffic", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"models": forecast.Names()})
	})
	mux.HandleFunc("/api/v1/model/traffic/", s.handleTraffic)
	mux.HandleFunc("/api/v1/model/topology/", s.handleTopology)
	mux.HandleFunc("/api/v1/jobs/", s.handleJob)
	mux.HandleFunc("/api/v1/query_range", s.handleQueryRange)
	mux.HandleFunc("/api/v1/alerts", s.handleAlerts)
	mux.HandleFunc("/api/v1/audit", s.handleAuditList)
	mux.HandleFunc("/api/v1/audit/", s.handleAuditRecord)
	mux.HandleFunc("/api/v1/incidents", s.handleIncidentsList)
	mux.HandleFunc("/api/v1/incidents/", s.handleIncident)
	mux.HandleFunc("/api/v1/usage", s.handleUsage)
	mux.HandleFunc("/api/v1/sched", s.handleSched)
	mux.HandleFunc("/api/v1/profiles", s.handleProfiles)
	mux.HandleFunc("/api/v1/profiles/", s.handleProfiles)
	return instrument(mux, s.httpInst, s.logger, s.usage)
}

// --- request/response types ---------------------------------------------

// TrafficRequest asks for a source-throughput forecast for a topology.
type TrafficRequest struct {
	// SourceMinutes is the length of metric history to fit on.
	SourceMinutes int `json:"source_minutes"`
	// HorizonMinutes is how far ahead to forecast.
	HorizonMinutes int `json:"horizon_minutes"`
	// Models optionally restricts which configured models run; empty
	// runs all configured models (the paper: "by default, the endpoint
	// will run all model implementations defined in the configuration
	// and concatenate the results").
	Models []string `json:"models,omitempty"`
	// AsOf anchors "now" for metric queries; zero means the service
	// clock. Simulated deployments pass the simulation time.
	AsOf time.Time `json:"as_of,omitempty"`
}

// TrafficModelResult is one model's forecast output.
type TrafficModelResult struct {
	Model        string                 `json:"model"`
	Predictions  []forecast.Prediction  `json:"predictions"`
	SummaryStats *forecast.SummaryStats `json:"summary_stats,omitempty"`
}

// TrafficResponse is the traffic endpoint's result payload.
type TrafficResponse struct {
	Topology string               `json:"topology"`
	Results  []TrafficModelResult `json:"results"`
}

// PerformanceRequest asks for a topology performance prediction.
type PerformanceRequest struct {
	// Parallelism overrides component parallelisms (the proposed
	// packing plan of a dry-run update). Empty = current.
	Parallelism map[string]int `json:"parallelism,omitempty"`
	// SourceRateTPM is the topology source throughput t₀ to evaluate
	// at, in tuples/minute. Zero with UseForecast false means "use the
	// latest observed source rate".
	SourceRateTPM float64 `json:"source_rate_tpm,omitempty"`
	// UseForecast evaluates at the configured traffic model's peak
	// forecast over the horizon instead (preemptive scaling).
	UseForecast    bool `json:"use_forecast,omitempty"`
	HorizonMinutes int  `json:"horizon_minutes,omitempty"`
	SourceMinutes  int  `json:"source_minutes,omitempty"`
	// AsOf anchors metric queries.
	AsOf time.Time `json:"as_of,omitempty"`
}

// PerformanceResponse is the performance endpoint's result payload.
type PerformanceResponse struct {
	Topology   string                  `json:"topology"`
	Prediction core.TopologyPrediction `json:"prediction"`
	// EvaluatedRateTPM is the source rate the prediction used.
	EvaluatedRateTPM float64 `json:"evaluated_rate_tpm"`
}

// --- handlers ------------------------------------------------------------

func (s *Service) handleTraffic(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/model/traffic/")
	topoName, action, hasAction := strings.Cut(rest, "/")
	if topoName == "" || (hasAction && action != "rank") {
		httpError(w, http.StatusBadRequest, "want /api/v1/model/traffic/{name}[/rank]")
		return
	}
	var req TrafficRequest
	if err := decodeBody(r.Body, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if hasAction {
		s.dispatch(w, r, "rank", topoName, req, func(ctx context.Context) (any, error) { return s.runRank(ctx, topoName, req) })
		return
	}
	s.dispatch(w, r, "traffic", topoName, req, func(ctx context.Context) (any, error) { return s.runTraffic(ctx, topoName, req) })
}

// RankEntry is one model's backtest outcome on the topology's own
// traffic history.
type RankEntry struct {
	Model    string  `json:"model"`
	MAPE     float64 `json:"mape"`
	RMSE     float64 `json:"rmse"`
	Coverage float64 `json:"interval_coverage"`
	Error    string  `json:"error,omitempty"`
}

// RankResponse orders the configured traffic models by backtest skill.
type RankResponse struct {
	Topology string      `json:"topology"`
	Ranking  []RankEntry `json:"ranking"`
}

// runRank backtests every configured traffic model on the topology's
// recent source-throughput history (final 20% held out) and ranks them
// by MAPE — the model-selection question the pluggable tier raises.
func (s *Service) runRank(ctx context.Context, topoName string, req TrafficRequest) (*RankResponse, error) {
	info, err := s.trackerGet(ctx, topoName)
	if err != nil {
		return nil, err
	}
	if req.SourceMinutes <= 0 {
		req.SourceMinutes = int(s.cfg.CalibrationLookback / time.Minute)
	}
	asOf := req.AsOf
	if asOf.IsZero() {
		asOf = s.now()
	}
	history, err := s.sourceRate(ctx, topoName, info.Topology.Spouts(), asOf.Add(-time.Duration(req.SourceMinutes)*time.Minute), asOf)
	if err != nil {
		return nil, fmt.Errorf("traffic history: %w", err)
	}
	candidates := make([]struct {
		Name    string
		Options map[string]any
	}, len(s.cfg.TrafficModels))
	for i, ref := range s.cfg.TrafficModels {
		candidates[i].Name, candidates[i].Options = ref.Name, ref.Options
	}
	_, sp := telemetry.StartSpan(ctx, "rank")
	defer sp.End()
	resp := &RankResponse{Topology: topoName}
	for _, r := range forecast.Rank(candidates, history, 0.2) {
		e := RankEntry{Model: r.Model, MAPE: r.Accuracy.MAPE, RMSE: r.Accuracy.RMSE, Coverage: r.Accuracy.Coverage}
		if r.Err != nil {
			e.Error = r.Err.Error()
		}
		resp.Ranking = append(resp.Ranking, e)
	}
	return resp, nil
}

func (s *Service) handleTopology(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/model/topology/")
	parts := strings.Split(rest, "/")
	if len(parts) != 2 || parts[0] == "" {
		httpError(w, http.StatusBadRequest, "want /api/v1/model/topology/{name}/{performance|suggest|calibrate|model|graph}")
		return
	}
	topoName, action := parts[0], parts[1]
	if action == "model" || action == "graph" {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		if action == "graph" {
			resp, err := s.graphInfo(topoName)
			if err != nil {
				writeError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
		tm, _, err := s.topologyModel(r.Context(), topoName, time.Time{})
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, modelJSON(topoName, tm))
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	switch action {
	case "performance":
		var req PerformanceRequest
		if err := decodeBody(r.Body, &req); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		s.dispatch(w, r, "performance", topoName, req, func(ctx context.Context) (any, error) { return s.runPerformance(ctx, topoName, req) })
	case "suggest":
		var req SuggestRequest
		if err := decodeBody(r.Body, &req); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		s.dispatch(w, r, "suggest", topoName, req, func(ctx context.Context) (any, error) { return s.runSuggest(ctx, topoName, req) })
	case "query":
		var req GraphQueryRequest
		if err := decodeBody(r.Body, &req); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		s.dispatch(w, r, "graph-query", topoName, req, func(ctx context.Context) (any, error) { return s.runGraphQuery(ctx, topoName, req) })
	case "calibrate":
		var req PerformanceRequest
		if err := decodeBody(r.Body, &req); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		s.invalidateModel(topoName)
		s.dispatch(w, r, "calibrate", topoName, req, func(ctx context.Context) (any, error) {
			_, _, err := s.topologyModel(ctx, topoName, req.AsOf)
			if err != nil {
				return nil, err
			}
			return map[string]any{"topology": topoName, "calibrated": true}, nil
		})
	default:
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown action %q", action))
	}
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/jobs/")
	id, sub, hasSub := strings.Cut(rest, "/")
	if hasSub {
		if sub != "trace" {
			httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job sub-resource %q", sub))
			return
		}
		// Traces are looked up in the tracer directly, so traces of
		// synchronous runs (ids from the X-Caladrius-Trace header) are
		// retrievable through the same endpoint.
		tj, ok := s.tracer.Snapshot(id)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Sprintf("no trace for job %q (evicted or never ran)", id))
			return
		}
		writeJSON(w, http.StatusOK, tj)
		return
	}
	job, ok := s.jobs.get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// TraceHeader carries the trace id of a synchronous model run back to
// the client; async runs use their job id as the trace id.
const TraceHeader = "X-Caladrius-Trace"

// dispatch runs fn inline (?sync=true) or as an asynchronous job,
// opening a trace whose root span covers the whole model run. Async
// jobs trace under their job id; sync runs trace under the request's
// middleware-assigned trace id (already echoed in the TraceHeader
// response header), so the header, the access-log line and the span
// tree of one request share a single id.
//
// With a scheduler configured every model run is queued through it
// instead of executing on the request (or a fresh job) goroutine:
// concurrency is bounded by the worker pool, identical concurrent
// requests coalesce into one run, queue time appears as a "queue-wait"
// span, and admission control may shed the request as 429 +
// Retry-After before any model work starts. Sync requests queue at
// High priority (a client is blocked on them), async jobs at Normal —
// except rank backtests, batch work that queues at Low either way.
func (s *Service) dispatch(w http.ResponseWriter, r *http.Request, op, topoName string, req any, fn func(context.Context) (any, error)) {
	tenant := RequestTenant(r.Context())
	isSync := r.URL.Query().Get("sync") == "true"
	if isSync {
		root := s.tracer.Start(RequestTraceID(r.Context()), op)
		root.SetAttr("path", r.URL.Path)
		root.SetAttr("mode", "sync")
		root.SetAttr("tenant", tenant)
		ctx := telemetry.ContextWithSpan(r.Context(), root)
		var result any
		var err error
		if s.schedr == nil {
			result, err = fn(ctx)
		} else {
			sreq := sched.Request{
				Topology: topoName,
				Kind:     op,
				Tenant:   tenant,
				Hash:     requestHash(op, topoName, req),
				Priority: schedPriority(op, isSync),
			}
			var h sched.Handle
			if h, err = s.schedr.Submit(ctx, sreq, fn); err == nil {
				if h.Coalesced() {
					root.SetAttr("coalesced", "true")
				}
				// Wait under the request context: a disconnecting client
				// abandons its wait, but the run itself completes (other
				// coalesced waiters may share it) and is still audited.
				result, err = h.Wait(r.Context())
			}
		}
		if err != nil {
			root.SetAttr("error", err.Error())
		}
		root.End()
		w.Header().Set(TraceHeader, root.TraceID())
		if err != nil {
			s.logger.Warn("model request failed", "path", r.URL.Path, "err", err)
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, result)
		return
	}
	job := s.jobs.create()
	root := s.tracer.Start(job.ID, op)
	root.SetAttr("path", r.URL.Path)
	root.SetAttr("mode", "async")
	root.SetAttr("tenant", tenant)
	// The request context dies with the response; the job traces under
	// a fresh one. The tenant rides along so the run's cost still bills
	// the requester, not anonymous.
	ctx := telemetry.ContextWithSpan(ContextWithTenant(context.Background(), tenant), root)
	if s.schedr != nil {
		sreq := sched.Request{
			Topology: topoName,
			Kind:     op,
			Tenant:   tenant,
			Hash:     requestHash(op, topoName, req),
			Priority: schedPriority(op, isSync),
		}
		h, err := s.schedr.Submit(ctx, sreq, fn)
		if err != nil {
			// Shed before any model work started: the job never ran, so
			// it leaves no record — the client gets the 429 itself.
			s.jobs.remove(job.ID)
			root.SetAttr("error", err.Error())
			root.End()
			w.Header().Set(TraceHeader, root.TraceID())
			writeError(w, err)
			return
		}
		if h.Coalesced() {
			root.SetAttr("coalesced", "true")
		}
		s.jobs.start(job.ID)
		s.jobsRunning.Inc()
		h.OnDone(func(result any, err error) {
			defer s.jobsRunning.Dec()
			if err != nil {
				root.SetAttr("error", err.Error())
			}
			root.End()
			if err != nil {
				s.jobs.complete(job.ID, nil, err)
				s.jobsFailed.Inc()
			} else {
				s.jobs.complete(job.ID, result, nil)
				s.jobsDone.Inc()
			}
		})
	} else {
		s.jobsRunning.Inc()
		s.jobs.run(job.ID, func() (any, error) {
			defer s.jobsRunning.Dec()
			defer root.End()
			result, err := fn(ctx)
			if err != nil {
				root.SetAttr("error", err.Error())
				s.jobsFailed.Inc()
			} else {
				s.jobsDone.Inc()
			}
			return result, err
		})
	}
	w.Header().Set(TraceHeader, job.ID)
	w.Header().Set("Location", "/api/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"job_id": job.ID,
		"poll":   "/api/v1/jobs/" + job.ID,
		"trace":  "/api/v1/jobs/" + job.ID + "/trace",
	})
}

// requestHash fingerprints a model request's inputs — operation,
// topology and the canonical JSON encoding of the request body — for
// coalescing. Forced recalibrations return 0 (the scheduler's
// never-coalesce sentinel): each explicit calibrate must run, though
// overlapping ones still share work through the calibration
// singleflight.
func requestHash(op, topoName string, req any) uint64 {
	if op == "calibrate" {
		return 0
	}
	body, err := json.Marshal(req)
	if err != nil {
		return 0
	}
	return sched.Hash64(op, topoName, string(body))
}

// schedPriority maps an operation to its queue priority: interactive
// sync requests outrank async jobs; rank backtests are batch work
// behind both.
func schedPriority(op string, isSync bool) sched.Priority {
	if op == "rank" {
		return sched.Low
	}
	if isSync {
		return sched.High
	}
	return sched.Normal
}

// --- model execution ------------------------------------------------------

// runTraffic fits the configured traffic models on the topology's
// source-throughput history and forecasts the horizon.
func (s *Service) runTraffic(ctx context.Context, topoName string, req TrafficRequest) (*TrafficResponse, error) {
	info, err := s.trackerGet(ctx, topoName)
	if err != nil {
		return nil, err
	}
	if req.SourceMinutes <= 0 {
		req.SourceMinutes = int(s.cfg.CalibrationLookback / time.Minute)
	}
	if req.HorizonMinutes <= 0 {
		req.HorizonMinutes = 60
	}
	asOf := req.AsOf
	if asOf.IsZero() {
		asOf = s.now()
	}
	start := asOf.Add(-time.Duration(req.SourceMinutes) * time.Minute)
	history, err := s.sourceRate(ctx, topoName, info.Topology.Spouts(), start, asOf)
	if err != nil {
		return nil, fmt.Errorf("traffic history: %w", err)
	}
	refs := s.cfg.TrafficModels
	if len(req.Models) > 0 {
		refs = nil
		for _, name := range req.Models {
			found := false
			for _, ref := range s.cfg.TrafficModels {
				if ref.Name == name {
					refs = append(refs, ref)
					found = true
					break
				}
			}
			if !found {
				refs = append(refs, config.ModelRef{Name: name})
			}
		}
	}
	resp := &TrafficResponse{Topology: topoName}
	horizon := forecast.Horizon(asOf, time.Minute, req.HorizonMinutes)
	for _, ref := range refs {
		_, sp := telemetry.StartSpan(ctx, "forecast:"+ref.Name)
		m, err := forecast.New(ref.Name, ref.Options)
		if err != nil {
			sp.End()
			return nil, err
		}
		if err := m.Fit(history); err != nil {
			sp.End()
			return nil, fmt.Errorf("model %s: %w", ref.Name, err)
		}
		preds, err := m.Predict(horizon)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("model %s: %w", ref.Name, err)
		}
		result := TrafficModelResult{Model: ref.Name, Predictions: preds}
		if sm, ok := m.(*forecast.Summary); ok {
			if stats, err := sm.Stats(); err == nil {
				result.SummaryStats = &stats
			}
		}
		resp.Results = append(resp.Results, result)
	}
	return resp, nil
}

// runPerformance evaluates a proposed configuration.
func (s *Service) runPerformance(ctx context.Context, topoName string, req PerformanceRequest) (*PerformanceResponse, error) {
	asOf := req.AsOf
	if asOf.IsZero() {
		asOf = s.now()
	}
	tm, calCached, err := s.topologyModel(ctx, topoName, asOf)
	if err != nil {
		return nil, err
	}
	rate := req.SourceRateTPM
	switch {
	case req.UseForecast:
		fctx, fsp := telemetry.StartSpan(ctx, "forecast")
		tr, err := s.runTraffic(fctx, topoName, TrafficRequest{
			SourceMinutes:  req.SourceMinutes,
			HorizonMinutes: req.HorizonMinutes,
			Models:         []string{s.cfg.TrafficModels[0].Name},
			AsOf:           asOf,
		})
		fsp.End()
		if err != nil {
			return nil, err
		}
		// Preemptive scaling evaluates at the peak of the forecast's
		// upper band.
		for _, p := range tr.Results[0].Predictions {
			if p.Upper > rate {
				rate = p.Upper
			}
		}
	case rate == 0:
		info, err := s.trackerGet(ctx, topoName)
		if err != nil {
			return nil, err
		}
		pts, err := s.sourceRate(ctx, topoName, info.Topology.Spouts(), asOf.Add(-15*time.Minute), asOf)
		if err != nil {
			return nil, fmt.Errorf("current source rate: %w", err)
		}
		rate = pts[len(pts)-1].V
	}
	if rate < 0 || math.IsNaN(rate) {
		return nil, fmt.Errorf("api: bad source rate %g", rate)
	}
	// A run is counterfactual — audited for context but not graded —
	// when it evaluates anything other than the deployed configuration
	// at its currently observed rate.
	counterfactual := len(req.Parallelism) > 0 || req.SourceRateTPM != 0 || req.UseForecast
	_, psp := telemetry.StartSpan(ctx, "predict")
	pred, cost, err := tm.PredictMeasured(s.auditRecorder(ctx, topoName, "predict", counterfactual, calCached), s.sampler, req.Parallelism, rate)
	psp.End()
	s.chargeRun(ctx, topoName, cost)
	if err != nil {
		return nil, err
	}
	return &PerformanceResponse{Topology: topoName, Prediction: pred, EvaluatedRateTPM: rate}, nil
}

// trackerGet fetches topology metadata under a "tracker.fetch" span.
func (s *Service) trackerGet(ctx context.Context, topoName string) (tracker.Info, error) {
	_, sp := telemetry.StartSpan(ctx, "tracker.fetch")
	defer sp.End()
	return s.tracker.Get(topoName)
}

// sourceRate queries source throughput under a "source-rate" span.
func (s *Service) sourceRate(ctx context.Context, topoName string, spouts []string, start, end time.Time) ([]tsdb.Point, error) {
	_, sp := telemetry.StartSpan(ctx, "source-rate")
	defer sp.End()
	return s.provider.SourceRate(topoName, spouts, start, end)
}

// topologyModel returns the calibrated model for the topology, served
// from the calibration cache while the packing-plan version and
// provider window are unchanged (and the entry's TTL, when configured,
// has not passed). cached reports whether the request skipped the
// fetch→calibrate stages — either a cache hit, or a wait on a
// calibration another concurrent request was already running (the
// calibration singleflight). The run is recorded under a "calibrate"
// span (attr cache=hit|miss|coalesced); on a true miss the core
// calibration reports per-component stage timings into it.
func (s *Service) topologyModel(ctx context.Context, topoName string, asOf time.Time) (tm *core.TopologyModel, cached bool, err error) {
	ctx, sp := telemetry.StartSpan(ctx, "calibrate")
	defer sp.End()
	info, err := s.trackerGet(ctx, topoName)
	if err != nil {
		return nil, false, err
	}
	window := s.cfg.CalibrationLookback
	if m, ok := s.calcache.Lookup(topoName, info.Plan.Version, window); ok {
		sp.SetAttr("cache", "hit")
		return m, true, nil
	}
	// Miss: join or become the topology's calibration singleflight.
	// Two concurrent predicts on a cold topology run one calibration,
	// not two — the second waits and is marked cache-served.
	s.calMu.Lock()
	if f, ok := s.calFlights[topoName]; ok {
		s.calMu.Unlock()
		sp.SetAttr("cache", "coalesced")
		<-f.done
		return f.tm, f.err == nil, f.err
	}
	f := &calFlight{done: make(chan struct{})}
	s.calFlights[topoName] = f
	s.calMu.Unlock()
	defer func() {
		f.tm, f.err = tm, err
		s.calMu.Lock()
		delete(s.calFlights, topoName)
		s.calMu.Unlock()
		close(f.done)
	}()
	// Double-check after winning the flight: a calibration that
	// completed between the lookup and the flight may have filled the
	// cache already.
	if m, ok := s.calcache.Lookup(topoName, info.Plan.Version, window); ok {
		sp.SetAttr("cache", "hit")
		return m, true, nil
	}
	sp.SetAttr("cache", "miss")
	// A cache miss performs a full recalibration — usually the most
	// expensive run a request triggers, so it is metered and charged to
	// the requesting principal like any predict/plan run.
	mark := s.sampler.Begin()
	defer func() { s.chargeRun(ctx, topoName, s.sampler.End(mark)) }()

	if asOf.IsZero() {
		asOf = s.now()
	}
	start := asOf.Add(-window)
	// Topology-aware calibration attributes backpressure to the true
	// bottleneck, discarding the spurious upstream backpressure that
	// burst-resume cycles induce.
	models, crep, err := core.CalibrateTopologyFromProviderReport(s.provider, info.Topology, start, asOf, core.CalibrationOptions{
		Warmup: s.cfg.CalibrationWarmup,
		Window: s.cfg.MetricsWindow,
		Stages: telemetry.SpanFromContext(ctx),
	})
	if err != nil {
		return nil, false, fmt.Errorf("calibrate %s: %w", topoName, err)
	}
	tm, err = core.NewTopologyModel(info.Topology, models)
	if err != nil {
		return nil, false, err
	}
	// A calibration that had to widen past metric gaps, or still ran on
	// sparse windows, is kept — but every prediction it makes is
	// flagged degraded in the audit ledger.
	tm.Degraded = crep.Degraded
	if crep.Degraded {
		sp.SetAttr("degraded", "true")
		s.logger.Warn("degraded calibration", "topology", topoName,
			"widened", crep.Widened.String(), "sparse", strings.Join(crep.Sparse, ","))
	}
	// Warm the graph cache alongside the model: analyses use both.
	if _, _, err := s.graphs.Get(info.Topology, info.Plan); err != nil {
		return nil, false, err
	}
	s.calcache.Store(topoName, info.Plan.Version, window, tm)
	if s.audit != nil {
		s.audit.NoteCalibration(topoName, asOf)
	}
	s.logger.Info("calibrated topology model", "topology", topoName, "plan_version", info.Plan.Version)
	return tm, false, nil
}

// invalidateModel evicts one topology's calibrated model and graph
// analyses — the tracker change hook, also run before a forced
// recalibration.
func (s *Service) invalidateModel(topoName string) {
	s.calcache.Invalidate(topoName)
	s.graphs.Invalidate(topoName)
}

// SuggestRequest asks the planner for the minimal parallelisms that
// absorb a source rate with headroom.
type SuggestRequest struct {
	// SourceRateTPM is the rate to plan for; zero means the latest
	// observed source rate.
	SourceRateTPM float64 `json:"source_rate_tpm,omitempty"`
	// Headroom is the planning margin (default 0.2).
	Headroom float64 `json:"headroom,omitempty"`
	// AsOf anchors metric queries.
	AsOf time.Time `json:"as_of,omitempty"`
}

// SuggestResponse carries the suggested plan and its dry-run
// evaluation.
type SuggestResponse struct {
	Topology         string                  `json:"topology"`
	EvaluatedRateTPM float64                 `json:"evaluated_rate_tpm"`
	Parallelism      map[string]int          `json:"parallelism"`
	Prediction       core.TopologyPrediction `json:"prediction"`
}

// runSuggest plans the minimal safe parallelisms for a source rate.
func (s *Service) runSuggest(ctx context.Context, topoName string, req SuggestRequest) (*SuggestResponse, error) {
	asOf := req.AsOf
	if asOf.IsZero() {
		asOf = s.now()
	}
	tm, calCached, err := s.topologyModel(ctx, topoName, asOf)
	if err != nil {
		return nil, err
	}
	rate := req.SourceRateTPM
	if rate == 0 {
		info, err := s.trackerGet(ctx, topoName)
		if err != nil {
			return nil, err
		}
		pts, err := s.sourceRate(ctx, topoName, info.Topology.Spouts(), asOf.Add(-15*time.Minute), asOf)
		if err != nil {
			return nil, fmt.Errorf("current source rate: %w", err)
		}
		rate = pts[len(pts)-1].V
	}
	headroom := req.Headroom
	if headroom == 0 {
		headroom = 0.2
	}
	_, plSp := telemetry.StartSpan(ctx, "plan")
	plan, err := tm.SuggestParallelism(rate, headroom)
	plSp.End()
	if err != nil {
		return nil, err
	}
	// Plans evaluate a hypothetical parallelism — always counterfactual.
	_, prSp := telemetry.StartSpan(ctx, "predict")
	pred, cost, err := tm.PredictMeasured(s.auditRecorder(ctx, topoName, "plan", true, calCached), s.sampler, plan, rate)
	prSp.End()
	s.chargeRun(ctx, topoName, cost)
	if err != nil {
		return nil, err
	}
	return &SuggestResponse{Topology: topoName, EvaluatedRateTPM: rate, Parallelism: plan, Prediction: pred}, nil
}

// GraphQueryRequest carries a Gremlin-style traversal to run against
// the topology's physical graph (Graph="logical" selects the
// component-level graph instead).
type GraphQueryRequest struct {
	Query string `json:"query"`
	Graph string `json:"graph,omitempty"`
}

// GraphQueryResponse returns the traversal result; its type depends on
// the terminal step (ids → strings, count → number, values → any list,
// path → string lists).
type GraphQueryResponse struct {
	Topology string `json:"topology"`
	Query    string `json:"query"`
	Result   any    `json:"result"`
}

// runGraphQuery executes a Gremlin-style query through the graph
// cache.
func (s *Service) runGraphQuery(ctx context.Context, topoName string, req GraphQueryRequest) (*GraphQueryResponse, error) {
	if strings.TrimSpace(req.Query) == "" {
		return nil, fmt.Errorf("api: empty graph query")
	}
	info, err := s.trackerGet(ctx, topoName)
	if err != nil {
		return nil, err
	}
	_, sp := telemetry.StartSpan(ctx, "graph-query")
	defer sp.End()
	logical, physical, err := s.graphs.Get(info.Topology, info.Plan)
	if err != nil {
		return nil, err
	}
	g := physical
	switch req.Graph {
	case "", "physical":
	case "logical":
		g = logical
	default:
		return nil, fmt.Errorf("api: unknown graph %q (want logical or physical)", req.Graph)
	}
	result, err := g.Query(req.Query)
	if err != nil {
		return nil, err
	}
	return &GraphQueryResponse{Topology: topoName, Query: req.Query, Result: result}, nil
}

// GraphResponse summarises the graph-helper analyses of a topology:
// logical/physical graph sizes, spout→sink paths, and per-stream
// cross-container traffic fractions.
type GraphResponse struct {
	Topology          string             `json:"topology"`
	PlanVersion       int                `json:"plan_version"`
	Containers        int                `json:"containers"`
	LogicalVertices   int                `json:"logical_vertices"`
	LogicalEdges      int                `json:"logical_edges"`
	PhysicalVertices  int                `json:"physical_vertices"`
	PhysicalEdges     int                `json:"physical_edges"`
	ComponentPaths    [][]string         `json:"component_paths"`
	InstancePathCount int                `json:"instance_path_count"`
	RemoteFractions   map[string]float64 `json:"remote_fractions"`
}

// graphInfo builds the graph analyses through the version-keyed cache.
func (s *Service) graphInfo(topoName string) (*GraphResponse, error) {
	info, err := s.tracker.Get(topoName)
	if err != nil {
		return nil, err
	}
	logical, physical, err := s.graphs.Get(info.Topology, info.Plan)
	if err != nil {
		return nil, err
	}
	return &GraphResponse{
		Topology:          topoName,
		PlanVersion:       info.Plan.Version,
		Containers:        len(info.Plan.Containers),
		LogicalVertices:   logical.VertexCount(),
		LogicalEdges:      logical.EdgeCount(),
		PhysicalVertices:  physical.VertexCount(),
		PhysicalEdges:     physical.EdgeCount(),
		ComponentPaths:    info.Topology.Paths(),
		InstancePathCount: info.Topology.InstancePathCount(),
		RemoteFractions:   graph.RemoteTransferFraction(info.Topology, info.Plan),
	}, nil
}

// ComponentModelJSON is the wire form of one calibrated component
// model, exposed by the model-inspection endpoint.
type ComponentModelJSON struct {
	Component   string  `json:"component"`
	Parallelism int     `json:"calibrated_parallelism"`
	Alpha       float64 `json:"alpha"`
	// SPTPM is the per-instance saturation point in tuples/minute;
	// null when saturation was never observed.
	SPTPM *float64 `json:"sp_tpm"`
	// STTPM is the per-instance saturation throughput α·SP.
	STTPM       *float64  `json:"st_tpm"`
	CPUPsi      float64   `json:"cpu_psi_cores_per_tpm"`
	InputShares []float64 `json:"input_shares,omitempty"`
}

// ModelResponse describes a topology's calibrated model.
type ModelResponse struct {
	Topology   string               `json:"topology"`
	Components []ComponentModelJSON `json:"components"`
}

func modelJSON(topoName string, tm *core.TopologyModel) ModelResponse {
	resp := ModelResponse{Topology: topoName}
	for _, name := range tm.Topology().ComponentNames() {
		m, ok := tm.Component(name)
		if !ok {
			continue
		}
		cj := ComponentModelJSON{
			Component:   m.Component,
			Parallelism: m.Parallelism,
			Alpha:       m.Instance.Alpha,
			CPUPsi:      m.CPUPsi,
			InputShares: m.InputShares,
		}
		if m.Instance.SaturatedObservable() {
			sp := m.Instance.SP
			st := m.Instance.ST()
			cj.SPTPM, cj.STTPM = &sp, &st
		}
		resp.Components = append(resp.Components, cj)
	}
	return resp
}

// --- plumbing --------------------------------------------------------------

func decodeBody(body io.Reader, v any) error {
	data, err := io.ReadAll(io.LimitReader(body, 1<<20))
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return nil // all fields optional
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func statusFor(err error) int {
	var over *sched.ErrOverloaded
	switch {
	case errors.As(err, &over):
		// Admission control shed the request: the service is healthy
		// but saturated, and this tenant is over its fair share. 429 —
		// unlike the 503 below, retrying as a different tenant would be
		// admitted, and the backend is not down.
		return http.StatusTooManyRequests
	case errors.Is(err, sched.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, tracker.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, metrics.ErrUnavailable):
		// Transient backend unavailability: the caller should retry,
		// not treat the request as failed for good. ErrUnavailable is
		// checked before ErrNoData — a wrapped unavailability error is
		// not an empty range.
		return http.StatusServiceUnavailable
	case errors.Is(err, tsdb.ErrNoData), errors.Is(err, core.ErrNotCalibrated), errors.Is(err, forecast.ErrInsufficentData):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// RetryAfterSeconds is the Retry-After hint attached to 503 responses.
const RetryAfterSeconds = 5

// writeError maps err onto an HTTP error response. 503s (provider
// down) carry a fixed Retry-After so well-behaved clients back off
// instead of hammering a backend that is already down; 429s (admission
// shed) carry the scheduler's backlog-derived Retry-After estimate.
func writeError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	switch status {
	case http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds))
	case http.StatusTooManyRequests:
		var over *sched.ErrOverloaded
		if errors.As(err, &over) {
			secs := int(over.RetryAfter / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
	}
	httpError(w, status, err.Error())
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]any{"error": msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
