package api

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"caladrius/internal/config"
	"caladrius/internal/core"
	"caladrius/internal/heron"
	"caladrius/internal/metrics"
	"caladrius/internal/topology"
	"caladrius/internal/tracker"
	"caladrius/internal/tsdb"
	"caladrius/internal/workload"
)

// testEnv runs a simulation covering both regimes (linear then
// saturated), registers the topology, and returns a service anchored at
// the end of the simulated window.
func testEnv(t *testing.T) (*Service, *httptest.Server, time.Time) {
	return testEnvWith(t, Options{})
}

// testEnvWith is testEnv with explicit service options; a nil opts.Now
// is anchored at the end of the simulated window.
func testEnvWith(t *testing.T, opts Options) (*Service, *httptest.Server, time.Time) {
	t.Helper()
	sim, err := heron.NewWordCount(heron.WordCountOptions{
		SplitterP: 3, CounterP: 8,
		Schedule: workload.StepRate(20e6/60, 45e6/60, 20*time.Minute),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(40 * time.Minute); err != nil {
		t.Fatal(err)
	}
	asOf := sim.Start().Add(40 * time.Minute)

	top, err := heron.WordCountTopology(8, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := topology.RoundRobinPack(top, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := tracker.New(func() time.Time { return asOf })
	if err := tr.Register(top, plan); err != nil {
		t.Fatal(err)
	}
	provider, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default()
	cfg.CalibrationLookback = 40 * time.Minute
	cfg.CalibrationWarmup = 3
	if opts.Now == nil {
		opts.Now = func() time.Time { return asOf }
	}
	svc, err := NewService(cfg, tr, provider, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return svc, srv, asOf
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response, wantStatus int) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if resp.StatusCode != wantStatus {
		var raw map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&raw)
		t.Fatalf("status = %d, want %d (body %v)", resp.StatusCode, wantStatus, raw)
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHealthAndModelList(t *testing.T) {
	_, srv, _ := testEnv(t)
	resp, err := http.Get(srv.URL + "/api/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	h := decode[map[string]any](t, resp, http.StatusOK)
	if h["status"] != "ok" {
		t.Errorf("health = %v", h)
	}
	resp2, err := http.Get(srv.URL + "/api/v1/models/traffic")
	if err != nil {
		t.Fatal(err)
	}
	m := decode[map[string][]string](t, resp2, http.StatusOK)
	if len(m["models"]) < 2 {
		t.Errorf("models = %v", m)
	}
}

func TestPerformanceSync(t *testing.T) {
	_, srv, _ := testEnv(t)
	resp := postJSON(t, srv.URL+"/api/v1/model/topology/word-count/performance?sync=true", PerformanceRequest{
		Parallelism:   map[string]int{"splitter": 4},
		SourceRateTPM: 30e6,
	})
	pr := decode[PerformanceResponse](t, resp, http.StatusOK)
	if pr.Topology != "word-count" || pr.EvaluatedRateTPM != 30e6 {
		t.Errorf("response = %+v", pr)
	}
	if len(pr.Prediction.Paths) != 1 {
		t.Fatalf("paths = %d", len(pr.Prediction.Paths))
	}
	// Splitter scaled to 4 → ~43 M/min saturation; 30 M/min is safe.
	if pr.Prediction.Risk != core.RiskLow {
		t.Errorf("risk = %v (t'0 = %g)", pr.Prediction.Risk, pr.Prediction.SaturationSource)
	}
	// The same rate at the current parallelism (3) is high risk.
	resp2 := postJSON(t, srv.URL+"/api/v1/model/topology/word-count/performance?sync=true", PerformanceRequest{
		SourceRateTPM: 33e6,
	})
	pr2 := decode[PerformanceResponse](t, resp2, http.StatusOK)
	if pr2.Prediction.Risk != core.RiskHigh {
		t.Errorf("p=3 at 33M risk = %v (t'0 = %g)", pr2.Prediction.Risk, pr2.Prediction.SaturationSource)
	}
}

func TestPerformanceUsesLatestRateWhenUnspecified(t *testing.T) {
	_, srv, _ := testEnv(t)
	resp := postJSON(t, srv.URL+"/api/v1/model/topology/word-count/performance?sync=true", PerformanceRequest{})
	pr := decode[PerformanceResponse](t, resp, http.StatusOK)
	// Latest observed offered rate is the saturated-phase 45 M/min.
	if pr.EvaluatedRateTPM < 40e6 {
		t.Errorf("evaluated rate = %g, want ≈45e6", pr.EvaluatedRateTPM)
	}
	if pr.Prediction.Risk != core.RiskHigh {
		t.Errorf("risk = %v", pr.Prediction.Risk)
	}
}

func TestTrafficSyncAndForecastShape(t *testing.T) {
	_, srv, _ := testEnv(t)
	resp := postJSON(t, srv.URL+"/api/v1/model/traffic/word-count?sync=true", TrafficRequest{
		SourceMinutes:  40,
		HorizonMinutes: 10,
		Models:         []string{"summary"},
	})
	tr := decode[TrafficResponse](t, resp, http.StatusOK)
	if len(tr.Results) != 1 || tr.Results[0].Model != "summary" {
		t.Fatalf("results = %+v", tr.Results)
	}
	if len(tr.Results[0].Predictions) != 10 {
		t.Errorf("predictions = %d", len(tr.Results[0].Predictions))
	}
	if tr.Results[0].SummaryStats == nil || tr.Results[0].SummaryStats.Max < 40e6 {
		t.Errorf("summary stats = %+v", tr.Results[0].SummaryStats)
	}
	// All configured models by default.
	resp2 := postJSON(t, srv.URL+"/api/v1/model/traffic/word-count?sync=true", TrafficRequest{SourceMinutes: 40, HorizonMinutes: 5})
	tr2 := decode[TrafficResponse](t, resp2, http.StatusOK)
	if len(tr2.Results) != 2 {
		t.Errorf("default model results = %d, want 2", len(tr2.Results))
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	_, srv, _ := testEnv(t)
	resp := postJSON(t, srv.URL+"/api/v1/model/topology/word-count/performance", PerformanceRequest{SourceRateTPM: 10e6})
	accepted := decode[map[string]string](t, resp, http.StatusAccepted)
	jobID := accepted["job_id"]
	if jobID == "" {
		t.Fatalf("no job id: %v", accepted)
	}
	deadline := time.Now().Add(10 * time.Second)
	var job Job
	for {
		r, err := http.Get(srv.URL + "/api/v1/jobs/" + jobID)
		if err != nil {
			t.Fatal(err)
		}
		job = decode[Job](t, r, http.StatusOK)
		if job.Status == JobDone || job.Status == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if job.Status != JobDone {
		t.Fatalf("job failed: %s", job.Error)
	}
	raw, err := json.Marshal(job.Result)
	if err != nil {
		t.Fatal(err)
	}
	var pr PerformanceResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Prediction.Risk != core.RiskLow {
		t.Errorf("async prediction risk = %v", pr.Prediction.Risk)
	}
}

func TestAsyncJobFailure(t *testing.T) {
	_, srv, _ := testEnv(t)
	resp := postJSON(t, srv.URL+"/api/v1/model/traffic/ghost-topology", TrafficRequest{})
	accepted := decode[map[string]string](t, resp, http.StatusAccepted)
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/api/v1/jobs/" + accepted["job_id"])
		if err != nil {
			t.Fatal(err)
		}
		job := decode[Job](t, r, http.StatusOK)
		if job.Status == JobFailed {
			if job.Error == "" {
				t.Error("failed job with empty error")
			}
			return
		}
		if job.Status == JobDone {
			t.Fatal("job for unknown topology succeeded")
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, srv, _ := testEnv(t)
	cases := []struct {
		method, path, body string
		want               int
	}{
		{"GET", "/api/v1/model/traffic/word-count", "", http.StatusMethodNotAllowed},
		{"POST", "/api/v1/model/traffic/", "", http.StatusBadRequest},
		{"POST", "/api/v1/model/traffic/ghost?sync=true", "{}", http.StatusNotFound},
		{"POST", "/api/v1/model/traffic/word-count?sync=true", `{"bogus_field": 1}`, http.StatusBadRequest},
		{"POST", "/api/v1/model/topology/word-count/bogus", "{}", http.StatusNotFound},
		{"POST", "/api/v1/model/topology/word-count", "{}", http.StatusBadRequest},
		{"GET", "/api/v1/jobs/nope", "", http.StatusNotFound},
		{"POST", "/api/v1/jobs/nope", "", http.StatusMethodNotAllowed},
		{"POST", "/api/v1/model/topology/word-count/performance?sync=true", `{"source_rate_tpm": -5}`, http.StatusInternalServerError},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, srv.URL+c.path, bytes.NewReader([]byte(c.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}
}

func TestCalibrateEndpointAndCache(t *testing.T) {
	svc, srv, asOf := testEnv(t)
	// First performance call calibrates and caches.
	resp := postJSON(t, srv.URL+"/api/v1/model/topology/word-count/performance?sync=true", PerformanceRequest{SourceRateTPM: 10e6})
	decode[PerformanceResponse](t, resp, http.StatusOK)
	if svc.calcache.Len() != 1 {
		t.Fatal("model not cached after first call")
	}
	// Force recalibration.
	resp2 := postJSON(t, srv.URL+"/api/v1/model/topology/word-count/calibrate?sync=true", PerformanceRequest{AsOf: asOf})
	out := decode[map[string]any](t, resp2, http.StatusOK)
	if out["calibrated"] != true {
		t.Errorf("calibrate = %v", out)
	}
}

func TestModelInspectionEndpoint(t *testing.T) {
	_, srv, _ := testEnv(t)
	resp, err := http.Get(srv.URL + "/api/v1/model/topology/word-count/model")
	if err != nil {
		t.Fatal(err)
	}
	mr := decode[ModelResponse](t, resp, http.StatusOK)
	if mr.Topology != "word-count" || len(mr.Components) != 3 {
		t.Fatalf("model response = %+v", mr)
	}
	byName := map[string]ComponentModelJSON{}
	for _, c := range mr.Components {
		byName[c.Component] = c
	}
	splitter := byName["splitter"]
	if splitter.Alpha < 7.5 || splitter.Alpha > 7.8 {
		t.Errorf("alpha = %g", splitter.Alpha)
	}
	if splitter.SPTPM == nil || *splitter.SPTPM < 9e6 || *splitter.SPTPM > 12e6 {
		t.Errorf("SP = %v", splitter.SPTPM)
	}
	if splitter.CPUPsi <= 0 {
		t.Errorf("psi = %g", splitter.CPUPsi)
	}
	// The spout never saturated, so its SP is null.
	if byName["spout"].SPTPM != nil {
		t.Errorf("spout SP should be null, got %v", *byName["spout"].SPTPM)
	}
	// Wrong method.
	r, err := http.Post(srv.URL+"/api/v1/model/topology/word-count/model", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST model status = %d", r.StatusCode)
	}
	// Unknown topology.
	r2, err := http.Get(srv.URL + "/api/v1/model/topology/ghost/model")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("ghost model status = %d", r2.StatusCode)
	}
}

func TestServiceConstructorValidation(t *testing.T) {
	cfg := config.Default()
	if _, err := New(cfg, nil, nil, nil, nil); err == nil {
		t.Error("nil deps accepted")
	}
	bad := cfg
	bad.APIAddr = ""
	tr := tracker.New(nil)
	prov, err := metrics.NewTSDBProvider(tsdb.New(0), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(bad, tr, prov, nil, nil); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSuggestEndpoint(t *testing.T) {
	_, srv, _ := testEnv(t)
	resp := postJSON(t, srv.URL+"/api/v1/model/topology/word-count/suggest?sync=true", SuggestRequest{
		SourceRateTPM: 40e6,
		Headroom:      0.15,
	})
	sr := decode[SuggestResponse](t, resp, http.StatusOK)
	if sr.EvaluatedRateTPM != 40e6 {
		t.Errorf("rate = %g", sr.EvaluatedRateTPM)
	}
	// Splitter SP ≈ 10.8M → ceil(40×1.15/10.8) = 5.
	if sr.Parallelism["splitter"] != 5 {
		t.Errorf("suggested splitter = %d, want 5", sr.Parallelism["splitter"])
	}
	if sr.Prediction.Risk != core.RiskLow {
		t.Errorf("suggested plan risk = %v", sr.Prediction.Risk)
	}
	// Default rate (latest observed ≈ 45M).
	resp2 := postJSON(t, srv.URL+"/api/v1/model/topology/word-count/suggest?sync=true", SuggestRequest{})
	sr2 := decode[SuggestResponse](t, resp2, http.StatusOK)
	if sr2.EvaluatedRateTPM < 40e6 {
		t.Errorf("default rate = %g", sr2.EvaluatedRateTPM)
	}
}

func TestGraphEndpoint(t *testing.T) {
	_, srv, _ := testEnv(t)
	resp, err := http.Get(srv.URL + "/api/v1/model/topology/word-count/graph")
	if err != nil {
		t.Fatal(err)
	}
	gr := decode[GraphResponse](t, resp, http.StatusOK)
	if gr.LogicalVertices != 3 || gr.LogicalEdges != 2 {
		t.Errorf("logical graph %d/%d", gr.LogicalVertices, gr.LogicalEdges)
	}
	// 8 spouts + 3 splitters + 8 counters + 2 stream managers.
	if gr.PhysicalVertices != 8+3+8+2 {
		t.Errorf("physical vertices = %d", gr.PhysicalVertices)
	}
	// Instance paths: 8 × 3 × 8.
	if gr.InstancePathCount != 192 {
		t.Errorf("instance paths = %d", gr.InstancePathCount)
	}
	if len(gr.ComponentPaths) != 1 || len(gr.RemoteFractions) != 2 {
		t.Errorf("paths %v fractions %v", gr.ComponentPaths, gr.RemoteFractions)
	}
	// Unknown topology.
	r, err := http.Get(srv.URL + "/api/v1/model/topology/ghost/graph")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("ghost graph status = %d", r.StatusCode)
	}
}

func TestRankEndpoint(t *testing.T) {
	_, srv, _ := testEnv(t)
	resp := postJSON(t, srv.URL+"/api/v1/model/traffic/word-count/rank?sync=true", TrafficRequest{SourceMinutes: 40})
	rr := decode[RankResponse](t, resp, http.StatusOK)
	if rr.Topology != "word-count" || len(rr.Ranking) != 2 {
		t.Fatalf("ranking = %+v", rr)
	}
	// The step-function traffic history is non-seasonal; both default
	// models should at least evaluate.
	for _, e := range rr.Ranking {
		if e.Error != "" {
			t.Errorf("%s failed: %s", e.Model, e.Error)
		}
	}
	// Order is MAPE ascending.
	if rr.Ranking[0].MAPE > rr.Ranking[1].MAPE {
		t.Errorf("ranking not sorted: %+v", rr.Ranking)
	}
	// Bad sub-action.
	r, err := http.Post(srv.URL+"/api/v1/model/traffic/word-count/bogus?sync=true", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus traffic action status = %d", r.StatusCode)
	}
}

func TestGraphQueryEndpoint(t *testing.T) {
	_, srv, _ := testEnv(t)
	post := func(body GraphQueryRequest) *http.Response {
		return postJSON(t, srv.URL+"/api/v1/model/topology/word-count/query?sync=true", body)
	}
	// Physical graph (default): splitter instances.
	resp := post(GraphQueryRequest{Query: "g.V().hasLabel('instance').has('component','splitter').count()"})
	qr := decode[GraphQueryResponse](t, resp, http.StatusOK)
	if qr.Result != float64(3) { // JSON numbers decode as float64
		t.Errorf("physical count = %v", qr.Result)
	}
	// Logical graph: components.
	resp2 := post(GraphQueryRequest{Query: "g.V().hasLabel('component').values('name')", Graph: "logical"})
	qr2 := decode[GraphQueryResponse](t, resp2, http.StatusOK)
	vals, ok := qr2.Result.([]any)
	if !ok || len(vals) != 3 {
		t.Errorf("logical values = %#v", qr2.Result)
	}
	// Errors.
	for _, body := range []GraphQueryRequest{
		{Query: ""},
		{Query: "g.V().bogus()"},
		{Query: "g.V().count()", Graph: "imaginary"},
	} {
		r := postJSON(t, srv.URL+"/api/v1/model/topology/word-count/query?sync=true", body)
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			t.Errorf("query %+v accepted", body)
		}
	}
}
