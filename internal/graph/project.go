package graph

import (
	"fmt"
	"sync"

	"caladrius/internal/topology"
)

// Vertex labels used by the topology projections.
const (
	LabelComponent = "component"
	LabelInstance  = "instance"
	LabelStreamMgr = "stmgr"
)

// Edge labels used by the topology projections.
const (
	// EdgeStream is a logical (component- or instance-level) data-flow
	// edge.
	EdgeStream = "stream"
	// EdgeEmit connects an instance to its container's stream manager.
	EdgeEmit = "emit"
	// EdgeTransfer connects stream managers of different containers.
	EdgeTransfer = "transfer"
	// EdgeDeliver connects a stream manager to a local receiving
	// instance.
	EdgeDeliver = "deliver"
)

// ComponentVertexID names the logical vertex for a component.
func ComponentVertexID(component string) string { return "comp:" + component }

// InstanceVertexID names the physical vertex for an instance.
func InstanceVertexID(id topology.InstanceID) string {
	return fmt.Sprintf("inst:%s[%d]", id.Component, id.Index)
}

// StreamManagerVertexID names the vertex for a container's stream
// manager.
func StreamManagerVertexID(container int) string {
	return fmt.Sprintf("stmgr:%d", container)
}

// BuildLogical projects a topology's component-level DAG into a graph:
// one vertex per component (label "component") and one edge per stream
// (label "stream" with grouping and stream name properties).
func BuildLogical(t *topology.Topology) (*Graph, error) {
	g := New()
	for _, c := range t.Components() {
		err := g.AddVertex(ComponentVertexID(c.Name), LabelComponent, Properties{
			"name":        c.Name,
			"kind":        c.Kind.String(),
			"parallelism": c.Parallelism,
		})
		if err != nil {
			return nil, err
		}
	}
	for _, s := range t.Streams() {
		_, err := g.AddEdge(ComponentVertexID(s.From), ComponentVertexID(s.To), EdgeStream, Properties{
			"grouping": string(s.Grouping),
			"stream":   s.Name,
		})
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}

// BuildPhysical projects a packing plan into a graph containing every
// instance and every stream manager, as the paper's graph component
// does. Instance-to-instance data flow is represented both directly
// (label "stream", used for path counting — stream managers do not
// multiply paths) and through the stream-manager route (emit /
// transfer / deliver edges) for locality analysis.
func BuildPhysical(t *topology.Topology, plan *topology.PackingPlan) (*Graph, error) {
	g := New()
	for _, c := range plan.Containers {
		err := g.AddVertex(StreamManagerVertexID(c.ID), LabelStreamMgr, Properties{"container": c.ID})
		if err != nil {
			return nil, err
		}
	}
	for _, id := range t.Instances() {
		cont, ok := plan.ContainerOf(id)
		if !ok {
			return nil, fmt.Errorf("graph: instance %s missing from packing plan", id)
		}
		err := g.AddVertex(InstanceVertexID(id), LabelInstance, Properties{
			"component": id.Component,
			"index":     id.Index,
			"container": cont,
		})
		if err != nil {
			return nil, err
		}
	}
	// Avoid duplicate stream-manager plumbing edges.
	emitted := map[string]bool{}
	addOnce := func(from, to, label string) error {
		key := from + "|" + to + "|" + label
		if emitted[key] {
			return nil
		}
		emitted[key] = true
		_, err := g.AddEdge(from, to, label, nil)
		return err
	}
	for _, s := range t.Streams() {
		fromP := t.Component(s.From).Parallelism
		toP := t.Component(s.To).Parallelism
		for fi := 0; fi < fromP; fi++ {
			fid := topology.InstanceID{Component: s.From, Index: fi}
			fc, _ := plan.ContainerOf(fid)
			for ti := 0; ti < toP; ti++ {
				tid := topology.InstanceID{Component: s.To, Index: ti}
				tc, _ := plan.ContainerOf(tid)
				if _, err := g.AddEdge(InstanceVertexID(fid), InstanceVertexID(tid), EdgeStream, Properties{
					"grouping": string(s.Grouping),
					"stream":   s.Name,
				}); err != nil {
					return nil, err
				}
				if err := addOnce(InstanceVertexID(fid), StreamManagerVertexID(fc), EdgeEmit); err != nil {
					return nil, err
				}
				if fc != tc {
					if err := addOnce(StreamManagerVertexID(fc), StreamManagerVertexID(tc), EdgeTransfer); err != nil {
						return nil, err
					}
				}
				if err := addOnce(StreamManagerVertexID(tc), InstanceVertexID(tid), EdgeDeliver); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// RemoteTransferFraction computes, for each logical stream, the
// fraction of instance pairs whose communication crosses containers.
// Schedulers that minimise network distance aim to reduce this; the
// value feeds Caladrius' scheduler-comparison use case.
func RemoteTransferFraction(t *topology.Topology, plan *topology.PackingPlan) map[string]float64 {
	out := map[string]float64{}
	for _, s := range t.Streams() {
		fromP := t.Component(s.From).Parallelism
		toP := t.Component(s.To).Parallelism
		total, remote := 0, 0
		for fi := 0; fi < fromP; fi++ {
			fc, _ := plan.ContainerOf(topology.InstanceID{Component: s.From, Index: fi})
			for ti := 0; ti < toP; ti++ {
				tc, _ := plan.ContainerOf(topology.InstanceID{Component: s.To, Index: ti})
				total++
				if fc != tc {
					remote++
				}
			}
		}
		key := s.From + "->" + s.To + "/" + s.Name
		if total > 0 {
			out[key] = float64(remote) / float64(total)
		}
	}
	return out
}

// Cache memoises projected graphs per topology, invalidated by packing
// plan version — the paper notes topology graphs are large and densely
// connected, so they are set up once and reused until the topology is
// updated.
type Cache struct {
	mu      sync.Mutex
	entries map[string]cacheEntry
	hits    int
	misses  int
}

type cacheEntry struct {
	version  int
	logical  *Graph
	physical *Graph
}

// NewCache creates an empty graph cache.
func NewCache() *Cache {
	return &Cache{entries: map[string]cacheEntry{}}
}

// Get returns the cached logical and physical graphs for the topology
// if the cached packing-plan version matches; otherwise it builds,
// stores and returns fresh projections.
func (c *Cache) Get(t *topology.Topology, plan *topology.PackingPlan) (logical, physical *Graph, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[t.Name()]; ok && e.version == plan.Version {
		c.hits++
		return e.logical, e.physical, nil
	}
	c.misses++
	logical, err = BuildLogical(t)
	if err != nil {
		return nil, nil, err
	}
	physical, err = BuildPhysical(t, plan)
	if err != nil {
		return nil, nil, err
	}
	c.entries[t.Name()] = cacheEntry{version: plan.Version, logical: logical, physical: physical}
	return logical, physical, nil
}

// Invalidate drops the cached graphs for a topology.
func (c *Cache) Invalidate(topologyName string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, topologyName)
}

// Stats reports cache hits and misses.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
