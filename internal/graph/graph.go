// Package graph implements the property-graph store and traversal API
// Caladrius uses for topology analysis. The original system delegates
// this to Apache TinkerPop; this package provides the subset Caladrius
// exercises — labelled vertices and edges with arbitrary properties, a
// fluent traversal builder (V/Out/In/HasLabel/Has/Values/Path/Dedup),
// path enumeration and topological ordering — as an embeddable,
// concurrency-safe in-memory store.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Common errors.
var (
	ErrNotFound  = errors.New("graph: element not found")
	ErrDuplicate = errors.New("graph: element already exists")
)

// Properties is an element's key→value map.
type Properties map[string]any

func (p Properties) clone() Properties {
	if p == nil {
		return Properties{}
	}
	c := make(Properties, len(p))
	for k, v := range p {
		c[k] = v
	}
	return c
}

// Vertex is a node in the graph.
type Vertex struct {
	ID    string
	Label string
	Props Properties
}

// Edge is a directed, labelled connection between two vertices.
type Edge struct {
	ID    string
	Label string
	From  string // vertex ID
	To    string // vertex ID
	Props Properties
}

// Graph is an in-memory property graph, safe for concurrent use.
type Graph struct {
	mu       sync.RWMutex
	vertices map[string]*Vertex
	edges    map[string]*Edge
	out      map[string][]string // vertex ID -> outgoing edge IDs
	in       map[string][]string // vertex ID -> incoming edge IDs
	edgeSeq  int
}

// New creates an empty graph.
func New() *Graph {
	return &Graph{
		vertices: map[string]*Vertex{},
		edges:    map[string]*Edge{},
		out:      map[string][]string{},
		in:       map[string][]string{},
	}
}

// AddVertex inserts a vertex. The ID must be unique.
func (g *Graph) AddVertex(id, label string, props Properties) error {
	if id == "" {
		return errors.New("graph: empty vertex id")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.vertices[id]; ok {
		return fmt.Errorf("%w: vertex %q", ErrDuplicate, id)
	}
	g.vertices[id] = &Vertex{ID: id, Label: label, Props: props.clone()}
	return nil
}

// AddEdge inserts a directed edge between existing vertices and returns
// its generated ID.
func (g *Graph) AddEdge(from, to, label string, props Properties) (string, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.vertices[from]; !ok {
		return "", fmt.Errorf("%w: vertex %q", ErrNotFound, from)
	}
	if _, ok := g.vertices[to]; !ok {
		return "", fmt.Errorf("%w: vertex %q", ErrNotFound, to)
	}
	g.edgeSeq++
	id := fmt.Sprintf("e%d", g.edgeSeq)
	g.edges[id] = &Edge{ID: id, Label: label, From: from, To: to, Props: props.clone()}
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	return id, nil
}

// RemoveVertex deletes a vertex and every edge touching it.
func (g *Graph) RemoveVertex(id string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.vertices[id]; !ok {
		return fmt.Errorf("%w: vertex %q", ErrNotFound, id)
	}
	for _, eid := range append(append([]string(nil), g.out[id]...), g.in[id]...) {
		g.removeEdgeLocked(eid)
	}
	delete(g.vertices, id)
	delete(g.out, id)
	delete(g.in, id)
	return nil
}

// RemoveEdge deletes an edge by ID.
func (g *Graph) RemoveEdge(id string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.edges[id]; !ok {
		return fmt.Errorf("%w: edge %q", ErrNotFound, id)
	}
	g.removeEdgeLocked(id)
	return nil
}

func (g *Graph) removeEdgeLocked(id string) {
	e, ok := g.edges[id]
	if !ok {
		return
	}
	g.out[e.From] = removeString(g.out[e.From], id)
	g.in[e.To] = removeString(g.in[e.To], id)
	delete(g.edges, id)
}

func removeString(xs []string, s string) []string {
	for i, v := range xs {
		if v == s {
			return append(xs[:i], xs[i+1:]...)
		}
	}
	return xs
}

// Vertex returns a copy of the vertex, or ErrNotFound.
func (g *Graph) Vertex(id string) (Vertex, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	v, ok := g.vertices[id]
	if !ok {
		return Vertex{}, fmt.Errorf("%w: vertex %q", ErrNotFound, id)
	}
	return Vertex{ID: v.ID, Label: v.Label, Props: v.Props.clone()}, nil
}

// SetVertexProp updates one property of an existing vertex.
func (g *Graph) SetVertexProp(id, key string, value any) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	v, ok := g.vertices[id]
	if !ok {
		return fmt.Errorf("%w: vertex %q", ErrNotFound, id)
	}
	v.Props[key] = value
	return nil
}

// VertexCount and EdgeCount report graph size.
func (g *Graph) VertexCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.vertices)
}

// EdgeCount reports the number of edges.
func (g *Graph) EdgeCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.edges)
}

// Edges returns copies of all edges, ordered by ID.
func (g *Graph) Edges() []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Edge, 0, len(g.edges))
	for _, e := range g.edges {
		out = append(out, Edge{ID: e.ID, Label: e.Label, From: e.From, To: e.To, Props: e.Props.clone()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// OutNeighbors returns IDs of vertices reachable over one outgoing edge
// with any of the given labels (all labels when none given), sorted.
func (g *Graph) OutNeighbors(id string, labels ...string) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.neighborsLocked(id, g.out, func(e *Edge) string { return e.To }, labels)
}

// InNeighbors returns IDs of vertices with an edge into id, sorted.
func (g *Graph) InNeighbors(id string, labels ...string) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.neighborsLocked(id, g.in, func(e *Edge) string { return e.From }, labels)
}

func (g *Graph) neighborsLocked(id string, index map[string][]string, pick func(*Edge) string, labels []string) []string {
	var set []string
	seen := map[string]bool{}
	for _, eid := range index[id] {
		e := g.edges[eid]
		if len(labels) > 0 && !containsString(labels, e.Label) {
			continue
		}
		n := pick(e)
		if !seen[n] {
			seen[n] = true
			set = append(set, n)
		}
	}
	sort.Strings(set)
	return set
}

func containsString(xs []string, s string) bool {
	for _, v := range xs {
		if v == s {
			return true
		}
	}
	return false
}

// AllPaths enumerates every simple (vertex-disjoint) path from one
// vertex to another following outgoing edges, in deterministic order.
// maxLen bounds path length in vertices (0 = unbounded).
func (g *Graph) AllPaths(from, to string, maxLen int) ([][]string, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.vertices[from]; !ok {
		return nil, fmt.Errorf("%w: vertex %q", ErrNotFound, from)
	}
	if _, ok := g.vertices[to]; !ok {
		return nil, fmt.Errorf("%w: vertex %q", ErrNotFound, to)
	}
	var out [][]string
	onPath := map[string]bool{from: true}
	var walk func(path []string)
	walk = func(path []string) {
		cur := path[len(path)-1]
		if cur == to {
			out = append(out, append([]string(nil), path...))
			return
		}
		if maxLen > 0 && len(path) >= maxLen {
			return
		}
		for _, n := range g.neighborsLocked(cur, g.out, func(e *Edge) string { return e.To }, nil) {
			if onPath[n] {
				continue
			}
			onPath[n] = true
			walk(append(path, n))
			delete(onPath, n)
		}
	}
	walk([]string{from})
	return out, nil
}

// TopoSort returns vertex IDs in topological order, or an error if the
// graph has a cycle. Ties break lexicographically.
func (g *Graph) TopoSort() ([]string, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	indeg := make(map[string]int, len(g.vertices))
	for id := range g.vertices {
		indeg[id] = 0
	}
	for _, e := range g.edges {
		indeg[e.To]++
	}
	var frontier []string
	for id, d := range indeg {
		if d == 0 {
			frontier = append(frontier, id)
		}
	}
	sort.Strings(frontier)
	var order []string
	for len(frontier) > 0 {
		id := frontier[0]
		frontier = frontier[1:]
		order = append(order, id)
		var next []string
		for _, eid := range g.out[id] {
			to := g.edges[eid].To
			indeg[to]--
			if indeg[to] == 0 {
				next = append(next, to)
			}
		}
		sort.Strings(next)
		frontier = mergeSorted(frontier, next)
	}
	if len(order) != len(g.vertices) {
		return nil, errors.New("graph: cycle detected")
	}
	return order, nil
}

func mergeSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
