package graph

import (
	"testing"

	"caladrius/internal/topology"
)

func paperTopology(t *testing.T) *topology.Topology {
	t.Helper()
	top, err := topology.NewBuilder("word-count").
		AddSpout("spout", 2).
		AddBolt("splitter", 2).
		AddBolt("counter", 4).
		Connect("spout", "splitter", topology.ShuffleGrouping).
		Connect("splitter", "counter", topology.FieldsGrouping, "word").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestBuildLogical(t *testing.T) {
	top := paperTopology(t)
	g, err := BuildLogical(top)
	if err != nil {
		t.Fatal(err)
	}
	if g.VertexCount() != 3 || g.EdgeCount() != 2 {
		t.Fatalf("size = %d/%d", g.VertexCount(), g.EdgeCount())
	}
	v, err := g.Vertex(ComponentVertexID("splitter"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Props["parallelism"] != 2 || v.Props["kind"] != "bolt" {
		t.Errorf("splitter props = %+v", v.Props)
	}
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != ComponentVertexID("spout") {
		t.Errorf("order = %v", order)
	}
	// Grouping recorded on the edge.
	for _, e := range g.Edges() {
		if e.To == ComponentVertexID("counter") && e.Props["grouping"] != "fields" {
			t.Errorf("counter edge grouping = %v", e.Props["grouping"])
		}
	}
}

func TestBuildPhysical(t *testing.T) {
	top := paperTopology(t)
	plan, err := topology.RoundRobinPack(top, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildPhysical(top, plan)
	if err != nil {
		t.Fatal(err)
	}
	// 8 instances + 2 stream managers.
	if g.VertexCount() != 10 {
		t.Errorf("vertices = %d, want 10", g.VertexCount())
	}
	// Instance-level stream edges: 2*2 + 2*4 = 12.
	streamEdges := 0
	for _, e := range g.Edges() {
		if e.Label == EdgeStream {
			streamEdges++
		}
	}
	if streamEdges != 12 {
		t.Errorf("stream edges = %d, want 12", streamEdges)
	}
	// Path count through instance-level stream edges must match the
	// paper's 16 (stream managers do not multiply paths).
	total := 0
	for si := 0; si < 2; si++ {
		for ci := 0; ci < 4; ci++ {
			paths, err := g.AllPathsVia(t, si, ci)
			if err != nil {
				t.Fatal(err)
			}
			total += paths
		}
	}
	if total != 16 {
		t.Errorf("instance paths = %d, want 16", total)
	}
}

// AllPathsVia counts spout→counter paths using only stream edges. It is
// a test helper exercising traversal over the physical graph.
func (g *Graph) AllPathsVia(t *testing.T, spoutIdx, counterIdx int) (int, error) {
	t.Helper()
	from := InstanceVertexID(topology.InstanceID{Component: "spout", Index: spoutIdx})
	to := InstanceVertexID(topology.InstanceID{Component: "counter", Index: counterIdx})
	paths, err := g.V(from).Out(EdgeStream).Out(EdgeStream).Paths()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, p := range paths {
		if p[len(p)-1] == to {
			n++
		}
	}
	return n, nil
}

func TestPhysicalStreamManagerPlumbing(t *testing.T) {
	top := paperTopology(t)
	plan, err := topology.RoundRobinPack(top, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildPhysical(top, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Both containers exchange data → transfer edges in both directions.
	transfers := 0
	for _, e := range g.Edges() {
		if e.Label == EdgeTransfer {
			transfers++
		}
	}
	if transfers != 2 {
		t.Errorf("transfer edges = %d, want 2", transfers)
	}
	// Every instance has exactly one emit edge if it has downstreams.
	for _, id := range top.Instances() {
		if id.Component == "counter" {
			continue // sink: no outgoing data
		}
		outs := g.OutNeighbors(InstanceVertexID(id), EdgeEmit)
		if len(outs) != 1 {
			t.Errorf("%s emit edges = %v", id, outs)
		}
	}
}

func TestBuildPhysicalSingleContainer(t *testing.T) {
	top := paperTopology(t)
	plan, err := topology.RoundRobinPack(top, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildPhysical(top, plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if e.Label == EdgeTransfer {
			t.Errorf("unexpected transfer edge in single-container plan")
		}
	}
}

func TestRemoteTransferFraction(t *testing.T) {
	top := paperTopology(t)
	one, _ := topology.RoundRobinPack(top, 1)
	frac := RemoteTransferFraction(top, one)
	for k, v := range frac {
		if v != 0 {
			t.Errorf("single container %s = %g, want 0", k, v)
		}
	}
	two, _ := topology.RoundRobinPack(top, 2)
	frac = RemoteTransferFraction(top, two)
	// With round-robin over 2 containers, each component's instances
	// alternate containers, so half the pairs are remote.
	for k, v := range frac {
		if v != 0.5 {
			t.Errorf("%s = %g, want 0.5", k, v)
		}
	}
}

func TestCacheHitAndInvalidate(t *testing.T) {
	top := paperTopology(t)
	plan, _ := topology.RoundRobinPack(top, 2)
	c := NewCache()
	l1, p1, err := c.Get(top, plan)
	if err != nil {
		t.Fatal(err)
	}
	l2, p2, err := c.Get(top, plan)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 || p1 != p2 {
		t.Error("second Get should return cached graphs")
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
	// Version bump invalidates.
	plan2 := *plan
	plan2.Version = 2
	l3, _, err := c.Get(top, &plan2)
	if err != nil {
		t.Fatal(err)
	}
	if l3 == l1 {
		t.Error("version bump should rebuild")
	}
	c.Invalidate(top.Name())
	l4, _, err := c.Get(top, &plan2)
	if err != nil {
		t.Fatal(err)
	}
	if l4 == l3 {
		t.Error("invalidate should force rebuild")
	}
}
