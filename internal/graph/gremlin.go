package graph

import (
	"fmt"
	"strconv"
	"strings"
)

// Query parses and executes a Gremlin-style traversal string against
// the graph — the textual interface TinkerPop exposes and Caladrius'
// original graph component is driven through. Example:
//
//	g.V().hasLabel('instance').has('component','splitter').out('stream').count()
//
// Supported steps:
//
//	V(id...)           start at all vertices or the given ids
//	hasLabel(l...)     keep vertices with one of the labels
//	has(key, value)    keep vertices whose property equals value
//	out(label...)      follow outgoing edges
//	in(label...)       follow incoming edges
//	dedup()            collapse duplicate positions
//	limit(n)           keep the first n traversers
//
// Terminal steps (default ids()):
//
//	ids()              vertex ids ([]string)
//	count()            number of traversers (int)
//	values(key)        property values ([]any)
//	path()             full vertex paths ([][]string)
//
// The leading "g." is optional. String arguments use single quotes
// (doubled to escape); numbers parse as int64/float64; true/false as
// booleans.
func (g *Graph) Query(q string) (any, error) {
	calls, err := parseGremlin(q)
	if err != nil {
		return nil, err
	}
	if len(calls) == 0 {
		return nil, fmt.Errorf("graph: empty query")
	}
	if calls[0].name != "V" {
		return nil, fmt.Errorf("graph: query must start with V(), got %s()", calls[0].name)
	}
	ids, err := stringArgs(calls[0])
	if err != nil {
		return nil, err
	}
	t := g.V(ids...)
	for i, call := range calls[1:] {
		terminal := i == len(calls)-2
		switch call.name {
		case "hasLabel":
			labels, err := stringArgs(call)
			if err != nil {
				return nil, err
			}
			if len(labels) == 0 {
				return nil, fmt.Errorf("graph: hasLabel needs at least one label")
			}
			t = t.HasLabel(labels...)
		case "has":
			if len(call.args) != 2 {
				return nil, fmt.Errorf("graph: has(key, value) takes 2 args, got %d", len(call.args))
			}
			key, ok := call.args[0].(string)
			if !ok {
				return nil, fmt.Errorf("graph: has key must be a string")
			}
			t = t.Has(key, call.args[1])
		case "out":
			labels, err := stringArgs(call)
			if err != nil {
				return nil, err
			}
			t = t.Out(labels...)
		case "in":
			labels, err := stringArgs(call)
			if err != nil {
				return nil, err
			}
			t = t.In(labels...)
		case "dedup":
			if len(call.args) != 0 {
				return nil, fmt.Errorf("graph: dedup takes no args")
			}
			t = t.Dedup()
		case "limit":
			if len(call.args) != 1 {
				return nil, fmt.Errorf("graph: limit(n) takes 1 arg")
			}
			n, ok := call.args[0].(int64)
			if !ok || n < 0 {
				return nil, fmt.Errorf("graph: limit arg must be a non-negative integer")
			}
			t = t.Limit(int(n))
		case "ids":
			if !terminal {
				return nil, fmt.Errorf("graph: ids() must be the final step")
			}
			return t.IDs()
		case "count":
			if !terminal {
				return nil, fmt.Errorf("graph: count() must be the final step")
			}
			return t.Count()
		case "values":
			if !terminal {
				return nil, fmt.Errorf("graph: values() must be the final step")
			}
			if len(call.args) != 1 {
				return nil, fmt.Errorf("graph: values(key) takes 1 arg")
			}
			key, ok := call.args[0].(string)
			if !ok {
				return nil, fmt.Errorf("graph: values key must be a string")
			}
			return t.Values(key)
		case "path":
			if !terminal {
				return nil, fmt.Errorf("graph: path() must be the final step")
			}
			return t.Paths()
		default:
			return nil, fmt.Errorf("graph: unknown step %q", call.name)
		}
	}
	return t.IDs()
}

type gremlinCall struct {
	name string
	args []any
}

// parseGremlin splits "g.V().out('x')" into calls with typed args.
func parseGremlin(q string) ([]gremlinCall, error) {
	s := strings.TrimSpace(q)
	s = strings.TrimPrefix(s, "g.")
	var calls []gremlinCall
	i := 0
	for i < len(s) {
		// Step name.
		start := i
		for i < len(s) && s[i] != '(' {
			if s[i] == '.' || s[i] == ')' || s[i] == '\'' {
				return nil, fmt.Errorf("graph: unexpected %q at position %d", s[i], i)
			}
			i++
		}
		if i == len(s) {
			return nil, fmt.Errorf("graph: step %q missing parentheses", s[start:])
		}
		name := strings.TrimSpace(s[start:i])
		if name == "" {
			return nil, fmt.Errorf("graph: empty step name at position %d", start)
		}
		i++ // consume '('
		// Arguments up to the matching ')'.
		argStart := i
		depth := 1
		inStr := false
		for i < len(s) && depth > 0 {
			switch {
			case s[i] == '\'':
				// Doubled quote is an escape inside a string.
				if inStr && i+1 < len(s) && s[i+1] == '\'' {
					i++
				} else {
					inStr = !inStr
				}
			case inStr:
			case s[i] == '(':
				depth++
			case s[i] == ')':
				depth--
			}
			i++
		}
		if depth != 0 || inStr {
			return nil, fmt.Errorf("graph: unterminated step %s(", name)
		}
		args, err := parseGremlinArgs(s[argStart : i-1])
		if err != nil {
			return nil, fmt.Errorf("graph: step %s: %w", name, err)
		}
		calls = append(calls, gremlinCall{name: name, args: args})
		// Separator.
		if i < len(s) {
			if s[i] != '.' {
				return nil, fmt.Errorf("graph: expected '.' after %s(), got %q", name, s[i])
			}
			i++
		}
	}
	return calls, nil
}

func parseGremlinArgs(s string) ([]any, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var parts []string
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '\'':
			if inStr && i+1 < len(s) && s[i+1] == '\'' {
				i++
			} else {
				inStr = !inStr
			}
		case s[i] == ',' && !inStr:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	if inStr {
		return nil, fmt.Errorf("unterminated string")
	}
	parts = append(parts, s[start:])
	out := make([]any, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		switch {
		case len(p) >= 2 && p[0] == '\'' && p[len(p)-1] == '\'':
			out[i] = strings.ReplaceAll(p[1:len(p)-1], "''", "'")
		case p == "true":
			out[i] = true
		case p == "false":
			out[i] = false
		default:
			if n, err := strconv.ParseInt(p, 10, 64); err == nil {
				out[i] = n
			} else if f, err := strconv.ParseFloat(p, 64); err == nil {
				out[i] = f
			} else {
				return nil, fmt.Errorf("bad argument %q (strings use single quotes)", p)
			}
		}
	}
	return out, nil
}

func stringArgs(c gremlinCall) ([]string, error) {
	out := make([]string, len(c.args))
	for i, a := range c.args {
		s, ok := a.(string)
		if !ok {
			return nil, fmt.Errorf("graph: %s arg %d must be a string, got %T", c.name, i+1, a)
		}
		out[i] = s
	}
	return out, nil
}
