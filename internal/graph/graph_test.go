package graph

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func mustAddVertex(t *testing.T, g *Graph, id, label string, props Properties) {
	t.Helper()
	if err := g.AddVertex(id, label, props); err != nil {
		t.Fatal(err)
	}
}

func mustAddEdge(t *testing.T, g *Graph, from, to, label string) string {
	t.Helper()
	id, err := g.AddEdge(from, to, label, nil)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func chainGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	mustAddVertex(t, g, "a", "component", Properties{"name": "a"})
	mustAddVertex(t, g, "b", "component", Properties{"name": "b"})
	mustAddVertex(t, g, "c", "component", Properties{"name": "c"})
	mustAddEdge(t, g, "a", "b", "stream")
	mustAddEdge(t, g, "b", "c", "stream")
	return g
}

func TestAddAndLookup(t *testing.T) {
	g := chainGraph(t)
	if g.VertexCount() != 3 || g.EdgeCount() != 2 {
		t.Errorf("size = %d/%d", g.VertexCount(), g.EdgeCount())
	}
	v, err := g.Vertex("a")
	if err != nil {
		t.Fatal(err)
	}
	if v.Label != "component" || v.Props["name"] != "a" {
		t.Errorf("vertex = %+v", v)
	}
	// Returned vertex is a copy.
	v.Props["name"] = "tampered"
	again, _ := g.Vertex("a")
	if again.Props["name"] != "a" {
		t.Error("Vertex aliases internal properties")
	}
	if _, err := g.Vertex("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing vertex: %v", err)
	}
}

func TestDuplicateAndMissing(t *testing.T) {
	g := chainGraph(t)
	if err := g.AddVertex("a", "x", nil); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate vertex: %v", err)
	}
	if err := g.AddVertex("", "x", nil); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := g.AddEdge("a", "ghost", "e", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("edge to missing vertex: %v", err)
	}
	if _, err := g.AddEdge("ghost", "a", "e", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("edge from missing vertex: %v", err)
	}
}

func TestRemoveVertexCascades(t *testing.T) {
	g := chainGraph(t)
	if err := g.RemoveVertex("b"); err != nil {
		t.Fatal(err)
	}
	if g.VertexCount() != 2 || g.EdgeCount() != 0 {
		t.Errorf("after cascade: %d vertices, %d edges", g.VertexCount(), g.EdgeCount())
	}
	if err := g.RemoveVertex("b"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove: %v", err)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New()
	mustAddVertex(t, g, "a", "x", nil)
	mustAddVertex(t, g, "b", "x", nil)
	id := mustAddEdge(t, g, "a", "b", "e")
	if err := g.RemoveEdge(id); err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 0 {
		t.Error("edge not removed")
	}
	if len(g.OutNeighbors("a")) != 0 {
		t.Error("adjacency not cleaned")
	}
	if err := g.RemoveEdge(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove: %v", err)
	}
}

func TestNeighborsWithLabels(t *testing.T) {
	g := New()
	for _, id := range []string{"a", "b", "c"} {
		mustAddVertex(t, g, id, "x", nil)
	}
	mustAddEdge(t, g, "a", "b", "red")
	mustAddEdge(t, g, "a", "c", "blue")
	if got := g.OutNeighbors("a"); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Errorf("all = %v", got)
	}
	if got := g.OutNeighbors("a", "red"); !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("red = %v", got)
	}
	if got := g.InNeighbors("c", "blue"); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("in blue = %v", got)
	}
	if got := g.InNeighbors("a"); len(got) != 0 {
		t.Errorf("in of source = %v", got)
	}
}

func TestSetVertexProp(t *testing.T) {
	g := chainGraph(t)
	if err := g.SetVertexProp("a", "parallelism", 4); err != nil {
		t.Fatal(err)
	}
	v, _ := g.Vertex("a")
	if v.Props["parallelism"] != 4 {
		t.Errorf("prop = %v", v.Props["parallelism"])
	}
	if err := g.SetVertexProp("ghost", "k", 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing vertex: %v", err)
	}
}

func TestAllPaths(t *testing.T) {
	g := New()
	for _, id := range []string{"s", "a", "b", "t"} {
		mustAddVertex(t, g, id, "x", nil)
	}
	mustAddEdge(t, g, "s", "a", "e")
	mustAddEdge(t, g, "s", "b", "e")
	mustAddEdge(t, g, "a", "t", "e")
	mustAddEdge(t, g, "b", "t", "e")
	paths, err := g.AllPaths("s", "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"s", "a", "t"}, {"s", "b", "t"}}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("paths = %v", paths)
	}
	// Length bound cuts both (paths have 3 vertices).
	bounded, err := g.AllPaths("s", "t", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounded) != 0 {
		t.Errorf("bounded = %v", bounded)
	}
	if _, err := g.AllPaths("ghost", "t", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing from: %v", err)
	}
	if _, err := g.AllPaths("s", "ghost", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing to: %v", err)
	}
}

func TestAllPathsHandlesCycle(t *testing.T) {
	g := New()
	for _, id := range []string{"a", "b", "c"} {
		mustAddVertex(t, g, id, "x", nil)
	}
	mustAddEdge(t, g, "a", "b", "e")
	mustAddEdge(t, g, "b", "a", "e")
	mustAddEdge(t, g, "b", "c", "e")
	paths, err := g.AllPaths("a", "c", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(paths, [][]string{{"a", "b", "c"}}) {
		t.Errorf("paths = %v", paths)
	}
}

func TestTopoSort(t *testing.T) {
	g := chainGraph(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []string{"a", "b", "c"}) {
		t.Errorf("order = %v", order)
	}
	mustAddEdge(t, g, "c", "a", "back")
	if _, err := g.TopoSort(); err == nil {
		t.Error("cycle not detected")
	}
}

func TestTraversalSteps(t *testing.T) {
	g := New()
	mustAddVertex(t, g, "comp:spout", "component", Properties{"name": "spout", "kind": "spout"})
	mustAddVertex(t, g, "comp:splitter", "component", Properties{"name": "splitter", "kind": "bolt"})
	mustAddVertex(t, g, "comp:counter", "component", Properties{"name": "counter", "kind": "bolt"})
	mustAddEdge(t, g, "comp:spout", "comp:splitter", "stream")
	mustAddEdge(t, g, "comp:splitter", "comp:counter", "stream")

	ids, err := g.V().HasLabel("component").Has("kind", "bolt").IDs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"comp:counter", "comp:splitter"}) {
		t.Errorf("bolts = %v", ids)
	}

	names, err := g.V("comp:spout").Out("stream").Out("stream").Values("name")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []any{"counter"}) {
		t.Errorf("two hops = %v", names)
	}

	paths, err := g.V("comp:spout").Out().Out().Paths()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(paths, [][]string{{"comp:spout", "comp:splitter", "comp:counter"}}) {
		t.Errorf("paths = %v", paths)
	}

	back, err := g.V("comp:counter").In("stream").IDs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, []string{"comp:splitter"}) {
		t.Errorf("in = %v", back)
	}

	n, err := g.V().Count()
	if err != nil || n != 3 {
		t.Errorf("count = %d, %v", n, err)
	}

	if _, err := g.V("ghost").IDs(); !errors.Is(err, ErrNotFound) {
		t.Errorf("ghost start: %v", err)
	}
}

func TestTraversalDedupAndLimit(t *testing.T) {
	g := New()
	mustAddVertex(t, g, "a", "x", nil)
	mustAddVertex(t, g, "b", "x", nil)
	mustAddVertex(t, g, "t", "x", nil)
	mustAddEdge(t, g, "a", "t", "e")
	mustAddEdge(t, g, "b", "t", "e")
	ids, err := g.V("a", "b").Out().IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Errorf("pre-dedup = %v", ids)
	}
	ids, err = g.V("a", "b").Out().Dedup().IDs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"t"}) {
		t.Errorf("dedup = %v", ids)
	}
	ids, err = g.V().Limit(2).IDs()
	if err != nil || len(ids) != 2 {
		t.Errorf("limit = %v, %v", ids, err)
	}
}

func TestEdgesSnapshot(t *testing.T) {
	g := chainGraph(t)
	es := g.Edges()
	if len(es) != 2 || es[0].From != "a" {
		t.Errorf("edges = %+v", es)
	}
	es[0].From = "tampered"
	if g.Edges()[0].From != "a" {
		t.Error("Edges aliases internal state")
	}
}

func TestConcurrentUse(t *testing.T) {
	g := New()
	mustAddVertex(t, g, "root", "x", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := string(rune('a'+w)) + "-" + string(rune('0'+i%10))
				g.AddVertex(id, "x", nil) //nolint:errcheck
				g.AddEdge("root", id, "e", nil)
				g.V().HasLabel("x").Count() //nolint:errcheck
				g.OutNeighbors("root")
			}
		}(w)
	}
	wg.Wait()
	if g.VertexCount() != 1+8*10 {
		t.Errorf("vertices = %d", g.VertexCount())
	}
}

func TestQuickTopoSortRespectsEdges(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := New()
		n := 2 + r.Intn(15)
		ids := make([]string, n)
		for i := range ids {
			ids[i] = string(rune('a' + i))
			if err := g.AddVertex(ids[i], "x", nil); err != nil {
				return false
			}
		}
		// Random DAG: edges only forward in index order.
		type pair struct{ f, t int }
		var edges []pair
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 {
					if _, err := g.AddEdge(ids[i], ids[j], "e", nil); err != nil {
						return false
					}
					edges = append(edges, pair{i, j})
				}
			}
		}
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := map[string]int{}
		for i, id := range order {
			pos[id] = i
		}
		for _, e := range edges {
			if pos[ids[e.f]] >= pos[ids[e.t]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
