package graph

import (
	"reflect"
	"testing"

	"caladrius/internal/topology"
)

func gremlinGraph(t *testing.T) *Graph {
	t.Helper()
	top, err := topology.NewBuilder("word-count").
		AddSpout("spout", 2).
		AddBolt("splitter", 2).
		AddBolt("counter", 4).
		Connect("spout", "splitter", topology.ShuffleGrouping).
		Connect("splitter", "counter", topology.FieldsGrouping, "word").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := topology.RoundRobinPack(top, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildPhysical(top, plan)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGremlinQueries(t *testing.T) {
	g := gremlinGraph(t)
	cases := []struct {
		q    string
		want any
	}{
		{"g.V().count()", 10}, // 8 instances + 2 stream managers
		{"g.V().hasLabel('stmgr').count()", 2},
		{"g.V().hasLabel('instance').has('component','splitter').count()", 2},
		{"V().hasLabel('instance').has('component','spout').out('stream').dedup().count()", 2},
		{"g.V('inst:spout[0]').out('stream').out('stream').count()", 8}, // 2 splitters × 4 counters
		{"g.V('inst:spout[0]').out('stream').out('stream').dedup().count()", 4},
		{"g.V().hasLabel('instance').has('component','counter').has('index',0).ids()", []string{"inst:counter[0]"}},
		{"g.V().hasLabel('stmgr').values('container')", []any{0, 1}},
		{"g.V().hasLabel('instance').limit(3).count()", 3},
	}
	for _, c := range cases {
		got, err := g.Query(c.q)
		if err != nil {
			t.Errorf("Query(%q): %v", c.q, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Query(%q) = %#v, want %#v", c.q, got, c.want)
		}
	}
}

func TestGremlinPaths(t *testing.T) {
	g := gremlinGraph(t)
	got, err := g.Query("g.V('inst:spout[0]').out('stream').path()")
	if err != nil {
		t.Fatal(err)
	}
	paths, ok := got.([][]string)
	if !ok || len(paths) != 2 {
		t.Fatalf("paths = %#v", got)
	}
	for _, p := range paths {
		if len(p) != 2 || p[0] != "inst:spout[0]" {
			t.Errorf("path = %v", p)
		}
	}
}

func TestGremlinDefaultTerminal(t *testing.T) {
	g := gremlinGraph(t)
	got, err := g.Query("g.V().hasLabel('stmgr')")
	if err != nil {
		t.Fatal(err)
	}
	ids, ok := got.([]string)
	if !ok || len(ids) != 2 {
		t.Fatalf("default terminal = %#v", got)
	}
}

func TestGremlinStringEscapes(t *testing.T) {
	g := New()
	if err := g.AddVertex("v", "x", Properties{"name": "it's"}); err != nil {
		t.Fatal(err)
	}
	got, err := g.Query("g.V().has('name','it''s').count()")
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("escaped match = %v", got)
	}
}

func TestGremlinErrors(t *testing.T) {
	g := gremlinGraph(t)
	bad := []string{
		"",
		"out('stream')",               // must start with V
		"g.V().bogus()",               // unknown step
		"g.V().count().out('stream')", // terminal not last
		"g.V().has('only-one-arg')",   // has arity
		"g.V().hasLabel()",            // empty hasLabel
		"g.V().limit('x')",            // bad limit arg
		"g.V().limit(-1)",             // negative limit
		"g.V().values()",              // values arity
		"g.V().out('unterminated",     // unterminated string/paren
		"g.V().out('a')extra",         // junk between steps
		"g.V",                         // missing parens
		"g.V().hasLabel(5)",           // non-string label
		"g.V().has('k', unquoted)",    // bad literal
		"g.V('ghost').count()",        // unknown start vertex
		"g.V().dedup(1)",              // dedup arity
	}
	for _, q := range bad {
		if _, err := g.Query(q); err == nil {
			t.Errorf("Query(%q): expected error", q)
		}
	}
}

func TestGremlinNumericAndBoolArgs(t *testing.T) {
	g := New()
	if err := g.AddVertex("a", "x", Properties{"n": int64(5), "ok": true, "f": 2.5}); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"g.V().has('n',5).count()",
		"g.V().has('ok',true).count()",
		"g.V().has('f',2.5).count()",
	} {
		got, err := g.Query(q)
		if err != nil {
			t.Fatalf("Query(%q): %v", q, err)
		}
		if got != 1 {
			t.Errorf("Query(%q) = %v, want 1", q, got)
		}
	}
}
