package graph

import (
	"fmt"
	"sort"
)

// Traversal is a fluent, lazily-evaluated query over a Graph, modelled
// on the Gremlin steps Caladrius uses. Build a pipeline with the step
// methods, then terminate with IDs, Vertices, Values, Paths or Count.
//
//	g.V().HasLabel("instance").Has("component", "splitter").
//	    Out("stream").IDs()
//
// Traversals hold a read snapshot per terminal call; steps themselves
// only record the plan.
type Traversal struct {
	g     *Graph
	steps []step
}

type traverser struct {
	id   string   // current vertex ID
	path []string // visited vertex IDs including current
}

type step func([]traverser) ([]traverser, error)

// V starts a traversal at all vertices, or at the given IDs.
func (g *Graph) V(ids ...string) *Traversal {
	t := &Traversal{g: g}
	t.steps = append(t.steps, func(_ []traverser) ([]traverser, error) {
		g.mu.RLock()
		defer g.mu.RUnlock()
		var start []string
		if len(ids) > 0 {
			for _, id := range ids {
				if _, ok := g.vertices[id]; !ok {
					return nil, fmt.Errorf("%w: vertex %q", ErrNotFound, id)
				}
				start = append(start, id)
			}
		} else {
			for id := range g.vertices {
				start = append(start, id)
			}
			sort.Strings(start)
		}
		out := make([]traverser, len(start))
		for i, id := range start {
			out[i] = traverser{id: id, path: []string{id}}
		}
		return out, nil
	})
	return t
}

func (t *Traversal) add(s step) *Traversal {
	t.steps = append(t.steps, s)
	return t
}

// HasLabel keeps vertices whose label is one of the given labels.
func (t *Traversal) HasLabel(labels ...string) *Traversal {
	return t.add(func(in []traverser) ([]traverser, error) {
		t.g.mu.RLock()
		defer t.g.mu.RUnlock()
		var out []traverser
		for _, tr := range in {
			if v, ok := t.g.vertices[tr.id]; ok && containsString(labels, v.Label) {
				out = append(out, tr)
			}
		}
		return out, nil
	})
}

// Has keeps vertices whose property key equals value. Numeric values
// compare across Go integer and float types (a property stored as int
// matches an int64 or float64 query argument).
func (t *Traversal) Has(key string, value any) *Traversal {
	return t.add(func(in []traverser) ([]traverser, error) {
		t.g.mu.RLock()
		defer t.g.mu.RUnlock()
		var out []traverser
		for _, tr := range in {
			if v, ok := t.g.vertices[tr.id]; ok && propEqual(v.Props[key], value) {
				out = append(out, tr)
			}
		}
		return out, nil
	})
}

// propEqual compares property values, treating all numeric types as
// one domain.
func propEqual(a, b any) bool {
	if a == b {
		return true
	}
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	return aok && bok && af == bf
}

func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case int:
		return float64(n), true
	case int8:
		return float64(n), true
	case int16:
		return float64(n), true
	case int32:
		return float64(n), true
	case int64:
		return float64(n), true
	case uint:
		return float64(n), true
	case uint64:
		return float64(n), true
	case float32:
		return float64(n), true
	case float64:
		return n, true
	default:
		return 0, false
	}
}

// Out moves each traverser across outgoing edges (optionally filtered
// by edge label), branching when several edges apply.
func (t *Traversal) Out(edgeLabels ...string) *Traversal {
	return t.move(edgeLabels, true)
}

// In moves each traverser across incoming edges.
func (t *Traversal) In(edgeLabels ...string) *Traversal {
	return t.move(edgeLabels, false)
}

func (t *Traversal) move(edgeLabels []string, outward bool) *Traversal {
	return t.add(func(in []traverser) ([]traverser, error) {
		t.g.mu.RLock()
		defer t.g.mu.RUnlock()
		var out []traverser
		for _, tr := range in {
			var next []string
			if outward {
				next = t.g.neighborsLocked(tr.id, t.g.out, func(e *Edge) string { return e.To }, edgeLabels)
			} else {
				next = t.g.neighborsLocked(tr.id, t.g.in, func(e *Edge) string { return e.From }, edgeLabels)
			}
			for _, n := range next {
				np := append(append([]string(nil), tr.path...), n)
				out = append(out, traverser{id: n, path: np})
			}
		}
		return out, nil
	})
}

// Dedup collapses traversers that sit on the same vertex, keeping the
// first (deterministic because upstream steps are ordered).
func (t *Traversal) Dedup() *Traversal {
	return t.add(func(in []traverser) ([]traverser, error) {
		seen := map[string]bool{}
		var out []traverser
		for _, tr := range in {
			if !seen[tr.id] {
				seen[tr.id] = true
				out = append(out, tr)
			}
		}
		return out, nil
	})
}

// Limit keeps at most n traversers.
func (t *Traversal) Limit(n int) *Traversal {
	return t.add(func(in []traverser) ([]traverser, error) {
		if n < len(in) {
			in = in[:n]
		}
		return in, nil
	})
}

func (t *Traversal) run() ([]traverser, error) {
	var cur []traverser
	for _, s := range t.steps {
		var err error
		cur, err = s(cur)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// IDs terminates the traversal with the current vertex IDs, in
// traversal order.
func (t *Traversal) IDs() ([]string, error) {
	cur, err := t.run()
	if err != nil {
		return nil, err
	}
	out := make([]string, len(cur))
	for i, tr := range cur {
		out[i] = tr.id
	}
	return out, nil
}

// Vertices terminates with copies of the current vertices.
func (t *Traversal) Vertices() ([]Vertex, error) {
	ids, err := t.IDs()
	if err != nil {
		return nil, err
	}
	out := make([]Vertex, 0, len(ids))
	for _, id := range ids {
		v, err := t.g.Vertex(id)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Values terminates with the named property of each current vertex,
// skipping vertices without it.
func (t *Traversal) Values(key string) ([]any, error) {
	vs, err := t.Vertices()
	if err != nil {
		return nil, err
	}
	var out []any
	for _, v := range vs {
		if val, ok := v.Props[key]; ok {
			out = append(out, val)
		}
	}
	return out, nil
}

// Paths terminates with the full vertex path of each traverser.
func (t *Traversal) Paths() ([][]string, error) {
	cur, err := t.run()
	if err != nil {
		return nil, err
	}
	out := make([][]string, len(cur))
	for i, tr := range cur {
		out[i] = append([]string(nil), tr.path...)
	}
	return out, nil
}

// Count terminates with the number of traversers.
func (t *Traversal) Count() (int, error) {
	cur, err := t.run()
	if err != nil {
		return 0, err
	}
	return len(cur), nil
}
