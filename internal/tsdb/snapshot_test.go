package tsdb

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func populated(t *testing.T) *DB {
	t.Helper()
	db := New(0)
	for i := 0; i < 30; i++ {
		db.Append("execute-count", Labels{"component": "splitter", "instance": "0"}, minuteAt(i), float64(i*10))
		db.Append("execute-count", Labels{"component": "splitter", "instance": "1"}, minuteAt(i), float64(i*11))
		db.Append("cpu-load", Labels{"component": "counter"}, minuteAt(i), 0.5+float64(i)/100)
	}
	return db
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := populated(t)
	var buf bytes.Buffer
	if err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalPoints() != db.TotalPoints() {
		t.Fatalf("points = %d, want %d", back.TotalPoints(), db.TotalPoints())
	}
	orig, err := db.Query("execute-count", nil, minuteAt(0), minuteAt(100))
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Query("execute-count", nil, minuteAt(0), minuteAt(100))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Error("round-tripped series differ")
	}
	if !reflect.DeepEqual(db.Metrics(), back.Metrics()) {
		t.Errorf("metrics = %v vs %v", back.Metrics(), db.Metrics())
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	db := populated(t)
	var a, b bytes.Buffer
	if err := db.WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := db.WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("snapshots of the same DB differ")
	}
}

func TestSnapshotPreservesRetention(t *testing.T) {
	db := New(42 * time.Minute)
	db.Append("m", nil, minuteAt(0), 1)
	var buf bytes.Buffer
	if err := db.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.retention != 42*time.Minute {
		t.Errorf("retention = %s", back.retention)
	}
}

func TestSnapshotErrors(t *testing.T) {
	cases := []string{
		"",                                      // empty
		"not json\n",                            // garbage
		`{"format":"other","version":1}` + "\n", // wrong format
		`{"format":"caladrius-tsdb","version":9}` + "\n",                   // wrong version
		`{"format":"caladrius-tsdb","version":1,"series":2}` + "\n" + `{}`, // truncated + empty metric
	}
	for _, src := range cases {
		if _, err := ReadSnapshot(strings.NewReader(src)); err == nil {
			t.Errorf("snapshot %q accepted", src)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	db := populated(t)
	path := filepath.Join(t.TempDir(), "metrics.tsdb")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalPoints() != db.TotalPoints() {
		t.Errorf("points = %d", back.TotalPoints())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestQuickSnapshotRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := New(0)
		metrics := []string{"a", "b", "metric with spaces", "ünïcode"}
		for i := 0; i < 100; i++ {
			labels := Labels{}
			if r.Intn(2) == 0 {
				labels["instance"] = string(rune('0' + r.Intn(5)))
			}
			if r.Intn(3) == 0 {
				labels["weird key"] = `va"lue`
			}
			db.Append(metrics[r.Intn(len(metrics))], labels, t0.Add(time.Duration(r.Intn(10000))*time.Second), r.NormFloat64()*1e6)
		}
		var buf bytes.Buffer
		if err := db.WriteSnapshot(&buf); err != nil {
			return false
		}
		back, err := ReadSnapshot(&buf)
		if err != nil {
			return false
		}
		if back.TotalPoints() != db.TotalPoints() {
			return false
		}
		for _, m := range db.Metrics() {
			a, err1 := db.Query(m, nil, t0, t0.Add(100000*time.Second))
			b, err2 := back.Query(m, nil, t0, t0.Add(100000*time.Second))
			if err1 != nil || err2 != nil || !reflect.DeepEqual(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
