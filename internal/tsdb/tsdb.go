// Package tsdb implements the in-memory time-series metrics database
// Caladrius reads topology metrics from. It stands in for Twitter's
// Cuckoo service and the Heron MetricsCache described in the paper:
// series are identified by a metric name plus a label set (topology,
// component, instance, container, ...), points are stored at arbitrary
// timestamps, and queries support label matching, time ranges,
// cross-series aggregation and downsampling into fixed-width buckets
// (the paper's models consume per-minute series).
//
// The store is safe for concurrent use.
package tsdb

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrNoData is returned by queries that match no points.
var ErrNoData = errors.New("tsdb: no data points match the query")

// Labels is a set of key/value identifiers attached to a series.
// Conventional keys used throughout Caladrius:
//
//	topology, component, instance, container, stream
type Labels map[string]string

// canonical renders labels in deterministic order for use as a map key.
func (l Labels) canonical() string {
	if len(l) == 0 {
		return ""
	}
	// Label sets are tiny (node/instance/component — rarely past four
	// keys), so a fixed stack buffer plus insertion sort beats the
	// allocate-sort-build path on the Append hot path; the sized Grow
	// leaves the builder's single buffer as the only allocation.
	var buf [8]string
	keys := buf[:0]
	if len(l) > len(buf) {
		keys = make([]string, 0, len(l))
	}
	size := 2*len(l) - 1 // one '=' per pair, ',' between pairs
	for k, v := range l {
		keys = append(keys, k)
		size += len(k) + len(v)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	b.Grow(size)
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(l[k])
	}
	return b.String()
}

// Clone returns an independent copy of l.
func (l Labels) Clone() Labels {
	c := make(Labels, len(l))
	for k, v := range l {
		c[k] = v
	}
	return c
}

// Matches reports whether every key in sel is present in l with an
// equal value. An empty selector matches everything.
func (l Labels) Matches(sel Labels) bool {
	for k, v := range sel {
		if l[k] != v {
			return false
		}
	}
	return true
}

// Point is a single observation.
type Point struct {
	T time.Time
	V float64
}

// Series is an ordered sequence of points with its identity.
type Series struct {
	Metric string
	Labels Labels
	Points []Point
}

type seriesData struct {
	labels Labels
	points []Point // sorted by T ascending
}

// DB is the in-memory time-series store.
type DB struct {
	mu        sync.RWMutex
	metrics   map[string]map[string]*seriesData // metric -> canonical labels -> data
	retention time.Duration                     // 0 = keep forever
}

// New creates an empty store. retention ≤ 0 keeps points forever;
// otherwise GC (called implicitly on writes) drops points older than
// retention relative to the newest point in their series.
func New(retention time.Duration) *DB {
	return &DB{
		metrics:   make(map[string]map[string]*seriesData),
		retention: retention,
	}
}

// SetRetention changes the retention window. d ≤ 0 keeps points
// forever. Existing points are pruned lazily by subsequent writes to
// their series, like any retention expiry.
func (db *DB) SetRetention(d time.Duration) {
	db.mu.Lock()
	db.retention = d
	db.mu.Unlock()
}

// Append records one observation.
func (db *DB) Append(metric string, labels Labels, t time.Time, v float64) {
	if metric == "" {
		panic("tsdb: empty metric name")
	}
	key := labels.canonical()
	db.mu.Lock()
	defer db.mu.Unlock()
	db.appendLocked(db.seriesLocked(metric, key, labels), t, v)
}

// seriesLocked returns (creating if needed) the series of metric with
// the given pre-canonicalised label key. Caller holds db.mu.
func (db *DB) seriesLocked(metric, key string, labels Labels) *seriesData {
	bySeries, ok := db.metrics[metric]
	if !ok {
		bySeries = make(map[string]*seriesData)
		db.metrics[metric] = bySeries
	}
	sd, ok := bySeries[key]
	if !ok {
		sd = &seriesData{labels: labels.Clone()}
		bySeries[key] = sd
	}
	return sd
}

// appendLocked inserts one point into sd and applies retention. Caller
// holds db.mu.
func (db *DB) appendLocked(sd *seriesData, t time.Time, v float64) {
	n := len(sd.points)
	if n > 0 && t.Before(sd.points[n-1].T) {
		// Out-of-order write: insert at the right place (rare path).
		idx := sort.Search(n, func(i int) bool { return sd.points[i].T.After(t) })
		sd.points = append(sd.points, Point{})
		copy(sd.points[idx+1:], sd.points[idx:])
		sd.points[idx] = Point{T: t, V: v}
	} else {
		sd.points = append(sd.points, Point{T: t, V: v})
	}
	if db.retention > 0 {
		cutoff := sd.points[len(sd.points)-1].T.Add(-db.retention)
		firstKeep := sort.Search(len(sd.points), func(i int) bool { return !sd.points[i].T.Before(cutoff) })
		if firstKeep > 0 {
			sd.points = append(sd.points[:0], sd.points[firstKeep:]...)
		}
	}
}

// AppendSeries bulk-appends a slice of points to one series.
func (db *DB) AppendSeries(metric string, labels Labels, pts []Point) {
	for _, p := range pts {
		db.Append(metric, labels, p.T, p.V)
	}
}

// SeriesHandle is an interned reference to one series. Append through
// a handle skips the per-call label canonicalisation DB.Append pays,
// and after the first point skips the metric/series map lookups too —
// the hot-path write API for producers (like the simulator) that emit
// into a fixed set of series every window.
//
// Handles are safe for concurrent use. A handle holds its own copy of
// the labels, so callers may mutate the map passed to Handle. After
// DropMetric, an already-bound handle keeps appending into the
// detached series (invisible to queries); re-intern with Handle to
// write into the recreated metric.
type SeriesHandle struct {
	db     *DB
	metric string
	key    string
	labels Labels
	sd     *seriesData // bound lazily on first Append, under db.mu
}

// Handle interns a series reference. The series itself is not created
// until the first Append, so querying behaviour (Metrics, SeriesCount,
// LabelValues) is unchanged for handles that never write.
func (db *DB) Handle(metric string, labels Labels) *SeriesHandle {
	if metric == "" {
		panic("tsdb: empty metric name")
	}
	return &SeriesHandle{db: db, metric: metric, key: labels.canonical(), labels: labels.Clone()}
}

// Append records one observation into the interned series.
func (h *SeriesHandle) Append(t time.Time, v float64) {
	h.db.mu.Lock()
	if h.sd == nil {
		h.sd = h.db.seriesLocked(h.metric, h.key, h.labels)
	}
	h.db.appendLocked(h.sd, t, v)
	h.db.mu.Unlock()
}

// BatchSample is one observation in an AppendBatch call, addressed by
// an interned SeriesHandle.
type BatchSample struct {
	H *SeriesHandle
	T time.Time
	V float64
}

// AppendBatch records every sample under a single lock acquisition —
// the bulk write API for producers that emit many series at one
// instant (the telemetry scraper flushes a whole registry walk this
// way). Compared to per-sample Append this pays one writer-lock
// round-trip instead of len(samples), so concurrent readers see one
// short exclusive section rather than hundreds of lock convoys. Every
// handle must have been interned from this DB; a foreign handle
// panics.
func (db *DB) AppendBatch(samples []BatchSample) {
	if len(samples) == 0 {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for i := range samples {
		h := samples[i].H
		if h.db != db {
			panic("tsdb: AppendBatch with a handle from a different DB")
		}
		if h.sd == nil {
			h.sd = db.seriesLocked(h.metric, h.key, h.labels)
		}
		db.appendLocked(h.sd, samples[i].T, samples[i].V)
	}
}

// Metrics returns the sorted list of metric names present.
func (db *DB) Metrics() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.metrics))
	for m := range db.metrics {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// SeriesCount returns the number of distinct series stored for metric.
func (db *DB) SeriesCount(metric string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.metrics[metric])
}

// Query returns all series of the metric matching the selector,
// restricted to points with start ≤ t < end. Series and their points
// are copies; callers may mutate them freely. Series are returned in
// deterministic (canonical label) order.
func (db *DB) Query(metric string, sel Labels, start, end time.Time) ([]Series, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	bySeries := db.metrics[metric]
	if len(bySeries) == 0 {
		return nil, fmt.Errorf("%w: metric %q", ErrNoData, metric)
	}
	keys := make([]string, 0, len(bySeries))
	for k, sd := range bySeries {
		if sd.labels.Matches(sel) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var out []Series
	for _, k := range keys {
		sd := bySeries[k]
		lo := sort.Search(len(sd.points), func(i int) bool { return !sd.points[i].T.Before(start) })
		hi := sort.Search(len(sd.points), func(i int) bool { return !sd.points[i].T.Before(end) })
		if lo >= hi {
			continue
		}
		s := Series{
			Metric: metric,
			Labels: sd.labels.Clone(),
			Points: append([]Point(nil), sd.points[lo:hi]...),
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: metric %q selector %v in [%s, %s)", ErrNoData, metric, sel, start, end)
	}
	return out, nil
}

// Agg names a cross-point aggregation function.
type Agg string

// Supported aggregations.
const (
	AggSum    Agg = "sum"
	AggMean   Agg = "mean"
	AggMin    Agg = "min"
	AggMax    Agg = "max"
	AggCount  Agg = "count"
	AggMedian Agg = "median"
	AggLast   Agg = "last"
)

func aggregate(agg Agg, vs []float64) (float64, error) {
	if len(vs) == 0 {
		return 0, ErrNoData
	}
	switch agg {
	case AggSum:
		var s float64
		for _, v := range vs {
			s += v
		}
		return s, nil
	case AggMean:
		var s float64
		for _, v := range vs {
			s += v
		}
		return s / float64(len(vs)), nil
	case AggMin:
		m := vs[0]
		for _, v := range vs[1:] {
			if v < m {
				m = v
			}
		}
		return m, nil
	case AggMax:
		m := vs[0]
		for _, v := range vs[1:] {
			if v > m {
				m = v
			}
		}
		return m, nil
	case AggCount:
		return float64(len(vs)), nil
	case AggMedian:
		cp := append([]float64(nil), vs...)
		sort.Float64s(cp)
		n := len(cp)
		if n%2 == 1 {
			return cp[n/2], nil
		}
		return (cp[n/2-1] + cp[n/2]) / 2, nil
	case AggLast:
		return vs[len(vs)-1], nil
	default:
		return 0, fmt.Errorf("tsdb: unknown aggregation %q", agg)
	}
}

// Aggregate reduces every matching point in the range to one value.
func (db *DB) Aggregate(metric string, sel Labels, start, end time.Time, agg Agg) (float64, error) {
	series, err := db.Query(metric, sel, start, end)
	if err != nil {
		return 0, err
	}
	var vs []float64
	for _, s := range series {
		for _, p := range s.Points {
			vs = append(vs, p.V)
		}
	}
	return aggregate(agg, vs)
}

// Downsample buckets each matching series into fixed-width windows
// aligned to the Unix epoch and reduces each bucket with bucketAgg,
// then merges series point-wise with mergeAgg (use AggSum to combine
// instances into a component). Buckets with no points are omitted.
// The returned series has one point per non-empty bucket, stamped at
// the bucket start, in ascending time order.
func (db *DB) Downsample(metric string, sel Labels, start, end time.Time, step time.Duration, bucketAgg, mergeAgg Agg) (Series, error) {
	if step <= 0 {
		return Series{}, fmt.Errorf("tsdb: non-positive step %s", step)
	}
	series, err := db.Query(metric, sel, start, end)
	if err != nil {
		return Series{}, err
	}
	type bucketKey int64
	perSeries := make([]map[bucketKey]float64, len(series))
	for i, s := range series {
		buckets := make(map[bucketKey][]float64)
		for _, p := range s.Points {
			b := bucketKey(p.T.UnixNano() / int64(step))
			buckets[b] = append(buckets[b], p.V)
		}
		reduced := make(map[bucketKey]float64, len(buckets))
		for b, vs := range buckets {
			v, err := aggregate(bucketAgg, vs)
			if err != nil {
				return Series{}, err
			}
			reduced[b] = v
		}
		perSeries[i] = reduced
	}
	merged := make(map[bucketKey][]float64)
	for _, m := range perSeries {
		for b, v := range m {
			merged[b] = append(merged[b], v)
		}
	}
	keys := make([]bucketKey, 0, len(merged))
	for b := range merged {
		keys = append(keys, b)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := Series{Metric: metric, Labels: sel.Clone()}
	for _, b := range keys {
		v, err := aggregate(mergeAgg, merged[b])
		if err != nil {
			return Series{}, err
		}
		out.Points = append(out.Points, Point{T: time.Unix(0, int64(b)*int64(step)).UTC(), V: v})
	}
	return out, nil
}

// Latest returns the most recent point across all series matching the
// selector.
func (db *DB) Latest(metric string, sel Labels) (Point, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	best := Point{T: time.Time{}, V: math.NaN()}
	found := false
	for _, sd := range db.metrics[metric] {
		if !sd.labels.Matches(sel) || len(sd.points) == 0 {
			continue
		}
		p := sd.points[len(sd.points)-1]
		if !found || p.T.After(best.T) {
			best = p
			found = true
		}
	}
	if !found {
		return Point{}, fmt.Errorf("%w: metric %q selector %v", ErrNoData, metric, sel)
	}
	return best, nil
}

// LabelValues returns the sorted distinct values of the given label key
// across all series of the metric.
func (db *DB) LabelValues(metric, key string) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	set := map[string]struct{}{}
	for _, sd := range db.metrics[metric] {
		if v, ok := sd.labels[key]; ok {
			set[v] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// DropMetric removes all series of a metric. It reports whether the
// metric existed.
func (db *DB) DropMetric(metric string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, ok := db.metrics[metric]
	delete(db.metrics, metric)
	return ok
}

// TotalPoints returns the total number of stored points, for tests and
// capacity monitoring.
func (db *DB) TotalPoints() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var n int
	for _, bySeries := range db.metrics {
		for _, sd := range bySeries {
			n += len(sd.points)
		}
	}
	return n
}
