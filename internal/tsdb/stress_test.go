package tsdb

import (
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestConcurrentAppendQueryDownsample is the race-detector stress for
// the store: writers via Append, SeriesHandle.Append and AppendBatch;
// readers via Query, Downsample, Latest and TotalPoints; plus
// retention tightening and metric drops — all live at once. Iteration
// counts are bounded so the test stays fast under -race; the value is
// the interleaving coverage, not throughput.
func TestConcurrentAppendQueryDownsample(t *testing.T) {
	const (
		writers = 4
		readers = 4
		iters   = 400
	)
	db := New(time.Hour)
	base := time.Unix(1_700_000_000, 0)
	var wg sync.WaitGroup

	// Raw Append writers, one metric per writer plus one shared metric
	// so reads race against series creation and extension.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := "stress_metric_" + strconv.Itoa(w)
			for i := 0; i < iters; i++ {
				ts := base.Add(time.Duration(i) * time.Second)
				db.Append(own, Labels{"writer": strconv.Itoa(w)}, ts, float64(i))
				db.Append("stress_shared", Labels{"writer": strconv.Itoa(w)}, ts, float64(i))
			}
		}(w)
	}

	// Handle-based writer: the scraper's hot path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := db.Handle("stress_handle", Labels{"path": "handle"})
		for i := 0; i < iters; i++ {
			h.Append(base.Add(time.Duration(i)*time.Second), float64(i))
		}
	}()

	// Batch writer: one lock round-trip per flush, as ScrapeOnce does.
	wg.Add(1)
	go func() {
		defer wg.Done()
		hs := make([]*SeriesHandle, 8)
		for i := range hs {
			hs[i] = db.Handle("stress_batch", Labels{"series": strconv.Itoa(i)})
		}
		batch := make([]BatchSample, 0, len(hs))
		for i := 0; i < iters/4; i++ {
			ts := base.Add(time.Duration(i) * time.Second)
			batch = batch[:0]
			for _, h := range hs {
				batch = append(batch, BatchSample{H: h, T: ts, V: float64(i)})
			}
			db.AppendBatch(batch)
		}
	}()

	// Readers exercise every query path against the moving store.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			end := base.Add(time.Duration(iters) * time.Second)
			for i := 0; i < iters; i++ {
				switch i % 5 {
				case 0:
					_, _ = db.Query("stress_shared", nil, base, end)
				case 1:
					_, _ = db.Downsample("stress_shared", nil, base, end, 30*time.Second, AggMax, AggSum)
				case 2:
					_, _ = db.Latest("stress_handle", nil)
				case 3:
					_ = db.TotalPoints()
				case 4:
					_, _ = db.Aggregate("stress_batch", nil, base, end, AggMean)
				}
			}
		}(r)
	}

	// Admin churn: retention tightening and metric drops force pruning
	// and map mutation under the readers' feet.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/10; i++ {
			db.SetRetention(time.Hour - time.Duration(i)*time.Second)
			db.DropMetric("stress_metric_0")
			_ = db.Metrics()
			_ = db.SeriesCount("stress_shared")
			_ = db.LabelValues("stress_shared", "writer")
		}
	}()

	wg.Wait()

	// Sanity after the storm: surviving metrics remain queryable and
	// internally consistent.
	if got := db.TotalPoints(); got == 0 {
		t.Fatal("store empty after concurrent writes")
	}
	series, err := db.Query("stress_shared", nil, base, base.Add(time.Duration(iters)*time.Second))
	if err != nil {
		t.Fatalf("post-stress query: %v", err)
	}
	if len(series) != writers {
		t.Fatalf("stress_shared has %d series, want %d", len(series), writers)
	}
	for _, s := range series {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].T.Before(s.Points[i-1].T) {
				t.Fatalf("series %v points out of order at %d", s.Labels, i)
			}
		}
	}
}

// TestAppendBatchLazyHandleBind covers AppendBatch resolving handles
// whose series do not exist yet, racing with a concurrent DropMetric
// of the same metric.
func TestAppendBatchLazyHandleBind(t *testing.T) {
	db := New(time.Hour)
	base := time.Unix(1_700_000_000, 0)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			h := db.Handle("lazy", Labels{"i": strconv.Itoa(i % 4)})
			db.AppendBatch([]BatchSample{{H: h, T: base.Add(time.Duration(i) * time.Second), V: 1}})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			db.DropMetric("lazy")
		}
	}()
	wg.Wait()
	if _, err := db.Latest("lazy", nil); err != nil {
		// A final drop may have won; re-append and confirm the store
		// still works.
		db.Append("lazy", nil, base, 1)
		if _, err := db.Latest("lazy", nil); err != nil {
			t.Fatalf("store unusable after drop/append race: %v", err)
		}
	}
}
