package tsdb

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

func minuteAt(i int) time.Time { return t0.Add(time.Duration(i) * time.Minute) }

func TestAppendAndQuery(t *testing.T) {
	db := New(0)
	labels := Labels{"topology": "wc", "component": "splitter", "instance": "0"}
	for i := 0; i < 10; i++ {
		db.Append("emit-count", labels, minuteAt(i), float64(i*100))
	}
	got, err := db.Query("emit-count", Labels{"component": "splitter"}, minuteAt(2), minuteAt(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("series = %d, want 1", len(got))
	}
	pts := got[0].Points
	if len(pts) != 3 || pts[0].V != 200 || pts[2].V != 400 {
		t.Errorf("points = %+v", pts)
	}
	// End bound is exclusive.
	for _, p := range pts {
		if !p.T.Before(minuteAt(5)) || p.T.Before(minuteAt(2)) {
			t.Errorf("point %v outside [2,5)", p.T)
		}
	}
}

func TestQueryCopiesAreIndependent(t *testing.T) {
	db := New(0)
	l := Labels{"instance": "0"}
	db.Append("m", l, minuteAt(0), 1)
	got, err := db.Query("m", nil, minuteAt(0), minuteAt(1))
	if err != nil {
		t.Fatal(err)
	}
	got[0].Points[0].V = 99
	got[0].Labels["instance"] = "tampered"
	again, err := db.Query("m", nil, minuteAt(0), minuteAt(1))
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Points[0].V != 1 || again[0].Labels["instance"] != "0" {
		t.Error("query results alias internal state")
	}
}

func TestQueryNoData(t *testing.T) {
	db := New(0)
	if _, err := db.Query("missing", nil, minuteAt(0), minuteAt(1)); !errors.Is(err, ErrNoData) {
		t.Errorf("missing metric: %v", err)
	}
	db.Append("m", Labels{"a": "1"}, minuteAt(0), 1)
	if _, err := db.Query("m", Labels{"a": "2"}, minuteAt(0), minuteAt(1)); !errors.Is(err, ErrNoData) {
		t.Errorf("non-matching selector: %v", err)
	}
	if _, err := db.Query("m", nil, minuteAt(5), minuteAt(6)); !errors.Is(err, ErrNoData) {
		t.Errorf("empty range: %v", err)
	}
}

func TestOutOfOrderAppend(t *testing.T) {
	db := New(0)
	l := Labels{"i": "0"}
	db.Append("m", l, minuteAt(5), 5)
	db.Append("m", l, minuteAt(1), 1)
	db.Append("m", l, minuteAt(3), 3)
	got, err := db.Query("m", nil, minuteAt(0), minuteAt(10))
	if err != nil {
		t.Fatal(err)
	}
	pts := got[0].Points
	for i := 1; i < len(pts); i++ {
		if pts[i].T.Before(pts[i-1].T) {
			t.Fatalf("points not sorted: %+v", pts)
		}
	}
	if pts[0].V != 1 || pts[1].V != 3 || pts[2].V != 5 {
		t.Errorf("points = %+v", pts)
	}
}

func TestRetention(t *testing.T) {
	db := New(10 * time.Minute)
	l := Labels{"i": "0"}
	for i := 0; i < 100; i++ {
		db.Append("m", l, minuteAt(i), float64(i))
	}
	got, err := db.Query("m", nil, minuteAt(0), minuteAt(200))
	if err != nil {
		t.Fatal(err)
	}
	pts := got[0].Points
	if len(pts) != 11 { // inclusive of the cutoff minute
		t.Fatalf("retained %d points, want 11: %+v", len(pts), pts)
	}
	if pts[0].V != 89 {
		t.Errorf("oldest retained = %g, want 89", pts[0].V)
	}
}

func TestSetRetention(t *testing.T) {
	db := New(0)
	l := Labels{"i": "0"}
	for i := 0; i < 100; i++ {
		db.Append("m", l, minuteAt(i), float64(i))
	}
	if got := db.TotalPoints(); got != 100 {
		t.Fatalf("points before retention = %d, want 100", got)
	}
	// Tightening retention prunes on the next write to the series —
	// the path cmd/caladrius takes after restoring a -history-file
	// snapshot saved under a different retention setting.
	db.SetRetention(10 * time.Minute)
	db.Append("m", l, minuteAt(100), 100)
	got, err := db.Query("m", nil, minuteAt(0), minuteAt(200))
	if err != nil {
		t.Fatal(err)
	}
	pts := got[0].Points
	if len(pts) != 11 {
		t.Fatalf("retained %d points, want 11", len(pts))
	}
	if pts[0].V != 90 {
		t.Errorf("oldest retained = %g, want 90", pts[0].V)
	}
	// Loosening back to forever stops further pruning.
	db.SetRetention(0)
	db.Append("m", l, minuteAt(101), 101)
	if got := db.TotalPoints(); got != 12 {
		t.Errorf("points after disabling retention = %d, want 12", got)
	}
}

func TestAggregations(t *testing.T) {
	db := New(0)
	for i, v := range []float64{1, 2, 3, 4, 5} {
		db.Append("m", Labels{"i": "0"}, minuteAt(i), v)
	}
	cases := []struct {
		agg  Agg
		want float64
	}{
		{AggSum, 15}, {AggMean, 3}, {AggMin, 1}, {AggMax, 5},
		{AggCount, 5}, {AggMedian, 3}, {AggLast, 5},
	}
	for _, c := range cases {
		got, err := db.Aggregate("m", nil, minuteAt(0), minuteAt(10), c.agg)
		if err != nil {
			t.Fatalf("%s: %v", c.agg, err)
		}
		if got != c.want {
			t.Errorf("%s = %g, want %g", c.agg, got, c.want)
		}
	}
	if _, err := db.Aggregate("m", nil, minuteAt(0), minuteAt(10), Agg("bogus")); err == nil {
		t.Error("unknown aggregation accepted")
	}
	// Even-length median interpolates.
	db2 := New(0)
	for i, v := range []float64{1, 2, 3, 4} {
		db2.Append("m", Labels{"i": "0"}, minuteAt(i), v)
	}
	got, err := db2.Aggregate("m", nil, minuteAt(0), minuteAt(10), AggMedian)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Errorf("even median = %g, want 2.5", got)
	}
}

func TestDownsampleMergesInstances(t *testing.T) {
	db := New(0)
	// Two instances emitting every 20s; bucket to 1 minute, sum within
	// a bucket per instance, then sum across instances.
	for i := 0; i < 6; i++ {
		ts := t0.Add(time.Duration(i*20) * time.Second)
		db.Append("emit-count", Labels{"component": "splitter", "instance": "0"}, ts, 10)
		db.Append("emit-count", Labels{"component": "splitter", "instance": "1"}, ts, 20)
	}
	s, err := db.Downsample("emit-count", Labels{"component": "splitter"}, t0, t0.Add(2*time.Minute), time.Minute, AggSum, AggSum)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 2 {
		t.Fatalf("buckets = %d, want 2: %+v", len(s.Points), s.Points)
	}
	// Each minute has 3 samples per instance: 3*10 + 3*20 = 90.
	for _, p := range s.Points {
		if p.V != 90 {
			t.Errorf("bucket %v = %g, want 90", p.T, p.V)
		}
	}
}

func TestDownsampleMeanMerge(t *testing.T) {
	db := New(0)
	db.Append("cpu", Labels{"instance": "0"}, minuteAt(0), 0.5)
	db.Append("cpu", Labels{"instance": "1"}, minuteAt(0), 1.5)
	s, err := db.Downsample("cpu", nil, minuteAt(0), minuteAt(1), time.Minute, AggMean, AggMean)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 1 || s.Points[0].V != 1.0 {
		t.Errorf("points = %+v, want single 1.0", s.Points)
	}
}

func TestDownsampleRejectsBadStep(t *testing.T) {
	db := New(0)
	db.Append("m", nil, minuteAt(0), 1)
	if _, err := db.Downsample("m", nil, minuteAt(0), minuteAt(1), 0, AggSum, AggSum); err == nil {
		t.Error("zero step accepted")
	}
}

func TestLatest(t *testing.T) {
	db := New(0)
	db.Append("m", Labels{"i": "0"}, minuteAt(1), 10)
	db.Append("m", Labels{"i": "1"}, minuteAt(3), 30)
	p, err := db.Latest("m", nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.V != 30 || !p.T.Equal(minuteAt(3)) {
		t.Errorf("latest = %+v", p)
	}
	if _, err := db.Latest("none", nil); !errors.Is(err, ErrNoData) {
		t.Errorf("latest of missing metric: %v", err)
	}
}

func TestLabelValuesAndMetrics(t *testing.T) {
	db := New(0)
	db.Append("m", Labels{"component": "b"}, minuteAt(0), 1)
	db.Append("m", Labels{"component": "a"}, minuteAt(0), 1)
	db.Append("n", Labels{"component": "c"}, minuteAt(0), 1)
	vals := db.LabelValues("m", "component")
	if len(vals) != 2 || vals[0] != "a" || vals[1] != "b" {
		t.Errorf("values = %v", vals)
	}
	ms := db.Metrics()
	if len(ms) != 2 || ms[0] != "m" || ms[1] != "n" {
		t.Errorf("metrics = %v", ms)
	}
	if db.SeriesCount("m") != 2 {
		t.Errorf("series count = %d", db.SeriesCount("m"))
	}
}

func TestDropMetric(t *testing.T) {
	db := New(0)
	db.Append("m", nil, minuteAt(0), 1)
	if !db.DropMetric("m") {
		t.Error("drop existing returned false")
	}
	if db.DropMetric("m") {
		t.Error("drop missing returned true")
	}
	if db.TotalPoints() != 0 {
		t.Errorf("points remain after drop")
	}
}

func TestConcurrentAppendQuery(t *testing.T) {
	db := New(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l := Labels{"instance": string(rune('0' + w))}
			for i := 0; i < 500; i++ {
				db.Append("m", l, minuteAt(i), float64(i))
				if i%50 == 0 {
					db.Query("m", nil, minuteAt(0), minuteAt(1000)) //nolint:errcheck
					db.Latest("m", nil)                             //nolint:errcheck
				}
			}
		}(w)
	}
	wg.Wait()
	if got := db.TotalPoints(); got != 8*500 {
		t.Errorf("points = %d, want %d", got, 8*500)
	}
}

// TestConcurrentAppendDownsampleWithRetention exercises the scraper's
// live shape under the race detector: writers appending into a store
// with active retention pruning while readers downsample and
// aggregate the same metric.
func TestConcurrentAppendDownsampleWithRetention(t *testing.T) {
	db := New(30 * time.Minute)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			l := Labels{"instance": string(rune('0' + w))}
			for i := 0; i < 300; i++ {
				db.Append("m", l, minuteAt(i), float64(i))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				db.Downsample("m", nil, minuteAt(0), minuteAt(300), 5*time.Minute, AggMean, AggSum) //nolint:errcheck
				db.Aggregate("m", nil, minuteAt(0), minuteAt(300), AggMax)                          //nolint:errcheck
				db.TotalPoints()
			}
		}()
	}
	wg.Wait()
	// Retention kept only the trailing 30 minutes of each series.
	got, err := db.Query("m", Labels{"instance": "0"}, minuteAt(0), minuteAt(300))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(got[0].Points); n != 31 {
		t.Errorf("retained %d points, want 31", n)
	}
}

func TestQuickDownsampleSumConservation(t *testing.T) {
	// Property: downsampling with (sum, sum) conserves the total over
	// the queried window regardless of step.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := New(0)
		total := 0.0
		n := 1 + r.Intn(200)
		for i := 0; i < n; i++ {
			v := float64(r.Intn(1000))
			inst := string(rune('0' + r.Intn(4)))
			db.Append("m", Labels{"instance": inst}, t0.Add(time.Duration(r.Intn(3600))*time.Second), v)
			total += v
		}
		for _, step := range []time.Duration{time.Minute, 5 * time.Minute, time.Hour} {
			s, err := db.Downsample("m", nil, t0, t0.Add(2*time.Hour), step, AggSum, AggSum)
			if err != nil {
				return false
			}
			var sum float64
			for _, p := range s.Points {
				sum += p.V
			}
			if diff := sum - total; diff > 1e-6 || diff < -1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickQueryOrderedAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := New(0)
		for i := 0; i < 100; i++ {
			db.Append("m", Labels{"i": "0"}, t0.Add(time.Duration(r.Intn(1000))*time.Second), 1)
		}
		start := t0.Add(time.Duration(r.Intn(500)) * time.Second)
		end := start.Add(time.Duration(1+r.Intn(500)) * time.Second)
		series, err := db.Query("m", nil, start, end)
		if errors.Is(err, ErrNoData) {
			return true
		}
		if err != nil {
			return false
		}
		prev := time.Time{}
		for _, p := range series[0].Points {
			if p.T.Before(start) || !p.T.Before(end) {
				return false
			}
			if p.T.Before(prev) {
				return false
			}
			prev = p.T
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAppendPanicsOnEmptyMetric(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty metric name")
		}
	}()
	New(0).Append("", nil, t0, 1)
}

func TestHandleAppendMatchesAppend(t *testing.T) {
	plain, handled := New(0), New(0)
	labels := Labels{"topology": "wc", "component": "splitter", "instance": "1"}
	h := handled.Handle("emit-count", labels)
	// Mutating the caller's map after Handle must not affect the handle.
	labels["instance"] = "corrupted"
	for i := 0; i < 10; i++ {
		plain.Append("emit-count", Labels{"topology": "wc", "component": "splitter", "instance": "1"}, minuteAt(i), float64(i))
		h.Append(minuteAt(i), float64(i))
	}
	for _, db := range []*DB{plain, handled} {
		got, err := db.Query("emit-count", Labels{"instance": "1"}, minuteAt(0), minuteAt(10))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || len(got[0].Points) != 10 {
			t.Fatalf("series = %+v, want one series with 10 points", got)
		}
		if got[0].Points[9].V != 9 {
			t.Fatalf("last point = %v, want 9", got[0].Points[9])
		}
	}
}

func TestHandleUnwrittenSeriesInvisible(t *testing.T) {
	db := New(0)
	h := db.Handle("emit-count", Labels{"instance": "0"})
	// Interning a handle must not create the series: queries, metric
	// listings, and series counts only see written data.
	if n := db.SeriesCount("emit-count"); n != 0 {
		t.Fatalf("SeriesCount = %d before first Append, want 0", n)
	}
	if ms := db.Metrics(); len(ms) != 0 {
		t.Fatalf("Metrics = %v before first Append, want none", ms)
	}
	h.Append(minuteAt(0), 42)
	if n := db.SeriesCount("emit-count"); n != 1 {
		t.Fatalf("SeriesCount = %d after Append, want 1", n)
	}
}

func TestHandleConcurrentAppend(t *testing.T) {
	db := New(0)
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := db.Handle("m", Labels{"instance": string(rune('a' + g))})
			for i := 0; i < perG; i++ {
				h.Append(minuteAt(i), float64(i))
			}
		}(g)
	}
	wg.Wait()
	if n := db.SeriesCount("m"); n != goroutines {
		t.Fatalf("SeriesCount = %d, want %d", n, goroutines)
	}
	if tp := db.TotalPoints(); tp != goroutines*perG {
		t.Fatalf("TotalPoints = %d, want %d", tp, goroutines*perG)
	}
}

func TestHandlePanicsOnEmptyMetric(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Handle(\"\") did not panic")
		}
	}()
	New(0).Handle("", nil)
}
