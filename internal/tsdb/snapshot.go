package tsdb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// Snapshotting lets a metrics database be written to disk and loaded
// later — the workflow of profiling a topology once (heronsim -save)
// and serving Caladrius from the dump (caladrius -metrics). The format
// is line-delimited JSON: one header line, then one line per series
// carrying its identity and points, deterministic (sorted) so dumps
// diff cleanly.

// snapshotHeader identifies the format.
type snapshotHeader struct {
	Format    string `json:"format"`
	Version   int    `json:"version"`
	Retention int64  `json:"retention_ns"`
	Series    int    `json:"series"`
}

type snapshotSeries struct {
	Metric string          `json:"metric"`
	Labels Labels          `json:"labels"`
	Points []snapshotPoint `json:"points"`
}

type snapshotPoint struct {
	T int64   `json:"t"` // UnixNano
	V float64 `json:"v"`
}

const snapshotFormat = "caladrius-tsdb"

// WriteSnapshot serialises the full database to w.
func (db *DB) WriteSnapshot(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()

	type entry struct {
		metric string
		key    string
		data   *seriesData
	}
	var entries []entry
	for metric, bySeries := range db.metrics {
		for key, sd := range bySeries {
			entries = append(entries, entry{metric, key, sd})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].metric != entries[j].metric {
			return entries[i].metric < entries[j].metric
		}
		return entries[i].key < entries[j].key
	})

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(snapshotHeader{
		Format:    snapshotFormat,
		Version:   1,
		Retention: int64(db.retention),
		Series:    len(entries),
	}); err != nil {
		return err
	}
	for _, e := range entries {
		s := snapshotSeries{Metric: e.metric, Labels: e.data.labels, Points: make([]snapshotPoint, len(e.data.points))}
		for i, p := range e.data.points {
			s.Points[i] = snapshotPoint{T: p.T.UnixNano(), V: p.V}
		}
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshot loads a database from a snapshot produced by
// WriteSnapshot. The snapshot's retention setting is restored.
func ReadSnapshot(r io.Reader) (*DB, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var h snapshotHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("tsdb: snapshot header: %w", err)
	}
	if h.Format != snapshotFormat {
		return nil, fmt.Errorf("tsdb: snapshot format %q, want %q", h.Format, snapshotFormat)
	}
	if h.Version != 1 {
		return nil, fmt.Errorf("tsdb: unsupported snapshot version %d", h.Version)
	}
	db := New(time.Duration(h.Retention))
	for i := 0; i < h.Series; i++ {
		var s snapshotSeries
		if err := dec.Decode(&s); err != nil {
			return nil, fmt.Errorf("tsdb: snapshot series %d/%d: %w", i+1, h.Series, err)
		}
		if s.Metric == "" {
			return nil, fmt.Errorf("tsdb: snapshot series %d has empty metric", i+1)
		}
		pts := make([]Point, len(s.Points))
		for j, p := range s.Points {
			pts[j] = Point{T: time.Unix(0, p.T).UTC(), V: p.V}
		}
		db.AppendSeries(s.Metric, s.Labels, pts)
	}
	return db, nil
}

// SaveFile writes the snapshot to a file (atomically, via a temp file
// in the same directory).
func (db *DB) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := db.WriteSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a snapshot file.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}
