// Package linalg provides the small dense linear-algebra kernel used by
// Caladrius' forecasting models: column-major-free dense matrices,
// Cholesky factorisation, ordinary and ridge least squares, and
// iteratively re-weighted least squares with Huber weights for
// outlier-robust regression.
//
// The package is deliberately minimal — it implements exactly what the
// Prophet-substitute in internal/forecast requires — but each routine is
// numerically careful (symmetric rank-k accumulation, jitter on
// near-singular systems) and fully tested.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a system is singular to working
// precision and cannot be solved even with jitter.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("linalg: incompatible dimensions")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("linalg: ragged row %d: len %d, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (not a copy).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("%w: (%dx%d)·(%dx%d)", ErrShape, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			bk := b.Row(k)
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out, nil
}

// MulVec returns m·x for a vector x of length m.Cols.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.Cols != len(x) {
		return nil, fmt.Errorf("%w: (%dx%d)·vec(%d)", ErrShape, m.Rows, m.Cols, len(x))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Gram computes mᵀ·m exploiting symmetry.
func (m *Matrix) Gram() *Matrix {
	n := m.Cols
	g := NewMatrix(n, n)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for i := 0; i < n; i++ {
			vi := row[i]
			if vi == 0 {
				continue
			}
			gi := g.Row(i)
			for j := i; j < n; j++ {
				gi[j] += vi * row[j]
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.Set(j, i, g.At(i, j))
		}
	}
	return g
}

// WeightedGram computes mᵀ·W·m for diagonal weights w (len m.Rows).
func (m *Matrix) WeightedGram(w []float64) (*Matrix, error) {
	if len(w) != m.Rows {
		return nil, fmt.Errorf("%w: weights %d, rows %d", ErrShape, len(w), m.Rows)
	}
	n := m.Cols
	g := NewMatrix(n, n)
	for r := 0; r < m.Rows; r++ {
		wr := w[r]
		if wr == 0 {
			continue
		}
		row := m.Row(r)
		for i := 0; i < n; i++ {
			vi := wr * row[i]
			if vi == 0 {
				continue
			}
			gi := g.Row(i)
			for j := i; j < n; j++ {
				gi[j] += vi * row[j]
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.Set(j, i, g.At(i, j))
		}
	}
	return g, nil
}

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive-definite A. It returns ErrSingular if A is not
// positive definite to working precision.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: cholesky of %dx%d", ErrShape, a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: pivot %d is %g", ErrSingular, j, d)
		}
		dj := math.Sqrt(d)
		l.Set(j, j, dj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/dj)
		}
	}
	return l, nil
}

// SolveCholesky solves A·x = b given the Cholesky factor L of A.
func SolveCholesky(l *Matrix, b []float64) ([]float64, error) {
	n := l.Rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: rhs %d, matrix %dx%d", ErrShape, len(b), n, n)
	}
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	// Back substitution: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// SolveSPD solves A·x = b for symmetric positive-definite A, retrying
// with diagonal jitter if the factorisation fails marginally.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		// Jitter proportional to the largest diagonal entry.
		var maxDiag float64
		for i := 0; i < a.Rows; i++ {
			if d := math.Abs(a.At(i, i)); d > maxDiag {
				maxDiag = d
			}
		}
		if maxDiag == 0 {
			maxDiag = 1
		}
		jittered := a.Clone()
		jitter := maxDiag * 1e-10
		for attempt := 0; attempt < 6; attempt++ {
			for i := 0; i < jittered.Rows; i++ {
				jittered.Set(i, i, a.At(i, i)+jitter)
			}
			if l, err = Cholesky(jittered); err == nil {
				break
			}
			jitter *= 100
		}
		if err != nil {
			return nil, err
		}
	}
	return SolveCholesky(l, b)
}

// LeastSquares solves min ‖X·β − y‖² via the normal equations.
func LeastSquares(x *Matrix, y []float64) ([]float64, error) {
	return RidgeLeastSquares(x, y, 0)
}

// RidgeLeastSquares solves min ‖X·β − y‖² + λ‖β‖². λ must be ≥ 0.
func RidgeLeastSquares(x *Matrix, y []float64, lambda float64) ([]float64, error) {
	if x.Rows != len(y) {
		return nil, fmt.Errorf("%w: design %dx%d, response %d", ErrShape, x.Rows, x.Cols, len(y))
	}
	if lambda < 0 {
		return nil, fmt.Errorf("linalg: negative ridge penalty %g", lambda)
	}
	g := x.Gram()
	for i := 0; i < g.Rows; i++ {
		g.Set(i, i, g.At(i, i)+lambda)
	}
	rhs, err := x.Transpose().MulVec(y)
	if err != nil {
		return nil, err
	}
	return SolveSPD(g, rhs)
}

// WeightedRidge solves min Σ wᵢ(Xᵢ·β − yᵢ)² + λ‖β‖².
func WeightedRidge(x *Matrix, y, w []float64, lambda float64) ([]float64, error) {
	if x.Rows != len(y) || x.Rows != len(w) {
		return nil, fmt.Errorf("%w: design %dx%d, response %d, weights %d", ErrShape, x.Rows, x.Cols, len(y), len(w))
	}
	g, err := x.WeightedGram(w)
	if err != nil {
		return nil, err
	}
	for i := 0; i < g.Rows; i++ {
		g.Set(i, i, g.At(i, i)+lambda)
	}
	rhs := make([]float64, x.Cols)
	for r := 0; r < x.Rows; r++ {
		wy := w[r] * y[r]
		if wy == 0 {
			continue
		}
		row := x.Row(r)
		for j, v := range row {
			rhs[j] += v * wy
		}
	}
	return SolveSPD(g, rhs)
}

// HuberOptions controls robust regression.
type HuberOptions struct {
	// Delta is the Huber threshold in units of the residual scale
	// (MAD-based). Residuals within Delta·scale get weight 1; beyond it
	// weights decay as Delta·scale/|r|. Default 1.345 (95% Gaussian
	// efficiency).
	Delta float64
	// MaxIter bounds the IRLS iterations. Default 25.
	MaxIter int
	// Tol is the coefficient-change convergence threshold. Default 1e-8.
	Tol float64
	// Lambda is an optional ridge penalty applied at every iteration.
	Lambda float64
}

func (o HuberOptions) withDefaults() HuberOptions {
	if o.Delta <= 0 {
		o.Delta = 1.345
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 25
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	return o
}

// HuberRegression fits β minimising the Huber loss of X·β − y via IRLS.
// It is robust to a moderate fraction of gross outliers in y.
func HuberRegression(x *Matrix, y []float64, opts HuberOptions) ([]float64, error) {
	opts = opts.withDefaults()
	beta, err := RidgeLeastSquares(x, y, opts.Lambda)
	if err != nil {
		return nil, err
	}
	w := make([]float64, x.Rows)
	resid := make([]float64, x.Rows)
	for iter := 0; iter < opts.MaxIter; iter++ {
		pred, err := x.MulVec(beta)
		if err != nil {
			return nil, err
		}
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		scale := MAD(resid) * 1.4826
		if scale < 1e-12 {
			return beta, nil // perfect fit to working precision
		}
		thresh := opts.Delta * scale
		for i, r := range resid {
			if ar := math.Abs(r); ar <= thresh {
				w[i] = 1
			} else {
				w[i] = thresh / ar
			}
		}
		next, err := WeightedRidge(x, y, w, opts.Lambda)
		if err != nil {
			return nil, err
		}
		var change float64
		for i := range next {
			change += math.Abs(next[i] - beta[i])
		}
		beta = next
		if change < opts.Tol {
			break
		}
	}
	return beta, nil
}

// MAD computes the median absolute deviation from the median.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, v := range xs {
		dev[i] = math.Abs(v - med)
	}
	return Median(dev)
}

// Median returns the median of xs without mutating it.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It does not mutate xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return minOf(xs)
	}
	if q >= 1 {
		return maxOf(xs)
	}
	cp := append([]float64(nil), xs...)
	// Insertion-free approach: full sort is fine at our sizes.
	sortFloats(cp)
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

func sortFloats(xs []float64) {
	// Heapsort: avoids importing sort for a single call site and is
	// deterministic with no allocation.
	n := len(xs)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(xs, i, n)
	}
	for end := n - 1; end > 0; end-- {
		xs[0], xs[end] = xs[end], xs[0]
		siftDown(xs, 0, end)
	}
}

func siftDown(xs []float64, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && xs[child+1] > xs[child] {
			child++
		}
		if xs[root] >= xs[child] {
			return
		}
		xs[root], xs[child] = xs[child], xs[root]
		root = child
	}
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean of xs, or NaN when empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation (n−1 denominator).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, v := range xs {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// LinearFit fits y = a + b·x by ordinary least squares and returns
// (intercept a, slope b). It requires at least two distinct x values.
func LinearFit(x, y []float64) (a, b float64, err error) {
	if len(x) != len(y) {
		return 0, 0, fmt.Errorf("%w: x %d, y %d", ErrShape, len(x), len(y))
	}
	if len(x) < 2 {
		return 0, 0, errors.New("linalg: need at least 2 points for a line")
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return 0, 0, fmt.Errorf("%w: all x identical", ErrSingular)
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b, nil
}

// LinearFitThroughOrigin fits y = b·x (no intercept), appropriate when
// the physical relationship is proportional, e.g. CPU load per input
// rate in Caladrius' CPU model.
func LinearFitThroughOrigin(x, y []float64) (b float64, err error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("%w: x %d, y %d", ErrShape, len(x), len(y))
	}
	var sxx, sxy float64
	for i := range x {
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	if sxx == 0 {
		return 0, fmt.Errorf("%w: all x zero", ErrSingular)
	}
	return sxy / sxx, nil
}

// R2 computes the coefficient of determination of predictions pred
// against observations y.
func R2(y, pred []float64) float64 {
	if len(y) != len(pred) || len(y) == 0 {
		return math.NaN()
	}
	my := Mean(y)
	var ssRes, ssTot float64
	for i := range y {
		r := y[i] - pred[i]
		d := y[i] - my
		ssRes += r * r
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}
