package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("shape = %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %g", m.At(1, 2))
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Errorf("Set failed")
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 {
		t.Errorf("transpose wrong: %+v", tr)
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) != 9 {
		t.Errorf("clone aliases original")
	}
}

func TestMulAndMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	ab, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := range ab.Data {
		if ab.Data[i] != want.Data[i] {
			t.Fatalf("Mul = %+v, want %+v", ab.Data, want.Data)
		}
	}
	v, err := a.MulVec([]float64{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != -1 || v[1] != -1 {
		t.Errorf("MulVec = %v", v)
	}
	if _, err := a.Mul(FromRows([][]float64{{1, 2, 3}})); !errors.Is(err, ErrShape) {
		t.Errorf("shape mismatch not detected: %v", err)
	}
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("vec shape mismatch not detected: %v", err)
	}
}

func TestGramMatchesExplicit(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m := NewMatrix(13, 5)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	g := m.Gram()
	explicit, err := m.Transpose().Mul(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Data {
		if !almostEqual(g.Data[i], explicit.Data[i], 1e-12) {
			t.Fatalf("Gram[%d] = %g, explicit %g", i, g.Data[i], explicit.Data[i])
		}
	}
}

func TestWeightedGram(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	w := []float64{2, 0, 1}
	g, err := m.WeightedGram(w)
	if err != nil {
		t.Fatal(err)
	}
	// Explicit: 2*[1,2]ᵀ[1,2] + 1*[5,6]ᵀ[5,6]
	want := FromRows([][]float64{{2 + 25, 4 + 30}, {4 + 30, 8 + 36}})
	for i := range g.Data {
		if !almostEqual(g.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("WeightedGram = %+v, want %+v", g.Data, want.Data)
		}
	}
	if _, err := m.WeightedGram([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("shape mismatch not detected")
	}
}

func TestCholeskySolveRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(8)
		// Build SPD A = BᵀB + I.
		b := NewMatrix(n+3, n)
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		a := b.Gram()
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() * 10
		}
		rhs, err := a.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveSPD(a, rhs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if !almostEqual(got[i], x[i], 1e-8) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got[i], x[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, −1
	if _, err := Cholesky(a); !errors.Is(err, ErrSingular) {
		t.Errorf("expected ErrSingular, got %v", err)
	}
	if _, err := Cholesky(FromRows([][]float64{{1, 2, 3}})); !errors.Is(err, ErrShape) {
		t.Errorf("expected ErrShape for non-square, got %v", err)
	}
}

func TestSolveSPDJitterRecovers(t *testing.T) {
	// Rank-deficient Gram matrix; plain Cholesky fails, jitter succeeds.
	x := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	g := x.Gram()
	rhs := []float64{1, 1}
	got, err := SolveSPD(g, rhs)
	if err != nil {
		t.Fatalf("jittered solve failed: %v", err)
	}
	// Any solution with g·x ≈ rhs is acceptable in the least-norm sense;
	// check residual is small relative to rhs.
	back, _ := g.MulVec(got)
	for i := range rhs {
		if math.Abs(back[i]-rhs[i]) > 1e-3 {
			t.Errorf("residual[%d] = %g", i, back[i]-rhs[i])
		}
	}
}

func TestLeastSquaresRecoversCoefficients(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n, p := 200, 4
	x := NewMatrix(n, p)
	truth := []float64{2, -1, 0.5, 3}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			x.Set(i, j, r.NormFloat64())
		}
		for j := 0; j < p; j++ {
			y[i] += x.At(i, j) * truth[j]
		}
		y[i] += r.NormFloat64() * 0.01
	}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for j := range truth {
		if !almostEqual(beta[j], truth[j], 1e-2) {
			t.Errorf("beta[%d] = %g, want %g", j, beta[j], truth[j])
		}
	}
}

func TestRidgeShrinks(t *testing.T) {
	x := FromRows([][]float64{{1}, {1}, {1}})
	y := []float64{3, 3, 3}
	ols, err := RidgeLeastSquares(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	ridge, err := RidgeLeastSquares(x, y, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !(math.Abs(ridge[0]) < math.Abs(ols[0])) {
		t.Errorf("ridge %g should shrink below OLS %g", ridge[0], ols[0])
	}
	if _, err := RidgeLeastSquares(x, y, -1); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := RidgeLeastSquares(x, []float64{1}, 0); !errors.Is(err, ErrShape) {
		t.Errorf("shape mismatch not detected: %v", err)
	}
}

func TestHuberIgnoresOutliers(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n := 300
	x := NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		xv := float64(i) / 10
		x.Set(i, 0, 1)
		x.Set(i, 1, xv)
		y[i] = 5 + 2*xv + r.NormFloat64()*0.1
	}
	// Corrupt 10% with gross outliers.
	for i := 0; i < n/10; i++ {
		y[r.Intn(n)] += 500
	}
	beta, err := HuberRegression(x, y, HuberOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(beta[0], 5, 0.05) || !almostEqual(beta[1], 2, 0.05) {
		t.Errorf("huber beta = %v, want ~[5 2]", beta)
	}
	// OLS by contrast should be visibly pulled by the outliers.
	ols, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ols[0]-5)+math.Abs(ols[1]-2) < math.Abs(beta[0]-5)+math.Abs(beta[1]-2) {
		t.Errorf("OLS (%v) unexpectedly beat Huber (%v) on corrupted data", ols, beta)
	}
}

func TestHuberPerfectFitShortCircuits(t *testing.T) {
	x := FromRows([][]float64{{1, 0}, {1, 1}, {1, 2}})
	y := []float64{1, 3, 5}
	beta, err := HuberRegression(x, y, HuberOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(beta[0], 1, 1e-9) || !almostEqual(beta[1], 2, 1e-9) {
		t.Errorf("beta = %v", beta)
	}
}

func TestQuantileAndMedian(t *testing.T) {
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	if got := Median(xs); got != 5 {
		t.Errorf("median = %g", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %g", got)
	}
	if got := Quantile(xs, 1); got != 9 {
		t.Errorf("q1 = %g", got)
	}
	if got := Quantile(xs, 0.25); got != 3 {
		t.Errorf("q.25 = %g", got)
	}
	// Input must not be mutated.
	if xs[0] != 9 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Errorf("empty quantile should be NaN")
	}
}

func TestQuickQuantileWithinBounds(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q = math.Abs(math.Mod(q, 1))
		got := Quantile(xs, q)
		return got >= minOf(xs) && got <= maxOf(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickQuantileMonotoneInQ(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+r.Intn(40))
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMADAndStddev(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 4, 6, 9}
	if got := MAD(xs); got != 1 {
		t.Errorf("MAD = %g, want 1", got)
	}
	if got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, 2.138, 1e-3) {
		t.Errorf("stddev = %g", got)
	}
	if Stddev([]float64{5}) != 0 {
		t.Errorf("single-element stddev should be 0")
	}
	if MAD(nil) != 0 {
		t.Errorf("empty MAD should be 0")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9}
	a, b, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, 1, 1e-12) || !almostEqual(b, 2, 1e-12) {
		t.Errorf("fit = (%g, %g)", a, b)
	}
	if _, _, err := LinearFit([]float64{1, 1}, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("constant x not rejected: %v", err)
	}
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, err := LinearFit([]float64{1, 2}, []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("length mismatch not rejected: %v", err)
	}
}

func TestLinearFitThroughOrigin(t *testing.T) {
	b, err := LinearFitThroughOrigin([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(b, 2, 1e-12) {
		t.Errorf("slope = %g", b)
	}
	if _, err := LinearFitThroughOrigin([]float64{0, 0}, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("all-zero x not rejected: %v", err)
	}
}

func TestR2(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if got := R2(y, y); got != 1 {
		t.Errorf("perfect R2 = %g", got)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if got := R2(y, mean); got != 0 {
		t.Errorf("mean-prediction R2 = %g", got)
	}
	if got := R2([]float64{3, 3}, []float64{3, 3}); got != 1 {
		t.Errorf("constant exact R2 = %g", got)
	}
	if !math.IsNaN(R2([]float64{1}, []float64{1, 2})) {
		t.Error("length mismatch should be NaN")
	}
}

func TestQuickLinearFitRecovery(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a0 := r.NormFloat64() * 10
		b0 := r.NormFloat64() * 10
		n := 10 + r.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i) + r.Float64()
			y[i] = a0 + b0*x[i]
		}
		a, b, err := LinearFit(x, y)
		if err != nil {
			return false
		}
		return almostEqual(a, a0, 1e-6) && almostEqual(b, b0, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
