package forecast

import (
	"fmt"
	"math"
	"time"

	"caladrius/internal/linalg"
	"caladrius/internal/tsdb"
)

// HoltWinters is additive triple exponential smoothing: level, trend
// and a seasonal profile of a fixed period, updated recursively over
// the history. It demonstrates the pluggability of Caladrius' traffic
// model tier — a third model alongside prophet and summary — and is a
// good fit for single-seasonality traffic with modest trend, at a
// fraction of Prophet's fitting cost.
//
// The input series is resampled onto a regular grid (mean per bucket,
// gaps filled by carrying the seasonal expectation forward) before
// smoothing, so irregular and missing samples are tolerated.
type HoltWinters struct {
	// Alpha, Beta, Gamma are the level/trend/season smoothing factors
	// in (0, 1). Defaults 0.3 / 0.05 / 0.25.
	Alpha, Beta, Gamma float64
	// Period is the seasonal period. Default 24h.
	Period time.Duration
	// Step is the resampling grid. Default Period/288 (5-minute buckets
	// for a daily period).
	Step time.Duration
	// IntervalLevel is the central coverage of [Lower, Upper].
	// Default 0.8.
	IntervalLevel float64

	fitted   bool
	level    float64
	trend    float64
	season   []float64 // length Period/Step
	origin   time.Time // grid origin: slot(t) = ((t−origin)/Step) mod len(season)
	lastTime time.Time
	residLo  float64
	residHi  float64
}

// NewHoltWinters builds the model from options: alpha, beta, gamma,
// period_minutes, step_minutes, interval_level.
func NewHoltWinters(options map[string]any) (Model, error) {
	alpha, err := floatOption(options, "alpha", 0.3)
	if err != nil {
		return nil, err
	}
	beta, err := floatOption(options, "beta", 0.05)
	if err != nil {
		return nil, err
	}
	gamma, err := floatOption(options, "gamma", 0.25)
	if err != nil {
		return nil, err
	}
	periodMin, err := floatOption(options, "period_minutes", 24*60)
	if err != nil {
		return nil, err
	}
	stepMin, err := floatOption(options, "step_minutes", periodMin/288)
	if err != nil {
		return nil, err
	}
	level, err := floatOption(options, "interval_level", 0.8)
	if err != nil {
		return nil, err
	}
	m := &HoltWinters{
		Alpha: alpha, Beta: beta, Gamma: gamma,
		Period:        time.Duration(periodMin * float64(time.Minute)),
		Step:          time.Duration(stepMin * float64(time.Minute)),
		IntervalLevel: level,
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func (h *HoltWinters) validate() error {
	for name, v := range map[string]float64{"alpha": h.Alpha, "beta": h.Beta, "gamma": h.Gamma} {
		if v <= 0 || v >= 1 {
			return fmt.Errorf("forecast: holtwinters %s %g outside (0,1)", name, v)
		}
	}
	if h.Period <= 0 || h.Step <= 0 {
		return fmt.Errorf("forecast: holtwinters non-positive period %s or step %s", h.Period, h.Step)
	}
	if h.Period < 2*h.Step {
		return fmt.Errorf("forecast: holtwinters period %s below 2×step %s", h.Period, h.Step)
	}
	if h.IntervalLevel <= 0 || h.IntervalLevel >= 1 {
		return fmt.Errorf("forecast: holtwinters interval level %g outside (0,1)", h.IntervalLevel)
	}
	return nil
}

// Name implements Model.
func (h *HoltWinters) Name() string { return "holtwinters" }

// Fit implements Model.
func (h *HoltWinters) Fit(pts []tsdb.Point) error {
	pts = sortedCopy(pts)
	if len(pts) < 4 {
		return fmt.Errorf("%w: %d points, need ≥ 4", ErrInsufficentData, len(pts))
	}
	span := pts[len(pts)-1].T.Sub(pts[0].T)
	if span < 2*h.Period {
		return fmt.Errorf("%w: span %s below two seasonal periods (%s)", ErrInsufficentData, span, 2*h.Period)
	}
	seasonLen := int(h.Period / h.Step)

	// Resample onto the grid (bucket means).
	origin := pts[0].T.Truncate(h.Step)
	nBuckets := int(pts[len(pts)-1].T.Sub(origin)/h.Step) + 1
	sums := make([]float64, nBuckets)
	counts := make([]int, nBuckets)
	for _, p := range pts {
		b := int(p.T.Sub(origin) / h.Step)
		if b >= 0 && b < nBuckets {
			sums[b] += p.V
			counts[b]++
		}
	}

	// Initialise level/trend from the first period, season from the
	// first two periods' per-slot means.
	var firstMean, secondMean float64
	var firstN, secondN int
	for b := 0; b < nBuckets && b < 2*seasonLen; b++ {
		if counts[b] == 0 {
			continue
		}
		v := sums[b] / float64(counts[b])
		if b < seasonLen {
			firstMean += v
			firstN++
		} else {
			secondMean += v
			secondN++
		}
	}
	if firstN == 0 || secondN == 0 {
		return fmt.Errorf("%w: a full seasonal period has no samples", ErrInsufficentData)
	}
	firstMean /= float64(firstN)
	secondMean /= float64(secondN)
	h.level = firstMean
	h.trend = (secondMean - firstMean) / float64(seasonLen)
	h.season = make([]float64, seasonLen)
	seasonCount := make([]int, seasonLen)
	for b := 0; b < nBuckets && b < 2*seasonLen; b++ {
		if counts[b] == 0 {
			continue
		}
		slot := b % seasonLen
		h.season[slot] += sums[b]/float64(counts[b]) - firstMean
		seasonCount[slot]++
	}
	for s := range h.season {
		if seasonCount[s] > 0 {
			h.season[s] /= float64(seasonCount[s])
		}
	}

	// Recursive smoothing over the full grid, collecting one-step
	// residuals for the intervals.
	var resid []float64
	for b := 0; b < nBuckets; b++ {
		slot := b % seasonLen
		pred := h.level + h.trend + h.season[slot]
		if counts[b] == 0 {
			// Gap: trust the forecast, advance level by the trend.
			h.level += h.trend
			continue
		}
		v := sums[b] / float64(counts[b])
		resid = append(resid, v-pred)
		prevLevel := h.level
		h.level = h.Alpha*(v-h.season[slot]) + (1-h.Alpha)*(h.level+h.trend)
		h.trend = h.Beta*(h.level-prevLevel) + (1-h.Beta)*h.trend
		h.season[slot] = h.Gamma*(v-h.level) + (1-h.Gamma)*h.season[slot]
	}
	// Skip the burn-in third of residuals when enough remain.
	if len(resid) > 30 {
		resid = resid[len(resid)/3:]
	}
	a := (1 - h.IntervalLevel) / 2
	h.residLo = linalg.Quantile(resid, a)
	h.residHi = linalg.Quantile(resid, 1-a)
	h.origin = origin
	h.lastTime = origin.Add(time.Duration(nBuckets-1) * h.Step)
	h.fitted = true
	return nil
}

// Predict implements Model. Times before the end of the history
// evaluate the frozen post-fit state (no refitting), which is adequate
// for Caladrius' forward-looking use.
func (h *HoltWinters) Predict(times []time.Time) ([]Prediction, error) {
	if !h.fitted {
		return nil, ErrNotFitted
	}
	seasonLen := len(h.season)
	out := make([]Prediction, len(times))
	for i, t := range times {
		stepsAhead := float64(t.Sub(h.lastTime)) / float64(h.Step)
		slot := int(math.Round(float64(t.Sub(h.origin))/float64(h.Step))) % seasonLen
		if slot < 0 {
			slot += seasonLen
		}
		v := h.level + h.trend*stepsAhead + h.season[slot]
		pr := Prediction{T: t, Mean: v, Lower: v + h.residLo, Upper: v + h.residHi}
		if pr.Mean < 0 {
			pr.Mean = 0
		}
		if pr.Lower < 0 {
			pr.Lower = 0
		}
		if pr.Upper < 0 {
			pr.Upper = 0
		}
		out[i] = pr
	}
	return out, nil
}

func init() {
	Register("holtwinters", NewHoltWinters)
}
