// Package forecast implements Caladrius' traffic-forecast models
// (§IV-A of the paper). Two models are provided behind a common
// interface, mirroring the paper's model tier:
//
//   - Summary: a statistics-summary model (mean / median / quantiles of
//     a historic window), sufficient for stable traffic profiles;
//   - Prophet: a re-implementation of the additive time-series model of
//     Facebook's Prophet library — piecewise-linear trend with
//     changepoints plus Fourier daily/weekly seasonality, fit with an
//     outlier-robust Huber regression — for the strongly seasonal
//     traffic the paper observes in most production topologies.
//
// Models are registered by name so the service can select them from
// configuration, as the original system does with YAML model lists.
package forecast

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"caladrius/internal/tsdb"
)

// Errors returned by models.
var (
	ErrNotFitted       = errors.New("forecast: model has not been fitted")
	ErrInsufficentData = errors.New("forecast: insufficient history")
)

// Prediction is one forecast sample with an uncertainty interval.
type Prediction struct {
	T time.Time
	// Mean is the expected value; Lower and Upper bound the central
	// interval at the model's configured level (default 80%).
	Mean, Lower, Upper float64
}

// Model is the traffic-model interface. Fit consumes a historic series
// (ascending time order enforced internally); Predict evaluates the
// fitted model at future (or past) instants.
type Model interface {
	// Name identifies the model in configuration and API responses.
	Name() string
	// Fit trains on the history. Implementations must tolerate missing
	// samples (irregular spacing) and must not mutate pts.
	Fit(pts []tsdb.Point) error
	// Predict evaluates the model at the given times.
	Predict(times []time.Time) ([]Prediction, error)
}

// Horizon builds the conventional evaluation grid: n points starting
// one step after the last history point.
func Horizon(last time.Time, step time.Duration, n int) []time.Time {
	out := make([]time.Time, n)
	for i := range out {
		out[i] = last.Add(time.Duration(i+1) * step)
	}
	return out
}

// sortedCopy returns pts sorted ascending by time without mutating the
// input, dropping exact duplicates (keeping the last value).
func sortedCopy(pts []tsdb.Point) []tsdb.Point {
	cp := append([]tsdb.Point(nil), pts...)
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].T.Before(cp[j].T) })
	out := cp[:0]
	for _, p := range cp {
		if len(out) > 0 && out[len(out)-1].T.Equal(p.T) {
			out[len(out)-1] = p
			continue
		}
		out = append(out, p)
	}
	return out
}

// Factory builds a fresh model instance from free-form options (the
// parsed YAML model configuration).
type Factory func(options map[string]any) (Model, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a named model factory. It panics on duplicates, which
// indicates a programming error at init time.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("forecast: duplicate model %q", name))
	}
	registry[name] = f
}

// New instantiates a registered model by name.
func New(name string, options map[string]any) (Model, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("forecast: unknown model %q (registered: %v)", name, Names())
	}
	return f(options)
}

// Names lists registered model names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// floatOption reads a numeric option with a default.
func floatOption(options map[string]any, key string, def float64) (float64, error) {
	v, ok := options[key]
	if !ok {
		return def, nil
	}
	switch n := v.(type) {
	case float64:
		return n, nil
	case int64:
		return float64(n), nil
	case int:
		return float64(n), nil
	default:
		return 0, fmt.Errorf("forecast: option %q is %T, want number", key, v)
	}
}

func intOption(options map[string]any, key string, def int) (int, error) {
	f, err := floatOption(options, key, float64(def))
	if err != nil {
		return 0, err
	}
	return int(f), nil
}
