package forecast

import (
	"errors"
	"math"
	"testing"
	"time"

	"caladrius/internal/tsdb"
	"caladrius/internal/workload"
)

var t0 = time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)

func toPoints(tps []workload.TrafficPoint) []tsdb.Point {
	out := make([]tsdb.Point, len(tps))
	for i, p := range tps {
		out[i] = tsdb.Point{T: p.T, V: p.V}
	}
	return out
}

// mape computes mean absolute percentage error of predictions against
// the spec's deterministic ground truth.
func mape(spec workload.TrafficSpec, start time.Time, preds []Prediction) float64 {
	var sum float64
	for _, p := range preds {
		truth := spec.ValueAt(start, p.T)
		sum += math.Abs(p.Mean-truth) / truth
	}
	return sum / float64(len(preds))
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := map[string]bool{"prophet": false, "summary": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("model %q not registered (got %v)", n, names)
		}
	}
	if _, err := New("bogus", nil); err == nil {
		t.Error("unknown model accepted")
	}
	m, err := New("summary", nil)
	if err != nil || m.Name() != "summary" {
		t.Errorf("New(summary) = %v, %v", m, err)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Register("summary", NewSummary)
}

func TestSummaryModel(t *testing.T) {
	m, err := NewSummary(map[string]any{"stat": "median"})
	if err != nil {
		t.Fatal(err)
	}
	var pts []tsdb.Point
	for i := 0; i < 100; i++ {
		pts = append(pts, tsdb.Point{T: t0.Add(time.Duration(i) * time.Minute), V: float64(i)})
	}
	if err := m.Fit(pts); err != nil {
		t.Fatal(err)
	}
	preds, err := m.Predict(Horizon(pts[99].T, time.Minute, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 5 {
		t.Fatalf("preds = %d", len(preds))
	}
	for _, p := range preds {
		if p.Mean != 49.5 { // median of 0..99
			t.Errorf("median forecast = %g", p.Mean)
		}
		if !(p.Lower < p.Mean && p.Mean < p.Upper) {
			t.Errorf("interval [%g, %g] does not bracket %g", p.Lower, p.Upper, p.Mean)
		}
	}
	stats, err := m.(*Summary).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Count != 100 || stats.Min != 0 || stats.Max != 99 || stats.Mean != 49.5 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestSummaryValidation(t *testing.T) {
	if _, err := NewSummary(map[string]any{"stat": "mode"}); err == nil {
		t.Error("bad stat accepted")
	}
	if _, err := NewSummary(map[string]any{"stat": 7}); err == nil {
		t.Error("non-string stat accepted")
	}
	m, _ := NewSummary(nil)
	if err := m.Fit(nil); !errors.Is(err, ErrInsufficentData) {
		t.Errorf("empty fit: %v", err)
	}
	if _, err := m.Predict([]time.Time{t0}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("predict before fit: %v", err)
	}
}

func TestProphetRecoverDailySeasonality(t *testing.T) {
	spec := workload.TrafficSpec{Base: 1e6, DailyAmplitude: 0.4, NoiseStd: 0.02, Seed: 3}
	history := spec.Generate(t0, 7*24*60, time.Minute) // one week of minutes
	m, err := NewProphet(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(toPoints(history)); err != nil {
		t.Fatal(err)
	}
	// Forecast the next 24 hours.
	preds, err := m.Predict(Horizon(history[len(history)-1].T, time.Minute, 24*60))
	if err != nil {
		t.Fatal(err)
	}
	if got := mape(spec, t0, preds); got > 0.05 {
		t.Errorf("daily-seasonal MAPE = %.3f, want < 0.05", got)
	}
	// The forecast must actually swing with the season, not flatten.
	min, max := math.Inf(1), math.Inf(-1)
	for _, p := range preds {
		min = math.Min(min, p.Mean)
		max = math.Max(max, p.Mean)
	}
	if (max-min)/1e6 < 0.5 {
		t.Errorf("forecast swing = %.3g, want ≳ 0.8 of amplitude", (max-min)/1e6)
	}
}

func TestProphetTrendAndChangepoint(t *testing.T) {
	// Trend with a level shift one third in; robust piecewise trend
	// should track the post-shift regime.
	spec := workload.TrafficSpec{Base: 1e6, TrendPerDay: 2e4, LevelShiftAt: 4 * 24 * 60, LevelShiftFactor: 1.5, NoiseStd: 0.01, Seed: 5}
	history := spec.Generate(t0, 12*24*60, time.Minute)
	m, err := NewProphet(map[string]any{"changepoints": 25})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(toPoints(history)); err != nil {
		t.Fatal(err)
	}
	preds, err := m.Predict(Horizon(history[len(history)-1].T, time.Minute, 12*60))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range preds {
		truth := spec.ValueAt(t0, p.T) * spec.LevelShiftFactor
		sum += math.Abs(p.Mean-truth) / truth
	}
	if got := sum / float64(len(preds)); got > 0.08 {
		t.Errorf("post-shift MAPE = %.3f, want < 0.08", got)
	}
}

func TestProphetRobustToOutliersAndGaps(t *testing.T) {
	spec := workload.TrafficSpec{
		Base: 1e6, DailyAmplitude: 0.3, NoiseStd: 0.02,
		OutlierProb: 0.01, OutlierScale: 20, MissingProb: 0.1, Seed: 7,
	}
	history := spec.Generate(t0, 7*24*60, time.Minute)
	m, err := NewProphet(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(toPoints(history)); err != nil {
		t.Fatal(err)
	}
	preds, err := m.Predict(Horizon(t0.Add(7*24*time.Hour), time.Minute, 12*60))
	if err != nil {
		t.Fatal(err)
	}
	if got := mape(spec, t0, preds); got > 0.06 {
		t.Errorf("robust MAPE = %.3f, want < 0.06", got)
	}
}

func TestProphetWeeklySeasonality(t *testing.T) {
	spec := workload.TrafficSpec{Base: 1e6, WeeklyAmplitude: 0.5, NoiseStd: 0.01, Seed: 11}
	history := spec.Generate(t0, 4*7*24*4, 15*time.Minute) // 4 weeks of 15-min samples
	m, err := NewProphet(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(toPoints(history)); err != nil {
		t.Fatal(err)
	}
	preds, err := m.Predict(Horizon(history[len(history)-1].T, time.Hour, 7*24))
	if err != nil {
		t.Fatal(err)
	}
	if got := mape(spec, t0, preds); got > 0.05 {
		t.Errorf("weekly MAPE = %.3f, want < 0.05", got)
	}
}

func TestProphetBeatsSummaryOnSeasonalTraffic(t *testing.T) {
	// The paper's motivation for Prophet: summary statistics cannot
	// follow strong seasonality.
	spec := workload.TrafficSpec{Base: 1e6, DailyAmplitude: 0.5, NoiseStd: 0.02, Seed: 13}
	history := toPoints(spec.Generate(t0, 5*24*60, time.Minute))
	horizon := Horizon(history[len(history)-1].T, time.Minute, 24*60)

	prophet, _ := NewProphet(nil)
	if err := prophet.Fit(history); err != nil {
		t.Fatal(err)
	}
	pPreds, err := prophet.Predict(horizon)
	if err != nil {
		t.Fatal(err)
	}
	summary, _ := NewSummary(nil)
	if err := summary.Fit(history); err != nil {
		t.Fatal(err)
	}
	sPreds, err := summary.Predict(horizon)
	if err != nil {
		t.Fatal(err)
	}
	pErr, sErr := mape(spec, t0, pPreds), mape(spec, t0, sPreds)
	if pErr >= sErr/3 {
		t.Errorf("prophet MAPE %.3f should be ≪ summary MAPE %.3f", pErr, sErr)
	}
}

func TestProphetIntervalCoverage(t *testing.T) {
	spec := workload.TrafficSpec{Base: 1e6, DailyAmplitude: 0.3, NoiseStd: 0.05, Seed: 17}
	history := spec.Generate(t0, 6*24*60, time.Minute)
	holdout := workload.TrafficSpec{Base: 1e6, DailyAmplitude: 0.3, NoiseStd: 0.05, Seed: 18}
	m, _ := NewProphet(nil)
	if err := m.Fit(toPoints(history)); err != nil {
		t.Fatal(err)
	}
	future := holdout.Generate(t0.Add(6*24*time.Hour), 24*60, time.Minute)
	times := make([]time.Time, len(future))
	for i, p := range future {
		times[i] = p.T
	}
	preds, err := m.Predict(times)
	if err != nil {
		t.Fatal(err)
	}
	covered := 0
	for i, p := range preds {
		if future[i].V >= p.Lower && future[i].V <= p.Upper {
			covered++
		}
	}
	cov := float64(covered) / float64(len(preds))
	if cov < 0.6 || cov > 0.99 {
		t.Errorf("80%% interval coverage = %.2f, want ∈ [0.6, 0.99]", cov)
	}
}

func TestProphetValidation(t *testing.T) {
	cases := []map[string]any{
		{"changepoints": -1},
		{"ridge": -0.5},
		{"interval_level": 1.5},
		{"interval_level": 0.0},
		{"daily_order": "six"},
	}
	for _, opts := range cases {
		if _, err := NewProphet(opts); err == nil {
			t.Errorf("options %v accepted", opts)
		}
	}
	m, _ := NewProphet(nil)
	if err := m.Fit([]tsdb.Point{{T: t0, V: 1}}); !errors.Is(err, ErrInsufficentData) {
		t.Errorf("tiny fit: %v", err)
	}
	if _, err := m.Predict([]time.Time{t0}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("predict before fit: %v", err)
	}
	// All points at the same instant → zero span.
	same := make([]tsdb.Point, 20)
	for i := range same {
		same[i] = tsdb.Point{T: t0, V: float64(i)}
	}
	if err := m.Fit(same); !errors.Is(err, ErrInsufficentData) {
		t.Errorf("zero-span fit: %v", err)
	}
}

func TestProphetNonNegativeForecast(t *testing.T) {
	// Declining trend extrapolates below zero; forecasts clamp at 0.
	var pts []tsdb.Point
	for i := 0; i < 200; i++ {
		pts = append(pts, tsdb.Point{T: t0.Add(time.Duration(i) * time.Hour), V: math.Max(0, 1000-10*float64(i))})
	}
	m, _ := NewProphet(map[string]any{"daily_order": 0, "weekly_order": 0})
	if err := m.Fit(pts); err != nil {
		t.Fatal(err)
	}
	preds, err := m.Predict(Horizon(pts[len(pts)-1].T, time.Hour, 100))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range preds {
		if p.Mean < 0 || p.Lower < 0 {
			t.Fatalf("negative forecast %+v", p)
		}
	}
}

func TestProphetUnsortedInputHandled(t *testing.T) {
	spec := workload.TrafficSpec{Base: 1e6, DailyAmplitude: 0.3, Seed: 21}
	history := toPoints(spec.Generate(t0, 3*24*60, time.Minute))
	// Shuffle deterministically.
	for i := range history {
		j := (i * 7919) % len(history)
		history[i], history[j] = history[j], history[i]
	}
	m, _ := NewProphet(nil)
	if err := m.Fit(history); err != nil {
		t.Fatal(err)
	}
	preds, err := m.Predict(Horizon(t0.Add(3*24*time.Hour), time.Hour, 24))
	if err != nil {
		t.Fatal(err)
	}
	if got := mape(spec, t0, preds); got > 0.05 {
		t.Errorf("unsorted-input MAPE = %.3f", got)
	}
}

func TestHorizon(t *testing.T) {
	h := Horizon(t0, time.Minute, 3)
	if len(h) != 3 || !h[0].Equal(t0.Add(time.Minute)) || !h[2].Equal(t0.Add(3*time.Minute)) {
		t.Errorf("horizon = %v", h)
	}
}
