package forecast

import (
	"fmt"
	"math"
	"sort"
	"time"

	"caladrius/internal/tsdb"
)

// Accuracy summarises a backtest: how well a model's forecasts matched
// held-out observations.
type Accuracy struct {
	// Points is the number of scored forecasts.
	Points int
	// MAPE is the mean absolute percentage error (skipping zero
	// truths).
	MAPE float64
	// RMSE is the root mean squared error.
	RMSE float64
	// Coverage is the fraction of held-out observations inside the
	// model's [Lower, Upper] interval.
	Coverage float64
}

// Backtest evaluates a model configuration by rolling-origin holdout:
// the history's final holdout fraction is hidden, the model is fitted
// on the rest, and its forecasts are scored against the hidden tail.
// It answers "which configured model should this topology use?" —
// the selection problem the paper's pluggable model tier creates.
func Backtest(name string, options map[string]any, history []tsdb.Point, holdout float64) (Accuracy, error) {
	if holdout <= 0 || holdout >= 1 {
		return Accuracy{}, fmt.Errorf("forecast: holdout fraction %g outside (0,1)", holdout)
	}
	pts := sortedCopy(history)
	if len(pts) < 10 {
		return Accuracy{}, fmt.Errorf("%w: %d points", ErrInsufficentData, len(pts))
	}
	cut := int(float64(len(pts)) * (1 - holdout))
	if cut < 5 || cut >= len(pts) {
		return Accuracy{}, fmt.Errorf("%w: holdout %g leaves train %d / test %d", ErrInsufficentData, holdout, cut, len(pts)-cut)
	}
	train, test := pts[:cut], pts[cut:]

	m, err := New(name, options)
	if err != nil {
		return Accuracy{}, err
	}
	if err := m.Fit(train); err != nil {
		return Accuracy{}, err
	}
	times := make([]time.Time, len(test))
	for i, p := range test {
		times[i] = p.T
	}
	preds, err := m.Predict(times)
	if err != nil {
		return Accuracy{}, err
	}

	var acc Accuracy
	var sumAPE, sumSq float64
	var apeN, covered int
	for i, p := range preds {
		truth := test[i].V
		diff := p.Mean - truth
		sumSq += diff * diff
		if truth != 0 {
			sumAPE += math.Abs(diff) / math.Abs(truth)
			apeN++
		}
		if truth >= p.Lower && truth <= p.Upper {
			covered++
		}
	}
	acc.Points = len(preds)
	if apeN > 0 {
		acc.MAPE = sumAPE / float64(apeN)
	}
	acc.RMSE = math.Sqrt(sumSq / float64(len(preds)))
	acc.Coverage = float64(covered) / float64(len(preds))
	return acc, nil
}

// Ranking is one model's backtest outcome.
type Ranking struct {
	Model    string
	Options  map[string]any
	Accuracy Accuracy
	// Err is non-nil when the model could not be evaluated (e.g. not
	// enough history for its seasonality); such models rank last.
	Err error
}

// Rank backtests every candidate and orders them by MAPE ascending,
// inevaluable models last. Candidates are (name, options) pairs, e.g.
// the service's configured traffic models.
func Rank(candidates []struct {
	Name    string
	Options map[string]any
}, history []tsdb.Point, holdout float64) []Ranking {
	out := make([]Ranking, len(candidates))
	for i, c := range candidates {
		acc, err := Backtest(c.Name, c.Options, history, holdout)
		out[i] = Ranking{Model: c.Name, Options: c.Options, Accuracy: acc, Err: err}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if (out[i].Err == nil) != (out[j].Err == nil) {
			return out[i].Err == nil
		}
		return out[i].Accuracy.MAPE < out[j].Accuracy.MAPE
	})
	return out
}
