package forecast

import (
	"errors"
	"math"
	"testing"
	"time"

	"caladrius/internal/tsdb"
	"caladrius/internal/workload"
)

func TestHoltWintersRegistered(t *testing.T) {
	m, err := New("holtwinters", nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "holtwinters" {
		t.Errorf("name = %q", m.Name())
	}
}

func TestHoltWintersDailySeasonality(t *testing.T) {
	spec := workload.TrafficSpec{Base: 1e6, DailyAmplitude: 0.4, NoiseStd: 0.02, Seed: 31}
	history := toPoints(spec.Generate(t0, 5*24*60, time.Minute))
	m, err := NewHoltWinters(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(history); err != nil {
		t.Fatal(err)
	}
	preds, err := m.Predict(Horizon(history[len(history)-1].T, time.Minute, 24*60))
	if err != nil {
		t.Fatal(err)
	}
	if got := mape(spec, t0, preds); got > 0.06 {
		t.Errorf("daily-seasonal MAPE = %.3f, want < 0.06", got)
	}
	// The forecast must swing with the season.
	min, max := math.Inf(1), math.Inf(-1)
	for _, p := range preds {
		min = math.Min(min, p.Mean)
		max = math.Max(max, p.Mean)
	}
	if (max-min)/1e6 < 0.5 {
		t.Errorf("forecast swing = %.3g, want ≳0.8 of amplitude", (max-min)/1e6)
	}
}

func TestHoltWintersTrend(t *testing.T) {
	spec := workload.TrafficSpec{Base: 1e6, TrendPerDay: 5e4, DailyAmplitude: 0.2, Seed: 37}
	history := toPoints(spec.Generate(t0, 6*24*60, time.Minute))
	m, _ := NewHoltWinters(nil)
	if err := m.Fit(history); err != nil {
		t.Fatal(err)
	}
	preds, err := m.Predict(Horizon(history[len(history)-1].T, time.Hour, 24))
	if err != nil {
		t.Fatal(err)
	}
	if got := mape(spec, t0, preds); got > 0.06 {
		t.Errorf("trend MAPE = %.3f", got)
	}
}

func TestHoltWintersHandlesGaps(t *testing.T) {
	spec := workload.TrafficSpec{Base: 1e6, DailyAmplitude: 0.3, MissingProb: 0.2, NoiseStd: 0.02, Seed: 41}
	history := toPoints(spec.Generate(t0, 4*24*60, time.Minute))
	m, _ := NewHoltWinters(nil)
	if err := m.Fit(history); err != nil {
		t.Fatal(err)
	}
	preds, err := m.Predict(Horizon(t0.Add(4*24*time.Hour), 15*time.Minute, 96))
	if err != nil {
		t.Fatal(err)
	}
	if got := mape(spec, t0, preds); got > 0.07 {
		t.Errorf("gap MAPE = %.3f", got)
	}
}

func TestHoltWintersValidation(t *testing.T) {
	bad := []map[string]any{
		{"alpha": 0.0},
		{"alpha": 1.5},
		{"beta": -0.1},
		{"gamma": 2.0},
		{"period_minutes": 0},
		{"period_minutes": 10, "step_minutes": 9},
		{"interval_level": 1.0},
		{"alpha": "high"},
	}
	for _, opts := range bad {
		if _, err := NewHoltWinters(opts); err == nil {
			t.Errorf("options %v accepted", opts)
		}
	}
	m, _ := NewHoltWinters(nil)
	if _, err := m.Predict([]time.Time{t0}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("predict before fit: %v", err)
	}
	if err := m.Fit([]tsdb.Point{{T: t0, V: 1}, {T: t0.Add(time.Minute), V: 2}}); !errors.Is(err, ErrInsufficentData) {
		t.Errorf("tiny fit: %v", err)
	}
	// Less than two seasonal periods.
	short := toPoints(workload.TrafficSpec{Base: 1e6, Seed: 1}.Generate(t0, 30*60, time.Minute))
	if err := m.Fit(short); !errors.Is(err, ErrInsufficentData) {
		t.Errorf("short-span fit: %v", err)
	}
}

func TestHoltWintersNonNegative(t *testing.T) {
	// Steeply declining series; forecasts clamp at zero.
	var pts []tsdb.Point
	for i := 0; i < 3*24*60; i++ {
		v := 1e5 - 40*float64(i)
		if v < 0 {
			v = 0
		}
		pts = append(pts, tsdb.Point{T: t0.Add(time.Duration(i) * time.Minute), V: v})
	}
	m, _ := NewHoltWinters(nil)
	if err := m.Fit(pts); err != nil {
		t.Fatal(err)
	}
	preds, err := m.Predict(Horizon(pts[len(pts)-1].T, time.Hour, 48))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range preds {
		if p.Mean < 0 || p.Lower < 0 {
			t.Fatalf("negative forecast %+v", p)
		}
	}
}

func TestHoltWintersCustomPeriod(t *testing.T) {
	// Hourly seasonality with a 1-hour period model.
	var pts []tsdb.Point
	for i := 0; i < 8*60; i++ {
		tm := t0.Add(time.Duration(i) * time.Minute)
		v := 1000 + 300*math.Sin(2*math.Pi*float64(i%60)/60)
		pts = append(pts, tsdb.Point{T: tm, V: v})
	}
	m, err := NewHoltWinters(map[string]any{"period_minutes": 60, "step_minutes": 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(pts); err != nil {
		t.Fatal(err)
	}
	preds, err := m.Predict(Horizon(pts[len(pts)-1].T, 5*time.Minute, 12))
	if err != nil {
		t.Fatal(err)
	}
	var sumErr float64
	for _, p := range preds {
		i := int(p.T.Sub(t0) / time.Minute)
		truth := 1000 + 300*math.Sin(2*math.Pi*float64(i%60)/60)
		sumErr += math.Abs(p.Mean-truth) / truth
	}
	if got := sumErr / float64(len(preds)); got > 0.1 {
		t.Errorf("hourly MAPE = %.3f", got)
	}
}
