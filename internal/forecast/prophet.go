package forecast

import (
	"fmt"
	"math"
	"time"

	"caladrius/internal/linalg"
	"caladrius/internal/tsdb"
)

// Prophet is a from-scratch implementation of the additive model behind
// Facebook's Prophet library, the forecaster Caladrius uses for
// seasonal topology traffic (§IV-A): non-linear trends fit as piecewise
// linear segments with automatically placed changepoints, plus periodic
// seasonality expressed as truncated Fourier series, robust to missing
// data and large outliers (Huber loss) and to shifts in the trend
// (changepoints).
//
// The model is
//
//	y(t) = g(t) + s_daily(t) + s_weekly(t) + ε
//
// with g a piecewise-linear trend whose slope changes at K changepoints
// spread over the first 80% of the history, and s_p a Fourier series of
// the given order with period p. Coefficients are fit by L2-regularised
// iteratively re-weighted least squares; uncertainty intervals come
// from the empirical residual quantiles.
type Prophet struct {
	// Changepoints is the number of potential trend changepoints K.
	// Default 15.
	Changepoints int
	// DailyOrder and WeeklyOrder are Fourier orders; 0 disables the
	// seasonality. Defaults 6 and 3. Seasonalities whose period is not
	// covered at least twice by the history are disabled at fit time.
	DailyOrder, WeeklyOrder int
	// Ridge is the L2 penalty. Default 1.
	Ridge float64
	// IntervalLevel is the central coverage of [Lower, Upper].
	// Default 0.8.
	IntervalLevel float64

	fitted    bool
	origin    time.Time
	scale     float64 // response scaling for conditioning
	beta      []float64
	dailyOn   bool
	weeklyOn  bool
	cps       []float64 // changepoint offsets in days
	residLo   float64
	residHi   float64
	trainSpan float64 // history span in days
}

// NewProphet builds the model from options: changepoints, daily_order,
// weekly_order, ridge, interval_level.
func NewProphet(options map[string]any) (Model, error) {
	cp, err := intOption(options, "changepoints", 15)
	if err != nil {
		return nil, err
	}
	daily, err := intOption(options, "daily_order", 6)
	if err != nil {
		return nil, err
	}
	weekly, err := intOption(options, "weekly_order", 3)
	if err != nil {
		return nil, err
	}
	ridge, err := floatOption(options, "ridge", 1)
	if err != nil {
		return nil, err
	}
	level, err := floatOption(options, "interval_level", 0.8)
	if err != nil {
		return nil, err
	}
	if cp < 0 || daily < 0 || weekly < 0 {
		return nil, fmt.Errorf("forecast: prophet negative option (changepoints %d, daily %d, weekly %d)", cp, daily, weekly)
	}
	if ridge < 0 {
		return nil, fmt.Errorf("forecast: prophet negative ridge %g", ridge)
	}
	if level <= 0 || level >= 1 {
		return nil, fmt.Errorf("forecast: prophet interval level %g outside (0,1)", level)
	}
	return &Prophet{Changepoints: cp, DailyOrder: daily, WeeklyOrder: weekly, Ridge: ridge, IntervalLevel: level}, nil
}

// Name implements Model.
func (p *Prophet) Name() string { return "prophet" }

const (
	day  = 24 * time.Hour
	week = 7 * day
)

// Fit implements Model.
func (p *Prophet) Fit(pts []tsdb.Point) error {
	pts = sortedCopy(pts)
	if len(pts) < 10 {
		return fmt.Errorf("%w: %d points, need ≥ 10", ErrInsufficentData, len(pts))
	}
	p.origin = pts[0].T
	span := pts[len(pts)-1].T.Sub(pts[0].T)
	p.trainSpan = span.Hours() / 24
	if p.trainSpan <= 0 {
		return fmt.Errorf("%w: zero time span", ErrInsufficentData)
	}
	p.dailyOn = p.DailyOrder > 0 && span >= 2*day
	p.weeklyOn = p.WeeklyOrder > 0 && span >= 2*week

	// Changepoints over the first 80% of the history.
	k := p.Changepoints
	if k > len(pts)/3 {
		k = len(pts) / 3 // avoid more changepoints than data can support
	}
	p.cps = make([]float64, k)
	for i := range p.cps {
		p.cps[i] = p.trainSpan * 0.8 * float64(i+1) / float64(k+1)
	}

	// Scale the response for conditioning.
	var maxAbs float64
	for _, pt := range pts {
		if a := math.Abs(pt.V); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	p.scale = maxAbs

	x := linalg.NewMatrix(len(pts), p.featureCount())
	y := make([]float64, len(pts))
	for i, pt := range pts {
		p.fillRow(x.Row(i), pt.T)
		y[i] = pt.V / p.scale
	}
	beta, err := linalg.HuberRegression(x, y, linalg.HuberOptions{Lambda: p.Ridge})
	if err != nil {
		return fmt.Errorf("forecast: prophet fit: %w", err)
	}
	p.beta = beta

	// Residual quantiles for intervals (on the original scale).
	pred, err := x.MulVec(beta)
	if err != nil {
		return err
	}
	resid := make([]float64, len(y))
	for i := range y {
		resid[i] = (y[i] - pred[i]) * p.scale
	}
	alpha := (1 - p.IntervalLevel) / 2
	p.residLo = linalg.Quantile(resid, alpha)
	p.residHi = linalg.Quantile(resid, 1-alpha)
	p.fitted = true
	return nil
}

func (p *Prophet) featureCount() int {
	n := 2 + len(p.cps) // intercept, slope, changepoint deltas
	if p.dailyOn {
		n += 2 * p.DailyOrder
	}
	if p.weeklyOn {
		n += 2 * p.WeeklyOrder
	}
	return n
}

// fillRow writes the design-matrix row for time t.
func (p *Prophet) fillRow(row []float64, t time.Time) {
	days := t.Sub(p.origin).Hours() / 24
	row[0] = 1
	row[1] = days
	idx := 2
	for _, cp := range p.cps {
		if days > cp {
			row[idx] = days - cp
		} else {
			row[idx] = 0
		}
		idx++
	}
	if p.dailyOn {
		frac := 2 * math.Pi * (days - math.Floor(days))
		for o := 1; o <= p.DailyOrder; o++ {
			row[idx] = math.Sin(float64(o) * frac)
			row[idx+1] = math.Cos(float64(o) * frac)
			idx += 2
		}
	}
	if p.weeklyOn {
		wfrac := 2 * math.Pi * (days/7 - math.Floor(days/7))
		for o := 1; o <= p.WeeklyOrder; o++ {
			row[idx] = math.Sin(float64(o) * wfrac)
			row[idx+1] = math.Cos(float64(o) * wfrac)
			idx += 2
		}
	}
}

// Predict implements Model. Forecast values are clamped at zero:
// traffic rates cannot be negative.
func (p *Prophet) Predict(times []time.Time) ([]Prediction, error) {
	if !p.fitted {
		return nil, ErrNotFitted
	}
	out := make([]Prediction, len(times))
	row := make([]float64, p.featureCount())
	for i, t := range times {
		p.fillRow(row, t)
		var v float64
		for j, b := range p.beta {
			v += row[j] * b
		}
		v *= p.scale
		pr := Prediction{T: t, Mean: v, Lower: v + p.residLo, Upper: v + p.residHi}
		if pr.Mean < 0 {
			pr.Mean = 0
		}
		if pr.Lower < 0 {
			pr.Lower = 0
		}
		if pr.Upper < 0 {
			pr.Upper = 0
		}
		out[i] = pr
	}
	return out, nil
}

func init() {
	Register("prophet", NewProphet)
}
