package forecast

import (
	"fmt"

	"caladrius/internal/linalg"
	"caladrius/internal/tsdb"
	"time"
)

// SummaryStats are the descriptive statistics the summary model derives
// from its history window; the API returns them alongside the forecast
// (the paper: "a simple statistical summary (mean, median, etc.) of a
// given period of historic data may be sufficient").
type SummaryStats struct {
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	Median float64 `json:"median"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Stddev float64 `json:"stddev"`
	Q10    float64 `json:"q10"`
	Q90    float64 `json:"q90"`
	Q95    float64 `json:"q95"`
}

// Summary is the statistics-summary traffic model: the forecast is a
// constant — a chosen statistic of the history — with quantile bounds.
type Summary struct {
	// Stat selects the central statistic: "mean" (default) or
	// "median".
	Stat  string
	stats SummaryStats
	fit   bool
}

// NewSummary builds the model from options ({"stat": "mean"|"median"}).
func NewSummary(options map[string]any) (Model, error) {
	stat := "mean"
	if v, ok := options["stat"]; ok {
		s, isStr := v.(string)
		if !isStr {
			return nil, fmt.Errorf("forecast: summary option stat is %T, want string", v)
		}
		stat = s
	}
	if stat != "mean" && stat != "median" {
		return nil, fmt.Errorf("forecast: summary stat %q, want mean or median", stat)
	}
	return &Summary{Stat: stat}, nil
}

// Name implements Model.
func (s *Summary) Name() string { return "summary" }

// Fit implements Model.
func (s *Summary) Fit(pts []tsdb.Point) error {
	pts = sortedCopy(pts)
	if len(pts) == 0 {
		return fmt.Errorf("%w: no points", ErrInsufficentData)
	}
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = p.V
	}
	s.stats = SummaryStats{
		Count:  len(vals),
		Mean:   linalg.Mean(vals),
		Median: linalg.Median(vals),
		Min:    linalg.Quantile(vals, 0),
		Max:    linalg.Quantile(vals, 1),
		Stddev: linalg.Stddev(vals),
		Q10:    linalg.Quantile(vals, 0.10),
		Q90:    linalg.Quantile(vals, 0.90),
		Q95:    linalg.Quantile(vals, 0.95),
	}
	s.fit = true
	return nil
}

// Predict implements Model.
func (s *Summary) Predict(times []time.Time) ([]Prediction, error) {
	if !s.fit {
		return nil, ErrNotFitted
	}
	center := s.stats.Mean
	if s.Stat == "median" {
		center = s.stats.Median
	}
	out := make([]Prediction, len(times))
	for i, t := range times {
		out[i] = Prediction{T: t, Mean: center, Lower: s.stats.Q10, Upper: s.stats.Q90}
	}
	return out, nil
}

// Stats returns the descriptive statistics of the fitted window.
func (s *Summary) Stats() (SummaryStats, error) {
	if !s.fit {
		return SummaryStats{}, ErrNotFitted
	}
	return s.stats, nil
}

func init() {
	Register("summary", NewSummary)
}
