package forecast

import (
	"errors"
	"testing"
	"time"

	"caladrius/internal/workload"
)

func TestBacktestScoresProphetWell(t *testing.T) {
	spec := workload.TrafficSpec{Base: 1e6, DailyAmplitude: 0.4, NoiseStd: 0.02, Seed: 3}
	history := toPoints(spec.Generate(t0, 6*24*60, time.Minute))
	acc, err := Backtest("prophet", nil, history, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Points == 0 {
		t.Fatal("no points scored")
	}
	if acc.MAPE > 0.05 {
		t.Errorf("prophet MAPE = %.3f", acc.MAPE)
	}
	if acc.Coverage < 0.5 {
		t.Errorf("coverage = %.2f", acc.Coverage)
	}
	if acc.RMSE <= 0 {
		t.Errorf("rmse = %g", acc.RMSE)
	}
}

func TestBacktestValidation(t *testing.T) {
	spec := workload.TrafficSpec{Base: 1e6, Seed: 1}
	history := toPoints(spec.Generate(t0, 100, time.Minute))
	if _, err := Backtest("prophet", nil, history, 0); err == nil {
		t.Error("holdout 0 accepted")
	}
	if _, err := Backtest("prophet", nil, history, 1); err == nil {
		t.Error("holdout 1 accepted")
	}
	if _, err := Backtest("bogus", nil, history, 0.2); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := Backtest("prophet", nil, history[:4], 0.2); !errors.Is(err, ErrInsufficentData) {
		t.Errorf("tiny history: %v", err)
	}
}

func TestRankOrdersBySkill(t *testing.T) {
	// Strongly seasonal traffic: prophet and holtwinters should beat
	// summary; a model that cannot fit (holtwinters without two
	// periods) ranks last.
	spec := workload.TrafficSpec{Base: 1e6, DailyAmplitude: 0.5, NoiseStd: 0.02, Seed: 7}
	history := toPoints(spec.Generate(t0, 6*24*60, time.Minute))
	candidates := []struct {
		Name    string
		Options map[string]any
	}{
		{"summary", nil},
		{"prophet", nil},
		{"holtwinters", nil},
	}
	ranked := Rank(candidates, history, 0.2)
	if len(ranked) != 3 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	if ranked[len(ranked)-1].Model != "summary" {
		t.Errorf("summary should rank last on seasonal traffic: %+v", rankNames(ranked))
	}
	for _, r := range ranked[:2] {
		if r.Err != nil {
			t.Errorf("%s failed: %v", r.Model, r.Err)
		}
		if r.Accuracy.MAPE > 0.10 {
			t.Errorf("%s MAPE = %.3f", r.Model, r.Accuracy.MAPE)
		}
	}

	// Short history: holtwinters (needs 2 daily periods) fails and
	// ranks behind evaluable models.
	short := toPoints(spec.Generate(t0, 12*60, time.Minute))
	ranked = Rank(candidates, short, 0.2)
	if ranked[len(ranked)-1].Model != "holtwinters" || ranked[len(ranked)-1].Err == nil {
		t.Errorf("inevaluable model should rank last: %+v", rankNames(ranked))
	}
}

func rankNames(rs []Ranking) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Model
	}
	return out
}
