package usage

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"caladrius/internal/telemetry"
)

// TestAccountantConcurrentChurn hammers the accountant from many
// goroutines with far more principals than capacity while snapshots
// run concurrently — the suite scripts/verify.sh races. Afterwards the
// cap and the conservation invariant must both hold exactly.
func TestAccountantConcurrentChurn(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := New(Options{Capacity: 16, Now: fixedNow(usageT0), Registry: reg})
	const (
		workers = 8
		perW    = 300
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				tenant := fmt.Sprintf("t%d-%d", w, i%40)
				a.Begin(tenant, "wc")
				a.RecordRun(tenant, "wc", time.Microsecond, time.Microsecond, 8, 1)
				a.Finish(tenant, "wc", 200+(i%2)*300, time.Microsecond)
			}
		}(w)
	}
	// Concurrent readers.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(2)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				a.Snapshot()
				a.Len()
			}
		}
	}()
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				reg.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	if got := a.Len(); got > 16 {
		t.Errorf("live principals = %d, want ≤ 16", got)
	}
	var sum Totals
	var inFlight int64
	for _, p := range a.Snapshot() {
		sum.add(p.Totals)
		inFlight += p.InFlight
	}
	const total = workers * perW
	if sum.Requests != total || sum.Runs != total {
		t.Errorf("conserved requests/runs = %d/%d, want %d", sum.Requests, sum.Runs, total)
	}
	if sum.AllocBytes != total*8 || sum.SimTicks != total {
		t.Errorf("conserved allocs/ticks = %d/%d", sum.AllocBytes, sum.SimTicks)
	}
	if inFlight != 0 {
		t.Errorf("net in-flight = %d, want 0", inFlight)
	}
}
