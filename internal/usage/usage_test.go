package usage

import (
	"fmt"
	"testing"
	"time"

	"caladrius/internal/telemetry"
)

var usageT0 = time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

func fixedNow(t time.Time) func() time.Time {
	return func() time.Time { return t }
}

func find(snap []PrincipalUsage, tenant, topo string) (PrincipalUsage, bool) {
	for _, p := range snap {
		if p.Tenant == tenant && p.Topology == topo {
			return p, true
		}
	}
	return PrincipalUsage{}, false
}

func TestAccountantRecordAndSnapshot(t *testing.T) {
	a := New(Options{Capacity: 4, Window: 8 * time.Minute, Now: fixedNow(usageT0)})
	a.Begin("acme", "wordcount")
	a.Finish("acme", "wordcount", 200, 30*time.Millisecond)
	a.Begin("acme", "wordcount")
	a.Finish("acme", "wordcount", 503, 70*time.Millisecond)
	a.RecordRun("acme", "wordcount", 50*time.Millisecond, 40*time.Millisecond, 1<<20, 240)

	snap := a.Snapshot()
	p, ok := find(snap, "acme", "wordcount")
	if !ok {
		t.Fatal("principal missing from snapshot")
	}
	if p.Totals.Requests != 2 || p.Totals.Errors != 1 {
		t.Errorf("requests/errors = %d/%d, want 2/1", p.Totals.Requests, p.Totals.Errors)
	}
	if p.Totals.LatencyNanos != uint64(100*time.Millisecond) {
		t.Errorf("latency = %d", p.Totals.LatencyNanos)
	}
	if p.Totals.Runs != 1 || p.Totals.CPUNanos != uint64(40*time.Millisecond) ||
		p.Totals.AllocBytes != 1<<20 || p.Totals.SimTicks != 240 {
		t.Errorf("run totals = %+v", p.Totals)
	}
	if p.InFlight != 0 {
		t.Errorf("in-flight = %d, want 0", p.InFlight)
	}
	// Everything just recorded is inside the trailing window.
	if p.Window != p.Totals {
		t.Errorf("window %+v != totals %+v", p.Window, p.Totals)
	}
	if a.Len() != 1 {
		t.Errorf("len = %d, want 1", a.Len())
	}
}

func TestAccountantInFlight(t *testing.T) {
	a := New(Options{Now: fixedNow(usageT0)})
	a.Begin("t", "x")
	a.Begin("t", "x")
	if p, _ := find(a.Snapshot(), "t", "x"); p.InFlight != 2 {
		t.Errorf("in-flight = %d, want 2", p.InFlight)
	}
	a.Finish("t", "x", 200, time.Millisecond)
	if p, _ := find(a.Snapshot(), "t", "x"); p.InFlight != 1 {
		t.Errorf("in-flight = %d, want 1", p.InFlight)
	}
}

func TestWindowRotation(t *testing.T) {
	now := usageT0
	a := New(Options{Window: 8 * time.Minute, Now: func() time.Time { return now }})
	a.Finish("t", "x", 200, time.Second)
	p, _ := find(a.Snapshot(), "t", "x")
	if p.Window.Requests != 1 {
		t.Fatalf("window requests = %d, want 1", p.Window.Requests)
	}
	// Advance past the whole window: the old slot expires, totals keep it.
	now = now.Add(10 * time.Minute)
	a.Finish("t", "x", 200, time.Second)
	p, _ = find(a.Snapshot(), "t", "x")
	if p.Window.Requests != 1 {
		t.Errorf("window requests after rotation = %d, want 1", p.Window.Requests)
	}
	if p.Totals.Requests != 2 {
		t.Errorf("cumulative requests = %d, want 2", p.Totals.Requests)
	}
	// Half a window later both recent slots still count... once one more
	// slot's worth passes the older point ages out slot by slot.
	now = now.Add(time.Minute)
	a.Finish("t", "x", 200, time.Second)
	p, _ = find(a.Snapshot(), "t", "x")
	if p.Window.Requests != 2 {
		t.Errorf("window requests = %d, want 2", p.Window.Requests)
	}
}

func TestEvictionIntoOtherConservesTotals(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := New(Options{Capacity: 8, Now: fixedNow(usageT0), Registry: reg})
	const churn = 200
	for i := 0; i < churn; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		a.Begin(tenant, "wc")
		a.Finish(tenant, "wc", 200, time.Millisecond)
		a.RecordRun(tenant, "wc", time.Millisecond, time.Millisecond, 100, 7)
	}
	if got := a.Len(); got > 8 {
		t.Fatalf("live principals = %d, want ≤ 8", got)
	}
	if a.Evictions() == 0 {
		t.Fatal("expected evictions under churn")
	}

	// Conservation: live + other account for every event ever recorded.
	var sum Totals
	var sawOther bool
	for _, p := range a.Snapshot() {
		sum.add(p.Totals)
		if p.Rollup {
			sawOther = true
			if p.Tenant != Rollup || p.Topology != Rollup {
				t.Errorf("rollup principal = %+v", p.Principal)
			}
		}
	}
	if !sawOther {
		t.Fatal("no rollup bucket in snapshot")
	}
	want := Totals{
		Requests: churn, LatencyNanos: churn * uint64(time.Millisecond),
		Runs: churn, WallNanos: churn * uint64(time.Millisecond),
		CPUNanos: churn * uint64(time.Millisecond), AllocBytes: churn * 100, SimTicks: churn * 7,
	}
	if sum != want {
		t.Errorf("conserved totals = %+v, want %+v", sum, want)
	}

	// The registry is bounded too: evicted principals' series are gone,
	// and the self-metric agrees with the accountant.
	if got := reg.Counter(MetricEvictions, nil).Value(); uint64(got) != a.Evictions() {
		t.Errorf("evictions metric = %g, accountant = %d", got, a.Evictions())
	}
	if tenants := seriesTenants(reg); len(tenants) > 8+1 { // K live + other
		t.Errorf("registry tenants = %d, want ≤ 9", len(tenants))
	}
	// Registry-side conservation on the requests counter.
	var reqSum float64
	for _, fam := range reg.Snapshot() {
		if fam.Name != MetricRequests {
			continue
		}
		for _, s := range fam.Series {
			reqSum += *s.Value
		}
	}
	if reqSum != churn {
		t.Errorf("registry requests sum = %g, want %d", reqSum, churn)
	}
}

// seriesTenants collects the distinct tenant label values currently
// exported for the per-principal request counter.
func seriesTenants(reg *telemetry.Registry) map[string]bool {
	tenants := map[string]bool{}
	for _, fam := range reg.Snapshot() {
		if fam.Name != MetricRequests {
			continue
		}
		for _, s := range fam.Series {
			tenants[s.Labels["tenant"]] = true
		}
	}
	return tenants
}

func TestLRUPrefersColdVictim(t *testing.T) {
	a := New(Options{Capacity: 2, Now: fixedNow(usageT0)})
	a.Finish("old", "x", 200, time.Millisecond)
	a.Finish("hot", "x", 200, time.Millisecond)
	a.Finish("hot", "x", 200, time.Millisecond) // touch: hot is MRU
	a.Finish("new", "x", 200, time.Millisecond) // evicts "old"
	snap := a.Snapshot()
	if _, ok := find(snap, "old", "x"); ok {
		t.Error("LRU principal survived eviction")
	}
	if _, ok := find(snap, "hot", "x"); !ok {
		t.Error("MRU principal was evicted")
	}
	if other, ok := find(snap, Rollup, Rollup); !ok || other.Totals.Requests != 1 {
		t.Errorf("rollup = %+v, ok=%v, want 1 request", other, ok)
	}
}

func TestEvictionSkipsInFlight(t *testing.T) {
	a := New(Options{Capacity: 2, Now: fixedNow(usageT0)})
	a.Begin("busy", "x") // LRU but in flight
	a.Begin("idle", "x")
	a.Finish("idle", "x", 200, time.Millisecond)
	a.Begin("new", "x") // must evict "idle", not "busy"
	a.Finish("new", "x", 200, time.Millisecond)
	snap := a.Snapshot()
	if _, ok := find(snap, "busy", "x"); !ok {
		t.Error("in-flight principal was evicted despite an idle victim")
	}
	if _, ok := find(snap, "idle", "x"); ok {
		t.Error("idle principal survived over in-flight one")
	}
}

func TestRollupPrincipalSharesOtherBucket(t *testing.T) {
	a := New(Options{Capacity: 4, Now: fixedNow(usageT0)})
	a.Finish(Rollup, Rollup, 200, time.Millisecond)
	snap := a.Snapshot()
	if len(snap) != 1 || !snap[0].Rollup {
		t.Fatalf("snapshot = %+v, want single rollup entry", snap)
	}
	if a.Len() != 0 {
		t.Errorf("len = %d, want 0 (rollup is not a live principal)", a.Len())
	}
}

func TestDefaults(t *testing.T) {
	a := New(Options{})
	if a.Capacity() != 256 {
		t.Errorf("capacity = %d, want 256", a.Capacity())
	}
	if a.Window() != 15*time.Minute {
		t.Errorf("window = %v, want 15m", a.Window())
	}
}

func TestRecordPathDoesNotAllocate(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := New(Options{Capacity: 4, Now: fixedNow(usageT0), Registry: reg})
	a.Finish("t", "x", 200, time.Millisecond) // warm: entry + series exist
	a.RecordRun("t", "x", time.Millisecond, time.Millisecond, 10, 1)
	allocs := testing.AllocsPerRun(200, func() {
		a.Begin("t", "x")
		a.Finish("t", "x", 200, time.Millisecond)
		a.RecordRun("t", "x", time.Millisecond, time.Millisecond, 10, 1)
	})
	if allocs != 0 {
		t.Errorf("steady-state record path allocates %.1f/op, want 0", allocs)
	}
}
