// Package usage implements Caladrius' per-tenant/per-topology resource
// attribution layer: a bounded-cardinality accountant that charges
// every HTTP request and every model run to a principal
// (tenant, topology) and exports the per-principal series the sharded
// model tier's quotas will police.
//
// The paper positions Caladrius as a service fronting many topologies
// at once (§III-A; Daedalus motivates thousands); a service shared by
// many principals must answer "who is consuming it" before it can
// enforce anything. The accountant keeps RED stats (requests, errors,
// latency histogram, in-flight) and resource totals (wall time, CPU
// thread time, allocated bytes, simulator ticks, model runs) per
// principal, in two horizons: cumulative since boot and a trailing
// window of rotating slots for "who is hot right now" ranking.
//
// Cardinality is hard-bounded: at most Capacity live principals are
// tracked, LRU-evicted into a sticky "other" rollup bucket whose
// totals absorb everything the evicted principal had accumulated — so
// the conservation invariant Σ(live)+other = everything-ever-recorded
// holds under arbitrary churn, and a hostile client minting fresh
// tenant headers can never grow the accountant (or the telemetry
// registry behind it) past the cap. Evictions are themselves counted
// (caladrius_usage_evictions_total), so churn pressure is observable.
//
// The record path is the service's per-request hot path and performs
// no allocation in steady state (see BenchmarkUsageRecord).
package usage

import (
	"sync"
	"time"

	"caladrius/internal/telemetry"
)

// Series the accountant registers per live principal, labelled
// {tenant, topology}. They flow through the self-monitoring scraper
// into the history TSDB like every other registry instrument, so
// query_range, SLO rules and the dash work on them unchanged.
const (
	MetricRequests   = "caladrius_tenant_requests_total"
	MetricErrors     = "caladrius_tenant_errors_total"
	MetricLatency    = "caladrius_tenant_request_duration_seconds"
	MetricInFlight   = "caladrius_tenant_in_flight_requests"
	MetricWallSecs   = "caladrius_tenant_model_wall_seconds_total"
	MetricCPUSecs    = "caladrius_tenant_model_cpu_seconds_total"
	MetricAllocBytes = "caladrius_tenant_model_alloc_bytes_total"
	MetricSimTicks   = "caladrius_tenant_sim_ticks_total"
	MetricRuns       = "caladrius_tenant_model_runs_total"

	// MetricEvictions counts principals rolled into the "other" bucket;
	// MetricPrincipals gauges the live (non-other) principal count.
	MetricEvictions  = "caladrius_usage_evictions_total"
	MetricPrincipals = "caladrius_usage_principals"
)

// Rollup names the sticky eviction bucket. The principal
// (Rollup, Rollup) is reserved: anything a real client sends under it
// shares the bucket with evicted history.
const Rollup = "other"

// Principal identifies who a request or model run is charged to.
type Principal struct {
	Tenant   string `json:"tenant"`
	Topology string `json:"topology"`
}

// Totals is one principal's accumulated consumption. All fields are
// monotonic within one horizon (cumulative or window slot).
type Totals struct {
	// Requests and Errors count HTTP requests attributed to the
	// principal; Errors is the 5xx subset.
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	// LatencyNanos sums attributed request wall time (the mean latency
	// numerator; the full distribution is in the registry histogram).
	LatencyNanos uint64 `json:"latency_ns"`
	// Runs counts model runs (predict/plan/calibrate); the remaining
	// fields are the per-run resource deltas measured around them.
	Runs       uint64 `json:"runs"`
	WallNanos  uint64 `json:"wall_ns"`
	CPUNanos   uint64 `json:"cpu_ns"`
	AllocBytes uint64 `json:"alloc_bytes"`
	SimTicks   uint64 `json:"sim_ticks"`
}

func (t *Totals) add(o Totals) {
	t.Requests += o.Requests
	t.Errors += o.Errors
	t.LatencyNanos += o.LatencyNanos
	t.Runs += o.Runs
	t.WallNanos += o.WallNanos
	t.CPUNanos += o.CPUNanos
	t.AllocBytes += o.AllocBytes
	t.SimTicks += o.SimTicks
}

// windowSlots is the trailing-window resolution: the window is divided
// into this many rotating slots, expired lazily by epoch.
const windowSlots = 8

// instruments holds one principal's registry series. Nil when the
// accountant was built without a registry.
type instruments struct {
	requests *telemetry.Counter
	errors   *telemetry.Counter
	latency  *telemetry.Histogram
	inFlight *telemetry.Gauge
	wall     *telemetry.Counter
	cpu      *telemetry.Counter
	allocs   *telemetry.Counter
	ticks    *telemetry.Counter
	runs     *telemetry.Counter
}

type entry struct {
	p        Principal
	inFlight int64
	tot      Totals
	win      [windowSlots]Totals
	winEpoch [windowSlots]int64
	inst     *instruments

	// LRU list links; the other-bucket entry is not on the list.
	prev, next *entry
}

// Options configures an Accountant.
type Options struct {
	// Capacity bounds live principals (the top-K cap). Default 256.
	Capacity int
	// Window is the trailing ranking window. Default 15m.
	Window time.Duration
	// Now stamps window slots. Default time.Now.
	Now func() time.Time
	// Registry optionally receives per-principal series and the
	// accountant's self-metrics. Nil keeps accounting in-process only.
	Registry *telemetry.Registry
}

// Accountant is the bounded per-principal usage meter. All methods are
// safe for concurrent use.
type Accountant struct {
	capacity int
	window   time.Duration
	slotDur  time.Duration
	now      func() time.Time
	reg      *telemetry.Registry

	evictions  *telemetry.Counter
	principals *telemetry.Gauge

	mu      sync.Mutex
	entries map[Principal]*entry
	head    *entry // most recently used
	tail    *entry // least recently used
	other   *entry // sticky rollup bucket, created lazily
	evicted uint64
}

// New builds an accountant.
func New(opts Options) *Accountant {
	if opts.Capacity <= 0 {
		opts.Capacity = 256
	}
	if opts.Window <= 0 {
		opts.Window = 15 * time.Minute
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	a := &Accountant{
		capacity: opts.Capacity,
		window:   opts.Window,
		slotDur:  opts.Window / windowSlots,
		now:      opts.Now,
		reg:      opts.Registry,
		entries:  make(map[Principal]*entry, opts.Capacity+1),
	}
	if a.slotDur <= 0 {
		a.slotDur = time.Second
	}
	if a.reg != nil {
		a.reg.SetHelp(MetricRequests, "Requests attributed to a (tenant, topology) principal.")
		a.reg.SetHelp(MetricErrors, "5xx responses attributed to a principal.")
		a.reg.SetHelp(MetricLatency, "Attributed request latency, by principal.")
		a.reg.SetHelp(MetricInFlight, "Requests currently in flight, by principal.")
		a.reg.SetHelp(MetricWallSecs, "Model-run wall time attributed to a principal.")
		a.reg.SetHelp(MetricCPUSecs, "Model-run CPU thread time attributed to a principal.")
		a.reg.SetHelp(MetricAllocBytes, "Model-run heap bytes allocated, attributed to a principal.")
		a.reg.SetHelp(MetricSimTicks, "Simulator ticks attributed to a principal.")
		a.reg.SetHelp(MetricRuns, "Model runs (predict/plan/calibrate) attributed to a principal.")
		a.reg.SetHelp(MetricEvictions, "Principals LRU-evicted into the usage rollup bucket.")
		a.reg.SetHelp(MetricPrincipals, "Live principals tracked by the usage accountant.")
		a.evictions = a.reg.Counter(MetricEvictions, nil)
		a.principals = a.reg.Gauge(MetricPrincipals, nil)
	}
	return a
}

// Capacity returns the live-principal cap K.
func (a *Accountant) Capacity() int { return a.capacity }

// Window returns the trailing ranking window.
func (a *Accountant) Window() time.Duration { return a.window }

// Len returns the live principal count (excluding the rollup bucket).
func (a *Accountant) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.entries)
	if a.other != nil {
		n--
	}
	return n
}

// Evictions returns how many principals were rolled into "other".
func (a *Accountant) Evictions() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.evicted
}

// Begin marks one request in flight for the principal.
func (a *Accountant) Begin(tenant, topology string) {
	a.mu.Lock()
	e := a.getLocked(Principal{Tenant: tenant, Topology: topology})
	e.inFlight++
	if e.inst != nil {
		e.inst.inFlight.Inc()
	}
	a.mu.Unlock()
}

// Finish attributes one completed request: decrements in-flight,
// counts the request (and the error when status ≥ 500) and observes
// the latency. The Begin/Finish pair is the middleware contract; if
// the principal was evicted in between, Finish recreates it and the
// in-flight residue heals through the rollup bucket.
func (a *Accountant) Finish(tenant, topology string, status int, elapsed time.Duration) {
	if elapsed < 0 {
		elapsed = 0
	}
	a.mu.Lock()
	e := a.getLocked(Principal{Tenant: tenant, Topology: topology})
	e.inFlight--
	w := a.slotLocked(e)
	e.tot.Requests++
	w.Requests++
	e.tot.LatencyNanos += uint64(elapsed)
	w.LatencyNanos += uint64(elapsed)
	isErr := status >= 500
	if isErr {
		e.tot.Errors++
		w.Errors++
	}
	if e.inst != nil {
		e.inst.inFlight.Dec()
		e.inst.requests.Inc()
		if isErr {
			e.inst.errors.Inc()
		}
		e.inst.latency.Observe(elapsed.Seconds())
	}
	a.mu.Unlock()
}

// RecordRun attributes one model run's resource deltas (wall time,
// CPU thread time, allocated heap bytes, simulator ticks) to the
// principal. This is the hook the API tier calls with the
// core.RunCost measured around each predict/plan/calibrate run.
func (a *Accountant) RecordRun(tenant, topology string, wall, cpu time.Duration, allocBytes, simTicks uint64) {
	if wall < 0 {
		wall = 0
	}
	if cpu < 0 {
		cpu = 0
	}
	a.mu.Lock()
	e := a.getLocked(Principal{Tenant: tenant, Topology: topology})
	w := a.slotLocked(e)
	e.tot.Runs++
	w.Runs++
	e.tot.WallNanos += uint64(wall)
	w.WallNanos += uint64(wall)
	e.tot.CPUNanos += uint64(cpu)
	w.CPUNanos += uint64(cpu)
	e.tot.AllocBytes += allocBytes
	w.AllocBytes += allocBytes
	e.tot.SimTicks += simTicks
	w.SimTicks += simTicks
	if e.inst != nil {
		e.inst.runs.Inc()
		e.inst.wall.Add(wall.Seconds())
		e.inst.cpu.Add(cpu.Seconds())
		e.inst.allocs.Add(float64(allocBytes))
		e.inst.ticks.Add(float64(simTicks))
	}
	a.mu.Unlock()
}

// getLocked finds or creates the principal's entry, touching it in the
// LRU order, evicting if the cap is reached. The rollup principal maps
// onto the sticky other bucket.
func (a *Accountant) getLocked(p Principal) *entry {
	if e, ok := a.entries[p]; ok {
		if e != a.other {
			a.touchLocked(e)
		}
		return e
	}
	if p.Tenant == Rollup && p.Topology == Rollup {
		return a.otherLocked()
	}
	live := len(a.entries)
	if a.other != nil {
		live--
	}
	if live >= a.capacity {
		a.evictLocked()
	}
	e := &entry{p: p}
	if a.reg != nil {
		e.inst = a.registerLocked(p)
	}
	a.entries[p] = e
	a.pushFrontLocked(e)
	if a.principals != nil {
		a.principals.Set(float64(len(a.entries) - a.otherCount()))
	}
	return e
}

func (a *Accountant) otherCount() int {
	if a.other != nil {
		return 1
	}
	return 0
}

func (a *Accountant) registerLocked(p Principal) *instruments {
	l := telemetry.Labels{"tenant": p.Tenant, "topology": p.Topology}
	return &instruments{
		requests: a.reg.Counter(MetricRequests, l),
		errors:   a.reg.Counter(MetricErrors, l),
		latency:  a.reg.Histogram(MetricLatency, telemetry.DefLatencyBuckets, l),
		inFlight: a.reg.Gauge(MetricInFlight, l),
		wall:     a.reg.Counter(MetricWallSecs, l),
		cpu:      a.reg.Counter(MetricCPUSecs, l),
		allocs:   a.reg.Counter(MetricAllocBytes, l),
		ticks:    a.reg.Counter(MetricSimTicks, l),
		runs:     a.reg.Counter(MetricRuns, l),
	}
}

func (a *Accountant) unregisterLocked(p Principal) {
	l := telemetry.Labels{"tenant": p.Tenant, "topology": p.Topology}
	for _, name := range []string{
		MetricRequests, MetricErrors, MetricLatency, MetricInFlight,
		MetricWallSecs, MetricCPUSecs, MetricAllocBytes, MetricSimTicks, MetricRuns,
	} {
		a.reg.Unregister(name, l)
	}
}

// otherLocked lazily creates the sticky rollup bucket. It never sits
// on the LRU list and is never evicted.
func (a *Accountant) otherLocked() *entry {
	if a.other == nil {
		p := Principal{Tenant: Rollup, Topology: Rollup}
		a.other = &entry{p: p}
		if a.reg != nil {
			a.other.inst = a.registerLocked(p)
		}
		a.entries[p] = a.other
	}
	return a.other
}

// evictLocked rolls the least-recently-used principal into the other
// bucket: cumulative totals, live window slots, in-flight residue and
// the latency histogram all merge, then the principal's registry
// series are removed. Entries with requests still in flight are
// skipped if a nearby idle victim exists (bounded scan), so gauges
// stay sane under normal load; under pathological all-in-flight churn
// the cap still wins and the LRU entry goes regardless.
func (a *Accountant) evictLocked() {
	victim := a.tail
	for cand, scanned := a.tail, 0; cand != nil && scanned < 4; cand, scanned = cand.prev, scanned+1 {
		if cand.inFlight == 0 {
			victim = cand
			break
		}
	}
	if victim == nil {
		return
	}
	o := a.otherLocked()
	o.tot.add(victim.tot)
	o.inFlight += victim.inFlight
	epoch := a.epochNow()
	for i := range victim.win {
		ve := victim.winEpoch[i]
		if ve <= epoch-windowSlots {
			continue // outside the trailing window
		}
		switch {
		case o.winEpoch[i] == ve:
			o.win[i].add(victim.win[i])
		case o.winEpoch[i] < ve:
			o.win[i] = victim.win[i]
			o.winEpoch[i] = ve
		}
	}
	if o.inst != nil && victim.inst != nil {
		o.inst.requests.Add(float64(victim.tot.Requests))
		o.inst.errors.Add(float64(victim.tot.Errors))
		o.inst.latency.Merge(victim.inst.latency)
		o.inst.inFlight.Add(float64(victim.inFlight))
		o.inst.wall.Add(time.Duration(victim.tot.WallNanos).Seconds())
		o.inst.cpu.Add(time.Duration(victim.tot.CPUNanos).Seconds())
		o.inst.allocs.Add(float64(victim.tot.AllocBytes))
		o.inst.ticks.Add(float64(victim.tot.SimTicks))
		o.inst.runs.Add(float64(victim.tot.Runs))
	}
	a.removeLocked(victim)
	delete(a.entries, victim.p)
	if a.reg != nil {
		a.unregisterLocked(victim.p)
	}
	a.evicted++
	if a.evictions != nil {
		a.evictions.Inc()
	}
}

// --- LRU list ---------------------------------------------------------------

func (a *Accountant) pushFrontLocked(e *entry) {
	e.prev, e.next = nil, a.head
	if a.head != nil {
		a.head.prev = e
	}
	a.head = e
	if a.tail == nil {
		a.tail = e
	}
}

func (a *Accountant) removeLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		a.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		a.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (a *Accountant) touchLocked(e *entry) {
	if a.head == e {
		return
	}
	a.removeLocked(e)
	a.pushFrontLocked(e)
}

// --- trailing window --------------------------------------------------------

func (a *Accountant) epochNow() int64 {
	return a.now().UnixNano() / int64(a.slotDur)
}

// slotLocked returns the entry's current window slot, zeroing it first
// if its epoch is stale (lazy rotation; no background goroutine).
func (a *Accountant) slotLocked(e *entry) *Totals {
	epoch := a.epochNow()
	i := int(epoch % windowSlots)
	if e.winEpoch[i] != epoch {
		e.win[i] = Totals{}
		e.winEpoch[i] = epoch
	}
	return &e.win[i]
}

// windowLocked sums the entry's non-expired slots.
func (e *entry) windowLocked(epoch int64) Totals {
	var t Totals
	for i := range e.win {
		if e.winEpoch[i] > epoch-windowSlots {
			t.add(e.win[i])
		}
	}
	return t
}

// PrincipalUsage is one principal's snapshot.
type PrincipalUsage struct {
	Principal
	// Rollup marks the sticky "other" bucket holding evicted history.
	Rollup   bool   `json:"rollup,omitempty"`
	InFlight int64  `json:"in_flight"`
	Totals   Totals `json:"totals"`
	// Window is consumption over the trailing ranking window.
	Window Totals `json:"window"`
}

// Snapshot returns every live principal plus the rollup bucket (when
// it exists), in unspecified order.
func (a *Accountant) Snapshot() []PrincipalUsage {
	a.mu.Lock()
	defer a.mu.Unlock()
	epoch := a.epochNow()
	out := make([]PrincipalUsage, 0, len(a.entries))
	for _, e := range a.entries {
		out = append(out, PrincipalUsage{
			Principal: e.p,
			Rollup:    e == a.other,
			InFlight:  e.inFlight,
			Totals:    e.tot,
			Window:    e.windowLocked(epoch),
		})
	}
	return out
}
