package metrics

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"caladrius/internal/telemetry"
	"caladrius/internal/tsdb"
)

// flakyProvider fails its first `failN` calls with the given error,
// then succeeds. The call counter is atomic because timed-out attempts
// keep running in abandoned goroutines.
type flakyProvider struct {
	failN int64
	err   error
	calls atomic.Int64
	// block, when set, makes every call wait on it (timeout tests).
	block chan struct{}
}

func (f *flakyProvider) do() error {
	n := f.calls.Add(1)
	if f.block != nil {
		<-f.block
	}
	if n <= f.failN {
		return f.err
	}
	return nil
}

func (f *flakyProvider) ComponentWindows(_, _ string, _, _ time.Time) ([]Window, error) {
	if err := f.do(); err != nil {
		return nil, err
	}
	return []Window{{Execute: 1}}, nil
}
func (f *flakyProvider) InstanceWindows(_, _ string, _ int, _, _ time.Time) ([]Window, error) {
	if err := f.do(); err != nil {
		return nil, err
	}
	return []Window{{Execute: 1}}, nil
}
func (f *flakyProvider) SourceRate(_ string, _ []string, _, _ time.Time) ([]tsdb.Point, error) {
	if err := f.do(); err != nil {
		return nil, err
	}
	return []tsdb.Point{{V: 1}}, nil
}
func (f *flakyProvider) TopologyBackpressureMs(_ string, _, _ time.Time) ([]tsdb.Point, error) {
	if err := f.do(); err != nil {
		return nil, err
	}
	return []tsdb.Point{{V: 1}}, nil
}
func (f *flakyProvider) StreamEmitTotals(_, _ string, _, _ time.Time) (map[string]float64, error) {
	if err := f.do(); err != nil {
		return nil, err
	}
	return map[string]float64{"s": 1}, nil
}

func unavailable() error { return fmt.Errorf("%w: backend sulking", ErrUnavailable) }

func TestRetryRecoversFromTransientFailures(t *testing.T) {
	inner := &flakyProvider{failN: 2, err: unavailable()}
	reg := telemetry.NewRegistry()
	p := NewRetryingProvider(inner, RetryConfig{Retries: 2, Backoff: 10 * time.Millisecond}, reg)
	var slept []time.Duration
	p.sleep = func(d time.Duration) { slept = append(slept, d) }

	ws, err := p.ComponentWindows("t", "c", time.Time{}, time.Time{})
	if err != nil {
		t.Fatalf("want recovery on 3rd attempt, got %v", err)
	}
	if len(ws) != 1 || inner.calls.Load() != 3 {
		t.Errorf("windows %d, calls %d; want 1 windows after 3 calls", len(ws), inner.calls.Load())
	}
	// Exponential backoff: 10ms then 20ms.
	if len(slept) != 2 || slept[0] != 10*time.Millisecond || slept[1] != 20*time.Millisecond {
		t.Errorf("backoff sequence %v, want [10ms 20ms]", slept)
	}
	if v := reg.Counter("caladrius_fetch_retries_total", telemetry.Labels{"provider": "metrics"}).Value(); v != 2 {
		t.Errorf("retries counter = %g, want 2", v)
	}
	if v := reg.Counter("caladrius_fetch_failures_total", telemetry.Labels{"provider": "metrics"}).Value(); v != 0 {
		t.Errorf("failures counter = %g, want 0 (the fetch succeeded)", v)
	}
}

func TestRetryExhaustionCountsFailure(t *testing.T) {
	inner := &flakyProvider{failN: 10, err: unavailable()}
	reg := telemetry.NewRegistry()
	p := NewRetryingProvider(inner, RetryConfig{Retries: 2, Backoff: time.Millisecond}, reg)
	p.sleep = func(time.Duration) {}

	_, err := p.SourceRate("t", []string{"s"}, time.Time{}, time.Time{})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable after exhaustion, got %v", err)
	}
	if inner.calls.Load() != 3 {
		t.Errorf("calls = %d, want 3 (1 + 2 retries)", inner.calls.Load())
	}
	if v := reg.Counter("caladrius_fetch_failures_total", telemetry.Labels{"provider": "metrics"}).Value(); v != 1 {
		t.Errorf("failures counter = %g, want 1", v)
	}
}

func TestNoRetryOnDefinitiveErrors(t *testing.T) {
	inner := &flakyProvider{failN: 10, err: fmt.Errorf("%w: empty range", ErrNoData)}
	p := NewRetryingProvider(inner, RetryConfig{Retries: 5, Backoff: time.Millisecond}, nil)
	p.sleep = func(d time.Duration) { t.Errorf("slept %s for a definitive error", d) }

	_, err := p.InstanceWindows("t", "c", 0, time.Time{}, time.Time{})
	if !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData passed through, got %v", err)
	}
	if inner.calls.Load() != 1 {
		t.Errorf("calls = %d, want 1 (no retries on ErrNoData)", inner.calls.Load())
	}
}

func TestAttemptTimeoutBecomesUnavailable(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	inner := &flakyProvider{block: block}
	p := NewRetryingProvider(inner, RetryConfig{Retries: 1, Backoff: time.Millisecond, Timeout: 5 * time.Millisecond}, nil)
	p.sleep = func(time.Duration) {}

	_, err := p.TopologyBackpressureMs("t", time.Time{}, time.Time{})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want timeout surfaced as ErrUnavailable, got %v", err)
	}
	if inner.calls.Load() != 2 {
		t.Errorf("calls = %d, want 2 (timeouts are retried)", inner.calls.Load())
	}
}

func TestRetryDefaults(t *testing.T) {
	cfg := RetryConfig{}.withDefaults()
	if cfg.Retries != 2 || cfg.Backoff != 50*time.Millisecond || cfg.Timeout != 0 {
		t.Errorf("defaults = %+v, want {2 50ms 0}", cfg)
	}
	if cfg := (RetryConfig{Retries: -3}).withDefaults(); cfg.Retries != 0 {
		t.Errorf("negative retries → %d, want 0", cfg.Retries)
	}
	// All five methods pass through a healthy inner provider.
	p := NewRetryingProvider(&flakyProvider{}, RetryConfig{}, nil)
	if _, err := p.ComponentWindows("t", "c", time.Time{}, time.Time{}); err != nil {
		t.Error(err)
	}
	if _, err := p.InstanceWindows("t", "c", 0, time.Time{}, time.Time{}); err != nil {
		t.Error(err)
	}
	if _, err := p.SourceRate("t", []string{"s"}, time.Time{}, time.Time{}); err != nil {
		t.Error(err)
	}
	if _, err := p.TopologyBackpressureMs("t", time.Time{}, time.Time{}); err != nil {
		t.Error(err)
	}
	if _, err := p.StreamEmitTotals("t", "c", time.Time{}, time.Time{}); err != nil {
		t.Error(err)
	}
}
