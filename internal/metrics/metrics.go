// Package metrics implements Caladrius' metrics-provider component
// (§III-C2 of the paper): a typed query layer over the time-series
// database through which the traffic and performance models obtain the
// arrival rates, processed counts, emit counts, backpressure times and
// CPU loads of running topologies. The concrete implementation reads
// the tsdb that the heron simulator (or any other writer using the
// same metric names) populates.
package metrics

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"caladrius/internal/heron"
	"caladrius/internal/tsdb"
)

// ErrNoData mirrors tsdb.ErrNoData for callers of this package.
var ErrNoData = tsdb.ErrNoData

// ErrUnavailable reports that the metrics backend could not be reached
// (outage, partition, timeout). Unlike ErrNoData — a definitive "the
// range holds nothing" — an unavailable backend is transient: callers
// should retry with backoff (see NewRetryingProvider) or surface
// 503 + Retry-After rather than treating the data as absent.
var ErrUnavailable = errors.New("metrics: provider unavailable")

// Window is one metrics rollup interval of one entity (instance or
// component). Rates are raw counts per window, not normalised.
type Window struct {
	T time.Time
	// Source is the external offered load (spouts only; 0 for bolts).
	Source float64
	// Arrival is tuples arriving at the entity in the window.
	Arrival float64
	// Execute is tuples processed (the entity's input throughput).
	Execute float64
	// Emit is tuples emitted (the entity's output throughput).
	Emit float64
	// FailedTuples counts user-logic failures.
	FailedTuples float64
	// BackpressureMs is milliseconds spent initiating backpressure.
	BackpressureMs float64
	// CPULoad is the average cores used over the window.
	CPULoad float64
	// LatencyMs is the average per-tuple queueing delay over the
	// window (mean across instances for component windows).
	LatencyMs float64
}

// Provider is Caladrius' metrics interface. Implementations must
// return windows in ascending time order.
type Provider interface {
	// ComponentWindows returns per-window metrics summed across all
	// instances of a component (CPU load is summed too: it is a
	// component-level cores figure).
	ComponentWindows(topology, component string, start, end time.Time) ([]Window, error)
	// InstanceWindows returns per-window metrics for one instance.
	InstanceWindows(topology, component string, index int, start, end time.Time) ([]Window, error)
	// SourceRate returns the topology's source throughput series:
	// offered tuples per window summed over the given spout
	// components.
	SourceRate(topology string, spouts []string, start, end time.Time) ([]tsdb.Point, error)
	// TopologyBackpressureMs returns the per-window topology-level
	// backpressure time series.
	TopologyBackpressureMs(topology string, start, end time.Time) ([]tsdb.Point, error)
	// StreamEmitTotals returns, per outbound stream of a component
	// (keyed "name->destination"), the total tuples emitted on it over
	// the range. Empty when the writer does not record per-stream
	// counts.
	StreamEmitTotals(topology, component string, start, end time.Time) (map[string]float64, error)
}

// TSDBProvider reads metrics written by the heron simulator.
type TSDBProvider struct {
	db     *tsdb.DB
	window time.Duration
}

// NewTSDBProvider wraps a database. window is the rollup interval the
// writer used (the simulator default is one minute).
func NewTSDBProvider(db *tsdb.DB, window time.Duration) (*TSDBProvider, error) {
	if db == nil {
		return nil, errors.New("metrics: nil database")
	}
	if window <= 0 {
		return nil, fmt.Errorf("metrics: non-positive window %s", window)
	}
	return &TSDBProvider{db: db, window: window}, nil
}

// Window returns the provider's rollup interval.
func (p *TSDBProvider) Window() time.Duration { return p.window }

// seriesByTime fetches one metric for a selector and indexes it by
// bucket time.
func (p *TSDBProvider) seriesByTime(metric string, sel tsdb.Labels, start, end time.Time, agg tsdb.Agg) (map[time.Time]float64, error) {
	s, err := p.db.Downsample(metric, sel, start, end, p.window, tsdb.AggSum, agg)
	if err != nil {
		if errors.Is(err, tsdb.ErrNoData) {
			return map[time.Time]float64{}, nil
		}
		return nil, err
	}
	out := make(map[time.Time]float64, len(s.Points))
	for _, pt := range s.Points {
		out[pt.T] = pt.V
	}
	return out, nil
}

func (p *TSDBProvider) windows(sel tsdb.Labels, start, end time.Time) ([]Window, error) {
	type metricSpec struct {
		name  string
		merge tsdb.Agg // cross-instance merge: counts sum, latencies average
		store func(*Window, float64)
	}
	specs := []metricSpec{
		{heron.MetricSourceCount, tsdb.AggSum, func(w *Window, v float64) { w.Source = v }},
		{heron.MetricArrivalCount, tsdb.AggSum, func(w *Window, v float64) { w.Arrival = v }},
		{heron.MetricExecuteCount, tsdb.AggSum, func(w *Window, v float64) { w.Execute = v }},
		{heron.MetricEmitCount, tsdb.AggSum, func(w *Window, v float64) { w.Emit = v }},
		{heron.MetricFailCount, tsdb.AggSum, func(w *Window, v float64) { w.FailedTuples = v }},
		{heron.MetricBackpressureMs, tsdb.AggSum, func(w *Window, v float64) { w.BackpressureMs = v }},
		{heron.MetricCPULoad, tsdb.AggSum, func(w *Window, v float64) { w.CPULoad = v }},
		{heron.MetricLatencyMs, tsdb.AggMean, func(w *Window, v float64) { w.LatencyMs = v }},
	}
	byTime := map[time.Time]*Window{}
	found := false
	for _, spec := range specs {
		vals, err := p.seriesByTime(spec.name, sel, start, end, spec.merge)
		if err != nil {
			return nil, err
		}
		for t, v := range vals {
			found = true
			w, ok := byTime[t]
			if !ok {
				w = &Window{T: t}
				byTime[t] = w
			}
			spec.store(w, v)
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: selector %v in [%s, %s)", ErrNoData, sel, start, end)
	}
	out := make([]Window, 0, len(byTime))
	for _, w := range byTime {
		out = append(out, *w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T.Before(out[j].T) })
	return out, nil
}

// ComponentWindows implements Provider.
func (p *TSDBProvider) ComponentWindows(topology, component string, start, end time.Time) ([]Window, error) {
	return p.windows(tsdb.Labels{"topology": topology, "component": component}, start, end)
}

// InstanceWindows implements Provider.
func (p *TSDBProvider) InstanceWindows(topology, component string, index int, start, end time.Time) ([]Window, error) {
	return p.windows(tsdb.Labels{
		"topology":  topology,
		"component": component,
		"instance":  fmt.Sprintf("%d", index),
	}, start, end)
}

// SourceRate implements Provider.
func (p *TSDBProvider) SourceRate(topology string, spouts []string, start, end time.Time) ([]tsdb.Point, error) {
	if len(spouts) == 0 {
		return nil, errors.New("metrics: no spout components given")
	}
	totals := map[time.Time]float64{}
	for _, spout := range spouts {
		vals, err := p.seriesByTime(heron.MetricSourceCount, tsdb.Labels{"topology": topology, "component": spout}, start, end, tsdb.AggSum)
		if err != nil {
			return nil, err
		}
		for t, v := range vals {
			totals[t] += v
		}
	}
	if len(totals) == 0 {
		return nil, fmt.Errorf("%w: source rate of %q spouts %v", ErrNoData, topology, spouts)
	}
	out := make([]tsdb.Point, 0, len(totals))
	for t, v := range totals {
		out = append(out, tsdb.Point{T: t, V: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T.Before(out[j].T) })
	return out, nil
}

// TopologyBackpressureMs implements Provider.
func (p *TSDBProvider) TopologyBackpressureMs(topology string, start, end time.Time) ([]tsdb.Point, error) {
	s, err := p.db.Downsample(heron.MetricBackpressureMs,
		tsdb.Labels{"topology": topology, "component": heron.TopologyComponent},
		start, end, p.window, tsdb.AggSum, tsdb.AggSum)
	if err != nil {
		return nil, err
	}
	return s.Points, nil
}

// StreamEmitTotals implements Provider.
func (p *TSDBProvider) StreamEmitTotals(topology, component string, start, end time.Time) (map[string]float64, error) {
	out := map[string]float64{}
	for _, stream := range p.db.LabelValues(heron.MetricStreamEmitCount, "stream") {
		total, err := p.db.Aggregate(heron.MetricStreamEmitCount, tsdb.Labels{
			"topology":  topology,
			"component": component,
			"stream":    stream,
		}, start, end, tsdb.AggSum)
		if errors.Is(err, tsdb.ErrNoData) {
			continue
		}
		if err != nil {
			return nil, err
		}
		out[stream] = total
	}
	return out, nil
}

// SteadyState summarises a window slice into per-window means, after
// dropping the given number of warmup windows. It is the calibration
// input shape used throughout the models.
type SteadyState struct {
	Windows        int
	Source         float64
	Arrival        float64
	Execute        float64
	Emit           float64
	BackpressureMs float64
	CPULoad        float64
	LatencyMs      float64
}

// Summarise computes the steady-state means of ws after dropping
// warmup leading windows. It errors when nothing remains.
func Summarise(ws []Window, warmup int) (SteadyState, error) {
	if warmup < 0 {
		warmup = 0
	}
	if warmup >= len(ws) {
		return SteadyState{}, fmt.Errorf("metrics: %d windows with warmup %d leaves nothing", len(ws), warmup)
	}
	rest := ws[warmup:]
	var s SteadyState
	for _, w := range rest {
		s.Source += w.Source
		s.Arrival += w.Arrival
		s.Execute += w.Execute
		s.Emit += w.Emit
		s.BackpressureMs += w.BackpressureMs
		s.CPULoad += w.CPULoad
		s.LatencyMs += w.LatencyMs
	}
	n := float64(len(rest))
	s.Windows = len(rest)
	s.Source /= n
	s.Arrival /= n
	s.Execute /= n
	s.Emit /= n
	s.BackpressureMs /= n
	s.CPULoad /= n
	s.LatencyMs /= n
	return s, nil
}
