package metrics

import (
	"errors"
	"fmt"
	"time"

	"caladrius/internal/telemetry"
	"caladrius/internal/tsdb"
)

// RetryConfig tunes the retrying provider decorator.
type RetryConfig struct {
	// Retries is the number of additional attempts after the first
	// failed one. Default 2.
	Retries int
	// Backoff is the delay before the first retry; it doubles after
	// every further attempt. Default 50ms.
	Backoff time.Duration
	// Timeout bounds each individual attempt; an attempt that exceeds
	// it fails as ErrUnavailable (the in-flight call is abandoned, the
	// Provider interface carries no context). 0 disables the bound.
	Timeout time.Duration
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	return c
}

// RetryingProvider decorates a Provider with per-call timeouts and
// retry-with-exponential-backoff on transient failures
// (ErrUnavailable, including timeouts). Definitive results — data,
// ErrNoData, malformed-argument errors — pass through untouched on the
// first attempt. Retries and exhausted-retry failures are counted in
// caladrius_fetch_retries_total / caladrius_fetch_failures_total.
type RetryingProvider struct {
	inner    Provider
	cfg      RetryConfig
	retries  *telemetry.Counter
	failures *telemetry.Counter
	sleep    func(time.Duration) // injectable for tests
}

// NewRetryingProvider wraps inner. reg may be nil (no counters).
func NewRetryingProvider(inner Provider, cfg RetryConfig, reg *telemetry.Registry) *RetryingProvider {
	p := &RetryingProvider{inner: inner, cfg: cfg.withDefaults(), sleep: time.Sleep}
	if reg != nil {
		reg.SetHelp("caladrius_fetch_retries_total", "Metrics-provider fetch attempts retried after a transient failure.")
		reg.SetHelp("caladrius_fetch_failures_total", "Metrics-provider fetches that failed after exhausting retries.")
		l := telemetry.Labels{"provider": "metrics"}
		p.retries = reg.Counter("caladrius_fetch_retries_total", l)
		p.failures = reg.Counter("caladrius_fetch_failures_total", l)
	}
	return p
}

// retryable reports whether the error is worth another attempt: only
// transient unavailability is; ErrNoData and validation errors are
// definitive answers.
func retryable(err error) bool {
	return errors.Is(err, ErrUnavailable)
}

// doFetch runs one provider call under the retry/timeout policy.
func doFetch[T any](p *RetryingProvider, call func() (T, error)) (T, error) {
	backoff := p.cfg.Backoff
	var v T
	var err error
	for attempt := 0; ; attempt++ {
		v, err = attemptFetch(p.cfg.Timeout, call)
		if err == nil || !retryable(err) || attempt == p.cfg.Retries {
			break
		}
		if p.retries != nil {
			p.retries.Inc()
		}
		p.sleep(backoff)
		backoff *= 2
	}
	if err != nil && retryable(err) && p.failures != nil {
		p.failures.Inc()
	}
	return v, err
}

// attemptFetch runs one attempt, bounded by timeout when positive. On
// timeout the in-flight call is abandoned (its goroutine drains into a
// buffered channel) and the attempt reports ErrUnavailable.
func attemptFetch[T any](timeout time.Duration, call func() (T, error)) (T, error) {
	if timeout <= 0 {
		return call()
	}
	type result struct {
		v   T
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := call()
		ch <- result{v, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-timer.C:
		var zero T
		return zero, fmt.Errorf("%w: attempt exceeded timeout %s", ErrUnavailable, timeout)
	}
}

// ComponentWindows implements Provider.
func (p *RetryingProvider) ComponentWindows(topology, component string, start, end time.Time) ([]Window, error) {
	return doFetch(p, func() ([]Window, error) {
		return p.inner.ComponentWindows(topology, component, start, end)
	})
}

// InstanceWindows implements Provider.
func (p *RetryingProvider) InstanceWindows(topology, component string, index int, start, end time.Time) ([]Window, error) {
	return doFetch(p, func() ([]Window, error) {
		return p.inner.InstanceWindows(topology, component, index, start, end)
	})
}

// SourceRate implements Provider.
func (p *RetryingProvider) SourceRate(topology string, spouts []string, start, end time.Time) ([]tsdb.Point, error) {
	return doFetch(p, func() ([]tsdb.Point, error) {
		return p.inner.SourceRate(topology, spouts, start, end)
	})
}

// TopologyBackpressureMs implements Provider.
func (p *RetryingProvider) TopologyBackpressureMs(topology string, start, end time.Time) ([]tsdb.Point, error) {
	return doFetch(p, func() ([]tsdb.Point, error) {
		return p.inner.TopologyBackpressureMs(topology, start, end)
	})
}

// StreamEmitTotals implements Provider.
func (p *RetryingProvider) StreamEmitTotals(topology, component string, start, end time.Time) (map[string]float64, error) {
	return doFetch(p, func() (map[string]float64, error) {
		return p.inner.StreamEmitTotals(topology, component, start, end)
	})
}
