package metrics

import (
	"errors"
	"math"
	"testing"
	"time"

	"caladrius/internal/heron"
	"caladrius/internal/tsdb"
)

func runSim(t *testing.T, opts heron.WordCountOptions, minutes int) *heron.Simulation {
	t.Helper()
	s, err := heron.NewWordCount(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(time.Duration(minutes) * time.Minute); err != nil {
		t.Fatal(err)
	}
	return s
}

func provider(t *testing.T, s *heron.Simulation) *TSDBProvider {
	t.Helper()
	p, err := NewTSDBProvider(s.DB(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewTSDBProviderValidation(t *testing.T) {
	if _, err := NewTSDBProvider(nil, time.Minute); err == nil {
		t.Error("nil db accepted")
	}
	if _, err := NewTSDBProvider(tsdb.New(0), 0); err == nil {
		t.Error("zero window accepted")
	}
	p, err := NewTSDBProvider(tsdb.New(0), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if p.Window() != time.Minute {
		t.Errorf("window = %s", p.Window())
	}
}

func TestComponentWindows(t *testing.T) {
	s := runSim(t, heron.WordCountOptions{RatePerMinute: 6e6}, 6)
	p := provider(t, s)
	ws, err := p.ComponentWindows("word-count", "splitter", s.Start(), s.Start().Add(6*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 6 {
		t.Fatalf("windows = %d, want 6", len(ws))
	}
	for i := 1; i < len(ws); i++ {
		if !ws[i].T.After(ws[i-1].T) {
			t.Fatal("windows not ascending")
		}
	}
	// Steady-state window: execute ≈ 6e6/min, emit ≈ α×execute.
	w := ws[3]
	if math.Abs(w.Execute-6e6)/6e6 > 0.02 {
		t.Errorf("execute = %.4g", w.Execute)
	}
	if ratio := w.Emit / w.Execute; math.Abs(ratio-heron.SplitterAlpha) > 0.01 {
		t.Errorf("alpha = %.4f", ratio)
	}
	if w.Source != 0 {
		t.Errorf("bolt source = %g, want 0", w.Source)
	}
	if w.CPULoad <= 0 {
		t.Errorf("cpu = %g", w.CPULoad)
	}
	if w.BackpressureMs != 0 {
		t.Errorf("bp = %g", w.BackpressureMs)
	}
}

func TestInstanceWindowsSumToComponent(t *testing.T) {
	s := runSim(t, heron.WordCountOptions{SplitterP: 3, RatePerMinute: 9e6}, 5)
	p := provider(t, s)
	comp, err := p.ComponentWindows("word-count", "splitter", s.Start(), s.Start().Add(5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	var instSum float64
	for i := 0; i < 3; i++ {
		ws, err := p.InstanceWindows("word-count", "splitter", i, s.Start(), s.Start().Add(5*time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		if len(ws) != len(comp) {
			t.Fatalf("instance %d windows = %d, component = %d", i, len(ws), len(comp))
		}
		instSum += ws[2].Execute
	}
	if math.Abs(instSum-comp[2].Execute) > 1e-6*comp[2].Execute {
		t.Errorf("instance sum %.6g != component %.6g", instSum, comp[2].Execute)
	}
}

func TestSourceRate(t *testing.T) {
	s := runSim(t, heron.WordCountOptions{RatePerMinute: 4e6}, 5)
	p := provider(t, s)
	pts, err := p.SourceRate("word-count", []string{"spout"}, s.Start(), s.Start().Add(5*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if math.Abs(pt.V-4e6)/4e6 > 0.01 {
			t.Errorf("source = %.4g at %v", pt.V, pt.T)
		}
	}
	if _, err := p.SourceRate("word-count", nil, s.Start(), s.Start().Add(time.Minute)); err == nil {
		t.Error("empty spout list accepted")
	}
	if _, err := p.SourceRate("ghost", []string{"spout"}, s.Start(), s.Start().Add(time.Minute)); !errors.Is(err, ErrNoData) {
		t.Errorf("unknown topology: %v", err)
	}
}

func TestTopologyBackpressure(t *testing.T) {
	s := runSim(t, heron.WordCountOptions{RatePerMinute: 15e6}, 8)
	p := provider(t, s)
	pts, err := p.TopologyBackpressureMs("word-count", s.Start().Add(4*time.Minute), s.Start().Add(8*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.V < 50_000 {
			t.Errorf("bp at %v = %.0f, want ≳50000", pt.T, pt.V)
		}
	}
}

func TestWindowsErrNoData(t *testing.T) {
	db := tsdb.New(0)
	p, err := NewTSDBProvider(db, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ComponentWindows("t", "c", time.Unix(0, 0), time.Unix(3600, 0)); !errors.Is(err, ErrNoData) {
		t.Errorf("empty db: %v", err)
	}
}

func TestSummarise(t *testing.T) {
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	ws := []Window{
		{T: base, Execute: 100, Emit: 700}, // warmup
		{T: base.Add(time.Minute), Execute: 200, Emit: 1400, CPULoad: 1, BackpressureMs: 1000},
		{T: base.Add(2 * time.Minute), Execute: 300, Emit: 2100, CPULoad: 2, BackpressureMs: 2000},
	}
	s, err := Summarise(ws, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Windows != 2 || s.Execute != 250 || s.Emit != 1750 || s.CPULoad != 1.5 || s.BackpressureMs != 1500 {
		t.Errorf("summary = %+v", s)
	}
	if _, err := Summarise(ws, 3); err == nil {
		t.Error("warmup ≥ len accepted")
	}
	// Negative warmup treated as zero.
	s, err = Summarise(ws, -5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Windows != 3 {
		t.Errorf("windows = %d", s.Windows)
	}
}

func TestComponentWindowsLatency(t *testing.T) {
	// Saturated splitter: latency reflects watermark-bounded queues
	// and merges across instances by mean, not sum.
	s := runSim(t, heron.WordCountOptions{SplitterP: 2, RatePerMinute: 30e6}, 8)
	p := provider(t, s)
	ws, err := p.ComponentWindows("word-count", "splitter", s.Start().Add(4*time.Minute), s.Start().Add(8*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	ss, err := Summarise(ws, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ss.LatencyMs < 500 {
		t.Errorf("saturated latency = %.0f ms, want ≳500", ss.LatencyMs)
	}
	// Mean-merge sanity: component latency is close to each instance's
	// latency, not their sum.
	iw, err := p.InstanceWindows("word-count", "splitter", 0, s.Start().Add(4*time.Minute), s.Start().Add(8*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	iss, err := Summarise(iw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ss.LatencyMs > 1.5*iss.LatencyMs {
		t.Errorf("component latency %.0f should not sum instances (instance %.0f)", ss.LatencyMs, iss.LatencyMs)
	}
}
