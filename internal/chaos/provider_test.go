package chaos

import (
	"errors"
	"testing"
	"time"

	"caladrius/internal/metrics"
	"caladrius/internal/tsdb"
)

// stubProvider returns fixed windows/points stamped at its origin plus
// 0,1,2,… minutes.
type stubProvider struct {
	origin time.Time
	n      int
}

func (s *stubProvider) wins() []metrics.Window {
	out := make([]metrics.Window, s.n)
	for i := range out {
		out[i] = metrics.Window{T: s.origin.Add(time.Duration(i) * time.Minute), Execute: float64(i + 1)}
	}
	return out
}

func (s *stubProvider) pts() []tsdb.Point {
	out := make([]tsdb.Point, s.n)
	for i := range out {
		out[i] = tsdb.Point{T: s.origin.Add(time.Duration(i) * time.Minute), V: float64(i + 1)}
	}
	return out
}

func (s *stubProvider) ComponentWindows(_, _ string, _, _ time.Time) ([]metrics.Window, error) {
	return s.wins(), nil
}
func (s *stubProvider) InstanceWindows(_, _ string, _ int, _, _ time.Time) ([]metrics.Window, error) {
	return s.wins(), nil
}
func (s *stubProvider) SourceRate(_ string, _ []string, _, _ time.Time) ([]tsdb.Point, error) {
	return s.pts(), nil
}
func (s *stubProvider) TopologyBackpressureMs(_ string, _, _ time.Time) ([]tsdb.Point, error) {
	return s.pts(), nil
}
func (s *stubProvider) StreamEmitTotals(_, _ string, _, _ time.Time) (map[string]float64, error) {
	return map[string]float64{"default->counter": 42}, nil
}

func TestFaultyProviderOutage(t *testing.T) {
	origin := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	plan := &Plan{Faults: []Fault{{Kind: FaultMetricsOutage, At: Duration(time.Minute), Duration: Duration(time.Minute)}}}
	now := origin
	fp, err := NewFaultyProvider(&stubProvider{origin: origin, n: 5}, plan, ProviderOptions{
		Origin: origin,
		Now:    func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Before the outage: calls pass through.
	if ws, err := fp.ComponentWindows("t", "c", origin, origin.Add(time.Hour)); err != nil || len(ws) != 5 {
		t.Fatalf("pre-outage: %d windows, err %v", len(ws), err)
	}
	// During: every method fails with ErrUnavailable.
	now = origin.Add(90 * time.Second)
	if _, err := fp.ComponentWindows("t", "c", origin, origin.Add(time.Hour)); !errors.Is(err, metrics.ErrUnavailable) {
		t.Errorf("ComponentWindows during outage: %v, want ErrUnavailable", err)
	}
	if _, err := fp.InstanceWindows("t", "c", 0, origin, origin.Add(time.Hour)); !errors.Is(err, metrics.ErrUnavailable) {
		t.Errorf("InstanceWindows during outage: %v, want ErrUnavailable", err)
	}
	if _, err := fp.SourceRate("t", []string{"s"}, origin, origin.Add(time.Hour)); !errors.Is(err, metrics.ErrUnavailable) {
		t.Errorf("SourceRate during outage: %v, want ErrUnavailable", err)
	}
	if _, err := fp.TopologyBackpressureMs("t", origin, origin.Add(time.Hour)); !errors.Is(err, metrics.ErrUnavailable) {
		t.Errorf("TopologyBackpressureMs during outage: %v, want ErrUnavailable", err)
	}
	if _, err := fp.StreamEmitTotals("t", "c", origin, origin.Add(time.Hour)); !errors.Is(err, metrics.ErrUnavailable) {
		t.Errorf("StreamEmitTotals during outage: %v, want ErrUnavailable", err)
	}
	// After: healthy again.
	now = origin.Add(3 * time.Minute)
	if _, err := fp.ComponentWindows("t", "c", origin, origin.Add(time.Hour)); err != nil {
		t.Errorf("post-outage: %v", err)
	}
}

func TestFaultyProviderGapFiltersPoints(t *testing.T) {
	origin := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	// Gap covers minutes [1, 3): points at 1 and 2 vanish, 0/3/4 stay.
	plan := &Plan{Faults: []Fault{{Kind: FaultMetricsGap, At: Duration(time.Minute), Duration: Duration(2 * time.Minute)}}}
	fp, err := NewFaultyProvider(&stubProvider{origin: origin, n: 5}, plan, ProviderOptions{Origin: origin})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := fp.ComponentWindows("t", "c", origin, origin.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("got %d windows, want 3 (minutes 1 and 2 lost)", len(ws))
	}
	for _, w := range ws {
		if off := w.T.Sub(origin); off >= time.Minute && off < 3*time.Minute {
			t.Errorf("window at +%s survived the gap", off)
		}
	}
	pts, err := fp.SourceRate("t", []string{"s"}, origin, origin.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Errorf("got %d points, want 3", len(pts))
	}
}

func TestFaultyProviderGapSwallowingEverythingIsNoData(t *testing.T) {
	origin := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	plan := &Plan{Faults: []Fault{{Kind: FaultMetricsGap, At: 0, Duration: Duration(time.Hour)}}}
	fp, err := NewFaultyProvider(&stubProvider{origin: origin, n: 5}, plan, ProviderOptions{Origin: origin})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fp.ComponentWindows("t", "c", origin, origin.Add(time.Hour)); !errors.Is(err, metrics.ErrNoData) {
		t.Errorf("all-gap fetch: %v, want ErrNoData", err)
	}
}

func TestFaultyProviderLatency(t *testing.T) {
	origin := time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)
	plan := &Plan{Faults: []Fault{{
		Kind: FaultMetricsLatency, At: 0, Duration: Duration(time.Minute), Latency: Duration(25 * time.Millisecond),
	}}}
	var slept []time.Duration
	now := origin
	fp, err := NewFaultyProvider(&stubProvider{origin: origin, n: 2}, plan, ProviderOptions{
		Origin: origin,
		Now:    func() time.Time { return now },
		Sleep:  func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fp.ComponentWindows("t", "c", origin, origin.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 25*time.Millisecond {
		t.Errorf("slept %v, want one 25ms delay", slept)
	}
	now = origin.Add(2 * time.Minute)
	if _, err := fp.ComponentWindows("t", "c", origin, origin.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 {
		t.Errorf("latency applied outside its window: %v", slept)
	}
}

func TestNewFaultyProviderValidation(t *testing.T) {
	if _, err := NewFaultyProvider(nil, &Plan{}, ProviderOptions{Origin: time.Now()}); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := NewFaultyProvider(&stubProvider{}, nil, ProviderOptions{Origin: time.Now()}); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := NewFaultyProvider(&stubProvider{}, &Plan{}, ProviderOptions{}); err == nil {
		t.Error("zero origin accepted")
	}
}
