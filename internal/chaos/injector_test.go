package chaos

import (
	"strings"
	"testing"
	"time"

	"caladrius/internal/heron"
	"caladrius/internal/topology"
)

func TestInjectorLifecycleAndOneShotDrop(t *testing.T) {
	topo, pack := wordCountTargets(t)
	id := topology.InstanceID{Component: "splitter", Index: 1}
	plan := &Plan{Faults: []Fault{{
		Kind: FaultCrash, At: Duration(time.Minute), Duration: Duration(30 * time.Second),
		Component: id.Component, Instance: id.Index,
	}}}
	inj, err := NewInjector(plan, topo, pack)
	if err != nil {
		t.Fatal(err)
	}
	if inj.BeginTick(0) {
		t.Error("active before onset")
	}
	if !inj.BeginTick(time.Minute) {
		t.Fatal("inactive at onset")
	}
	f := inj.InstanceFault(id)
	if !f.Down || !f.DropQueue {
		t.Errorf("first read = %+v, want Down+DropQueue", f)
	}
	if other := inj.InstanceFault(topology.InstanceID{Component: "splitter", Index: 0}); other != (heron.InstanceFault{}) {
		t.Errorf("untargeted instance got %+v, want zero fault", other)
	}
	if !inj.BeginTick(time.Minute + 100*time.Millisecond) {
		t.Fatal("inactive mid-fault")
	}
	f = inj.InstanceFault(id)
	if !f.Down || f.DropQueue {
		t.Errorf("second read = %+v, want Down only (DropQueue is one-shot)", f)
	}
	if inj.BeginTick(time.Minute + 30*time.Second) {
		t.Error("still active at the exclusive end boundary")
	}
	if f := inj.InstanceFault(id); f != (heron.InstanceFault{}) {
		t.Errorf("post-fault read = %+v, want zero fault", f)
	}
	trace := inj.Trace()
	if !strings.Contains(trace, "start crash splitter[1]") || !strings.Contains(trace, "end   crash splitter[1]") {
		t.Errorf("trace missing boundaries:\n%s", trace)
	}
}

func TestInjectorContainerFaultExpandsToInstances(t *testing.T) {
	topo, pack := wordCountTargets(t)
	plan := &Plan{Faults: []Fault{{Kind: FaultPartition, At: 0, Duration: Duration(time.Minute), Container: 1}}}
	inj, err := NewInjector(plan, topo, pack)
	if err != nil {
		t.Fatal(err)
	}
	if !inj.BeginTick(0) {
		t.Fatal("inactive at onset")
	}
	hit := 0
	for _, id := range topo.Instances() {
		f := inj.InstanceFault(id)
		c, _ := pack.ContainerOf(id)
		if c == 1 {
			if !f.Unreachable {
				t.Errorf("%s in partitioned container not unreachable", id)
			}
			hit++
		} else if f != (heron.InstanceFault{}) {
			t.Errorf("%s outside container got %+v", id, f)
		}
	}
	if hit == 0 {
		t.Fatal("partition fault matched no instances")
	}
}

func TestInjectorTraceDeterministic(t *testing.T) {
	topo, pack := wordCountTargets(t)
	plan, err := GeneratePlan(11, topo, pack, GenOptions{Horizon: 15 * time.Minute, Faults: 6})
	if err != nil {
		t.Fatal(err)
	}
	run := func() string {
		inj, err := NewInjector(plan, topo, pack)
		if err != nil {
			t.Fatal(err)
		}
		for el := time.Duration(0); el < 15*time.Minute; el += 100 * time.Millisecond {
			if inj.BeginTick(el) {
				for _, id := range topo.Instances() {
					inj.InstanceFault(id)
				}
			}
		}
		return inj.Trace()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same plan produced different traces:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if a == "" {
		t.Error("empty trace for a 6-fault plan")
	}
}

func TestInjectorEndsApplyBeforeStarts(t *testing.T) {
	topo, pack := wordCountTargets(t)
	// Back-to-back faults on one instance: slow ends exactly when crash
	// starts. The end boundary must apply first so the crash's state
	// (with its one-shot drop) survives the tick.
	plan := &Plan{Faults: []Fault{
		{Kind: FaultSlow, At: 0, Duration: Duration(time.Minute), Component: "splitter", Instance: 0, Factor: 0.5},
		{Kind: FaultCrash, At: Duration(time.Minute), Duration: Duration(time.Minute), Component: "splitter", Instance: 0},
	}}
	inj, err := NewInjector(plan, topo, pack)
	if err != nil {
		t.Fatal(err)
	}
	inj.BeginTick(0)
	if !inj.BeginTick(time.Minute) {
		t.Fatal("inactive at handover tick")
	}
	f := inj.InstanceFault(topology.InstanceID{Component: "splitter", Index: 0})
	if !f.Down || !f.DropQueue || f.SlowFactor != 0 {
		t.Errorf("handover tick fault = %+v, want the crash effect", f)
	}
}
