package chaos

import (
	"fmt"
	"strings"
	"time"

	"caladrius/internal/heron"
	"caladrius/internal/topology"
)

// Injector implements heron.FaultInjector for a validated Plan. It
// expands the plan's simulator-side faults into a sorted timeline of
// per-instance start/end boundaries at construction, so BeginTick on a
// quiet tick is one index comparison and zero allocations. Every
// applied boundary is appended to a textual trace: two runs of the
// same plan under the same simulator configuration produce
// byte-identical traces.
//
// An Injector carries per-run mutable state — use a fresh one per
// Simulation.
type Injector struct {
	states map[topology.InstanceID]*instFaultState
	events []faultBoundary
	next   int
	active int
	trace  strings.Builder
}

type instFaultState struct {
	fault heron.InstanceFault
	on    bool
}

type faultBoundary struct {
	at    time.Duration
	start bool
	id    topology.InstanceID
	fault heron.InstanceFault // effect while active (start boundaries only)
	desc  string
}

// NewInjector validates the plan and builds its boundary timeline.
// Metrics-side faults are ignored here (see NewFaultyProvider).
func NewInjector(plan *Plan, topo *topology.Topology, pack *topology.PackingPlan) (*Injector, error) {
	if plan == nil {
		return nil, fmt.Errorf("chaos: nil plan")
	}
	if err := plan.Validate(topo, pack); err != nil {
		return nil, err
	}
	inj := &Injector{states: map[topology.InstanceID]*instFaultState{}}
	for _, id := range topo.Instances() {
		inj.states[id] = &instFaultState{}
	}
	for _, f := range plan.SimFaults() {
		var eff heron.InstanceFault
		switch f.Kind {
		case FaultCrash:
			eff = heron.InstanceFault{Down: true, DropQueue: true}
		case FaultSlow:
			eff = heron.InstanceFault{SlowFactor: f.Factor}
		case FaultStall:
			eff = heron.InstanceFault{Down: true}
		case FaultPartition:
			eff = heron.InstanceFault{Unreachable: true}
		}
		desc := f.String()
		for _, id := range f.instancesOf(topo, pack) {
			inj.events = append(inj.events,
				faultBoundary{at: time.Duration(f.At), start: true, id: id, fault: eff,
					desc: fmt.Sprintf("start %s @ %s", desc, id)},
				faultBoundary{at: f.End(), id: id,
					desc: fmt.Sprintf("end   %s @ %s", desc, id)})
		}
	}
	// Deterministic application order: by time, ends before starts (so
	// back-to-back faults on one instance hand over cleanly), then by
	// instance for same-instant boundaries of container faults.
	sortBoundaries(inj.events)
	return inj, nil
}

func sortBoundaries(evs []faultBoundary) {
	less := func(a, b faultBoundary) bool {
		if a.at != b.at {
			return a.at < b.at
		}
		if a.start != b.start {
			return !a.start // ends first
		}
		if a.id.Component != b.id.Component {
			return a.id.Component < b.id.Component
		}
		if a.id.Index != b.id.Index {
			return a.id.Index < b.id.Index
		}
		return a.desc < b.desc
	}
	// Insertion sort keeps this dependency-free and stable; timelines
	// are tiny.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && less(evs[j], evs[j-1]); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

// BeginTick implements heron.FaultInjector: it applies every boundary
// due at or before elapsed and reports whether any fault is active.
func (inj *Injector) BeginTick(elapsed time.Duration) bool {
	for inj.next < len(inj.events) && inj.events[inj.next].at <= elapsed {
		ev := inj.events[inj.next]
		inj.next++
		st := inj.states[ev.id]
		if ev.start {
			st.fault = ev.fault
			st.on = true
			inj.active++
		} else {
			st.fault = heron.InstanceFault{}
			st.on = false
			inj.active--
		}
		fmt.Fprintf(&inj.trace, "t=%-8s %s\n", elapsed, ev.desc)
	}
	return inj.active > 0
}

// InstanceFault implements heron.FaultInjector. One-shot effects
// (DropQueue) are consumed by the read, per the interface contract
// that the simulation reads each instance exactly once per fault tick.
func (inj *Injector) InstanceFault(id topology.InstanceID) heron.InstanceFault {
	st, ok := inj.states[id]
	if !ok || !st.on {
		return heron.InstanceFault{}
	}
	f := st.fault
	st.fault.DropQueue = false
	return f
}

// Trace returns the applied-boundary log so far. Runs of the same plan
// under the same simulator configuration yield byte-identical traces.
func (inj *Injector) Trace() string { return inj.trace.String() }
