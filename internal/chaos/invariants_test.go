package chaos

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"caladrius/internal/heron"
	"caladrius/internal/topology"
	"caladrius/internal/tsdb"
)

// The property suite for the fault-injection layer. For every seed and
// every fault kind (plus a combined plan mixing all of them) it runs
// the word-count simulation under a generated plan and asserts four
// invariants:
//
//  1. conservation — the per-instance tuple ledgers balance at every
//     checkpoint, faults included (drops are counted, never leaked);
//  2. bimodality — outside (padded) fault windows, per-minute topology
//     backpressure stays in the paper's two modes, ≈0 or ≈60 000 ms;
//  3. recovery — once the last fault clears and queues drain, the run's
//     late-window throughput returns to within ε of a fault-free twin;
//  4. determinism — the same seed yields a byte-identical fault trace
//     and metrics dump, sequentially and across concurrent runs (the
//     latter doubles as the -race check that runs share no state).

const (
	invRate    = 8e6 // tuples/minute, unsaturated (splitter p=3 SP ≈ 32.4e6)
	invHorizon = 15 * time.Minute
)

var invSeeds = []int64{1, 2, 3}

func invTargets(t *testing.T) (*topology.Topology, *topology.PackingPlan) {
	t.Helper()
	topo, err := heron.WordCountTopology(8, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	pack, err := topology.RoundRobinPack(topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	return topo, pack
}

func newInvSim(t *testing.T) *heron.Simulation {
	t.Helper()
	s, err := heron.NewWordCount(heron.WordCountOptions{
		SplitterP:     3,
		CounterP:      3,
		RatePerMinute: invRate,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// assertConservation checks the three tuple-conservation laws at the
// simulation's current tick.
func assertConservation(t *testing.T, s *heron.Simulation, ctx string) {
	t.Helper()
	closeTo := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-6*math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	}
	var emitted, boltInput float64
	for _, tot := range s.Totals() {
		emitted += tot.Emitted
		if tot.ID.Component == "spout" {
			if !closeTo(tot.Source, tot.Executed+tot.Backlog) {
				t.Errorf("%s: %s: Source %.8g != Executed %.8g + Backlog %.8g",
					ctx, tot.ID, tot.Source, tot.Executed, tot.Backlog)
			}
		} else {
			boltInput += tot.Arrived + tot.RouteDropped + tot.InFlight
			if !closeTo(tot.Arrived, tot.Executed+tot.QueueDropped+tot.Queue) {
				t.Errorf("%s: %s: Arrived %.8g != Executed %.8g + QueueDropped %.8g + Queue %.8g",
					ctx, tot.ID, tot.Arrived, tot.Executed, tot.QueueDropped, tot.Queue)
			}
		}
	}
	if !closeTo(emitted, boltInput) {
		t.Errorf("%s: wiring: Σ Emitted %.8g != Σ bolt input %.8g", ctx, emitted, boltInput)
	}
}

// runPlan executes the full horizon under the plan with conservation
// checkpoints every 3 simulated minutes, and returns the simulation.
func runPlan(t *testing.T, plan *Plan, ctx string) *heron.Simulation {
	t.Helper()
	topo, pack := invTargets(t)
	inj, err := NewInjector(plan, topo, pack)
	if err != nil {
		t.Fatal(err)
	}
	s := newInvSim(t)
	s.WithFaultInjector(inj)
	for el := time.Duration(0); el < invHorizon; el += 3 * time.Minute {
		if err := s.Run(3 * time.Minute); err != nil {
			t.Fatal(err)
		}
		assertConservation(t, s, fmt.Sprintf("%s t=%s", ctx, el+3*time.Minute))
	}
	return s
}

// bpPerMinute returns the topology backpressure series, one value per
// simulated minute.
func bpPerMinute(t *testing.T, s *heron.Simulation) []float64 {
	t.Helper()
	series, err := s.DB().Downsample(heron.MetricBackpressureMs,
		tsdb.Labels{"component": heron.TopologyComponent},
		s.Start(), s.Start().Add(invHorizon), time.Minute, tsdb.AggSum, tsdb.AggSum)
	if err != nil {
		t.Fatalf("backpressure downsample: %v", err)
	}
	out := make([]float64, 0, len(series.Points))
	for _, p := range series.Points {
		out = append(out, p.V)
	}
	return out
}

// assertBimodalOutsideFaults checks invariant 2: minutes that do not
// intersect any padded fault interval must sit in the low (≤1 000 ms)
// or high (≥50 000 ms) mode. Fault minutes themselves are exempt —
// partial degradation legitimately produces mid-band duty cycles while
// hysteresis oscillates — as is a short drain margin after each fault.
func assertBimodalOutsideFaults(t *testing.T, s *heron.Simulation, plan *Plan, ctx string) {
	t.Helper()
	type span struct{ from, to time.Duration }
	var padded []span
	for _, f := range plan.SimFaults() {
		padded = append(padded, span{time.Duration(f.At) - time.Minute, f.End() + 2*time.Minute})
	}
	for i, bp := range bpPerMinute(t, s) {
		m0 := time.Duration(i) * time.Minute
		excluded := false
		for _, sp := range padded {
			if m0 < sp.to && sp.from < m0+time.Minute {
				excluded = true
				break
			}
		}
		if excluded {
			continue
		}
		if bp > 1000 && bp < 50_000 {
			t.Errorf("%s: minute %d: backpressure %.0f ms is mid-band outside fault windows", ctx, i, bp)
		}
	}
}

// sinkRate averages the counter's executed tuples per minute over
// minutes [from, to).
func sinkRate(t *testing.T, s *heron.Simulation, from, to int) float64 {
	t.Helper()
	series, err := s.DB().Downsample(heron.MetricExecuteCount,
		tsdb.Labels{"component": "counter"},
		s.Start().Add(time.Duration(from)*time.Minute), s.Start().Add(time.Duration(to)*time.Minute),
		time.Minute, tsdb.AggSum, tsdb.AggSum)
	if err != nil {
		t.Fatalf("sink downsample: %v", err)
	}
	var sum float64
	for _, p := range series.Points {
		sum += p.V
	}
	return sum / float64(len(series.Points))
}

// planFor builds the deterministic per-seed plan for one kind (nil
// kind slice = the combined all-kinds plan).
func planFor(t *testing.T, seed int64, kinds []FaultKind) *Plan {
	t.Helper()
	topo, pack := invTargets(t)
	n := 2
	if len(kinds) != 1 {
		n = 4
	}
	plan, err := GeneratePlan(seed, topo, pack, GenOptions{Horizon: invHorizon, Faults: n, Kinds: kinds})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestInvariantsUnderEveryFaultKind(t *testing.T) {
	variants := map[string][]FaultKind{
		"crash":     {FaultCrash},
		"slow":      {FaultSlow},
		"stall":     {FaultStall},
		"partition": {FaultPartition},
		"combined":  nil, // all sim kinds
	}
	for name, kinds := range variants {
		kinds := kinds
		t.Run(name, func(t *testing.T) {
			for _, seed := range invSeeds {
				ctx := fmt.Sprintf("%s/seed=%d", name, seed)
				plan := planFor(t, seed, kinds)
				s := runPlan(t, plan, ctx)

				// Invariant 2: bimodality outside padded fault windows.
				assertBimodalOutsideFaults(t, s, plan, ctx)

				// Invariant 3: recovery. Generated faults end by 2/3 of
				// the horizon (10m); the last 3 minutes are long past any
				// drain, so the faulted run's sink throughput must match
				// a fault-free twin within 2%.
				twin := newInvSim(t)
				if err := twin.Run(invHorizon); err != nil {
					t.Fatal(err)
				}
				lastM := int(invHorizon / time.Minute)
				got := sinkRate(t, s, lastM-3, lastM)
				want := sinkRate(t, twin, lastM-3, lastM)
				if math.Abs(got-want)/want > 0.02 {
					t.Errorf("%s: post-fault sink %.5g vs fault-free %.5g (> 2%% apart): no recovery", ctx, got, want)
				}
			}
		})
	}
}

// faultRun is one full deterministic run's observable output: the
// injector's fault trace and the metric database's snapshot.
type faultRun struct {
	trace string
	dump  []byte
}

func oneFaultRun(t *testing.T, seed int64) faultRun {
	t.Helper()
	topo, pack := invTargets(t)
	plan := planFor(t, seed, nil)
	inj, err := NewInjector(plan, topo, pack)
	if err != nil {
		t.Fatal(err)
	}
	s := newInvSim(t)
	s.WithFaultInjector(inj)
	if err := s.Run(invHorizon); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.DB().WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return faultRun{trace: inj.Trace(), dump: buf.Bytes()}
}

func TestDeterminismSameSeedByteIdentical(t *testing.T) {
	for _, seed := range invSeeds {
		base := oneFaultRun(t, seed)
		if base.trace == "" {
			t.Fatalf("seed %d: empty fault trace for a 4-fault plan", seed)
		}
		again := oneFaultRun(t, seed)
		if again.trace != base.trace {
			t.Errorf("seed %d: sequential rerun produced a different fault trace", seed)
		}
		if !bytes.Equal(again.dump, base.dump) {
			t.Errorf("seed %d: sequential rerun produced a different metrics dump", seed)
		}
	}
	// Different seeds must actually differ — otherwise the determinism
	// assertions above are vacuous.
	if a, b := oneFaultRun(t, invSeeds[0]), oneFaultRun(t, invSeeds[1]); a.trace == b.trace {
		t.Error("seeds 1 and 2 produced identical fault traces")
	}
}

func TestDeterminismUnderConcurrency(t *testing.T) {
	// N concurrent simulations of the same seed: byte-identical outputs,
	// and — under `go test -race` — proof that injectors and simulations
	// share no mutable state.
	const workers = 4
	base := oneFaultRun(t, invSeeds[0])
	runs := make([]faultRun, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runs[i] = oneFaultRun(t, invSeeds[0])
		}(i)
	}
	wg.Wait()
	for i, r := range runs {
		if r.trace != base.trace {
			t.Errorf("worker %d: divergent fault trace", i)
		}
		if !bytes.Equal(r.dump, base.dump) {
			t.Errorf("worker %d: divergent metrics dump", i)
		}
	}
}
