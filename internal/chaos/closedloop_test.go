package chaos

import (
	"math"
	"testing"
	"time"

	"caladrius/internal/audit"
	"caladrius/internal/core"
	"caladrius/internal/heron"
	"caladrius/internal/metrics"
	"caladrius/internal/telemetry"
	"caladrius/internal/topology"
	"caladrius/internal/tsdb"
)

// The chaos closed loop: the full self-monitoring chain — simulator,
// calibrated model, audit ledger, drift SLO — exercised by an injected
// fault instead of a workload shift. A slow fault degrading every
// splitter instance makes the live topology fall away from its (still
// correct at calibration time) model, the accuracy-drift alert fires
// while the fault is active, and clears after the fault ends and the
// model is recalibrated.

// loopRecorder adapts the ledger to core.RunRecorder the way the API
// tier does, including the degraded-calibration flag.
type loopRecorder struct {
	led *audit.Ledger
}

func (r loopRecorder) RecordRun(run core.ModelRun) {
	p := run.Prediction
	sat := p.SaturationSource
	if math.IsInf(sat, 1) {
		sat = 0
	}
	cp := p.CriticalPath()
	sink := ""
	if len(cp.Path) > 0 {
		sink = cp.Path[len(cp.Path)-1]
	}
	r.led.Record(audit.Record{
		Topology:      "word-count",
		Model:         "predict",
		SourceRateTPM: run.SourceRate,
		Parallelism:   run.Parallelism,
		Degraded:      run.Degraded,
		Calibration:   run.Calibration,
		Predicted: audit.Predicted{
			SinkTPM:             p.SinkThroughput,
			OutputTPM:           cp.OutputRate,
			SaturationSourceTPM: sat,
			Bottleneck:          p.Bottleneck,
			Risk:                string(p.Risk),
			TotalCPUCores:       p.TotalCPU,
			Sink:                sink,
		},
	})
}

func alertState(t *testing.T, slo *telemetry.SLO, rule string) telemetry.AlertState {
	t.Helper()
	for _, a := range slo.Evaluate() {
		if a.Rule == rule {
			return a.State
		}
	}
	t.Fatalf("rule %s not evaluated", rule)
	return ""
}

func TestClosedLoopDriftDuringSlowFault(t *testing.T) {
	const (
		rate      = 20e6 // tuples/minute; splitter p=3 SP ≈ 32.4e6
		rollingN  = 8
		driftMAPE = 0.08
	)

	sim, err := heron.NewWordCount(heron.WordCountOptions{
		SplitterP:     3,
		CounterP:      4,
		RatePerMinute: rate,
	})
	if err != nil {
		t.Fatal(err)
	}
	topo, err := heron.WordCountTopology(8, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	pack, err := topology2(topo)
	if err != nil {
		t.Fatal(err)
	}

	// Slow ×0.5 on every splitter instance for minutes [36, 50): the
	// degraded component capacity (16.2 M/min) falls below the offered
	// 20 M/min, so observed sink throughput drops ≈ 23% under what the
	// healthy calibration predicts — past the 8% drift budget.
	plan := &Plan{Faults: []Fault{{
		Kind:      FaultSlow,
		At:        Duration(36 * time.Minute),
		Duration:  Duration(14 * time.Minute),
		Component: "splitter",
		Instance:  AllInstances,
		Factor:    0.5,
	}}}
	inj, err := NewInjector(plan, topo, pack)
	if err != nil {
		t.Fatal(err)
	}
	sim.WithFaultInjector(inj)

	start := sim.Start()
	if err := sim.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	prov, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	now := start.Add(30 * time.Minute)
	models, err := core.CalibrateTopologyFromProvider(prov, topo, start, now, core.CalibrationOptions{Warmup: 3})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := core.NewTopologyModel(topo, models)
	if err != nil {
		t.Fatal(err)
	}

	db := tsdb.New(24 * time.Hour)
	reg := telemetry.NewRegistry()
	led, err := audit.NewLedger(audit.Options{
		Provider:      prov,
		History:       db,
		Registry:      reg,
		Now:           func() time.Time { return now },
		RollingWindow: rollingN,
		ObserveWindow: 5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	led.NoteCalibration("word-count", now)
	slo, err := telemetry.NewSLO(db, reg, func() time.Time { return now },
		telemetry.ModelAccuracyRules(driftMAPE, 24*time.Hour, 15*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	rec := loopRecorder{led: led}
	firing := reg.Counter("caladrius_slo_transitions_total", telemetry.Labels{"rule": "model-accuracy-drift", "to": "firing"})
	resolved := reg.Counter("caladrius_slo_transitions_total", telemetry.Labels{"rule": "model-accuracy-drift", "to": "resolved"})

	predictN := func(m *core.TopologyModel, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := sim.Run(time.Minute); err != nil {
				t.Fatal(err)
			}
			now = now.Add(time.Minute)
			if _, err := m.PredictRecorded(rec, nil, rate); err != nil {
				t.Fatal(err)
			}
		}
	}
	mape := func(phase string) float64 {
		t.Helper()
		stats := led.Stats()
		if len(stats) != 1 || stats[0].MAPE == nil {
			t.Fatalf("%s: Stats = %+v", phase, stats)
		}
		return *stats[0].MAPE
	}

	// Phase 1 — healthy: minutes 30–36, no fault yet.
	predictN(tm, 6)
	if n := led.ResolveOnce(now); n != 6 {
		t.Fatalf("phase 1 ResolveOnce = %d, want 6", n)
	}
	if m := mape("phase 1"); m >= driftMAPE {
		t.Fatalf("phase 1 MAPE %g already above %g — calibration failed", m, driftMAPE)
	}
	now = now.Add(time.Second) // history ranges are end-exclusive
	if st := alertState(t, slo, "model-accuracy-drift"); st != telemetry.StateOK {
		t.Fatalf("phase 1 drift state = %s, want ok", st)
	}

	// Phase 2 — the slow fault bites at minute 36. Let it dominate the
	// trailing observe window, then audit a rolling window's worth of
	// predictions from the now-stale model.
	if err := sim.Run(6 * time.Minute); err != nil {
		t.Fatal(err)
	}
	now = now.Add(6*time.Minute - time.Second)
	predictN(tm, rollingN)
	if n := led.ResolveOnce(now); n != rollingN {
		t.Fatalf("phase 2 ResolveOnce = %d, want %d", n, rollingN)
	}
	if m := mape("phase 2"); m <= driftMAPE {
		t.Fatalf("phase 2 MAPE %g did not cross %g during the slow fault", m, driftMAPE)
	}
	now = now.Add(time.Second)
	if st := alertState(t, slo, "model-accuracy-drift"); st != telemetry.StateFiring {
		t.Fatalf("phase 2 drift state = %s, want firing", st)
	}
	if firing.Value() != 1 {
		t.Fatalf("firing transitions = %g, want 1", firing.Value())
	}

	// Phase 3 — the fault cleared at minute 50. Run 10 minutes so the
	// spout backlog built during the fault drains (≈4.3 min of spare
	// capacity) and the drain windows age out of the observe window,
	// recalibrate on clean post-fault data, and audit fresh predictions.
	if err := sim.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	now = now.Add(10*time.Minute - time.Second)
	models2, err := core.CalibrateTopologyFromProvider(prov, topo, now.Add(-5*time.Minute), now, core.CalibrationOptions{Warmup: 1})
	if err != nil {
		t.Fatalf("re-calibrate: %v", err)
	}
	tm2, err := core.NewTopologyModel(topo, models2)
	if err != nil {
		t.Fatal(err)
	}
	led.NoteCalibration("word-count", now)
	predictN(tm2, rollingN)
	led.ResolveOnce(now)
	if m := mape("phase 3"); m >= driftMAPE {
		t.Fatalf("phase 3 MAPE %g still above %g after the fault cleared", m, driftMAPE)
	}
	now = now.Add(time.Second)
	if st := alertState(t, slo, "model-accuracy-drift"); st != telemetry.StateOK {
		t.Fatalf("phase 3 drift state = %s, want ok", st)
	}
	if resolved.Value() != 1 {
		t.Fatalf("resolved transitions = %g, want 1", resolved.Value())
	}
}

// topology2 packs a topology over two containers (test shorthand).
func topology2(topo *topology.Topology) (*topology.PackingPlan, error) {
	return topology.RoundRobinPack(topo, 2)
}

// TestDegradedCalibrationFlagReachesLedger drives the other half of
// the resilience story: a metrics-gap fault starves the requested
// calibration window, calibration widens its lookback and flags
// itself degraded, and the flag travels model → run → audit record.
func TestDegradedCalibrationFlagReachesLedger(t *testing.T) {
	sim, err := heron.NewWordCount(heron.WordCountOptions{RatePerMinute: 8e6})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	inner, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	start := sim.Start()
	// The gap swallows minutes [10, 28): the requested window [20, 30)
	// keeps only 2 rollups, under the 3-window minimum.
	plan := &Plan{Faults: []Fault{{Kind: FaultMetricsGap, At: Duration(10 * time.Minute), Duration: Duration(18 * time.Minute)}}}
	fp, err := NewFaultyProvider(inner, plan, ProviderOptions{Origin: start})
	if err != nil {
		t.Fatal(err)
	}
	topo, err := heron.WordCountTopology(8, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	models, rep, err := core.CalibrateTopologyFromProviderReport(fp, topo,
		start.Add(20*time.Minute), start.Add(30*time.Minute), core.CalibrationOptions{})
	if err != nil {
		t.Fatalf("calibrate through gap: %v", err)
	}
	if !rep.Degraded {
		t.Fatal("calibration through an 18-minute gap not flagged degraded")
	}
	if rep.Widened <= 0 {
		t.Errorf("Widened = %s, want > 0", rep.Widened)
	}
	tm, err := core.NewTopologyModel(topo, models)
	if err != nil {
		t.Fatal(err)
	}
	tm.Degraded = rep.Degraded

	led, err := audit.NewLedger(audit.Options{Provider: fp})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tm.PredictRecorded(loopRecorder{led: led}, nil, 8e6); err != nil {
		t.Fatal(err)
	}
	recs := led.List(audit.Filter{})
	if len(recs) != 1 {
		t.Fatalf("ledger holds %d records, want 1", len(recs))
	}
	if !recs[0].Degraded {
		t.Error("audit record not marked degraded")
	}

	// Control: the same calibration without the gap is clean.
	_, rep2, err := core.CalibrateTopologyFromProviderReport(inner, topo,
		start.Add(20*time.Minute), start.Add(30*time.Minute), core.CalibrationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Degraded {
		t.Errorf("gap-free calibration flagged degraded: %+v", rep2)
	}
}
