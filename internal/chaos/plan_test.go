package chaos

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"caladrius/internal/heron"
	"caladrius/internal/topology"
)

func wordCountTargets(t *testing.T) (*topology.Topology, *topology.PackingPlan) {
	t.Helper()
	topo, err := heron.WordCountTopology(8, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	pack, err := topology.RoundRobinPack(topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	return topo, pack
}

func TestDurationJSON(t *testing.T) {
	b, err := json.Marshal(Duration(150 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"2m30s"` {
		t.Errorf("marshal = %s, want \"2m30s\"", b)
	}
	for _, in := range []string{`"2m30s"`, `150000000000`} {
		var d Duration
		if err := json.Unmarshal([]byte(in), &d); err != nil {
			t.Fatalf("unmarshal %s: %v", in, err)
		}
		if time.Duration(d) != 150*time.Second {
			t.Errorf("unmarshal %s = %s, want 2m30s", in, time.Duration(d))
		}
	}
	var d Duration
	if err := json.Unmarshal([]byte(`"nonsense"`), &d); err == nil {
		t.Error("unmarshal \"nonsense\": want error")
	}
	if err := json.Unmarshal([]byte(`true`), &d); err == nil {
		t.Error("unmarshal true: want error")
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := &Plan{Seed: 7, Faults: []Fault{
		{Kind: FaultCrash, At: Duration(time.Minute), Duration: Duration(30 * time.Second), Component: "splitter", Instance: 1},
		{Kind: FaultSlow, At: Duration(2 * time.Minute), Duration: Duration(time.Minute), Component: "counter", Instance: AllInstances, Factor: 0.25},
		{Kind: FaultStall, At: Duration(4 * time.Minute), Duration: Duration(20 * time.Second), Container: 1},
		{Kind: FaultMetricsLatency, At: 0, Duration: Duration(time.Minute), Latency: Duration(5 * time.Millisecond)},
	}}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParsePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestParsePlanRejectsUnknownFields(t *testing.T) {
	_, err := ParsePlan([]byte(`{"faults":[{"kind":"crash","at":"1m","duration":"30s","componnet":"splitter"}]}`))
	if err == nil || !strings.Contains(err.Error(), "componnet") {
		t.Errorf("want unknown-field error naming the typo, got %v", err)
	}
}

func TestValidate(t *testing.T) {
	topo, pack := wordCountTargets(t)
	ok := func(f ...Fault) error { return (&Plan{Faults: f}).Validate(topo, pack) }
	min, sec := Duration(time.Minute), Duration(time.Second)

	cases := []struct {
		name    string
		faults  []Fault
		wantErr string // "" means valid
	}{
		{"valid mixed", []Fault{
			{Kind: FaultCrash, At: min, Duration: 30 * sec, Component: "splitter", Instance: 0},
			{Kind: FaultSlow, At: 2 * min, Duration: min, Component: "splitter", Instance: 0, Factor: 0.5},
			{Kind: FaultPartition, At: 4 * min, Duration: 30 * sec, Container: 0},
			{Kind: FaultMetricsOutage, At: 0, Duration: min},
		}, ""},
		{"negative onset", []Fault{{Kind: FaultCrash, At: -min, Duration: min, Component: "splitter"}}, "negative onset"},
		{"zero duration", []Fault{{Kind: FaultCrash, At: min, Duration: 0, Component: "splitter"}}, "non-positive duration"},
		{"unknown kind", []Fault{{Kind: "meteor", At: 0, Duration: min}}, "unknown kind"},
		{"unknown component", []Fault{{Kind: FaultCrash, At: 0, Duration: min, Component: "mapper"}}, "unknown component"},
		{"instance out of range", []Fault{{Kind: FaultCrash, At: 0, Duration: min, Component: "splitter", Instance: 3}}, "out of range"},
		{"bad slow factor", []Fault{{Kind: FaultSlow, At: 0, Duration: min, Component: "splitter", Instance: 0}}, "slow factor"},
		{"container out of range", []Fault{{Kind: FaultStall, At: 0, Duration: min, Container: 2}}, "out of range"},
		{"bad latency", []Fault{{Kind: FaultMetricsLatency, At: 0, Duration: min}}, "non-positive latency"},
		{"same-instance overlap", []Fault{
			{Kind: FaultCrash, At: min, Duration: min, Component: "splitter", Instance: 1},
			{Kind: FaultSlow, At: min + 30*sec, Duration: min, Component: "splitter", Instance: 1, Factor: 0.5},
		}, "overlap"},
		{"all-instances overlaps specific", []Fault{
			{Kind: FaultSlow, At: min, Duration: min, Component: "counter", Instance: AllInstances, Factor: 0.5},
			{Kind: FaultCrash, At: min, Duration: 30 * sec, Component: "counter", Instance: 2},
		}, "overlap"},
		{"container overlaps member instance", []Fault{
			{Kind: FaultStall, At: min, Duration: min, Container: 0},
			{Kind: FaultCrash, At: min + 10*sec, Duration: 10 * sec, Component: "spout", Instance: 0},
		}, "overlap"},
		{"back-to-back is not overlap", []Fault{
			{Kind: FaultCrash, At: min, Duration: min, Component: "splitter", Instance: 0},
			{Kind: FaultSlow, At: 2 * min, Duration: min, Component: "splitter", Instance: 0, Factor: 0.5},
		}, ""},
	}
	for _, tc := range cases {
		err := ok(tc.faults...)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestGeneratePlanDeterministicAndValid(t *testing.T) {
	topo, pack := wordCountTargets(t)
	opts := GenOptions{Horizon: 30 * time.Minute, Faults: 8}
	a, err := GeneratePlan(42, topo, pack, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePlan(42, topo, pack, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different plans")
	}
	c, err := GeneratePlan(43, topo, pack, opts)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical plans")
	}
	// Faults >= len(Kinds) cycles through every kind.
	seen := map[FaultKind]bool{}
	for _, f := range a.Faults {
		seen[f.Kind] = true
		if time.Duration(f.At) < opts.Horizon/6 || f.End() > 2*opts.Horizon/3 {
			t.Errorf("fault %s at [%s,%s) outside the generation region", f, time.Duration(f.At), f.End())
		}
	}
	for _, k := range SimKinds {
		if !seen[k] {
			t.Errorf("kind %s never generated with %d faults", k, opts.Faults)
		}
	}
	if a.Seed != 42 {
		t.Errorf("plan seed = %d, want 42 (provenance)", a.Seed)
	}
}

func TestPlanPartitionAndLastEnd(t *testing.T) {
	min := Duration(time.Minute)
	p := &Plan{Faults: []Fault{
		{Kind: FaultMetricsGap, At: 5 * min, Duration: min},
		{Kind: FaultCrash, At: 3 * min, Duration: min, Component: "splitter", Instance: 0},
		{Kind: FaultSlow, At: min, Duration: min, Component: "counter", Instance: 0, Factor: 0.5},
	}}
	sim, met := p.SimFaults(), p.MetricsFaults()
	if len(sim) != 2 || len(met) != 1 {
		t.Fatalf("partition = %d sim + %d metrics, want 2 + 1", len(sim), len(met))
	}
	if sim[0].Kind != FaultSlow || sim[1].Kind != FaultCrash {
		t.Errorf("sim faults not in schedule order: %v, %v", sim[0].Kind, sim[1].Kind)
	}
	if got := p.LastSimFaultEnd(); got != 4*time.Minute {
		t.Errorf("LastSimFaultEnd = %s, want 4m (metrics faults excluded)", got)
	}
}
