// Package chaos is a deterministic, seedable fault-injection layer for
// the Caladrius reproduction. A Plan is a declarative schedule of
// faults against a simulated topology (instance crashes, degraded
// instances, stream-manager stalls, container partitions) and against
// the metrics provider (outages, data gaps, latency spikes). Plans are
// applied through two hooks:
//
//   - heron.WithFaultInjector(chaos.NewInjector(plan, topo, pack))
//     injects the simulator-side faults;
//   - chaos.NewFaultyProvider(inner, plan, opts) decorates a
//     metrics.Provider with the provider-side faults.
//
// Everything is a pure function of the plan and simulated time: the
// same plan (and, for generated plans, the same seed) always yields
// the same fault trace, so failures are replayable in tests.
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"caladrius/internal/topology"
)

// FaultKind enumerates the supported fault types.
type FaultKind string

// Simulator-side faults target instances or containers of the running
// topology; provider-side faults target the metrics path only.
const (
	// FaultCrash kills one instance: its pending queue is lost
	// (counted as failed tuples and a restart) and it stays offline
	// for the fault's duration.
	FaultCrash FaultKind = "crash"
	// FaultSlow degrades one instance's service capacity by Factor for
	// the fault's duration.
	FaultSlow FaultKind = "slow"
	// FaultStall freezes a container's stream manager: every instance
	// in the container stops processing (queues keep building) until
	// the fault clears.
	FaultStall FaultKind = "stall"
	// FaultPartition cuts a container off the network: arrivals
	// addressed to its instances are lost in flight (counted as
	// route-dropped) while the fault is active.
	FaultPartition FaultKind = "partition"
	// FaultMetricsOutage makes every provider call fail with
	// metrics.ErrUnavailable during the fault.
	FaultMetricsOutage FaultKind = "metrics-outage"
	// FaultMetricsGap permanently removes metric points whose
	// timestamps fall inside the fault interval, as if the metrics
	// database lost the range.
	FaultMetricsGap FaultKind = "metrics-gap"
	// FaultMetricsLatency delays every provider call by Latency while
	// the fault is active.
	FaultMetricsLatency FaultKind = "metrics-latency"
)

// SimKinds and MetricsKinds partition the fault kinds by the hook that
// applies them.
var (
	SimKinds     = []FaultKind{FaultCrash, FaultSlow, FaultStall, FaultPartition}
	MetricsKinds = []FaultKind{FaultMetricsOutage, FaultMetricsGap, FaultMetricsLatency}
)

func isSimKind(k FaultKind) bool {
	return k == FaultCrash || k == FaultSlow || k == FaultStall || k == FaultPartition
}

func isMetricsKind(k FaultKind) bool {
	return k == FaultMetricsOutage || k == FaultMetricsGap || k == FaultMetricsLatency
}

// Duration is a time.Duration that marshals to/from Go duration
// strings ("2m30s") in JSON, so committed fault plans stay readable.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler; it accepts duration
// strings ("90s") and bare numbers (nanoseconds, encoding/json's
// native representation of time.Duration).
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("chaos: bad duration %q: %v", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("chaos: duration must be a string or integer, got %s", b)
	}
	*d = Duration(n)
	return nil
}

// AllInstances targets every instance of a fault's component.
const AllInstances = -1

// Fault is one scheduled fault. Which target fields matter depends on
// Kind: crash/slow name a Component and Instance (AllInstances for
// all of them), stall/partition name a Container, metrics faults need
// no target.
type Fault struct {
	Kind FaultKind `json:"kind"`
	// At is the fault's onset, as simulated time since the run start.
	At Duration `json:"at"`
	// Duration is how long the fault stays active; the fault covers
	// [At, At+Duration).
	Duration Duration `json:"duration"`

	Component string `json:"component,omitempty"`
	Instance  int    `json:"instance,omitempty"`
	Container int    `json:"container,omitempty"`

	// Factor is the slow fault's service-rate multiplier (0 < Factor).
	Factor float64 `json:"factor,omitempty"`
	// Latency is the metrics-latency fault's added delay per call.
	Latency Duration `json:"latency,omitempty"`
}

// End is the fault's clearing time (exclusive).
func (f Fault) End() time.Duration { return time.Duration(f.At) + time.Duration(f.Duration) }

// ActiveAt reports whether the fault covers the given simulated time.
func (f Fault) ActiveAt(t time.Duration) bool {
	return time.Duration(f.At) <= t && t < f.End()
}

func (f Fault) String() string {
	switch {
	case f.Kind == FaultCrash || f.Kind == FaultSlow:
		target := fmt.Sprintf("%s[%d]", f.Component, f.Instance)
		if f.Instance == AllInstances {
			target = f.Component + "[*]"
		}
		if f.Kind == FaultSlow {
			return fmt.Sprintf("%s %s x%g", f.Kind, target, f.Factor)
		}
		return fmt.Sprintf("%s %s", f.Kind, target)
	case f.Kind == FaultStall || f.Kind == FaultPartition:
		return fmt.Sprintf("%s container %d", f.Kind, f.Container)
	case f.Kind == FaultMetricsLatency:
		return fmt.Sprintf("%s +%s", f.Kind, time.Duration(f.Latency))
	default:
		return string(f.Kind)
	}
}

// Plan is a declarative fault schedule. Seed records the generator
// seed for provenance (0 for hand-written plans).
type Plan struct {
	Seed   int64   `json:"seed,omitempty"`
	Faults []Fault `json:"faults"`
}

// SimFaults returns the simulator-side faults in schedule order.
func (p *Plan) SimFaults() []Fault { return p.filter(isSimKind) }

// MetricsFaults returns the provider-side faults in schedule order.
func (p *Plan) MetricsFaults() []Fault { return p.filter(isMetricsKind) }

func (p *Plan) filter(keep func(FaultKind) bool) []Fault {
	var out []Fault
	for _, f := range p.Faults {
		if keep(f.Kind) {
			out = append(out, f)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// LastSimFaultEnd returns when the last simulator-side fault clears
// (0 when the plan has none). Recovery assertions measure from here.
func (p *Plan) LastSimFaultEnd() time.Duration {
	var last time.Duration
	for _, f := range p.Faults {
		if isSimKind(f.Kind) && f.End() > last {
			last = f.End()
		}
	}
	return last
}

// ParsePlan decodes a JSON plan, rejecting unknown fields so schema
// typos in committed plans fail loudly.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("chaos: bad plan: %v", err)
	}
	return &p, nil
}

// instancesOf expands a fault to the instances it affects.
func (f Fault) instancesOf(topo *topology.Topology, pack *topology.PackingPlan) []topology.InstanceID {
	switch f.Kind {
	case FaultCrash, FaultSlow:
		if f.Instance == AllInstances {
			var out []topology.InstanceID
			for _, id := range topo.Instances() {
				if id.Component == f.Component {
					out = append(out, id)
				}
			}
			return out
		}
		return []topology.InstanceID{{Component: f.Component, Index: f.Instance}}
	case FaultStall, FaultPartition:
		var out []topology.InstanceID
		for _, id := range topo.Instances() {
			if c, ok := pack.ContainerOf(id); ok && c == f.Container {
				out = append(out, id)
			}
		}
		return out
	default:
		return nil
	}
}

// Validate checks the plan against a topology and packing plan: known
// kinds, positive durations, existing targets, and — because the
// injector keeps at most one active fault per instance — no two
// simulator-side faults overlapping on the same instance.
func (p *Plan) Validate(topo *topology.Topology, pack *topology.PackingPlan) error {
	type interval struct {
		from, to time.Duration
		fi       int
	}
	perInstance := map[topology.InstanceID][]interval{}
	for i, f := range p.Faults {
		if f.At < 0 {
			return fmt.Errorf("chaos: fault %d (%s): negative onset %s", i, f, time.Duration(f.At))
		}
		if f.Duration <= 0 {
			return fmt.Errorf("chaos: fault %d (%s): non-positive duration %s", i, f, time.Duration(f.Duration))
		}
		switch f.Kind {
		case FaultCrash, FaultSlow:
			c := topo.Component(f.Component)
			if c == nil {
				return fmt.Errorf("chaos: fault %d (%s): unknown component %q", i, f, f.Component)
			}
			if f.Instance != AllInstances && (f.Instance < 0 || f.Instance >= c.Parallelism) {
				return fmt.Errorf("chaos: fault %d (%s): instance %d out of range [0,%d)", i, f, f.Instance, c.Parallelism)
			}
			if f.Kind == FaultSlow && f.Factor <= 0 {
				return fmt.Errorf("chaos: fault %d (%s): slow factor must be positive, got %g", i, f, f.Factor)
			}
		case FaultStall, FaultPartition:
			if f.Container < 0 || f.Container >= len(pack.Containers) {
				return fmt.Errorf("chaos: fault %d (%s): container %d out of range [0,%d)", i, f, f.Container, len(pack.Containers))
			}
		case FaultMetricsOutage, FaultMetricsGap:
			// No target.
		case FaultMetricsLatency:
			if f.Latency <= 0 {
				return fmt.Errorf("chaos: fault %d (%s): non-positive latency %s", i, f, time.Duration(f.Latency))
			}
		default:
			return fmt.Errorf("chaos: fault %d: unknown kind %q", i, f.Kind)
		}
		for _, id := range f.instancesOf(topo, pack) {
			iv := interval{time.Duration(f.At), f.End(), i}
			for _, prev := range perInstance[id] {
				if iv.from < prev.to && prev.from < iv.to {
					return fmt.Errorf("chaos: faults %d and %d overlap on %s", prev.fi, iv.fi, id)
				}
			}
			perInstance[id] = append(perInstance[id], iv)
		}
	}
	return nil
}

// GenOptions tunes GeneratePlan.
type GenOptions struct {
	// Horizon is the run length the plan targets; required. Faults are
	// confined to the first two thirds of it so every run ends with a
	// clean recovery period.
	Horizon time.Duration
	// Faults is how many faults to schedule. Default 4.
	Faults int
	// Kinds is the pool of fault kinds to draw from. Default: all
	// simulator-side kinds. Kinds are cycled in shuffled order, so
	// Faults >= len(Kinds) guarantees every kind appears.
	Kinds []FaultKind
	// MaxDuration caps each fault's length. Default Horizon/10.
	MaxDuration time.Duration
	// Latency is the delay used by generated metrics-latency faults.
	// Default 10ms.
	Latency time.Duration
}

// GeneratePlan builds a random but fully deterministic plan: the same
// seed, topology, packing plan and options always produce the same
// schedule. Faults are placed in disjoint time slots (so the plan
// always validates) within [Horizon/6, 2·Horizon/3).
func GeneratePlan(seed int64, topo *topology.Topology, pack *topology.PackingPlan, opts GenOptions) (*Plan, error) {
	if opts.Horizon <= 0 {
		return nil, fmt.Errorf("chaos: non-positive horizon %s", opts.Horizon)
	}
	if opts.Faults == 0 {
		opts.Faults = 4
	}
	if opts.Faults < 0 {
		return nil, fmt.Errorf("chaos: negative fault count %d", opts.Faults)
	}
	if len(opts.Kinds) == 0 {
		opts.Kinds = SimKinds
	}
	if opts.MaxDuration <= 0 {
		opts.MaxDuration = opts.Horizon / 10
	}
	if opts.Latency <= 0 {
		opts.Latency = 10 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(seed))
	kinds := append([]FaultKind(nil), opts.Kinds...)
	rng.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })

	region0 := opts.Horizon / 6
	region := 2*opts.Horizon/3 - region0
	slot := region / time.Duration(opts.Faults)
	p := &Plan{Seed: seed}
	instances := topo.Instances()
	for i := 0; i < opts.Faults; i++ {
		f := Fault{Kind: kinds[i%len(kinds)]}
		// Each fault lives inside its own slot: start in the first
		// third, duration at most half the slot (and MaxDuration).
		at := region0 + time.Duration(i)*slot + time.Duration(rng.Int63n(int64(slot/3)+1))
		maxDur := slot / 2
		if maxDur > opts.MaxDuration {
			maxDur = opts.MaxDuration
		}
		dur := maxDur/2 + time.Duration(rng.Int63n(int64(maxDur/2)+1))
		f.At, f.Duration = Duration(at), Duration(dur)
		switch f.Kind {
		case FaultCrash, FaultSlow:
			id := instances[rng.Intn(len(instances))]
			f.Component, f.Instance = id.Component, id.Index
			if f.Kind == FaultSlow {
				// Severe degradation (x0.1–x0.5): mild slowdowns on an
				// over-provisioned component would be invisible.
				f.Factor = 0.1 + 0.4*rng.Float64()
			}
		case FaultStall, FaultPartition:
			f.Container = rng.Intn(len(pack.Containers))
		case FaultMetricsLatency:
			f.Latency = Duration(opts.Latency)
		}
		p.Faults = append(p.Faults, f)
	}
	if err := p.Validate(topo, pack); err != nil {
		return nil, fmt.Errorf("chaos: generated plan invalid: %v", err)
	}
	return p, nil
}
