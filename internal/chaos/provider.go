package chaos

import (
	"fmt"
	"time"

	"caladrius/internal/metrics"
	"caladrius/internal/tsdb"
)

// ProviderOptions configures NewFaultyProvider.
type ProviderOptions struct {
	// Origin maps the plan's relative fault times onto the wall clock
	// (normally the simulation's Start). Required.
	Origin time.Time
	// Now supplies the current time for outage/latency gating. Default
	// time.Now.
	Now func() time.Time
	// Sleep implements latency spikes. Default time.Sleep; tests
	// substitute a recorder.
	Sleep func(time.Duration)
}

// FaultyProvider decorates a metrics.Provider with the plan's
// provider-side faults:
//
//   - metrics-outage: every call made while the fault is active fails
//     with metrics.ErrUnavailable;
//   - metrics-latency: every call made while the fault is active is
//     delayed by the fault's Latency;
//   - metrics-gap: points whose timestamps fall inside the fault
//     interval are removed from every result, permanently — the range
//     behaves as if the backend lost it.
//
// Simulator-side faults in the plan are ignored here (see
// NewInjector).
type FaultyProvider struct {
	inner  metrics.Provider
	faults []Fault
	origin time.Time
	now    func() time.Time
	sleep  func(time.Duration)
}

// NewFaultyProvider wraps inner with the plan's metrics faults.
func NewFaultyProvider(inner metrics.Provider, plan *Plan, opts ProviderOptions) (*FaultyProvider, error) {
	if inner == nil {
		return nil, fmt.Errorf("chaos: nil inner provider")
	}
	if plan == nil {
		return nil, fmt.Errorf("chaos: nil plan")
	}
	if opts.Origin.IsZero() {
		return nil, fmt.Errorf("chaos: ProviderOptions.Origin is required")
	}
	p := &FaultyProvider{
		inner:  inner,
		faults: plan.MetricsFaults(),
		origin: opts.Origin,
		now:    opts.Now,
		sleep:  opts.Sleep,
	}
	if p.now == nil {
		p.now = time.Now
	}
	if p.sleep == nil {
		p.sleep = time.Sleep
	}
	return p, nil
}

// gate applies call-time faults (latency first, then outage, so a
// spike before the outage window still delays).
func (p *FaultyProvider) gate() error {
	t := p.now().Sub(p.origin)
	for _, f := range p.faults {
		if f.Kind == FaultMetricsLatency && f.ActiveAt(t) {
			p.sleep(time.Duration(f.Latency))
		}
	}
	for _, f := range p.faults {
		if f.Kind == FaultMetricsOutage && f.ActiveAt(t) {
			return fmt.Errorf("%w: injected outage %s–%s", metrics.ErrUnavailable,
				time.Duration(f.At), f.End())
		}
	}
	return nil
}

// inGap reports whether the timestamp falls inside a metrics-gap
// fault.
func (p *FaultyProvider) inGap(ts time.Time) bool {
	t := ts.Sub(p.origin)
	for _, f := range p.faults {
		if f.Kind == FaultMetricsGap && f.ActiveAt(t) {
			return true
		}
	}
	return false
}

func (p *FaultyProvider) filterWindows(ws []Window, err error) ([]Window, error) {
	if err != nil {
		return nil, err
	}
	out := ws[:0]
	for _, w := range ws {
		if !p.inGap(w.T) {
			out = append(out, w)
		}
	}
	if len(out) == 0 && len(ws) > 0 {
		return nil, fmt.Errorf("%w: every window fell in an injected metrics gap", metrics.ErrNoData)
	}
	return out, nil
}

func (p *FaultyProvider) filterPoints(pts []tsdb.Point, err error) ([]tsdb.Point, error) {
	if err != nil {
		return nil, err
	}
	out := pts[:0]
	for _, pt := range pts {
		if !p.inGap(pt.T) {
			out = append(out, pt)
		}
	}
	if len(out) == 0 && len(pts) > 0 {
		return nil, fmt.Errorf("%w: every point fell in an injected metrics gap", metrics.ErrNoData)
	}
	return out, nil
}

// Window aliases metrics.Window for the filter helpers.
type Window = metrics.Window

// ComponentWindows implements metrics.Provider.
func (p *FaultyProvider) ComponentWindows(topology, component string, start, end time.Time) ([]metrics.Window, error) {
	if err := p.gate(); err != nil {
		return nil, err
	}
	return p.filterWindows(p.inner.ComponentWindows(topology, component, start, end))
}

// InstanceWindows implements metrics.Provider.
func (p *FaultyProvider) InstanceWindows(topology, component string, index int, start, end time.Time) ([]metrics.Window, error) {
	if err := p.gate(); err != nil {
		return nil, err
	}
	return p.filterWindows(p.inner.InstanceWindows(topology, component, index, start, end))
}

// SourceRate implements metrics.Provider.
func (p *FaultyProvider) SourceRate(topology string, spouts []string, start, end time.Time) ([]tsdb.Point, error) {
	if err := p.gate(); err != nil {
		return nil, err
	}
	return p.filterPoints(p.inner.SourceRate(topology, spouts, start, end))
}

// TopologyBackpressureMs implements metrics.Provider.
func (p *FaultyProvider) TopologyBackpressureMs(topology string, start, end time.Time) ([]tsdb.Point, error) {
	if err := p.gate(); err != nil {
		return nil, err
	}
	return p.filterPoints(p.inner.TopologyBackpressureMs(topology, start, end))
}

// StreamEmitTotals implements metrics.Provider. Totals cannot be
// gap-filtered (they are already aggregated); only call-time faults
// apply.
func (p *FaultyProvider) StreamEmitTotals(topology, component string, start, end time.Time) (map[string]float64, error) {
	if err := p.gate(); err != nil {
		return nil, err
	}
	return p.inner.StreamEmitTotals(topology, component, start, end)
}
