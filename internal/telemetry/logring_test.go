package telemetry

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLogRingAppendSnapshot(t *testing.T) {
	r := NewLogRing(4)
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		r.Append(base.Add(time.Duration(i)*time.Second), slog.LevelInfo, fmt.Sprintf("m%d", i), "", nil)
	}
	recs := r.Snapshot()
	if len(recs) != 3 || r.Len() != 3 {
		t.Fatalf("len = %d/%d, want 3", len(recs), r.Len())
	}
	for i, rec := range recs {
		if rec.Msg != fmt.Sprintf("m%d", i) {
			t.Errorf("recs[%d].Msg = %q", i, rec.Msg)
		}
	}
}

func TestLogRingCapacityBoundKeepsTail(t *testing.T) {
	r := NewLogRing(4)
	for i := 0; i < 10; i++ {
		r.Append(time.Unix(int64(i), 0), slog.LevelInfo, fmt.Sprintf("m%d", i), "", nil)
	}
	if r.Len() != 4 || r.Total() != 10 {
		t.Fatalf("Len = %d, Total = %d", r.Len(), r.Total())
	}
	recs := r.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("snapshot len = %d", len(recs))
	}
	// The last 4 appends survive, oldest first — no lost tail.
	for i, rec := range recs {
		want := fmt.Sprintf("m%d", 6+i)
		if rec.Msg != want {
			t.Errorf("recs[%d].Msg = %q, want %q", i, rec.Msg, want)
		}
	}
}

func TestLogRingAttrsCopied(t *testing.T) {
	r := NewLogRing(2)
	buf := []byte("k=v")
	r.Append(time.Now(), slog.LevelInfo, "m", "t-1", buf)
	buf[0] = 'X' // caller recycles its buffer; the slot copy must not change
	rec := r.Snapshot()[0]
	if rec.Attrs != "k=v" || rec.Trace != "t-1" {
		t.Fatalf("record = %+v", rec)
	}
}

// TestLogRingConcurrent exercises Append/Snapshot from many goroutines
// so `go test -race` can catch unsynchronized access, and checks that a
// writer's tail is never lost: after all writers finish, the snapshot
// is exactly the last Cap() appends in order of append sequence.
func TestLogRingConcurrent(t *testing.T) {
	const writers, perWriter = 8, 500
	r := NewLogRing(64)
	var readers, writersWG sync.WaitGroup
	stop := make(chan struct{})
	readers.Add(1)
	go func() { // concurrent reader racing the writers
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, rec := range r.Snapshot() {
					if rec.Msg == "" {
						t.Error("snapshot saw empty record")
						return
					}
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				r.Append(time.Now(), slog.LevelInfo, fmt.Sprintf("w%d-%d", w, i), "", []byte("k=v"))
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()
	if r.Total() != writers*perWriter {
		t.Fatalf("Total = %d, want %d", r.Total(), writers*perWriter)
	}
	recs := r.Snapshot()
	if len(recs) != r.Cap() {
		t.Fatalf("snapshot len = %d, want %d", len(recs), r.Cap())
	}
	// Per-writer sequence numbers must be increasing within the window —
	// overwrites drop the oldest, never reorder.
	last := map[string]int{}
	for _, rec := range recs {
		var w, i int
		if _, err := fmt.Sscanf(rec.Msg, "w%d-%d", &w, &i); err != nil {
			t.Fatalf("bad message %q", rec.Msg)
		}
		key := fmt.Sprintf("w%d", w)
		if prev, ok := last[key]; ok && i <= prev {
			t.Fatalf("writer %d out of order: %d after %d", w, i, prev)
		}
		last[key] = i
	}
}

func TestLogRingHandler(t *testing.T) {
	r := NewLogRing(8)
	logger := slog.New(r.Handler(slog.LevelInfo))
	logger.Debug("dropped")
	logger.Info("request", "trace", "req-7", "status", 200, "route", "/x")
	logger.With("component", "scraper").Warn("slow scrape", "ms", 12.5)
	logger.WithGroup("job").Info("done", "id", "j-1")

	recs := r.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("records = %+v", recs)
	}
	if recs[0].Msg != "request" || recs[0].Trace != "req-7" {
		t.Errorf("recs[0] = %+v", recs[0])
	}
	if recs[0].Attrs != "status=200 route=/x" {
		t.Errorf("recs[0].Attrs = %q", recs[0].Attrs)
	}
	if recs[1].Attrs != "component=scraper ms=12.5" {
		t.Errorf("recs[1].Attrs = %q", recs[1].Attrs)
	}
	if recs[2].Attrs != "job.id=j-1" || recs[2].Trace != "" {
		t.Errorf("recs[2] = %+v", recs[2])
	}
}

func TestTeeHandlers(t *testing.T) {
	r := NewLogRing(8)
	var text bytes.Buffer
	logger := slog.New(TeeHandlers(
		slog.NewTextHandler(&text, &slog.HandlerOptions{Level: slog.LevelWarn}),
		r.Handler(slog.LevelInfo),
	))
	if !logger.Enabled(context.Background(), slog.LevelInfo) {
		t.Fatal("tee should be enabled at the lowest member level")
	}
	logger.Info("ring only", "trace", "t-9")
	logger.Warn("both")

	recs := r.Snapshot()
	if len(recs) != 2 || recs[0].Trace != "t-9" {
		t.Fatalf("ring records = %+v", recs)
	}
	out := text.String()
	if strings.Contains(out, "ring only") || !strings.Contains(out, "both") {
		t.Fatalf("text output = %q", out)
	}
}

func TestLogRingAppendNoAllocs(t *testing.T) {
	r := NewLogRing(16)
	attrs := []byte("route=/api/v1/health status=200")
	now := time.Now()
	// Warm every slot so attr buffers are sized.
	for i := 0; i < 2*r.Cap(); i++ {
		r.Append(now, slog.LevelInfo, "warm", "t-1", attrs)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Append(now, slog.LevelInfo, "steady", "t-2", attrs)
	})
	if allocs != 0 {
		t.Errorf("Append allocates %.1f/op, want 0", allocs)
	}
}
