package telemetry

import (
	"testing"
	"time"

	"caladrius/internal/tsdb"
)

// Scrape-gap behaviour: when the scraper misses intervals the evaluator
// must report no_data without flapping the firing/resolved lifecycle —
// a dead scraper is not a recovery, and data returning mid-incident is
// not a fresh incident. Each case is a per-minute timeline where nil
// means "no sample landed this minute" (the rule's window sees nothing).
func TestSLOScrapeGapsDoNotFlap(t *testing.T) {
	v := func(x float64) *float64 { return &x }
	cases := []struct {
		name string
		// timeline[i] is the sample scraped during minute i, nil = gap.
		timeline []*float64
		// wantStates[i] is the state evaluated at the end of minute i.
		wantStates   []AlertState
		wantFiring   float64 // total firing transitions
		wantResolved float64 // total resolved transitions
	}{
		{
			name:       "gap before any data is no_data, not an incident",
			timeline:   []*float64{nil, nil, v(20)},
			wantStates: []AlertState{StateNoData, StateNoData, StateOK},
		},
		{
			name:       "gap while firing keeps the incident open",
			timeline:   []*float64{v(80), nil, v(80)},
			wantStates: []AlertState{StateFiring, StateNoData, StateFiring},
			wantFiring: 1,
		},
		{
			name:       "alternating gaps during one incident never flap",
			timeline:   []*float64{v(80), nil, v(80), nil, nil, v(80)},
			wantStates: []AlertState{StateFiring, StateNoData, StateFiring, StateNoData, StateNoData, StateFiring},
			wantFiring: 1,
		},
		{
			name:         "recovery after a gap resolves exactly once",
			timeline:     []*float64{v(80), nil, v(20)},
			wantStates:   []AlertState{StateFiring, StateNoData, StateOK},
			wantFiring:   1,
			wantResolved: 1,
		},
		{
			name:         "gap between two real incidents counts both",
			timeline:     []*float64{v(80), v(20), nil, v(80)},
			wantStates:   []AlertState{StateFiring, StateOK, StateNoData, StateFiring},
			wantFiring:   2,
			wantResolved: 1,
		},
		{
			name:         "incident entirely swallowed by a gap is invisible",
			timeline:     []*float64{v(20), nil, nil, v(20)},
			wantStates:   []AlertState{StateOK, StateNoData, StateNoData, StateOK},
			wantFiring:   0,
			wantResolved: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			now := sloT0
			rule := Rule{Name: "hot", Metric: "temp", Agg: tsdb.AggMean, Window: time.Minute, Op: OpGreater, Threshold: 50}
			s, db, reg := sloFixture(t, []Rule{rule}, &now)
			var firedAt *time.Time
			for i, sample := range tc.timeline {
				if sample != nil {
					db.Append("temp", nil, sloT0.Add(time.Duration(i)*time.Minute+30*time.Second), *sample)
				}
				now = sloT0.Add(time.Duration(i+1) * time.Minute)
				a := s.Evaluate()[0]
				if a.State != tc.wantStates[i] {
					t.Fatalf("minute %d: state = %s, want %s", i, a.State, tc.wantStates[i])
				}
				// A gap mid-incident must preserve the original Since.
				switch a.State {
				case StateFiring, StateNoData:
					if firedAt != nil && a.Since != nil && !a.Since.Equal(*firedAt) {
						t.Errorf("minute %d: Since moved from %s to %s across a gap", i, *firedAt, *a.Since)
					}
					if a.State == StateFiring {
						firedAt = a.Since
					}
				case StateOK:
					firedAt = nil
					if a.Since != nil {
						t.Errorf("minute %d: resolved alert still carries Since", i)
					}
				}
			}
			got := reg.Counter("caladrius_slo_transitions_total", Labels{"rule": "hot", "to": "firing"}).Value()
			if got != tc.wantFiring {
				t.Errorf("firing transitions = %g, want %g", got, tc.wantFiring)
			}
			got = reg.Counter("caladrius_slo_transitions_total", Labels{"rule": "hot", "to": "resolved"}).Value()
			if got != tc.wantResolved {
				t.Errorf("resolved transitions = %g, want %g", got, tc.wantResolved)
			}
		})
	}
}

// A ratio rule's denominator going quiet (no traffic scraped) is a gap,
// not a recovery: the error-rate incident stays open until real traffic
// shows a healthy ratio.
func TestSLORatioIdleDenominatorIsGap(t *testing.T) {
	now := sloT0.Add(time.Minute)
	rule := Rule{
		Name: "errs", Metric: "reqs", Selector: tsdb.Labels{"class": "5xx"},
		Ratio: true, Window: time.Minute, Op: OpGreater, Threshold: 0.05,
	}
	s, db, reg := sloFixture(t, []Rule{rule}, &now)
	all, bad := tsdb.Labels{"class": "2xx"}, tsdb.Labels{"class": "5xx"}

	// Minute 0: 100 requests, 10 of them 5xx → 10% error rate, firing.
	db.Append("reqs", all, sloT0.Add(10*time.Second), 0)
	db.Append("reqs", bad, sloT0.Add(10*time.Second), 0)
	db.Append("reqs", all, sloT0.Add(50*time.Second), 90)
	db.Append("reqs", bad, sloT0.Add(50*time.Second), 10)
	if a := s.Evaluate()[0]; a.State != StateFiring {
		t.Fatalf("error-rate alert = %+v, want firing", a)
	}

	// Minute 1: scraper down, no samples at all → no_data, not resolved.
	now = sloT0.Add(2 * time.Minute)
	if a := s.Evaluate()[0]; a.State != StateNoData {
		t.Fatalf("idle-window alert = %+v, want no_data", a)
	}
	if got := reg.Counter("caladrius_slo_transitions_total", Labels{"rule": "errs", "to": "resolved"}).Value(); got != 0 {
		t.Errorf("resolved transitions during gap = %g, want 0", got)
	}

	// Minute 2: traffic returns healthy → resolved once.
	now = sloT0.Add(3 * time.Minute)
	db.Append("reqs", all, sloT0.Add(130*time.Second), 100)
	db.Append("reqs", all, sloT0.Add(170*time.Second), 200)
	db.Append("reqs", bad, sloT0.Add(130*time.Second), 10)
	db.Append("reqs", bad, sloT0.Add(170*time.Second), 10)
	if a := s.Evaluate()[0]; a.State != StateOK {
		t.Fatalf("recovered alert = %+v, want ok", a)
	}
	if got := reg.Counter("caladrius_slo_transitions_total", Labels{"rule": "errs", "to": "resolved"}).Value(); got != 1 {
		t.Errorf("resolved transitions = %g, want 1", got)
	}
}
