package telemetry

import (
	"testing"
	"time"

	"caladrius/internal/tsdb"
)

var sloT0 = time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

func sloFixture(t *testing.T, rules []Rule, now *time.Time) (*SLO, *tsdb.DB, *Registry) {
	t.Helper()
	db := tsdb.New(0)
	reg := NewRegistry()
	s, err := NewSLO(db, reg, func() time.Time { return *now }, rules)
	if err != nil {
		t.Fatal(err)
	}
	return s, db, reg
}

func TestSLOThresholdFiresAndResolves(t *testing.T) {
	now := sloT0.Add(time.Minute)
	rule := Rule{Name: "hot", Metric: "temp", Agg: tsdb.AggMean, Window: time.Minute, Op: OpGreater, Threshold: 50}
	s, db, reg := sloFixture(t, []Rule{rule}, &now)

	// No data yet.
	alerts := s.Evaluate()
	if len(alerts) != 1 || alerts[0].State != StateNoData || alerts[0].Value != nil {
		t.Fatalf("empty-window alert = %+v", alerts[0])
	}

	// Mean 80 over the window → firing.
	db.Append("temp", nil, sloT0.Add(30*time.Second), 80)
	alerts = s.Evaluate()
	a := alerts[0]
	if a.State != StateFiring || a.Value == nil || *a.Value != 80 || a.Since == nil {
		t.Fatalf("breach alert = %+v", a)
	}
	firedAt := *a.Since
	if got := reg.Counter("caladrius_slo_transitions_total", Labels{"rule": "hot", "to": "firing"}).Value(); got != 1 {
		t.Errorf("firing transitions = %g, want 1", got)
	}

	// Still breaching: no second transition, Since unchanged.
	alerts = s.Evaluate()
	if alerts[0].State != StateFiring || !alerts[0].Since.Equal(firedAt) {
		t.Errorf("sustained alert = %+v", alerts[0])
	}
	if got := reg.Counter("caladrius_slo_transitions_total", Labels{"rule": "hot", "to": "firing"}).Value(); got != 1 {
		t.Errorf("firing transitions after sustain = %g, want 1", got)
	}

	// Window slides past the hot sample and onto a cool one → resolved.
	now = sloT0.Add(3 * time.Minute)
	db.Append("temp", nil, sloT0.Add(150*time.Second), 20)
	alerts = s.Evaluate()
	if alerts[0].State != StateOK || alerts[0].Since != nil {
		t.Errorf("resolved alert = %+v", alerts[0])
	}
	if got := reg.Counter("caladrius_slo_transitions_total", Labels{"rule": "hot", "to": "resolved"}).Value(); got != 1 {
		t.Errorf("resolved transitions = %g, want 1", got)
	}
}

func TestSLORatioMode(t *testing.T) {
	now := sloT0.Add(time.Minute)
	rule := Rule{
		Name: "errors", Metric: "requests_total",
		Selector: tsdb.Labels{"class": "5xx"}, Ratio: true,
		Window: time.Minute, Op: OpGreater, Threshold: 0.05,
	}
	s, db, _ := sloFixture(t, []Rule{rule}, &now)

	// 100 total requests, 10 of them 5xx → ratio 0.1 > 0.05.
	db.Append("requests_total", tsdb.Labels{"class": "2xx"}, sloT0, 1000)
	db.Append("requests_total", tsdb.Labels{"class": "5xx"}, sloT0, 40)
	db.Append("requests_total", tsdb.Labels{"class": "2xx"}, sloT0.Add(30*time.Second), 1090)
	db.Append("requests_total", tsdb.Labels{"class": "5xx"}, sloT0.Add(30*time.Second), 50)
	alerts := s.Evaluate()
	a := alerts[0]
	if a.State != StateFiring || a.Value == nil || *a.Value != 0.1 {
		t.Fatalf("ratio alert = %+v", a)
	}

	// A single sample per series cannot measure increase → no data.
	now = sloT0.Add(10 * time.Minute)
	db.Append("requests_total", tsdb.Labels{"class": "2xx"}, sloT0.Add(9*time.Minute+30*time.Second), 2000)
	db.Append("requests_total", tsdb.Labels{"class": "5xx"}, sloT0.Add(9*time.Minute+30*time.Second), 50)
	alerts = s.Evaluate()
	if alerts[0].State != StateNoData {
		t.Errorf("single-sample ratio alert = %+v", alerts[0])
	}
}

func TestSLOOpLess(t *testing.T) {
	now := sloT0.Add(time.Minute)
	rule := Rule{Name: "starved", Metric: "qps", Agg: tsdb.AggMean, Window: time.Minute, Op: OpLess, Threshold: 5}
	s, db, _ := sloFixture(t, []Rule{rule}, &now)
	db.Append("qps", nil, sloT0.Add(30*time.Second), 1)
	if a := s.Evaluate()[0]; a.State != StateFiring {
		t.Errorf("op-less alert = %+v", a)
	}
}

func TestSLONoDataKeepsFiringTimestamp(t *testing.T) {
	now := sloT0.Add(time.Minute)
	rule := Rule{Name: "hot", Metric: "temp", Window: time.Minute, Threshold: 50}
	s, db, _ := sloFixture(t, []Rule{rule}, &now)
	db.Append("temp", nil, sloT0.Add(30*time.Second), 80)
	fired := s.Evaluate()[0]
	if fired.State != StateFiring {
		t.Fatalf("alert = %+v", fired)
	}
	// Scraper dies: window empties but the alert reports no_data with
	// the original firing timestamp, not a silent resolve.
	now = sloT0.Add(10 * time.Minute)
	a := s.Evaluate()[0]
	if a.State != StateNoData || a.Since == nil || !a.Since.Equal(*fired.Since) {
		t.Errorf("no-data alert = %+v", a)
	}
}

func TestSLOValidation(t *testing.T) {
	db := tsdb.New(0)
	reg := NewRegistry()
	bad := [][]Rule{
		{{Name: "", Metric: "m"}},                            // missing name
		{{Name: "a", Metric: ""}},                            // missing metric
		{{Name: "a", Metric: "m"}, {Name: "a", Metric: "m"}}, // duplicate
		{{Name: "a", Metric: "m", Op: CompareOp("!=")}},      // unknown op
	}
	for i, rules := range bad {
		if _, err := NewSLO(db, reg, nil, rules); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, err := NewSLO(nil, reg, nil, nil); err == nil {
		t.Error("nil db accepted")
	}
	// Defaults fill in: window, agg, op.
	s, err := NewSLO(db, reg, nil, []Rule{{Name: "a", Metric: "m", Threshold: 1}})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Rules()[0]
	if r.Window != time.Minute || r.Agg != tsdb.AggMean || r.Op != OpGreater {
		t.Errorf("defaults = %+v", r)
	}
}

func TestDefaultSLORulesValid(t *testing.T) {
	db := tsdb.New(0)
	reg := NewRegistry()
	s, err := NewSLO(db, reg, nil, DefaultSLORules())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rules()) < 3 {
		t.Errorf("default rules = %d, want ≥ 3", len(s.Rules()))
	}
	for _, a := range s.Evaluate() {
		if a.State != StateNoData {
			t.Errorf("rule %s on empty db = %s, want no_data", a.Rule, a.State)
		}
	}
}
