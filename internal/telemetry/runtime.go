package telemetry

import (
	"runtime"
	"time"
)

// RegisterRuntime registers process-level gauges (goroutines, heap,
// GC, uptime) on reg and returns the collector that refreshes them —
// pass it to Scraper.AddCollector so every scrape records a fresh
// runtime sample. start anchors the uptime gauge; now defaults to
// time.Now.
func RegisterRuntime(reg *Registry, start time.Time, now func() time.Time) func() {
	if now == nil {
		now = time.Now
	}
	reg.SetHelp("caladrius_go_goroutines", "Goroutines currently running.")
	reg.SetHelp("caladrius_go_heap_alloc_bytes", "Bytes of allocated heap objects.")
	reg.SetHelp("caladrius_go_heap_objects", "Allocated heap objects.")
	reg.SetHelp("caladrius_go_gc_cycles_total", "Completed GC cycles.")
	reg.SetHelp("caladrius_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.")
	reg.SetHelp("caladrius_process_uptime_seconds", "Seconds since the process registered its runtime collector.")
	goroutines := reg.Gauge("caladrius_go_goroutines", nil)
	heapAlloc := reg.Gauge("caladrius_go_heap_alloc_bytes", nil)
	heapObjects := reg.Gauge("caladrius_go_heap_objects", nil)
	gcCycles := reg.Counter("caladrius_go_gc_cycles_total", nil)
	gcPause := reg.Counter("caladrius_go_gc_pause_seconds_total", nil)
	uptime := reg.Gauge("caladrius_process_uptime_seconds", nil)
	var lastGC uint32
	var lastPauseNs uint64
	return func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapObjects.Set(float64(ms.HeapObjects))
		gcCycles.Add(float64(ms.NumGC - lastGC))
		lastGC = ms.NumGC
		gcPause.Add(float64(ms.PauseTotalNs-lastPauseNs) / 1e9)
		lastPauseNs = ms.PauseTotalNs
		uptime.Set(now().Sub(start).Seconds())
	}
}
