// Package telemetry is Caladrius' self-observation layer: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms) plus lightweight span tracing for model-pipeline runs.
// The paper positions Caladrius as an always-on modelling *service*
// (§III-A); a service must be able to answer "which endpoint is hot?",
// "how long do calibrations take?" and "how often does the simulator
// enter backpressure?" about itself. Instruments are registered once
// and then updated with lock-free atomics, so hot-path increments are
// allocation-free.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attaches dimensions to an instrument. Label sets are fixed at
// registration: one (name, labels) pair is one time series.
type Labels map[string]string

// atomicFloat is a float64 updated with compare-and-swap on its bit
// pattern — the standard lock-free float accumulator.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) Add(d float64) {
	for {
		old := a.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if a.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (a *atomicFloat) Store(v float64) { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat) Load() float64   { return math.Float64frombits(a.bits.Load()) }

// Counter is a monotonically increasing value. Negative deltas are
// ignored to preserve monotonicity.
type Counter struct{ v atomicFloat }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (ignored when negative).
func (c *Counter) Add(d float64) {
	if d < 0 {
		return
	}
	c.v.Add(d)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add adds d (may be negative).
func (g *Gauge) Add(d float64) { g.v.Add(d) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Bounds are upper
// bounds (inclusive, Prometheus "le" semantics); a final +Inf bucket is
// implicit. Observe is lock-free and allocation-free.
type Histogram struct {
	bounds   []float64 // sorted, exclusive of +Inf
	counts   []atomic.Uint64
	sum      atomicFloat
	count    atomic.Uint64
	exemplar atomic.Pointer[Exemplar]
}

// Exemplar links one observation to the trace that produced it, so a
// latency histogram can answer "show me a request that was this slow".
type Exemplar struct {
	Value float64 `json:"value"`
	Trace string  `json:"trace"`
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveExemplar records one value and, when trace is non-empty,
// remembers it as the histogram's latest exemplar. The exemplar swap
// is a single atomic pointer store; its allocation is the only cost
// over Observe.
func (h *Histogram) ObserveExemplar(v float64, trace string) {
	h.Observe(v)
	if trace != "" {
		h.exemplar.Store(&Exemplar{Value: v, Trace: trace})
	}
}

// Exemplar returns the latest exemplar, or nil when none was recorded.
func (h *Histogram) Exemplar() *Exemplar { return h.exemplar.Load() }

// Merge folds src's observations into h: per-bucket counts, sum and
// count. Both histograms must share a bucket layout (they do when
// registered under one name); mismatched layouts are ignored. Used by
// the usage accountant to roll an evicted principal's latency history
// into the sticky "other" bucket. src should be quiescent — a series
// being observed concurrently merges a near-consistent snapshot, which
// is the usual histogram-scrape guarantee.
func (h *Histogram) Merge(src *Histogram) {
	if src == nil || len(src.counts) != len(h.counts) {
		return
	}
	for i := range src.counts {
		if n := src.counts[i].Load(); n > 0 {
			h.counts[i].Add(n)
		}
	}
	h.sum.Add(src.sum.Load())
	h.count.Add(src.count.Load())
}

// Sum returns the total of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Cumulative returns the cumulative per-bucket counts, one per bound
// plus the +Inf bucket.
func (h *Histogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		out[i] = acc
	}
	return out
}

// DefLatencyBuckets covers request latencies from 1 ms to 10 s.
var DefLatencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// DefTickBuckets covers simulator tick costs from 1 µs to 25 ms.
var DefTickBuckets = []float64{1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 5e-3, 2.5e-2}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family groups every series sharing a metric name.
type family struct {
	name    string
	kind    kind
	help    string
	buckets []float64 // histograms only
	series  map[string]*series
}

type series struct {
	sig    string // sorted k="v" label signature
	labels Labels
	inst   any // *Counter | *Gauge | *Histogram
}

// Registry holds instruments and renders them in Prometheus text
// format or JSON. Registration is idempotent: asking for an existing
// (name, labels) pair returns the same instrument, so packages can
// re-register cheaply. Registering one name as two different kinds (or
// a histogram with different buckets) panics — a programming error, as
// in the Prometheus client.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Default is the process-wide registry used by binaries that do not
// wire an explicit one.
var Default = NewRegistry()

// SetHelp attaches HELP text to a metric name.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		f.help = help
		return
	}
	r.families[name] = &family{name: name, help: help, kind: -1, series: map[string]*series{}}
}

// Counter registers (or fetches) the counter for name+labels.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	return r.register(name, kindCounter, nil, labels).(*Counter)
}

// Gauge registers (or fetches) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	return r.register(name, kindGauge, nil, labels).(*Gauge)
}

// Unregister removes the series for name+labels, so bounded-
// cardinality layers (the usage accountant's top-K eviction) can keep
// the registry from growing with principal churn. The instrument
// object stays valid for holders — updates to it are simply no longer
// exported. Reports whether a series was removed. The family and its
// help text stay registered.
func (r *Registry) Unregister(name string, labels Labels) bool {
	sig := labelSig(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return false
	}
	if _, ok := f.series[sig]; !ok {
		return false
	}
	delete(f.series, sig)
	return true
}

// Histogram registers (or fetches) the histogram for name+labels with
// the given bucket upper bounds (nil = DefLatencyBuckets). Bounds are
// sorted and deduplicated; every series of one name shares one bucket
// layout.
func (r *Registry) Histogram(name string, buckets []float64, labels Labels) *Histogram {
	return r.register(name, kindHistogram, buckets, labels).(*Histogram)
}

func (r *Registry) register(name string, k kind, buckets []float64, labels Labels) any {
	sig := labelSig(labels)
	r.mu.RLock()
	if f, ok := r.families[name]; ok && f.kind == k {
		if s, ok := f.series[sig]; ok {
			r.mu.RUnlock()
			return s.inst
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, kind: k, series: map[string]*series{}}
		r.families[name] = f
	} else if f.kind == -1 { // created by SetHelp
		f.kind = k
	} else if f.kind != k {
		panic(fmt.Sprintf("telemetry: %q registered as %s and %s", name, f.kind, k))
	}
	if k == kindHistogram {
		bs := normalizeBuckets(buckets)
		if f.buckets == nil {
			f.buckets = bs
		} else if !equalBuckets(f.buckets, bs) {
			panic(fmt.Sprintf("telemetry: histogram %q re-registered with different buckets", name))
		}
	}
	if s, ok := f.series[sig]; ok {
		return s.inst
	}
	var inst any
	switch k {
	case kindCounter:
		inst = &Counter{}
	case kindGauge:
		inst = &Gauge{}
	default:
		inst = &Histogram{bounds: f.buckets, counts: make([]atomic.Uint64, len(f.buckets)+1)}
	}
	f.series[sig] = &series{sig: sig, labels: cloneLabels(labels), inst: inst}
	return inst
}

func normalizeBuckets(b []float64) []float64 {
	if len(b) == 0 {
		b = DefLatencyBuckets
	}
	out := append([]float64(nil), b...)
	sort.Float64s(out)
	dedup := out[:0]
	for i, v := range out {
		if math.IsInf(v, 1) {
			continue // +Inf is implicit
		}
		if i > 0 && v == out[i-1] {
			continue
		}
		dedup = append(dedup, v)
	}
	return dedup
}

func equalBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func cloneLabels(l Labels) Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// labelSig renders labels as a deterministic `k="v",…` signature, also
// used verbatim inside the braces of the Prometheus exposition.
func labelSig(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// --- export ----------------------------------------------------------------

// WritePrometheus renders the registry in the Prometheus text
// exposition format, deterministically ordered by metric name and
// label signature.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n, f := range r.families {
		if f.kind == -1 {
			continue // help-only placeholder
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		f := r.families[n]
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", n, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", n, f.kind)
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			s := f.series[sig]
			switch inst := s.inst.(type) {
			case *Counter:
				writeSample(&b, n, sig, "", inst.Value())
			case *Gauge:
				writeSample(&b, n, sig, "", inst.Value())
			case *Histogram:
				cum := inst.Cumulative()
				for i, bound := range inst.bounds {
					writeSample(&b, n+"_bucket", sig, `le="`+formatFloat(bound)+`"`, float64(cum[i]))
				}
				writeSample(&b, n+"_bucket", sig, `le="+Inf"`, float64(cum[len(cum)-1]))
				writeSample(&b, n+"_sum", sig, "", inst.Sum())
				writeSample(&b, n+"_count", sig, "", float64(inst.Count()))
			}
		}
	}
	r.mu.RUnlock()
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSample(b *strings.Builder, name, sig, extra string, v float64) {
	b.WriteString(name)
	if sig != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(sig)
		if sig != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// BucketJSON is one cumulative histogram bucket in the JSON export.
type BucketJSON struct {
	LE    float64 `json:"le"` // +Inf encodes as the largest finite float
	Count uint64  `json:"count"`
}

// SeriesJSON is one labelled time series in the JSON export.
type SeriesJSON struct {
	Labels Labels `json:"labels,omitempty"`
	// Value is set for counters and gauges.
	Value *float64 `json:"value,omitempty"`
	// Buckets/Sum/Count are set for histograms.
	Buckets []BucketJSON `json:"buckets,omitempty"`
	Sum     *float64     `json:"sum,omitempty"`
	Count   *uint64      `json:"count,omitempty"`
	// Exemplar is the histogram's latest trace-linked observation.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// MetricJSON is one metric family in the JSON export.
type MetricJSON struct {
	Name   string       `json:"name"`
	Type   string       `json:"type"`
	Help   string       `json:"help,omitempty"`
	Series []SeriesJSON `json:"series"`
}

// Snapshot returns the registry contents for JSON rendering, ordered
// like WritePrometheus.
func (r *Registry) Snapshot() []MetricJSON {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.families))
	for n, f := range r.families {
		if f.kind == -1 {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]MetricJSON, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		mj := MetricJSON{Name: n, Type: f.kind.String(), Help: f.help}
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			s := f.series[sig]
			sj := SeriesJSON{Labels: cloneLabels(s.labels)}
			switch inst := s.inst.(type) {
			case *Counter:
				v := inst.Value()
				sj.Value = &v
			case *Gauge:
				v := inst.Value()
				sj.Value = &v
			case *Histogram:
				cum := inst.Cumulative()
				for i, bound := range inst.bounds {
					sj.Buckets = append(sj.Buckets, BucketJSON{LE: bound, Count: cum[i]})
				}
				sj.Buckets = append(sj.Buckets, BucketJSON{LE: math.MaxFloat64, Count: cum[len(cum)-1]})
				sum, cnt := inst.Sum(), inst.Count()
				sj.Sum, sj.Count = &sum, &cnt
				sj.Exemplar = inst.Exemplar()
			}
			mj.Series = append(mj.Series, sj)
		}
		out = append(out, mj)
	}
	return out
}

// Handler serves the registry: Prometheus text by default, JSON with
// ?format=json or an application/json Accept header.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(r.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
