package telemetry

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// fakeClock advances a fixed step on every read, so span durations are
// deterministic.
func fakeClock(step time.Duration) func() time.Time {
	t0 := time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * step)
	}
}

func TestTracerSpanTree(t *testing.T) {
	tr := NewTracer(8, fakeClock(time.Millisecond))
	root := tr.Start("job-1", "performance")
	root.SetAttr("mode", "async")
	calib := root.Child("calibrate")
	calib.StartStage("calibrate:splitter")()
	calib.End()
	pred := root.Child("predict")
	pred.End()
	root.End()

	tj, ok := tr.Snapshot("job-1")
	if !ok {
		t.Fatal("trace missing")
	}
	if tj.TraceID != "job-1" || len(tj.Spans) != 1 {
		t.Fatalf("snapshot = %+v", tj)
	}
	rootJ := tj.Spans[0]
	if rootJ.Name != "performance" || rootJ.Attrs["mode"] != "async" || rootJ.InProgress {
		t.Errorf("root = %+v", rootJ)
	}
	if len(rootJ.Children) != 2 || rootJ.Children[0].Name != "calibrate" || rootJ.Children[1].Name != "predict" {
		t.Fatalf("children = %+v", rootJ.Children)
	}
	stage := rootJ.Children[0].Children
	if len(stage) != 1 || stage[0].Name != "calibrate:splitter" {
		t.Errorf("stage children = %+v", stage)
	}
	if rootJ.DurationMs <= 0 || rootJ.Children[0].DurationMs <= 0 {
		t.Errorf("durations: root %g, calibrate %g", rootJ.DurationMs, rootJ.Children[0].DurationMs)
	}
}

func TestTracerOpenSpanAndEviction(t *testing.T) {
	tr := NewTracer(2, fakeClock(time.Millisecond))
	sp := tr.Start("", "work")
	id := sp.TraceID()
	if id == "" {
		t.Fatal("no auto trace id")
	}
	tj, ok := tr.Snapshot(id)
	if !ok || !tj.Spans[0].InProgress || tj.Spans[0].DurationMs <= 0 {
		t.Errorf("open span = %+v", tj.Spans)
	}
	// Two more traces evict the first (max 2).
	for i := 0; i < 2; i++ {
		tr.Start(fmt.Sprintf("x-%d", i), "w").End()
	}
	if tr.Len() != 2 {
		t.Errorf("retained = %d, want 2", tr.Len())
	}
	if _, ok := tr.Snapshot(id); ok {
		t.Error("oldest trace not evicted")
	}
	// Children of an evicted span degrade to nil no-ops.
	if c := sp.Child("late"); c != nil {
		t.Error("child of evicted span should be nil")
	}
}

// TestTracerFIFOEvictionAtDefaultCapacity fills a default-capacity
// tracer past its bound and checks strict FIFO eviction: the store
// never exceeds DefaultMaxTraces, the oldest traces are gone, and the
// most recent ones all survive.
func TestTracerFIFOEvictionAtDefaultCapacity(t *testing.T) {
	tr := NewTracer(0, fakeClock(time.Microsecond))
	total := DefaultMaxTraces + 50
	for i := 0; i < total; i++ {
		tr.Start(fmt.Sprintf("t-%d", i), "w").End()
	}
	if got := tr.Len(); got != DefaultMaxTraces {
		t.Fatalf("retained = %d, want %d", got, DefaultMaxTraces)
	}
	for i := 0; i < 50; i++ {
		if _, ok := tr.Snapshot(fmt.Sprintf("t-%d", i)); ok {
			t.Fatalf("trace t-%d should have been evicted", i)
		}
	}
	for _, i := range []int{50, total / 2, total - 1} {
		if _, ok := tr.Snapshot(fmt.Sprintf("t-%d", i)); !ok {
			t.Errorf("trace t-%d missing", i)
		}
	}
}

func TestNilSpanSafety(t *testing.T) {
	var s *Span
	s.End()
	s.SetAttr("k", "v")
	s.StartStage("x")()
	if s.Child("c") != nil || s.TraceID() != "" {
		t.Error("nil span misbehaved")
	}
	var tr *Tracer
	if sp := tr.Start("a", "b"); sp != nil {
		t.Error("nil tracer produced a span")
	}
	if _, ok := tr.Snapshot("a"); ok {
		t.Error("nil tracer returned a trace")
	}
}

func TestContextPropagation(t *testing.T) {
	tr := NewTracer(0, fakeClock(time.Millisecond))
	ctx := context.Background()
	// No span in ctx → no-op.
	if ctx2, sp := StartSpan(ctx, "x"); sp != nil || ctx2 != ctx {
		t.Error("StartSpan without parent should be a no-op")
	}
	root := tr.Start("job-9", "root")
	ctx = ContextWithSpan(ctx, root)
	ctx, child := StartSpan(ctx, "stage")
	if child == nil || SpanFromContext(ctx) != child {
		t.Fatal("child span not propagated")
	}
	_, grand := StartSpan(ctx, "substage")
	grand.End()
	child.End()
	root.End()
	tj, _ := tr.Snapshot("job-9")
	if len(tj.Spans) != 1 || len(tj.Spans[0].Children) != 1 || len(tj.Spans[0].Children[0].Children) != 1 {
		t.Errorf("tree = %+v", tj.Spans)
	}
}
