package telemetry

import (
	"context"
	"strconv"
	"sync"
	"time"

	"caladrius/internal/tsdb"
)

// Scraper periodically walks a Registry and appends every instrument
// into an embedded tsdb.DB, turning the point-in-time /metrics snapshot
// into queryable history — the same Cuckoo-style substrate the paper's
// models consume (§IV), dogfooded for the service's own telemetry.
//
// What gets appended per scrape, stamped at the scrape time:
//
//   - counters: the running total under the metric name, plus a derived
//     per-second rate under "<name>:rate" (from the second scrape on;
//     counter resets clamp to a restart-from-zero rate).
//   - gauges: the current value under the metric name.
//   - histograms: "<name>_count", "<name>_sum" and one cumulative
//     "<name>_bucket" series per bound with an extra `le` label, plus
//     derived per-interval quantile gauges under "<name>:p50" /
//     "<name>:p95" / "<name>:p99" (configurable), interpolated from the
//     bucket increase since the previous scrape — the windowed latency
//     series dashboards and SLO rules want.
//
// The scraper registers its own instruments (scrape runs, samples
// appended, last duration, retained points) into the same registry, so
// the pipeline observes itself.
type Scraper struct {
	reg       *Registry
	db        *tsdb.DB
	interval  time.Duration
	now       func() time.Time
	quantiles []float64

	mu           sync.Mutex
	lastScrape   time.Time
	gen          uint64 // scrape generation, for stale-state pruning
	prevCounters map[string]prevCounter
	prevBuckets  map[string]prevBuckets
	handles      map[string]scrapeHandle
	batch        []tsdb.BatchSample
	collectors   []func()
	afterScrape  []func(time.Time)

	runs    *Counter
	samples *Counter
	lastDur *Gauge
	points  *Gauge
}

// prevCounter and prevBuckets carry the previous scrape's value of one
// series plus the generation it was last seen in. Series that vanish
// from the registry (unregistered by the usage accountant's top-K
// eviction) are swept after each scrape, so principal churn cannot
// grow the scraper's derived-rate state without bound.
type prevCounter struct {
	v   float64
	gen uint64
}

type prevBuckets struct {
	cum []float64
	gen uint64
}

// scrapeHandle caches one interned tsdb.SeriesHandle, generation-swept
// like the prev* maps. Interning once per series (instead of paying
// label canonicalisation plus a writer-lock round-trip per sample per
// scrape) and flushing the walk through one AppendBatch is what keeps
// the scraper's exclusive TSDB section short under load — measured by
// BenchmarkScraperScrapeOnce, tracked in bench.sh.
type scrapeHandle struct {
	h   *tsdb.SeriesHandle
	gen uint64
}

// ScrapeOptions configures a Scraper.
type ScrapeOptions struct {
	// Interval is the scrape period for Run. Default: 5s.
	Interval time.Duration
	// Now stamps scrape times in Run. Default: time.Now.
	Now func() time.Time
	// Quantiles are the per-interval histogram quantiles to derive.
	// Default: 0.5, 0.95, 0.99. Each must lie in (0, 1).
	Quantiles []float64
}

// NewScraper builds a scraper from reg into db. It panics on a
// quantile outside (0, 1) — a programming error, like a bad bucket
// layout.
func NewScraper(reg *Registry, db *tsdb.DB, opts ScrapeOptions) *Scraper {
	if reg == nil || db == nil {
		panic("telemetry: scraper needs a registry and a history db")
	}
	if opts.Interval <= 0 {
		opts.Interval = 5 * time.Second
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Quantiles == nil {
		opts.Quantiles = []float64{0.5, 0.95, 0.99}
	}
	for _, q := range opts.Quantiles {
		if q <= 0 || q >= 1 {
			panic("telemetry: scrape quantile outside (0, 1)")
		}
	}
	reg.SetHelp("caladrius_scrape_runs_total", "Self-monitoring scrape cycles completed.")
	reg.SetHelp("caladrius_scrape_samples_total", "Samples appended into the history store.")
	reg.SetHelp("caladrius_scrape_last_duration_seconds", "Wall-clock cost of the most recent scrape.")
	reg.SetHelp("caladrius_history_points", "Points retained in the history store after the last scrape.")
	return &Scraper{
		reg:          reg,
		db:           db,
		interval:     opts.Interval,
		now:          opts.Now,
		quantiles:    opts.Quantiles,
		prevCounters: map[string]prevCounter{},
		prevBuckets:  map[string]prevBuckets{},
		handles:      map[string]scrapeHandle{},
		runs:         reg.Counter("caladrius_scrape_runs_total", nil),
		samples:      reg.Counter("caladrius_scrape_samples_total", nil),
		lastDur:      reg.Gauge("caladrius_scrape_last_duration_seconds", nil),
		points:       reg.Gauge("caladrius_history_points", nil),
	}
}

// Interval returns the configured scrape period.
func (s *Scraper) Interval() time.Duration { return s.interval }

// AddCollector registers fn to run at the start of every scrape, for
// pull-style sources that refresh gauges on demand (see
// RegisterRuntime).
func (s *Scraper) AddCollector(fn func()) {
	s.mu.Lock()
	s.collectors = append(s.collectors, fn)
	s.mu.Unlock()
}

// AfterScrape registers fn to run after every scrape with the scrape
// timestamp — the hook the SLO evaluator uses to re-check rules on
// fresh data.
func (s *Scraper) AfterScrape(fn func(time.Time)) {
	s.mu.Lock()
	s.afterScrape = append(s.afterScrape, fn)
	s.mu.Unlock()
}

// QuantileSeries names the derived quantile series the scraper appends
// for a histogram, e.g. QuantileSeries("x_seconds", 0.95) = "x_seconds:p95".
func QuantileSeries(name string, q float64) string {
	return name + ":p" + strconv.FormatFloat(q*100, 'g', -1, 64)
}

// ScrapeOnce performs one scrape stamped at t and reports how many
// samples were appended. Exposed so tests and shutdown paths can force
// a deterministic scrape.
func (s *Scraper) ScrapeOnce(t time.Time) int {
	begin := time.Now()
	s.mu.Lock()
	for _, c := range s.collectors {
		c()
	}
	snap := s.reg.Snapshot()
	var dt float64
	if !s.lastScrape.IsZero() {
		dt = t.Sub(s.lastScrape).Seconds()
	}
	s.gen++
	for _, fam := range snap {
		for _, ser := range fam.Series {
			key := fam.Name + "{" + labelSig(ser.Labels) + "}"
			switch fam.Type {
			case "counter":
				v := *ser.Value
				s.emit(key, fam.Name, ser.Labels, "", "", t, v)
				if prev, ok := s.prevCounters[key]; ok && dt > 0 {
					pv := prev.v
					if v < pv { // counter reset: rate restarts from zero
						pv = 0
					}
					s.emit(key+"|rate", fam.Name+":rate", ser.Labels, "", "", t, (v-pv)/dt)
				}
				s.prevCounters[key] = prevCounter{v: v, gen: s.gen}
			case "gauge":
				s.emit(key, fam.Name, ser.Labels, "", "", t, *ser.Value)
			case "histogram":
				cum := make([]float64, len(ser.Buckets))
				bounds := make([]float64, len(ser.Buckets))
				for i, b := range ser.Buckets {
					cum[i] = float64(b.Count)
					bounds[i] = b.LE
					le := formatFloat(b.LE)
					if b.LE > 1e300 {
						le = "+Inf"
					}
					s.emit(key+"|le="+le, fam.Name+"_bucket", ser.Labels, "le", le, t, cum[i])
				}
				s.emit(key+"|count", fam.Name+"_count", ser.Labels, "", "", t, float64(*ser.Count))
				s.emit(key+"|sum", fam.Name+"_sum", ser.Labels, "", "", t, *ser.Sum)
				s.appendQuantiles(fam.Name, ser.Labels, key, bounds, cum, t)
				s.prevBuckets[key] = prevBuckets{cum: cum, gen: s.gen}
			}
		}
	}
	// One exclusive TSDB section for the whole walk, instead of a
	// writer-lock round-trip per sample.
	s.db.AppendBatch(s.batch)
	n := len(s.batch)
	s.batch = s.batch[:0]
	// Sweep state of series the registry no longer exports.
	for key, p := range s.prevCounters {
		if p.gen != s.gen {
			delete(s.prevCounters, key)
		}
	}
	for key, p := range s.prevBuckets {
		if p.gen != s.gen {
			delete(s.prevBuckets, key)
		}
	}
	for key, h := range s.handles {
		if h.gen != s.gen {
			delete(s.handles, key)
		}
	}
	s.lastScrape = t
	hooks := make([]func(time.Time), len(s.afterScrape))
	copy(hooks, s.afterScrape)
	s.mu.Unlock()

	s.runs.Inc()
	s.samples.Add(float64(n))
	s.lastDur.Set(time.Since(begin).Seconds())
	s.points.Set(float64(s.db.TotalPoints()))
	for _, h := range hooks {
		h(t)
	}
	return n
}

// emit stages one sample into the scrape batch, interning (and
// generation-refreshing) the series handle under hkey. Caller holds
// s.mu; the batch flushes through one AppendBatch at the end of the
// walk.
func (s *Scraper) emit(hkey, metric string, labels Labels, extraKey, extraVal string, t time.Time, v float64) {
	e, ok := s.handles[hkey]
	if !ok {
		e = scrapeHandle{h: s.db.Handle(metric, scrapeLabels(labels, extraKey, extraVal))}
	}
	e.gen = s.gen
	s.handles[hkey] = e
	s.batch = append(s.batch, tsdb.BatchSample{H: e.h, T: t, V: v})
}

// appendQuantiles derives the per-interval quantile points of one
// histogram series from the bucket increase since the previous scrape.
// Caller holds s.mu.
func (s *Scraper) appendQuantiles(name string, labels Labels, key string, bounds, cum []float64, t time.Time) {
	prev, ok := s.prevBuckets[key]
	if !ok || len(prev.cum) != len(cum) {
		return
	}
	inc := make([]float64, len(cum))
	for i := range cum {
		d := cum[i] - prev.cum[i]
		if d < 0 { // histogram reset: skip this interval
			return
		}
		inc[i] = d
		if i > 0 && inc[i] < inc[i-1] { // guard against atomic-read skew
			inc[i] = inc[i-1]
		}
	}
	if inc[len(inc)-1] <= 0 { // nothing observed this interval
		return
	}
	for _, q := range s.quantiles {
		v := estimateQuantile(bounds, inc, q)
		s.emit(key+"|"+QuantileSeries("", q), QuantileSeries(name, q), labels, "", "", t, v)
	}
}

// estimateQuantile interpolates the q-quantile from cumulative bucket
// counts with upper bounds — the histogram_quantile estimate. A rank
// landing in the +Inf bucket reports the highest finite bound.
func estimateQuantile(bounds, cum []float64, q float64) float64 {
	if len(cum) == 0 {
		return 0
	}
	total := cum[len(cum)-1]
	if total <= 0 {
		return 0
	}
	rank := q * total
	lo, below := 0.0, 0.0
	for i, c := range cum {
		if c >= rank {
			if bounds[i] > 1e300 {
				return lo
			}
			span := c - below
			if span <= 0 {
				return lo
			}
			return lo + (bounds[i]-lo)*(rank-below)/span
		}
		lo, below = bounds[i], c
	}
	return lo
}

// scrapeLabels converts registry labels to tsdb labels, optionally
// attaching one extra pair (the bucket `le`).
func scrapeLabels(l Labels, extraKey, extraVal string) tsdb.Labels {
	if len(l) == 0 && extraKey == "" {
		return nil
	}
	out := make(tsdb.Labels, len(l)+1)
	for k, v := range l {
		out[k] = v
	}
	if extraKey != "" {
		out[extraKey] = extraVal
	}
	return out
}

// Run scrapes every Interval until ctx is cancelled.
func (s *Scraper) Run(ctx context.Context) {
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			s.ScrapeOnce(s.now())
		}
	}
}
