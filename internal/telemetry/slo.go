package telemetry

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"caladrius/internal/tsdb"
)

// The SLO evaluator checks declarative rules against recent windows of
// the scraped history and tracks firing/resolved state per rule, with
// transition counters registered back into the registry (so alert
// flapping is itself observable). Evaluation is pull-based: callers —
// the /api/v1/alerts handler and the scraper's AfterScrape hook —
// invoke Evaluate whenever fresh state is wanted.

// CompareOp orders a rule's observed value against its threshold.
type CompareOp string

// Supported comparisons.
const (
	OpGreater CompareOp = ">"
	OpLess    CompareOp = "<"
)

// Rule is one declarative SLO check. Exactly one evaluation mode
// applies: Ratio compares windowed counter increases
// (increase(Metric{Selector}) / increase(Metric{DenomSelector}), the
// 5xx-error-rate shape); otherwise Agg reduces every matching point in
// the window to one value (the latency-quantile and duty-cycle shape,
// via the scraper's derived series).
type Rule struct {
	// Name uniquely identifies the rule in alert payloads and the
	// transition counters.
	Name string
	// Description is surfaced verbatim in alert payloads.
	Description string
	// Metric is the history series to evaluate.
	Metric string
	// Selector restricts which label sets of Metric are considered.
	Selector tsdb.Labels
	// Window is how far back to look. Default: 1 minute.
	Window time.Duration
	// Agg reduces the windowed points (threshold mode). Default: mean.
	Agg tsdb.Agg
	// Ratio switches to counter-increase ratio mode.
	Ratio bool
	// DenomSelector selects the denominator series in ratio mode; empty
	// matches every series of Metric.
	DenomSelector tsdb.Labels
	// Op and Threshold define the breach condition. Default op: ">".
	Op        CompareOp
	Threshold float64
}

// AlertState is the lifecycle state of one rule.
type AlertState string

// Alert states. NoData means the window held nothing evaluable — the
// rule keeps its previous firing timestamp but is reported distinctly
// so a dead scraper is not mistaken for a healthy service.
const (
	StateOK     AlertState = "ok"
	StateFiring AlertState = "firing"
	StateNoData AlertState = "no_data"
)

// Alert is the evaluated state of one rule.
type Alert struct {
	Rule        string     `json:"rule"`
	Description string     `json:"description,omitempty"`
	State       AlertState `json:"state"`
	// Value is the observed value; absent when the window had no data.
	Value     *float64 `json:"value,omitempty"`
	Threshold float64  `json:"threshold"`
	Op        string   `json:"op"`
	Window    string   `json:"window"`
	// Since is when the rule last flipped to firing; set while firing.
	Since       *time.Time `json:"since,omitempty"`
	EvaluatedAt time.Time  `json:"evaluated_at"`
}

// SLO evaluates a fixed rule set against a history store.
type SLO struct {
	db    *tsdb.DB
	now   func() time.Time
	rules []Rule

	mu         sync.Mutex
	firing     map[string]time.Time
	toFiring   map[string]*Counter
	toResolved map[string]*Counter
	onFiring   []func(Rule, Alert)
}

// NewSLO validates rules, registers their transition counters on reg
// and returns the evaluator. now anchors windows (nil = time.Now).
func NewSLO(db *tsdb.DB, reg *Registry, now func() time.Time, rules []Rule) (*SLO, error) {
	if db == nil || reg == nil {
		return nil, errors.New("telemetry: SLO needs a history db and a registry")
	}
	if now == nil {
		now = time.Now
	}
	reg.SetHelp("caladrius_slo_transitions_total", "SLO rule state flips, by rule and new state.")
	s := &SLO{
		db:         db,
		now:        now,
		rules:      append([]Rule(nil), rules...),
		firing:     map[string]time.Time{},
		toFiring:   map[string]*Counter{},
		toResolved: map[string]*Counter{},
	}
	seen := map[string]bool{}
	for i := range s.rules {
		r := &s.rules[i]
		if r.Name == "" || r.Metric == "" {
			return nil, fmt.Errorf("telemetry: SLO rule %d missing name or metric", i)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("telemetry: duplicate SLO rule %q", r.Name)
		}
		seen[r.Name] = true
		if r.Window <= 0 {
			r.Window = time.Minute
		}
		if r.Agg == "" {
			r.Agg = tsdb.AggMean
		}
		if r.Op == "" {
			r.Op = OpGreater
		}
		if r.Op != OpGreater && r.Op != OpLess {
			return nil, fmt.Errorf("telemetry: SLO rule %q has unknown op %q", r.Name, r.Op)
		}
		if math.IsNaN(r.Threshold) || math.IsInf(r.Threshold, 0) {
			return nil, fmt.Errorf("telemetry: SLO rule %q has non-finite threshold", r.Name)
		}
		s.toFiring[r.Name] = reg.Counter("caladrius_slo_transitions_total", Labels{"rule": r.Name, "to": "firing"})
		s.toResolved[r.Name] = reg.Counter("caladrius_slo_transitions_total", Labels{"rule": r.Name, "to": "resolved"})
	}
	return s, nil
}

// Rules returns a copy of the configured rule set.
func (s *SLO) Rules() []Rule { return append([]Rule(nil), s.rules...) }

// OnFiring registers fn to be invoked for every rule that transitions
// to firing — the hook the incident flight recorder arms itself on.
// Callbacks run after Evaluate has released the evaluator lock, on the
// Evaluate caller's goroutine; anything slow must hand the work off
// (the recorder enqueues an asynchronous capture).
func (s *SLO) OnFiring(fn func(Rule, Alert)) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	s.onFiring = append(s.onFiring, fn)
	s.mu.Unlock()
}

// Evaluate checks every rule against its window ending now and returns
// the alert states, flipping firing/resolved and incrementing the
// transition counters as needed.
func (s *SLO) Evaluate() []Alert {
	now := s.now()
	type transition struct {
		rule  Rule
		alert Alert
	}
	var fired []transition
	s.mu.Lock()
	out := make([]Alert, 0, len(s.rules))
	for _, r := range s.rules {
		a := Alert{
			Rule:        r.Name,
			Description: r.Description,
			Threshold:   r.Threshold,
			Op:          string(r.Op),
			Window:      r.Window.String(),
			EvaluatedAt: now,
		}
		v, ok := s.eval(r, now)
		if !ok {
			a.State = StateNoData
			if since, f := s.firing[r.Name]; f {
				a.Since = &since
			}
			out = append(out, a)
			continue
		}
		val := v
		a.Value = &val
		breach := (r.Op == OpGreater && v > r.Threshold) || (r.Op == OpLess && v < r.Threshold)
		since, wasFiring := s.firing[r.Name]
		newlyFiring := false
		switch {
		case breach && !wasFiring:
			since = now
			s.firing[r.Name] = since
			s.toFiring[r.Name].Inc()
			newlyFiring = true
		case !breach && wasFiring:
			delete(s.firing, r.Name)
			s.toResolved[r.Name].Inc()
		}
		if breach {
			a.State = StateFiring
			a.Since = &since
		} else {
			a.State = StateOK
		}
		out = append(out, a)
		if newlyFiring {
			fired = append(fired, transition{rule: r, alert: a})
		}
	}
	var hooks []func(Rule, Alert)
	if len(fired) > 0 {
		hooks = append(hooks, s.onFiring...)
	}
	s.mu.Unlock()
	for _, tr := range fired {
		for _, fn := range hooks {
			fn(tr.rule, tr.alert)
		}
	}
	return out
}

// eval computes one rule's observed value over [now-Window, now).
func (s *SLO) eval(r Rule, now time.Time) (float64, bool) {
	start := now.Add(-r.Window)
	if r.Ratio {
		num, _ := increase(s.db, r.Metric, r.Selector, start, now)
		den, ok := increase(s.db, r.Metric, r.DenomSelector, start, now)
		if !ok || den == 0 {
			return 0, false
		}
		return num / den, true
	}
	v, err := s.db.Aggregate(r.Metric, r.Selector, start, now, r.Agg)
	if err != nil || math.IsNaN(v) {
		return 0, false
	}
	return v, true
}

// increase sums per-series counter growth over the window. ok requires
// at least one matching series with two points — a single sample cannot
// measure growth.
func increase(db *tsdb.DB, metric string, sel tsdb.Labels, start, end time.Time) (float64, bool) {
	series, err := db.Query(metric, sel, start, end)
	if err != nil {
		return 0, false
	}
	var total float64
	ok := false
	for _, s := range series {
		if len(s.Points) < 2 {
			continue
		}
		ok = true
		d := s.Points[len(s.Points)-1].V - s.Points[0].V
		if d < 0 { // counter reset inside the window
			d = s.Points[len(s.Points)-1].V
		}
		total += d
	}
	return total, ok
}

// DefaultSLORules are the rules cmd/caladrius evaluates out of the box:
// p95 request latency, 5xx error rate and the demo simulator's
// backpressure duty cycle.
func DefaultSLORules() []Rule {
	return []Rule{
		{
			Name:        "http-p95-latency",
			Description: "p95 request latency above 500ms over the last minute",
			Metric:      QuantileSeries("caladrius_http_request_duration_seconds", 0.95),
			Agg:         tsdb.AggMax,
			Window:      time.Minute,
			Op:          OpGreater,
			Threshold:   0.5,
		},
		{
			Name:          "http-5xx-rate",
			Description:   "more than 5% of requests returned 5xx over the last 5 minutes",
			Metric:        "caladrius_http_requests_total",
			Selector:      tsdb.Labels{"class": "5xx"},
			Ratio:         true,
			DenomSelector: nil,
			Window:        5 * time.Minute,
			Op:            OpGreater,
			Threshold:     0.05,
		},
		{
			Name:        "sim-backpressure-duty",
			Description: "simulator instances under backpressure for most of the last minute",
			Metric:      "caladrius_sim_backpressure_active_instances",
			Agg:         tsdb.AggMean,
			Window:      time.Minute,
			Op:          OpGreater,
			Threshold:   0.5,
		},
	}
}

// ModelAccuracyRules returns the two SLO rules fed by the prediction
// audit ledger's caladrius_model_* series (internal/audit). The metric
// names are written out rather than imported so telemetry stays
// dependency-free of audit.
//
// mapeThreshold is the rolling MAPE above which model accuracy counts
// as drifted (e.g. 0.25 = 25% mean error); staleAfter is how old a
// topology's calibration may grow before the stale-calibration rule
// fires. window bounds how far back each rule looks for its latest
// value — size it to a few resolver cycles.
// ProfilerRules returns the SLO rule fed by the continuous profiler's
// caladrius_profile_* series: it fires when some function's share of
// CPU flat time has regressed past deltaThreshold (a fraction of
// total, so 0.2 = 20 percentage points) versus the profiling
// baseline. The metric name is written out rather than imported so
// telemetry stays dependency-free, mirroring ModelAccuracyRules.
func ProfilerRules(deltaThreshold float64, window time.Duration) []Rule {
	if window <= 0 {
		window = 15 * time.Minute
	}
	return []Rule{
		{
			Name:        "profile-hot-function-regression",
			Description: "a function's share of CPU flat time regressed past the budget versus the profiling baseline",
			Metric:      "caladrius_profile_top_regression_delta",
			Selector:    tsdb.Labels{"kind": "cpu"},
			Agg:         tsdb.AggLast,
			Window:      window,
			Op:          OpGreater,
			Threshold:   deltaThreshold,
		},
	}
}

func ModelAccuracyRules(mapeThreshold float64, staleAfter, window time.Duration) []Rule {
	if window <= 0 {
		window = 15 * time.Minute
	}
	return []Rule{
		{
			Name:        "model-accuracy-drift",
			Description: "rolling prediction MAPE above threshold — the model's view of the topology has drifted from its observed behaviour",
			Metric:      "caladrius_model_mape",
			Agg:         tsdb.AggLast,
			Window:      window,
			Op:          OpGreater,
			Threshold:   mapeThreshold,
		},
		{
			Name:        "model-stale-calibration",
			Description: "topology model calibration older than the staleness budget",
			Metric:      "caladrius_model_calibration_age_seconds",
			Agg:         tsdb.AggLast,
			Window:      window,
			Op:          OpGreater,
			Threshold:   staleAfter.Seconds(),
		},
	}
}
