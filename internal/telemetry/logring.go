package telemetry

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// LogRing is a bounded in-memory ring of recent structured log
// records, kept so the incident flight recorder can snapshot "what was
// the service saying just before the SLO fired" without a log
// aggregator. The ring is lock-cheap: Append copies the record into a
// pre-allocated slot under a short mutex hold and reuses each slot's
// attribute buffer, so steady-state appends perform no allocations —
// logging on the request hot path never becomes a GC tax.
//
// The ring is fed through its slog.Handler (see LogRing.Handler),
// normally teed with the process stderr handler via TeeHandlers so
// operators keep their console stream and the recorder gets its
// history.
type LogRing struct {
	mu    sync.Mutex
	slots []logSlot
	next  int // slot index of the next write
	total uint64
}

type logSlot struct {
	time  time.Time
	level slog.Level
	msg   string
	trace string
	attrs []byte // reused between occupancies
	used  bool
}

// LogRecord is one captured log record, the snapshot/wire form.
type LogRecord struct {
	Time  time.Time  `json:"time"`
	Level slog.Level `json:"level"`
	Msg   string     `json:"msg"`
	// Trace is the request/model-run trace id the record carried (the
	// "trace" attribute), joining logs to spans and exemplars.
	Trace string `json:"trace,omitempty"`
	// Attrs is the record's remaining attributes, formatted "k=v k=v".
	Attrs string `json:"attrs,omitempty"`
}

// DefaultLogRingCapacity bounds a ring built with capacity <= 0.
const DefaultLogRingCapacity = 1024

// NewLogRing returns a ring retaining the last capacity records
// (<= 0 = DefaultLogRingCapacity).
func NewLogRing(capacity int) *LogRing {
	if capacity <= 0 {
		capacity = DefaultLogRingCapacity
	}
	return &LogRing{slots: make([]logSlot, capacity)}
}

// Cap returns the ring capacity.
func (r *LogRing) Cap() int { return len(r.slots) }

// Len returns how many records the ring currently holds.
func (r *LogRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total >= uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(r.total)
}

// Total returns how many records were ever appended (including ones
// the ring has since overwritten).
func (r *LogRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Append records one entry, overwriting the oldest when full. msg and
// trace are retained by reference (strings are immutable); attrs bytes
// are copied into the slot's reused buffer, so the caller may recycle
// its buffer immediately. Steady-state appends allocate nothing.
func (r *LogRing) Append(t time.Time, level slog.Level, msg, trace string, attrs []byte) {
	r.mu.Lock()
	s := &r.slots[r.next]
	s.time = t
	s.level = level
	s.msg = msg
	s.trace = trace
	s.attrs = append(s.attrs[:0], attrs...)
	s.used = true
	r.next++
	if r.next == len(r.slots) {
		r.next = 0
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the retained records, oldest first.
func (r *LogRing) Snapshot() []LogRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.slots)
	if r.total < uint64(n) {
		n = int(r.total)
	}
	out := make([]LogRecord, 0, n)
	start := r.next - n
	if start < 0 {
		start += len(r.slots)
	}
	for i := 0; i < n; i++ {
		s := &r.slots[(start+i)%len(r.slots)]
		if !s.used {
			continue
		}
		out = append(out, LogRecord{
			Time:  s.time,
			Level: s.level,
			Msg:   s.msg,
			Trace: s.trace,
			Attrs: string(s.attrs),
		})
	}
	return out
}

// --- slog.Handler adapter --------------------------------------------------

// ringHandler formats slog records into the ring. Attribute formatting
// reuses pooled buffers; the only steady-state allocations are the
// ones slog itself makes to deliver the record.
type ringHandler struct {
	ring   *LogRing
	min    slog.Level
	prefix []byte // attrs bound via WithAttrs, preformatted
	group  string // open group prefix for subsequent keys
}

// Handler returns a slog.Handler feeding the ring, dropping records
// below min.
func (r *LogRing) Handler(min slog.Level) slog.Handler {
	return &ringHandler{ring: r, min: min}
}

var logBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

func (h *ringHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= h.min
}

func (h *ringHandler) Handle(_ context.Context, rec slog.Record) error {
	bp := logBufPool.Get().(*[]byte)
	buf := append((*bp)[:0], h.prefix...)
	trace := ""
	rec.Attrs(func(a slog.Attr) bool {
		if a.Key == "trace" && h.group == "" {
			trace = a.Value.Resolve().String()
			return true
		}
		buf = appendAttr(buf, h.group, a)
		return true
	})
	t := rec.Time
	if t.IsZero() {
		t = time.Now()
	}
	h.ring.Append(t, rec.Level, rec.Message, trace, buf)
	*bp = buf
	logBufPool.Put(bp)
	return nil
}

func (h *ringHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := &ringHandler{ring: h.ring, min: h.min, group: h.group}
	nh.prefix = append(append([]byte(nil), h.prefix...), formatAttrs(h.group, attrs)...)
	return nh
}

func (h *ringHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := &ringHandler{ring: h.ring, min: h.min, prefix: h.prefix, group: h.group + name + "."}
	return nh
}

func formatAttrs(group string, attrs []slog.Attr) []byte {
	var buf []byte
	for _, a := range attrs {
		buf = appendAttr(buf, group, a)
	}
	return buf
}

func appendAttr(buf []byte, group string, a slog.Attr) []byte {
	if a.Equal(slog.Attr{}) {
		return buf
	}
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		sub := group + a.Key + "."
		if a.Key == "" {
			sub = group
		}
		for _, ga := range v.Group() {
			buf = appendAttr(buf, sub, ga)
		}
		return buf
	}
	if len(buf) > 0 {
		buf = append(buf, ' ')
	}
	buf = append(buf, group...)
	buf = append(buf, a.Key...)
	buf = append(buf, '=')
	return append(buf, v.String()...)
}

// --- tee -------------------------------------------------------------------

// teeHandler fans records out to several handlers — the stderr text
// handler operators read plus the ring the flight recorder snapshots.
type teeHandler struct{ hs []slog.Handler }

// TeeHandlers returns a handler delivering every record to each of hs
// that is enabled for its level. With a single handler it is returned
// unchanged.
func TeeHandlers(hs ...slog.Handler) slog.Handler {
	if len(hs) == 1 {
		return hs[0]
	}
	return &teeHandler{hs: append([]slog.Handler(nil), hs...)}
}

func (t *teeHandler) Enabled(ctx context.Context, level slog.Level) bool {
	for _, h := range t.hs {
		if h.Enabled(ctx, level) {
			return true
		}
	}
	return false
}

func (t *teeHandler) Handle(ctx context.Context, rec slog.Record) error {
	var firstErr error
	for _, h := range t.hs {
		if !h.Enabled(ctx, rec.Level) {
			continue
		}
		if err := h.Handle(ctx, rec.Clone()); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (t *teeHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	out := make([]slog.Handler, len(t.hs))
	for i, h := range t.hs {
		out[i] = h.WithAttrs(attrs)
	}
	return &teeHandler{hs: out}
}

func (t *teeHandler) WithGroup(name string) slog.Handler {
	out := make([]slog.Handler, len(t.hs))
	for i, h := range t.hs {
		out[i] = h.WithGroup(name)
	}
	return &teeHandler{hs: out}
}
