package telemetry

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Tracer records bounded in-memory traces of model-pipeline runs. A
// trace is a tree of named spans with wall-clock timings and string
// attributes; the API tier keys each trace by its job id so a client
// can fetch "where did my request spend its time?" after the fact.
// When the bound is exceeded the oldest trace is evicted (FIFO), so a
// long-lived daemon holds a sliding window of recent runs.
type Tracer struct {
	mu     sync.Mutex
	now    func() time.Time
	max    int
	seq    int
	traces map[string]*traceRec
	order  []string
}

type traceRec struct {
	id    string
	spans []*Span
}

// Span is one timed region of a trace. The zero *Span (nil) is a valid
// no-op: every method is nil-receiver safe, so call sites instrument
// unconditionally and pay nothing when tracing is off.
type Span struct {
	tracer  *Tracer
	traceID string
	id      int
	parent  int // 0 = root
	name    string
	start   time.Time
	end     time.Time // zero while open
	attrs   [][2]string
}

// DefaultMaxTraces bounds a tracer's memory when no limit is given.
const DefaultMaxTraces = 512

// NewTracer builds a tracer retaining at most max traces (0 =
// DefaultMaxTraces). now is the wall clock (nil = time.Now); traces
// measure real elapsed time, so frozen demo clocks should not be
// passed here.
func NewTracer(max int, now func() time.Time) *Tracer {
	if max <= 0 {
		max = DefaultMaxTraces
	}
	if now == nil {
		now = time.Now
	}
	return &Tracer{now: now, max: max, traces: map[string]*traceRec{}}
}

// Start opens a new trace with a root span. traceID "" auto-generates
// one ("t-1", "t-2", …); passing an existing id replaces that trace.
func (t *Tracer) Start(traceID, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	if traceID == "" {
		traceID = fmt.Sprintf("t-%d", t.seq)
	}
	if _, exists := t.traces[traceID]; !exists {
		t.order = append(t.order, traceID)
		for len(t.order) > t.max {
			delete(t.traces, t.order[0])
			t.order = t.order[1:]
		}
	}
	rec := &traceRec{id: traceID}
	t.traces[traceID] = rec
	sp := &Span{tracer: t, traceID: traceID, id: 1, name: name, start: t.now()}
	rec.spans = append(rec.spans, sp)
	return sp
}

// TraceID returns the id of the span's trace ("" on the nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// Child opens a sub-span. On a nil or evicted span it returns nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, ok := t.traces[s.traceID]
	if !ok {
		return nil
	}
	sp := &Span{tracer: t, traceID: s.traceID, id: len(rec.spans) + 1, parent: s.id, name: name, start: t.now()}
	rec.spans = append(rec.spans, sp)
	return sp
}

// StartStage opens a child span and returns its End, satisfying the
// core package's StageTimer interface so model code can report stage
// timings without importing telemetry.
func (s *Span) StartStage(name string) func() {
	sp := s.Child(name)
	return sp.End
}

// SetAttr attaches a key/value attribute to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	s.attrs = append(s.attrs, [2]string{key, value})
	s.tracer.mu.Unlock()
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tracer.mu.Lock()
	if s.end.IsZero() {
		s.end = s.tracer.now()
	}
	s.tracer.mu.Unlock()
}

// --- context propagation ---------------------------------------------------

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying the span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's span and returns the
// derived context plus the new span. With no span in ctx it is a
// no-op: the original ctx and a nil span come back.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	sp := SpanFromContext(ctx).Child(name)
	if sp == nil {
		return ctx, nil
	}
	return ContextWithSpan(ctx, sp), sp
}

// --- snapshots -------------------------------------------------------------

// SpanJSON is one span in a trace snapshot, with children nested.
type SpanJSON struct {
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationMs float64           `json:"duration_ms"`
	InProgress bool              `json:"in_progress,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []SpanJSON        `json:"children,omitempty"`
}

// TraceJSON is the wire form of one trace: its root spans, children
// nested beneath their parents in start order.
type TraceJSON struct {
	TraceID string     `json:"trace_id"`
	Spans   []SpanJSON `json:"spans"`
}

// Snapshot returns the trace's current span tree; open spans report
// the duration so far and in_progress=true.
func (t *Tracer) Snapshot(traceID string) (TraceJSON, bool) {
	if t == nil {
		return TraceJSON{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, ok := t.traces[traceID]
	if !ok {
		return TraceJSON{}, false
	}
	return t.snapshotLocked(rec), true
}

// Recent returns snapshots of up to n of the most recently started
// traces, oldest first — the span ring an incident bundle captures.
func (t *Tracer) Recent(n int) []TraceJSON {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := t.order
	if len(ids) > n {
		ids = ids[len(ids)-n:]
	}
	out := make([]TraceJSON, 0, len(ids))
	for _, id := range ids {
		if rec, ok := t.traces[id]; ok {
			out = append(out, t.snapshotLocked(rec))
		}
	}
	return out
}

// snapshotLocked builds the span tree of one trace. Caller holds t.mu.
func (t *Tracer) snapshotLocked(rec *traceRec) TraceJSON {
	now := t.now()
	children := map[int][]*Span{}
	for _, sp := range rec.spans {
		children[sp.parent] = append(children[sp.parent], sp)
	}
	var build func(parent int) []SpanJSON
	build = func(parent int) []SpanJSON {
		var out []SpanJSON
		for _, sp := range children[parent] {
			sj := SpanJSON{Name: sp.name, Start: sp.start}
			end := sp.end
			if end.IsZero() {
				end, sj.InProgress = now, true
			}
			sj.DurationMs = float64(end.Sub(sp.start)) / float64(time.Millisecond)
			if len(sp.attrs) > 0 {
				sj.Attrs = make(map[string]string, len(sp.attrs))
				for _, kv := range sp.attrs {
					sj.Attrs[kv[0]] = kv[1]
				}
			}
			sj.Children = build(sp.id)
			out = append(out, sj)
		}
		return out
	}
	return TraceJSON{TraceID: rec.id, Spans: build(0)}
}

// Len reports how many traces are retained (for tests).
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}
