package telemetry

import (
	"fmt"
	"testing"
	"time"

	"caladrius/internal/tsdb"
)

// benchRegistry builds a registry shaped like a live daemon's: per-route
// HTTP instruments, scheduler gauges/counters, usage accountant series —
// a few hundred exported series once histogram buckets fan out.
func benchRegistry(b *testing.B) *Registry {
	b.Helper()
	reg := NewRegistry()
	routes := []string{
		"model_topology_traffic", "model_topology_performance",
		"model_topology_suggest", "history_query_range", "audit_runs",
		"usage_tenants", "status", "healthz", "metrics", "slo_status",
	}
	for _, r := range routes {
		for _, class := range []string{"2xx", "4xx", "5xx"} {
			reg.Counter("caladrius_http_requests_total", Labels{"route": r, "class": class}).Add(100)
		}
		h := reg.Histogram("caladrius_http_request_duration_seconds", DefLatencyBuckets, Labels{"route": r})
		for i := 0; i < 64; i++ {
			h.Observe(float64(i%13) * 0.003)
		}
		reg.Gauge("caladrius_http_inflight_requests", Labels{"route": r}).Set(2)
	}
	for i := 0; i < 16; i++ {
		t := fmt.Sprintf("tenant-%d", i)
		reg.Counter("caladrius_usage_requests_total", Labels{"tenant": t}).Add(50)
		reg.Counter("caladrius_sched_sheds_total", Labels{"tenant": t}).Add(3)
	}
	reg.Gauge("caladrius_sched_queue_depth", nil).Set(4)
	reg.Gauge("caladrius_sched_workers_busy", nil).Set(2)
	wait := reg.Histogram("caladrius_sched_queue_wait_seconds", DefLatencyBuckets, nil)
	for i := 0; i < 64; i++ {
		wait.Observe(float64(i%7) * 0.001)
	}
	return reg
}

// BenchmarkScraperScrapeOnce measures one full registry→TSDB scrape —
// the write path that holds the TSDB lock against concurrent
// query_range reads. bench.sh tracks its ns/op and allocs/op as the
// scrape-path contention figure in BENCH_api.json.
func BenchmarkScraperScrapeOnce(b *testing.B) {
	reg := benchRegistry(b)
	db := tsdb.New(15 * time.Minute)
	s := NewScraper(reg, db, ScrapeOptions{Interval: time.Second})
	base := time.Unix(1_700_000_000, 0).UTC()
	s.ScrapeOnce(base) // warm: rates and quantiles need a previous scrape
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScrapeOnce(base.Add(time.Duration(i+1) * time.Second))
	}
}

// BenchmarkScrapeWithConcurrentReads measures ScrapeOnce while a reader
// continuously issues Query+Downsample against the same DB — the
// scrape-vs-query_range interleaving a loaded daemon sees. Lower ns/op
// here means shorter writer-lock holds and less read starvation.
func BenchmarkScrapeWithConcurrentReads(b *testing.B) {
	reg := benchRegistry(b)
	db := tsdb.New(15 * time.Minute)
	s := NewScraper(reg, db, ScrapeOptions{Interval: time.Second})
	base := time.Unix(1_700_000_000, 0).UTC()
	s.ScrapeOnce(base)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = db.Query("caladrius_http_requests_total", nil, base, base.Add(time.Duration(b.N+2)*time.Second))
			_, _ = db.Downsample("caladrius_http_request_duration_seconds:p95", nil,
				base, base.Add(time.Duration(b.N+2)*time.Second), 10*time.Second, tsdb.AggMax, tsdb.AggMax)
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScrapeOnce(base.Add(time.Duration(i+1) * time.Second))
	}
	b.StopTimer()
	close(stop)
	<-done
}
