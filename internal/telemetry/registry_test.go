package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", Labels{"route": "/x"})
	c.Inc()
	c.Add(2.5)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %g, want 3.5", got)
	}
	// Idempotent registration returns the same instrument.
	if c2 := r.Counter("requests_total", Labels{"route": "/x"}); c2 != c {
		t.Error("re-registration returned a new counter")
	}
	g := r.Gauge("in_flight", nil)
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Errorf("gauge = %g, want 1", got)
	}
	g.Set(40)
	g.Add(2)
	if got := g.Value(); got != 42 {
		t.Errorf("gauge = %g, want 42", got)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", nil)
	defer func() {
		if recover() == nil {
			t.Error("registering one name as two kinds did not panic")
		}
	}()
	r.Gauge("m", nil)
}

// TestHistogramBucketBoundaries pins the "le" semantics: an
// observation equal to an upper bound lands in that bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 5}, nil)
	for _, v := range []float64{0.5, 1, 1.0001, 2, 5, 5.0001, 100} {
		h.Observe(v)
	}
	cum := h.Cumulative()
	want := []uint64{2, 4, 5, 7} // ≤1: {0.5,1}; ≤2: +{1.0001,2}; ≤5: +{5}; +Inf: +{5.0001,100}
	if len(cum) != len(want) {
		t.Fatalf("cumulative buckets = %v", cum)
	}
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all %v)", i, cum[i], want[i], cum)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Sum(); got < 114.5 || got > 114.6 {
		t.Errorf("sum = %g", got)
	}
	// Unsorted/duplicate/+Inf bounds are normalised at registration.
	h2 := r.Histogram("lat2", []float64{5, 1, 1, 2, math.Inf(1)}, nil)
	if len(h2.bounds) != 3 || h2.bounds[0] != 1 || h2.bounds[2] != 5 {
		t.Errorf("normalised bounds = %v", h2.bounds)
	}
}

// TestPrometheusGolden pins the exact text exposition format.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("http_requests_total", "Requests served.")
	r.Counter("http_requests_total", Labels{"route": "/a", "class": "2xx"}).Add(3)
	r.Counter("http_requests_total", Labels{"route": "/b", "class": "5xx"}).Inc()
	r.Gauge("in_flight", nil).Set(2)
	h := r.Histogram("latency_seconds", []float64{0.1, 0.5}, Labels{"route": "/a"})
	h.Observe(0.05)
	h.Observe(0.25)
	h.Observe(0.25)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP http_requests_total Requests served.
# TYPE http_requests_total counter
http_requests_total{class="2xx",route="/a"} 3
http_requests_total{class="5xx",route="/b"} 1
# TYPE in_flight gauge
in_flight 2
# TYPE latency_seconds histogram
latency_seconds_bucket{route="/a",le="0.1"} 1
latency_seconds_bucket{route="/a",le="0.5"} 3
latency_seconds_bucket{route="/a",le="+Inf"} 4
latency_seconds_sum{route="/a"} 2.55
latency_seconds_count{route="/a"} 4
`
	if b.String() != want {
		t.Errorf("prometheus output:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", Labels{"q": "a\"b\\c\nd"}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `q="a\"b\\c\nd"`) {
		t.Errorf("escaping wrong:\n%s", b.String())
	}
}

func TestSnapshotJSONAndHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", nil).Add(7)
	r.Histogram("h", []float64{1}, nil).Observe(0.5)

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("families = %d", len(snap))
	}
	if snap[0].Name != "c" || snap[0].Type != "counter" || *snap[0].Series[0].Value != 7 {
		t.Errorf("counter snapshot = %+v", snap[0])
	}
	if snap[1].Name != "h" || len(snap[1].Series[0].Buckets) != 2 || *snap[1].Series[0].Count != 1 {
		t.Errorf("histogram snapshot = %+v", snap[1])
	}

	// Handler: text by default, JSON on request.
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	respJ, err := srv.Client().Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer respJ.Body.Close()
	var decoded []MetricJSON
	if err := json.NewDecoder(respJ.Body).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 {
		t.Errorf("JSON families = %d", len(decoded))
	}
}

// TestRegistryConcurrency exercises registration and updates from many
// goroutines; run under -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared_total", nil)
			h := r.Histogram("shared_hist", []float64{1, 10}, nil)
			g := r.Gauge("shared_gauge", nil)
			own := r.Counter("per_worker_total", Labels{"w": fmt.Sprintf("%d", w)})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				own.Inc()
				h.Observe(float64(i % 20))
				g.Add(1)
				g.Add(-1)
			}
		}(w)
	}
	// Concurrent readers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var b strings.Builder
			_ = r.WritePrometheus(&b)
			_ = r.Snapshot()
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total", nil).Value(); got != workers*perWorker {
		t.Errorf("shared counter = %g, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("shared_hist", []float64{1, 10}, nil).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("shared_gauge", nil).Value(); got != 0 {
		t.Errorf("gauge = %g, want 0", got)
	}
}

// TestHistogramExemplar pins exemplar semantics: the latest traced
// observation wins, untraced observations leave it alone, and the
// exemplar rides out in the JSON snapshot.
func TestHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ex", []float64{1}, nil)
	if h.Exemplar() != nil {
		t.Fatal("fresh histogram has an exemplar")
	}
	h.ObserveExemplar(0.25, "req-1")
	h.ObserveExemplar(0.75, "req-2")
	h.ObserveExemplar(0.5, "") // untraced: observed but no exemplar update
	ex := h.Exemplar()
	if ex == nil || ex.Trace != "req-2" || ex.Value != 0.75 {
		t.Fatalf("exemplar = %+v", ex)
	}
	if h.Count() != 3 {
		t.Errorf("count = %d", h.Count())
	}
	for _, m := range r.Snapshot() {
		if m.Name != "lat_ex" {
			continue
		}
		if m.Series[0].Exemplar == nil || m.Series[0].Exemplar.Trace != "req-2" {
			t.Fatalf("snapshot exemplar = %+v", m.Series[0].Exemplar)
		}
		return
	}
	t.Fatal("lat_ex not in snapshot")
}
