package telemetry

import (
	"context"
	"math"
	"testing"
	"time"

	"caladrius/internal/tsdb"
)

var scrapeT0 = time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

func TestScrapeCountersGaugesAndRates(t *testing.T) {
	reg := NewRegistry()
	db := tsdb.New(0)
	s := NewScraper(reg, db, ScrapeOptions{})

	c := reg.Counter("requests_total", Labels{"route": "/x"})
	g := reg.Gauge("in_flight", nil)
	c.Add(10)
	g.Set(3)
	s.ScrapeOnce(scrapeT0)
	c.Add(20)
	g.Set(7)
	s.ScrapeOnce(scrapeT0.Add(10 * time.Second))

	end := scrapeT0.Add(time.Minute)
	series, err := db.Query("requests_total", tsdb.Labels{"route": "/x"}, scrapeT0, end)
	if err != nil || len(series) != 1 || len(series[0].Points) != 2 {
		t.Fatalf("counter series = %+v, err %v", series, err)
	}
	if series[0].Points[0].V != 10 || series[0].Points[1].V != 30 {
		t.Errorf("counter values = %+v", series[0].Points)
	}
	// Rate appears from the second scrape: (30-10)/10s = 2/s.
	rate, err := db.Query("requests_total:rate", nil, scrapeT0, end)
	if err != nil || len(rate) != 1 || len(rate[0].Points) != 1 {
		t.Fatalf("rate series = %+v, err %v", rate, err)
	}
	if got := rate[0].Points[0].V; math.Abs(got-2) > 1e-9 {
		t.Errorf("rate = %g, want 2", got)
	}
	gauge, err := db.Query("in_flight", nil, scrapeT0, end)
	if err != nil || len(gauge[0].Points) != 2 || gauge[0].Points[1].V != 7 {
		t.Fatalf("gauge series = %+v, err %v", gauge, err)
	}
	// Self-metrics registered and counting.
	if got := reg.Counter("caladrius_scrape_runs_total", nil).Value(); got != 2 {
		t.Errorf("scrape runs = %g, want 2", got)
	}
	if got := reg.Counter("caladrius_scrape_samples_total", nil).Value(); got <= 0 {
		t.Errorf("scrape samples = %g, want > 0", got)
	}
}

func TestScrapeCounterReset(t *testing.T) {
	reg := NewRegistry()
	db := tsdb.New(0)
	s := NewScraper(reg, db, ScrapeOptions{})
	c := reg.Counter("events_total", nil)
	c.Add(100)
	s.ScrapeOnce(scrapeT0)
	// Simulate a restart: previous value recorded as 100, new registry
	// value drops below it.
	s.mu.Lock()
	s.prevCounters["events_total{}"] = prevCounter{v: 1000, gen: s.gen}
	s.mu.Unlock()
	c.Add(5)
	s.ScrapeOnce(scrapeT0.Add(10 * time.Second))
	rate, err := db.Query("events_total:rate", nil, scrapeT0, scrapeT0.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	// Reset clamps to restart-from-zero: 105/10s.
	if got := rate[0].Points[len(rate[0].Points)-1].V; math.Abs(got-10.5) > 1e-9 {
		t.Errorf("post-reset rate = %g, want 10.5", got)
	}
}

func TestScrapeHistogramBucketsAndQuantiles(t *testing.T) {
	reg := NewRegistry()
	db := tsdb.New(0)
	s := NewScraper(reg, db, ScrapeOptions{Quantiles: []float64{0.95}})
	h := reg.Histogram("latency_seconds", []float64{0.1, 0.2, 0.4}, Labels{"route": "/x"})
	h.Observe(0.05)
	s.ScrapeOnce(scrapeT0)

	// Buckets, count and sum are appended on every scrape.
	end := scrapeT0.Add(time.Minute)
	buckets, err := db.Query("latency_seconds_bucket", tsdb.Labels{"route": "/x"}, scrapeT0, end)
	if err != nil || len(buckets) != 4 { // 3 bounds + Inf
		t.Fatalf("bucket series = %d, err %v", len(buckets), err)
	}
	if db.SeriesCount("latency_seconds_count") != 1 || db.SeriesCount("latency_seconds_sum") != 1 {
		t.Error("count/sum series missing")
	}
	les := db.LabelValues("latency_seconds_bucket", "le")
	wantLE := map[string]bool{"0.1": true, "0.2": true, "0.4": true, "+Inf": true}
	for _, le := range les {
		if !wantLE[le] {
			t.Errorf("unexpected le %q", le)
		}
	}

	// No quantile on the first scrape (no previous buckets).
	if db.SeriesCount(QuantileSeries("latency_seconds", 0.95)) != 0 {
		t.Error("quantile series appeared before a second scrape")
	}

	// 20 observations in the 0.2–0.4 bucket this interval: p95 lies there.
	for i := 0; i < 20; i++ {
		h.Observe(0.3)
	}
	s.ScrapeOnce(scrapeT0.Add(10 * time.Second))
	p95, err := db.Query(QuantileSeries("latency_seconds", 0.95), nil, scrapeT0, end)
	if err != nil || len(p95) != 1 || len(p95[0].Points) != 1 {
		t.Fatalf("p95 series = %+v, err %v", p95, err)
	}
	if v := p95[0].Points[0].V; v < 0.2 || v > 0.4 {
		t.Errorf("p95 = %g, want within (0.2, 0.4]", v)
	}

	// An idle interval appends no quantile point.
	s.ScrapeOnce(scrapeT0.Add(20 * time.Second))
	p95, _ = db.Query(QuantileSeries("latency_seconds", 0.95), nil, scrapeT0, end)
	if len(p95[0].Points) != 1 {
		t.Errorf("idle interval appended a quantile point: %+v", p95[0].Points)
	}
}

func TestEstimateQuantile(t *testing.T) {
	bounds := []float64{1, 2, 4, math.MaxFloat64}
	cum := []float64{10, 30, 40, 40}
	if got := estimateQuantile(bounds, cum, 0.5); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p50 = %g, want 1.5", got) // rank 20 → halfway through (1,2]
	}
	if got := estimateQuantile(bounds, cum, 1.0); got != 4 {
		t.Errorf("p100 = %g, want 4 (rank in +Inf bucket reports last finite bound)", got)
	}
	if got := estimateQuantile(nil, nil, 0.9); got != 0 {
		t.Errorf("empty = %g, want 0", got)
	}
	if got := estimateQuantile(bounds, []float64{0, 0, 0, 0}, 0.9); got != 0 {
		t.Errorf("zero-count = %g, want 0", got)
	}
}

func TestScraperCollectorsAndHooks(t *testing.T) {
	reg := NewRegistry()
	db := tsdb.New(0)
	s := NewScraper(reg, db, ScrapeOptions{})
	collected, hooked := 0, 0
	var hookT time.Time
	s.AddCollector(func() { collected++ })
	s.AfterScrape(func(t time.Time) { hooked++; hookT = t })
	s.ScrapeOnce(scrapeT0)
	if collected != 1 || hooked != 1 || !hookT.Equal(scrapeT0) {
		t.Errorf("collected=%d hooked=%d at %v", collected, hooked, hookT)
	}
}

func TestRegisterRuntime(t *testing.T) {
	reg := NewRegistry()
	start := scrapeT0
	now := start.Add(90 * time.Second)
	collect := RegisterRuntime(reg, start, func() time.Time { return now })
	collect()
	if got := reg.Gauge("caladrius_go_goroutines", nil).Value(); got < 1 {
		t.Errorf("goroutines = %g, want ≥ 1", got)
	}
	if got := reg.Gauge("caladrius_go_heap_alloc_bytes", nil).Value(); got <= 0 {
		t.Errorf("heap alloc = %g, want > 0", got)
	}
	if got := reg.Gauge("caladrius_process_uptime_seconds", nil).Value(); got != 90 {
		t.Errorf("uptime = %g, want 90", got)
	}
	// A second collect must not double-count GC cycles.
	cycles := reg.Counter("caladrius_go_gc_cycles_total", nil).Value()
	collect()
	after := reg.Counter("caladrius_go_gc_cycles_total", nil).Value()
	if after < cycles {
		t.Errorf("gc cycles went backwards: %g → %g", cycles, after)
	}
}

func TestScraperRunLoop(t *testing.T) {
	reg := NewRegistry()
	db := tsdb.New(0)
	reg.Gauge("g", nil).Set(1)
	s := NewScraper(reg, db, ScrapeOptions{Interval: 5 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { s.Run(ctx); close(done) }()
	deadline := time.After(2 * time.Second)
	for db.TotalPoints() == 0 {
		select {
		case <-deadline:
			t.Fatal("run loop never scraped")
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("run loop did not stop on cancel")
	}
}
