package telemetry

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"caladrius/internal/tsdb"
)

// TestScrapeUnderRegistryChurn is the race stress for the scrape path:
// ScrapeOnce (snapshot + rate derivation + handle-cached batch append)
// racing against series registration/unregistration churn, live
// counter/histogram traffic, and TSDB readers on the history store.
// The handle cache's generation sweep only runs inside ScrapeOnce, so
// churned-away series must be evicted without tripping the detector.
func TestScrapeUnderRegistryChurn(t *testing.T) {
	const iters = 150
	reg := NewRegistry()
	db := tsdb.New(time.Hour)
	base := time.Unix(1_700_000_000, 0)
	s := NewScraper(reg, db, ScrapeOptions{Interval: time.Second})

	// Stable instruments so every scrape has work to do.
	stable := reg.Counter("stress_requests_total", Labels{"route": "stable"})
	hist := reg.Histogram("stress_latency_seconds", nil, Labels{"route": "stable"})

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Scrape loop: one scrape per fake second.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			s.ScrapeOnce(base.Add(time.Duration(i) * time.Second))
		}
		close(stop)
	}()

	// Registration churn: short-lived tenant series appear and vanish
	// between scrapes — the path that grows and sweeps the handle cache.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			lbl := Labels{"tenant": "t" + strconv.Itoa(i%8)}
			reg.Counter("stress_churn_total", lbl).Add(1)
			reg.Gauge("stress_churn_gauge", lbl).Set(float64(i))
			if i%3 == 0 {
				reg.Unregister("stress_churn_total", lbl)
				reg.Unregister("stress_churn_gauge", lbl)
			}
			i++
		}
	}()

	// Instrument traffic: counters and histogram observations while
	// snapshots are being taken.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				stable.Add(1)
				hist.Observe(float64(i%100) / 1000)
				i++
			}
		}(w)
	}

	// History readers: the concurrent-scrape+query contention path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		end := base.Add(iters * time.Second)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = db.Query("stress_requests_total", nil, base, end)
			_, _ = db.Downsample("stress_latency_seconds_count", nil, base, end, 10*time.Second, tsdb.AggMax, tsdb.AggSum)
			_ = db.TotalPoints()
		}
	}()

	wg.Wait()

	// The stable counter must have a contiguous scraped history.
	series, err := db.Query("stress_requests_total", tsdb.Labels{"route": "stable"}, base, base.Add(iters*time.Second))
	if err != nil || len(series) == 0 {
		t.Fatalf("stable counter missing from history after churn: %v", err)
	}
	if got := len(series[0].Points); got < iters/2 {
		t.Fatalf("stable counter has %d scraped points, want >= %d", got, iters/2)
	}
}
