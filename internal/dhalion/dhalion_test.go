package dhalion

import (
	"strings"
	"testing"

	"caladrius/internal/heron"
)

// The evaluation scenario: 40 M sentences/minute offered, so the SLO is
// the full processed word rate ≈ 40e6 × 7.635.
const (
	offeredRate = 40e6
	sloRate     = offeredRate * heron.SplitterAlpha * 0.98
)

func TestScalerConvergesOnSLO(t *testing.T) {
	d := &WordCountDeployer{RatePerMinute: offeredRate}
	s := Scaler{SLOThroughputTPM: sloRate}
	res, err := s.Run(map[string]int{"spout": 8, "splitter": 1, "counter": 1}, d)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %s (rounds %d)", res.Reason, len(res.Rounds))
	}
	// Under-provisioned start must need several rounds — the paper's
	// complaint about reactive scaling.
	if res.Deployments() < 4 {
		t.Errorf("deployments = %d, expected ≥ 4 for a 1/1 start", res.Deployments())
	}
	// Final plan satisfies capacity arithmetic.
	if res.FinalParallelisms["splitter"] < 4 {
		t.Errorf("final splitter = %d, want ≥ 4", res.FinalParallelisms["splitter"])
	}
	if res.FinalParallelisms["counter"] < 5 {
		t.Errorf("final counter = %d, want ≥ 5", res.FinalParallelisms["counter"])
	}
	// Last round is healthy.
	last := res.Rounds[len(res.Rounds)-1]
	if last.Measurement.BackpressureMsPerMin > 5000 {
		t.Errorf("final round backpressure = %g", last.Measurement.BackpressureMsPerMin)
	}
	if last.Measurement.SinkThroughputTPM < sloRate {
		t.Errorf("final throughput = %g < SLO %g", last.Measurement.SinkThroughputTPM, sloRate)
	}
}

func TestScalerAlreadyHealthy(t *testing.T) {
	d := &WordCountDeployer{RatePerMinute: offeredRate}
	s := Scaler{SLOThroughputTPM: sloRate}
	res, err := s.Run(map[string]int{"spout": 8, "splitter": 5, "counter": 6}, d)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Deployments() != 1 {
		t.Errorf("healthy start: converged=%v deployments=%d", res.Converged, res.Deployments())
	}
}

func TestScalerSourceLimited(t *testing.T) {
	// Offered traffic can never meet the SLO; the scaler must stop
	// rather than scale forever.
	d := &WordCountDeployer{RatePerMinute: 5e6}
	s := Scaler{SLOThroughputTPM: sloRate}
	res, err := s.Run(map[string]int{"spout": 8, "splitter": 2, "counter": 2}, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("source-limited run converged")
	}
	if !strings.Contains(res.Reason, "source-limited") {
		t.Errorf("reason = %q", res.Reason)
	}
	if res.Deployments() != 1 {
		t.Errorf("deployments = %d, want 1", res.Deployments())
	}
}

func TestScalerValidation(t *testing.T) {
	d := &WordCountDeployer{RatePerMinute: 1e6}
	if _, err := (Scaler{}).Run(map[string]int{"spout": 1}, d); err == nil {
		t.Error("zero SLO accepted")
	}
	if _, err := (Scaler{SLOThroughputTPM: 1, ScaleFactor: 0.5}).Run(map[string]int{"spout": 1}, d); err == nil {
		t.Error("scale factor ≤ 1 accepted")
	}
	if _, err := (Scaler{SLOThroughputTPM: 1}).Run(map[string]int{"spout": 0}, d); err == nil {
		t.Error("zero parallelism accepted")
	}
	if _, err := (Scaler{SLOThroughputTPM: 1}).Run(map[string]int{"spout": 1}, nil); err == nil {
		t.Error("nil deployer accepted")
	}
}

func TestScalerRoundBudget(t *testing.T) {
	d := &WordCountDeployer{RatePerMinute: offeredRate}
	s := Scaler{SLOThroughputTPM: sloRate, MaxRounds: 2}
	res, err := s.Run(map[string]int{"spout": 8, "splitter": 1, "counter": 1}, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Reason != "round budget exhausted" {
		t.Errorf("result = %+v", res)
	}
	if res.Deployments() != 2 {
		t.Errorf("deployments = %d", res.Deployments())
	}
}

// TestCaladriusBeatsDhalionOnDeployments reproduces the paper's core
// claim: model-driven tuning converges in far fewer deployments than
// reactive scaling. Each deployment can only pin the saturation point
// of its actual bottleneck, so the model-driven loop needs roughly one
// round per distinct bottleneck plus the final verification — three
// here — while Dhalion pays one round per scaling increment.
func TestCaladriusBeatsDhalionOnDeployments(t *testing.T) {
	initial := map[string]int{"spout": 8, "splitter": 1, "counter": 1}

	// --- Dhalion: reactive rounds.
	dd := &WordCountDeployer{RatePerMinute: offeredRate}
	dres, err := Scaler{SLOThroughputTPM: sloRate}.Run(initial, dd)
	if err != nil {
		t.Fatal(err)
	}
	if !dres.Converged {
		t.Fatalf("dhalion did not converge: %s", dres.Reason)
	}

	// --- Caladrius: calibrate-and-plan loop.
	cres, err := CaladriusTuner{RatePerMinute: offeredRate, SLOThroughputTPM: sloRate}.Run(initial)
	if err != nil {
		t.Fatal(err)
	}
	if !cres.Converged {
		t.Fatalf("caladrius did not converge: %s (rounds %+v)", cres.Reason, cres.Rounds)
	}
	last := cres.Rounds[len(cres.Rounds)-1]
	if last.Measurement.SinkThroughputTPM < sloRate {
		t.Fatalf("caladrius final throughput %g < SLO %g", last.Measurement.SinkThroughputTPM, sloRate)
	}
	if cres.Deployments() >= dres.Deployments() {
		t.Errorf("caladrius used %d deployments, dhalion %d — model should win", cres.Deployments(), dres.Deployments())
	}
	if cres.Deployments() > 4 {
		t.Errorf("caladrius used %d deployments, expected ≤ 4 (one per bottleneck + verify)", cres.Deployments())
	}
}
