// Package dhalion implements a Dhalion-style self-regulating scaler,
// the baseline Caladrius is motivated against. Dhalion monitors a
// deployed topology, recognises symptoms (backpressure, missed
// throughput SLOs), diagnoses the bottleneck component and applies a
// resolution — scaling that component out — then redeploys and waits
// for the topology to stabilise before re-evaluating. Convergence to
// an SLO therefore costs one deploy-measure-diagnose round per
// adjustment, the "plan → deploy → stabilize → analyze loop" the paper
// says can take weeks on production topologies.
//
// The package is deliberately engine-agnostic: it drives any Deployer,
// and the heron-simulator implementation lives alongside so benchmarks
// can race Dhalion's round count against Caladrius' single dry-run
// iteration.
package dhalion

import (
	"errors"
	"fmt"
	"time"

	"caladrius/internal/heron"
	"caladrius/internal/metrics"
	"caladrius/internal/workload"
)

// Measurement is what one deployment round observes after the topology
// stabilises.
type Measurement struct {
	// BackpressureMsPerMin is the steady-state topology backpressure
	// time (ms per minute window).
	BackpressureMsPerMin float64
	// ComponentBackpressureMs maps component → its per-window
	// backpressure time (the diagnosis signal).
	ComponentBackpressureMs map[string]float64
	// SinkThroughputTPM is the summed processing throughput of sink
	// components in tuples/minute (the SLO metric).
	SinkThroughputTPM float64
}

// Deployer deploys a configuration and measures its stabilised
// behaviour. Each call represents a full deploy-stabilise-measure
// round.
type Deployer interface {
	Deploy(parallelisms map[string]int) (Measurement, error)
}

// Round records one iteration of the scaling loop.
type Round struct {
	Parallelisms map[string]int
	Measurement  Measurement
	// Diagnosis explains the action taken after this round.
	Diagnosis string
}

// Result is the outcome of a scaling session.
type Result struct {
	Rounds []Round
	// Converged reports whether the SLO was met without backpressure.
	Converged bool
	// FinalParallelisms is the configuration of the last round.
	FinalParallelisms map[string]int
	// Reason describes why the loop stopped.
	Reason string
}

// Deployments returns the number of deployments performed — the cost
// metric Caladrius reduces.
func (r Result) Deployments() int { return len(r.Rounds) }

// Scaler is the symptom → diagnosis → resolution loop.
type Scaler struct {
	// SLOThroughputTPM is the required sink throughput.
	SLOThroughputTPM float64
	// SLOTolerance allows the throughput to fall this fraction short
	// and still count as met. Default 0.02.
	SLOTolerance float64
	// BackpressureThresholdMs is the per-window backpressure time that
	// counts as the backpressure symptom. Default 5000.
	BackpressureThresholdMs float64
	// ScaleFactor multiplies the bottleneck's parallelism each round
	// (Dhalion scales gradually). Default 1.5, minimum +1 instance.
	ScaleFactor float64
	// MaxRounds bounds the loop. Default 12.
	MaxRounds int
	// MaxParallelism caps any single component. Default 64.
	MaxParallelism int
}

func (s Scaler) withDefaults() Scaler {
	if s.SLOTolerance == 0 {
		s.SLOTolerance = 0.02
	}
	if s.BackpressureThresholdMs == 0 {
		s.BackpressureThresholdMs = 5000
	}
	if s.ScaleFactor == 0 {
		s.ScaleFactor = 1.5
	}
	if s.MaxRounds == 0 {
		s.MaxRounds = 12
	}
	if s.MaxParallelism == 0 {
		s.MaxParallelism = 64
	}
	return s
}

// Run executes the scaling loop from the initial configuration.
func (s Scaler) Run(initial map[string]int, d Deployer) (Result, error) {
	s = s.withDefaults()
	if s.SLOThroughputTPM <= 0 {
		return Result{}, fmt.Errorf("dhalion: non-positive SLO %g", s.SLOThroughputTPM)
	}
	if s.ScaleFactor <= 1 {
		return Result{}, fmt.Errorf("dhalion: scale factor %g must exceed 1", s.ScaleFactor)
	}
	if d == nil {
		return Result{}, errors.New("dhalion: nil deployer")
	}
	current := map[string]int{}
	for k, v := range initial {
		if v < 1 {
			return Result{}, fmt.Errorf("dhalion: component %q parallelism %d", k, v)
		}
		current[k] = v
	}
	res := Result{}
	for round := 0; round < s.MaxRounds; round++ {
		m, err := d.Deploy(cloneInts(current))
		if err != nil {
			return res, fmt.Errorf("dhalion: round %d deploy: %w", round+1, err)
		}
		r := Round{Parallelisms: cloneInts(current), Measurement: m}

		sloMet := m.SinkThroughputTPM >= s.SLOThroughputTPM*(1-s.SLOTolerance)
		hasBp := m.BackpressureMsPerMin >= s.BackpressureThresholdMs

		switch {
		case sloMet && !hasBp:
			r.Diagnosis = "healthy: SLO met without backpressure"
			res.Rounds = append(res.Rounds, r)
			res.Converged = true
			res.Reason = r.Diagnosis
			res.FinalParallelisms = cloneInts(current)
			return res, nil
		case hasBp:
			bottleneck := ""
			worst := -1.0
			for comp, bp := range m.ComponentBackpressureMs {
				if bp > worst {
					worst, bottleneck = bp, comp
				}
			}
			if bottleneck == "" || worst < s.BackpressureThresholdMs {
				r.Diagnosis = "backpressure without identifiable initiator"
				res.Rounds = append(res.Rounds, r)
				res.Reason = r.Diagnosis
				res.FinalParallelisms = cloneInts(current)
				return res, nil
			}
			p := current[bottleneck]
			next := int(float64(p) * s.ScaleFactor)
			if next <= p {
				next = p + 1
			}
			if next > s.MaxParallelism {
				r.Diagnosis = fmt.Sprintf("bottleneck %s already at max parallelism", bottleneck)
				res.Rounds = append(res.Rounds, r)
				res.Reason = r.Diagnosis
				res.FinalParallelisms = cloneInts(current)
				return res, nil
			}
			r.Diagnosis = fmt.Sprintf("backpressure at %s: scale %d → %d", bottleneck, p, next)
			current[bottleneck] = next
		default:
			// No backpressure but SLO missed: the source itself does
			// not offer enough traffic; scaling cannot help.
			r.Diagnosis = "SLO missed without backpressure: source-limited"
			res.Rounds = append(res.Rounds, r)
			res.Reason = r.Diagnosis
			res.FinalParallelisms = cloneInts(current)
			return res, nil
		}
		res.Rounds = append(res.Rounds, r)
	}
	res.Reason = "round budget exhausted"
	res.FinalParallelisms = cloneInts(current)
	return res, nil
}

func cloneInts(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// WordCountDeployer deploys word-count configurations on the heron
// simulator: each Deploy runs a fresh simulation to steady state and
// summarises it, exactly the cost profile of a real deployment round
// (compressed in time).
type WordCountDeployer struct {
	// RatePerMinute is the offered source rate.
	RatePerMinute float64
	// StabiliseMinutes is the simulated warm-up before measurement.
	// Default 5.
	StabiliseMinutes int
	// MeasureMinutes is the measurement window. Default 5.
	MeasureMinutes int
	// Deploys counts Deploy calls.
	Deploys int
}

// Deploy implements Deployer.
func (w *WordCountDeployer) Deploy(parallelisms map[string]int) (Measurement, error) {
	w.Deploys++
	stab := w.StabiliseMinutes
	if stab == 0 {
		stab = 5
	}
	meas := w.MeasureMinutes
	if meas == 0 {
		meas = 5
	}
	opts := heron.WordCountOptions{
		SpoutP:    parallelisms["spout"],
		SplitterP: parallelisms["splitter"],
		CounterP:  parallelisms["counter"],
		Schedule:  workload.ConstantRate(w.RatePerMinute / 60),
	}
	sim, err := heron.NewWordCount(opts)
	if err != nil {
		return Measurement{}, err
	}
	total := time.Duration(stab+meas) * time.Minute
	if err := sim.Run(total); err != nil {
		return Measurement{}, err
	}
	prov, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
	if err != nil {
		return Measurement{}, err
	}
	start, end := sim.Start(), sim.Start().Add(total)
	m := Measurement{ComponentBackpressureMs: map[string]float64{}}
	for _, comp := range []string{"spout", "splitter", "counter"} {
		ws, err := prov.ComponentWindows("word-count", comp, start, end)
		if err != nil {
			return Measurement{}, err
		}
		ss, err := metrics.Summarise(ws, stab)
		if err != nil {
			return Measurement{}, err
		}
		m.ComponentBackpressureMs[comp] = ss.BackpressureMs
		if comp == "counter" {
			m.SinkThroughputTPM = ss.Execute
		}
	}
	pts, err := prov.TopologyBackpressureMs("word-count", start.Add(time.Duration(stab)*time.Minute), end)
	if err != nil {
		return Measurement{}, err
	}
	for _, p := range pts {
		m.BackpressureMsPerMin += p.V
	}
	if len(pts) > 0 {
		m.BackpressureMsPerMin /= float64(len(pts))
	}
	return m, nil
}
