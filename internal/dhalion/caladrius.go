package dhalion

import (
	"fmt"
	"math"
	"time"

	"caladrius/internal/core"
	"caladrius/internal/heron"
	"caladrius/internal/metrics"
	"caladrius/internal/topology"
)

// CaladriusTuner is the model-driven counterpart of Scaler: each
// deployment is also a calibration opportunity, and the next
// configuration comes from the performance model's dry-run planning
// rather than a fixed reactive step. A deployment can only calibrate
// the saturation point of the component that actually bottlenecks it
// (§V-B needs a saturated observation, and only the binding component
// saturates), so severely under-provisioned topologies converge in a
// few rounds — one per distinct bottleneck — instead of Dhalion's one
// round per scaling increment.
type CaladriusTuner struct {
	// RatePerMinute is the offered source rate.
	RatePerMinute float64
	// SLOThroughputTPM is the required sink throughput.
	SLOThroughputTPM float64
	// Headroom is the planning margin (default 0.15).
	Headroom float64
	// MaxRounds bounds the loop (default 6).
	MaxRounds int
	// BackpressureThresholdMs matches Scaler's symptom threshold
	// (default 5000).
	BackpressureThresholdMs float64
	// StabiliseMinutes / MeasureMinutes shape each simulated
	// deployment (defaults 5 / 7).
	StabiliseMinutes, MeasureMinutes int
}

func (c CaladriusTuner) withDefaults() CaladriusTuner {
	if c.Headroom == 0 {
		c.Headroom = 0.15
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 6
	}
	if c.BackpressureThresholdMs == 0 {
		c.BackpressureThresholdMs = 5000
	}
	if c.StabiliseMinutes == 0 {
		c.StabiliseMinutes = 5
	}
	if c.MeasureMinutes == 0 {
		c.MeasureMinutes = 7
	}
	return c
}

// knownModel accumulates per-component knowledge across rounds. α and
// ψ refresh every round; the per-instance SP — which is intrinsic to
// the component, not to the parallelism it was observed at — is kept
// once a saturated observation pins it.
type knownModel struct {
	alpha, psi float64
	sp         float64 // +Inf until observed
	shares     []float64
	sharesP    int
}

// Run tunes the word-count topology from the initial parallelisms.
func (c CaladriusTuner) Run(initial map[string]int) (Result, error) {
	c = c.withDefaults()
	if c.SLOThroughputTPM <= 0 || c.RatePerMinute <= 0 {
		return Result{}, fmt.Errorf("dhalion: caladrius tuner needs positive rate and SLO")
	}
	current := cloneInts(initial)
	known := map[string]*knownModel{}
	res := Result{}
	for round := 0; round < c.MaxRounds; round++ {
		m, prov, top, start, end, err := c.deploy(current)
		if err != nil {
			return res, err
		}
		r := Round{Parallelisms: cloneInts(current), Measurement: m}
		sloMet := m.SinkThroughputTPM >= c.SLOThroughputTPM*0.98
		hasBp := m.BackpressureMsPerMin >= c.BackpressureThresholdMs
		if sloMet && !hasBp {
			r.Diagnosis = "healthy: SLO met without backpressure"
			res.Rounds = append(res.Rounds, r)
			res.Converged = true
			res.Reason = r.Diagnosis
			res.FinalParallelisms = cloneInts(current)
			return res, nil
		}
		if !hasBp {
			r.Diagnosis = "SLO missed without backpressure: source-limited"
			res.Rounds = append(res.Rounds, r)
			res.Reason = r.Diagnosis
			res.FinalParallelisms = cloneInts(current)
			return res, nil
		}
		// Calibrate what this deployment can teach us.
		models, err := core.CalibrateTopologyFromProvider(prov, top, start, end, core.CalibrationOptions{Warmup: c.StabiliseMinutes})
		if err != nil {
			return res, fmt.Errorf("dhalion: round %d calibrate: %w", round+1, err)
		}
		newlyPinned := ""
		for comp, cm := range models {
			k, ok := known[comp]
			if !ok {
				k = &knownModel{sp: math.Inf(1)}
				known[comp] = k
			}
			k.alpha = cm.Instance.Alpha
			if cm.CPUPsi > 0 {
				k.psi = cm.CPUPsi
			}
			if cm.Instance.SaturatedObservable() {
				if math.IsInf(k.sp, 1) {
					newlyPinned = comp
				}
				k.sp = cm.Instance.SP
			}
			if len(cm.InputShares) > 0 {
				k.shares, k.sharesP = cm.InputShares, cm.Parallelism
			}
		}
		// Plan the next round from everything known so far.
		composite := map[string]*core.ComponentModel{}
		for comp, k := range known {
			cm := &core.ComponentModel{
				Component:   comp,
				Parallelism: current[comp],
				Instance:    core.InstanceModel{Alpha: k.alpha, SP: k.sp},
				CPUPsi:      k.psi,
			}
			if k.sharesP == current[comp] {
				cm.InputShares = k.shares
			}
			composite[comp] = cm
		}
		tm, err := core.NewTopologyModel(top, composite)
		if err != nil {
			return res, err
		}
		plan, err := tm.SuggestParallelism(c.RatePerMinute, c.Headroom)
		if err != nil {
			return res, err
		}
		plan["spout"] = current["spout"] // spouts stay fixed, as in §V
		// Components with unknown SP cannot be sized yet; keep their
		// current parallelism so the next bottleneck reveals itself.
		for comp, k := range known {
			if math.IsInf(k.sp, 1) && comp != "spout" {
				if plan[comp] < current[comp] {
					plan[comp] = current[comp]
				}
			}
		}
		r.Diagnosis = fmt.Sprintf("model plan → splitter=%d counter=%d", plan["splitter"], plan["counter"])
		if newlyPinned != "" {
			r.Diagnosis = fmt.Sprintf("calibrated %s SP; %s", newlyPinned, r.Diagnosis)
		}
		res.Rounds = append(res.Rounds, r)
		current = plan
	}
	res.Reason = "round budget exhausted"
	res.FinalParallelisms = cloneInts(current)
	return res, nil
}

// deploy runs one word-count deployment and returns both the summary
// measurement and the raw metrics needed for calibration.
func (c CaladriusTuner) deploy(parallelisms map[string]int) (Measurement, metrics.Provider, *topology.Topology, time.Time, time.Time, error) {
	sim, err := heron.NewWordCount(heron.WordCountOptions{
		SpoutP:        parallelisms["spout"],
		SplitterP:     parallelisms["splitter"],
		CounterP:      parallelisms["counter"],
		RatePerMinute: c.RatePerMinute,
	})
	if err != nil {
		return Measurement{}, nil, nil, time.Time{}, time.Time{}, err
	}
	total := time.Duration(c.StabiliseMinutes+c.MeasureMinutes) * time.Minute
	if err := sim.Run(total); err != nil {
		return Measurement{}, nil, nil, time.Time{}, time.Time{}, err
	}
	prov, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
	if err != nil {
		return Measurement{}, nil, nil, time.Time{}, time.Time{}, err
	}
	start, end := sim.Start(), sim.Start().Add(total)
	m := Measurement{ComponentBackpressureMs: map[string]float64{}}
	for _, comp := range []string{"spout", "splitter", "counter"} {
		ws, err := prov.ComponentWindows("word-count", comp, start, end)
		if err != nil {
			return Measurement{}, nil, nil, time.Time{}, time.Time{}, err
		}
		ss, err := metrics.Summarise(ws, c.StabiliseMinutes)
		if err != nil {
			return Measurement{}, nil, nil, time.Time{}, time.Time{}, err
		}
		m.ComponentBackpressureMs[comp] = ss.BackpressureMs
		if comp == "counter" {
			m.SinkThroughputTPM = ss.Execute
		}
	}
	pts, err := prov.TopologyBackpressureMs("word-count", start.Add(time.Duration(c.StabiliseMinutes)*time.Minute), end)
	if err != nil {
		return Measurement{}, nil, nil, time.Time{}, time.Time{}, err
	}
	for _, p := range pts {
		m.BackpressureMsPerMin += p.V
	}
	if len(pts) > 0 {
		m.BackpressureMsPerMin /= float64(len(pts))
	}
	top, err := heron.WordCountTopology(parallelisms["spout"], parallelisms["splitter"], parallelisms["counter"])
	if err != nil {
		return Measurement{}, nil, nil, time.Time{}, time.Time{}, err
	}
	return m, prov, top, start, end, nil
}
