package core

import (
	"math"
	"sort"
)

// The audit hook. Like StageTimer for tracing, RunRecorder keeps core
// free of any audit/telemetry dependency: the API tier passes the
// prediction audit ledger (internal/audit) through PredictRecorded and
// core notifies it of every completed model evaluation, together with
// the calibration snapshot the run was computed from.

// ComponentCalibration is an immutable snapshot of one component's
// calibrated parameters (α, SP, ST, ψ) as carried in audit records. SP
// and ST are pointers because an unsaturatable calibration has no
// finite saturation point (and JSON cannot carry +Inf).
type ComponentCalibration struct {
	Component   string   `json:"component"`
	Parallelism int      `json:"parallelism"`
	Alpha       float64  `json:"alpha"`
	SPTPM       *float64 `json:"sp_tpm,omitempty"`
	STTPM       *float64 `json:"st_tpm,omitempty"`
	CPUPsi      float64  `json:"cpu_psi_cores_per_tpm,omitempty"`
}

// ModelRun is one completed model evaluation as delivered to a
// RunRecorder: the inputs, the prediction and the calibration snapshot
// behind it. Request-scoped identity (topology name, run kind, trace
// id) is the caller's to add — core does not know it.
type ModelRun struct {
	// Parallelism is the evaluated per-component parallelism overrides
	// (nil = the topology's current values).
	Parallelism map[string]int
	// SourceRate is the evaluated topology source rate t₀ (tuples/min).
	SourceRate float64
	// Prediction is the completed evaluation.
	Prediction TopologyPrediction
	// Calibration is the model's shared calibration snapshot.
	Calibration []ComponentCalibration
	// Degraded is true when the model behind the run was calibrated in
	// degraded mode (widened or sparse observe window).
	Degraded bool
	// Cost is the run's measured resource footprint (zero when the run
	// was not metered — see PredictMeasured).
	Cost RunCost
}

// RunRecorder receives completed model runs — the audit-ledger hook.
type RunRecorder interface {
	RecordRun(run ModelRun)
}

// CalibrationSnapshot returns the model's per-component calibration
// snapshot, ordered by component name. The slice is computed once and
// shared by every ModelRun emitted from this model — callers must not
// mutate it.
func (tm *TopologyModel) CalibrationSnapshot() []ComponentCalibration {
	tm.calSnapOnce.Do(func() {
		snap := make([]ComponentCalibration, 0, len(tm.models))
		for name, m := range tm.models {
			cc := ComponentCalibration{
				Component:   name,
				Parallelism: m.Parallelism,
				Alpha:       m.Instance.Alpha,
				CPUPsi:      m.CPUPsi,
			}
			if !math.IsInf(m.Instance.SP, 1) {
				sp, st := m.Instance.SP, m.Instance.ST()
				cc.SPTPM, cc.STTPM = &sp, &st
			}
			snap = append(snap, cc)
		}
		sort.Slice(snap, func(i, j int) bool { return snap[i].Component < snap[j].Component })
		tm.calSnap = snap
	})
	return tm.calSnap
}

// PredictRecorded is Predict plus a RunRecorder notified of the
// completed run (nil rec behaves exactly like Predict). Failed
// evaluations are not recorded — there is no prediction to audit.
func (tm *TopologyModel) PredictRecorded(rec RunRecorder, parallelisms map[string]int, sourceRate float64) (TopologyPrediction, error) {
	pred, _, err := tm.PredictMeasured(rec, nil, parallelisms, sourceRate)
	return pred, err
}

// CriticalPath returns the prediction's critical path: the path with
// the lowest saturation source rate (ties and unsaturatable topologies
// fall back to the first path). Zero value when the prediction holds
// no paths.
func (p TopologyPrediction) CriticalPath() PathPrediction {
	if len(p.Paths) == 0 {
		return PathPrediction{}
	}
	critical := p.Paths[0]
	for _, pp := range p.Paths[1:] {
		if pp.SaturationSource < critical.SaturationSource {
			critical = pp
		}
	}
	return critical
}
