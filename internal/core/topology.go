package core

import (
	"fmt"
	"math"
	"sync"

	"caladrius/internal/topology"
)

// Risk is the backpressure risk classification of Eq. 14.
type Risk string

// Risk levels.
const (
	RiskLow  Risk = "low"
	RiskHigh Risk = "high"
)

// ComponentPrediction is the modelled state of one component on a path
// under a proposed configuration.
type ComponentPrediction struct {
	Component   string  `json:"component"`
	Parallelism int     `json:"parallelism"`
	SourceRate  float64 `json:"source_rate_tpm"`
	InputRate   float64 `json:"input_rate_tpm"`
	OutputRate  float64 `json:"output_rate_tpm"`
	Saturated   bool    `json:"saturated"`
	// CPULoad is the predicted component CPU in cores; 0 when the
	// component has no CPU calibration.
	CPULoad float64 `json:"cpu_load_cores"`
}

// PathPrediction is the result of chaining component models along one
// spout→sink path (Eq. 12–14).
type PathPrediction struct {
	Path []string `json:"path"`
	// OutputRate is t_cp, the path's output throughput at the given
	// source rate (Eq. 12).
	OutputRate float64 `json:"output_rate_tpm"`
	// SinkThroughput is the processing (input) throughput of the
	// path's final component — the quantity the paper plots as
	// "topology output throughput" in Fig. 10, since sinks emit
	// nothing downstream.
	SinkThroughput float64 `json:"sink_throughput_tpm"`
	// SaturationSource is t′₀, the topology source rate at which this
	// path first saturates (Eq. 13); +Inf when nothing on the path has
	// a finite saturation point.
	SaturationSource float64 `json:"saturation_source_tpm"`
	// Bottleneck names the component that saturates first.
	Bottleneck string `json:"bottleneck"`
	// Risk classifies backpressure risk at the given source rate
	// (Eq. 14).
	Risk Risk `json:"backpressure_risk"`
	// Components holds per-component detail in path order.
	Components []ComponentPrediction `json:"components"`
}

// TopologyModel composes calibrated component models over a topology's
// paths.
type TopologyModel struct {
	topo   *topology.Topology
	models map[string]*ComponentModel
	// RiskMargin widens the high-risk band of Eq. 14: the risk is high
	// when t₀ ≥ (1 − RiskMargin)·t′₀. Default 0.1.
	RiskMargin float64
	// Degraded marks a low-confidence model: its calibration needed a
	// widened observe window or still ran on sparse windows (see
	// CalibrateTopologyFromProviderReport). Every audited run carries
	// the flag so degraded-era predictions can be discounted.
	Degraded bool

	// calSnap memoizes CalibrationSnapshot (see observe.go): the
	// snapshot is immutable and shared by every audit record emitted
	// from this model.
	calSnapOnce sync.Once
	calSnap     []ComponentCalibration
}

// NewTopologyModel validates that every component has a model and
// builds the composite.
func NewTopologyModel(topo *topology.Topology, models map[string]*ComponentModel) (*TopologyModel, error) {
	if topo == nil {
		return nil, fmt.Errorf("core: nil topology")
	}
	for _, name := range topo.ComponentNames() {
		m, ok := models[name]
		if !ok {
			return nil, fmt.Errorf("%w: component %q has no model", ErrNotCalibrated, name)
		}
		if err := m.Validate(); err != nil {
			return nil, err
		}
	}
	return &TopologyModel{topo: topo, models: models, RiskMargin: 0.1}, nil
}

// Component returns the model of one component.
func (tm *TopologyModel) Component(name string) (*ComponentModel, bool) {
	m, ok := tm.models[name]
	return m, ok
}

// Topology returns the modelled topology.
func (tm *TopologyModel) Topology() *topology.Topology { return tm.topo }

// parallelismOf resolves a component's parallelism under the proposed
// overrides.
func (tm *TopologyModel) parallelismOf(name string, overrides map[string]int) int {
	if p, ok := overrides[name]; ok {
		return p
	}
	return tm.topo.Component(name).Parallelism
}

// PredictPath chains component models along the given component path
// (Eq. 12), locates its saturation point by forward accumulation of
// the inverse chain (Eq. 13) and classifies backpressure risk
// (Eq. 14). parallelisms overrides component parallelism (nil = the
// topology's current values); sourceRate is the topology source
// throughput t₀ in tuples/minute.
func (tm *TopologyModel) PredictPath(path []string, parallelisms map[string]int, sourceRate float64) (PathPrediction, error) {
	if len(path) == 0 {
		return PathPrediction{}, fmt.Errorf("core: empty path")
	}
	if sourceRate < 0 {
		return PathPrediction{}, fmt.Errorf("core: negative source rate %g", sourceRate)
	}
	pred := PathPrediction{Path: append([]string(nil), path...), SaturationSource: math.Inf(1)}
	rate := sourceRate
	gain := 1.0 // product of upstream edge α: maps t₀ to this component's source rate
	for i, name := range path {
		m, ok := tm.models[name]
		if !ok {
			return PathPrediction{}, fmt.Errorf("%w: component %q has no model", ErrNotCalibrated, name)
		}
		p := tm.parallelismOf(name, parallelisms)
		if p < 1 {
			return PathPrediction{}, fmt.Errorf("core: component %q parallelism %d", name, p)
		}
		in := m.Input(p, rate)
		out := m.Output(p, rate)
		sat := m.SaturationSource(p)
		cp := ComponentPrediction{
			Component:   name,
			Parallelism: p,
			SourceRate:  rate,
			InputRate:   in,
			OutputRate:  out,
			Saturated:   rate >= sat,
		}
		if m.CPUPsi > 0 {
			cp.CPULoad = m.CPUPsi * in
		}
		pred.Components = append(pred.Components, cp)

		// Eq. 13 by forward accumulation: this component saturates when
		// t₀·gain ≥ sat, i.e. t₀ ≥ sat/gain.
		if gain > 0 && !math.IsInf(sat, 1) {
			if t0sat := sat / gain; t0sat < pred.SaturationSource {
				pred.SaturationSource = t0sat
				pred.Bottleneck = name
			}
		}
		// Follow the path edge with the stream-specific coefficient:
		// on fan-out components the aggregate α overestimates what one
		// branch receives (Eqs. 4–5).
		if i+1 < len(path) {
			edgeAlpha := tm.edgeAlpha(m, name, path[i+1])
			rate = edgeAlpha * in
			gain *= edgeAlpha
		} else {
			rate = out
		}
	}
	pred.OutputRate = rate
	pred.SinkThroughput = pred.Components[len(pred.Components)-1].InputRate
	pred.Risk = tm.classifyRisk(sourceRate, pred.SaturationSource)
	return pred, nil
}

// edgeAlpha is the I/O coefficient from component name towards its
// path successor: the per-stream coefficients of all streams on the
// edge when calibrated, otherwise the aggregate coefficient.
func (tm *TopologyModel) edgeAlpha(m *ComponentModel, name, next string) float64 {
	var keys []string
	for _, s := range tm.topo.Outbound(name) {
		if s.To == next {
			keys = append(keys, StreamAlphaKey(s.Name, s.To))
		}
	}
	return m.AlphaTowards(keys)
}

func (tm *TopologyModel) classifyRisk(t0, t0sat float64) Risk {
	if math.IsInf(t0sat, 1) {
		return RiskLow
	}
	margin := tm.RiskMargin
	if margin < 0 {
		margin = 0
	}
	if t0 >= (1-margin)*t0sat {
		return RiskHigh
	}
	return RiskLow
}

// TopologyPrediction aggregates path predictions for a whole topology
// under one proposed configuration.
type TopologyPrediction struct {
	// SourceRate is the evaluated topology source throughput t₀.
	SourceRate float64 `json:"source_rate_tpm"`
	// Paths holds one prediction per spout→sink path; when the
	// critical path is ambiguous all candidates are reported, as
	// §IV-B3 prescribes.
	Paths []PathPrediction `json:"paths"`
	// OutputRate is the output throughput of the critical path (the
	// path with the lowest saturation source; ties and unsaturatable
	// topologies fall back to the first path).
	OutputRate float64 `json:"output_rate_tpm"`
	// SinkThroughput is the critical path's sink processing
	// throughput — the paper's "topology output" metric.
	SinkThroughput float64 `json:"sink_throughput_tpm"`
	// SaturationSource is the topology saturation point t′₀: the
	// minimum over paths.
	SaturationSource float64 `json:"saturation_source_tpm"`
	// Bottleneck names the component limiting the topology.
	Bottleneck string `json:"bottleneck"`
	// Risk is the topology backpressure risk at SourceRate.
	Risk Risk `json:"backpressure_risk"`
	// TotalCPU sums predicted component CPU loads (cores) over all
	// CPU-calibrated components.
	TotalCPU float64 `json:"total_cpu_cores"`
}

// Predict evaluates the topology at the given source rate under
// optional parallelism overrides, modelling every spout→sink path.
//
// Multi-path topologies are evaluated in two passes, reflecting global
// backpressure: the first pass locates the topology saturation point
// t′₀ over all paths; the second evaluates every path at the effective
// source rate min(t₀, t′₀), because once any path's component
// saturates, the spouts are stopped and *all* paths throttle together.
// Risk is still classified against the requested t₀.
func (tm *TopologyModel) Predict(parallelisms map[string]int, sourceRate float64) (TopologyPrediction, error) {
	paths := tm.topo.Paths()
	if len(paths) == 0 {
		return TopologyPrediction{}, fmt.Errorf("core: topology %q has no paths", tm.topo.Name())
	}
	out := TopologyPrediction{SourceRate: sourceRate, SaturationSource: math.Inf(1)}
	for _, path := range paths {
		pp, err := tm.PredictPath(path, parallelisms, sourceRate)
		if err != nil {
			return TopologyPrediction{}, err
		}
		if pp.SaturationSource < out.SaturationSource {
			out.SaturationSource = pp.SaturationSource
			out.Bottleneck = pp.Bottleneck
		}
	}
	effective := sourceRate
	if out.SaturationSource < effective {
		effective = out.SaturationSource
	}
	seen := map[string]float64{}
	for _, path := range paths {
		pp, err := tm.PredictPath(path, parallelisms, effective)
		if err != nil {
			return TopologyPrediction{}, err
		}
		// Keep the risk/saturation bookkeeping of the requested rate.
		pp.Risk = tm.classifyRisk(sourceRate, pp.SaturationSource)
		out.Paths = append(out.Paths, pp)
		// CPU: sum each component once even if it appears on several
		// paths; a component's input rate is path-dependent only for
		// multi-input components, where the highest estimate is kept
		// (conservative).
		for _, cp := range pp.Components {
			if cp.CPULoad > seen[cp.Component] {
				seen[cp.Component] = cp.CPULoad
			}
		}
	}
	critical := out.Paths[0]
	for _, pp := range out.Paths[1:] {
		if pp.SaturationSource < critical.SaturationSource {
			critical = pp
		}
	}
	out.OutputRate = critical.OutputRate
	out.SinkThroughput = critical.SinkThroughput
	out.Risk = tm.classifyRisk(sourceRate, out.SaturationSource)
	for _, cpu := range seen {
		out.TotalCPU += cpu
	}
	return out, nil
}

// SuggestParallelism proposes the minimal per-component parallelisms
// that keep every component below saturation at the given topology
// source rate with the given headroom fraction (e.g. 0.2 keeps each
// component at ≤ 1/1.2 of its saturation input). This is the planning
// primitive that lets Caladrius replace Dhalion's multi-round scaling
// with a single dry-run iteration.
func (tm *TopologyModel) SuggestParallelism(sourceRate, headroom float64) (map[string]int, error) {
	if sourceRate < 0 {
		return nil, fmt.Errorf("core: negative source rate %g", sourceRate)
	}
	if headroom < 0 {
		return nil, fmt.Errorf("core: negative headroom %g", headroom)
	}
	// Component source rates: propagate sourceRate through the DAG in
	// topological order assuming the linear regime (the suggestion
	// keeps everything unsaturated, making the assumption
	// self-consistent).
	inRate := map[string]float64{}
	for _, spout := range tm.topo.Spouts() {
		inRate[spout] += sourceRate / float64(len(tm.topo.Spouts()))
	}
	result := map[string]int{}
	for _, name := range tm.topo.ComponentNames() {
		m, ok := tm.models[name]
		if !ok {
			return nil, fmt.Errorf("%w: component %q has no model", ErrNotCalibrated, name)
		}
		rate := inRate[name]
		p := 1
		if !math.IsInf(m.Instance.SP, 1) && m.Instance.SP > 0 {
			p = int(math.Ceil(rate * (1 + headroom) / m.Instance.SP))
			if p < 1 {
				p = 1
			}
		}
		result[name] = p
		outs := tm.topo.Outbound(name)
		for _, s := range outs {
			var streamAlpha float64
			if len(m.StreamAlphas) > 0 {
				streamAlpha = m.StreamAlphas[StreamAlphaKey(s.Name, s.To)]
			} else {
				// Without per-stream calibration, split the aggregate
				// α evenly across outbound streams.
				streamAlpha = m.Instance.Alpha / float64(len(outs))
			}
			inRate[s.To] += streamAlpha * rate
		}
	}
	return result, nil
}
