package core

import (
	"math"
	"testing"
	"time"

	"caladrius/internal/heron"
	"caladrius/internal/metrics"
)

// calibrateWordCount runs the simulator at the given parallelisms twice
// — once in the linear regime and once saturated — and calibrates every
// component, merging the two runs (§V-B: one data point in each
// interval suffices).
func calibrateWordCount(t *testing.T, splitterP, counterP int, linearRate, satRate float64) map[string]*ComponentModel {
	t.Helper()
	models := map[string]*ComponentModel{}
	for i, rate := range []float64{linearRate, satRate} {
		sim, err := heron.NewWordCount(heron.WordCountOptions{SplitterP: splitterP, CounterP: counterP, RatePerMinute: rate})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(12 * time.Minute); err != nil {
			t.Fatal(err)
		}
		prov, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		parallelisms := map[string]int{"spout": 8, "splitter": splitterP, "counter": counterP}
		for comp, p := range parallelisms {
			m, err := CalibrateFromProvider(prov, "word-count", comp, p, sim.Start(), sim.Start().Add(12*time.Minute), CalibrationOptions{Warmup: 4})
			if err != nil {
				t.Fatalf("calibrate %s run %d: %v", comp, i, err)
			}
			if prev, ok := models[comp]; ok {
				merged, err := MergeCalibrations(prev, m)
				if err != nil {
					t.Fatal(err)
				}
				models[comp] = merged
			} else {
				models[comp] = m
			}
		}
	}
	return models
}

// measureSaturatedThroughput runs a fresh simulation at a deeply
// saturating rate and returns the steady-state component input and
// output rates in tuples/minute.
func measureSaturated(t *testing.T, splitterP, counterP int, rate float64, component string) (in, out float64) {
	t.Helper()
	sim, err := heron.NewWordCount(heron.WordCountOptions{SplitterP: splitterP, CounterP: counterP, RatePerMinute: rate})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(12 * time.Minute); err != nil {
		t.Fatal(err)
	}
	prov, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := prov.ComponentWindows("word-count", component, sim.Start(), sim.Start().Add(12*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	ss, err := metrics.Summarise(ws, 4)
	if err != nil {
		t.Fatal(err)
	}
	return ss.Execute, ss.Emit
}

func relErr(got, want float64) float64 { return math.Abs(got-want) / want }

// TestPaperValidationComponentScaling reproduces §V-C: calibrate the
// splitter at parallelism 3, predict the saturated throughput at
// parallelisms 2 and 4, and validate against deployments. The paper
// reports ST prediction errors of 2.9% (p=2) and 2.5% (p=4); we demand
// < 5%.
func TestPaperValidationComponentScaling(t *testing.T) {
	// Calibrate at p=3 (counter kept wide so the splitter is the
	// bottleneck in the saturated run).
	models := calibrateWordCount(t, 3, 8, 20e6, 45e6)
	splitter := models["splitter"]
	if math.IsInf(splitter.Instance.SP, 1) {
		t.Fatal("splitter SP not calibrated")
	}
	if relErr(splitter.Instance.Alpha, heron.SplitterAlpha) > 0.01 {
		t.Errorf("alpha = %g", splitter.Instance.Alpha)
	}

	for _, p := range []int{2, 4} {
		predictedST := splitter.MaxOutput(p)
		predictedSP := splitter.SaturationSource(p)
		// Deploy at the new parallelism, deeply saturated.
		in, out := measureSaturated(t, p, 8, predictedSP*1.5, "splitter")
		if e := relErr(out, predictedST); e > 0.05 {
			t.Errorf("p=%d ST: predicted %.4g measured %.4g (err %.1f%%)", p, predictedST, out, 100*e)
		}
		if e := relErr(in, predictedSP); e > 0.05 {
			t.Errorf("p=%d SP: predicted %.4g measured %.4g (err %.1f%%)", p, predictedSP, in, 100*e)
		}
	}
}

// TestPaperValidationCriticalPath reproduces §V-D: chain the calibrated
// component models along the critical path and compare the predicted
// topology output throughput against a deployment. The paper reports a
// 2.8% error.
func TestPaperValidationCriticalPath(t *testing.T) {
	models := calibrateWordCount(t, 3, 8, 20e6, 45e6)
	top, err := heron.WordCountTopology(8, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := NewTopologyModel(top, models)
	if err != nil {
		t.Fatal(err)
	}

	// Saturated regime with the Fig. 1 parallelisms (splitter 2,
	// counter 4): splitter binds at 21.6 M/min source.
	pred, err := tm.Predict(nil, 40e6)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Bottleneck != "splitter" {
		t.Errorf("bottleneck = %q", pred.Bottleneck)
	}
	// Measure the deployed topology's sink throughput at the same rate.
	_, counterOut := measureSaturated(t, 2, 4, 40e6, "counter")
	counterIn, _ := measureSaturated(t, 2, 4, 40e6, "counter")
	_ = counterOut
	if e := relErr(counterIn, pred.Paths[0].Components[2].InputRate); e > 0.05 {
		t.Errorf("topology output: predicted %.4g measured %.4g (err %.1f%%)",
			pred.Paths[0].Components[2].InputRate, counterIn, 100*e)
	}

	// Linear regime prediction also matches.
	predLin, err := tm.Predict(nil, 10e6)
	if err != nil {
		t.Fatal(err)
	}
	inLin, _ := measureSaturated(t, 2, 4, 10e6, "counter")
	if e := relErr(inLin, predLin.Paths[0].Components[2].InputRate); e > 0.05 {
		t.Errorf("linear topology output: predicted %.4g measured %.4g (err %.1f%%)",
			predLin.Paths[0].Components[2].InputRate, inLin, 100*e)
	}
}

// TestPaperValidationCPULoad reproduces §V-E: fit ψ at parallelism 3,
// predict CPU load at parallelisms 2 and 4, validate against
// deployments. The paper reports errors of 4.8% (p=2) and 3.0% (p=4);
// we demand < 6%.
func TestPaperValidationCPULoad(t *testing.T) {
	models := calibrateWordCount(t, 3, 8, 20e6, 45e6)
	splitter := models["splitter"]
	if splitter.CPUPsi <= 0 {
		t.Fatal("psi not calibrated")
	}
	for _, p := range []int{2, 4} {
		rate := 0.8 * splitter.SaturationSource(p) // below saturation
		predicted, err := splitter.CPU(p, rate)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := heron.NewWordCount(heron.WordCountOptions{SplitterP: p, CounterP: 8, RatePerMinute: rate})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(10 * time.Minute); err != nil {
			t.Fatal(err)
		}
		prov, _ := metrics.NewTSDBProvider(sim.DB(), time.Minute)
		ws, err := prov.ComponentWindows("word-count", "splitter", sim.Start(), sim.Start().Add(10*time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		ss, err := metrics.Summarise(ws, 3)
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(ss.CPULoad, predicted); e > 0.06 {
			t.Errorf("p=%d CPU: predicted %.3f measured %.3f cores (err %.1f%%)", p, predicted, ss.CPULoad, 100*e)
		}
	}
}

// TestBackpressureRiskMatchesSimulator checks Eq. 14 against observed
// backpressure: rates the model calls low-risk produce no backpressure
// in the simulator, and high-risk rates produce bimodal backpressure.
func TestBackpressureRiskMatchesSimulator(t *testing.T) {
	models := calibrateWordCount(t, 3, 8, 20e6, 45e6)
	top, err := heron.WordCountTopology(8, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := NewTopologyModel(top, models)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		rate float64
		want Risk
	}{
		{20e6, RiskLow},
		{40e6, RiskHigh},
	} {
		pred, err := tm.Predict(nil, tc.rate)
		if err != nil {
			t.Fatal(err)
		}
		if pred.Risk != tc.want {
			t.Errorf("rate %.3g: risk = %v, want %v (t'0 %.3g)", tc.rate, pred.Risk, tc.want, pred.SaturationSource)
		}
		sim, err := heron.NewWordCount(heron.WordCountOptions{SplitterP: 3, CounterP: 8, RatePerMinute: tc.rate})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(10 * time.Minute); err != nil {
			t.Fatal(err)
		}
		prov, _ := metrics.NewTSDBProvider(sim.DB(), time.Minute)
		pts, err := prov.TopologyBackpressureMs("word-count", sim.Start().Add(4*time.Minute), sim.Start().Add(10*time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		var avg float64
		for _, p := range pts {
			avg += p.V
		}
		avg /= float64(len(pts))
		if tc.want == RiskLow && avg > 1000 {
			t.Errorf("rate %.3g: predicted low risk but bp = %.0f ms", tc.rate, avg)
		}
		if tc.want == RiskHigh && avg < 50_000 {
			t.Errorf("rate %.3g: predicted high risk but bp = %.0f ms", tc.rate, avg)
		}
	}
}
