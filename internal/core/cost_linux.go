//go:build linux

package core

import (
	"syscall"
	"unsafe"
)

// clockThreadCPUTimeID is CLOCK_THREAD_CPUTIME_ID: CPU time consumed
// by the calling thread only. Valid between LockOSThread/UnlockOSThread,
// which CostSampler guarantees.
const clockThreadCPUTimeID = 3

// threadCPUNanos returns the calling OS thread's consumed CPU time.
func threadCPUNanos() int64 {
	var ts syscall.Timespec
	if _, _, errno := syscall.Syscall(syscall.SYS_CLOCK_GETTIME,
		clockThreadCPUTimeID, uintptr(unsafe.Pointer(&ts)), 0); errno != 0 {
		return 0
	}
	return ts.Nano()
}
