package core

import (
	"math"
	"runtime"
	"testing"
	"time"

	"caladrius/internal/topology"
)

// costTestModel is a minimal calibrated two-component model.
func costTestModel(t *testing.T) *TopologyModel {
	t.Helper()
	b := topology.NewBuilder("t").AddSpout("s", 1)
	b.AddBolt("b", 1).Connect("s", "b", topology.ShuffleGrouping)
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	models := map[string]*ComponentModel{
		"s": {Component: "s", Parallelism: 1, Instance: InstanceModel{Alpha: 1, SP: math.Inf(1)}},
		"b": {Component: "b", Parallelism: 1, Instance: InstanceModel{Alpha: 1, SP: math.Inf(1)}},
	}
	tm, err := NewTopologyModel(top, models)
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestCostSamplerMeasuresWork(t *testing.T) {
	ticks := uint64(100)
	s := &CostSampler{Ticks: func() uint64 { return ticks }}
	m := s.Begin()
	// Burn a little CPU and heap so every meter moves.
	buf := make([]byte, 1<<20)
	deadline := time.Now().Add(5 * time.Millisecond)
	x := 0
	for time.Now().Before(deadline) {
		for i := range buf {
			x += int(buf[i])
		}
	}
	ticks = 140
	c := s.End(m)
	_ = x
	if c.WallNanos < int64(5*time.Millisecond) {
		t.Errorf("wall = %v, want ≥ 5ms", c.Wall())
	}
	if runtime.GOOS == "linux" && c.CPUNanos <= 0 {
		t.Errorf("cpu = %v, want > 0 on linux", c.CPU())
	}
	if c.CPUNanos > 10*c.WallNanos {
		t.Errorf("cpu %v wildly exceeds wall %v", c.CPU(), c.Wall())
	}
	if c.AllocBytes < 1<<20 {
		t.Errorf("alloc bytes = %d, want ≥ 1MiB", c.AllocBytes)
	}
	if c.SimTicks != 40 {
		t.Errorf("sim ticks = %d, want 40", c.SimTicks)
	}
}

func TestCostSamplerNilSafe(t *testing.T) {
	var s *CostSampler
	c := s.End(s.Begin())
	if c != (RunCost{}) {
		t.Errorf("nil sampler cost = %+v, want zero", c)
	}
}

func TestPredictMeasuredRecordsCost(t *testing.T) {
	tm := costTestModel(t)
	var got ModelRun
	rec := recorderFunc(func(r ModelRun) { got = r })
	_, cost, err := tm.PredictMeasured(rec, &CostSampler{}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cost.WallNanos <= 0 {
		t.Errorf("cost wall = %d, want > 0", cost.WallNanos)
	}
	if got.Cost != cost {
		t.Errorf("recorded cost %+v != returned %+v", got.Cost, cost)
	}
}

type recorderFunc func(ModelRun)

func (f recorderFunc) RecordRun(r ModelRun) { f(r) }
