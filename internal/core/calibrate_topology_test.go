package core

import (
	"math"
	"testing"
	"time"

	"caladrius/internal/heron"
	"caladrius/internal/metrics"
)

// TestCalibrateTopologyAttributesBottleneck is the regression test for
// bottleneck attribution: when the counter is the bottleneck, the
// spouts' burst-resume cycles push the splitter's queues over the high
// watermark too, so the splitter reports backpressure without being
// saturated. Naive per-component calibration then assigns the splitter
// a spuriously low saturation point; topology-aware calibration must
// not.
func TestCalibrateTopologyAttributesBottleneck(t *testing.T) {
	// Counter-bottleneck run: splitter p=6 (capacity 64.8 M) is wide,
	// counter p=3 (capacity 205 M words ≈ 26.9 M sentences) binds at
	// 35 M sentences/min offered.
	sim, err := heron.NewWordCount(heron.WordCountOptions{SplitterP: 6, CounterP: 3, RatePerMinute: 35e6})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(12 * time.Minute); err != nil {
		t.Fatal(err)
	}
	prov, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	window := sim.Start().Add(12 * time.Minute)
	opts := CalibrationOptions{Warmup: 4}

	// Naive calibration is fooled: the splitter looks saturated.
	naive, err := CalibrateFromProvider(prov, "word-count", "splitter", 6, sim.Start(), window, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Instance.SaturatedObservable() {
		t.Fatalf("precondition failed: naive calibration should see spurious splitter backpressure")
	}
	if naive.Instance.SP > 0.8*heron.SplitterServiceRate*60 {
		t.Fatalf("precondition failed: naive SP %.3g not spuriously low", naive.Instance.SP)
	}

	// Topology-aware calibration attributes the backpressure to the
	// counter and leaves the splitter's SP unknown.
	top, err := heron.WordCountTopology(8, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	models, err := CalibrateTopologyFromProvider(prov, top, sim.Start(), window, opts)
	if err != nil {
		t.Fatal(err)
	}
	if models["splitter"].Instance.SaturatedObservable() {
		t.Errorf("splitter SP = %.3g, want +Inf (not the bottleneck)", models["splitter"].Instance.SP)
	}
	counter := models["counter"]
	if !counter.Instance.SaturatedObservable() {
		t.Fatal("counter SP not calibrated despite being the bottleneck")
	}
	if e := math.Abs(counter.Instance.SP-heron.CounterServiceRate*60) / (heron.CounterServiceRate * 60); e > 0.05 {
		t.Errorf("counter SP = %.4g, want ≈%.4g (err %.1f%%)", counter.Instance.SP, heron.CounterServiceRate*60.0, 100*e)
	}
	// α and ψ are still calibrated for the splitter.
	if math.Abs(models["splitter"].Instance.Alpha-heron.SplitterAlpha) > 0.01 {
		t.Errorf("splitter alpha = %.4f", models["splitter"].Instance.Alpha)
	}
	if models["splitter"].CPUPsi <= 0 {
		t.Errorf("splitter psi = %g", models["splitter"].CPUPsi)
	}
}

// TestCalibrateTopologySplitterBottleneck is the mirror case: the
// splitter binds, the counter inherits nothing (it never backpressures
// behind a slow splitter), and the splitter's SP is calibrated.
func TestCalibrateTopologySplitterBottleneck(t *testing.T) {
	sim, err := heron.NewWordCount(heron.WordCountOptions{SplitterP: 2, CounterP: 6, RatePerMinute: 40e6})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(12 * time.Minute); err != nil {
		t.Fatal(err)
	}
	prov, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	top, err := heron.WordCountTopology(8, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	models, err := CalibrateTopologyFromProvider(prov, top, sim.Start(), sim.Start().Add(12*time.Minute), CalibrationOptions{Warmup: 4})
	if err != nil {
		t.Fatal(err)
	}
	splitter := models["splitter"]
	if !splitter.Instance.SaturatedObservable() {
		t.Fatal("splitter SP not calibrated despite being the bottleneck")
	}
	if e := math.Abs(splitter.Instance.SP-heron.SplitterServiceRate*60) / (heron.SplitterServiceRate * 60); e > 0.05 {
		t.Errorf("splitter SP = %.4g (err %.1f%%)", splitter.Instance.SP, 100*e)
	}
	if models["counter"].Instance.SaturatedObservable() {
		t.Errorf("counter SP = %.3g, want +Inf", models["counter"].Instance.SP)
	}
}

// TestCalibrateTopologyInputShares checks that per-instance input
// shares survive the topology-aware path (biased fields grouping).
func TestCalibrateTopologyInputShares(t *testing.T) {
	keys := heron.ExplicitKeys{Probs: map[string]float64{"hot": 3, "cold": 1}}
	want := keys.Weights(2)
	sim, err := heron.NewWordCount(heron.WordCountOptions{CounterP: 2, CounterKeys: keys, RatePerMinute: 2e6})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(8 * time.Minute); err != nil {
		t.Fatal(err)
	}
	prov, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	top, err := heron.WordCountTopology(8, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	models, err := CalibrateTopologyFromProvider(prov, top, sim.Start(), sim.Start().Add(8*time.Minute), CalibrationOptions{Warmup: 3})
	if err != nil {
		t.Fatal(err)
	}
	shares := models["counter"].InputShares
	if len(shares) != 2 {
		t.Fatalf("shares = %v", shares)
	}
	for i := range shares {
		if math.Abs(shares[i]-want[i]) > 0.01 {
			t.Errorf("share[%d] = %.3f, want %.3f", i, shares[i], want[i])
		}
	}
}
