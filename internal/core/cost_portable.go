//go:build !linux

package core

// threadCPUNanos has no portable implementation; platforms without a
// per-thread CPU clock report zero and RunCost.CPUNanos stays 0 (wall
// time and allocation deltas still meter).
func threadCPUNanos() int64 { return 0 }
