package core

import (
	"math"
	"testing"
	"time"

	"caladrius/internal/heron"
	"caladrius/internal/metrics"
	"caladrius/internal/topology"
	"caladrius/internal/workload"
)

// diamondTopology builds a two-branch topology: the spout replicates
// tuples onto a heavy branch (α=2, slow) and a light branch (α=0.5,
// fast), both feeding a join sink. The heavy branch is the critical
// path. §IV-B3 says multiple sub-critical path candidates should be
// modelled simultaneously; this validates that end to end.
func diamondTopology(t *testing.T, heavyP, lightP int) *topology.Topology {
	t.Helper()
	top, err := topology.NewBuilder("diamond").
		AddSpout("src", 4).
		AddBolt("heavy", heavyP).
		AddBolt("light", lightP).
		AddBolt("join", 4).
		ConnectStream("to-heavy", "src", "heavy", topology.ShuffleGrouping).
		ConnectStream("to-light", "src", "light", topology.ShuffleGrouping).
		Connect("heavy", "join", topology.ShuffleGrouping).
		Connect("light", "join", topology.ShuffleGrouping).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func diamondProfiles() map[string]heron.ComponentProfile {
	return map[string]heron.ComponentProfile{
		"src": {
			ServiceRate:   2e6,
			BytesPerTuple: 200,
			CPUPerTuple:   1e-7,
			Emits: map[string]heron.EmitProfile{
				"to-heavy": {Alpha: 1},
				"to-light": {Alpha: 1},
			},
		},
		"heavy": {
			ServiceRate:   50_000, // SP = 3 M/min per instance
			BytesPerTuple: 200,
			CPUPerTuple:   1e-5,
			Emits:         map[string]heron.EmitProfile{"default": {Alpha: 2}},
		},
		"light": {
			ServiceRate:   200_000, // SP = 12 M/min per instance
			BytesPerTuple: 200,
			CPUPerTuple:   2e-6,
			Emits:         map[string]heron.EmitProfile{"default": {Alpha: 0.5}},
		},
		"join": {
			ServiceRate:   2e6,
			BytesPerTuple: 100,
			CPUPerTuple:   2e-7,
		},
	}
}

func runDiamond(t *testing.T, heavyP, lightP int, ratePerMin float64, minutes int) (*heron.Simulation, *metrics.TSDBProvider) {
	t.Helper()
	sim, err := heron.New(heron.Config{
		Topology:   diamondTopology(t, heavyP, lightP),
		Profiles:   diamondProfiles(),
		SpoutRates: map[string]workload.RateSchedule{"src": workload.ConstantRate(ratePerMin / 60)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(time.Duration(minutes) * time.Minute); err != nil {
		t.Fatal(err)
	}
	prov, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	return sim, prov
}

func componentSteady(t *testing.T, prov *metrics.TSDBProvider, sim *heron.Simulation, comp string, warmup, minutes int) metrics.SteadyState {
	t.Helper()
	ws, err := prov.ComponentWindows("diamond", comp, sim.Start(), sim.Start().Add(time.Duration(minutes)*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	ss, err := metrics.Summarise(ws, warmup)
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

// TestDiamondCriticalPathIdentification calibrates the diamond from
// simulator runs and checks the model identifies the heavy branch as
// the critical path, matching where the simulator actually saturates.
func TestDiamondCriticalPathIdentification(t *testing.T) {
	// Calibration: a linear run and a heavy-saturated run.
	models := map[string]*ComponentModel{}
	top := diamondTopology(t, 2, 2)
	for _, rate := range []float64{3e6, 9e6} { // heavy p=2 saturates at 6 M/min
		sim, prov := runDiamond(t, 2, 2, rate, 12)
		run, err := CalibrateTopologyFromProvider(prov, top, sim.Start(), sim.Start().Add(12*time.Minute), CalibrationOptions{Warmup: 4})
		if err != nil {
			t.Fatal(err)
		}
		for comp, m := range run {
			if prev, ok := models[comp]; ok {
				if m, err = MergeCalibrations(prev, m); err != nil {
					t.Fatal(err)
				}
			}
			models[comp] = m
		}
	}
	// Light-bottleneck profiling run: widen the heavy branch (p=12 →
	// 36 M capacity) so the light branch (p=2 → 24 M) saturates first,
	// pinning its SP. Only the light model transfers (same
	// parallelism); heavy was calibrated at a different p in this run.
	{
		sim, prov := runDiamond(t, 12, 2, 30e6, 12)
		wide := diamondTopology(t, 12, 2)
		run, err := CalibrateTopologyFromProvider(prov, wide, sim.Start(), sim.Start().Add(12*time.Minute), CalibrationOptions{Warmup: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !run["light"].Instance.SaturatedObservable() {
			t.Fatal("light did not saturate in its profiling run")
		}
		merged, err := MergeCalibrations(models["light"], run["light"])
		if err != nil {
			t.Fatal(err)
		}
		models["light"] = merged
	}

	// The spout replicates onto two streams, so its summed α is 2.
	if math.Abs(models["src"].Instance.Alpha-2) > 0.02 {
		t.Errorf("src alpha = %.3f, want 2 (two replicated streams)", models["src"].Instance.Alpha)
	}
	if math.Abs(models["heavy"].Instance.Alpha-2) > 0.02 {
		t.Errorf("heavy alpha = %.3f", models["heavy"].Instance.Alpha)
	}
	if math.Abs(models["light"].Instance.Alpha-0.5) > 0.02 {
		t.Errorf("light alpha = %.3f", models["light"].Instance.Alpha)
	}

	tm, err := NewTopologyModel(top, models)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := tm.Predict(nil, 9e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred.Paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(pred.Paths))
	}
	if pred.Bottleneck != "heavy" {
		t.Errorf("bottleneck = %q, want heavy", pred.Bottleneck)
	}
	if e := math.Abs(pred.SaturationSource-6e6) / 6e6; e > 0.05 {
		t.Errorf("t'0 = %.4g, want ≈6e6 (err %.1f%%)", pred.SaturationSource, 100*e)
	}
	if pred.Risk != RiskHigh {
		t.Errorf("risk at 9M = %v", pred.Risk)
	}

	// Scaling the heavy branch moves the critical path to the light
	// branch (light p=2 saturates at 24 M).
	scaled, err := tm.Predict(map[string]int{"heavy": 10}, 9e6)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Bottleneck != "light" {
		t.Errorf("scaled bottleneck = %q, want light (t'0 %.3g)", scaled.Bottleneck, scaled.SaturationSource)
	}
}

// TestDiamondGlobalBackpressureThrottlesBothBranches validates the
// two-pass Predict: above the heavy branch's saturation, the simulator
// throttles the light branch too (spouts are shared), and the model's
// effective-rate evaluation matches.
func TestDiamondGlobalBackpressureThrottlesBothBranches(t *testing.T) {
	models := map[string]*ComponentModel{}
	top := diamondTopology(t, 2, 2)
	for _, rate := range []float64{3e6, 9e6} {
		sim, prov := runDiamond(t, 2, 2, rate, 12)
		run, err := CalibrateTopologyFromProvider(prov, top, sim.Start(), sim.Start().Add(12*time.Minute), CalibrationOptions{Warmup: 4})
		if err != nil {
			t.Fatal(err)
		}
		for comp, m := range run {
			if prev, ok := models[comp]; ok {
				if m, err = MergeCalibrations(prev, m); err != nil {
					t.Fatal(err)
				}
			}
			models[comp] = m
		}
	}
	tm, err := NewTopologyModel(top, models)
	if err != nil {
		t.Fatal(err)
	}
	// Deploy above saturation and compare per-branch throughputs.
	const rate = 10e6
	sim, prov := runDiamond(t, 2, 2, rate, 12)
	pred, err := tm.Predict(nil, rate)
	if err != nil {
		t.Fatal(err)
	}
	byFirstBolt := map[string]PathPrediction{}
	for _, pp := range pred.Paths {
		byFirstBolt[pp.Path[1]] = pp
	}
	for _, branch := range []string{"heavy", "light"} {
		ss := componentSteady(t, prov, sim, branch, 4, 12)
		predIn := byFirstBolt[branch].Components[1].InputRate
		if e := math.Abs(predIn-ss.Execute) / ss.Execute; e > 0.05 {
			t.Errorf("%s input: predicted %.4g measured %.4g (err %.1f%%)", branch, predIn, ss.Execute, 100*e)
		}
	}
	// The light branch is throttled well below the offered rate even
	// though it has spare capacity — the whole point of global BP.
	light := componentSteady(t, prov, sim, "light", 4, 12)
	if light.Execute > 0.75*rate {
		t.Errorf("light branch executes %.4g at offered %.4g; should be throttled to ≈6e6", light.Execute, rate)
	}
	// Join input = heavy output + light output.
	join := componentSteady(t, prov, sim, "join", 4, 12)
	predJoin := byFirstBolt["heavy"].Components[2].InputRate + byFirstBolt["light"].Components[2].InputRate
	if e := math.Abs(predJoin-join.Execute) / join.Execute; e > 0.05 {
		t.Errorf("join input: predicted %.4g measured %.4g (err %.1f%%)", predJoin, join.Execute, 100*e)
	}
}
