package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"caladrius/internal/topology"
)

// randomChainModel builds a random linear topology with calibrated
// models, for property testing the composite predictions.
func randomChainModel(r *rand.Rand) (*TopologyModel, error) {
	n := 2 + r.Intn(4) // bolts
	b := topology.NewBuilder("chain").AddSpout("s", 1+r.Intn(4))
	prev := "s"
	models := map[string]*ComponentModel{
		"s": {Component: "s", Parallelism: 1, Instance: InstanceModel{Alpha: 1, SP: math.Inf(1)}},
	}
	models["s"].Parallelism = 1
	for i := 0; i < n; i++ {
		name := "b" + string(rune('0'+i))
		p := 1 + r.Intn(5)
		b.AddBolt(name, p).Connect(prev, name, topology.ShuffleGrouping)
		sp := math.Inf(1)
		if r.Intn(2) == 0 {
			sp = 1e5 + r.Float64()*1e7
		}
		models[name] = &ComponentModel{
			Component:   name,
			Parallelism: p,
			Instance:    InstanceModel{Alpha: 0.1 + r.Float64()*10, SP: sp},
			CPUPsi:      r.Float64() * 1e-6,
		}
		prev = name
	}
	top, err := b.Build()
	if err != nil {
		return nil, err
	}
	return NewTopologyModel(top, models)
}

func TestQuickPredictMonotoneInRate(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tm, err := randomChainModel(r)
		if err != nil {
			return false
		}
		prev := -1.0
		for _, rate := range []float64{0, 1e5, 1e6, 5e6, 2e7, 1e8} {
			pred, err := tm.Predict(nil, rate)
			if err != nil {
				return false
			}
			if pred.SinkThroughput < prev-1e-9 {
				return false // sink throughput must be non-decreasing in t0
			}
			prev = pred.SinkThroughput
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickRiskFlipsExactlyAtSaturation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tm, err := randomChainModel(r)
		if err != nil {
			return false
		}
		probe, err := tm.Predict(nil, 1)
		if err != nil {
			return false
		}
		t0sat := probe.SaturationSource
		if math.IsInf(t0sat, 1) {
			// Unsaturatable chain: always low risk.
			pred, err := tm.Predict(nil, 1e12)
			return err == nil && pred.Risk == RiskLow
		}
		below, err1 := tm.Predict(nil, t0sat*0.8) // outside the 10% margin
		above, err2 := tm.Predict(nil, t0sat*1.1)
		if err1 != nil || err2 != nil {
			return false
		}
		return below.Risk == RiskLow && above.Risk == RiskHigh
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickSinkThroughputClampsAtSaturation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tm, err := randomChainModel(r)
		if err != nil {
			return false
		}
		probe, err := tm.Predict(nil, 1)
		if err != nil {
			return false
		}
		t0sat := probe.SaturationSource
		if math.IsInf(t0sat, 1) {
			return true
		}
		atSat, err1 := tm.Predict(nil, t0sat)
		deep, err2 := tm.Predict(nil, t0sat*100)
		if err1 != nil || err2 != nil {
			return false
		}
		// Above saturation the sink throughput stays at its clamp.
		return math.Abs(deep.SinkThroughput-atSat.SinkThroughput) <= 1e-6*(1+atSat.SinkThroughput)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickCPUMonotoneInParallelismAtFixedRate(t *testing.T) {
	// More parallelism never lowers modelled throughput, so CPU (ψ ×
	// input) is non-decreasing in p.
	c := &ComponentModel{Component: "c", Parallelism: 2, Instance: InstanceModel{Alpha: 2, SP: 1e6}, CPUPsi: 1e-7}
	f := func(rateRaw uint32, p1Raw, p2Raw uint8) bool {
		rate := float64(rateRaw%100) * 1e5
		p1, p2 := 1+int(p1Raw%16), 1+int(p2Raw%16)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		cpu1, err1 := c.CPU(p1, rate)
		cpu2, err2 := c.CPU(p2, rate)
		return err1 == nil && err2 == nil && cpu1 <= cpu2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickInverseOutputRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := &ComponentModel{
			Component:   "c",
			Parallelism: 1 + r.Intn(6),
			Instance:    InstanceModel{Alpha: 0.1 + r.Float64()*10, SP: 1e5 + r.Float64()*1e7},
		}
		p := 1 + r.Intn(6)
		// Linear region round trip.
		rate := r.Float64() * c.SaturationSource(p) * 0.99
		out := c.Output(p, rate)
		back := c.InverseOutput(p, out)
		return math.Abs(back-rate) <= 1e-9*(1+rate)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
