// Package core implements Caladrius' topology-performance models — the
// paper's primary contribution (§IV-B). It provides:
//
//   - the single-instance throughput model of Fig. 3 / Equations 1–5:
//     output rate min(α·t, ST) with saturation point SP and saturation
//     throughput ST = α·SP;
//   - the component model of Equations 6–11: summing instances under
//     shuffle and fields groupings, scaling a fitted curve to a new
//     parallelism (Eq. 9), and propagating observed per-instance bias
//     under a traffic change (Eq. 11);
//   - the topology model of Equations 12–14: chaining component models
//     along critical paths, inverting the chain to locate the topology
//     saturation point, and classifying backpressure risk;
//   - the CPU-load model of §V-E: ψ = CPU / input-rate per component,
//     composed with the throughput model to predict CPU under a new
//     parallelism or source rate;
//   - calibration of all of the above from observed metrics windows;
//   - a dry-run planner that evaluates proposed parallelism changes
//     without deployment (Heron's `update --dry-run`).
//
// Throughput units are tuples per minute throughout, matching the
// paper's figures.
package core

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotCalibrated is returned when a model is used before it has the
// observations it needs.
var ErrNotCalibrated = errors.New("core: model not calibrated")

// InstanceModel is the single-instance throughput model of Fig. 3.
type InstanceModel struct {
	// Alpha is the I/O coefficient: output tuples per input tuple
	// (Eq. 1). For multi-output instances this is the summed
	// coefficient over output streams (Eq. 4–5 reduce to a sum for
	// rate purposes).
	Alpha float64
	// SP is the saturation point: the input rate (tuples/minute) above
	// which the instance saturates. math.Inf(1) when saturation was
	// never observed.
	SP float64
}

// ST returns the saturation throughput ST = α·SP (Fig. 3).
func (m InstanceModel) ST() float64 {
	if math.IsInf(m.SP, 1) {
		return math.Inf(1)
	}
	return m.Alpha * m.SP
}

// Input returns the instance's input (processed) rate for a given
// source rate: the identity below SP, clamped at SP above it.
func (m InstanceModel) Input(sourceRate float64) float64 {
	return math.Min(sourceRate, m.SP)
}

// Output implements Eq. 2: T(t) = min(α·t, ST).
func (m InstanceModel) Output(sourceRate float64) float64 {
	return math.Min(m.Alpha*sourceRate, m.ST())
}

// OutputMulti implements Eq. 3 for m input streams: each stream's
// contribution is clamped independently.
func (m InstanceModel) OutputMulti(sourceRates []float64) float64 {
	var out float64
	for _, t := range sourceRates {
		out += m.Output(t)
	}
	if st := m.ST(); out > st {
		out = st
	}
	return out
}

// Inverse returns the input rate that yields the given output rate in
// the linear regime (T⁻¹). Output rates at or above ST map to SP.
func (m InstanceModel) Inverse(outputRate float64) float64 {
	if m.Alpha <= 0 {
		return math.Inf(1)
	}
	if st := m.ST(); !math.IsInf(st, 1) && outputRate >= st {
		return m.SP
	}
	return outputRate / m.Alpha
}

// Saturated reports whether the given source rate drives the instance
// into backpressure.
func (m InstanceModel) Saturated(sourceRate float64) bool {
	return sourceRate >= m.SP
}

// SaturatedObservable reports whether the calibration data included a
// saturated observation, i.e. whether SP is finite. Models without it
// are only valid in the linear regime.
func (m InstanceModel) SaturatedObservable() bool {
	return !math.IsInf(m.SP, 1)
}

// ComponentModel models one component: the per-instance model plus the
// parallelism and per-instance input shares observed at calibration
// time.
type ComponentModel struct {
	// Component is the component name.
	Component string
	// Parallelism is the parallelism at which the model was calibrated
	// (the paper's p for Eq. 9 scaling).
	Parallelism int
	// Instance is the per-instance throughput model.
	Instance InstanceModel
	// InputShares is the observed fraction of component input arriving
	// at each instance (length Parallelism, sums to 1). Uniform shares
	// indicate shuffle grouping or an unbiased fields-grouped dataset;
	// skew records fields-grouping bias (§IV-B2b). Nil means uniform.
	InputShares []float64
	// CPUPsi is the CPU-load slope ψ: cores per (tuple/minute) of
	// component input rate (§V-E). Zero when CPU was not calibrated.
	CPUPsi float64
	// StreamAlphas splits the aggregate I/O coefficient over the
	// component's outbound streams, keyed "streamName->destination".
	// The values sum to Instance.Alpha. Nil when per-stream emit
	// metrics were unavailable at calibration; fan-out predictions then
	// fall back to the aggregate coefficient (overestimating branch
	// rates — linear chains are unaffected).
	StreamAlphas map[string]float64
}

// StreamAlphaKey builds the StreamAlphas map key for a stream.
func StreamAlphaKey(streamName, destination string) string {
	return streamName + "->" + destination
}

// AlphaTowards returns the summed I/O coefficient of the given
// outbound stream keys (e.g. every stream on a path edge), falling
// back to the aggregate coefficient when per-stream data is absent.
func (c *ComponentModel) AlphaTowards(keys []string) float64 {
	if len(c.StreamAlphas) == 0 {
		return c.Instance.Alpha
	}
	var a float64
	for _, k := range keys {
		a += c.StreamAlphas[k]
	}
	return a
}

func (c *ComponentModel) shares(p int) []float64 {
	if p == c.Parallelism && len(c.InputShares) == p {
		return c.InputShares
	}
	// Under a different parallelism the fields-grouping routing cannot
	// be predicted (hash modulo changes); per the paper we assume the
	// load-balanced case (Eq. 9) unless a custom model is plugged in.
	s := make([]float64, p)
	for i := range s {
		s[i] = 1 / float64(p)
	}
	return s
}

// Input is the component input throughput at parallelism p for a given
// component source rate (Eqs. 6–7, adjusted for Heron's backpressure
// semantics).
//
// Equation 11 as written clamps each instance independently, which
// implies a partially-saturated regime where hot instances sit at
// their ST while cold instances keep growing with β. Under Heron's
// *global* backpressure — the mechanism §IV-B1 itself describes — that
// regime is unreachable: the moment the hottest instance saturates,
// the spouts are stopped and every instance's inflow throttles
// together, so the whole component's input clamps at the rate where
// the hottest instance hits its SP (SaturationSource). The simulator
// confirms this (see TestBiasedFieldsGroupingModel): a 75/25-biased
// component clamps at SP/0.75, not at the clamped sum. Bias therefore
// reduces effective capacity, which is the practical content of
// Eq. 11.
func (c *ComponentModel) Input(p int, sourceRate float64) float64 {
	if p < 1 {
		return 0
	}
	return math.Min(sourceRate, c.SaturationSource(p))
}

// Output is the component output rate at parallelism p (Eqs. 7/9/11
// under global backpressure): α times the clamped input. At the
// calibrated parallelism the observed input shares determine the
// clamp; at any other parallelism the shares are uniform (Eq. 9
// scaling — fields-grouping routing under a different modulo cannot be
// predicted, §IV-B2b).
func (c *ComponentModel) Output(p int, sourceRate float64) float64 {
	return c.Instance.Alpha * c.Input(p, sourceRate)
}

// SaturationSource returns the component source rate (tuples/minute)
// at which the first instance saturates, given parallelism p. With
// uniform shares this is p·SP; with biased shares the hottest instance
// saturates first.
func (c *ComponentModel) SaturationSource(p int) float64 {
	if math.IsInf(c.Instance.SP, 1) {
		return math.Inf(1)
	}
	maxShare := 0.0
	for _, w := range c.shares(p) {
		if w > maxShare {
			maxShare = w
		}
	}
	if maxShare == 0 {
		return math.Inf(1)
	}
	return c.Instance.SP / maxShare
}

// MaxOutput returns the component's saturation throughput at
// parallelism p: the output at the hottest instance's saturation. With
// uniform shares this is p·ST; biased shares reduce effective capacity
// because global backpressure throttles the whole component when the
// hot instance saturates.
func (c *ComponentModel) MaxOutput(p int) float64 {
	if math.IsInf(c.Instance.SP, 1) {
		return math.Inf(1)
	}
	return c.Instance.Alpha * c.SaturationSource(p)
}

// InverseOutput returns the component source rate required to produce
// the given component output rate at parallelism p (the T⁻¹ of
// Eq. 13). Outputs at or above the component maximum map to the
// saturation source rate.
func (c *ComponentModel) InverseOutput(p int, outputRate float64) float64 {
	if c.Instance.Alpha <= 0 {
		return math.Inf(1)
	}
	maxOut := c.MaxOutput(p)
	if !math.IsInf(maxOut, 1) && outputRate >= maxOut {
		return c.SaturationSource(p)
	}
	// In the linear regime biased shares still sum to the same total:
	// Σ α·w_i·t = α·t, so the inverse is α⁻¹ regardless of shares.
	return outputRate / c.Instance.Alpha
}

// CPU predicts the component CPU load in cores at parallelism p and
// component source rate, per §V-E: the throughput model yields the
// input rate, which ψ converts to cores.
func (c *ComponentModel) CPU(p int, sourceRate float64) (float64, error) {
	if c.CPUPsi == 0 {
		return 0, fmt.Errorf("%w: component %q has no CPU calibration", ErrNotCalibrated, c.Component)
	}
	return c.CPUPsi * c.Input(p, sourceRate), nil
}

// Validate checks internal consistency.
func (c *ComponentModel) Validate() error {
	if c.Component == "" {
		return errors.New("core: component model without name")
	}
	if c.Parallelism < 1 {
		return fmt.Errorf("core: component %q parallelism %d", c.Component, c.Parallelism)
	}
	if c.Instance.Alpha < 0 {
		return fmt.Errorf("core: component %q negative alpha %g", c.Component, c.Instance.Alpha)
	}
	if c.Instance.SP <= 0 {
		return fmt.Errorf("core: component %q non-positive SP %g", c.Component, c.Instance.SP)
	}
	if len(c.StreamAlphas) > 0 {
		var sum float64
		for k, a := range c.StreamAlphas {
			if a < 0 {
				return fmt.Errorf("core: component %q negative stream alpha %g on %s", c.Component, a, k)
			}
			sum += a
		}
		if math.Abs(sum-c.Instance.Alpha) > 1e-6*(1+c.Instance.Alpha) {
			return fmt.Errorf("core: component %q stream alphas sum to %g, aggregate %g", c.Component, sum, c.Instance.Alpha)
		}
	}
	if len(c.InputShares) > 0 {
		if len(c.InputShares) != c.Parallelism {
			return fmt.Errorf("core: component %q has %d shares for parallelism %d", c.Component, len(c.InputShares), c.Parallelism)
		}
		var sum float64
		for _, w := range c.InputShares {
			if w < 0 {
				return fmt.Errorf("core: component %q negative share %g", c.Component, w)
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("core: component %q shares sum to %g", c.Component, sum)
		}
	}
	return nil
}
