package core

import (
	"runtime"
	"runtime/metrics"
	"time"
)

// Model-run resource metering. The usage accountant (internal/usage)
// charges every predict/plan/calibrate run to a (tenant, topology)
// principal; RunCost is what it charges: the wall time, CPU thread
// time, heap allocation and simulator ticks the run consumed. Like
// RunRecorder, the sampler keeps core free of any usage dependency —
// the API tier owns attribution, core only measures.

// RunCost is the measured resource footprint of one model run.
type RunCost struct {
	// WallNanos is elapsed wall-clock time.
	WallNanos int64 `json:"wall_ns"`
	// CPUNanos is CPU time consumed by the OS thread the run was pinned
	// to (CLOCK_THREAD_CPUTIME_ID on linux; zero where unsupported).
	CPUNanos int64 `json:"cpu_ns"`
	// AllocBytes is the process-wide heap allocation delta over the run
	// (runtime/metrics /gc/heap/allocs:bytes — cheap, unlike
	// ReadMemStats, but attributes concurrent runs' allocations too; an
	// accounting approximation, not an isolation boundary).
	AllocBytes uint64 `json:"alloc_bytes"`
	// SimTicks is the simulator-tick delta over the run, when the
	// sampler has a tick source.
	SimTicks uint64 `json:"sim_ticks"`
}

// Wall and CPU return the components as durations.
func (c RunCost) Wall() time.Duration { return time.Duration(c.WallNanos) }
func (c RunCost) CPU() time.Duration  { return time.Duration(c.CPUNanos) }

// CostSampler measures RunCosts. The zero value works; Ticks
// optionally supplies a monotonic simulator-tick total (the heron sim's
// caladrius_sim_ticks_total) so tick deltas ride along. A nil sampler
// is valid everywhere and measures nothing.
type CostSampler struct {
	Ticks func() uint64
}

// CostMark is an in-progress measurement returned by Begin.
type CostMark struct {
	start  time.Time
	cpu    int64
	allocs uint64
	ticks  uint64
	active bool
}

// Begin starts a measurement, pinning the calling goroutine to its OS
// thread so the thread CPU clock covers exactly this run. Every Begin
// must be paired with End on the same goroutine.
func (s *CostSampler) Begin() CostMark {
	if s == nil {
		return CostMark{}
	}
	runtime.LockOSThread()
	m := CostMark{
		start:  time.Now(),
		cpu:    threadCPUNanos(),
		allocs: heapAllocBytes(),
		active: true,
	}
	if s.Ticks != nil {
		m.ticks = s.Ticks()
	}
	return m
}

// End completes a measurement started by Begin and unpins the
// goroutine. Ending an inactive mark (nil sampler) reports zero cost.
func (s *CostSampler) End(m CostMark) RunCost {
	if s == nil || !m.active {
		return RunCost{}
	}
	var c RunCost
	if cpu := threadCPUNanos(); cpu > m.cpu {
		c.CPUNanos = cpu - m.cpu
	}
	runtime.UnlockOSThread()
	c.WallNanos = time.Since(m.start).Nanoseconds()
	if a := heapAllocBytes(); a > m.allocs {
		c.AllocBytes = a - m.allocs
	}
	if s.Ticks != nil {
		if t := s.Ticks(); t > m.ticks {
			c.SimTicks = t - m.ticks
		}
	}
	return c
}

// heapAllocBytes reads the cumulative heap-allocation counter. It is
// the ReadMemStats-free path: no stop-the-world, safe on every request.
func heapAllocBytes() uint64 {
	sample := [1]metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(sample[:])
	if sample[0].Value.Kind() == metrics.KindUint64 {
		return sample[0].Value.Uint64()
	}
	return 0
}

// PredictMeasured is PredictRecorded plus resource metering: the run
// is evaluated under a sampler mark and its RunCost is returned and
// stamped into the audit record. A nil sampler reports zero cost; a
// nil recorder skips auditing. Failed evaluations still report their
// cost — the caller paid for them — but are not recorded.
func (tm *TopologyModel) PredictMeasured(rec RunRecorder, s *CostSampler, parallelisms map[string]int, sourceRate float64) (TopologyPrediction, RunCost, error) {
	m := s.Begin()
	pred, err := tm.Predict(parallelisms, sourceRate)
	cost := s.End(m)
	if err == nil && rec != nil {
		rec.RecordRun(ModelRun{
			Parallelism: parallelisms,
			SourceRate:  sourceRate,
			Prediction:  pred,
			Calibration: tm.CalibrationSnapshot(),
			Degraded:    tm.Degraded,
			Cost:        cost,
		})
	}
	return pred, cost, err
}
