package core

import (
	"math"
	"testing"
	"time"

	"caladrius/internal/heron"
	"caladrius/internal/metrics"
)

// TestBiasedFieldsGroupingModel validates Equations 10–11 against the
// simulator: with a biased key set, the component's observed
// per-instance input shares are frozen, traffic is scaled by β, and
// the model predicts the partially-saturated regime where the hot
// instance clamps at its ST while cold instances keep scaling.
func TestBiasedFieldsGroupingModel(t *testing.T) {
	keys := heron.ExplicitKeys{Probs: map[string]float64{"hot": 3, "cold": 1}}
	w := keys.Weights(2) // one instance gets 75%, the other 25%
	hotShare := math.Max(w[0], w[1])

	// Calibrate the counter at p=2 in the linear regime (shares) and a
	// saturated run (SP). With 75/25 bias, the hot counter instance
	// (SP 68.4 M) saturates when counter source exceeds 68.4/0.75 ≈
	// 91.2 M words ≈ 11.9 M sentences — well before the splitters.
	models := map[string]*ComponentModel{}
	for _, sentences := range []float64{6e6, 18e6} {
		sim, err := heron.NewWordCount(heron.WordCountOptions{
			SplitterP: 4, CounterP: 2, CounterKeys: keys, RatePerMinute: sentences,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Run(12 * time.Minute); err != nil {
			t.Fatal(err)
		}
		prov, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		top, err := heron.WordCountTopology(8, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		run, err := CalibrateTopologyFromProvider(prov, top, sim.Start(), sim.Start().Add(12*time.Minute), CalibrationOptions{Warmup: 4})
		if err != nil {
			t.Fatal(err)
		}
		for comp, m := range run {
			if prev, ok := models[comp]; ok {
				if m, err = MergeCalibrations(prev, m); err != nil {
					t.Fatal(err)
				}
			}
			models[comp] = m
		}
	}
	counter := models["counter"]
	if len(counter.InputShares) != 2 {
		t.Fatalf("shares not calibrated: %v", counter.InputShares)
	}
	gotHot := math.Max(counter.InputShares[0], counter.InputShares[1])
	if math.Abs(gotHot-hotShare) > 0.01 {
		t.Fatalf("hot share = %.3f, want %.3f", gotHot, hotShare)
	}
	if !counter.Instance.SaturatedObservable() {
		t.Fatal("counter SP not calibrated")
	}

	// The biased saturation source is earlier than the uniform one.
	biasedSat := counter.SaturationSource(2)
	uniformSat := 2 * counter.Instance.SP
	if biasedSat >= uniformSat*0.8 {
		t.Errorf("biased saturation %.3g should be well below uniform %.3g", biasedSat, uniformSat)
	}

	// Validate the partially-saturated prediction (Eq. 11): pick a
	// counter source rate between hot-instance saturation and cold
	// saturation, predict, and deploy.
	sentences := 15e6 // counter source ≈ 114.5 M: hot saturated, cold linear
	counterSource := sentences * heron.SplitterAlpha
	predicted := counter.Input(2, counterSource)
	sim, err := heron.NewWordCount(heron.WordCountOptions{
		SplitterP: 4, CounterP: 2, CounterKeys: keys, RatePerMinute: sentences,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(12 * time.Minute); err != nil {
		t.Fatal(err)
	}
	prov, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := prov.ComponentWindows("word-count", "counter", sim.Start(), sim.Start().Add(12*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	ss, err := metrics.Summarise(ws, 4)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(predicted-ss.Execute) / ss.Execute; e > 0.05 {
		t.Errorf("partially-saturated input: predicted %.4g measured %.4g (err %.1f%%)", predicted, ss.Execute, 100*e)
	}
	// The prediction must be meaningfully below the naive uniform
	// estimate (which would claim the full rate flows).
	if counterSource < counter.MaxOutput(2) && predicted >= counterSource*0.99 {
		t.Errorf("bias model predicts %.4g, indistinguishable from uniform %.4g", predicted, counterSource)
	}
}
