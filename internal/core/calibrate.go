package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"caladrius/internal/linalg"
	"caladrius/internal/metrics"
	"caladrius/internal/topology"
)

// StageTimer receives begin/end hooks for named stages of a model run
// (metric fetches, per-component calibrations). The API tier passes a
// tracing span here; the interface keeps core free of any telemetry
// dependency. StartStage returns the function that ends the stage.
type StageTimer interface {
	StartStage(name string) func()
}

// CalibrationOptions tunes model calibration from metrics windows.
type CalibrationOptions struct {
	// Warmup drops the first N windows (topology stabilisation; the
	// paper lets experiments reach steady state before measuring).
	Warmup int
	// SaturatedBpMs is the per-window backpressure time above which a
	// window counts as saturated. With a single bottleneck the metric
	// is bimodal (§IV-B1: ≈0 or ≈60 000), but when two saturated
	// components alternate as the active constraint each one's
	// per-minute share can drop towards half, so the default is a low
	// 10 000 ms — far above the 0 mode, comfortably below any
	// saturated regime.
	SaturatedBpMs float64
	// Window is the metrics rollup interval; default one minute. It
	// converts per-window counts into tuples/minute rates.
	Window time.Duration
	// Stages, when set, is notified of each calibration stage so the
	// caller can time them (tracing, metrics).
	Stages StageTimer
	// MinWindows is the fewest post-warmup windows every component
	// must contribute before a calibration counts as well-observed.
	// When a metrics gap leaves fewer, CalibrateTopologyFromProviderReport
	// widens the observe window backwards (doubling the lookback, up
	// to MaxWidenFactor) and flags the result degraded. Default 3.
	MinWindows int
	// MaxWidenFactor caps the widened lookback at this multiple of the
	// original observe span. Default 4.
	MaxWidenFactor int
}

// startStage begins a named stage, tolerating a nil timer.
func (o CalibrationOptions) startStage(name string) func() {
	if o.Stages == nil {
		return func() {}
	}
	return o.Stages.StartStage(name)
}

func (o CalibrationOptions) withDefaults() CalibrationOptions {
	if o.SaturatedBpMs == 0 {
		o.SaturatedBpMs = 10_000
	}
	if o.Window == 0 {
		o.Window = time.Minute
	}
	if o.MinWindows == 0 {
		o.MinWindows = 3
	}
	if o.MaxWidenFactor < 1 {
		o.MaxWidenFactor = 4
	}
	return o
}

// perMinute converts a per-window count to tuples/minute.
func perMinute(count float64, window time.Duration) float64 {
	return count * float64(time.Minute) / float64(window)
}

// CalibrateComponent fits a ComponentModel from observed component
// windows (summed over instances) and, optionally, per-instance
// windows (index-aligned slices) used to estimate fields-grouping input
// bias.
//
// Requirements, mirroring §V-B ("we need at least two data points: one
// in the non-saturation interval and one in the saturation interval"):
// α and ψ are estimated from all windows; SP needs at least one
// saturated window, otherwise it is left at +Inf and the model is only
// valid in the linear regime.
func CalibrateComponent(name string, parallelism int, comp []metrics.Window, inst [][]metrics.Window, opts CalibrationOptions) (*ComponentModel, error) {
	o := opts.withDefaults()
	return calibrateMasked(name, parallelism, comp, inst, opts, func(w metrics.Window) bool {
		return w.BackpressureMs >= o.SaturatedBpMs
	})
}

// calibrateMasked is CalibrateComponent with an explicit predicate
// deciding which windows count as saturation observations. Topology-
// aware calibration uses it to discard backpressure that a component
// merely inherited from a downstream bottleneck.
func calibrateMasked(name string, parallelism int, comp []metrics.Window, inst [][]metrics.Window, opts CalibrationOptions, saturated func(metrics.Window) bool) (*ComponentModel, error) {
	opts = opts.withDefaults()
	if parallelism < 1 {
		return nil, fmt.Errorf("core: calibrate %q: parallelism %d", name, parallelism)
	}
	if opts.Warmup >= len(comp) {
		return nil, fmt.Errorf("%w: component %q has %d windows, warmup %d", ErrNotCalibrated, name, len(comp), opts.Warmup)
	}
	ws := comp[opts.Warmup:]

	// Index per-instance execute counts by window time so saturated
	// windows can locate the hottest instance — the one actually pinned
	// at its SP. Under input bias the component total divided by p
	// underestimates SP.
	instExecAt := map[time.Time][]float64{}
	if len(inst) == parallelism {
		for _, iw := range inst {
			for _, w := range iw {
				instExecAt[w.T] = append(instExecAt[w.T], w.Execute)
			}
		}
	}

	var sumExec, sumEmit float64
	var satExec []float64
	var cpuX, cpuY []float64
	for _, w := range ws {
		sumExec += w.Execute
		sumEmit += w.Emit
		if saturated(w) {
			if per, ok := instExecAt[w.T]; ok && len(per) == parallelism {
				hottest := 0.0
				for _, v := range per {
					if v > hottest {
						hottest = v
					}
				}
				satExec = append(satExec, perMinute(hottest, opts.Window))
			} else {
				// No per-instance data: assume the uniform case, where
				// every instance is pinned at SP.
				satExec = append(satExec, perMinute(w.Execute, opts.Window)/float64(parallelism))
			}
		}
		if w.Execute > 0 && w.CPULoad > 0 {
			cpuX = append(cpuX, perMinute(w.Execute, opts.Window))
			cpuY = append(cpuY, w.CPULoad)
		}
	}
	if sumExec <= 0 {
		return nil, fmt.Errorf("%w: component %q processed nothing", ErrNotCalibrated, name)
	}
	alpha := sumEmit / sumExec

	sp := math.Inf(1)
	if len(satExec) > 0 {
		// In a saturated window the hottest instance's input rate is
		// pinned at its SP.
		sp = linalg.Mean(satExec)
	}

	var psi float64
	if len(cpuX) >= 2 {
		slope, err := linalg.LinearFitThroughOrigin(cpuX, cpuY)
		if err == nil {
			psi = slope
		}
	}

	m := &ComponentModel{
		Component:   name,
		Parallelism: parallelism,
		Instance:    InstanceModel{Alpha: alpha, SP: sp},
		CPUPsi:      psi,
	}

	if len(inst) > 0 {
		if len(inst) != parallelism {
			return nil, fmt.Errorf("core: calibrate %q: %d instance series for parallelism %d", name, len(inst), parallelism)
		}
		shares := make([]float64, parallelism)
		var total float64
		for i, iw := range inst {
			if opts.Warmup < len(iw) {
				for _, w := range iw[opts.Warmup:] {
					// Arrivals measure offered load per instance even
					// when the instance saturates; fall back to
					// Execute for writers that do not record arrivals.
					v := w.Arrival
					if v == 0 {
						v = w.Execute
					}
					shares[i] += v
				}
			}
			total += shares[i]
		}
		if total > 0 {
			for i := range shares {
				shares[i] /= total
			}
			m.InputShares = shares
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// CalibrateFromProvider calibrates one component by querying a metrics
// provider over [start, end), including per-instance input shares.
func CalibrateFromProvider(p metrics.Provider, topologyName, component string, parallelism int, start, end time.Time, opts CalibrationOptions) (*ComponentModel, error) {
	comp, err := p.ComponentWindows(topologyName, component, start, end)
	if err != nil {
		return nil, fmt.Errorf("core: calibrate %q: %w", component, err)
	}
	inst := make([][]metrics.Window, parallelism)
	for i := 0; i < parallelism; i++ {
		iw, err := p.InstanceWindows(topologyName, component, i, start, end)
		if err != nil {
			// Per-instance series are optional; fall back to uniform.
			inst = nil
			break
		}
		inst[i] = iw
	}
	return CalibrateComponent(component, parallelism, comp, inst, opts)
}

// CalibrateTopologyFromProvider calibrates every component of a
// topology over [start, end), attributing backpressure to the right
// component: a window counts as a saturation observation for component
// C only when no component downstream of C was also in backpressure in
// that window. Backpressure propagates upstream in Heron — when a
// downstream bolt saturates, the spouts' burst-resume cycles can push
// upstream queues over the high watermark too, so an upstream
// component's own backpressure metric is only trustworthy when its
// descendants are quiet.
//
// Metric gaps are tolerated by widening: see
// CalibrateTopologyFromProviderReport, of which this is the
// report-discarding form.
func CalibrateTopologyFromProvider(p metrics.Provider, topo *topology.Topology, start, end time.Time, opts CalibrationOptions) (map[string]*ComponentModel, error) {
	models, _, err := CalibrateTopologyFromProviderReport(p, topo, start, end, opts)
	return models, err
}

// CalibrationReport describes how much a calibration had to degrade to
// produce a model. A degraded calibration is still usable — the audit
// ledger carries the flag so its predictions can be discounted.
type CalibrationReport struct {
	// Degraded is true when the observe window had to be widened, or
	// when components stayed below MinWindows even after widening.
	Degraded bool
	// Widened is how far the observe-window start was pulled back from
	// the requested one (0 when the original window sufficed).
	Widened time.Duration
	// Sparse lists components still below MinWindows post-warmup
	// windows after widening, sorted by component name.
	Sparse []string
}

// CalibrateTopologyFromProviderReport is CalibrateTopologyFromProvider
// plus gap tolerance: when any component contributes fewer than
// MinWindows post-warmup windows over [start, end) — a metrics gap, a
// short history — the observe window's start is pulled back (doubling
// the lookback each attempt, capped at MaxWidenFactor times the
// original span) until every component is well-observed or the cap is
// hit. Any widening, or remaining sparseness, flags the calibration
// degraded in the returned report.
func CalibrateTopologyFromProviderReport(p metrics.Provider, topo *topology.Topology, start, end time.Time, opts CalibrationOptions) (map[string]*ComponentModel, CalibrationReport, error) {
	o := opts.withDefaults()
	span := end.Sub(start)
	var rep CalibrationReport
	cur := start
	for {
		models, sparse, err := calibrateTopologySpan(p, topo, cur, end, opts)
		rep.Widened = start.Sub(cur)
		rep.Degraded = rep.Widened > 0
		if err == nil && len(sparse) == 0 {
			return models, rep, nil
		}
		if err != nil && !errors.Is(err, ErrNotCalibrated) && !errors.Is(err, metrics.ErrNoData) {
			// Not a data-scarcity problem (provider down, bad inputs):
			// widening cannot help.
			return nil, rep, err
		}
		next := end.Add(-2 * end.Sub(cur))
		if span <= 0 || end.Sub(next) > time.Duration(o.MaxWidenFactor)*span {
			// Widening cap reached: surface what we have, flagged.
			if err != nil {
				return nil, rep, err
			}
			rep.Degraded = true
			rep.Sparse = sparse
			return models, rep, nil
		}
		cur = next
	}
}

// calibrateTopologySpan runs one calibration attempt over [start, end)
// and reports which components stayed below MinWindows post-warmup
// windows.
func calibrateTopologySpan(p metrics.Provider, topo *topology.Topology, start, end time.Time, opts CalibrationOptions) (map[string]*ComponentModel, []string, error) {
	o := opts.withDefaults()
	endFetch := o.startStage("fetch-windows")
	windows := map[string][]metrics.Window{}
	var sparse []string
	for _, c := range topo.Components() {
		ws, err := p.ComponentWindows(topo.Name(), c.Name, start, end)
		if err != nil {
			endFetch()
			return nil, nil, fmt.Errorf("core: calibrate %q: %w", c.Name, err)
		}
		windows[c.Name] = ws
		if len(ws)-o.Warmup < o.MinWindows {
			sparse = append(sparse, c.Name)
		}
	}
	sort.Strings(sparse)
	endFetch()
	// Per-window backpressure flags by component, keyed on window time.
	bpAt := map[string]map[time.Time]bool{}
	for name, ws := range windows {
		flags := make(map[time.Time]bool, len(ws))
		for _, w := range ws {
			flags[w.T] = w.BackpressureMs >= o.SaturatedBpMs
		}
		bpAt[name] = flags
	}
	models := map[string]*ComponentModel{}
	for _, c := range topo.Components() {
		endStage := o.startStage("calibrate:" + c.Name)
		descendants := topo.Descendants(c.Name)
		saturated := func(w metrics.Window) bool {
			if w.BackpressureMs < o.SaturatedBpMs {
				return false
			}
			for _, d := range descendants {
				if bpAt[d][w.T] {
					return false
				}
			}
			return true
		}
		inst := make([][]metrics.Window, c.Parallelism)
		for i := 0; i < c.Parallelism; i++ {
			iw, err := p.InstanceWindows(topo.Name(), c.Name, i, start, end)
			if err != nil {
				inst = nil
				break
			}
			inst[i] = iw
		}
		m, err := calibrateMasked(c.Name, c.Parallelism, windows[c.Name], inst, opts, saturated)
		if err != nil {
			endStage()
			return nil, nil, err
		}
		// Per-stream I/O coefficients (Eqs. 4–5): split the aggregate α
		// in proportion to observed per-stream emit totals, when the
		// metrics source records them.
		if totals, err := p.StreamEmitTotals(topo.Name(), c.Name, start, end); err == nil && len(totals) > 0 {
			var sum float64
			for _, v := range totals {
				sum += v
			}
			if sum > 0 {
				m.StreamAlphas = make(map[string]float64, len(totals))
				for key, v := range totals {
					m.StreamAlphas[key] = m.Instance.Alpha * v / sum
				}
			}
		}
		if err := m.Validate(); err != nil {
			endStage()
			return nil, nil, err
		}
		models[c.Name] = m
		endStage()
	}
	return models, sparse, nil
}

// MergeCalibrations combines models of the same component calibrated
// from different runs (e.g. one unsaturated run for α/ψ and one
// saturated run for SP), preferring finite saturation points and
// non-zero CPU slopes. Both models must be calibrated at the same
// parallelism.
func MergeCalibrations(a, b *ComponentModel) (*ComponentModel, error) {
	if a.Component != b.Component {
		return nil, fmt.Errorf("core: merging models of %q and %q", a.Component, b.Component)
	}
	if a.Parallelism != b.Parallelism {
		return nil, fmt.Errorf("core: merging %q calibrated at parallelism %d and %d", a.Component, a.Parallelism, b.Parallelism)
	}
	out := *a
	// α: average the two estimates (both regimes estimate it).
	out.Instance.Alpha = (a.Instance.Alpha + b.Instance.Alpha) / 2
	if math.IsInf(out.Instance.SP, 1) {
		out.Instance.SP = b.Instance.SP
	} else if !math.IsInf(b.Instance.SP, 1) {
		out.Instance.SP = (a.Instance.SP + b.Instance.SP) / 2
	}
	if out.CPUPsi == 0 {
		out.CPUPsi = b.CPUPsi
	}
	if len(out.InputShares) == 0 {
		out.InputShares = b.InputShares
	}
	// Per-stream α: keep a's split if present, else b's, rescaled so it
	// still sums to the merged aggregate α.
	src := a.StreamAlphas
	srcAggregate := a.Instance.Alpha
	if len(src) == 0 {
		src, srcAggregate = b.StreamAlphas, b.Instance.Alpha
	}
	if len(src) > 0 && srcAggregate > 0 {
		out.StreamAlphas = make(map[string]float64, len(src))
		for k, v := range src {
			out.StreamAlphas[k] = v * out.Instance.Alpha / srcAggregate
		}
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return &out, nil
}
