package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"caladrius/internal/metrics"
	"caladrius/internal/topology"
)

func almost(a, b, tol float64) bool {
	if math.IsInf(a, 1) && math.IsInf(b, 1) {
		return true
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(b))
}

func TestInstanceModelEquations(t *testing.T) {
	m := InstanceModel{Alpha: 7.6, SP: 11e6}
	if got := m.ST(); got != 7.6*11e6 {
		t.Errorf("ST = %g", got)
	}
	// Eq. 2 linear region.
	if got := m.Output(5e6); got != 7.6*5e6 {
		t.Errorf("linear output = %g", got)
	}
	// Eq. 2 saturated region.
	if got := m.Output(20e6); got != m.ST() {
		t.Errorf("saturated output = %g", got)
	}
	if got := m.Input(20e6); got != 11e6 {
		t.Errorf("saturated input = %g", got)
	}
	if got := m.Input(5e6); got != 5e6 {
		t.Errorf("linear input = %g", got)
	}
	if !m.Saturated(11e6) || m.Saturated(10.9e6) {
		t.Error("saturation predicate wrong")
	}
}

func TestInstanceModelMultiInput(t *testing.T) {
	// Eq. 3: each stream clamped independently, total clamped at ST.
	m := InstanceModel{Alpha: 2, SP: 100}
	if got := m.OutputMulti([]float64{30, 40}); got != 140 {
		t.Errorf("multi linear = %g", got)
	}
	if got := m.OutputMulti([]float64{90, 150}); got != 200 { // 180 + clamp(300→200) = 380 → clamp 200
		t.Errorf("multi saturated = %g", got)
	}
}

func TestInstanceModelInverse(t *testing.T) {
	m := InstanceModel{Alpha: 4, SP: 100}
	if got := m.Inverse(200); got != 50 {
		t.Errorf("inverse linear = %g", got)
	}
	if got := m.Inverse(400); got != 100 { // exactly ST → SP
		t.Errorf("inverse at ST = %g", got)
	}
	if got := m.Inverse(1000); got != 100 {
		t.Errorf("inverse above ST = %g", got)
	}
	// Round trip in the linear region.
	f := func(rate float64) bool {
		rate = math.Abs(math.Mod(rate, 99))
		return almost(m.Inverse(m.Output(rate)), rate, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Unsaturable instance.
	inf := InstanceModel{Alpha: 2, SP: math.Inf(1)}
	if got := inf.Output(1e12); got != 2e12 {
		t.Errorf("unsaturable output = %g", got)
	}
	if !math.IsInf(inf.ST(), 1) {
		t.Error("unsaturable ST should be +Inf")
	}
	zero := InstanceModel{Alpha: 0, SP: 100}
	if !math.IsInf(zero.Inverse(10), 1) {
		t.Error("zero-alpha inverse should be +Inf")
	}
}

func TestComponentModelShuffleScaling(t *testing.T) {
	// Eq. 9: T_c(p, t) = p·T_i(t/p).
	c := &ComponentModel{Component: "splitter", Parallelism: 3, Instance: InstanceModel{Alpha: 7.6, SP: 10e6}}
	// Linear region: output independent of p.
	if got := c.Output(3, 15e6); !almost(got, 7.6*15e6, 1e-12) {
		t.Errorf("p=3 linear = %g", got)
	}
	if got := c.Output(2, 15e6); !almost(got, 7.6*15e6, 1e-12) {
		t.Errorf("p=2 linear = %g", got)
	}
	// Saturation scales with γ = p′/p.
	if got := c.MaxOutput(3); !almost(got, 3*7.6*10e6, 1e-12) {
		t.Errorf("p=3 max = %g", got)
	}
	if got := c.MaxOutput(4); !almost(got, 4*7.6*10e6, 1e-12) {
		t.Errorf("p=4 max = %g", got)
	}
	if got := c.SaturationSource(2); !almost(got, 20e6, 1e-12) {
		t.Errorf("p=2 saturation source = %g", got)
	}
	// Deep saturation: output pinned at p·ST.
	if got := c.Output(2, 100e6); !almost(got, 2*7.6*10e6, 1e-12) {
		t.Errorf("p=2 saturated = %g", got)
	}
	if got := c.Input(2, 100e6); !almost(got, 20e6, 1e-12) {
		t.Errorf("p=2 saturated input = %g", got)
	}
	if c.Output(0, 10) != 0 {
		t.Error("p=0 output should be 0")
	}
}

func TestComponentModelBiasedShares(t *testing.T) {
	// Fields grouping with a 60/40 bias at the calibrated parallelism.
	c := &ComponentModel{
		Component:   "counter",
		Parallelism: 2,
		Instance:    InstanceModel{Alpha: 1, SP: 100},
		InputShares: []float64{0.6, 0.4},
	}
	// The hot instance saturates at component source 100/0.6 ≈ 166.7
	// (Eq. 11's clamping), earlier than the uniform 200.
	if got := c.SaturationSource(2); !almost(got, 100/0.6, 1e-9) {
		t.Errorf("biased saturation source = %g", got)
	}
	// Below that, linear.
	if got := c.Output(2, 150); !almost(got, 150, 1e-12) {
		t.Errorf("biased linear output = %g", got)
	}
	// Above the biased saturation source, global backpressure clamps
	// the whole component at SP/maxShare (not the per-instance clamped
	// sum — see the Input doc comment).
	if got := c.Output(2, 200); !almost(got, 100/0.6, 1e-9) {
		t.Errorf("saturated biased output = %g, want %g", got, 100/0.6)
	}
	if got := c.MaxOutput(2); !almost(got, 100/0.6, 1e-9) {
		t.Errorf("biased max output = %g", got)
	}
	// At a different parallelism shares revert to uniform (Eq. 9).
	if got := c.SaturationSource(4); !almost(got, 400, 1e-12) {
		t.Errorf("re-parallelised saturation source = %g", got)
	}
}

func TestComponentModelInverse(t *testing.T) {
	c := &ComponentModel{Component: "x", Parallelism: 2, Instance: InstanceModel{Alpha: 3, SP: 50}}
	if got := c.InverseOutput(2, 150); !almost(got, 50, 1e-12) {
		t.Errorf("inverse linear = %g", got)
	}
	if got := c.InverseOutput(2, 300); !almost(got, 100, 1e-12) { // at max 2·150
		t.Errorf("inverse at max = %g", got)
	}
	if got := c.InverseOutput(2, 9999); !almost(got, 100, 1e-12) {
		t.Errorf("inverse above max = %g", got)
	}
}

func TestComponentModelCPU(t *testing.T) {
	c := &ComponentModel{Component: "x", Parallelism: 2, Instance: InstanceModel{Alpha: 1, SP: 100}, CPUPsi: 0.01}
	got, err := c.CPU(2, 150)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 1.5, 1e-12) {
		t.Errorf("cpu = %g", got)
	}
	// Saturated input clamps CPU too.
	got, err = c.CPU(2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 2.0, 1e-12) {
		t.Errorf("saturated cpu = %g", got)
	}
	nocpu := &ComponentModel{Component: "x", Parallelism: 1, Instance: InstanceModel{Alpha: 1, SP: 100}}
	if _, err := nocpu.CPU(1, 10); !errors.Is(err, ErrNotCalibrated) {
		t.Errorf("uncalibrated cpu: %v", err)
	}
}

func TestComponentModelValidate(t *testing.T) {
	good := ComponentModel{Component: "c", Parallelism: 2, Instance: InstanceModel{Alpha: 1, SP: 10}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	cases := []ComponentModel{
		{Parallelism: 1, Instance: InstanceModel{Alpha: 1, SP: 1}},                                                    // no name
		{Component: "c", Parallelism: 0, Instance: InstanceModel{Alpha: 1, SP: 1}},                                    // bad p
		{Component: "c", Parallelism: 1, Instance: InstanceModel{Alpha: -1, SP: 1}},                                   // bad alpha
		{Component: "c", Parallelism: 1, Instance: InstanceModel{Alpha: 1, SP: 0}},                                    // bad SP
		{Component: "c", Parallelism: 2, Instance: InstanceModel{Alpha: 1, SP: 1}, InputShares: []float64{1}},         // share len
		{Component: "c", Parallelism: 2, Instance: InstanceModel{Alpha: 1, SP: 1}, InputShares: []float64{0.9, 0.9}},  // share sum
		{Component: "c", Parallelism: 2, Instance: InstanceModel{Alpha: 1, SP: 1}, InputShares: []float64{1.5, -0.5}}, // negative
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestQuickComponentOutputMonotoneAndBounded(t *testing.T) {
	c := &ComponentModel{Component: "c", Parallelism: 3, Instance: InstanceModel{Alpha: 5, SP: 1e6}}
	f := func(r1, r2 float64, pRaw uint8) bool {
		p := 1 + int(pRaw%8)
		r1, r2 = math.Abs(math.Mod(r1, 1e8)), math.Abs(math.Mod(r2, 1e8))
		lo, hi := math.Min(r1, r2), math.Max(r1, r2)
		oLo, oHi := c.Output(p, lo), c.Output(p, hi)
		if oLo > oHi+1e-9 {
			return false // monotone
		}
		return oHi <= c.MaxOutput(p)+1e-9 // bounded
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// --- calibration tests -------------------------------------------------

func synthWindows(n int, executePerMin, alpha float64, saturated bool, psi float64) []metrics.Window {
	base := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	out := make([]metrics.Window, n)
	for i := range out {
		w := metrics.Window{
			T:       base.Add(time.Duration(i) * time.Minute),
			Execute: executePerMin,
			Emit:    executePerMin * alpha,
			Arrival: executePerMin,
			CPULoad: psi * executePerMin,
		}
		if saturated {
			w.BackpressureMs = 58_000
		}
		out[i] = w
	}
	return out
}

func TestCalibrateComponentLinearOnly(t *testing.T) {
	ws := synthWindows(10, 5e6, 7.6, false, 1e-7)
	m, err := CalibrateComponent("splitter", 1, ws, nil, CalibrationOptions{Warmup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(m.Instance.Alpha, 7.6, 1e-9) {
		t.Errorf("alpha = %g", m.Instance.Alpha)
	}
	if !math.IsInf(m.Instance.SP, 1) {
		t.Errorf("SP should be +Inf without saturation, got %g", m.Instance.SP)
	}
	if !almost(m.CPUPsi, 1e-7, 1e-6) {
		t.Errorf("psi = %g", m.CPUPsi)
	}
}

func TestCalibrateComponentWithSaturation(t *testing.T) {
	ws := append(synthWindows(6, 5e6, 7.6, false, 1e-7), synthWindows(6, 11e6, 7.6, true, 1e-7)...)
	m, err := CalibrateComponent("splitter", 1, ws, nil, CalibrationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(m.Instance.SP, 11e6, 1e-9) {
		t.Errorf("SP = %g, want 11e6", m.Instance.SP)
	}
	if !almost(m.Instance.ST(), 7.6*11e6, 1e-9) {
		t.Errorf("ST = %g", m.Instance.ST())
	}
	// Parallelism divides the saturated rate.
	m3, err := CalibrateComponent("splitter", 3, append(synthWindows(4, 15e6, 7.6, false, 0), synthWindows(4, 33e6, 7.6, true, 0)...), nil, CalibrationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(m3.Instance.SP, 11e6, 1e-9) {
		t.Errorf("p=3 SP = %g, want 11e6", m3.Instance.SP)
	}
}

func TestCalibrateComponentInstanceShares(t *testing.T) {
	comp := synthWindows(5, 10e6, 1, false, 0)
	hot := synthWindows(5, 6e6, 1, false, 0)
	cold := synthWindows(5, 4e6, 1, false, 0)
	m, err := CalibrateComponent("counter", 2, comp, [][]metrics.Window{hot, cold}, CalibrationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.InputShares) != 2 || !almost(m.InputShares[0], 0.6, 1e-9) || !almost(m.InputShares[1], 0.4, 1e-9) {
		t.Errorf("shares = %v", m.InputShares)
	}
}

func TestCalibrateComponentErrors(t *testing.T) {
	if _, err := CalibrateComponent("c", 0, synthWindows(5, 1, 1, false, 0), nil, CalibrationOptions{}); err == nil {
		t.Error("parallelism 0 accepted")
	}
	if _, err := CalibrateComponent("c", 1, synthWindows(3, 1, 1, false, 0), nil, CalibrationOptions{Warmup: 5}); !errors.Is(err, ErrNotCalibrated) {
		t.Errorf("warmup > windows: %v", err)
	}
	zero := synthWindows(5, 0, 0, false, 0)
	if _, err := CalibrateComponent("c", 1, zero, nil, CalibrationOptions{}); !errors.Is(err, ErrNotCalibrated) {
		t.Errorf("all-zero windows: %v", err)
	}
	if _, err := CalibrateComponent("c", 2, synthWindows(5, 1, 1, false, 0), [][]metrics.Window{synthWindows(5, 1, 1, false, 0)}, CalibrationOptions{}); err == nil {
		t.Error("mismatched instance series accepted")
	}
}

func TestMergeCalibrations(t *testing.T) {
	linear := &ComponentModel{Component: "c", Parallelism: 1, Instance: InstanceModel{Alpha: 7.5, SP: math.Inf(1)}, CPUPsi: 1e-7}
	saturated := &ComponentModel{Component: "c", Parallelism: 1, Instance: InstanceModel{Alpha: 7.7, SP: 11e6}}
	m, err := MergeCalibrations(linear, saturated)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(m.Instance.Alpha, 7.6, 1e-9) {
		t.Errorf("merged alpha = %g", m.Instance.Alpha)
	}
	if !almost(m.Instance.SP, 11e6, 1e-9) {
		t.Errorf("merged SP = %g", m.Instance.SP)
	}
	if m.CPUPsi != 1e-7 {
		t.Errorf("merged psi = %g", m.CPUPsi)
	}
	if _, err := MergeCalibrations(linear, &ComponentModel{Component: "other", Parallelism: 1, Instance: InstanceModel{Alpha: 1, SP: 1}}); err == nil {
		t.Error("cross-component merge accepted")
	}
	if _, err := MergeCalibrations(linear, &ComponentModel{Component: "c", Parallelism: 2, Instance: InstanceModel{Alpha: 1, SP: 1}}); err == nil {
		t.Error("cross-parallelism merge accepted")
	}
}

// --- topology model tests ----------------------------------------------

func wordCountModel(t *testing.T) *TopologyModel {
	t.Helper()
	top, err := topology.NewBuilder("word-count").
		AddSpout("spout", 2).
		AddBolt("splitter", 2).
		AddBolt("counter", 4).
		Connect("spout", "splitter", topology.ShuffleGrouping).
		Connect("splitter", "counter", topology.FieldsGrouping, "word").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	models := map[string]*ComponentModel{
		"spout":    {Component: "spout", Parallelism: 2, Instance: InstanceModel{Alpha: 1, SP: math.Inf(1)}},
		"splitter": {Component: "splitter", Parallelism: 2, Instance: InstanceModel{Alpha: 7.6, SP: 10e6}, CPUPsi: 1e-7},
		"counter":  {Component: "counter", Parallelism: 4, Instance: InstanceModel{Alpha: 0.001, SP: 68e6}, CPUPsi: 1.2e-8},
	}
	tm, err := NewTopologyModel(top, models)
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestPredictPathChaining(t *testing.T) {
	tm := wordCountModel(t)
	// Linear regime: 10 M/min source → splitter out 76 M → counter in 76 M.
	pred, err := tm.PredictPath([]string{"spout", "splitter", "counter"}, nil, 10e6)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(pred.Components[1].OutputRate, 76e6, 1e-9) {
		t.Errorf("splitter out = %g", pred.Components[1].OutputRate)
	}
	if !almost(pred.Components[2].InputRate, 76e6, 1e-9) {
		t.Errorf("counter in = %g", pred.Components[2].InputRate)
	}
	// Saturation point: splitter p=2 → 20 M source; counter p=4 →
	// 272 M / 7.6 ≈ 35.8 M source. Splitter binds.
	if !almost(pred.SaturationSource, 20e6, 1e-9) {
		t.Errorf("t'0 = %g, want 20e6", pred.SaturationSource)
	}
	if pred.Bottleneck != "splitter" {
		t.Errorf("bottleneck = %q", pred.Bottleneck)
	}
	if pred.Risk != RiskLow {
		t.Errorf("risk at 10M = %v", pred.Risk)
	}
	// Above t'0: high risk and clamped output.
	hot, err := tm.PredictPath([]string{"spout", "splitter", "counter"}, nil, 25e6)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Risk != RiskHigh {
		t.Errorf("risk at 25M = %v", hot.Risk)
	}
	if !hot.Components[1].Saturated {
		t.Error("splitter should be saturated at 25M")
	}
	if !almost(hot.Components[1].OutputRate, 2*7.6*10e6, 1e-9) {
		t.Errorf("saturated splitter out = %g", hot.Components[1].OutputRate)
	}
	// Near t'0 within margin: high.
	near, err := tm.PredictPath([]string{"spout", "splitter", "counter"}, nil, 18.5e6)
	if err != nil {
		t.Fatal(err)
	}
	if near.Risk != RiskHigh {
		t.Errorf("risk at 18.5M (margin) = %v", near.Risk)
	}
}

func TestPredictPathWithOverrides(t *testing.T) {
	tm := wordCountModel(t)
	// Scale splitter to 4: t'0 moves to 35.8M (counter binds).
	pred, err := tm.PredictPath([]string{"spout", "splitter", "counter"}, map[string]int{"splitter": 4}, 10e6)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Bottleneck != "counter" {
		t.Errorf("bottleneck = %q", pred.Bottleneck)
	}
	wantSat := 4 * 68e6 / 7.6
	if !almost(pred.SaturationSource, wantSat, 1e-9) {
		t.Errorf("t'0 = %g, want %g", pred.SaturationSource, wantSat)
	}
}

func TestPredictErrors(t *testing.T) {
	tm := wordCountModel(t)
	if _, err := tm.PredictPath(nil, nil, 1); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := tm.PredictPath([]string{"ghost"}, nil, 1); !errors.Is(err, ErrNotCalibrated) {
		t.Errorf("unknown component: %v", err)
	}
	if _, err := tm.PredictPath([]string{"spout"}, nil, -1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := tm.PredictPath([]string{"spout"}, map[string]int{"spout": 0}, 1); err == nil {
		t.Error("zero parallelism accepted")
	}
}

func TestTopologyPredict(t *testing.T) {
	tm := wordCountModel(t)
	pred, err := tm.Predict(nil, 15e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred.Paths) != 1 {
		t.Fatalf("paths = %d", len(pred.Paths))
	}
	if pred.Bottleneck != "splitter" || !almost(pred.SaturationSource, 20e6, 1e-9) {
		t.Errorf("bottleneck %q at %g", pred.Bottleneck, pred.SaturationSource)
	}
	// CPU: splitter 1e-7·15e6·7.6? No: ψ applies to input rate
	// (15e6) → 1.5; counter ψ 1.2e-8 · 114e6 ≈ 1.368.
	wantCPU := 1e-7*15e6 + 1.2e-8*15e6*7.6
	if !almost(pred.TotalCPU, wantCPU, 1e-9) {
		t.Errorf("total cpu = %g, want %g", pred.TotalCPU, wantCPU)
	}
	if pred.Risk != RiskLow {
		t.Errorf("risk = %v", pred.Risk)
	}
}

func TestNewTopologyModelValidation(t *testing.T) {
	top, err := topology.NewBuilder("t").AddSpout("s", 1).AddBolt("b", 1).
		Connect("s", "b", topology.ShuffleGrouping).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTopologyModel(nil, nil); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := NewTopologyModel(top, map[string]*ComponentModel{}); !errors.Is(err, ErrNotCalibrated) {
		t.Errorf("missing models: %v", err)
	}
	bad := map[string]*ComponentModel{
		"s": {Component: "s", Parallelism: 1, Instance: InstanceModel{Alpha: 1, SP: 1}},
		"b": {Component: "b", Parallelism: 0, Instance: InstanceModel{Alpha: 1, SP: 1}},
	}
	if _, err := NewTopologyModel(top, bad); err == nil {
		t.Error("invalid component model accepted")
	}
}

func TestSuggestParallelism(t *testing.T) {
	tm := wordCountModel(t)
	// At 30 M/min source with 20% headroom: splitter needs
	// ceil(30·1.2/10) = 4, counter ceil(228·1.2/68) = ceil(4.02) = 5.
	got, err := tm.SuggestParallelism(30e6, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got["splitter"] != 4 {
		t.Errorf("splitter = %d, want 4", got["splitter"])
	}
	if got["counter"] != 5 {
		t.Errorf("counter = %d, want 5", got["counter"])
	}
	if got["spout"] != 1 { // unsaturable → minimum
		t.Errorf("spout = %d, want 1", got["spout"])
	}
	// The suggestion must evaluate as low-risk.
	pred, err := tm.Predict(got, 30e6)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Risk != RiskLow {
		t.Errorf("suggested plan risk = %v (t'0 %g)", pred.Risk, pred.SaturationSource)
	}
	if _, err := tm.SuggestParallelism(-1, 0); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := tm.SuggestParallelism(1, -1); err == nil {
		t.Error("negative headroom accepted")
	}
}

func TestQuickSuggestedPlansAreAlwaysLowRisk(t *testing.T) {
	tm := wordCountModel(t)
	f := func(rateRaw uint32) bool {
		rate := 1e6 + float64(rateRaw%100)*1e6
		plan, err := tm.SuggestParallelism(rate, 0.3)
		if err != nil {
			return false
		}
		pred, err := tm.Predict(plan, rate)
		if err != nil {
			return false
		}
		return pred.Risk == RiskLow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
