package audit

import (
	"fmt"
	"math"
	"testing"
	"time"

	"caladrius/internal/metrics"
	"caladrius/internal/telemetry"
	"caladrius/internal/tsdb"
)

// partialProvider serves a configurable slice of sink windows and lets
// the backpressure series fail — the shapes a provider mid-outage or
// mid-gap hands the resolver.
type partialProvider struct {
	origin  time.Time
	windows map[string][]metrics.Window // by component
	bpErr   error
}

func (p *partialProvider) inRange(ws []metrics.Window, start, end time.Time) []metrics.Window {
	var out []metrics.Window
	for _, w := range ws {
		if !w.T.Before(start) && w.T.Before(end) {
			out = append(out, w)
		}
	}
	return out
}

func (p *partialProvider) ComponentWindows(_, comp string, start, end time.Time) ([]metrics.Window, error) {
	ws := p.inRange(p.windows[comp], start, end)
	if len(ws) == 0 {
		return nil, fmt.Errorf("%w: no windows", metrics.ErrNoData)
	}
	return ws, nil
}
func (p *partialProvider) InstanceWindows(_, _ string, _ int, _, _ time.Time) ([]metrics.Window, error) {
	return nil, metrics.ErrNoData
}
func (p *partialProvider) SourceRate(_ string, _ []string, _, _ time.Time) ([]tsdb.Point, error) {
	return nil, metrics.ErrNoData
}
func (p *partialProvider) TopologyBackpressureMs(_ string, _, _ time.Time) ([]tsdb.Point, error) {
	if p.bpErr != nil {
		return nil, p.bpErr
	}
	return nil, metrics.ErrNoData
}
func (p *partialProvider) StreamEmitTotals(_, _ string, _, _ time.Time) (map[string]float64, error) {
	return nil, metrics.ErrNoData
}

// assertNoNaNSeries scans every caladrius_model_* point in the store:
// partial actuals must never let a NaN or Inf reach the SLO's input.
func assertNoNaNSeries(t *testing.T, db *tsdb.DB, origin time.Time) {
	t.Helper()
	for _, metric := range []string{MetricMAPE, MetricSignedError, MetricAPE, MetricPrecision, MetricRecall} {
		series, err := db.Query(metric, nil, origin.Add(-24*time.Hour), origin.Add(24*time.Hour))
		if err != nil {
			continue // series never written is fine
		}
		for _, s := range series {
			for _, p := range s.Points {
				if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
					t.Errorf("%s%v has non-finite point %v at %s", metric, s.Labels, p.V, p.T)
				}
			}
		}
	}
}

// TestResolvePartialActuals drives the resolver through the degraded
// shapes a faulty provider produces: an observe window only partially
// covered by rollups, a backpressure series that is entirely missing,
// and an observed throughput of zero. All must resolve to finite error
// metrics; none may plant a NaN in the accuracy series.
func TestResolvePartialActuals(t *testing.T) {
	origin := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	now := origin
	// Only 2 of the 5 observe-window minutes have rollups (the gap ate
	// the rest), and their Execute is zero — the sink was fully stalled.
	prov := &partialProvider{origin: origin, windows: map[string][]metrics.Window{
		"counter": {
			{T: origin.Add(-2 * time.Minute), Execute: 0},
			{T: origin.Add(-1 * time.Minute), Execute: 0},
		},
	}}
	db := tsdb.New(0)
	led, err := NewLedger(Options{
		Provider:      prov,
		History:       db,
		Registry:      telemetry.NewRegistry(),
		Now:           func() time.Time { return now },
		ObserveWindow: 5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	led.Record(Record{
		Topology:  "word-count",
		Model:     "predict",
		Predicted: Predicted{SinkTPM: 1.5e6, Sink: "counter", Risk: "low"},
	})

	if n := led.ResolveOnce(now); n != 1 {
		t.Fatalf("ResolveOnce = %d, want 1 (partial windows are still actuals)", n)
	}
	recs := led.List(Filter{})
	if len(recs) != 1 || !recs[0].Resolved {
		t.Fatalf("record not resolved: %+v", recs)
	}
	rec := recs[0]
	if rec.Observed == nil || rec.Observed.Windows != 2 {
		t.Fatalf("Observed = %+v, want 2 windows", rec.Observed)
	}
	if rec.Observed.SinkTPM != 0 {
		t.Errorf("observed sink TPM = %g, want 0", rec.Observed.SinkTPM)
	}
	// Zero observed throughput uses the absolute-error convention, not
	// a division by zero.
	if rec.Errors == nil || math.IsNaN(rec.Errors.SinkAPE) || rec.Errors.SinkAPE != 1.5e6 {
		t.Fatalf("Errors = %+v, want finite absolute APE 1.5e6", rec.Errors)
	}
	stats := led.Stats()
	if len(stats) != 1 || stats[0].MAPE == nil || math.IsNaN(*stats[0].MAPE) {
		t.Fatalf("Stats = %+v, want one finite MAPE", stats)
	}
	assertNoNaNSeries(t, db, origin)
}

// TestResolveEmptyWindowStaysPending pins the retry path: a record
// whose observe window has no sink rollups at all must stay pending —
// resolving it against nothing would fabricate a 100% error — and then
// resolve cleanly once data lands.
func TestResolveEmptyWindowStaysPending(t *testing.T) {
	origin := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	now := origin
	prov := &partialProvider{origin: origin, windows: map[string][]metrics.Window{}}
	db := tsdb.New(0)
	led, err := NewLedger(Options{
		Provider:      prov,
		History:       db,
		Registry:      telemetry.NewRegistry(),
		Now:           func() time.Time { return now },
		ObserveWindow: 5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	led.Record(Record{
		Topology:  "word-count",
		Model:     "predict",
		Predicted: Predicted{SinkTPM: 1e6, Sink: "counter", Risk: "low"},
	})

	if n := led.ResolveOnce(now); n != 0 {
		t.Fatalf("ResolveOnce over an empty window = %d, want 0", n)
	}
	if recs := led.List(Filter{}); recs[0].Resolved {
		t.Fatal("record resolved against an empty observe window")
	}
	assertNoNaNSeries(t, db, origin)

	// The outage ends: the provider backfills the window, and the next
	// cycle resolves the same record with finite errors.
	prov.windows["counter"] = []metrics.Window{
		{T: origin.Add(-3 * time.Minute), Execute: 1e6},
		{T: origin.Add(-2 * time.Minute), Execute: 1e6},
	}
	if n := led.ResolveOnce(now); n != 1 {
		t.Fatalf("ResolveOnce after backfill = %d, want 1", n)
	}
	rec := led.List(Filter{})[0]
	if !rec.Resolved || rec.Errors == nil {
		t.Fatalf("record after backfill = %+v", rec)
	}
	if math.IsNaN(rec.Errors.SinkAPE) || math.IsInf(rec.Errors.SinkAPE, 0) {
		t.Errorf("SinkAPE = %g, want finite", rec.Errors.SinkAPE)
	}
	assertNoNaNSeries(t, db, origin)
}
