package audit

import (
	"math"
	"testing"
	"time"

	"caladrius/internal/core"
	"caladrius/internal/heron"
	"caladrius/internal/metrics"
	"caladrius/internal/telemetry"
	"caladrius/internal/tsdb"
)

// The closed-loop accuracy test: a live simulator, a model calibrated
// from it, a ledger auditing every prediction, and the drift SLO on
// top. It asserts the whole chain end to end:
//
//  1. the ledger's rolling MAPE matches an experiment-style replay of
//     the same windows to 1e-9;
//  2. shifting the simulator's splitter→counter α mid-run (the
//     workload drifting away from the calibration) drives the
//     model-accuracy-drift rule to firing;
//  3. re-calibrating against the post-shift data resolves it.

// loopRecorder adapts the ledger to core.RunRecorder the same way the
// API tier's recorder does.
type loopRecorder struct {
	led *Ledger
}

func (r loopRecorder) RecordRun(run core.ModelRun) {
	p := run.Prediction
	sat := p.SaturationSource
	if math.IsInf(sat, 1) {
		sat = 0
	}
	cp := p.CriticalPath()
	sink := ""
	if len(cp.Path) > 0 {
		sink = cp.Path[len(cp.Path)-1]
	}
	r.led.Record(Record{
		Topology:      "word-count",
		Model:         "predict",
		SourceRateTPM: run.SourceRate,
		Parallelism:   run.Parallelism,
		Calibration:   run.Calibration,
		Predicted: Predicted{
			SinkTPM:             p.SinkThroughput,
			OutputTPM:           cp.OutputRate,
			SaturationSourceTPM: sat,
			Bottleneck:          p.Bottleneck,
			Risk:                string(p.Risk),
			TotalCPUCores:       p.TotalCPU,
			Sink:                sink,
		},
	})
}

func TestClosedLoopAccuracyDrift(t *testing.T) {
	const (
		rate          = 20e6 // tuples/minute: unsaturated at these parallelisms
		rollingN      = 8
		observeWindow = 5 * time.Minute
		driftMAPE     = 0.08
	)

	sim, err := heron.NewWordCount(heron.WordCountOptions{
		SplitterP:     3,
		CounterP:      4,
		RatePerMinute: rate,
	})
	if err != nil {
		t.Fatalf("NewWordCount: %v", err)
	}
	start := sim.Start()
	if err := sim.Run(30 * time.Minute); err != nil {
		t.Fatalf("sim warmup: %v", err)
	}

	prov, err := metrics.NewTSDBProvider(sim.DB(), time.Minute)
	if err != nil {
		t.Fatalf("provider: %v", err)
	}
	top, err := heron.WordCountTopology(8, 3, 4)
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	now := start.Add(30 * time.Minute)
	models, err := core.CalibrateTopologyFromProvider(prov, top, start, now, core.CalibrationOptions{Warmup: 3})
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	tm, err := core.NewTopologyModel(top, models)
	if err != nil {
		t.Fatalf("model: %v", err)
	}

	db := tsdb.New(24 * time.Hour)
	reg := telemetry.NewRegistry()
	led := testLedger(t, Options{
		Provider:      prov,
		History:       db,
		Registry:      reg,
		Now:           func() time.Time { return now },
		RollingWindow: rollingN,
		ObserveWindow: observeWindow,
	})
	led.NoteCalibration("word-count", now)
	slo, err := telemetry.NewSLO(db, reg, func() time.Time { return now },
		telemetry.ModelAccuracyRules(driftMAPE, 24*time.Hour, 15*time.Minute))
	if err != nil {
		t.Fatalf("NewSLO: %v", err)
	}
	rec := loopRecorder{led: led}
	firing := reg.Counter("caladrius_slo_transitions_total", telemetry.Labels{"rule": "model-accuracy-drift", "to": "firing"})
	resolved := reg.Counter("caladrius_slo_transitions_total", telemetry.Labels{"rule": "model-accuracy-drift", "to": "resolved"})

	// predictN advances the sim/ledger clock minute by minute, auditing
	// one prediction of the deployed configuration per minute, and
	// returns the predicted sink throughputs in creation order.
	predictN := func(m *core.TopologyModel, n int) []float64 {
		t.Helper()
		preds := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			if err := sim.Run(time.Minute); err != nil {
				t.Fatalf("sim.Run: %v", err)
			}
			now = now.Add(time.Minute)
			pred, err := m.PredictRecorded(rec, nil, rate)
			if err != nil {
				t.Fatalf("PredictRecorded: %v", err)
			}
			preds = append(preds, pred.SinkThroughput)
		}
		return preds
	}

	// expectedMAPE replays the resolver's join the way an offline
	// experiment would: summarise the sink's trailing windows at each
	// record's creation time and average the relative errors oldest
	// first, over the last rollingN audited records.
	var createdAts []time.Time
	var predSinks []float64
	expectedMAPE := func() float64 {
		t.Helper()
		lo := 0
		if len(predSinks) > rollingN {
			lo = len(predSinks) - rollingN
		}
		apes := make([]float64, 0, rollingN)
		for i := lo; i < len(predSinks); i++ {
			ws, err := prov.ComponentWindows("word-count", "counter", createdAts[i].Add(-observeWindow), createdAts[i])
			if err != nil {
				t.Fatalf("replay ComponentWindows: %v", err)
			}
			ss, err := metrics.Summarise(ws, 0)
			if err != nil {
				t.Fatalf("replay Summarise: %v", err)
			}
			// 1-minute rollup windows: per-window counts are per-minute.
			apes = append(apes, relErr(predSinks[i], ss.Execute))
		}
		return mean(apes)
	}
	// Phase 1 — healthy loop: the calibrated model predicts the live
	// topology; rolling MAPE is small and matches the replay exactly.
	preds := predictN(tm, 6)
	for i, p := range preds {
		createdAts = append(createdAts, now.Add(time.Duration(i-len(preds)+1)*time.Minute))
		predSinks = append(predSinks, p)
	}
	if n := led.ResolveOnce(now); n != 6 {
		t.Fatalf("phase 1 ResolveOnce = %d, want 6", n)
	}
	stats := led.Stats()
	if len(stats) != 1 || stats[0].MAPE == nil {
		t.Fatalf("phase 1 Stats = %+v", stats)
	}
	want := expectedMAPE()
	if diff := math.Abs(*stats[0].MAPE - want); diff > 1e-9 {
		t.Fatalf("phase 1 rolling MAPE %g vs replayed %g (diff %g > 1e-9)", *stats[0].MAPE, want, diff)
	}
	if *stats[0].MAPE >= driftMAPE {
		t.Fatalf("phase 1 MAPE %g already above drift threshold %g — calibration failed", *stats[0].MAPE, driftMAPE)
	}
	if pt, err := db.Latest(MetricMAPE, tsdb.Labels{"topology": "word-count", "model": "predict"}); err != nil || math.Abs(pt.V-want) > 1e-9 {
		t.Fatalf("%s latest = %+v, %v, want %g", MetricMAPE, pt, err, want)
	}
	// Unsaturated everywhere: every graded run is a true negative, so
	// the classifier is vacuously perfect.
	if stats[0].TN != 6 || stats[0].Precision != 1 || stats[0].Recall != 1 {
		t.Fatalf("phase 1 classifier stats = %+v", stats[0])
	}
	now = now.Add(time.Second) // history ranges are end-exclusive
	if state := alertState(t, slo, "model-accuracy-drift"); state != telemetry.StateOK {
		t.Fatalf("phase 1 drift state = %s, want ok", state)
	}

	// Phase 2 — workload shift: sentences get longer (α 7.635 → 10).
	// The stale calibration now under-predicts sink throughput by
	// ≈ 24%, far past the 8% budget.
	if err := sim.SetRouteAlpha("splitter", "counter", 10); err != nil {
		t.Fatalf("SetRouteAlpha: %v", err)
	}
	if err := sim.Run(6 * time.Minute); err != nil { // flush pre-shift windows out of the observe window
		t.Fatalf("sim.Run: %v", err)
	}
	now = now.Add(6 * time.Minute)
	mutEnd := now
	preds = predictN(tm, rollingN) // fills the whole rolling window with drifted runs
	for i, p := range preds {
		createdAts = append(createdAts, now.Add(time.Duration(i-len(preds)+1)*time.Minute))
		predSinks = append(predSinks, p)
	}
	if n := led.ResolveOnce(now); n != rollingN {
		t.Fatalf("phase 2 ResolveOnce = %d, want %d", n, rollingN)
	}
	stats = led.Stats()
	want = expectedMAPE()
	if diff := math.Abs(*stats[0].MAPE - want); diff > 1e-9 {
		t.Fatalf("phase 2 rolling MAPE %g vs replayed %g (diff %g > 1e-9)", *stats[0].MAPE, want, diff)
	}
	if *stats[0].MAPE <= driftMAPE {
		t.Fatalf("phase 2 MAPE %g did not cross drift threshold %g after α shift", *stats[0].MAPE, driftMAPE)
	}
	now = now.Add(time.Second)
	if state := alertState(t, slo, "model-accuracy-drift"); state != telemetry.StateFiring {
		t.Fatalf("phase 2 drift state = %s, want firing", state)
	}
	if firing.Value() != 1 {
		t.Fatalf("firing transitions = %g, want 1", firing.Value())
	}

	// Phase 3 — re-calibrate against the post-shift behaviour; fresh
	// predictions push the drifted runs out of the rolling window and
	// the alert resolves.
	models2, err := core.CalibrateTopologyFromProvider(prov, top, mutEnd.Add(-5*time.Minute), mutEnd, core.CalibrationOptions{Warmup: 1})
	if err != nil {
		t.Fatalf("re-calibrate: %v", err)
	}
	tm2, err := core.NewTopologyModel(top, models2)
	if err != nil {
		t.Fatalf("re-model: %v", err)
	}
	led.NoteCalibration("word-count", now)
	preds = predictN(tm2, rollingN)
	for i, p := range preds {
		createdAts = append(createdAts, now.Add(time.Duration(i-len(preds)+1)*time.Minute))
		predSinks = append(predSinks, p)
	}
	led.ResolveOnce(now)
	stats = led.Stats()
	want = expectedMAPE()
	if diff := math.Abs(*stats[0].MAPE - want); diff > 1e-9 {
		t.Fatalf("phase 3 rolling MAPE %g vs replayed %g (diff %g > 1e-9)", *stats[0].MAPE, want, diff)
	}
	if *stats[0].MAPE >= driftMAPE {
		t.Fatalf("phase 3 MAPE %g still above drift threshold %g after re-calibration", *stats[0].MAPE, driftMAPE)
	}
	now = now.Add(time.Second)
	if state := alertState(t, slo, "model-accuracy-drift"); state != telemetry.StateOK {
		t.Fatalf("phase 3 drift state = %s, want ok", state)
	}
	if resolved.Value() != 1 {
		t.Fatalf("resolved transitions = %g, want 1", resolved.Value())
	}
}

func alertState(t *testing.T, slo *telemetry.SLO, rule string) telemetry.AlertState {
	t.Helper()
	for _, a := range slo.Evaluate() {
		if a.Rule == rule {
			return a.State
		}
	}
	t.Fatalf("rule %s not evaluated", rule)
	return ""
}
