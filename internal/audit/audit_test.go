package audit

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"caladrius/internal/metrics"
	"caladrius/internal/telemetry"
	"caladrius/internal/tsdb"
)

var audT0 = time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)

// stubProvider serves canned per-component windows and a topology
// backpressure series, filtered to the queried range.
type stubProvider struct {
	windows map[string][]metrics.Window
	bp      []tsdb.Point
}

func (p *stubProvider) ComponentWindows(_, component string, start, end time.Time) ([]metrics.Window, error) {
	var out []metrics.Window
	for _, w := range p.windows[component] {
		if !w.T.Before(start) && w.T.Before(end) {
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		return nil, metrics.ErrNoData
	}
	return out, nil
}

func (p *stubProvider) InstanceWindows(string, string, int, time.Time, time.Time) ([]metrics.Window, error) {
	return nil, metrics.ErrNoData
}

func (p *stubProvider) SourceRate(string, []string, time.Time, time.Time) ([]tsdb.Point, error) {
	return nil, metrics.ErrNoData
}

func (p *stubProvider) TopologyBackpressureMs(_ string, start, end time.Time) ([]tsdb.Point, error) {
	var out []tsdb.Point
	for _, pt := range p.bp {
		if !pt.T.Before(start) && pt.T.Before(end) {
			out = append(out, pt)
		}
	}
	if len(out) == 0 {
		return nil, metrics.ErrNoData
	}
	return out, nil
}

func (p *stubProvider) StreamEmitTotals(string, string, time.Time, time.Time) (map[string]float64, error) {
	return nil, nil
}

// sinkWindows fills count one-minute windows ending at end with the
// given per-window execute rate.
func sinkWindows(end time.Time, count int, execute float64) []metrics.Window {
	ws := make([]metrics.Window, count)
	for i := range ws {
		ws[i] = metrics.Window{
			T:       end.Add(-time.Duration(count-i) * time.Minute),
			Execute: execute,
			CPULoad: 2,
		}
	}
	return ws
}

func testLedger(t *testing.T, opts Options) *Ledger {
	t.Helper()
	if opts.Provider == nil {
		opts.Provider = &stubProvider{}
	}
	led, err := NewLedger(opts)
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	return led
}

func predictRecord(sinkTPM float64) Record {
	return Record{
		Topology:      "word-count",
		Model:         "predict",
		SourceRateTPM: 20e6,
		Predicted:     Predicted{SinkTPM: sinkTPM, Risk: "low", Sink: "counter", TotalCPUCores: 2},
	}
}

func TestLedgerRecordGetList(t *testing.T) {
	now := audT0
	led := testLedger(t, Options{Now: func() time.Time { return now }})

	id1 := led.Record(predictRecord(100))
	now = now.Add(time.Minute)
	rec2 := predictRecord(200)
	rec2.Model = "plan"
	rec2.Counterfactual = true
	id2 := led.Record(rec2)
	if id1 != 1 || id2 != 2 {
		t.Fatalf("ids = %d, %d, want 1, 2", id1, id2)
	}

	got, ok := led.Get(id2)
	if !ok || got.Model != "plan" || !got.CreatedAt.Equal(audT0.Add(time.Minute)) {
		t.Fatalf("Get(%d) = %+v, %v", id2, got, ok)
	}
	if _, ok := led.Get(99); ok {
		t.Fatal("Get(99) found a record that was never recorded")
	}

	if all := led.List(Filter{}); len(all) != 2 || all[0].ID != 2 || all[1].ID != 1 {
		t.Fatalf("List newest-first = %+v", all)
	}
	if plans := led.List(Filter{Model: "plan"}); len(plans) != 1 || plans[0].ID != 2 {
		t.Fatalf("List(model=plan) = %+v", plans)
	}
	if lim := led.List(Filter{Limit: 1}); len(lim) != 1 || lim[0].ID != 2 {
		t.Fatalf("List(limit=1) = %+v", lim)
	}
	unresolved := false
	if pending := led.List(Filter{Resolved: &unresolved}); len(pending) != 2 {
		t.Fatalf("List(resolved=false) = %d records, want 2", len(pending))
	}
	if since := led.List(Filter{Since: audT0.Add(30 * time.Second)}); len(since) != 1 || since[0].ID != 2 {
		t.Fatalf("List(since) = %+v", since)
	}
}

func TestLedgerRingEviction(t *testing.T) {
	now := audT0
	led := testLedger(t, Options{Capacity: 4, Now: func() time.Time { return now }})
	for i := 0; i < 6; i++ {
		led.Record(predictRecord(float64(i)))
	}
	if led.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", led.Len())
	}
	if _, ok := led.Get(2); ok {
		t.Fatal("record 2 should have been evicted by the ring")
	}
	if rec, ok := led.Get(3); !ok || rec.Predicted.SinkTPM != 2 {
		t.Fatalf("Get(3) = %+v, %v", rec, ok)
	}
	if rec, ok := led.Get(6); !ok || rec.Predicted.SinkTPM != 5 {
		t.Fatalf("Get(6) = %+v, %v", rec, ok)
	}
}

func TestLedgerRetentionEviction(t *testing.T) {
	now := audT0
	led := testLedger(t, Options{Retention: 10 * time.Minute, Now: func() time.Time { return now }})
	led.Record(predictRecord(1))
	now = now.Add(11 * time.Minute)
	led.Record(predictRecord(2))
	if led.Len() != 1 {
		t.Fatalf("Len = %d after retention horizon passed, want 1", led.Len())
	}
	if _, ok := led.Get(1); ok {
		t.Fatal("record 1 outlived its retention")
	}
}

func TestLedgerSnapshotRoundTrip(t *testing.T) {
	now := audT0
	prov := &stubProvider{windows: map[string][]metrics.Window{
		"counter": sinkWindows(audT0, 5, 100),
	}}
	led := testLedger(t, Options{Provider: prov, Now: func() time.Time { return now }, RollingWindow: 4})
	led.Record(predictRecord(110)) // resolves: APE 0.1
	cf := predictRecord(500)
	cf.Counterfactual = true
	led.Record(cf)
	if n := led.ResolveOnce(now); n != 2 {
		t.Fatalf("ResolveOnce = %d, want 2", n)
	}
	led.Record(predictRecord(120)) // left pending
	led.NoteCalibration("word-count", audT0)

	var buf bytes.Buffer
	if err := led.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	restored := testLedger(t, Options{Provider: prov, Now: func() time.Time { return now }, RollingWindow: 4})
	if err := restored.ReadSnapshot(&buf); err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if restored.Len() != 3 {
		t.Fatalf("restored Len = %d, want 3", restored.Len())
	}
	rec, ok := restored.Get(1)
	if !ok || !rec.Resolved || rec.Errors == nil {
		t.Fatalf("restored record 1 = %+v, %v", rec, ok)
	}
	if ape := rec.Errors.SinkAPE; ape != 0.1 {
		t.Fatalf("restored APE = %g, want 0.1", ape)
	}
	// The rolling accuracy state replays from resolved records.
	stats := restored.Stats()
	if len(stats) != 1 || stats[0].Resolved != 2 || stats[0].Audited != 1 {
		t.Fatalf("restored Stats = %+v", stats)
	}
	if stats[0].MAPE == nil || *stats[0].MAPE != 0.1 {
		t.Fatalf("restored MAPE = %v, want 0.1", stats[0].MAPE)
	}
	if stats[0].LastCalibrated == nil || !stats[0].LastCalibrated.Equal(audT0) {
		t.Fatalf("restored LastCalibrated = %v", stats[0].LastCalibrated)
	}
	// Ids keep counting from where the snapshot left off.
	if id := restored.Record(predictRecord(1)); id != 4 {
		t.Fatalf("next id after restore = %d, want 4", id)
	}

	// File round trip via the atomic save path.
	path := filepath.Join(t.TempDir(), "sub", "audit.json")
	if err := led.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	fromFile := testLedger(t, Options{Provider: prov, Now: func() time.Time { return now }})
	if err := fromFile.LoadFile(path); err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if fromFile.Len() != 3 {
		t.Fatalf("LoadFile Len = %d, want 3", fromFile.Len())
	}
}

func TestLedgerSnapshotRejectsForeignFormat(t *testing.T) {
	led := testLedger(t, Options{})
	if err := led.ReadSnapshot(bytes.NewBufferString(`{"format":"caladrius-tsdb","version":1}` + "\n")); err == nil {
		t.Fatal("ReadSnapshot accepted a tsdb snapshot")
	}
}

func TestLedgerRecordCountersAndRunsMetric(t *testing.T) {
	reg := telemetry.NewRegistry()
	now := audT0
	led := testLedger(t, Options{Registry: reg, Now: func() time.Time { return now }})
	led.Record(predictRecord(1))
	led.Record(predictRecord(2))
	c := reg.Counter(MetricRuns, telemetry.Labels{"topology": "word-count", "model": "predict"})
	if c.Value() != 2 {
		t.Fatalf("%s = %g, want 2", MetricRuns, c.Value())
	}
}
