// Package audit implements Caladrius' prediction audit ledger: an
// append-only, capacity- and age-bounded record of every model run the
// service performs, plus a background resolver that later joins each
// record against the actuals the metrics provider observed and derives
// model-accuracy series from the comparison.
//
// The paper reports model error once, offline (§V, Fig. 8–12); a
// long-running service needs the same comparison continuously, because
// a calibration drifts the moment the workload does. Every run of the
// throughput/backpressure/CPU models records its inputs, the
// calibration snapshot (α/SP/ST per component) and the predicted
// quantities; the resolver computes per-record signed error and APE,
// rolling MAPE, and backpressure-classifier precision/recall, writing
// them as caladrius_model_* series that feed the accuracy-drift and
// stale-calibration SLO rules (telemetry.ModelAccuracyRules).
//
// The record hot path — Ledger.Record — performs no allocation: the
// ring is preallocated, ids are integers, and the run counters are
// interned per (topology, model).
package audit

import (
	"errors"
	"sync"
	"time"

	"caladrius/internal/core"
	"caladrius/internal/metrics"
	"caladrius/internal/telemetry"
	"caladrius/internal/tsdb"
)

// Series the ledger writes into the history store (and mirrors as
// registry gauges/counters). All carry topology and model labels
// except the calibration age, which is per topology.
const (
	// MetricRuns counts recorded model runs.
	MetricRuns = "caladrius_model_runs_total"
	// MetricResolved counts records the resolver joined with actuals.
	MetricResolved = "caladrius_model_resolved_total"
	// MetricAPE is the per-record absolute percentage error of the
	// predicted sink throughput, stamped at the record's creation time.
	MetricAPE = "caladrius_model_ape"
	// MetricMAPE is the rolling mean APE over the last RollingWindow
	// audited records.
	MetricMAPE = "caladrius_model_mape"
	// MetricSignedError is the rolling mean signed relative error
	// (positive = model over-predicts).
	MetricSignedError = "caladrius_model_signed_error"
	// MetricPrecision and MetricRecall grade the backpressure-risk
	// classifier against observed backpressure (cumulative).
	MetricPrecision = "caladrius_model_bp_precision"
	MetricRecall    = "caladrius_model_bp_recall"
	// MetricCalibrationAge is seconds since each topology's model was
	// last calibrated.
	MetricCalibrationAge = "caladrius_model_calibration_age_seconds"
)

// Risk outcomes of one resolved record's backpressure classification.
const (
	RiskTP = "tp" // predicted high, backpressure observed
	RiskFP = "fp" // predicted high, none observed
	RiskFN = "fn" // predicted low, backpressure observed
	RiskTN = "tn" // predicted low, none observed
)

// Predicted holds the quantities one model run predicted.
// SaturationSourceTPM is 0 when the topology cannot saturate (the
// model's +Inf; JSON cannot carry infinities).
type Predicted struct {
	SinkTPM             float64 `json:"sink_tpm"`
	OutputTPM           float64 `json:"output_tpm"`
	SaturationSourceTPM float64 `json:"saturation_source_tpm"`
	Bottleneck          string  `json:"bottleneck,omitempty"`
	Risk                string  `json:"backpressure_risk"`
	TotalCPUCores       float64 `json:"total_cpu_cores"`
	// Sink is the critical path's final component — the entity whose
	// observed throughput the resolver joins against.
	Sink string `json:"sink"`
}

// Observed holds the actuals the resolver measured over the record's
// observation window [Start, End).
type Observed struct {
	Start                   time.Time `json:"window_start"`
	End                     time.Time `json:"window_end"`
	Windows                 int       `json:"windows"`
	SinkTPM                 float64   `json:"sink_tpm"`
	BackpressureMsPerWindow float64   `json:"backpressure_ms_per_window"`
	Backpressure            bool      `json:"backpressure"`
	TotalCPUCores           float64   `json:"total_cpu_cores"`
}

// Errors holds one resolved record's error metrics. Relative errors
// follow the experiments package's relErr convention: divided by the
// observed value, or left absolute when the observed value is zero.
type Errors struct {
	// SinkSigned is (predicted − observed) / observed sink throughput;
	// positive means the model over-predicted.
	SinkSigned float64 `json:"sink_signed_error"`
	// SinkAPE is |predicted − observed| / observed sink throughput.
	SinkAPE float64 `json:"sink_ape"`
	// CPUSigned is the signed relative error of total predicted CPU.
	CPUSigned float64 `json:"cpu_signed_error"`
	// RiskOutcome classifies the backpressure prediction: tp|fp|fn|tn.
	RiskOutcome string `json:"risk_outcome"`
}

// Record is one immutable audit ledger entry.
type Record struct {
	ID        int64     `json:"id"`
	Topology  string    `json:"topology"`
	Model     string    `json:"model"` // "predict" or "plan"
	TraceID   string    `json:"trace_id,omitempty"`
	CreatedAt time.Time `json:"created_at"`
	// Tenant is the usage principal the run was attributed to (the
	// sanitized X-Caladrius-Tenant header), so incident bundles and
	// calctl accuracy can be sliced per tenant.
	Tenant string `json:"tenant,omitempty"`

	// SourceRateTPM and Parallelism are the model inputs.
	SourceRateTPM float64        `json:"source_rate_tpm"`
	Parallelism   map[string]int `json:"parallelism,omitempty"`
	// Counterfactual marks dry-runs of configurations or rates that
	// differ from what is actually deployed. The resolver still attaches
	// actuals for context, but computes no error metrics — comparing a
	// hypothetical plan against the running plan's throughput would
	// grade the model on a question it was not asked.
	Counterfactual bool `json:"counterfactual"`
	// Degraded marks runs whose calibration ran in degraded mode (the
	// observe window had to be widened, or stayed sparse, because the
	// metrics provider had gaps) — context for interpreting large APEs.
	Degraded bool `json:"degraded,omitempty"`
	// CachedCalibration marks runs served by the calibration cache (or
	// a calibration another concurrent run performed) instead of a
	// fresh fetch→calibrate pass of their own — context for both cache
	// effectiveness and for tracing a bad prediction back to the
	// calibration that produced it.
	CachedCalibration bool `json:"cached_calibration,omitempty"`

	// Calibration is the α/SP/ST/ψ snapshot the run was computed from
	// (shared across records of one calibration — do not mutate).
	Calibration []core.ComponentCalibration `json:"calibration,omitempty"`

	// Cost is the run's measured resource footprint; nil when the run
	// was not metered.
	Cost *core.RunCost `json:"cost,omitempty"`

	Predicted Predicted `json:"predicted"`

	Resolved   bool       `json:"resolved"`
	ResolvedAt *time.Time `json:"resolved_at,omitempty"`
	Observed   *Observed  `json:"observed,omitempty"`
	Errors     *Errors    `json:"errors,omitempty"`
}

// Options configures a Ledger.
type Options struct {
	// Provider supplies the actuals the resolver joins against.
	Provider metrics.Provider
	// History optionally receives the caladrius_model_* series (the
	// store the SLO rules evaluate). Nil skips series writes.
	History *tsdb.DB
	// Registry optionally receives the run counters and rolling gauges.
	// Nil skips instrument registration.
	Registry *telemetry.Registry
	// Now stamps records; align it with the service clock (the clock
	// the metrics provider's data lives on). Default: time.Now.
	Now func() time.Time
	// SeriesNow stamps the caladrius_model_* series appended into
	// History. It exists because a daemon may model a frozen or
	// simulated service clock while its self-monitoring history runs on
	// wall time — pass time.Now there so accuracy series land in the
	// SLO evaluation window. Default: Now.
	SeriesNow func() time.Time
	// Capacity bounds retained records (ring buffer). Default 4096.
	Capacity int
	// Retention evicts records older than this. Default 2h.
	Retention time.Duration
	// ObserveWindow is the trailing actuals window a record is resolved
	// against: [CreatedAt−ObserveWindow, CreatedAt). Default 5m.
	ObserveWindow time.Duration
	// MetricsWindow is the provider's rollup interval, used to convert
	// per-window counts to tuples/minute. Default 1m.
	MetricsWindow time.Duration
	// RollingWindow is how many audited records the rolling MAPE and
	// signed error average over. Default 20.
	RollingWindow int
	// SaturatedBpMs is the per-window backpressure time above which the
	// observation window counts as backpressured — the same threshold
	// calibration uses for saturation (default 10 000 ms).
	SaturatedBpMs float64
}

// modelKey indexes per-(topology, model) state without allocating.
type modelKey struct{ topology, model string }

// rollingStats accumulates resolver output for one (topology, model).
type rollingStats struct {
	ape    []float64 // last RollingWindow audited APEs, oldest first
	signed []float64
	// cumulative backpressure-classifier confusion counts
	tp, fp, fn, tn int
	resolved       int
	audited        int
}

// Ledger is the prediction audit ledger. All methods are safe for
// concurrent use.
type Ledger struct {
	provider      metrics.Provider
	db            *tsdb.DB
	reg           *telemetry.Registry
	now           func() time.Time
	seriesNow     func() time.Time
	capacity      int
	retention     time.Duration
	observeWindow time.Duration
	metricsWindow time.Duration
	rollingN      int
	satBpMs       float64

	mu   sync.Mutex
	recs []Record // preallocated ring
	head int      // index of the oldest record
	n    int
	seq  int64 // last assigned id; ids start at 1

	runs            map[modelKey]*telemetry.Counter
	resolvedC       map[modelKey]*telemetry.Counter
	rolling         map[modelKey]*rollingStats
	mapeG           map[modelKey]*telemetry.Gauge
	signedG         map[modelKey]*telemetry.Gauge
	precG           map[modelKey]*telemetry.Gauge
	recG            map[modelKey]*telemetry.Gauge
	calAgeG         map[string]*telemetry.Gauge
	lastCalibration map[string]time.Time
}

// NewLedger builds a ledger. Provider is required; History and
// Registry are optional surfaces.
func NewLedger(opts Options) (*Ledger, error) {
	if opts.Provider == nil {
		return nil, errors.New("audit: ledger needs a metrics provider")
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.SeriesNow == nil {
		opts.SeriesNow = opts.Now
	}
	if opts.Capacity <= 0 {
		opts.Capacity = 4096
	}
	if opts.Retention <= 0 {
		opts.Retention = 2 * time.Hour
	}
	if opts.ObserveWindow <= 0 {
		opts.ObserveWindow = 5 * time.Minute
	}
	if opts.MetricsWindow <= 0 {
		opts.MetricsWindow = time.Minute
	}
	if opts.RollingWindow <= 0 {
		opts.RollingWindow = 20
	}
	if opts.SaturatedBpMs <= 0 {
		opts.SaturatedBpMs = 10_000
	}
	if opts.Registry != nil {
		opts.Registry.SetHelp(MetricRuns, "Model runs recorded in the audit ledger, by topology and model.")
		opts.Registry.SetHelp(MetricResolved, "Audit records the resolver joined with observed actuals.")
		opts.Registry.SetHelp(MetricMAPE, "Rolling mean absolute percentage error of predicted sink throughput.")
		opts.Registry.SetHelp(MetricSignedError, "Rolling mean signed relative error of predicted sink throughput.")
		opts.Registry.SetHelp(MetricPrecision, "Backpressure-risk classifier precision (cumulative).")
		opts.Registry.SetHelp(MetricRecall, "Backpressure-risk classifier recall (cumulative).")
		opts.Registry.SetHelp(MetricCalibrationAge, "Seconds since the topology model was last calibrated.")
	}
	return &Ledger{
		provider:        opts.Provider,
		db:              opts.History,
		reg:             opts.Registry,
		now:             opts.Now,
		seriesNow:       opts.SeriesNow,
		capacity:        opts.Capacity,
		retention:       opts.Retention,
		observeWindow:   opts.ObserveWindow,
		metricsWindow:   opts.MetricsWindow,
		rollingN:        opts.RollingWindow,
		satBpMs:         opts.SaturatedBpMs,
		recs:            make([]Record, opts.Capacity),
		runs:            map[modelKey]*telemetry.Counter{},
		resolvedC:       map[modelKey]*telemetry.Counter{},
		rolling:         map[modelKey]*rollingStats{},
		mapeG:           map[modelKey]*telemetry.Gauge{},
		signedG:         map[modelKey]*telemetry.Gauge{},
		precG:           map[modelKey]*telemetry.Gauge{},
		recG:            map[modelKey]*telemetry.Gauge{},
		calAgeG:         map[string]*telemetry.Gauge{},
		lastCalibration: map[string]time.Time{},
	}, nil
}

// Record appends one audit record and returns its id. The caller fills
// everything except ID, CreatedAt (when zero) and resolution fields.
// This is the hot path: 0 allocs/op after the first record of each
// (topology, model) pair.
func (l *Ledger) Record(rec Record) int64 {
	l.mu.Lock()
	if rec.CreatedAt.IsZero() {
		rec.CreatedAt = l.now()
	}
	l.seq++
	rec.ID = l.seq
	rec.Resolved = false
	rec.ResolvedAt, rec.Observed, rec.Errors = nil, nil, nil
	l.evictLocked(rec.CreatedAt)
	if l.n < l.capacity {
		l.recs[(l.head+l.n)%l.capacity] = rec
		l.n++
	} else {
		l.recs[l.head] = rec
		l.head = (l.head + 1) % l.capacity
	}
	c := l.runs[modelKey{rec.Topology, rec.Model}]
	if c == nil && l.reg != nil {
		c = l.reg.Counter(MetricRuns, telemetry.Labels{"topology": rec.Topology, "model": rec.Model})
		l.runs[modelKey{rec.Topology, rec.Model}] = c
	}
	l.mu.Unlock()
	if c != nil {
		c.Inc()
	}
	return rec.ID
}

// evictLocked drops records older than the retention horizon.
func (l *Ledger) evictLocked(now time.Time) {
	horizon := now.Add(-l.retention)
	for l.n > 0 && l.recs[l.head].CreatedAt.Before(horizon) {
		l.recs[l.head] = Record{}
		l.head = (l.head + 1) % l.capacity
		l.n--
	}
}

// NoteCalibration marks the topology's model as freshly calibrated at
// the given time — the anchor of the stale-calibration gauge.
func (l *Ledger) NoteCalibration(topology string, at time.Time) {
	l.mu.Lock()
	l.lastCalibration[topology] = at
	g := l.calAgeGaugeLocked(topology)
	l.mu.Unlock()
	if g != nil {
		g.Set(0)
	}
}

func (l *Ledger) calAgeGaugeLocked(topology string) *telemetry.Gauge {
	if l.reg == nil {
		return nil
	}
	g := l.calAgeG[topology]
	if g == nil {
		g = l.reg.Gauge(MetricCalibrationAge, telemetry.Labels{"topology": topology})
		l.calAgeG[topology] = g
	}
	return g
}

// Collector returns a scrape-time hook that refreshes the calibration
// age gauges (ages grow between resolve cycles; gauges would otherwise
// go stale). Wire it via telemetry.Scraper.AddCollector.
func (l *Ledger) Collector() func() {
	return func() {
		now := l.now()
		l.mu.Lock()
		for topo, at := range l.lastCalibration {
			if g := l.calAgeGaugeLocked(topo); g != nil {
				g.Set(now.Sub(at).Seconds())
			}
		}
		l.mu.Unlock()
	}
}

// Get returns one record by id.
func (l *Ledger) Get(id int64) (Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec, _, ok := l.getLocked(id)
	return rec, ok
}

// getLocked resolves an id to its ring slot: ids are sequential, so a
// record's offset from the oldest retained id is its distance from
// head.
func (l *Ledger) getLocked(id int64) (Record, int, bool) {
	if l.n == 0 {
		return Record{}, 0, false
	}
	oldest := l.recs[l.head].ID
	if id < oldest || id > l.seq {
		return Record{}, 0, false
	}
	idx := (l.head + int(id-oldest)) % l.capacity
	return l.recs[idx], idx, true
}

// Filter selects records for List. Zero fields match everything.
type Filter struct {
	Topology string
	Model    string
	Tenant   string
	// Resolved filters by resolution state when non-nil.
	Resolved *bool
	// Since/Until bound CreatedAt (inclusive since, exclusive until).
	Since, Until time.Time
	// Limit caps the result length (newest first). 0 means 100.
	Limit int
}

// List returns matching records, newest first.
func (l *Ledger) List(f Filter) []Record {
	if f.Limit <= 0 {
		f.Limit = 100
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, 0, min(f.Limit, l.n))
	for i := l.n - 1; i >= 0 && len(out) < f.Limit; i-- {
		rec := l.recs[(l.head+i)%l.capacity]
		if f.Topology != "" && rec.Topology != f.Topology {
			continue
		}
		if f.Model != "" && rec.Model != f.Model {
			continue
		}
		if f.Tenant != "" && rec.Tenant != f.Tenant {
			continue
		}
		if f.Resolved != nil && rec.Resolved != *f.Resolved {
			continue
		}
		if !f.Since.IsZero() && rec.CreatedAt.Before(f.Since) {
			continue
		}
		if !f.Until.IsZero() && !rec.CreatedAt.Before(f.Until) {
			continue
		}
		out = append(out, rec)
	}
	return out
}

// Len returns the number of retained records.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Stats summarises the resolver's accumulated accuracy for one
// (topology, model) pair.
type Stats struct {
	Topology string `json:"topology"`
	Model    string `json:"model"`
	// Resolved counts records joined with actuals; Audited counts the
	// non-counterfactual subset that fed the error metrics.
	Resolved int `json:"resolved"`
	Audited  int `json:"audited"`
	// MAPE and SignedError are the rolling means over the last
	// RollingWindow audited records; nil before the first.
	MAPE        *float64 `json:"mape,omitempty"`
	SignedError *float64 `json:"signed_error,omitempty"`
	// Confusion counts and derived precision/recall of the
	// backpressure-risk classifier (cumulative).
	TP        int     `json:"tp"`
	FP        int     `json:"fp"`
	FN        int     `json:"fn"`
	TN        int     `json:"tn"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	// LastCalibrated is when the topology model was last calibrated,
	// when known.
	LastCalibrated *time.Time `json:"last_calibrated,omitempty"`
}

// Stats returns per-(topology, model) accuracy summaries, sorted.
func (l *Ledger) Stats() []Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Stats, 0, len(l.rolling))
	for key, rs := range l.rolling {
		s := Stats{
			Topology: key.topology,
			Model:    key.model,
			Resolved: rs.resolved,
			Audited:  rs.audited,
			TP:       rs.tp, FP: rs.fp, FN: rs.fn, TN: rs.tn,
		}
		s.Precision, s.Recall = PrecisionRecall(rs.tp, rs.fp, rs.fn)
		if len(rs.ape) > 0 {
			m, sg := mean(rs.ape), mean(rs.signed)
			s.MAPE, s.SignedError = &m, &sg
		}
		if at, ok := l.lastCalibration[key.topology]; ok {
			t := at
			s.LastCalibrated = &t
		}
		out = append(out, s)
	}
	sortStats(out)
	return out
}

func sortStats(s []Stats) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && (s[j].Topology < s[j-1].Topology ||
			(s[j].Topology == s[j-1].Topology && s[j].Model < s[j-1].Model)); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// mean sums left-to-right (oldest first) — the order the closed-loop
// accuracy test replicates, so results match bit-for-bit.
func mean(vs []float64) float64 {
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// PrecisionRecall derives the backpressure classifier's precision and
// recall from confusion counts. Empty denominators — no predicted
// positives (precision) or no observed positives (recall) — grade as a
// perfect 1: a topology that never backpressures and a model that
// never cries wolf are both vacuously right.
func PrecisionRecall(tp, fp, fn int) (precision, recall float64) {
	precision, recall = 1, 1
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	return precision, recall
}
