package audit

import (
	"math"
	"testing"
	"time"

	"caladrius/internal/core"
	"caladrius/internal/metrics"
	"caladrius/internal/telemetry"
	"caladrius/internal/tsdb"
)

// TestPrecisionRecall grades the backpressure-risk classifier scoring
// against hand-computed confusion matrices, including the
// zero-positive edge cases where a denominator is empty.
func TestPrecisionRecall(t *testing.T) {
	cases := []struct {
		name         string
		tp, fp, fn   int
		wantP, wantR float64
	}{
		// 3 correct alarms, 1 false alarm, 2 missed: P = 3/4, R = 3/5.
		{name: "mixed", tp: 3, fp: 1, fn: 2, wantP: 0.75, wantR: 0.6},
		// All alarms correct and none missed.
		{name: "perfect", tp: 5, fp: 0, fn: 0, wantP: 1, wantR: 1},
		// Every alarm false, nothing to recall: P = 0/2, R vacuous.
		{name: "only false alarms", tp: 0, fp: 2, fn: 0, wantP: 0, wantR: 1},
		// Never alarmed but backpressure happened: P vacuous, R = 0/3.
		{name: "only misses", tp: 0, fp: 0, fn: 3, wantP: 1, wantR: 0},
		// Zero positives anywhere (all-TN run): both vacuously perfect.
		{name: "no positives", tp: 0, fp: 0, fn: 0, wantP: 1, wantR: 1},
		{name: "half and half", tp: 1, fp: 1, fn: 1, wantP: 0.5, wantR: 0.5},
		// 7 of 10 alarms real, 7 of 21 events caught.
		{name: "asymmetric", tp: 7, fp: 3, fn: 14, wantP: 0.7, wantR: 1.0 / 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, r := PrecisionRecall(tc.tp, tc.fp, tc.fn)
			if math.Abs(p-tc.wantP) > 1e-15 || math.Abs(r-tc.wantR) > 1e-15 {
				t.Fatalf("PrecisionRecall(%d, %d, %d) = %g, %g, want %g, %g",
					tc.tp, tc.fp, tc.fn, p, r, tc.wantP, tc.wantR)
			}
		})
	}
}

func TestComputeErrors(t *testing.T) {
	cases := []struct {
		name        string
		pred        Predicted
		obs         Observed
		wantSigned  float64
		wantAPE     float64
		wantOutcome string
	}{
		{
			name:        "over-prediction low risk no bp",
			pred:        Predicted{SinkTPM: 120, Risk: "low"},
			obs:         Observed{SinkTPM: 100},
			wantSigned:  0.2,
			wantAPE:     0.2,
			wantOutcome: RiskTN,
		},
		{
			name:        "under-prediction high risk with bp",
			pred:        Predicted{SinkTPM: 80, Risk: "high"},
			obs:         Observed{SinkTPM: 100, Backpressure: true},
			wantSigned:  -0.2,
			wantAPE:     0.2,
			wantOutcome: RiskTP,
		},
		{
			name:        "false alarm",
			pred:        Predicted{SinkTPM: 100, Risk: "high"},
			obs:         Observed{SinkTPM: 100},
			wantSigned:  0,
			wantAPE:     0,
			wantOutcome: RiskFP,
		},
		{
			name:        "missed backpressure",
			pred:        Predicted{SinkTPM: 100, Risk: "low"},
			obs:         Observed{SinkTPM: 100, Backpressure: true},
			wantSigned:  0,
			wantAPE:     0,
			wantOutcome: RiskFN,
		},
		{
			// relErr convention: observed zero leaves the error absolute.
			name:        "zero observed",
			pred:        Predicted{SinkTPM: 7, Risk: "low"},
			obs:         Observed{SinkTPM: 0},
			wantSigned:  7,
			wantAPE:     7,
			wantOutcome: RiskTN,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := computeErrors(tc.pred, tc.obs)
			if e.SinkSigned != tc.wantSigned || e.SinkAPE != tc.wantAPE || e.RiskOutcome != tc.wantOutcome {
				t.Fatalf("computeErrors = %+v, want signed %g ape %g outcome %s",
					e, tc.wantSigned, tc.wantAPE, tc.wantOutcome)
			}
		})
	}
}

// TestResolveOnceJoins walks a record through the full join: trailing
// window selection, count→TPM scaling, backpressure classification and
// CPU aggregation.
func TestResolveOnceJoins(t *testing.T) {
	now := audT0
	prov := &stubProvider{
		windows: map[string][]metrics.Window{
			"counter": sinkWindows(audT0, 5, 250_000),
		},
		bp: []tsdb.Point{
			{T: audT0.Add(-4 * time.Minute), V: 20_000},
			{T: audT0.Add(-2 * time.Minute), V: 30_000},
		},
	}
	db := tsdb.New(time.Hour)
	reg := telemetry.NewRegistry()
	led := testLedger(t, Options{
		Provider: prov, History: db, Registry: reg,
		Now: func() time.Time { return now },
	})

	rec := predictRecord(275_000) // observed 250k/window → 10% over
	rec.Predicted.Risk = "high"
	rec.Calibration = []core.ComponentCalibration{{Component: "counter", Parallelism: 3, Alpha: 1}}
	id := led.Record(rec)
	if n := led.ResolveOnce(now); n != 1 {
		t.Fatalf("ResolveOnce = %d, want 1", n)
	}
	got, _ := led.Get(id)
	if !got.Resolved || got.Observed == nil || got.Errors == nil {
		t.Fatalf("record not fully resolved: %+v", got)
	}
	// MetricsWindow is 1m, so per-window counts are already per-minute.
	if got.Observed.SinkTPM != 250_000 {
		t.Fatalf("observed sink TPM = %g, want 250000", got.Observed.SinkTPM)
	}
	if got.Observed.Windows != 5 {
		t.Fatalf("observed windows = %d, want 5", got.Observed.Windows)
	}
	// Mean backpressure (20000+30000)/2 = 25000 ≥ 10000 threshold.
	if !got.Observed.Backpressure || got.Observed.BackpressureMsPerWindow != 25_000 {
		t.Fatalf("observed backpressure = %+v", got.Observed)
	}
	if got.Errors.RiskOutcome != RiskTP {
		t.Fatalf("risk outcome = %s, want tp", got.Errors.RiskOutcome)
	}
	if got.Errors.SinkAPE != 0.1 || got.Errors.SinkSigned != 0.1 {
		t.Fatalf("errors = %+v, want ape/signed 0.1", got.Errors)
	}
	// The calibrated component's CPU load joins into observed cores.
	if got.Observed.TotalCPUCores != 2 {
		t.Fatalf("observed CPU cores = %g, want 2", got.Observed.TotalCPUCores)
	}

	// Unified clocks: the APE point lands at the record's creation time.
	pt, err := db.Latest(MetricAPE, tsdb.Labels{"topology": "word-count", "model": "predict"})
	if err != nil {
		t.Fatalf("Latest(%s): %v", MetricAPE, err)
	}
	if !pt.T.Equal(audT0) || pt.V != 0.1 {
		t.Fatalf("APE point = %+v, want 0.1 at %s", pt, audT0)
	}
	if pt, err := db.Latest(MetricMAPE, nil); err != nil || pt.V != 0.1 {
		t.Fatalf("MAPE point = %+v, %v", pt, err)
	}
	c := reg.Counter(MetricResolved, telemetry.Labels{"topology": "word-count", "model": "predict"})
	if c.Value() != 1 {
		t.Fatalf("%s = %g, want 1", MetricResolved, c.Value())
	}
}

// TestResolvePendingRetry: a record whose observation window is still
// empty stays pending and resolves on a later cycle once data exists.
func TestResolvePendingRetry(t *testing.T) {
	now := audT0
	prov := &stubProvider{windows: map[string][]metrics.Window{}}
	led := testLedger(t, Options{Provider: prov, Now: func() time.Time { return now }})
	id := led.Record(predictRecord(100))
	if n := led.ResolveOnce(now); n != 0 {
		t.Fatalf("ResolveOnce with no data = %d, want 0", n)
	}
	if rec, _ := led.Get(id); rec.Resolved {
		t.Fatal("record resolved without data")
	}
	prov.windows["counter"] = sinkWindows(audT0, 5, 100)
	if n := led.ResolveOnce(now); n != 1 {
		t.Fatalf("ResolveOnce after data arrived = %d, want 1", n)
	}
}

// TestResolveCounterfactual: what-if runs get actuals for context but
// no grade, and stay out of the rolling accuracy stats.
func TestResolveCounterfactual(t *testing.T) {
	now := audT0
	prov := &stubProvider{windows: map[string][]metrics.Window{
		"counter": sinkWindows(audT0, 5, 100),
	}}
	led := testLedger(t, Options{Provider: prov, Now: func() time.Time { return now }})
	rec := predictRecord(900) // wildly off — must not pollute MAPE
	rec.Counterfactual = true
	id := led.Record(rec)
	if n := led.ResolveOnce(now); n != 1 {
		t.Fatalf("ResolveOnce = %d, want 1", n)
	}
	got, _ := led.Get(id)
	if !got.Resolved || got.Observed == nil {
		t.Fatalf("counterfactual not resolved with actuals: %+v", got)
	}
	if got.Errors != nil {
		t.Fatalf("counterfactual was graded: %+v", got.Errors)
	}
	stats := led.Stats()
	if len(stats) != 1 || stats[0].Audited != 0 || stats[0].MAPE != nil {
		t.Fatalf("counterfactual leaked into stats: %+v", stats)
	}
}

// TestResolveRollingWindowTrim: the rolling MAPE averages only the
// last RollingWindow audited records.
func TestResolveRollingWindowTrim(t *testing.T) {
	now := audT0
	prov := &stubProvider{windows: map[string][]metrics.Window{
		"counter": sinkWindows(audT0.Add(10*time.Minute), 20, 100),
	}}
	led := testLedger(t, Options{Provider: prov, Now: func() time.Time { return now }, RollingWindow: 3, ObserveWindow: 5 * time.Minute})
	// APEs 0.1, 0.2, 0.3, 0.4, 0.5 in creation order.
	for i := 1; i <= 5; i++ {
		led.Record(predictRecord(100 + 10*float64(i)))
		now = now.Add(time.Minute)
	}
	if n := led.ResolveOnce(now); n != 5 {
		t.Fatalf("ResolveOnce = %d, want 5", n)
	}
	stats := led.Stats()
	if len(stats) != 1 || stats[0].MAPE == nil {
		t.Fatalf("Stats = %+v", stats)
	}
	want := (0.3 + 0.4 + 0.5) / 3
	if math.Abs(*stats[0].MAPE-want) > 1e-12 {
		t.Fatalf("rolling MAPE = %g, want %g (last 3 only)", *stats[0].MAPE, want)
	}
	if stats[0].Audited != 5 || stats[0].Resolved != 5 {
		t.Fatalf("counts = %+v", stats[0])
	}
	if stats[0].TN != 5 {
		t.Fatalf("TN = %d, want 5 (no backpressure anywhere)", stats[0].TN)
	}
}

// TestResolveDivergedSeriesClock: with a frozen record clock and a
// wall series clock, accuracy points land on the series clock so SLO
// windows can see them.
func TestResolveDivergedSeriesClock(t *testing.T) {
	recNow := audT0
	wall := audT0.Add(200 * 24 * time.Hour)
	prov := &stubProvider{windows: map[string][]metrics.Window{
		"counter": sinkWindows(audT0, 5, 100),
	}}
	db := tsdb.New(500 * 24 * time.Hour)
	led := testLedger(t, Options{
		Provider:  prov,
		History:   db,
		Now:       func() time.Time { return recNow },
		SeriesNow: func() time.Time { return wall },
	})
	led.Record(predictRecord(110))
	if n := led.ResolveOnce(recNow); n != 1 {
		t.Fatalf("ResolveOnce = %d, want 1", n)
	}
	for _, m := range []string{MetricAPE, MetricMAPE} {
		pt, err := db.Latest(m, nil)
		if err != nil {
			t.Fatalf("Latest(%s): %v", m, err)
		}
		if !pt.T.Equal(wall) {
			t.Fatalf("%s stamped at %s, want series clock %s", m, pt.T, wall)
		}
	}
}
