package audit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// Ledger persistence mirrors the tsdb snapshot format: a JSON header
// line followed by one JSON line per record, oldest first, so a
// restarted daemon resumes with its audit history (and the rolling
// accuracy state replayed from the resolved records).

const (
	snapshotFormat  = "caladrius-audit"
	snapshotVersion = 1
)

type snapshotHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Records int    `json:"records"`
	// Calibrations carries the last-calibration marks per topology.
	Calibrations map[string]time.Time `json:"calibrations,omitempty"`
}

// WriteSnapshot streams the ledger to w: header, then records oldest
// first.
func (l *Ledger) WriteSnapshot(w io.Writer) error {
	l.mu.Lock()
	recs := make([]Record, 0, l.n)
	for i := 0; i < l.n; i++ {
		recs = append(recs, l.recs[(l.head+i)%l.capacity])
	}
	cals := make(map[string]time.Time, len(l.lastCalibration))
	for topo, at := range l.lastCalibration {
		cals[topo] = at
	}
	l.mu.Unlock()

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(snapshotHeader{Format: snapshotFormat, Version: snapshotVersion, Records: len(recs), Calibrations: cals}); err != nil {
		return err
	}
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshot loads records from r into the ledger, replacing its
// contents. Records beyond capacity keep only the newest; resolved
// non-counterfactual records replay into the rolling accuracy state in
// order, so gauges and stats resume where the previous process left
// off.
func (l *Ledger) ReadSnapshot(r io.Reader) error {
	br := bufio.NewReader(r)
	dec := json.NewDecoder(br)
	var hdr snapshotHeader
	if err := dec.Decode(&hdr); err != nil {
		return fmt.Errorf("audit: snapshot header: %w", err)
	}
	if hdr.Format != snapshotFormat {
		return fmt.Errorf("audit: not an audit snapshot (format %q)", hdr.Format)
	}
	if hdr.Version != snapshotVersion {
		return fmt.Errorf("audit: unsupported snapshot version %d", hdr.Version)
	}
	recs := make([]Record, 0, hdr.Records)
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				break
			}
			return fmt.Errorf("audit: snapshot record: %w", err)
		}
		recs = append(recs, rec)
	}
	if len(recs) > l.capacity {
		recs = recs[len(recs)-l.capacity:]
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	for i := range l.recs {
		l.recs[i] = Record{}
	}
	l.head, l.n = 0, 0
	l.rolling = map[modelKey]*rollingStats{}
	for i, rec := range recs {
		l.recs[i] = rec
		l.n++
		if rec.ID > l.seq {
			l.seq = rec.ID
		}
		key := modelKey{rec.Topology, rec.Model}
		if rec.Resolved {
			rs := l.rolling[key]
			if rs == nil {
				rs = &rollingStats{}
				l.rolling[key] = rs
			}
			rs.resolved++
			if e := rec.Errors; e != nil {
				rs.audited++
				rs.ape = appendTrim(rs.ape, e.SinkAPE, l.rollingN)
				rs.signed = appendTrim(rs.signed, e.SinkSigned, l.rollingN)
				switch e.RiskOutcome {
				case RiskTP:
					rs.tp++
				case RiskFP:
					rs.fp++
				case RiskFN:
					rs.fn++
				case RiskTN:
					rs.tn++
				}
			}
		}
	}
	for topo, at := range hdr.Calibrations {
		l.lastCalibration[topo] = at
	}
	return nil
}

// SaveFile atomically writes the ledger snapshot to path.
func (l *Ledger) SaveFile(path string) error {
	tmp := path + ".tmp"
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := l.WriteSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a ledger snapshot from path.
func (l *Ledger) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return l.ReadSnapshot(f)
}
