package audit

import (
	"errors"
	"time"

	"caladrius/internal/metrics"
	"caladrius/internal/telemetry"
	"caladrius/internal/tsdb"
)

// The resolver: joins pending audit records against observed actuals.
//
// Join semantics. A record created at time T is compared against the
// trailing observation window [T−ObserveWindow, T): the actuals the
// metrics provider had already rolled up when the prediction was made.
// This measures exactly what drift observability needs — how far the
// model's view of the topology has diverged from its live behaviour —
// and lets records resolve immediately instead of waiting wall-clock
// time for a future window (which a service with a frozen demo clock,
// or one predicting hypothetical rates, could never fill).
//
// Per record the resolver reads the critical-path sink component's
// windows (observed sink throughput = mean Execute per window scaled
// to tuples/minute), the topology backpressure series (observed
// backpressure = mean ms/window ≥ SaturatedBpMs, the calibration
// saturation threshold), and the calibrated components' CPU loads.
// Records whose window has no data yet stay pending and are retried
// on the next cycle.
//
// Counterfactual records (hypothetical parallelisms or rates) get
// Observed attached for context but no Errors: grading a what-if
// prediction against the deployed configuration's actuals would score
// the model on a question it was not asked.

// resolution is one record's computed join, carried out of the
// unlocked provider-query phase and applied under the ledger lock.
type resolution struct {
	id       int64
	observed Observed
	errs     *Errors
}

// ResolveOnce runs one resolver cycle at the given instant: joins
// every pending record whose observation window has data, updates the
// rolling accuracy state, refreshes gauges, and appends the
// caladrius_model_* series. It returns the number of records resolved.
func (l *Ledger) ResolveOnce(now time.Time) int {
	// Copy pending records out so provider queries run unlocked.
	l.mu.Lock()
	pending := make([]Record, 0, l.n)
	for i := 0; i < l.n; i++ {
		rec := l.recs[(l.head+i)%l.capacity]
		if !rec.Resolved && !rec.CreatedAt.After(now) {
			pending = append(pending, rec)
		}
	}
	l.mu.Unlock()
	if len(pending) == 0 {
		l.emitSeries(now, l.seriesNow())
		return 0
	}

	resolutions := make([]resolution, 0, len(pending))
	for _, rec := range pending {
		obs, ok := l.observe(rec)
		if !ok {
			continue
		}
		res := resolution{id: rec.ID, observed: obs}
		if !rec.Counterfactual {
			res.errs = computeErrors(rec.Predicted, obs)
		}
		resolutions = append(resolutions, res)
	}

	// Apply under lock, oldest first — the rolling window order the
	// closed-loop accuracy test replicates.
	type apePoint struct {
		key modelKey
		at  time.Time
		ape float64
	}
	var apes []apePoint
	l.mu.Lock()
	applied := 0
	for _, res := range resolutions {
		rec, idx, ok := l.getLocked(res.id)
		if !ok || rec.Resolved {
			continue // evicted or raced
		}
		at := now
		obs := res.observed
		l.recs[idx].Resolved = true
		l.recs[idx].ResolvedAt = &at
		l.recs[idx].Observed = &obs
		l.recs[idx].Errors = res.errs
		key := modelKey{rec.Topology, rec.Model}
		rs := l.rolling[key]
		if rs == nil {
			rs = &rollingStats{}
			l.rolling[key] = rs
		}
		rs.resolved++
		if res.errs != nil {
			rs.audited++
			rs.ape = appendTrim(rs.ape, res.errs.SinkAPE, l.rollingN)
			rs.signed = appendTrim(rs.signed, res.errs.SinkSigned, l.rollingN)
			switch res.errs.RiskOutcome {
			case RiskTP:
				rs.tp++
			case RiskFP:
				rs.fp++
			case RiskFN:
				rs.fn++
			case RiskTN:
				rs.tn++
			}
			apes = append(apes, apePoint{key: key, at: rec.CreatedAt, ape: res.errs.SinkAPE})
		}
		applied++
	}
	// Snapshot the per-key rolling state for the unlocked gauge/series
	// writes below.
	counters := make([]*telemetry.Counter, 0, applied)
	for _, res := range resolutions {
		if rec, _, ok := l.getLocked(res.id); ok && rec.Resolved {
			counters = append(counters, l.resolvedCounterLocked(modelKey{rec.Topology, rec.Model}))
		}
	}
	l.mu.Unlock()

	for _, c := range counters {
		if c != nil {
			c.Inc()
		}
	}
	seriesAt := l.seriesNow()
	if l.db != nil {
		for _, p := range apes {
			// On a unified clock the record's creation instant is the
			// natural stamp; when the series clock diverges (frozen demo
			// clock) use the cycle instant so points stay in window.
			at := p.at
			if !seriesAt.Equal(now) {
				at = seriesAt
			}
			l.db.Append(MetricAPE, tsdb.Labels{"topology": p.key.topology, "model": p.key.model}, at, p.ape)
		}
	}
	l.emitSeries(now, seriesAt)
	return applied
}

func (l *Ledger) resolvedCounterLocked(key modelKey) *telemetry.Counter {
	c := l.resolvedC[key]
	if c == nil && l.reg != nil {
		c = l.reg.Counter(MetricResolved, telemetry.Labels{"topology": key.topology, "model": key.model})
		l.resolvedC[key] = c
	}
	return c
}

// observe queries the provider for one record's actuals. ok is false
// when the observation window has no usable data yet (retry later).
func (l *Ledger) observe(rec Record) (Observed, bool) {
	start := rec.CreatedAt.Add(-l.observeWindow)
	end := rec.CreatedAt
	sink := rec.Predicted.Sink
	if sink == "" {
		sink = rec.Predicted.Bottleneck
	}
	if sink == "" {
		return Observed{}, false
	}
	ws, err := l.provider.ComponentWindows(rec.Topology, sink, start, end)
	if err != nil || len(ws) == 0 {
		return Observed{}, false
	}
	ss, err := metrics.Summarise(ws, 0)
	if err != nil {
		return Observed{}, false
	}
	obs := Observed{
		Start:   start,
		End:     end,
		Windows: ss.Windows,
		// Execute is a raw count per rollup window; scale to
		// tuples/minute, the model's unit.
		SinkTPM: ss.Execute * float64(time.Minute) / float64(l.metricsWindow),
	}
	// Backpressure: mean per-window topology backpressure time against
	// the calibration saturation threshold. A missing series means the
	// writer observed none.
	if pts, err := l.provider.TopologyBackpressureMs(rec.Topology, start, end); err == nil && len(pts) > 0 {
		var sum float64
		for _, p := range pts {
			sum += p.V
		}
		obs.BackpressureMsPerWindow = sum / float64(len(pts))
	} else if err != nil && !errors.Is(err, metrics.ErrNoData) {
		return Observed{}, false
	}
	obs.Backpressure = obs.BackpressureMsPerWindow >= l.satBpMs
	// CPU: sum observed component loads over the calibrated components
	// (the same set TotalCPU was predicted over).
	for _, cc := range rec.Calibration {
		cws, err := l.provider.ComponentWindows(rec.Topology, cc.Component, start, end)
		if err != nil || len(cws) == 0 {
			continue
		}
		if css, err := metrics.Summarise(cws, 0); err == nil {
			obs.TotalCPUCores += css.CPULoad
		}
	}
	return obs, true
}

// computeErrors derives one audited record's error metrics. Relative
// errors follow the experiments package's relErr convention exactly:
// divided by the observed value, absolute when it is zero.
func computeErrors(pred Predicted, obs Observed) *Errors {
	e := &Errors{
		SinkAPE:    relErr(pred.SinkTPM, obs.SinkTPM),
		SinkSigned: signedRelErr(pred.SinkTPM, obs.SinkTPM),
		CPUSigned:  signedRelErr(pred.TotalCPUCores, obs.TotalCPUCores),
	}
	predHigh := pred.Risk == "high"
	switch {
	case predHigh && obs.Backpressure:
		e.RiskOutcome = RiskTP
	case predHigh && !obs.Backpressure:
		e.RiskOutcome = RiskFP
	case !predHigh && obs.Backpressure:
		e.RiskOutcome = RiskFN
	default:
		e.RiskOutcome = RiskTN
	}
	return e
}

// relErr is |got−want|/want, or |got| when want is zero — the same
// convention as the experiments package, which the closed-loop
// accuracy test depends on matching to 1e-9.
func relErr(got, want float64) float64 {
	d := got - want
	if d < 0 {
		d = -d
	}
	if want == 0 {
		return d
	}
	return d / want
}

func signedRelErr(got, want float64) float64 {
	if want == 0 {
		return got
	}
	return (got - want) / want
}

// appendTrim appends v and keeps only the last n values.
func appendTrim(s []float64, v float64, n int) []float64 {
	s = append(s, v)
	if len(s) > n {
		copy(s, s[len(s)-n:])
		s = s[:n]
	}
	return s
}

// emitSeries refreshes the rolling gauges and appends the rolling
// caladrius_model_* series. now is the record clock (ages are computed
// on it); seriesAt stamps the appended points.
func (l *Ledger) emitSeries(now, seriesAt time.Time) {
	type keyState struct {
		key                     modelKey
		mape, signed, prec, rec float64
		haveRolling             bool
		mapeG, signedG, pG, rG  *telemetry.Gauge
	}
	l.mu.Lock()
	states := make([]keyState, 0, len(l.rolling))
	for key, rs := range l.rolling {
		st := keyState{key: key}
		if len(rs.ape) > 0 {
			st.haveRolling = true
			st.mape = mean(rs.ape)
			st.signed = mean(rs.signed)
		}
		st.prec, st.rec = PrecisionRecall(rs.tp, rs.fp, rs.fn)
		if rs.audited > 0 && l.reg != nil {
			labels := telemetry.Labels{"topology": key.topology, "model": key.model}
			if l.mapeG[key] == nil {
				l.mapeG[key] = l.reg.Gauge(MetricMAPE, labels)
				l.signedG[key] = l.reg.Gauge(MetricSignedError, labels)
				l.precG[key] = l.reg.Gauge(MetricPrecision, labels)
				l.recG[key] = l.reg.Gauge(MetricRecall, labels)
			}
			st.mapeG, st.signedG = l.mapeG[key], l.signedG[key]
			st.pG, st.rG = l.precG[key], l.recG[key]
		}
		states = append(states, st)
	}
	ages := make(map[string]float64, len(l.lastCalibration))
	ageGauges := make(map[string]*telemetry.Gauge, len(l.lastCalibration))
	for topo, at := range l.lastCalibration {
		ages[topo] = now.Sub(at).Seconds()
		ageGauges[topo] = l.calAgeGaugeLocked(topo)
	}
	l.mu.Unlock()

	for _, st := range states {
		if !st.haveRolling {
			continue
		}
		if st.mapeG != nil {
			st.mapeG.Set(st.mape)
			st.signedG.Set(st.signed)
			st.pG.Set(st.prec)
			st.rG.Set(st.rec)
		}
		if l.db != nil {
			labels := tsdb.Labels{"topology": st.key.topology, "model": st.key.model}
			l.db.Append(MetricMAPE, labels, seriesAt, st.mape)
			l.db.Append(MetricSignedError, labels, seriesAt, st.signed)
			l.db.Append(MetricPrecision, labels, seriesAt, st.prec)
			l.db.Append(MetricRecall, labels, seriesAt, st.rec)
		}
	}
	for topo, age := range ages {
		if g := ageGauges[topo]; g != nil {
			g.Set(age)
		}
		if l.db != nil {
			l.db.Append(MetricCalibrationAge, tsdb.Labels{"topology": topo}, seriesAt, age)
		}
	}
}

// Run ticks ResolveOnce every interval until the context is done,
// stamping each cycle with the ledger clock.
func (l *Ledger) Run(done <-chan struct{}, interval time.Duration) {
	if interval <= 0 {
		interval = 15 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			l.ResolveOnce(l.now())
		}
	}
}
