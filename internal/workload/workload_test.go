package workload

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCorpusDeterministic(t *testing.T) {
	a := NewCorpus(CorpusOptions{Seed: 1})
	b := NewCorpus(CorpusOptions{Seed: 1})
	for i := 0; i < 100; i++ {
		sa, sb := a.Sentence(), b.Sentence()
		if sa != sb {
			t.Fatalf("sentence %d differs: %q vs %q", i, sa, sb)
		}
	}
	c := NewCorpus(CorpusOptions{Seed: 2})
	same := true
	for i := 0; i < 20; i++ {
		if a.Sentence() != c.Sentence() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestCorpusMeanSentenceLength(t *testing.T) {
	got := MeanSentenceLength(CorpusOptions{Seed: 7}, 50000)
	if math.Abs(got-GatsbyMeanSentenceLength) > 0.1 {
		t.Errorf("mean sentence length = %.3f, want ≈ %.3f", got, GatsbyMeanSentenceLength)
	}
}

func TestCorpusWordsAreValid(t *testing.T) {
	c := NewCorpus(CorpusOptions{Seed: 3, VocabularySize: 100})
	seen := map[string]bool{}
	for i := 0; i < 2000; i++ {
		for _, w := range Split(c.Sentence()) {
			if w == "" || strings.ContainsAny(w, " \t\n") {
				t.Fatalf("bad word %q", w)
			}
			seen[w] = true
		}
	}
	if len(seen) < 20 || len(seen) > 100 {
		t.Errorf("distinct words = %d, want within (20, 100]", len(seen))
	}
}

func TestCorpusZipfSkew(t *testing.T) {
	c := NewCorpus(CorpusOptions{Seed: 5, VocabularySize: 1000})
	counts := map[string]int{}
	total := 0
	for i := 0; i < 5000; i++ {
		for _, w := range Split(c.Sentence()) {
			counts[w]++
			total++
		}
	}
	// The most frequent word should be a visible head of the
	// distribution (Zipf), not uniform (~0.1%).
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if frac := float64(max) / float64(total); frac < 0.05 {
		t.Errorf("head word fraction = %.4f, expected Zipf head > 0.05", frac)
	}
}

func TestSyntheticWordUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 10000; i++ {
		w := syntheticWord(i)
		if seen[w] {
			t.Fatalf("rank %d repeats word %q", i, w)
		}
		seen[w] = true
	}
}

func TestPoissonMean(t *testing.T) {
	c := NewCorpus(CorpusOptions{Seed: 11})
	for _, lambda := range []float64{0.5, 3, 10, 50} {
		var sum float64
		n := 20000
		for i := 0; i < n; i++ {
			sum += float64(poisson(c.rng, lambda))
		}
		mean := sum / float64(n)
		if math.Abs(mean-lambda) > 0.05*lambda+0.1 {
			t.Errorf("poisson(%g) mean = %g", lambda, mean)
		}
	}
	if poisson(c.rng, 0) != 0 || poisson(c.rng, -1) != 0 {
		t.Error("non-positive lambda should give 0")
	}
}

var tStart = time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)

func TestTrafficGenerateDeterministic(t *testing.T) {
	spec := TrafficSpec{Base: 1000, DailyAmplitude: 0.3, NoiseStd: 0.05, Seed: 9}
	a := spec.Generate(tStart, 500, time.Minute)
	b := spec.Generate(tStart, 500, time.Minute)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestTrafficSeasonalityShape(t *testing.T) {
	spec := TrafficSpec{Base: 1000, DailyAmplitude: 0.5, Seed: 1}
	pts := spec.Generate(tStart, 24*60, time.Minute)
	if len(pts) != 24*60 {
		t.Fatalf("points = %d", len(pts))
	}
	// Peak near hour 6 (sin max at quarter day), trough near hour 18.
	valueAt := func(h int) float64 { return pts[h*60].V }
	if !(valueAt(6) > valueAt(0) && valueAt(6) > valueAt(18)) {
		t.Errorf("seasonal shape wrong: v0=%g v6=%g v18=%g", valueAt(0), valueAt(6), valueAt(18))
	}
	if math.Abs(valueAt(6)-1500) > 20 {
		t.Errorf("peak = %g, want ≈1500", valueAt(6))
	}
}

func TestTrafficTrendAndShift(t *testing.T) {
	spec := TrafficSpec{Base: 1000, TrendPerDay: 100, LevelShiftAt: 1440, LevelShiftFactor: 2, Seed: 2}
	pts := spec.Generate(tStart, 2*1440, time.Minute)
	first, last := pts[0].V, pts[len(pts)-1].V
	if !(last > first*1.8) {
		t.Errorf("trend+shift: first=%g last=%g", first, last)
	}
	// Shift boundary visible: sample just after 1440 about 2x the one
	// just before (trend is small relative to shift).
	if ratio := pts[1441].V / pts[1439].V; math.Abs(ratio-2) > 0.2 {
		t.Errorf("shift ratio = %g", ratio)
	}
}

func TestTrafficMissingDataDropsSamplesStably(t *testing.T) {
	spec := TrafficSpec{Base: 1000, MissingProb: 0.2, Seed: 3}
	pts := spec.Generate(tStart, 1000, time.Minute)
	if len(pts) >= 1000 || len(pts) < 700 {
		t.Errorf("kept %d of 1000 with 20%% missing", len(pts))
	}
	// Same spec without missing data must produce identical values at
	// the retained timestamps (draws are consumed unconditionally).
	full := TrafficSpec{Base: 1000, Seed: 3}.Generate(tStart, 1000, time.Minute)
	byTime := map[time.Time]float64{}
	for _, p := range full {
		byTime[p.T] = p.V
	}
	for _, p := range pts {
		if v, ok := byTime[p.T]; !ok || v != p.V {
			t.Fatalf("retained sample at %v differs: %g vs %g", p.T, p.V, v)
		}
	}
}

func TestTrafficOutliers(t *testing.T) {
	spec := TrafficSpec{Base: 1000, OutlierProb: 0.05, OutlierScale: 10, Seed: 4}
	pts := spec.Generate(tStart, 2000, time.Minute)
	spikes := 0
	for _, p := range pts {
		if p.V > 5000 {
			spikes++
		}
	}
	if spikes < 50 || spikes > 200 {
		t.Errorf("spikes = %d, want ≈100", spikes)
	}
}

func TestTrafficNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		spec := TrafficSpec{Base: 100, DailyAmplitude: 2, NoiseStd: 3, Seed: seed}
		for _, p := range spec.Generate(tStart, 200, time.Minute) {
			if p.V < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRateSchedules(t *testing.T) {
	c := ConstantRate(50)
	if c(0) != 50 || c(time.Hour) != 50 {
		t.Error("constant rate wrong")
	}
	s := StepRate(10, 20, time.Minute)
	if s(30*time.Second) != 10 || s(time.Minute) != 20 {
		t.Error("step rate wrong")
	}
	r := RampRate(0, 100, time.Minute)
	if r(0) != 0 || r(30*time.Second) != 50 || r(2*time.Minute) != 100 {
		t.Errorf("ramp rate wrong: %g %g %g", r(0), r(30*time.Second), r(2*time.Minute))
	}
	spec := TrafficSpec{Base: 600} // 600/min = 10/sec
	sr := SeasonalRate(spec, tStart)
	if got := sr(0); math.Abs(got-10) > 1e-9 {
		t.Errorf("seasonal rate = %g, want 10", got)
	}
}
