// Package workload provides the synthetic inputs for Caladrius'
// evaluation: a deterministic text corpus standing in for the paper's
// use of The Great Gatsby (the spout reads a line as a sentence; the
// splitter's measured input/output ratio 7.63–7.64 is the book's
// average sentence length) and parameterised traffic-rate generators
// (seasonal, trending, spiky, with missing data) used to exercise the
// traffic-forecast models.
package workload

import (
	"math"
	"math/rand"
	"strings"
)

// GatsbyMeanSentenceLength is the splitter input/output ratio the paper
// measured for its corpus (Fig. 5). The synthetic corpus targets it.
const GatsbyMeanSentenceLength = 7.635

// Corpus deterministically generates sentences with a configurable mean
// length and a Zipf-distributed vocabulary, mimicking natural-language
// word frequency so fields grouping sees realistic key skew at small
// parallelism and near-uniform load at Twitter-like volumes.
type Corpus struct {
	rng       *rand.Rand
	zipf      *rand.Zipf
	vocab     []string
	meanWords float64
}

// CorpusOptions configures NewCorpus.
type CorpusOptions struct {
	// Seed makes the corpus reproducible. Two corpora with the same
	// options emit identical sentence streams.
	Seed int64
	// VocabularySize is the number of distinct words. Default 6000,
	// roughly the distinct-word count of The Great Gatsby.
	VocabularySize int
	// MeanSentenceLength is the target mean words per sentence.
	// Default GatsbyMeanSentenceLength.
	MeanSentenceLength float64
	// ZipfS is the Zipf exponent (>1). Default 1.1, close to natural
	// language.
	ZipfS float64
}

func (o CorpusOptions) withDefaults() CorpusOptions {
	if o.VocabularySize <= 0 {
		o.VocabularySize = 6000
	}
	if o.MeanSentenceLength <= 0 {
		o.MeanSentenceLength = GatsbyMeanSentenceLength
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.1
	}
	return o
}

// NewCorpus builds a deterministic corpus.
func NewCorpus(opts CorpusOptions) *Corpus {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	vocab := make([]string, opts.VocabularySize)
	for i := range vocab {
		vocab[i] = syntheticWord(i)
	}
	return &Corpus{
		rng:       rng,
		zipf:      rand.NewZipf(rng, opts.ZipfS, 1, uint64(opts.VocabularySize-1)),
		vocab:     vocab,
		meanWords: opts.MeanSentenceLength,
	}
}

// syntheticWord builds a pronounceable word from its vocabulary rank so
// the corpus needs no embedded text.
func syntheticWord(rank int) string {
	consonants := "bcdfghjklmnprstvw"
	vowels := "aeiou"
	var b strings.Builder
	n := rank
	for {
		b.WriteByte(consonants[n%len(consonants)])
		n /= len(consonants)
		b.WriteByte(vowels[n%len(vowels)])
		n /= len(vowels)
		if n == 0 {
			break
		}
	}
	return b.String()
}

// Sentence emits the next sentence: whitespace-separated words. The
// word count is 1 + Poisson(mean−1), giving the configured mean with
// realistic variance.
func (c *Corpus) Sentence() string {
	n := 1 + poisson(c.rng, c.meanWords-1)
	words := make([]string, n)
	for i := range words {
		words[i] = c.vocab[c.zipf.Uint64()]
	}
	return strings.Join(words, " ")
}

// WordsPerSentence returns the exact mean sentence length of the next m
// sentences without consuming the generator state of the caller's
// corpus (it uses an identically-seeded clone). Useful for calibrating
// expected α in tests.
func MeanSentenceLength(opts CorpusOptions, m int) float64 {
	c := NewCorpus(opts)
	var total int
	for i := 0; i < m; i++ {
		total += len(strings.Fields(c.Sentence()))
	}
	return float64(total) / float64(m)
}

// Split splits a sentence into words; it is the splitter bolt's logic.
func Split(sentence string) []string {
	return strings.Fields(sentence)
}

// poisson draws a Poisson-distributed integer. It uses Knuth's
// multiplication method for small λ and a normal approximation above
// λ = 30, which is ample for sentence lengths.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
