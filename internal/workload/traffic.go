package workload

import (
	"math"
	"math/rand"
	"time"
)

// TrafficSpec parameterises a synthetic topology source-throughput
// series (tuples per minute). It composes the structures the paper says
// production traffic exhibits — strong daily/weekly seasonality, slow
// trends, shifts, outliers and missing samples — so the forecast models
// can be validated against a known ground truth.
type TrafficSpec struct {
	// Base is the mean rate in tuples per minute.
	Base float64
	// TrendPerDay adds a linear trend (tuples/minute gained per day).
	TrendPerDay float64
	// DailyAmplitude scales a 24-hour sinusoid (fraction of Base, e.g.
	// 0.3 swings ±30%).
	DailyAmplitude float64
	// WeeklyAmplitude scales a 7-day sinusoid (fraction of Base).
	WeeklyAmplitude float64
	// NoiseStd is i.i.d. Gaussian noise (fraction of Base).
	NoiseStd float64
	// OutlierProb is the per-sample probability of a gross spike.
	OutlierProb float64
	// OutlierScale multiplies Base for spike magnitude (default 5).
	OutlierScale float64
	// MissingProb is the per-sample probability the point is dropped
	// (metrics gaps).
	MissingProb float64
	// LevelShiftAt, if positive, multiplies the base by LevelShiftFactor
	// from that sample index onward (a trend changepoint).
	LevelShiftAt     int
	LevelShiftFactor float64
	// Seed makes the series reproducible.
	Seed int64
}

// TrafficPoint is one sample of the generated series.
type TrafficPoint struct {
	T time.Time
	V float64
}

// Generate produces n per-step samples starting at start. Missing
// samples are omitted from the result (not zero-filled), matching how
// a metrics database presents gaps.
func (s TrafficSpec) Generate(start time.Time, n int, step time.Duration) []TrafficPoint {
	rng := rand.New(rand.NewSource(s.Seed))
	outlierScale := s.OutlierScale
	if outlierScale == 0 {
		outlierScale = 5
	}
	shiftFactor := s.LevelShiftFactor
	if shiftFactor == 0 {
		shiftFactor = 1
	}
	out := make([]TrafficPoint, 0, n)
	for i := 0; i < n; i++ {
		// Draw all random variates unconditionally so dropping a point
		// does not shift the remainder of the series.
		noise := rng.NormFloat64()
		outlierDraw := rng.Float64()
		missingDraw := rng.Float64()

		t := start.Add(time.Duration(i) * step)
		v := s.ValueAt(start, t)
		if s.LevelShiftAt > 0 && i >= s.LevelShiftAt {
			v *= shiftFactor
		}
		v += noise * s.NoiseStd * s.Base
		if s.OutlierProb > 0 && outlierDraw < s.OutlierProb {
			v += s.Base * outlierScale
		}
		if v < 0 {
			v = 0
		}
		if s.MissingProb > 0 && missingDraw < s.MissingProb {
			continue
		}
		out = append(out, TrafficPoint{T: t, V: v})
	}
	return out
}

// ValueAt returns the deterministic (noise-free, shift-free) component
// of the series at time t: base + trend + seasonality. Forecast tests
// use it as ground truth.
func (s TrafficSpec) ValueAt(start, t time.Time) float64 {
	elapsed := t.Sub(start)
	days := elapsed.Hours() / 24
	v := s.Base + s.TrendPerDay*days
	if s.DailyAmplitude != 0 {
		frac := float64(t.Unix()%86400) / 86400
		v += s.Base * s.DailyAmplitude * math.Sin(2*math.Pi*frac)
	}
	if s.WeeklyAmplitude != 0 {
		frac := float64(t.Unix()%(7*86400)) / (7 * 86400)
		v += s.Base * s.WeeklyAmplitude * math.Sin(2*math.Pi*frac)
	}
	if v < 0 {
		v = 0
	}
	return v
}

// RateSchedule maps elapsed simulation time to a spout source rate in
// tuples per second. The simulator consumes this to drive experiments.
type RateSchedule func(elapsed time.Duration) float64

// ConstantRate emits a fixed tuples-per-second rate.
func ConstantRate(perSecond float64) RateSchedule {
	return func(time.Duration) float64 { return perSecond }
}

// StepRate switches between rates at the given boundary.
func StepRate(before, after float64, boundary time.Duration) RateSchedule {
	return func(elapsed time.Duration) float64 {
		if elapsed < boundary {
			return before
		}
		return after
	}
}

// RampRate linearly interpolates from lo to hi over the ramp duration
// and holds hi afterwards.
func RampRate(lo, hi float64, ramp time.Duration) RateSchedule {
	return func(elapsed time.Duration) float64 {
		if elapsed >= ramp {
			return hi
		}
		f := float64(elapsed) / float64(ramp)
		return lo + (hi-lo)*f
	}
}

// SeasonalRate follows the TrafficSpec's deterministic value, converted
// from tuples/minute to tuples/second.
func SeasonalRate(spec TrafficSpec, start time.Time) RateSchedule {
	return func(elapsed time.Duration) float64 {
		return spec.ValueAt(start, start.Add(elapsed)) / 60
	}
}
