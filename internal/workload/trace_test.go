package workload

import (
	"strings"
	"testing"
	"time"
)

func TestNewTraceValidation(t *testing.T) {
	if _, err := NewTrace(nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewTrace([]TracePoint{{Elapsed: -time.Second, RatePerMinute: 1}}); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := NewTrace([]TracePoint{{0, -1}}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewTrace([]TracePoint{{0, 1}, {0, 2}}); err == nil {
		t.Error("duplicate offset accepted")
	}
}

func TestTraceStepAndInterpolate(t *testing.T) {
	tr, err := NewTrace([]TracePoint{
		{0, 100},
		{time.Minute, 200},
		{2 * time.Minute, 400},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Step (default): hold previous value.
	if got := tr.RateAt(30 * time.Second); got != 100 {
		t.Errorf("step 30s = %g", got)
	}
	if got := tr.RateAt(90 * time.Second); got != 200 {
		t.Errorf("step 90s = %g", got)
	}
	if got := tr.RateAt(10 * time.Minute); got != 400 {
		t.Errorf("past end = %g", got)
	}
	// Linear interpolation.
	tr.Interpolate = true
	if got := tr.RateAt(30 * time.Second); got != 150 {
		t.Errorf("lerp 30s = %g", got)
	}
	if got := tr.RateAt(90 * time.Second); got != 300 {
		t.Errorf("lerp 90s = %g", got)
	}
	// Exact samples unchanged.
	if got := tr.RateAt(time.Minute); got != 200 {
		t.Errorf("exact = %g", got)
	}
	if tr.Duration() != 2*time.Minute {
		t.Errorf("duration = %s", tr.Duration())
	}
}

func TestTraceLoop(t *testing.T) {
	tr, err := NewTrace([]TracePoint{{0, 100}, {time.Minute, 200}})
	if err != nil {
		t.Fatal(err)
	}
	tr.Loop = true
	if got := tr.RateAt(90 * time.Second); got != 100 {
		t.Errorf("looped 90s = %g (30s into second pass)", got)
	}
}

func TestParseTraceCSV(t *testing.T) {
	src := `# comment
elapsed_seconds,tuples_per_minute
0,12000000
300,18000000
10m,25000000
`
	tr, err := ParseTraceCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Duration() != 10*time.Minute {
		t.Errorf("duration = %s", tr.Duration())
	}
	if got := tr.RateAt(0); got != 12e6 {
		t.Errorf("rate(0) = %g", got)
	}
	if got := tr.RateAt(6 * time.Minute); got != 18e6 {
		t.Errorf("rate(6m) = %g", got)
	}
	// Schedule converts to per-second.
	if got := tr.Schedule()(0); got != 12e6/60 {
		t.Errorf("schedule(0) = %g", got)
	}
}

func TestParseTraceCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"0\n",               // one column
		"0,1\nbad,2\n",      // bad elapsed on a data row
		"0,1\n300,notnum\n", // bad rate on a data row
		"0,1\n0,2\n",        // duplicate offsets
	}
	for _, src := range cases {
		if _, err := ParseTraceCSV(strings.NewReader(src)); err == nil {
			t.Errorf("ParseTraceCSV(%q): expected error", src)
		}
	}
}

func TestTraceDrivesSimulatorSchedule(t *testing.T) {
	// The adapted schedule is just the trace divided by 60; exercised
	// via RateSchedule signature compatibility.
	tr, err := NewTrace([]TracePoint{{0, 6000}})
	if err != nil {
		t.Fatal(err)
	}
	var s RateSchedule = tr.Schedule()
	if got := s(time.Hour); got != 100 {
		t.Errorf("schedule = %g", got)
	}
}
