package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// TracePoint is one sample of a recorded traffic trace: the offered
// rate from a given elapsed offset onward.
type TracePoint struct {
	Elapsed time.Duration
	// RatePerMinute is the offered rate in tuples per minute.
	RatePerMinute float64
}

// Trace is a replayable traffic recording. Between samples the rate is
// held (step interpolation by default) or linearly interpolated.
type Trace struct {
	points []TracePoint
	// Interpolate linearly between samples instead of holding the
	// previous value.
	Interpolate bool
	// Loop repeats the trace once the last sample's offset is passed.
	Loop bool
}

// NewTrace builds a trace from samples, sorting them by offset.
func NewTrace(points []TracePoint) (*Trace, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	cp := append([]TracePoint(nil), points...)
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].Elapsed < cp[j].Elapsed })
	for i, p := range cp {
		if p.Elapsed < 0 || p.RatePerMinute < 0 {
			return nil, fmt.Errorf("workload: trace sample %d has negative field (%s, %g)", i, p.Elapsed, p.RatePerMinute)
		}
		if i > 0 && p.Elapsed == cp[i-1].Elapsed {
			return nil, fmt.Errorf("workload: duplicate trace offset %s", p.Elapsed)
		}
	}
	return &Trace{points: cp}, nil
}

// ParseTraceCSV reads a two-column CSV of (elapsed, rate):
//
//	# elapsed_seconds,tuples_per_minute
//	0,12000000
//	300,18000000
//	600,25000000
//
// The elapsed column accepts plain seconds ("300") or Go durations
// ("5m"). Lines starting with '#' and a header line of non-numeric
// fields are skipped.
func ParseTraceCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.Comment = '#'
	var points []TracePoint
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("workload: trace csv: %w", err)
		}
		line++
		if len(rec) < 2 {
			return nil, fmt.Errorf("workload: trace csv line %d: want 2 columns, got %d", line, len(rec))
		}
		elapsed, err := parseElapsed(strings.TrimSpace(rec[0]))
		if err != nil {
			if line == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("workload: trace csv line %d: %w", line, err)
		}
		rate, err := strconv.ParseFloat(strings.TrimSpace(rec[1]), 64)
		if err != nil {
			if line == 1 {
				continue
			}
			return nil, fmt.Errorf("workload: trace csv line %d: bad rate %q", line, rec[1])
		}
		points = append(points, TracePoint{Elapsed: elapsed, RatePerMinute: rate})
	}
	return NewTrace(points)
}

func parseElapsed(s string) (time.Duration, error) {
	if secs, err := strconv.ParseFloat(s, 64); err == nil {
		return time.Duration(secs * float64(time.Second)), nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad elapsed %q (seconds or Go duration)", s)
	}
	return d, nil
}

// Duration returns the offset of the last sample.
func (t *Trace) Duration() time.Duration {
	return t.points[len(t.points)-1].Elapsed
}

// RateAt returns the offered rate (tuples/minute) at the given elapsed
// time.
func (t *Trace) RateAt(elapsed time.Duration) float64 {
	if t.Loop && t.Duration() > 0 {
		elapsed = elapsed % t.Duration()
	}
	if elapsed <= t.points[0].Elapsed {
		return t.points[0].RatePerMinute
	}
	// Binary search for the last sample at or before elapsed.
	lo, hi := 0, len(t.points)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if t.points[mid].Elapsed <= elapsed {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	cur := t.points[lo]
	if !t.Interpolate || lo == len(t.points)-1 {
		return cur.RatePerMinute
	}
	next := t.points[lo+1]
	frac := float64(elapsed-cur.Elapsed) / float64(next.Elapsed-cur.Elapsed)
	return cur.RatePerMinute + frac*(next.RatePerMinute-cur.RatePerMinute)
}

// Schedule adapts the trace to the simulator's RateSchedule (tuples per
// second).
func (t *Trace) Schedule() RateSchedule {
	return func(elapsed time.Duration) float64 {
		return t.RateAt(elapsed) / 60
	}
}
