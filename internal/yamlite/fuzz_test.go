package yamlite

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary documents to the parser. Beyond "never
// panic", it checks the marshal cycle: any value the parser accepts
// must marshal to a document the parser accepts again, and that second
// document must be a fixpoint (Marshal ∘ Parse is idempotent). Strict
// value equality is deliberately not asserted — "2.0" reparses as the
// int 2 — but the rendered form must stabilise after one cycle.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"key: value",
		"a: 1\nb: 2.5\nc: true\nd: null\ne: 0x1F",
		"model:\n  name: queueing\n  options:\n    window: 15m\n",
		"stages:\n  - spout\n  - splitter\n  - counter\n",
		"servers:\n  - host: a\n    port: 1\n  - host: b\n    port: 2\n",
		"flow: [1, 2, {k: v}]\nempty: {}\n",
		"# comment only\n---\nkey: 'single ''quoted'''\nother: \"dq \\\" esc\"\n",
		"deep:\n  - \n    - 1\n    - 2\n",
		"bad:\n\tindent: tab",
		"dup: 1\ndup: 2",
		"weird: [unclosed\n",
		"n: NaN\ni: +Inf\nneg: -1e-9\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		v, err := Parse(src)
		if err != nil {
			if perr, ok := err.(*ParseError); ok && perr.Line <= 0 {
				t.Errorf("ParseError with non-positive line %d: %v", perr.Line, err)
			}
			return // rejection is fine; panics and bad errors are not
		}
		once := Marshal(v)
		v2, err := Parse(once)
		if err != nil {
			t.Fatalf("Marshal produced an unparseable document:\ninput %q\nvalue %#v\nmarshalled %q\nerr %v", src, v, once, err)
		}
		if twice := Marshal(v2); twice != once {
			t.Errorf("marshal cycle not a fixpoint:\ninput %q\nfirst %q\nsecond %q", src, once, twice)
		}
		if strings.Contains(once, "\t") {
			t.Errorf("Marshal emitted a tab, which the parser rejects: %q", once)
		}
	})
}
